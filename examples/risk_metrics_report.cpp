// Regulatory-style risk report: runs the analysis over a multi-layer
// book, prints aggregate (AEP) and occurrence (OEP) exceedance curves
// at standard return periods, and exports the YLT and curves as CSV —
// the outputs the paper says feed "internal risk management and
// reporting to regulators and rating agencies".
//
// Build & run:  ./build/examples/risk_metrics_report [output_dir]
#include <fstream>
#include <iostream>

#include "core/metrics/convergence.hpp"
#include "core/metrics/risk_measures.hpp"
#include "core/session.hpp"
#include "io/csv.hpp"
#include "perf/report.hpp"
#include "synth/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace ara;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  // A 12-contract book over 40 shared ELTs with clustered event years.
  const synth::Scenario s = synth::multi_layer_book(/*layers=*/12,
                                                    /*trials=*/5000);
  // One session call produces the YLT, the per-layer summaries and the
  // portfolio rollup together.
  AnalysisSession session(
      ExecutionPolicy::with_engine(EngineKind::kMultiGpu));
  AnalysisRequest request;
  request.portfolio = &s.portfolio;
  request.yet = &s.yet;
  request.metrics = MetricsSelection::all();
  const AnalysisResult analysis = session.run(request);
  const SimulationResult& result = analysis.simulation;

  const std::vector<double> return_periods = {2,  5,   10,  25,  50,
                                              100, 250, 500, 1000};

  // Per-layer summary table (computed by the session).
  perf::Table summary({"layer", "AAL", "VaR99", "TVaR99", "PML100",
                       "PML250", "OEP100"});
  for (std::size_t l = 0; l < s.portfolio.layer_count(); ++l) {
    const metrics::LayerRiskSummary& m = analysis.layer_summaries[l];
    summary.add_row({s.portfolio.layers()[l].name,
                     perf::format_fixed(m.aal, 0),
                     perf::format_fixed(m.var_99, 0),
                     perf::format_fixed(m.tvar_99, 0),
                     perf::format_fixed(m.pml_100yr, 0),
                     perf::format_fixed(m.pml_250yr, 0),
                     perf::format_fixed(m.oep_100yr, 0)});
  }
  summary.print(std::cout);

  // EP curves for the first layer at the standard return periods.
  const metrics::EpCurve aep(result.ylt.layer_annual_vector(0));
  const metrics::EpCurve oep(result.ylt.layer_max_occurrence_vector(0));
  std::cout << "\nEP curves, layer 0:\n";
  perf::Table curves({"return period (yr)", "AEP loss", "OEP loss"});
  for (const double rp : return_periods) {
    curves.add_row({perf::format_fixed(rp, 0),
                    perf::format_fixed(aep.loss_at_return_period(rp), 0),
                    perf::format_fixed(oep.loss_at_return_period(rp), 0)});
  }
  curves.print(std::cout);

  // Portfolio rollup: the whole book's tail plus capital allocation.
  const metrics::PortfolioRollup& rollup = *analysis.rollup;
  std::cout << "\nportfolio rollup:\n";
  perf::Table roll({"metric", "value"});
  roll.add_row({"portfolio AAL", perf::format_fixed(rollup.aal, 0)});
  roll.add_row({"portfolio VaR 99%", perf::format_fixed(rollup.var_99, 0)});
  roll.add_row(
      {"portfolio TVaR 99%", perf::format_fixed(rollup.tvar_99, 0)});
  roll.add_row({"diversification benefit (TVaR99)",
                perf::format_fixed(rollup.diversification_benefit_tvar99,
                                   0)});
  roll.print(std::cout);
  std::cout << "marginal TVaR99 by layer:";
  for (std::size_t l = 0; l < rollup.marginal_tvar99.size(); ++l) {
    std::cout << ' ' << perf::format_fixed(rollup.marginal_tvar99[l], 0);
  }
  std::cout << '\n';

  // Convergence diagnostics: is the YET big enough for these numbers?
  const auto losses0 = result.ylt.layer_annual_vector(0);
  const auto conv = metrics::aal_convergence(
      losses0, {500, 1000, 2000, 5000});
  std::cout << "\nAAL convergence, layer 0:\n";
  perf::Table convergence({"trials", "AAL estimate", "std error",
                           "rel. error"});
  for (const auto& pt : conv) {
    convergence.add_row(
        {std::to_string(pt.trials), perf::format_fixed(pt.estimate, 0),
         perf::format_fixed(pt.std_error, 0),
         perf::format_percent(pt.estimate > 0.0
                                  ? pt.std_error / pt.estimate
                                  : 0.0)});
  }
  convergence.print(std::cout);
  std::cout << "trials for 1% AAL error at 95% confidence: "
            << metrics::required_trials_for_aal(losses0, 0.01) << '\n';

  // CSV exports.
  {
    std::ofstream ylt_csv(out_dir + "/ylt.csv");
    io::write_ylt_csv(ylt_csv, result.ylt);
    std::ofstream aep_csv(out_dir + "/aep_layer0.csv");
    io::write_ep_curve_csv(aep_csv, aep, return_periods);
    std::ofstream oep_csv(out_dir + "/oep_layer0.csv");
    io::write_ep_curve_csv(oep_csv, oep, return_periods);
  }
  std::cout << "\nwrote " << out_dir << "/ylt.csv, aep_layer0.csv, "
            << "oep_layer0.csv (" << result.ylt.trial_count()
            << " trials x " << result.ylt.layer_count() << " layers)\n";
  return 0;
}
