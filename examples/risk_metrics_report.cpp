// Regulatory-style risk report: runs the analysis over a multi-layer
// book, prints aggregate (AEP) and occurrence (OEP) exceedance curves
// at standard return periods, and exports the YLT and curves as CSV —
// the outputs the paper says feed "internal risk management and
// reporting to regulators and rating agencies".
//
// Build & run:  ./build/examples/risk_metrics_report [output_dir]
#include <fstream>
#include <iostream>

#include "core/metrics/convergence.hpp"
#include "core/metrics/risk_measures.hpp"
#include "core/session.hpp"
#include "io/csv.hpp"
#include "perf/report.hpp"
#include "synth/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace ara;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  // A 12-contract book over 40 shared ELTs with clustered event years.
  const synth::Scenario s = synth::multi_layer_book(/*layers=*/12,
                                                    /*trials=*/5000);
  // One session call produces the YLT and every requested metric
  // together, driven by a declarative MetricsSpec: arbitrary quantile
  // and return-period sets, per-layer and portfolio scope, capital
  // allocation.
  AnalysisSession session(
      ExecutionPolicy::with_engine(EngineKind::kMultiGpu));
  AnalysisRequest request;
  request.portfolio = &s.portfolio;
  request.yet = &s.yet;
  MetricsSpec spec;
  spec.per_layer = true;
  spec.portfolio = true;
  spec.quantiles = {0.9, 0.99, 0.995};
  spec.return_periods = {5, 10, 25, 50, 100, 250, 500, 1000};
  spec.capital_allocation = true;  // diversification + marginal TVaR99
  request.metrics = spec;
  const AnalysisResult analysis = session.run(request);
  const SimulationResult& result = analysis.simulation;

  // Per-layer summary table, straight off the metric report.
  perf::Table summary({"layer", "AAL", "VaR99", "TVaR99", "TVaR99.5",
                       "PML100", "PML250", "OEP100"});
  for (const metrics::LayerMetrics& m : analysis.metrics.layers) {
    summary.add_row({m.label,
                     perf::format_fixed(m.aal, 0),
                     perf::format_fixed(m.var_at(0.99), 0),
                     perf::format_fixed(m.tvar_at(0.99), 0),
                     perf::format_fixed(m.tvar_at(0.995), 0),
                     perf::format_fixed(m.pml_at(100.0), 0),
                     perf::format_fixed(m.pml_at(250.0), 0),
                     perf::format_fixed(m.oep_at(100.0), 0)});
  }
  summary.print(std::cout);

  // EP points for the first layer: every return period in the spec is
  // answered in the same report. The aggregate column is the PML
  // convention (interpolated quantile at p = 1 - 1/T); the CSV export
  // below writes the rank-based empirical AEP curve, which differs
  // slightly by construction.
  const metrics::LayerMetrics& layer0 =
      *analysis.metrics_for(s.portfolio.layers()[0].name);
  std::cout << "\nEP points, layer 0:\n";
  perf::Table curves({"return period (yr)", "PML (AEP)", "OEP loss"});
  for (std::size_t i = 0; i < layer0.pml.size(); ++i) {
    curves.add_row({perf::format_fixed(layer0.pml[i].years, 0),
                    perf::format_fixed(layer0.pml[i].loss, 0),
                    perf::format_fixed(layer0.oep[i].loss, 0)});
  }
  curves.print(std::cout);

  // Portfolio rollup: the whole book's tail plus capital allocation.
  const metrics::PortfolioMetrics& rollup = *analysis.metrics.portfolio;
  std::cout << "\nportfolio rollup:\n";
  perf::Table roll({"metric", "value"});
  roll.add_row({"portfolio AAL", perf::format_fixed(rollup.totals.aal, 0)});
  roll.add_row({"portfolio VaR 99%",
                perf::format_fixed(rollup.totals.var_at(0.99), 0)});
  roll.add_row({"portfolio TVaR 99%",
                perf::format_fixed(rollup.totals.tvar_at(0.99), 0)});
  roll.add_row({"diversification benefit (TVaR99)",
                perf::format_fixed(rollup.diversification_benefit_tvar, 0)});
  roll.print(std::cout);
  std::cout << "marginal TVaR99 by layer:";
  for (std::size_t l = 0; l < rollup.marginal_tvar.size(); ++l) {
    std::cout << ' ' << perf::format_fixed(rollup.marginal_tvar[l], 0);
  }
  std::cout << '\n';

  // Convergence diagnostics: is the YET big enough for these numbers?
  const auto losses0 = result.ylt.layer_annual_vector(0);
  const auto conv = metrics::aal_convergence(
      losses0, {500, 1000, 2000, 5000});
  std::cout << "\nAAL convergence, layer 0:\n";
  perf::Table convergence({"trials", "AAL estimate", "std error",
                           "rel. error"});
  for (const auto& pt : conv) {
    convergence.add_row(
        {std::to_string(pt.trials), perf::format_fixed(pt.estimate, 0),
         perf::format_fixed(pt.std_error, 0),
         perf::format_percent(pt.estimate > 0.0
                                  ? pt.std_error / pt.estimate
                                  : 0.0)});
  }
  convergence.print(std::cout);
  std::cout << "trials for 1% AAL error at 95% confidence: "
            << metrics::required_trials_for_aal(losses0, 0.01) << '\n';

  // CSV exports (full curves come from the retained YLT; a metric-only
  // kDiscard run would use spec.ep_curve_points instead).
  {
    const std::vector<double> csv_periods = {2,  5,   10,  25,  50,
                                             100, 250, 500, 1000};
    const metrics::EpCurve aep(result.ylt.layer_annual_vector(0));
    const metrics::EpCurve oep(result.ylt.layer_max_occurrence_vector(0));
    std::ofstream ylt_csv(out_dir + "/ylt.csv");
    io::write_ylt_csv(ylt_csv, result.ylt);
    std::ofstream aep_csv(out_dir + "/aep_layer0.csv");
    io::write_ep_curve_csv(aep_csv, aep, csv_periods);
    std::ofstream oep_csv(out_dir + "/oep_layer0.csv");
    io::write_ep_curve_csv(oep_csv, oep, csv_periods);
  }
  std::cout << "\nwrote " << out_dir << "/ylt.csv, aep_layer0.csv, "
            << "oep_layer0.csv (" << result.ylt.trial_count()
            << " trials x " << result.ylt.layer_count() << " layers)\n";
  return 0;
}
