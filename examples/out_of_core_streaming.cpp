// Out-of-core streaming analysis: price a portfolio against a YET
// that is never fully resident. The YET lives on disk; YetChunkReader
// materialises one trial shard at a time under a memory budget, the
// session prices each shard (binding the portfolio's loss tables once
// across all shards via its table cache), and YltChunkWriter streams
// each partial YLT into the output file — which ends up byte-for-byte
// identical to what the monolithic in-memory run saves.
//
// The final section verifies exactly that: it reruns the analysis
// in-core, compares the YLTs bitwise, compares the derived risk
// measures, and reports the reader's peak resident bytes against the
// budget.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>

#include "core/metrics/risk_measures.hpp"
#include "core/session.hpp"
#include "io/binary.hpp"
#include "io/yet_chunk.hpp"
#include "synth/scenarios.hpp"

int main() {
  using namespace ara;

  // A multi-layer book over a few thousand trials. (Small enough to
  // verify against the in-core run below; the streaming path itself
  // never assumes the YET fits.)
  const synth::Scenario s = synth::multi_layer_book(8, 4000, 42);
  const std::string dir = "/tmp";
  const std::string yet_path = dir + "/ara_ooc_yet.bin";
  const std::string ylt_path = dir + "/ara_ooc_ylt.bin";
  io::save_yet(yet_path, s.yet);

  // Budget: roughly a tenth of the YET, so the run must stream.
  const std::size_t budget = s.yet.memory_bytes() / 10;

  io::YetChunkReader reader(yet_path);
  const std::size_t chunk =
      reader.max_chunk_trials(budget, s.portfolio.layer_count());
  std::cout << "YET on disk : " << reader.trial_count() << " trials, "
            << reader.occurrence_count() << " occurrences\n"
            << "budget      : " << budget << " bytes -> chunks of " << chunk
            << " trials\n";

  AnalysisSession session(
      ExecutionPolicy::with_engine(EngineKind::kMultiCore));
  io::YltChunkWriter writer(ylt_path, s.portfolio.layer_count(),
                            reader.trial_count());

  std::size_t shards = 0;
  for (std::size_t begin = 0; begin < reader.trial_count(); begin += chunk) {
    const std::size_t end =
        std::min(begin + chunk, reader.trial_count());
    const Yet slice = reader.read_chunk(begin, end);

    AnalysisRequest request;
    request.portfolio = &s.portfolio;
    request.yet = &slice;
    writer.append(session.run(request).simulation.ylt, begin);
    ++shards;
  }
  writer.close();
  std::cout << "streamed    : " << shards << " shards -> " << ylt_path
            << "\n"
            << "peak buffer : " << reader.peak_resident_bytes()
            << " bytes (budget " << budget << ")\n";

  // --- Verification against the monolithic in-core run -------------------
  AnalysisRequest full;
  full.portfolio = &s.portfolio;
  full.yet = &s.yet;
  full.metrics = MetricsSpec::all();
  const AnalysisResult in_core_run = session.run(full);
  const Ylt& in_core = in_core_run.simulation.ylt;
  const Ylt streamed = io::load_ylt(ylt_path);

  const bool identical =
      streamed.annual_raw() == in_core.annual_raw() &&
      streamed.max_occurrence_raw() == in_core.max_occurrence_raw();
  const bool within_budget = reader.peak_resident_bytes() <= budget;

  const metrics::LayerRiskSummary a = metrics::summarize_layer(streamed, 0);
  const metrics::LayerRiskSummary b = metrics::summarize_layer(in_core, 0);
  std::cout << "layer 0 AAL : streamed " << a.aal << " vs in-core " << b.aal
            << "\nlayer 0 VaR : streamed " << a.var_99 << " vs in-core "
            << b.var_99 << "\nbitwise YLT : "
            << (identical ? "identical" : "MISMATCH")
            << "\nwithin budget: " << (within_budget ? "yes" : "NO") << "\n";

  // --- Session-native retention: the whole story in one request ----------
  // YltRetention::kSpillToFile + a memory budget makes the session do
  // the above itself: shards stream through the metric reducers and
  // YltChunkWriter, and the layers x trials table is never allocated.
  // (kDiscard is the same minus the file — metric-only pricing.)
  const std::string spill_path = dir + "/ara_ooc_spill.bin";
  AnalysisRequest spill;
  spill.portfolio = &s.portfolio;
  spill.yet = &s.yet;
  spill.metrics = MetricsSpec::all();
  spill.ylt_retention = YltRetention::kSpillToFile;
  spill.ylt_path = spill_path;
  ExecutionPolicy budgeted =
      ExecutionPolicy::with_engine(EngineKind::kMultiCore);
  budgeted.memory_budget_bytes = budget;
  spill.policy = budgeted;
  const AnalysisResult spilled_run = session.run(spill);

  const Ylt spilled = io::load_ylt(spill_path);
  const bool spill_identical =
      spilled.annual_raw() == in_core.annual_raw() &&
      spilled.max_occurrence_raw() == in_core.max_occurrence_raw();
  const bool never_materialized =
      spilled_run.simulation.ylt.trial_count() == 0 &&
      spilled_run.metrics.blocks_consumed == spilled_run.shard_count;
  const double streamed_var =
      spilled_run.metrics.layers[0].var_at(0.99);
  const double in_core_var = in_core_run.metrics.layers[0].var_at(0.99);
  std::cout << "spill run   : " << spilled_run.shard_count
            << " shards -> " << spilled_run.ylt_path << " ("
            << (spill_identical ? "byte-identical" : "MISMATCH")
            << "), YLT in RAM: "
            << (never_materialized ? "never built" : "BUILT?!")
            << "\nstreamed VaR: " << streamed_var << " vs in-core "
            << in_core_var
            << (streamed_var == in_core_var ? " (bitwise)" : " (MISMATCH)")
            << "\nreservoirs  : " << spilled_run.metrics.reservoir_entries
            << " resident tail entries vs "
            << in_core.layer_count() * in_core.trial_count() * 2
            << " YLT cells\n";

  std::remove(yet_path.c_str());
  std::remove(ylt_path.c_str());
  std::remove(spill_path.c_str());
  return identical && within_budget && spill_identical &&
                 never_materialized && streamed_var == in_core_var
             ? 0
             : 1;
}
