// Out-of-core streaming analysis: price a portfolio against a YET
// that is never fully resident. The YET lives on disk; YetChunkReader
// materialises one trial shard at a time under a memory budget, the
// session prices each shard (binding the portfolio's loss tables once
// across all shards via its table cache), and YltChunkWriter streams
// each partial YLT into the output file — which ends up byte-for-byte
// identical to what the monolithic in-memory run saves.
//
// The final section verifies exactly that: it reruns the analysis
// in-core, compares the YLTs bitwise, compares the derived risk
// measures, and reports the reader's peak resident bytes against the
// budget.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>

#include "core/metrics/risk_measures.hpp"
#include "core/session.hpp"
#include "io/binary.hpp"
#include "io/yet_chunk.hpp"
#include "synth/scenarios.hpp"

int main() {
  using namespace ara;

  // A multi-layer book over a few thousand trials. (Small enough to
  // verify against the in-core run below; the streaming path itself
  // never assumes the YET fits.)
  const synth::Scenario s = synth::multi_layer_book(8, 4000, 42);
  const std::string dir = "/tmp";
  const std::string yet_path = dir + "/ara_ooc_yet.bin";
  const std::string ylt_path = dir + "/ara_ooc_ylt.bin";
  io::save_yet(yet_path, s.yet);

  // Budget: roughly a tenth of the YET, so the run must stream.
  const std::size_t budget = s.yet.memory_bytes() / 10;

  io::YetChunkReader reader(yet_path);
  const std::size_t chunk =
      reader.max_chunk_trials(budget, s.portfolio.layer_count());
  std::cout << "YET on disk : " << reader.trial_count() << " trials, "
            << reader.occurrence_count() << " occurrences\n"
            << "budget      : " << budget << " bytes -> chunks of " << chunk
            << " trials\n";

  AnalysisSession session(
      ExecutionPolicy::with_engine(EngineKind::kMultiCore));
  io::YltChunkWriter writer(ylt_path, s.portfolio.layer_count(),
                            reader.trial_count());

  std::size_t shards = 0;
  for (std::size_t begin = 0; begin < reader.trial_count(); begin += chunk) {
    const std::size_t end =
        std::min(begin + chunk, reader.trial_count());
    const Yet slice = reader.read_chunk(begin, end);

    AnalysisRequest request;
    request.portfolio = &s.portfolio;
    request.yet = &slice;
    writer.append(session.run(request).simulation.ylt, begin);
    ++shards;
  }
  writer.close();
  std::cout << "streamed    : " << shards << " shards -> " << ylt_path
            << "\n"
            << "peak buffer : " << reader.peak_resident_bytes()
            << " bytes (budget " << budget << ")\n";

  // --- Verification against the monolithic in-core run -------------------
  AnalysisRequest full;
  full.portfolio = &s.portfolio;
  full.yet = &s.yet;
  const Ylt in_core = session.run(full).simulation.ylt;
  const Ylt streamed = io::load_ylt(ylt_path);

  const bool identical =
      streamed.annual_raw() == in_core.annual_raw() &&
      streamed.max_occurrence_raw() == in_core.max_occurrence_raw();
  const bool within_budget = reader.peak_resident_bytes() <= budget;

  const metrics::LayerRiskSummary a = metrics::summarize_layer(streamed, 0);
  const metrics::LayerRiskSummary b = metrics::summarize_layer(in_core, 0);
  std::cout << "layer 0 AAL : streamed " << a.aal << " vs in-core " << b.aal
            << "\nlayer 0 VaR : streamed " << a.var_99 << " vs in-core "
            << b.var_99 << "\nbitwise YLT : "
            << (identical ? "identical" : "MISMATCH")
            << "\nwithin budget: " << (within_budget ? "yes" : "NO") << "\n";

  std::remove(yet_path.c_str());
  std::remove(ylt_path.c_str());
  return identical && within_budget ? 0 : 1;
}
