// Quickstart: the smallest end-to-end use of the library.
//
//   1. Generate a synthetic workload (catalogue -> YET -> portfolio).
//   2. Run the aggregate risk analysis through an AnalysisSession on
//      the multi-GPU engine.
//   3. Read the standard portfolio risk metrics off the result.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/session.hpp"
#include "synth/scenarios.hpp"

int main() {
  using namespace ara;

  // 1. A paper-shaped workload at 1/500 scale: 2,000 trials of ~1,000
  //    events over a 4,000-event catalogue, one layer of 15 ELTs.
  const synth::Scenario scenario = synth::paper_scaled(/*scale_down=*/500);
  std::cout << "workload: " << scenario.yet.trial_count() << " trials, "
            << scenario.yet.mean_events_per_trial()
            << " events/trial (mean), "
            << scenario.portfolio.elt_count() << " ELTs, "
            << scenario.portfolio.layer_count() << " layer(s)\n";

  // 2. One session call: four simulated Tesla M2090s with the paper's
  //    optimised kernel configuration, plus the per-layer metrics.
  AnalysisSession session(
      ExecutionPolicy::with_engine(EngineKind::kMultiGpu));
  AnalysisRequest request;
  request.portfolio = &scenario.portfolio;
  request.yet = &scenario.yet;
  // The declarative metric plan: the legacy per-layer preset (VaR/TVaR
  // at 99%, PML at 100/250 years, OEP at 100 years). Any quantile or
  // return-period set works — see risk_metrics_report.
  request.metrics = MetricsSpec::layer_summaries();
  const AnalysisResult result = session.run(request);

  std::cout << "engine:   " << result.simulation.engine_name << " ("
            << result.simulation.devices << " devices)\n"
            << "wall:     " << result.simulation.wall_seconds
            << " s on this host; "
            << "simulated " << result.simulation.simulated_seconds
            << " s on the paper's hardware\n";

  // 3. Portfolio risk metrics, computed by the session from the YLT —
  //    looked up by layer name, not by parallel-vector index.
  const std::string& layer0 = scenario.portfolio.layers()[0].name;
  const metrics::LayerMetrics& summary = *result.metrics_for(layer0);
  std::cout << "\nrisk metrics for layer 0 (" << layer0 << "):\n"
            << "  average annual loss : " << summary.aal << '\n'
            << "  std deviation       : " << summary.std_dev << '\n'
            << "  VaR  99%            : " << summary.var_at(0.99) << '\n'
            << "  TVaR 99%            : " << summary.tvar_at(0.99) << '\n'
            << "  PML (100-year)      : " << summary.pml_at(100.0) << '\n'
            << "  PML (250-year)      : " << summary.pml_at(250.0) << '\n'
            << "  OEP (100-year)      : " << summary.oep_at(100.0) << '\n';
  return 0;
}
