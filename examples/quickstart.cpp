// Quickstart: the smallest end-to-end use of the library.
//
//   1. Generate a synthetic workload (catalogue -> YET -> portfolio).
//   2. Run the aggregate risk analysis on the multi-GPU engine.
//   3. Derive the standard portfolio risk metrics from the YLT.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/engine_factory.hpp"
#include "core/metrics/risk_measures.hpp"
#include "synth/scenarios.hpp"

int main() {
  using namespace ara;

  // 1. A paper-shaped workload at 1/500 scale: 2,000 trials of ~1,000
  //    events over a 4,000-event catalogue, one layer of 15 ELTs.
  const synth::Scenario scenario = synth::paper_scaled(/*scale_down=*/500);
  std::cout << "workload: " << scenario.yet.trial_count() << " trials, "
            << scenario.yet.mean_events_per_trial()
            << " events/trial (mean), "
            << scenario.portfolio.elt_count() << " ELTs, "
            << scenario.portfolio.layer_count() << " layer(s)\n";

  // 2. Run on four simulated Tesla M2090s with the paper's optimised
  //    kernel configuration.
  const auto engine = make_engine(EngineKind::kMultiGpu,
                                  paper_config(EngineKind::kMultiGpu));
  const SimulationResult result =
      engine->run(scenario.portfolio, scenario.yet);
  std::cout << "engine:   " << result.engine_name << " ("
            << result.devices << " devices)\n"
            << "wall:     " << result.wall_seconds << " s on this host; "
            << "simulated " << result.simulated_seconds
            << " s on the paper's hardware\n";

  // 3. Portfolio risk metrics from the Year Loss Table.
  const metrics::LayerRiskSummary summary =
      metrics::summarize_layer(result.ylt, 0);
  std::cout << "\nrisk metrics for layer 0 ("
            << scenario.portfolio.layers()[0].name << "):\n"
            << "  average annual loss : " << summary.aal << '\n'
            << "  std deviation       : " << summary.std_dev << '\n'
            << "  VaR  99%            : " << summary.var_99 << '\n'
            << "  TVaR 99%            : " << summary.tvar_99 << '\n'
            << "  PML (100-year)      : " << summary.pml_100yr << '\n'
            << "  PML (250-year)      : " << summary.pml_250yr << '\n'
            << "  OEP (100-year)      : " << summary.oep_100yr << '\n';
  return 0;
}
