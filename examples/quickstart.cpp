// Quickstart: the smallest end-to-end use of the library.
//
//   1. Generate a synthetic workload (catalogue -> YET -> portfolio).
//   2. Run the aggregate risk analysis through an AnalysisSession on
//      the multi-GPU engine.
//   3. Read the standard portfolio risk metrics off the result.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/session.hpp"
#include "synth/scenarios.hpp"

int main() {
  using namespace ara;

  // 1. A paper-shaped workload at 1/500 scale: 2,000 trials of ~1,000
  //    events over a 4,000-event catalogue, one layer of 15 ELTs.
  const synth::Scenario scenario = synth::paper_scaled(/*scale_down=*/500);
  std::cout << "workload: " << scenario.yet.trial_count() << " trials, "
            << scenario.yet.mean_events_per_trial()
            << " events/trial (mean), "
            << scenario.portfolio.elt_count() << " ELTs, "
            << scenario.portfolio.layer_count() << " layer(s)\n";

  // 2. One session call: four simulated Tesla M2090s with the paper's
  //    optimised kernel configuration, plus the per-layer metrics.
  AnalysisSession session(
      ExecutionPolicy::with_engine(EngineKind::kMultiGpu));
  AnalysisRequest request;
  request.portfolio = &scenario.portfolio;
  request.yet = &scenario.yet;
  request.metrics.layer_summaries = true;
  const AnalysisResult result = session.run(request);

  std::cout << "engine:   " << result.simulation.engine_name << " ("
            << result.simulation.devices << " devices)\n"
            << "wall:     " << result.simulation.wall_seconds
            << " s on this host; "
            << "simulated " << result.simulation.simulated_seconds
            << " s on the paper's hardware\n";

  // 3. Portfolio risk metrics, computed by the session from the YLT.
  const metrics::LayerRiskSummary& summary = result.layer_summaries[0];
  std::cout << "\nrisk metrics for layer 0 ("
            << scenario.portfolio.layers()[0].name << "):\n"
            << "  average annual loss : " << summary.aal << '\n'
            << "  std deviation       : " << summary.std_dev << '\n'
            << "  VaR  99%            : " << summary.var_99 << '\n'
            << "  TVaR 99%            : " << summary.tvar_99 << '\n'
            << "  PML (100-year)      : " << summary.pml_100yr << '\n'
            << "  PML (250-year)      : " << summary.pml_250yr << '\n'
            << "  OEP (100-year)      : " << summary.oep_100yr << '\n';
  return 0;
}
