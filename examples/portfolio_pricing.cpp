// Real-time pricing — the use case the paper motivates: an underwriter
// quotes an 'eXcess of Loss' reinsurance contract while the client
// waits. The layer's attachment point (occurrence retention) is swept
// and each variant is re-priced against the full pre-simulated YET:
// expected loss (pure premium), volatility loading and PML.
//
// Build & run:  ./build/examples/portfolio_pricing
#include <iostream>

#include "core/metrics/risk_measures.hpp"
#include "core/metrics/stats.hpp"
#include "core/session.hpp"
#include "perf/report.hpp"
#include "perf/stopwatch.hpp"
#include "synth/scenarios.hpp"

int main() {
  using namespace ara;

  // The cedent's exposure: 15 ELTs over a shared catalogue.
  const synth::Scenario base = synth::paper_scaled(/*scale_down=*/500);
  const double unit = 2.0e6;  // mean event loss of the book

  // Quote the same cover at five attachment points.
  const double attachments[] = {0.25 * unit, 0.5 * unit, 1.0 * unit,
                                2.0 * unit, 4.0 * unit};

  // One multi-layer portfolio: a layer per quote candidate, all
  // covering the same ELTs — priced in a single engine pass, which is
  // how a real-time pricing service would batch quotes.
  std::vector<Layer> quotes;
  for (const double att : attachments) {
    Layer layer = base.portfolio.layers()[0];
    layer.name = "attachment_" + std::to_string(static_cast<long>(att));
    layer.terms.occ_retention = att;
    layer.terms.occ_limit = 10.0 * unit;
    quotes.push_back(std::move(layer));
  }
  const Portfolio book(base.portfolio.elts(), quotes);

  AnalysisSession session(
      ExecutionPolicy::with_engine(EngineKind::kMultiGpu));
  AnalysisRequest request;
  request.label = "quote_sweep";
  request.portfolio = &book;
  request.yet = &base.yet;
  perf::Stopwatch sw;
  const SimulationResult result = session.run(request).simulation;
  const double pricing_wall = sw.seconds();

  perf::Table table({"attachment", "expected loss", "std dev",
                     "PML 250yr", "indicated premium"});
  for (std::size_t q = 0; q < quotes.size(); ++q) {
    const auto losses = result.ylt.layer_annual_vector(q);
    const double el = metrics::average_annual_loss(losses);
    const double sd = metrics::stddev(losses);
    const double pml = metrics::probable_maximum_loss(losses, 250.0);
    // Standard-deviation premium principle: EL + 0.35 sigma.
    const double premium = el + 0.35 * sd;
    table.add_row({perf::format_fixed(attachments[q], 0),
                   perf::format_fixed(el, 0), perf::format_fixed(sd, 0),
                   perf::format_fixed(pml, 0),
                   perf::format_fixed(premium, 0)});
  }
  table.print(std::cout);

  std::cout << "\npriced " << quotes.size() << " quote variants x "
            << base.yet.trial_count() << " trials in "
            << perf::format_seconds(pricing_wall)
            << " wall (simulated on paper hardware: "
            << perf::format_seconds(result.simulated_seconds) << ")\n"
            << "expected: premium falls and PML-net-of-attachment "
               "narrows as the attachment point rises\n";
  return 0;
}
