// Pricing a catastrophe XL treaty with reinstatements — the contract
// form of the paper's cited pricing literature (Anderson & Dong 1998).
// For a range of reinstatement counts, the example computes expected
// recoveries and expected reinstatement premium income against the
// full pre-simulated YET, and solves for the upfront premium at which
// the treaty breaks even (expected recoveries = upfront + expected
// reinstatement premiums).
//
// Build & run:  ./build/examples/reinstatement_pricing
#include <iostream>

#include "extensions/reinstatements.hpp"
#include "perf/report.hpp"
#include "synth/scenarios.hpp"

int main() {
  using namespace ara;

  const synth::Scenario s = synth::paper_scaled(/*scale_down=*/500);
  const double occ_retention = 2.0e6;
  const double occ_limit = 2.0e7;
  const double rate = 1.0;  // reinstatements "at 100%"

  std::cout << "treaty: " << occ_limit << " xs " << occ_retention
            << ", reinstatements at " << rate * 100 << "%, "
            << s.yet.trial_count() << " trials\n\n";

  perf::Table table({"reinstatements", "annual capacity",
                     "E[recovery]", "E[reinst. premium] @ breakeven",
                     "breakeven upfront"});
  for (const unsigned n : {0u, 1u, 2u, 3u, 5u}) {
    ext::ReinstatementTerms terms;
    terms.occ_retention = occ_retention;
    terms.occ_limit = occ_limit;
    terms.reinstatements = n;
    terms.premium_rate = rate;

    // Recoveries and the *premium fraction* are independent of the
    // upfront premium P: E[reinst premium] = k * P with
    // k = E[reinstated]/limit * rate. Breakeven: P + kP = E[recovery].
    terms.upfront_premium = 1.0;  // compute k against a unit premium
    ext::ReinstatementEngine engine(
        s.portfolio,
        std::vector<ext::ReinstatementTerms>(s.portfolio.layer_count(),
                                             terms));
    const ext::ReinstatementResult r = engine.run(s.yet);
    const double expected_recovery = r.expected_recovery(0);
    const double k = r.expected_reinstatement_premium(0);  // per unit P
    const double breakeven = expected_recovery / (1.0 + k);

    table.add_row({std::to_string(n),
                   perf::format_fixed(terms.annual_capacity(), 0),
                   perf::format_fixed(expected_recovery, 0),
                   perf::format_fixed(k * breakeven, 0),
                   perf::format_fixed(breakeven, 0)});
  }
  table.print(std::cout);

  std::cout << "\nexpected: recoveries grow with the reinstatement count "
               "(more annual capacity),\nwhile reinstatement premium "
               "income offsets part of the price — the breakeven\n"
               "upfront premium grows sub-linearly in capacity.\n";
  return 0;
}
