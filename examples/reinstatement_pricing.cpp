// Pricing a catastrophe XL treaty with reinstatements — the contract
// form of the paper's cited pricing literature (Anderson & Dong 1998).
// For a range of reinstatement counts, the example computes expected
// recoveries and expected reinstatement premium income against the
// full pre-simulated YET, and solves for the upfront premium at which
// the treaty breaks even (expected recoveries = upfront + expected
// reinstatement premiums).
//
// Build & run:  ./build/examples/reinstatement_pricing
#include <iostream>
#include <vector>

#include "core/session.hpp"
#include "perf/report.hpp"
#include "synth/scenarios.hpp"

int main() {
  using namespace ara;

  const synth::Scenario s = synth::paper_scaled(/*scale_down=*/500);
  const double occ_retention = 2.0e6;
  const double occ_limit = 2.0e7;
  const double rate = 1.0;  // reinstatements "at 100%"

  std::cout << "treaty: " << occ_limit << " xs " << occ_retention
            << ", reinstatements at " << rate * 100 << "%, "
            << s.yet.trial_count() << " trials\n\n";

  // One request per reinstatement count, all against the shared YET,
  // priced concurrently in a single session batch. The reinstatement
  // analysis rides along with the core run as an extension hook.
  const unsigned counts[] = {0u, 1u, 2u, 3u, 5u};
  std::vector<AnalysisRequest> requests;
  for (const unsigned n : counts) {
    ext::ReinstatementTerms terms;
    terms.occ_retention = occ_retention;
    terms.occ_limit = occ_limit;
    terms.reinstatements = n;
    terms.premium_rate = rate;
    // Recoveries and the *premium fraction* are independent of the
    // upfront premium P: E[reinst premium] = k * P with
    // k = E[reinstated]/limit * rate. Breakeven: P + kP = E[recovery].
    terms.upfront_premium = 1.0;  // compute k against a unit premium

    AnalysisRequest r;
    r.label = std::to_string(n) + " reinstatements";
    r.portfolio = &s.portfolio;
    r.yet = &s.yet;
    r.core_simulation = false;  // treaty pricing needs no core YLT
    r.reinstatement_terms.assign(s.portfolio.layer_count(), terms);
    requests.push_back(std::move(r));
  }

  AnalysisSession session;
  const std::vector<AnalysisResult> results = session.run_batch(requests);

  perf::Table table({"reinstatements", "annual capacity",
                     "E[recovery]", "E[reinst. premium] @ breakeven",
                     "breakeven upfront"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ext::ReinstatementResult& r = *results[i].reinstatements;
    const double expected_recovery = r.expected_recovery(0);
    const double k = r.expected_reinstatement_premium(0);  // per unit P
    const double breakeven = expected_recovery / (1.0 + k);
    const double capacity = (counts[i] + 1.0) * occ_limit;

    table.add_row({std::to_string(counts[i]),
                   perf::format_fixed(capacity, 0),
                   perf::format_fixed(expected_recovery, 0),
                   perf::format_fixed(k * breakeven, 0),
                   perf::format_fixed(breakeven, 0)});
  }
  table.print(std::cout);

  std::cout << "\nexpected: recoveries grow with the reinstatement count "
               "(more annual capacity),\nwhile reinstatement premium "
               "income offsets part of the price — the breakeven\n"
               "upfront premium grows sub-linearly in capacity.\n";
  return 0;
}
