// Multi-GPU throughput exploration: how trial throughput scales with
// device count and how the block-size choice interacts with it — the
// operational questions behind the paper's Figures 3 and 4, asked the
// way a capacity planner would ("how many GPUs buy real-time
// pricing?").
//
// Build & run:  ./build/examples/multi_gpu_throughput
#include <iostream>

#include "core/engine_factory.hpp"
#include "core/gpu_engines.hpp"
#include "perf/report.hpp"
#include "synth/scenarios.hpp"

int main() {
  using namespace ara;

  const synth::Scenario s = synth::paper_scaled(/*scale_down=*/250);
  const double total_events =
      static_cast<double>(s.yet.occurrence_count());

  std::cout << "workload: " << s.yet.trial_count() << " trials, "
            << total_events << " events, 15 ELTs\n\n";

  // Device-count sweep at the paper's optimal 32-thread blocks.
  perf::Table scaling({"GPUs", "simulated time", "trials/s (simulated)",
                       "efficiency"});
  double t1 = 0.0;
  for (std::size_t gpus = 1; gpus <= 4; ++gpus) {
    EngineConfig cfg = paper_config(EngineKind::kMultiGpu);
    MultiGpuEngine engine(simgpu::tesla_m2090(), gpus, cfg);
    const SimulationResult r = engine.run(s.portfolio, s.yet);
    if (gpus == 1) t1 = r.simulated_seconds;
    scaling.add_row(
        {std::to_string(gpus), perf::format_seconds(r.simulated_seconds),
         perf::format_fixed(
             static_cast<double>(s.yet.trial_count()) / r.simulated_seconds,
             0),
         perf::format_percent(t1 / (static_cast<double>(gpus) *
                                    r.simulated_seconds))});
  }
  scaling.print(std::cout);

  // Block-size sweep on the 4-GPU platform (Figure 4's question).
  std::cout << "\nblock-size sensitivity on 4 GPUs:\n";
  perf::Table blocks({"threads/block", "simulated time", "note"});
  for (unsigned block : {16u, 32u, 64u, 128u}) {
    EngineConfig cfg = paper_config(EngineKind::kMultiGpu);
    cfg.block_threads = block;
    MultiGpuEngine engine(simgpu::tesla_m2090(), 4, cfg);
    try {
      const SimulationResult r = engine.run(s.portfolio, s.yet);
      blocks.add_row({std::to_string(block),
                      perf::format_seconds(r.simulated_seconds),
                      block == 32 ? "best (= warp size)" : ""});
    } catch (const std::exception& e) {
      blocks.add_row({std::to_string(block), "infeasible",
                      "shared memory overflow"});
    }
  }
  blocks.print(std::cout);

  std::cout << "\nextrapolation: at the paper's full 1M-trial workload "
               "the 4-GPU platform sustains real-time pricing "
               "(~4.35 s per full portfolio re-price).\n";
  return 0;
}
