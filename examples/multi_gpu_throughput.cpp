// Multi-GPU throughput exploration: how trial throughput scales with
// device count and how the block-size choice interacts with it — the
// operational questions behind the paper's Figures 3 and 4, asked the
// way a capacity planner would ("how many GPUs buy real-time
// pricing?"). The sweep is expressed as one AnalysisSession batch:
// every configuration is a request with its own ExecutionPolicy, all
// sharing the same portfolio and YET, dispatched concurrently.
//
// Build & run:  ./build/examples/multi_gpu_throughput
#include <iostream>
#include <vector>

#include "core/session.hpp"
#include "perf/report.hpp"
#include "synth/scenarios.hpp"

int main() {
  using namespace ara;

  const synth::Scenario s = synth::paper_scaled(/*scale_down=*/250);
  const double total_events =
      static_cast<double>(s.yet.occurrence_count());

  std::cout << "workload: " << s.yet.trial_count() << " trials, "
            << total_events << " events, 15 ELTs\n\n";

  AnalysisSession session;

  // Device-count sweep at the paper's optimal 32-thread blocks — one
  // request per platform size, run as a single batch.
  std::vector<AnalysisRequest> sweep;
  for (std::size_t gpus = 1; gpus <= 4; ++gpus) {
    AnalysisRequest r;
    r.label = std::to_string(gpus) + " GPUs";
    r.portfolio = &s.portfolio;
    r.yet = &s.yet;
    ExecutionPolicy policy =
        ExecutionPolicy::with_engine(EngineKind::kMultiGpu);
    policy.gpu_count = gpus;
    r.policy = policy;
    sweep.push_back(std::move(r));
  }
  const std::vector<AnalysisResult> platforms = session.run_batch(sweep);

  perf::Table scaling({"GPUs", "simulated time", "trials/s (simulated)",
                       "efficiency"});
  const double t1 = platforms.front().simulation.simulated_seconds;
  for (std::size_t i = 0; i < platforms.size(); ++i) {
    const double t = platforms[i].simulation.simulated_seconds;
    scaling.add_row(
        {std::to_string(i + 1), perf::format_seconds(t),
         perf::format_fixed(
             static_cast<double>(s.yet.trial_count()) / t, 0),
         perf::format_percent(t1 / (static_cast<double>(i + 1) * t))});
  }
  scaling.print(std::cout);

  // Block-size sweep on the 4-GPU platform (Figure 4's question).
  std::cout << "\nblock-size sensitivity on 4 GPUs:\n";
  perf::Table blocks({"threads/block", "simulated time", "note"});
  for (unsigned block : {16u, 32u, 64u, 128u}) {
    ExecutionPolicy policy =
        ExecutionPolicy::with_engine(EngineKind::kMultiGpu);
    EngineConfig cfg = paper_config(EngineKind::kMultiGpu);
    cfg.block_threads = block;
    policy.config = cfg;

    AnalysisRequest r;
    r.portfolio = &s.portfolio;
    r.yet = &s.yet;
    r.policy = policy;
    try {
      const AnalysisResult result = session.run(r);
      blocks.add_row({std::to_string(block),
                      perf::format_seconds(
                          result.simulation.simulated_seconds),
                      block == 32 ? "best (= warp size)" : ""});
    } catch (const std::exception& e) {
      blocks.add_row({std::to_string(block), "infeasible",
                      "shared memory overflow"});
    }
  }
  blocks.print(std::cout);

  std::cout << "\nextrapolation: at the paper's full 1M-trial workload "
               "the 4-GPU platform sustains real-time pricing "
               "(~4.35 s per full portfolio re-price).\n";
  return 0;
}
