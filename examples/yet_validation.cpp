// Statistical validation of a pre-simulated Year Event Table — the
// workflow the paper highlights as an advantage of pre-simulation
// ("a pre-simulated YET lends itself to statistical validation and to
// tuning for seasonality and cluster effects", Sec. I). The example
// validates a freshly generated YET against its catalogue, then shows
// the checks firing on a deliberately mis-specified catalogue.
//
// Build & run:  ./build/examples/yet_validation
#include <iostream>

#include "core/session.hpp"
#include "perf/report.hpp"
#include "synth/portfolio_generator.hpp"
#include "synth/validation.hpp"
#include "synth/yet_generator.hpp"

namespace {

void print_validation(const ara::synth::YetValidation& v) {
  using namespace ara;
  perf::Table table({"region", "rate (exp/obs)", "z", "in-season (exp/obs)",
                     "dispersion", "chi2 (dof)"});
  for (const synth::RegionValidation& r : v.regions) {
    table.add_row(
        {r.region,
         perf::format_fixed(r.expected_rate, 1) + " / " +
             perf::format_fixed(r.observed_rate, 1),
         perf::format_fixed(r.rate_z_score, 2),
         perf::format_percent(r.expected_in_season) + " / " +
             perf::format_percent(r.observed_in_season),
         perf::format_fixed(r.dispersion, 2),
         perf::format_fixed(r.id_chi2_stat, 1) + " (" +
             std::to_string(r.id_buckets - 1) + ")"});
  }
  table.print(std::cout);
  std::cout << "verdict: " << (v.healthy() ? "HEALTHY" : "REJECTED")
            << "\n\n";
}

}  // namespace

int main() {
  using namespace ara;

  synth::Catalogue cat = synth::Catalogue::make(60000, 3, 500.0);
  synth::YetGeneratorConfig cfg;
  cfg.trials = 5000;
  cfg.seed = 99;
  const Yet yet = synth::generate_yet(cat, cfg);

  std::cout << "validating " << yet.trial_count() << " trials ("
            << yet.occurrence_count() << " occurrences) against the "
            << "generating catalogue:\n";
  print_validation(synth::validate_yet(cat, yet));

  std::cout << "same YET validated against a catalogue claiming half "
               "the event rates:\n";
  print_validation(synth::validate_yet(cat, yet, 0.5));

  // Clustered years: dispersion reveals what the rate check cannot.
  synth::YetGeneratorConfig clustered = cfg;
  clustered.clustering_k = 2.0;
  const Yet clustered_yet = synth::generate_yet(cat, clustered);
  std::cout << "a clustered YET (negative-binomial years, k=2) against "
               "the same catalogue —\nrates pass, dispersion flags the "
               "cluster effect:\n";
  print_validation(synth::validate_yet(cat, clustered_yet));

  // A validated YET is ready for analysis: price a small book against
  // it through an AnalysisSession, letting the cost models pick the
  // engine for this workload shape.
  synth::PortfolioGeneratorConfig pc;
  pc.elt_count = 6;
  pc.seed = 7;
  const Portfolio portfolio = synth::generate_portfolio(cat, pc);

  AnalysisSession session(ExecutionPolicy::auto_select());
  AnalysisRequest request;
  request.portfolio = &portfolio;
  request.yet = &yet;
  request.metrics = MetricsSpec::layer_summaries();
  const AnalysisResult result = session.run(request);
  std::cout << "analysis of the healthy YET via "
            << result.simulation.engine_name << " (auto-selected, predicted "
            << perf::format_seconds(result.predicted_seconds)
            << " on paper hardware): layer-0 AAL "
            << perf::format_fixed(result.metrics.layers[0].aal, 0) << '\n';
  return 0;
}
