// The paper's central data-structure argument (Sec. III): a direct
// access table costs one memory access per lookup, while compact
// structures (binary search, hashing) cost more accesses but less
// memory. google-benchmark micro-benchmarks of real lookup throughput
// on this host for every structure, plus the combined-table layout the
// paper evaluated and rejected.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/lookup_table.hpp"
#include "synth/catalogue.hpp"
#include "synth/elt_generator.hpp"
#include "synth/rng.hpp"

namespace {

using namespace ara;

constexpr EventId kCatalogue = 200'000;  // paper: 2M; scaled 10x for RAM
constexpr std::size_t kRecords = 20'000; // paper's ELT density (10%... 1%)

const Elt& shared_elt() {
  static const Elt elt = [] {
    synth::Catalogue cat = synth::Catalogue::make(kCatalogue, 3, 100.0);
    synth::EltGeneratorConfig cfg;
    cfg.record_count = kRecords;
    cfg.seed = 77;
    return synth::generate_elt(cat, cfg);
  }();
  return elt;
}

// Pre-generated random probe sequence (the YET's access pattern).
const std::vector<EventId>& probes() {
  static const std::vector<EventId> p = [] {
    synth::Xoshiro256StarStar rng(123);
    std::vector<EventId> out(1 << 16);
    for (EventId& e : out) {
      e = 1 + static_cast<EventId>(rng.next_below(kCatalogue));
    }
    return out;
  }();
  return p;
}

void lookup_benchmark(benchmark::State& state, LookupKind kind) {
  const std::unique_ptr<LossLookup> table = make_lookup(kind, shared_elt());
  const auto& ps = probes();
  std::size_t i = 0;
  double sink = 0.0;
  for (auto _ : state) {
    sink += table->lookup(ps[i++ & (ps.size() - 1)]);
  }
  benchmark::DoNotOptimize(sink);
  state.counters["bytes"] =
      static_cast<double>(table->memory_bytes());
  state.counters["accesses/lookup"] = table->accesses_per_lookup();
}

void BM_DirectAccess64(benchmark::State& s) {
  lookup_benchmark(s, LookupKind::kDirectAccess64);
}
void BM_DirectAccess32(benchmark::State& s) {
  lookup_benchmark(s, LookupKind::kDirectAccess32);
}
void BM_SortedBinarySearch(benchmark::State& s) {
  lookup_benchmark(s, LookupKind::kSorted);
}
void BM_HashLinearProbe(benchmark::State& s) {
  lookup_benchmark(s, LookupKind::kHash);
}
void BM_CuckooHash(benchmark::State& s) {
  lookup_benchmark(s, LookupKind::kCuckoo);
}
void BM_CompressedBitmapRank(benchmark::State& s) {
  lookup_benchmark(s, LookupKind::kCompressed);
}

BENCHMARK(BM_DirectAccess64);
BENCHMARK(BM_DirectAccess32);
BENCHMARK(BM_SortedBinarySearch);
BENCHMARK(BM_HashLinearProbe);
BENCHMARK(BM_CuckooHash);
BENCHMARK(BM_CompressedBitmapRank);

// The paper's "second implementation": 15 ELTs merged into one
// row-major combined table. Independent tables beat it because the
// combined layout forces cooperative row loads; here we measure the
// raw lookup path of each layout for one event across all 15 ELTs.
void BM_IndependentTables15(benchmark::State& state) {
  std::vector<Elt> elts;
  std::vector<std::unique_ptr<DirectAccessTable<double>>> tables;
  synth::Catalogue cat = synth::Catalogue::make(kCatalogue, 3, 100.0);
  for (int i = 0; i < 15; ++i) {
    synth::EltGeneratorConfig cfg;
    cfg.record_count = kRecords / 10;
    cfg.seed = 100 + i;
    elts.push_back(synth::generate_elt(cat, cfg));
    tables.push_back(
        std::make_unique<DirectAccessTable<double>>(elts.back()));
  }
  const auto& ps = probes();
  std::size_t i = 0;
  double sink = 0.0;
  for (auto _ : state) {
    const EventId e = ps[i++ & (ps.size() - 1)];
    for (const auto& t : tables) sink += t->at(e);
  }
  benchmark::DoNotOptimize(sink);
}

void BM_CombinedTable15(benchmark::State& state) {
  std::vector<Elt> elts;
  synth::Catalogue cat = synth::Catalogue::make(kCatalogue, 3, 100.0);
  for (int i = 0; i < 15; ++i) {
    synth::EltGeneratorConfig cfg;
    cfg.record_count = kRecords / 10;
    cfg.seed = 100 + i;
    elts.push_back(synth::generate_elt(cat, cfg));
  }
  std::vector<const Elt*> ptrs;
  for (const Elt& e : elts) ptrs.push_back(&e);
  const CombinedDirectTable<double> combined(ptrs);
  const auto& ps = probes();
  std::size_t i = 0;
  double sink = 0.0;
  for (auto _ : state) {
    const EventId e = ps[i++ & (ps.size() - 1)];
    for (std::size_t j = 0; j < 15; ++j) sink += combined.at(e, j);
  }
  benchmark::DoNotOptimize(sink);
}

BENCHMARK(BM_IndependentTables15);
BENCHMARK(BM_CombinedTable15);

}  // namespace

BENCHMARK_MAIN();
