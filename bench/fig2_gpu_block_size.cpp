// Figure 2: basic GPU implementation on the Tesla C2075, varying the
// number of threads per CUDA block from 64 to 640. Paper result: at
// least 128 threads/block are needed, best performance at 256
// (38.47 s), diminishing/no improvement beyond.
#include <iostream>

#include "common.hpp"
#include "core/engine_factory.hpp"
#include "core/gpu_engines.hpp"

int main() {
  using namespace ara;
  bench::print_header("Figure 2 — basic GPU, threads per block",
                      "Fig. 2 (threads per block vs time, C2075)");

  const simgpu::GpuCostModel model(simgpu::tesla_c2075());
  const OpCounts ops = bench::with_global_scratch(bench::paper_ops());

  perf::Table table({"threads/block", "occupancy", "model time", "paper"});
  for (unsigned block : {64u, 128u, 192u, 256u, 320u, 384u, 448u, 512u,
                         576u, 640u}) {
    const simgpu::KernelCost cost =
        model.estimate(bench::basic_launch(block), bench::basic_traits(), ops);
    std::string paper = "-";
    if (block == 256) paper = "38.47 s (best)";
    table.add_row({std::to_string(block),
                   perf::format_percent(cost.occupancy.occupancy),
                   perf::format_seconds(cost.total_seconds), paper});
  }
  table.print(std::cout);
  std::cout << '\n';

  bench::print_measured_footer(
      ExecutionPolicy::with_engine(EngineKind::kGpuBasic));
  return 0;
}
