// Shared helpers for the figure-reproduction benchmarks.
//
// Every benchmark reports, for its figure:
//   * the PAPER column   — the value published in the paper (where the
//     paper gives one),
//   * the MODEL column   — the cost model evaluated at the paper's full
//     workload (1M trials x 1000 events, 15 ELTs, 2M-event catalogue)
//     on the paper's hardware profiles,
//   * a measured footer  — real wall-clock of the same engine running
//     the scaled-down workload on this host (functional execution).
//
// The MODEL numbers are what reproduce the figures; the measured runs
// prove the engines actually execute the workload (see DESIGN.md §2).
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/engine.hpp"
#include "core/session.hpp"
#include "perf/report.hpp"
#include "simgpu/gpu_cost_model.hpp"
#include "synth/scenarios.hpp"

namespace ara::bench {

/// Operation counts of the paper's headline workload.
inline OpCounts paper_ops() {
  OpCounts ops;
  ops.event_fetches = 1'000'000'000ULL;
  ops.elt_lookups = 15'000'000'000ULL;
  ops.financial_ops = 15'000'000'000ULL;
  ops.occurrence_ops = 1'000'000'000ULL;
  ops.aggregate_ops = 1'000'000'000ULL;
  return ops;
}

inline OpCounts scale_ops(OpCounts ops, double factor) {
  ops.event_fetches = static_cast<std::uint64_t>(ops.event_fetches * factor);
  ops.elt_lookups = static_cast<std::uint64_t>(ops.elt_lookups * factor);
  ops.financial_ops = static_cast<std::uint64_t>(ops.financial_ops * factor);
  ops.occurrence_ops =
      static_cast<std::uint64_t>(ops.occurrence_ops * factor);
  ops.aggregate_ops = static_cast<std::uint64_t>(ops.aggregate_ops * factor);
  return ops;
}

/// Launch shape of the basic kernel over 1M trials.
inline simgpu::LaunchConfig basic_launch(unsigned block,
                                         std::size_t trials = 1'000'000) {
  simgpu::LaunchConfig c;
  c.block_threads = block;
  c.grid_blocks = static_cast<unsigned>((trials + block - 1) / block);
  c.regs_per_thread = 20;
  return c;
}

inline simgpu::KernelTraits basic_traits() {
  simgpu::KernelTraits t;
  t.loss_bytes = 8;
  t.mlp_per_thread = 1;
  t.chunked = false;
  t.scratch_in_global = true;
  return t;
}

/// Launch shape of the optimised kernel (88-event chunks).
inline simgpu::LaunchConfig optimized_launch(unsigned block,
                                             std::size_t trials = 1'000'000,
                                             unsigned chunk = 88) {
  simgpu::LaunchConfig c;
  c.block_threads = block;
  c.grid_blocks = static_cast<unsigned>((trials + block - 1) / block);
  c.shared_bytes_per_block =
      static_cast<std::size_t>(block) * chunk * 8 + 256;
  c.regs_per_thread = 63;
  return c;
}

inline simgpu::KernelTraits optimized_traits() {
  simgpu::KernelTraits t;
  t.loss_bytes = 4;
  t.mlp_per_thread = 16;
  t.chunked = true;
  t.scratch_in_global = false;
  t.scratch_in_registers = true;
  t.unrolled = true;
  return t;
}

/// Basic-kernel scratch traffic (Algorithm 1's lx/lox in global mem).
inline OpCounts with_global_scratch(OpCounts ops) {
  ops.global_updates = ops.occurrence_ops * kScratchTouchesPerEvent;
  return ops;
}

/// Scale factor for the measured footer runs; override with
/// ARA_BENCH_SCALE (divides the paper's 1M trials).
inline std::size_t measured_scale() {
  if (const char* env = std::getenv("ARA_BENCH_SCALE")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 2000;  // 500 trials x 1000 events: ~10^7 lookups per run
}

/// Runs the engine `policy` describes on a paper-shaped scaled
/// workload through `session` and prints the measured wall clock (the
/// functional-execution proof line).
inline void print_measured_footer(AnalysisSession& session,
                                  const ExecutionPolicy& policy) {
  const std::size_t scale = measured_scale();
  const synth::Scenario s = synth::paper_scaled(scale);
  AnalysisRequest request;
  request.portfolio = &s.portfolio;
  request.yet = &s.yet;
  request.policy = policy;
  const SimulationResult r = session.run(request).simulation;
  std::cout << "measured: " << r.engine_name << " on paper workload / "
            << scale << " (" << s.yet.trial_count() << " trials): "
            << perf::format_seconds(r.wall_seconds)
            << " wall on this host (functional execution of "
            << r.ops.elt_lookups << " lookups)\n";
}

/// Single-run convenience: a throwaway session around one footer.
inline void print_measured_footer(const ExecutionPolicy& policy) {
  AnalysisSession session(policy);
  print_measured_footer(session, policy);
}

inline void print_header(const std::string& title,
                         const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n"
            << "reproduces: " << paper_ref << "\n\n";
}

}  // namespace ara::bench
