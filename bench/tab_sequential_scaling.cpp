// Section IV-A's in-text scaling claim: the sequential running time is
// linear in (a) events per trial, (b) number of trials, (c) average
// ELTs per layer and (d) number of layers. Reproduced twice: in the
// model (exactly linear by construction at fixed per-op costs) and by
// measuring the real reference engine on this host across each sweep.
#include <functional>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "core/reference_engine.hpp"
#include "perf/cpu_cost_model.hpp"
#include "perf/machine_profile.hpp"
#include "perf/stopwatch.hpp"
#include "synth/scenarios.hpp"

namespace {

using namespace ara;

// Builds a workload with the given shape knobs and measures the
// reference engine.
double measure(std::size_t trials, double events, std::size_t elts,
               std::size_t layers) {
  synth::Catalogue cat = synth::Catalogue::make(20000, 6, 500.0);
  synth::YetGeneratorConfig yc;
  yc.trials = trials;
  yc.target_events_per_trial = events;
  yc.seed = 9;
  const Yet yet = synth::generate_yet(cat, yc);

  synth::PortfolioGeneratorConfig pc;
  pc.elt_count = std::max<std::size_t>(elts, 2);
  pc.layer_count = layers;
  pc.min_elts_per_layer = pc.max_elts_per_layer = elts;
  pc.elt.record_count = 200;
  pc.seed = 10;
  const Portfolio p = synth::generate_portfolio(cat, pc);

  ReferenceEngine engine;
  // Warm-up + timed run for a stable measurement.
  engine.run(p, yet);
  perf::Stopwatch sw;
  engine.run(p, yet);
  return sw.seconds();
}

void sweep(const std::string& dim, const std::vector<std::size_t>& values,
           const std::function<double(std::size_t)>& measure_at,
           const std::function<double(std::size_t)>& model_at) {
  perf::Table table({dim, "measured (this host)", "measured ratio",
                     "model (i7-2600)", "model ratio"});
  const double m0 = measure_at(values.front());
  const double s0 = model_at(values.front());
  for (const std::size_t v : values) {
    const double m = measure_at(v);
    const double s = model_at(v);
    table.add_row({std::to_string(v), perf::format_seconds(m),
                   perf::format_ratio(m / m0), perf::format_seconds(s),
                   perf::format_ratio(s / s0)});
  }
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  using namespace ara;
  bench::print_header(
      "Sequential scaling — linear in every workload dimension",
      "Sec. IV-A in-text claim (linear increase in running time)");

  const perf::CpuCostModel model(perf::intel_i7_2600());
  auto model_for = [&](std::size_t trials, double events, std::size_t elts,
                       std::size_t layers) {
    OpCounts ops;
    const auto occ = static_cast<std::uint64_t>(trials * events) * layers;
    ops.event_fetches = occ;
    ops.elt_lookups = occ * elts;
    ops.financial_ops = occ * elts;
    ops.occurrence_ops = occ;
    ops.aggregate_ops = occ;
    return model.total_seconds(ops, 1);
  };

  std::cout << "-- number of trials --\n";
  sweep(
      "trials", {250, 500, 1000, 2000},
      [&](std::size_t v) { return measure(v, 200.0, 4, 1); },
      [&](std::size_t v) { return model_for(v, 200.0, 4, 1); });

  std::cout << "-- events per trial --\n";
  sweep(
      "events/trial", {100, 200, 400, 800},
      [&](std::size_t v) {
        return measure(500, static_cast<double>(v), 4, 1);
      },
      [&](std::size_t v) {
        return model_for(500, static_cast<double>(v), 4, 1);
      });

  std::cout << "-- ELTs per layer --\n";
  sweep(
      "elts/layer", {2, 4, 8, 16},
      [&](std::size_t v) { return measure(500, 200.0, v, 1); },
      [&](std::size_t v) { return model_for(500, 200.0, v, 1); });

  std::cout << "-- layers --\n";
  sweep(
      "layers", {1, 2, 4, 8},
      [&](std::size_t v) { return measure(500, 200.0, 4, v); },
      [&](std::size_t v) { return model_for(500, 200.0, 4, v); });

  std::cout << "paper anchor: full workload (1M trials x 1000 events x 15 "
               "ELTs) = 337.47 s sequential\n";
  return 0;
}
