// Adaptive-stopping bench: the tentpole gate for DESIGN.md §10. Two
// scenarios, each a gate, not just a measurement:
//
//   adaptive_aal — an adaptive run targeting the portfolio AAL at a
//                  tolerance derived from the workload's measured
//                  coefficient of variation, sized so the stopping
//                  rule should fire well before the full budget. Gates:
//                  >= 30% of the trials saved, the adaptive estimate
//                  within the declared tolerance of the fixed full-run
//                  estimate, and bitwise reproducibility of a rerun.
//
//   race_bai     — three candidate portfolios with separated expected
//                  losses raced under successive elimination. Gates:
//                  the BAI winner matches the arm the fixed full runs
//                  rank best, and pruning spends fewer total trials
//                  than pricing every arm at full budget.
//
// --smoke shrinks the workload for ctest; the gates are identical in
// both modes because every quantity involved is deterministic for a
// fixed seed (DESIGN.md §10's reproducibility contract).
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/engine_factory.hpp"
#include "core/metrics/stopping.hpp"
#include "core/session.hpp"
#include "serve/service.hpp"
#include "synth/scenarios.hpp"

namespace ara::bench_adaptive {
namespace {

struct AdaptiveOutcome {
  std::size_t trials_total = 0;
  std::size_t trials_executed = 0;
  double saved_pct = 0.0;
  double rel_tol = 0.0;
  double estimate_fixed = 0.0;
  double estimate_adaptive = 0.0;
  bool within_tolerance = false;
  bool reproducible = false;
  double wall_ms = 0.0;
  bool pass = false;
};

struct RaceOutcome {
  std::size_t arms = 0;
  std::size_t total_trials = 0;
  std::size_t full_trials = 0;
  double saved_pct = 0.0;
  std::size_t winner = 0;
  std::size_t winner_expected = 0;
  bool separated = false;
  double wall_ms = 0.0;
  bool pass = false;
};

// The portfolio's per-trial loss (layers summed), from a fixed run's
// YLT — the same association order the streaming reducers use.
std::vector<double> portfolio_losses(const Ylt& ylt) {
  std::vector<double> sums(ylt.trial_count(), 0.0);
  for (std::size_t layer = 0; layer < ylt.layer_count(); ++layer) {
    const auto annual = ylt.layer_annual_vector(layer);
    for (std::size_t t = 0; t < annual.size(); ++t) sums[t] += annual[t];
  }
  return sums;
}

AdaptiveOutcome run_adaptive_scenario(bool smoke) {
  AdaptiveOutcome out;

  serve::SynthSpec spec;
  spec.trials = smoke ? 6000 : 40000;
  spec.events_per_trial = smoke ? 30.0 : 50.0;
  spec.catalogue = smoke ? 600 : 4000;
  spec.elts = 3;
  spec.layers = 2;
  spec.seed = 1913;
  const serve::ServedWorkload w = serve::materialize_synth(spec);
  out.trials_total = w.yet.trial_count();

  // Fixed full-budget baseline: the exact estimate the adaptive run is
  // judged against, and the cv that sizes the tolerance.
  const ExecutionPolicy policy =
      ExecutionPolicy::with_engine(EngineKind::kSequentialFused);
  const auto engine = make_engine(policy);
  const SimulationResult mono = engine->run(w.portfolio, w.yet);
  const std::vector<double> losses = portfolio_losses(mono.ylt);
  double mean = 0.0;
  for (const double x : losses) mean += x;
  mean /= static_cast<double>(losses.size());
  double var = 0.0;
  for (const double x : losses) var += (x - mean) * (x - mean);
  var /= static_cast<double>(losses.size() - 1);
  const double cv = std::sqrt(var) / mean;
  out.estimate_fixed = mean;

  // Size the tolerance so the CLT trial requirement lands at ~30% of
  // the budget: n_req = (z * cv / tol)^2 = 0.3 * total. The geometric
  // wave schedule overshoots the requirement by at most one growth
  // step, so the stop lands well under 70% of the budget.
  const double z = metrics::z_for_confidence(0.95);
  out.rel_tol = z * cv / std::sqrt(0.3 * static_cast<double>(out.trials_total));

  metrics::StoppingSpec sspec;
  sspec.relative_tolerance = out.rel_tol;
  sspec.confidence = 0.95;
  sspec.min_trials = out.trials_total / 20;

  AnalysisRequest request;
  request.portfolio = &w.portfolio;
  request.yet = &w.yet;
  request.metrics = MetricsSpec::portfolio_rollup();
  request.ylt_retention = YltRetention::kDiscard;
  request.stopping = sspec;
  ExecutionPolicy adaptive_policy = policy;
  adaptive_policy.shard_trials = out.trials_total / 20;
  request.policy = adaptive_policy;

  AnalysisSession session;
  const auto started = std::chrono::steady_clock::now();
  const AnalysisResult first = session.run(request);
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - started)
                    .count();
  const AnalysisResult second = session.run(request);

  out.trials_executed = first.trials_executed;
  out.saved_pct = 100.0 * (1.0 - static_cast<double>(out.trials_executed) /
                                     static_cast<double>(out.trials_total));
  out.estimate_adaptive =
      first.half_widths.empty() ? 0.0 : first.half_widths[0].estimate;
  out.within_tolerance =
      std::abs(out.estimate_adaptive - out.estimate_fixed) <=
      out.rel_tol * std::abs(out.estimate_fixed);
  out.reproducible =
      second.trials_executed == first.trials_executed &&
      !second.half_widths.empty() &&
      second.half_widths[0].estimate == out.estimate_adaptive &&
      second.half_widths[0].half_width == first.half_widths[0].half_width;
  out.pass = first.stopped_early && out.saved_pct >= 30.0 &&
             out.within_tolerance && out.reproducible;
  return out;
}

RaceOutcome run_race_scenario(bool smoke) {
  RaceOutcome out;

  const std::size_t trials = smoke ? 6000 : 40000;
  synth::Catalogue cat = synth::Catalogue::make(smoke ? 600 : 4000, 6, 1000.0);
  synth::YetGeneratorConfig yc;
  yc.trials = trials;
  yc.target_events_per_trial = smoke ? 30.0 : 50.0;
  yc.seed = 1913;
  const Yet yet = synth::generate_yet(cat, yc);

  // Three candidate structures with separated expected losses: the
  // same layer shape, ELT severities scaled apart, so the fixed runs
  // rank them unambiguously and elimination has something to prune.
  const double scales[] = {1.0, 1.3, 1.6};
  std::vector<Portfolio> portfolios;
  for (std::size_t i = 0; i < 3; ++i) {
    synth::PortfolioGeneratorConfig pc;
    pc.elt_count = 3;
    pc.layer_count = 2;
    pc.min_elts_per_layer = 3;
    pc.max_elts_per_layer = 3;
    pc.elt.record_count = smoke ? 60 : 400;
    pc.elt.mean_loss = 2.0e6 * scales[i];
    pc.elt.terms.retention = 1.0e5;
    pc.elt.terms.limit = 5.0e8;
    pc.elt.terms.share = 0.8;
    pc.seed = 1914;
    portfolios.push_back(synth::generate_portfolio(cat, pc));
  }
  out.arms = portfolios.size();
  out.full_trials = trials * portfolios.size();

  // The ranking the race must reproduce: fixed full-budget AAL per arm.
  const ExecutionPolicy policy =
      ExecutionPolicy::with_engine(EngineKind::kSequentialFused);
  const auto engine = make_engine(policy);
  double best = 0.0;
  for (std::size_t i = 0; i < portfolios.size(); ++i) {
    const SimulationResult r = engine->run(portfolios[i], yet);
    const std::vector<double> losses = portfolio_losses(r.ylt);
    double mean = 0.0;
    for (const double x : losses) mean += x;
    mean /= static_cast<double>(losses.size());
    if (i == 0 || mean < best) {
      best = mean;
      out.winner_expected = i;
    }
  }

  std::vector<RaceEntry> entries;
  for (std::size_t i = 0; i < portfolios.size(); ++i) {
    entries.push_back({"arm" + std::to_string(i), &portfolios[i]});
  }
  RaceSpec spec;
  spec.objective = {metrics::StopMetric::kAal, 0.0};
  spec.minimize = true;
  spec.confidence = 0.95;
  spec.min_trials = trials / 20;
  ExecutionPolicy race_policy = policy;
  race_policy.shard_trials = trials / 20;
  spec.policy = race_policy;

  AnalysisSession session;
  const auto started = std::chrono::steady_clock::now();
  const RaceResult result = session.race(entries, yet, spec);
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - started)
                    .count();

  out.total_trials = result.total_trials;
  out.saved_pct = 100.0 * (1.0 - static_cast<double>(out.total_trials) /
                                     static_cast<double>(out.full_trials));
  out.winner = result.winner;
  out.separated = result.separated;
  out.pass = out.winner == out.winner_expected && out.saved_pct >= 10.0;
  return out;
}

void write_json(const std::string& path, const AdaptiveOutcome& a,
                const RaceOutcome& r, bool smoke) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_adaptive: cannot write " << path << "\n";
    return;
  }
  out << "{\n  \"bench\": \"adaptive\",\n  \"mode\": \""
      << (smoke ? "smoke" : "full") << "\",\n  \"scenarios\": [\n"
      << "    {\n"
      << "      \"name\": \"adaptive_aal\",\n"
      << "      \"trials_total\": " << a.trials_total << ",\n"
      << "      \"trials_executed\": " << a.trials_executed << ",\n"
      << "      \"trials_saved_pct\": " << a.saved_pct << ",\n"
      << "      \"rel_tol\": " << a.rel_tol << ",\n"
      << "      \"estimate_fixed\": " << a.estimate_fixed << ",\n"
      << "      \"estimate_adaptive\": " << a.estimate_adaptive << ",\n"
      << "      \"within_tolerance\": "
      << (a.within_tolerance ? "true" : "false") << ",\n"
      << "      \"reproducible\": " << (a.reproducible ? "true" : "false")
      << ",\n"
      << "      \"wall_ms\": " << a.wall_ms << ",\n"
      << "      \"pass\": " << (a.pass ? "true" : "false") << "\n"
      << "    },\n"
      << "    {\n"
      << "      \"name\": \"race_bai\",\n"
      << "      \"arms\": " << r.arms << ",\n"
      << "      \"total_trials\": " << r.total_trials << ",\n"
      << "      \"full_trials\": " << r.full_trials << ",\n"
      << "      \"trials_saved_pct\": " << r.saved_pct << ",\n"
      << "      \"winner\": " << r.winner << ",\n"
      << "      \"winner_expected\": " << r.winner_expected << ",\n"
      << "      \"separated\": " << (r.separated ? "true" : "false") << ",\n"
      << "      \"wall_ms\": " << r.wall_ms << ",\n"
      << "      \"pass\": " << (r.pass ? "true" : "false") << "\n"
      << "    }\n"
      << "  ]\n}\n";
  std::cout << "bench_adaptive: wrote " << path << "\n";
}

int run(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_adaptive.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  const AdaptiveOutcome a = run_adaptive_scenario(smoke);
  std::cout << "  adaptive_aal: " << a.trials_executed << "/"
            << a.trials_total << " trials (saved " << a.saved_pct
            << "%) estimate "
            << (a.within_tolerance ? "within" : "OUTSIDE") << " tolerance, "
            << (a.reproducible ? "reproducible" : "NOT REPRODUCIBLE")
            << " -> " << (a.pass ? "pass" : "FAIL") << "\n";

  const RaceOutcome r = run_race_scenario(smoke);
  std::cout << "  race_bai: winner arm" << r.winner << " (expected arm"
            << r.winner_expected << "), " << r.total_trials << "/"
            << r.full_trials << " trials (saved " << r.saved_pct << "%), "
            << (r.separated ? "separated" : "budget-bound") << " -> "
            << (r.pass ? "pass" : "FAIL") << "\n";

  write_json(out_path, a, r, smoke);
  if (!a.pass || !r.pass) {
    std::cerr << "bench_adaptive: GATE FAILED\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ara::bench_adaptive

int main(int argc, char** argv) {
  return ara::bench_adaptive::run(argc, argv);
}
