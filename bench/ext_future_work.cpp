// The paper's future-work items (Sec. VI), implemented and measured:
//  1. "compressed representations of data in memory" — the
//     bitmap+rank CompressedLossTable vs the direct access table:
//     memory saved, extra accesses per lookup, and the modelled impact
//     on the multi-GPU runtime.
//  2. "fine grain analysis, such as secondary uncertainty" — the
//     SecondaryUncertaintyEngine: effect of per-event damage-ratio
//     sampling on the portfolio risk metrics.
#include <iostream>

#include "common.hpp"
#include "core/cpu_engines.hpp"
#include "core/lookup_table.hpp"
#include "core/metrics/risk_measures.hpp"
#include "extensions/secondary_uncertainty.hpp"
#include "io/compressed_yet.hpp"
#include "synth/scenarios.hpp"

int main() {
  using namespace ara;
  bench::print_header("Extensions — the paper's future work",
                      "Sec. VI (compressed tables, secondary uncertainty)");

  // ---- 1. Compressed loss tables ---------------------------------------
  {
    const synth::Scenario s = synth::paper_scaled(100);  // 20k-event cat.
    const Elt& elt = s.portfolio.elts()[0];
    const DirectAccessTable<float> direct(elt);
    const CompressedLossTable compressed(elt);

    perf::Table table({"representation", "bytes/ELT (scaled)",
                       "paper-scale bytes/ELT", "accesses/lookup"});
    const double scale = 2'000'000.0 / (elt.catalogue_size() + 1.0);
    table.add_row({"direct access (f32)",
                   std::to_string(direct.memory_bytes()),
                   std::to_string(static_cast<std::uint64_t>(
                       direct.memory_bytes() * scale)),
                   perf::format_fixed(direct.accesses_per_lookup(), 1)});
    table.add_row({"compressed bitmap+rank",
                   std::to_string(compressed.memory_bytes()),
                   std::to_string(static_cast<std::uint64_t>(
                       compressed.memory_bytes() * scale)),
                   perf::format_fixed(compressed.accesses_per_lookup(), 1)});
    table.print(std::cout);

    // Modelled effect on the 4-GPU runtime: lookups cost ~3 transactions
    // instead of 1, but 15 ELTs drop from 120 MB to ~9 MB of device
    // memory each (paper scale), freeing room for more trials per GPU.
    const simgpu::GpuCostModel model(simgpu::tesla_m2090());
    OpCounts ops = bench::scale_ops(bench::paper_ops(), 0.25);
    const double t_direct =
        model.estimate(bench::optimized_launch(32, 250'000),
                       bench::optimized_traits(), ops)
            .total_seconds;
    ops.elt_lookups *= 3;  // bit test + rank + packed-array access
    const double t_compressed =
        model.estimate(bench::optimized_launch(32, 250'000),
                       bench::optimized_traits(), ops)
            .total_seconds;
    const double mem_ratio = static_cast<double>(direct.memory_bytes()) /
                             static_cast<double>(compressed.memory_bytes());
    std::cout << "\nmodelled 4-GPU runtime: direct "
              << perf::format_seconds(t_direct) << " vs compressed "
              << perf::format_seconds(t_compressed)
              << " — compression trades " << perf::format_ratio(
                     t_compressed / t_direct)
              << " runtime for " << perf::format_ratio(mem_ratio)
              << " less table memory\n\n";
  }

  // ---- 1b. Compressed YET storage ---------------------------------------
  {
    const synth::Scenario s = synth::paper_scaled(2000);
    std::uint64_t raw = s.yet.occurrence_count() * 8 +
                        (s.yet.trial_count() + 1) * 8;
    const std::uint64_t compressed = io::compressed_yet_bytes(s.yet);
    perf::Table table({"YET storage", "bytes (scaled)", "bytes/occurrence"});
    table.add_row({"raw (8 B records + offsets)", std::to_string(raw),
                   perf::format_fixed(
                       static_cast<double>(raw) / s.yet.occurrence_count(),
                       2)});
    table.add_row({"varint delta-compressed", std::to_string(compressed),
                   perf::format_fixed(static_cast<double>(compressed) /
                                          s.yet.occurrence_count(),
                                      2)});
    table.print(std::cout);
    std::cout << "compression " << perf::format_ratio(
                     static_cast<double>(raw) /
                     static_cast<double>(compressed))
              << " — at paper scale the 8 GB YET ships in ~"
              << perf::format_fixed(8.0 * compressed / raw, 1)
              << " GB\n\n";
  }

  // ---- 2. Secondary uncertainty ----------------------------------------
  {
    const synth::Scenario s = synth::paper_scaled(2000);
    FusedSequentialEngine deterministic;
    ext::SecondaryUncertaintyConfig cfg;
    cfg.alpha = 1.2;
    cfg.beta = 2.4;
    ext::SecondaryUncertaintyEngine stochastic(cfg);

    const auto det = deterministic.run(s.portfolio, s.yet);
    const auto sto = stochastic.run(s.portfolio, s.yet);
    const auto det_sum = metrics::summarize_layer(det.ylt, 0);
    const auto sto_sum = metrics::summarize_layer(sto.ylt, 0);

    perf::Table table({"metric", "deterministic", "with secondary unc."});
    table.add_row({"AAL", perf::format_fixed(det_sum.aal, 0),
                   perf::format_fixed(sto_sum.aal, 0)});
    table.add_row({"std dev", perf::format_fixed(det_sum.std_dev, 0),
                   perf::format_fixed(sto_sum.std_dev, 0)});
    table.add_row({"VaR 99%", perf::format_fixed(det_sum.var_99, 0),
                   perf::format_fixed(sto_sum.var_99, 0)});
    table.add_row({"TVaR 99%", perf::format_fixed(det_sum.tvar_99, 0),
                   perf::format_fixed(sto_sum.tvar_99, 0)});
    table.add_row({"PML 100yr", perf::format_fixed(det_sum.pml_100yr, 0),
                   perf::format_fixed(sto_sum.pml_100yr, 0)});
    table.print(std::cout);
    std::cout << "\nsecondary uncertainty run: "
              << perf::format_seconds(sto.wall_seconds)
              << " wall for " << s.yet.trial_count() << " trials\n";
  }
  return 0;
}
