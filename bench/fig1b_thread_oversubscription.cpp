// Figure 1b: all 8 cores in use, varying the number of software
// threads per core. Paper result: runtime falls from ~135 s to ~125 s
// by 256 threads/core, with diminishing returns.
#include <iostream>

#include "common.hpp"
#include "core/cpu_engines.hpp"
#include "perf/cpu_cost_model.hpp"
#include "perf/machine_profile.hpp"

int main() {
  using namespace ara;
  bench::print_header("Figure 1b — thread oversubscription on 8 cores",
                      "Fig. 1b (total threads vs execution time)");

  const perf::CpuCostModel model(perf::intel_i7_2600());
  const OpCounts ops = bench::paper_ops();

  perf::Table table(
      {"threads/core", "total threads", "model time", "paper"});
  for (unsigned tpc : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    const double t = model.total_seconds(ops, 8, tpc);
    std::string paper = "-";
    if (tpc == 1) paper = "~135 s";
    if (tpc == 256) paper = "~125 s (Fig.5: 123.5 s)";
    table.add_row({std::to_string(tpc), std::to_string(8 * tpc),
                   perf::format_seconds(t), paper});
  }
  table.print(std::cout);
  std::cout << '\n';

  ExecutionPolicy policy = ExecutionPolicy::with_engine(EngineKind::kMultiCore);
  EngineConfig cfg;
  cfg.cores = 2;
  cfg.threads_per_core = 8;
  policy.config = cfg;
  bench::print_measured_footer(policy);
  return 0;
}
