// Figure 4: the optimised kernel on four M2090s, varying threads per
// block from 16 to 64. Paper result: best at 32 (the warp size, so a
// whole block swaps on a high-latency stall); 64 does not improve
// (shared-memory pressure); beyond 64 the launch is infeasible
// ("limitation on the block size the shared memory can use").
#include <iostream>

#include "common.hpp"
#include "core/engine_factory.hpp"
#include "core/gpu_engines.hpp"

int main() {
  using namespace ara;
  bench::print_header("Figure 4 — multi-GPU, threads per block",
                      "Fig. 4 (threads/block vs time on 4 GPUs)");

  const simgpu::GpuCostModel model(simgpu::tesla_m2090());
  const OpCounts per_device = bench::scale_ops(bench::paper_ops(), 0.25);

  perf::Table table(
      {"threads/block", "shared/block", "blocks/SM", "model time", "paper"});
  for (unsigned block : {16u, 32u, 64u, 128u}) {
    const auto launch = bench::optimized_launch(block, 250'000);
    const simgpu::KernelCost cost =
        model.estimate(launch, bench::optimized_traits(), per_device);
    std::string paper = "-";
    if (block == 32) paper = "4.35 s (best, = warp size)";
    if (block == 64) paper = "no improvement (shared mem)";
    if (block == 128) paper = "not runnable";
    if (!cost.feasible) {
      table.add_row({std::to_string(block),
                     std::to_string(launch.shared_bytes_per_block) + " B",
                     "-", std::string("infeasible: ") +
                              cost.infeasible_reason,
                     paper});
      continue;
    }
    table.add_row({std::to_string(block),
                   std::to_string(launch.shared_bytes_per_block) + " B",
                   std::to_string(cost.occupancy.blocks_per_sm),
                   perf::format_seconds(cost.total_seconds), paper});
  }
  table.print(std::cout);
  std::cout << '\n';

  bench::print_measured_footer(
      ExecutionPolicy::with_engine(EngineKind::kMultiGpu));
  return 0;
}
