// Figure 5: average total execution time of all five implementations
// on the paper's headline workload (1 layer, 15 loss sets, 1M trials
// of 1000 events). Paper: 337.47 / 123.5 / 38.49 / 20.63 / 4.35 s —
// the 77x headline.
#include <iostream>

#include "common.hpp"
#include "core/engine_factory.hpp"
#include "perf/cpu_cost_model.hpp"
#include "perf/machine_profile.hpp"

int main() {
  using namespace ara;
  bench::print_header("Figure 5 — platform summary (all implementations)",
                      "Fig. 5 (average total time per platform)");

  const perf::CpuCostModel cpu(perf::intel_i7_2600());
  const simgpu::GpuCostModel c2075(simgpu::tesla_c2075());
  const simgpu::GpuCostModel m2090(simgpu::tesla_m2090());

  const OpCounts ops = bench::paper_ops();

  const double t_seq = cpu.total_seconds(ops, 1);
  const double t_mc = cpu.total_seconds(ops, 8, 256);
  const double t_basic =
      c2075
          .estimate(bench::basic_launch(256), bench::basic_traits(),
                    bench::with_global_scratch(ops))
          .total_seconds;
  const double t_opt = c2075
                           .estimate(bench::optimized_launch(32),
                                     bench::optimized_traits(), ops)
                           .total_seconds;
  const double t_multi = m2090
                             .estimate(bench::optimized_launch(32, 250'000),
                                       bench::optimized_traits(),
                                       bench::scale_ops(ops, 0.25))
                             .total_seconds;

  struct Row {
    const char* name;
    double model;
    double paper;
  };
  const Row rows[] = {
      {"(i)   sequential CPU", t_seq, 337.47},
      {"(ii)  multi-core CPU (8 cores)", t_mc, 123.5},
      {"(iii) basic GPU (C2075)", t_basic, 38.49},
      {"(iv)  optimised GPU (C2075)", t_opt, 20.63},
      {"(v)   4x GPU (M2090)", t_multi, 4.35},
  };

  perf::Table table(
      {"implementation", "model time", "paper time", "model speedup",
       "paper speedup"});
  for (const Row& r : rows) {
    table.add_row({r.name, perf::format_seconds(r.model),
                   perf::format_seconds(r.paper),
                   perf::format_ratio(t_seq / r.model),
                   perf::format_ratio(337.47 / r.paper)});
  }
  table.print(std::cout);
  std::cout << "\nheadline: model " << perf::format_ratio(t_seq / t_multi)
            << " vs paper ~77x\n\n";

  // Measured: run every engine functionally on the scaled workload,
  // through one shared session.
  AnalysisSession session;
  for (const EngineKind kind : all_engine_kinds()) {
    bench::print_measured_footer(session,
                                 ExecutionPolicy::with_engine(kind));
  }
  return 0;
}
