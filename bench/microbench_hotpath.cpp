// Hot-path micro-benchmark: old layer-major formulation vs the
// trial-major fused pipeline (+ session-level table/pool caching),
// measured as real wall time on this host and emitted as
// BENCH_hotpath.json — the repo's performance trajectory record.
//
// The scenario shapes bracket the workload space:
//   * few_layers_many_trials — the paper's headline shape (trial count
//     dominates; fusion changes little, caching still helps),
//   * few_layers_10k_trials  — the same shape an order of magnitude
//     longer, where the per-trial SoA/SIMD hot loop dominates,
//   * wide_layer_many_elts   — one contract over 64 ELTs (the deepest
//     per-event combine loop, the vector kernels' target shape),
//   * many_layers_few_trials — a production book (the YET used to be
//     re-streamed per layer; the fused sweep reads it once),
//   * batch_shared_yet       — many requests against one portfolio +
//     YET through AnalysisSession (tables bound once, one persistent
//     pool) vs one-shot engine runs.
//
// The "old" paths reproduce the pre-fusion code exactly: per-run
// ThreadPool construction, per-(layer, ELT) duplicated table builds,
// one parallel_for dispatch per layer, grain-free static splits. Every
// comparison asserts the YLTs are bitwise identical before it reports
// a speed-up; any mismatch fails the run (ctest runs this in --smoke
// mode as a regression gate).
//
// Engine cases additionally measure SimdPolicy::kAuto (DESIGN.md §8):
// the scalar column must stay bitwise identical to the legacy
// formulation, the SIMD column must agree within reassociation
// tolerance and reports which ISA kernel actually ran.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/cpu_engines.hpp"
#include "core/session.hpp"
#include "core/simd/policy.hpp"
#include "core/trial_math.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "perf/stopwatch.hpp"
#include "synth/scenarios.hpp"

namespace ara::bench {
namespace {

// ---- The pre-fusion (layer-major) formulations ----------------------------

// The old TableStore: one dense table per (layer, ELT) pair, shared
// ELTs duplicated — rebuilt on every run.
struct LegacyTables {
  std::vector<std::vector<DirectAccessTable<double>>> per_layer;
};

LegacyTables legacy_build_tables(const Portfolio& p) {
  LegacyTables store;
  store.per_layer.reserve(p.layer_count());
  for (const Layer& layer : p.layers()) {
    std::vector<DirectAccessTable<double>> tabs;
    tabs.reserve(layer.elt_indices.size());
    for (const std::size_t idx : layer.elt_indices) {
      tabs.emplace_back(p.elts()[idx]);
    }
    store.per_layer.push_back(std::move(tabs));
  }
  return store;
}

BoundLayer<double> legacy_bind(const Portfolio& p, const LegacyTables& store,
                               std::size_t a) {
  const Layer& layer = p.layers()[a];
  BoundLayer<double> bound;
  bound.layer_terms = layer.terms;
  for (std::size_t j = 0; j < layer.elt_indices.size(); ++j) {
    bound.tables.push_back(&store.per_layer[a][j]);
    bound.terms.push_back(p.elts()[layer.elt_indices[j]].terms());
  }
  return bound;
}

// Old FusedSequentialEngine::run body: layer-major double loop.
Ylt legacy_sequential(const Portfolio& p, const Yet& yet) {
  const LegacyTables tables = legacy_build_tables(p);
  Ylt ylt(p.layer_count(), yet.trial_count());
  for (std::size_t a = 0; a < p.layer_count(); ++a) {
    const BoundLayer<double> layer = legacy_bind(p, tables, a);
    for (TrialId b = 0; b < yet.trial_count(); ++b) {
      const TrialOutcome<double> out =
          simulate_trial_fused<double>(yet.trial(b), layer);
      ylt.annual_loss(a, b) = out.annual;
      ylt.max_occurrence_loss(a, b) = out.max_occurrence;
    }
  }
  return ylt;
}

// Old MultiCoreEngine::run body: fresh ThreadPool per call, one
// parallel_for wave per layer, no grain floor.
Ylt legacy_multicore(const Portfolio& p, const Yet& yet,
                     const EngineConfig& cfg) {
  const LegacyTables tables = legacy_build_tables(p);
  Ylt ylt(p.layer_count(), yet.trial_count());
  parallel::ThreadPool pool(static_cast<std::size_t>(std::max(1u, cfg.cores)) *
                            std::max(1u, cfg.threads_per_core));
  for (std::size_t a = 0; a < p.layer_count(); ++a) {
    const BoundLayer<double> layer = legacy_bind(p, tables, a);
    parallel::parallel_for(
        pool, yet.trial_count(),
        [&](parallel::Range r) {
          for (std::size_t b = r.begin; b < r.end; ++b) {
            const TrialOutcome<double> out = simulate_trial_fused<double>(
                yet.trial(static_cast<TrialId>(b)), layer);
            ylt.annual_loss(a, static_cast<TrialId>(b)) = out.annual;
            ylt.max_occurrence_loss(a, static_cast<TrialId>(b)) =
                out.max_occurrence;
          }
        },
        parallel::Schedule::kStatic, 1024, /*min_grain=*/1);
  }
  return ylt;
}

// A pricing-service workload: many small trial years against a wide
// shared-ELT book, so the YLT (layers x trials) dominates the cost of
// a run rather than the event maths — the regime the metric-only
// retention mode exists for.
synth::Scenario metric_service_scenario(std::size_t layers,
                                        std::size_t trials,
                                        std::uint64_t seed) {
  synth::Catalogue catalogue = synth::Catalogue::make(20000, 6, 800.0);

  synth::YetGeneratorConfig yc;
  yc.trials = trials;
  yc.target_events_per_trial = 4.0;
  yc.seed = seed;
  Yet yet = synth::generate_yet(catalogue, yc);

  synth::PortfolioGeneratorConfig pc;
  pc.elt_count = 40;
  pc.layer_count = layers;
  pc.min_elts_per_layer = 3;
  pc.max_elts_per_layer = 30;
  pc.elt.record_count = 500;
  pc.elt.mean_loss = 5.0e5;
  pc.elt.terms.retention = 2.0e4;
  pc.elt.terms.limit = 1.0e8;
  pc.seed = seed + 1;
  Portfolio portfolio = synth::generate_portfolio(catalogue, pc);

  return {std::move(catalogue), std::move(yet), std::move(portfolio)};
}

// One very wide contract: a single layer over `elts` ELTs, so the
// per-event combine loop — the part the vector kernels target — is as
// deep as the generator allows. Event-heavy years keep the hot loop,
// not the YLT, as the cost.
synth::Scenario wide_layer_scenario(std::size_t elts, std::size_t trials,
                                    std::uint64_t seed) {
  synth::Catalogue catalogue = synth::Catalogue::make(20000, 6, 800.0);

  synth::YetGeneratorConfig yc;
  yc.trials = trials;
  yc.target_events_per_trial = 50.0;
  yc.seed = seed;
  Yet yet = synth::generate_yet(catalogue, yc);

  synth::PortfolioGeneratorConfig pc;
  pc.elt_count = elts;
  pc.layer_count = 1;
  pc.min_elts_per_layer = elts;
  pc.max_elts_per_layer = elts;
  pc.elt.record_count = 500;
  pc.elt.mean_loss = 5.0e5;
  pc.elt.terms.retention = 2.0e4;
  pc.elt.terms.limit = 1.0e8;
  pc.seed = seed + 1;
  Portfolio portfolio = synth::generate_portfolio(catalogue, pc);

  return {std::move(catalogue), std::move(yet), std::move(portfolio)};
}

// ---- Harness ---------------------------------------------------------------

bool bitwise_equal(const Ylt& a, const Ylt& b) {
  if (a.layer_count() != b.layer_count() ||
      a.trial_count() != b.trial_count()) {
    return false;
  }
  return a.annual_raw() == b.annual_raw() &&
         a.max_occurrence_raw() == b.max_occurrence_raw();
}

// Vector kernels reassociate the per-event ELT sum (fixed lane order,
// so deterministic run-to-run) — SIMD results match scalar within a
// relative band, not bitwise.
bool close_enough(const Ylt& a, const Ylt& b, double rel) {
  if (a.layer_count() != b.layer_count() ||
      a.trial_count() != b.trial_count()) {
    return false;
  }
  for (std::size_t l = 0; l < a.layer_count(); ++l) {
    for (TrialId t = 0; t < a.trial_count(); ++t) {
      const double e = b.annual_loss(l, t);
      if (std::abs(a.annual_loss(l, t) - e) > rel * (1.0 + std::abs(e))) {
        return false;
      }
      const double eo = b.max_occurrence_loss(l, t);
      if (std::abs(a.max_occurrence_loss(l, t) - eo) >
          rel * (1.0 + std::abs(eo))) {
        return false;
      }
    }
  }
  return true;
}

struct CaseResult {
  std::string name;
  std::string engine;
  std::size_t layers = 0;
  std::size_t trials = 0;
  std::size_t reps = 0;
  double old_seconds = 0.0;
  double new_seconds = 0.0;
  bool identical = false;

  // The SimdPolicy::kAuto column, for engine cases (0 / empty = not
  // measured). `simd_isa` is the kernel that actually ran — "scalar"
  // on a host or build without vector kernels, in which case the SIMD
  // gates below don't apply.
  double simd_seconds = 0.0;
  std::string simd_isa;
  bool simd_close = true;

  // Resident bytes of each path, when the case measures memory too
  // (metric_only_discard: full YLT vs reducer reservoirs). 0 = n/a.
  std::size_t old_bytes = 0;
  std::size_t new_bytes = 0;

  double speedup() const {
    return new_seconds > 0.0 ? old_seconds / new_seconds : 0.0;
  }
  double simd_speedup() const {
    return simd_seconds > 0.0 ? old_seconds / simd_seconds : 0.0;
  }
  double simd_vs_scalar() const {
    return simd_seconds > 0.0 ? new_seconds / simd_seconds : 0.0;
  }
};

template <typename F>
double best_of(std::size_t reps, F&& f) {
  double best = 1e300;
  for (std::size_t i = 0; i < reps; ++i) {
    perf::Stopwatch sw;
    f();
    best = std::min(best, sw.seconds());
  }
  return best;
}

void print_case(const CaseResult& c) {
  std::cout << "  " << c.name << " [" << c.engine << "] layers=" << c.layers
            << " trials=" << c.trials << ": old " << c.old_seconds * 1e3
            << " ms -> new " << c.new_seconds * 1e3 << " ms  ("
            << c.speedup() << "x, " << (c.identical ? "bitwise OK" : "YLT MISMATCH")
            << ")\n";
  if (c.simd_seconds > 0.0) {
    std::cout << "    simd [" << c.simd_isa << "]: " << c.simd_seconds * 1e3
              << " ms  (" << c.simd_speedup() << "x vs old, "
              << c.simd_vs_scalar() << "x vs scalar, "
              << (c.simd_close ? "within tolerance" : "OUT OF TOLERANCE")
              << ")\n";
  }
}

void write_json(const std::string& path, const std::vector<CaseResult>& cases,
                bool smoke) {
  std::ofstream os(path);
  os << "{\n  \"benchmark\": \"microbench_hotpath\",\n"
     << "  \"unit\": \"seconds_wall\",\n"
     << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
     << "  \"cases\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& c = cases[i];
    os << "    {\"name\": \"" << c.name << "\", \"engine\": \"" << c.engine
       << "\", \"layers\": " << c.layers << ", \"trials\": " << c.trials
       << ", \"reps\": " << c.reps << ", \"old_seconds\": " << c.old_seconds
       << ", \"new_seconds\": " << c.new_seconds
       << ", \"speedup\": " << c.speedup()
       << ", \"bitwise_identical\": " << (c.identical ? "true" : "false");
    if (c.simd_seconds > 0.0) {
      os << ", \"simd_isa\": \"" << c.simd_isa << "\""
         << ", \"simd_seconds\": " << c.simd_seconds
         << ", \"simd_speedup\": " << c.simd_speedup()
         << ", \"simd_vs_scalar\": " << c.simd_vs_scalar()
         << ", \"simd_within_tolerance\": " << (c.simd_close ? "true" : "false");
    }
    if (c.old_bytes > 0 || c.new_bytes > 0) {
      os << ", \"old_resident_bytes\": " << c.old_bytes
         << ", \"new_resident_bytes\": " << c.new_bytes;
    }
    os << "}" << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace
}  // namespace ara::bench

int main(int argc, char** argv) {
  using namespace ara;
  using namespace ara::bench;

  bool smoke = false;
  std::string out_path = "BENCH_hotpath.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  print_header("hot-path microbenchmark: layer-major vs trial-major fused",
               "perf trajectory (no paper figure; measured on this host)");

  EngineConfig mc_cfg;
  mc_cfg.cores = 4;
  mc_cfg.threads_per_core = 2;

  const std::size_t reps = smoke ? 2 : 5;
  std::vector<CaseResult> cases;
  bool all_identical = true;
  bool all_simd_close = true;

  const auto run_case = [&](const std::string& name, const synth::Scenario& s,
                            EngineKind kind) {
    CaseResult c;
    c.name = name;
    c.engine = engine_kind_name(kind);
    c.layers = s.portfolio.layer_count();
    c.trials = s.yet.trial_count();
    c.reps = reps;

    ExecutionPolicy policy = ExecutionPolicy::with_engine(kind);
    policy.config = mc_cfg;
    AnalysisSession session(policy);
    AnalysisRequest request;
    request.portfolio = &s.portfolio;
    request.yet = &s.yet;

    const auto run_old = [&]() -> Ylt {
      return kind == EngineKind::kMultiCore
                 ? legacy_multicore(s.portfolio, s.yet, mc_cfg)
                 : legacy_sequential(s.portfolio, s.yet);
    };

    // The same case under SimdPolicy::kAuto — the vector kernels when
    // the build + host provide them, otherwise the scalar fallback
    // (then simd_isa reports "scalar" and the SIMD gates don't apply).
    ExecutionPolicy simd_policy = policy;
    simd_policy.simd = simd::SimdPolicy::kAuto;
    AnalysisRequest simd_request = request;
    simd_request.policy = simd_policy;

    // Warm every path (caches, pools, engine construction) before any
    // timing.
    const Ylt old_ylt = run_old();
    const Ylt new_ylt = session.run(request).simulation.ylt;
    const AnalysisResult simd_run = session.run(simd_request);
    c.simd_isa = simd_run.simulation.simd_isa;

    // Interleaved best-of timing: one rep of each column per round.
    // Timing each column as a contiguous block lets one interference
    // window on a shared host poison exactly one column (and so one
    // side of a speed-up ratio); round-robin spreads disturbances
    // across all three, and best-of still discards them.
    double old_best = 1e300, new_best = 1e300, simd_best = 1e300;
    for (std::size_t r = 0; r < reps; ++r) {
      {
        perf::Stopwatch sw;
        (void)run_old();
        old_best = std::min(old_best, sw.seconds());
      }
      {
        perf::Stopwatch sw;
        (void)session.run(request);
        new_best = std::min(new_best, sw.seconds());
      }
      {
        perf::Stopwatch sw;
        (void)session.run(simd_request);
        simd_best = std::min(simd_best, sw.seconds());
      }
    }
    c.old_seconds = old_best;
    c.new_seconds = new_best;
    c.simd_seconds = simd_best;

    c.identical = bitwise_equal(old_ylt, new_ylt);
    all_identical = all_identical && c.identical;
    c.simd_close = close_enough(simd_run.simulation.ylt, new_ylt, 1e-9);
    all_simd_close = all_simd_close && c.simd_close;

    cases.push_back(c);
    print_case(c);
  };

  // Shape 1: the paper's headline shape — one fat layer, many trials.
  const synth::Scenario wide =
      synth::paper_scaled(smoke ? 4000 : 1000, 2026);
  run_case("few_layers_many_trials", wide, EngineKind::kSequentialFused);
  run_case("few_layers_many_trials", wide, EngineKind::kMultiCore);

  // Shape 1b: the headline shape an order of magnitude longer — the
  // regime where the per-trial hot loop is essentially the whole run,
  // so this is the cleanest read on the SoA/SIMD kernels themselves.
  const synth::Scenario wide_long =
      synth::paper_scaled(smoke ? 1000 : 100, 2027);
  run_case("few_layers_10k_trials", wide_long, EngineKind::kSequentialFused);

  // Shape 1c: one contract over 64 ELTs — the deepest per-event
  // combine loop the generator can produce; the vector kernels' target
  // shape (lanes stay full, remainders negligible).
  const synth::Scenario wide_elts =
      wide_layer_scenario(64, smoke ? 400 : 2000, 2028);
  run_case("wide_layer_many_elts", wide_elts, EngineKind::kSequentialFused);

  // Shape 2: a production book — many layers sharing an ELT pool over
  // one YET. This is where layer-major re-streaming of the YET and
  // per-(layer, ELT) table duplication hurt most.
  const synth::Scenario book =
      synth::multi_layer_book(smoke ? 12 : 24, smoke ? 150 : 400, 2026);
  run_case("many_layers_shared_yet", book, EngineKind::kSequentialFused);
  run_case("many_layers_shared_yet", book, EngineKind::kMultiCore);

  // Shape 3: a batch of analyses against one portfolio + YET. Old: a
  // fresh one-shot engine per request (tables + pool rebuilt every
  // time). New: AnalysisSession::run_batch over cached tables and the
  // persistent pools.
  {
    const synth::Scenario s =
        synth::multi_layer_book(smoke ? 8 : 16, smoke ? 120 : 300, 77);
    const std::size_t batch = smoke ? 4 : 8;

    CaseResult c;
    c.name = "batch_shared_yet";
    c.engine = engine_kind_name(EngineKind::kMultiCore);
    c.layers = s.portfolio.layer_count();
    c.trials = s.yet.trial_count();
    c.reps = reps;

    Ylt old_ylt;
    const auto run_old_batch = [&] {
      for (std::size_t i = 0; i < batch; ++i) {
        old_ylt = legacy_multicore(s.portfolio, s.yet, mc_cfg);
      }
    };
    run_old_batch();
    c.old_seconds = best_of(reps, run_old_batch);

    ExecutionPolicy policy = ExecutionPolicy::with_engine(EngineKind::kMultiCore);
    policy.config = mc_cfg;
    AnalysisSession session(policy);
    std::vector<AnalysisRequest> requests(batch);
    for (auto& r : requests) {
      r.portfolio = &s.portfolio;
      r.yet = &s.yet;
    }
    Ylt new_ylt = session.run_batch(requests).back().simulation.ylt;  // warm
    c.new_seconds = best_of(reps, [&] {
      auto results = session.run_batch(requests);
      new_ylt = std::move(results.back().simulation.ylt);
    });

    c.identical = bitwise_equal(old_ylt, new_ylt);
    all_identical = all_identical && c.identical;
    cases.push_back(c);
    print_case(c);
  }

  // Shape 4: sharded streaming vs monolithic execution of the same
  // analysis (PR 4). "old" is the monolithic session run, "new" the
  // trial-sharded one (8 shards through the shard scheduler); the
  // speed-up column is therefore the sharding *overhead* (expected
  // near 1.0 — reads/merges are disjoint block copies). The YLTs must
  // still be bitwise identical, which the shared gate below enforces.
  {
    const synth::Scenario s =
        synth::multi_layer_book(smoke ? 8 : 16, smoke ? 160 : 320, 99);

    CaseResult c;
    c.name = "sharded_vs_monolithic";
    c.engine = engine_kind_name(EngineKind::kMultiCore);
    c.layers = s.portfolio.layer_count();
    c.trials = s.yet.trial_count();
    c.reps = reps;

    ExecutionPolicy mono_policy =
        ExecutionPolicy::with_engine(EngineKind::kMultiCore);
    mono_policy.config = mc_cfg;
    ExecutionPolicy sharded_policy = mono_policy;
    sharded_policy.shard_trials = s.yet.trial_count() / 8;

    AnalysisSession session(mono_policy);
    AnalysisRequest mono_request;
    mono_request.portfolio = &s.portfolio;
    mono_request.yet = &s.yet;
    AnalysisRequest sharded_request = mono_request;
    sharded_request.policy = sharded_policy;

    Ylt mono_ylt = session.run(mono_request).simulation.ylt;  // warm caches
    c.old_seconds = best_of(reps, [&] { (void)session.run(mono_request); });
    Ylt sharded_ylt = session.run(sharded_request).simulation.ylt;
    c.new_seconds =
        best_of(reps, [&] { (void)session.run(sharded_request); });

    c.identical = bitwise_equal(mono_ylt, sharded_ylt);
    all_identical = all_identical && c.identical;
    cases.push_back(c);
    print_case(c);
  }

  // Shape 5: metric-only pricing (PR 5). Both paths run the same
  // sharded plan and the same reducer formulas; "old" additionally
  // materializes the full YLT (zero-filled allocation + one merge copy
  // per shard + the metric pass re-reading the merged table), "new"
  // runs YltRetention::kDiscard — shard blocks stream through the tail
  // reservoirs and the layers x trials table is never allocated. The
  // workload is deliberately trial-heavy and event-light (a long YET
  // of small years over a wide book), the regime where the table, not
  // the simulation, is the cost — the ROADMAP's pricing-service shape.
  // The case also records resident bytes of each path (YLT cells vs
  // reservoir entries).
  {
    const synth::Scenario s = metric_service_scenario(
        /*layers=*/24, /*trials=*/smoke ? 20000 : 60000, /*seed=*/123);

    CaseResult c;
    c.name = "metric_only_discard";
    c.engine = engine_kind_name(EngineKind::kMultiCore);
    c.layers = s.portfolio.layer_count();
    c.trials = s.yet.trial_count();
    c.reps = reps;

    MetricsSpec spec = MetricsSpec::all();
    spec.quantiles = {0.95, 0.99, 0.995};
    spec.return_periods = {50.0, 100.0, 250.0};

    ExecutionPolicy policy = ExecutionPolicy::with_engine(EngineKind::kMultiCore);
    policy.config = mc_cfg;
    AnalysisSession session(policy);

    ExecutionPolicy sharded = policy;
    sharded.shard_trials = s.yet.trial_count() / 8;

    AnalysisRequest keep;
    keep.portfolio = &s.portfolio;
    keep.yet = &s.yet;
    keep.metrics = spec;
    keep.policy = sharded;

    AnalysisRequest discard = keep;
    discard.ylt_retention = YltRetention::kDiscard;

    const AnalysisResult keep_run = session.run(keep);        // warm caches
    const AnalysisResult discard_run = session.run(discard);

    // The order-statistic family must agree bitwise between the two
    // paths (the wall in tests/test_metrics_streaming.cpp; this is the
    // bench-side regression tripwire).
    bool metrics_equal =
        discard_run.simulation.ylt.trial_count() == 0 &&
        discard_run.metrics.layers.size() == keep_run.metrics.layers.size();
    if (metrics_equal) {
      for (std::size_t l = 0; l < keep_run.metrics.layers.size(); ++l) {
        metrics_equal =
            metrics_equal &&
            discard_run.metrics.layers[l].var_at(0.99) ==
                keep_run.metrics.layers[l].var_at(0.99) &&
            discard_run.metrics.layers[l].tvar_at(0.995) ==
                keep_run.metrics.layers[l].tvar_at(0.995) &&
            discard_run.metrics.layers[l].oep_at(100.0) ==
                keep_run.metrics.layers[l].oep_at(100.0);
      }
    }
    c.identical = metrics_equal;

    c.old_seconds = best_of(reps, [&] { (void)session.run(keep); });
    c.new_seconds = best_of(reps, [&] { (void)session.run(discard); });
    c.old_bytes = c.layers * c.trials * 2 * sizeof(double);
    c.new_bytes = discard_run.metrics.reservoir_entries * sizeof(double);

    all_identical = all_identical && c.identical;
    cases.push_back(c);
    print_case(c);
    std::cout << "    resident: full YLT " << c.old_bytes / 1024
              << " KiB vs reservoirs " << c.new_bytes / 1024 << " KiB\n";
  }

  write_json(out_path, cases, smoke);
  std::cout << "\nwrote " << out_path << "\n";

  // Regression gates. Full mode (the committed BENCH_hotpath.json)
  // demands the real wins; smoke mode runs on shared CI machines at
  // reduced workload sizes where wall-clock ratios are noisier, so its
  // floors are looser — enough to catch a genuine regression without
  // failing CI on runner contention.
  //   * every engine case: scalar bitwise-identical to the legacy
  //     formulation, SIMD within reassociation tolerance of scalar;
  //   * many_layers_shared_yet multicore: the trial-major fusion win;
  //   * few_layers sequential scalar: the SoA rewrite must not lose to
  //     the legacy loop on the paper's headline shape (the pre-PR
  //     0.94x regression this PR fixes);
  //   * sequential SIMD: the vector kernels must actually pay off —
  //     gated only when a vector ISA really ran, so scalar builds and
  //     hosts (-DARA_DISABLE_SIMD) still pass. The full floor is 1.3x
  //     on the headline shape and the 64-ELT shape; the 10k-trial
  //     shape's tables spill L2 on this host, leaving the lane gather
  //     latency-bound, so its floor is the looser 1.1x.
  const double many_layers_floor = smoke ? 1.5 : 2.0;
  const double scalar_floor = smoke ? 0.9 : 1.0;
  const double simd_floor = smoke ? 1.05 : 1.3;
  const double simd_floor_l2 = smoke ? 1.0 : 1.1;
  if (!all_identical) {
    std::cerr << "FAIL: old and new formulations disagree bitwise\n";
    return 1;
  }
  if (!all_simd_close) {
    std::cerr << "FAIL: a SIMD run left the scalar tolerance band\n";
    return 1;
  }
  bool gates_ok = true;
  for (const CaseResult& c : cases) {
    if (c.name == "many_layers_shared_yet" && c.engine == "multicore_cpu" &&
        c.speedup() < many_layers_floor) {
      std::cerr << "FAIL: many_layers_shared_yet multicore speedup "
                << c.speedup() << "x < " << many_layers_floor << "x\n";
      gates_ok = false;
    }
    const bool few_layers_seq =
        (c.name == "few_layers_many_trials" ||
         c.name == "few_layers_10k_trials") &&
        c.engine == "sequential_fused";
    if (few_layers_seq && c.speedup() < scalar_floor) {
      std::cerr << "FAIL: " << c.name << " scalar speedup " << c.speedup()
                << "x < " << scalar_floor << "x\n";
      gates_ok = false;
    }
    const bool vector_ran = !c.simd_isa.empty() && c.simd_isa != "scalar";
    const bool simd_gated =
        (few_layers_seq || c.name == "wide_layer_many_elts") &&
        c.engine == "sequential_fused";
    const double case_simd_floor =
        c.name == "few_layers_10k_trials" ? simd_floor_l2 : simd_floor;
    if (simd_gated && vector_ran && c.simd_speedup() < case_simd_floor) {
      std::cerr << "FAIL: " << c.name << " simd (" << c.simd_isa
                << ") speedup " << c.simd_speedup() << "x < "
                << case_simd_floor << "x\n";
      gates_ok = false;
    }
  }
  if (!gates_ok) return 1;
  std::cout << "hot-path gates passed\n";
  return 0;
}
