// Ablation of the paper's four GPU optimisations (Sec. III): chunking
// into shared memory, loop unrolling, float instead of double, and
// register accumulation. The paper reports only their combined effect
// (38.47 s -> 20.63 s, ~1.9x); this bench quantifies each one by
// switching it off from the fully optimised configuration, and on from
// the basic configuration.
#include <iostream>

#include "common.hpp"
#include "core/engine_factory.hpp"
#include "core/gpu_engines.hpp"

namespace {

using namespace ara;

struct Toggle {
  const char* name;
  bool chunking, unroll, use_float, registers;
};

double model_seconds(const Toggle& t) {
  const simgpu::GpuCostModel model(simgpu::tesla_c2075());
  OpCounts ops = bench::paper_ops();

  simgpu::KernelTraits traits;
  traits.loss_bytes = t.use_float ? 4 : 8;
  traits.chunked = t.chunking;
  traits.mlp_per_thread = t.chunking ? 16 : 1;
  traits.scratch_in_registers = t.registers;
  traits.scratch_in_global = !t.chunking && !t.registers;
  traits.unrolled = t.unroll;

  const std::uint64_t scratch =
      ops.occurrence_ops * kScratchTouchesPerEvent;
  if (traits.scratch_in_global) {
    ops.global_updates = scratch;
  } else if (!traits.scratch_in_registers) {
    ops.shared_accesses = scratch;
  }

  // Chunked kernels are bound to small blocks by shared memory; the
  // unchunked variants use the basic kernel's 256-thread blocks.
  const auto launch = t.chunking ? bench::optimized_launch(32)
                                 : bench::basic_launch(256);
  return model.estimate(launch, traits, ops).total_seconds;
}

}  // namespace

int main() {
  using namespace ara;
  bench::print_header(
      "Ablation — the four GPU optimisations",
      "Sec. III/IV-B (chunking, unrolling, precision, registers)");

  const Toggle all_on{"all optimisations (paper opt, 20.63 s)", true, true,
                      true, true};
  const Toggle all_off{"none (paper basic, 38.47 s)", false, false, false,
                       false};
  const Toggle rows[] = {
      all_on,
      {"without chunking", false, true, true, true},
      {"without loop unrolling", true, false, true, true},
      {"without float (double tables)", true, true, false, true},
      {"without register scratch", true, true, true, false},
      all_off,
      {"basic + chunking only", true, false, false, false},
      {"basic + float only", false, false, true, false},
  };

  const double t_on = model_seconds(all_on);
  perf::Table table({"configuration", "model time", "vs optimised"});
  for (const Toggle& t : rows) {
    const double s = model_seconds(t);
    table.add_row({t.name, perf::format_seconds(s),
                   perf::format_ratio(s / t_on)});
  }
  table.print(std::cout);
  std::cout << "\npaper anchor: all-on 20.63 s vs all-off 38.47 s "
               "(~1.9x combined)\n\n";

  // The paper's data-structure comparison: independent direct access
  // tables vs the rejected combined-ELT layout, both at 256
  // threads/block on the full workload.
  {
    const simgpu::GpuCostModel model(simgpu::tesla_c2075());
    const OpCounts independent_ops =
        bench::with_global_scratch(bench::paper_ops());
    const double ti = model
                          .estimate(bench::basic_launch(256),
                                    bench::basic_traits(), independent_ops)
                          .total_seconds;
    // Combined layout: cooperative row loads serialise on the shared-
    // memory request/deliver handshake (2 extra shared accesses per
    // lookup, MLP collapses to 1; see GpuCombinedTableEngine).
    simgpu::KernelTraits combined_traits = bench::basic_traits();
    combined_traits.chunked = true;
    combined_traits.scratch_in_global = false;
    combined_traits.cooperative_load_penalty = 0.75;
    OpCounts combined_ops = bench::paper_ops();
    combined_ops.shared_accesses =
        combined_ops.elt_lookups * 2 +
        combined_ops.occurrence_ops * kScratchTouchesPerEvent;
    const double tc = model
                          .estimate(bench::basic_launch(256),
                                    combined_traits, combined_ops)
                          .total_seconds;
    std::cout << "data-structure comparison (model, full scale): "
                 "independent tables "
              << perf::format_seconds(ti) << " vs combined table "
              << perf::format_seconds(tc) << " ("
              << perf::format_ratio(tc / ti)
              << " slower — the paper's rejected 'second "
                 "implementation')\n\n";
  }

  // Measured: functional execution of the two endpoints.
  AnalysisSession session;
  bench::print_measured_footer(
      session, ExecutionPolicy::with_engine(EngineKind::kGpuOptimized));
  bench::print_measured_footer(
      session, ExecutionPolicy::with_engine(EngineKind::kGpuBasic));
  return 0;
}
