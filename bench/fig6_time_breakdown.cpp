// Figure 6: percentage of time per activity — fetching events,
// loss-set lookup in the direct access table, financial-term and
// layer-term computations — for each implementation.
// Paper anchors: sequential lookup 222.61 s (~66%), numeric 104.67 s
// (~31%), fetch ~10 s; optimised GPU lookup 20.1 s, F+L 0.11 s,
// fetch < 0.5 s; multi-GPU lookup 97.54% of 4.33 s, F+L 0.02 s.
#include <iostream>

#include "common.hpp"
#include "core/engine_factory.hpp"
#include "perf/cpu_cost_model.hpp"
#include "perf/machine_profile.hpp"

int main() {
  using namespace ara;
  using perf::Phase;
  bench::print_header("Figure 6 — time breakdown per activity",
                      "Fig. 6 (percentage of time per activity)");

  const perf::CpuCostModel cpu(perf::intel_i7_2600());
  const simgpu::GpuCostModel c2075(simgpu::tesla_c2075());
  const simgpu::GpuCostModel m2090(simgpu::tesla_m2090());
  const OpCounts ops = bench::paper_ops();

  struct Row {
    std::string name;
    perf::PhaseBreakdown ph;
  };
  std::vector<Row> rows;
  rows.push_back({"sequential CPU", cpu.estimate(ops, 1)});
  rows.push_back({"multi-core CPU", cpu.estimate(ops, 8, 256)});
  rows.push_back(
      {"basic GPU",
       c2075
           .estimate(bench::basic_launch(256), bench::basic_traits(),
                     bench::with_global_scratch(ops))
           .phases});
  rows.push_back({"optimised GPU",
                  c2075
                      .estimate(bench::optimized_launch(32),
                                bench::optimized_traits(), ops)
                      .phases});
  rows.push_back({"4x GPU (per device)",
                  m2090
                      .estimate(bench::optimized_launch(32, 250'000),
                                bench::optimized_traits(),
                                bench::scale_ops(ops, 0.25))
                      .phases});

  perf::Table table({"implementation", "total", "fetch events",
                     "loss lookup", "financial terms", "layer terms"});
  for (const Row& r : rows) {
    const double layer_terms =
        r.ph[Phase::kOccurrenceTerms] + r.ph[Phase::kAggregateTerms];
    table.add_row({r.name, perf::format_seconds(r.ph.total()),
                   perf::format_percent(r.ph.fraction(Phase::kEventFetch)),
                   perf::format_percent(r.ph.fraction(Phase::kLossLookup)),
                   perf::format_percent(
                       r.ph.fraction(Phase::kFinancialTerms)),
                   perf::format_percent(layer_terms / r.ph.total())});
  }
  table.print(std::cout);

  std::cout << "\npaper anchors: sequential lookup 222.61 s (>65%), "
               "numeric 104.67 s (>31%), fetch >10 s;\n"
               "optimised GPU: lookup 20.1 s, fin+layer 0.11 s, fetch "
               "<0.5 s; 4x GPU: lookup 4.25 s (97.5%), fin+layer 0.02 s, "
               "fetch <0.1 s\n\n";

  // Measured per-phase profile of the literal Algorithm 1 on the
  // scaled workload (profile_phases instruments each pass).
  ExecutionPolicy policy =
      ExecutionPolicy::with_engine(EngineKind::kSequentialReference);
  EngineConfig cfg;
  cfg.profile_phases = true;
  policy.config = cfg;
  AnalysisSession session(policy);
  const synth::Scenario s = synth::paper_scaled(bench::measured_scale());
  AnalysisRequest request;
  request.portfolio = &s.portfolio;
  request.yet = &s.yet;
  const SimulationResult r = session.run(request).simulation;
  std::cout << "measured (scaled, this host): lookup "
            << perf::format_percent(
                   r.measured_phases.fraction(Phase::kLossLookup))
            << ", financial "
            << perf::format_percent(
                   r.measured_phases.fraction(Phase::kFinancialTerms))
            << ", layer terms "
            << perf::format_percent(
                   (r.measured_phases[Phase::kOccurrenceTerms] +
                    r.measured_phases[Phase::kAggregateTerms]) /
                   r.measured_phases.total())
            << " of " << perf::format_seconds(r.measured_phases.total())
            << " profiled\n";
  return 0;
}
