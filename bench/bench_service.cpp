// Service latency/fairness bench: an in-process AnalysisService under
// open-loop Poisson load from three tenants, repeated for several
// weight configurations, emitted as BENCH_service.json — the repo's
// record of what multi-tenant queueing costs and what DWRR buys.
//
// Fairness is measured where DWRR actually guarantees it: over the
// interval where every tenant's queue is backlogged. A sampler thread
// snapshots the scheduler's served-trials counters; the bench takes
// the first and last all-backlogged snapshots and compares each
// tenant's served-trials delta, normalised by weight, against the
// mean. (Final ok counts alone can't show fairness without deadlines:
// everything admitted is eventually served.)
//
// --smoke shrinks the workload for ctest and turns the run into a
// gate: zero lost replies, every tenant served, and — when the
// backlogged window is long enough to be meaningful — per-weight
// served shares within tolerance.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "serve/loadgen.hpp"
#include "serve/service.hpp"

namespace ara::serve::bench {
namespace {

struct WeightConfig {
  std::string name;
  std::vector<std::uint32_t> weights;
  std::uint64_t deadline_ms = 0;  ///< per-request deadline (0 = none)
};

struct FairnessWindow {
  bool valid = false;              ///< window long enough to judge
  double window_trials = 0.0;      ///< total served trials inside it
  double max_rel_error = 0.0;      ///< worst per-weight share deviation
  double max_abs_error = 0.0;      ///< worst |served - weight| share gap
  std::vector<double> served_share;
  std::vector<double> weight_share;
};

struct CaseResult {
  WeightConfig config;
  LoadReport load;
  FairnessWindow fairness;
  std::vector<TenantStats> stats;
};

// One sampler snapshot: per-tenant (queued depth, served trials).
struct Snapshot {
  std::vector<std::uint64_t> queued;
  std::vector<std::uint64_t> served_trials;
  bool all_backlogged = false;
};

Snapshot snapshot_of(const AnalysisService& service,
                     const std::vector<std::string>& tenants) {
  Snapshot snap;
  const std::vector<TenantStats> stats = service.stats();
  snap.queued.resize(tenants.size(), 0);
  snap.served_trials.resize(tenants.size(), 0);
  std::size_t seen = 0;
  for (const TenantStats& t : stats) {
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      if (t.name != tenants[i]) continue;
      const TenantCounters& q = t.queueing;
      snap.queued[i] = q.admitted - q.served - q.shed_deadline;
      snap.served_trials[i] = q.served_trials;
      ++seen;
    }
  }
  snap.all_backlogged = seen == tenants.size();
  for (const std::uint64_t depth : snap.queued) {
    if (depth == 0) snap.all_backlogged = false;
  }
  return snap;
}

FairnessWindow fairness_from(const std::vector<Snapshot>& snaps,
                             const std::vector<std::uint32_t>& weights,
                             std::uint64_t quantum_trials) {
  FairnessWindow out;
  const Snapshot* first = nullptr;
  const Snapshot* last = nullptr;
  for (const Snapshot& snap : snaps) {
    if (!snap.all_backlogged) continue;
    if (first == nullptr) first = &snap;
    last = &snap;
  }
  if (first == nullptr || last == first) return out;

  double weight_sum = 0.0;
  for (const std::uint32_t w : weights) weight_sum += w;
  double total = 0.0;
  std::vector<double> delta(weights.size(), 0.0);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    delta[i] = static_cast<double>(last->served_trials[i] -
                                   first->served_trials[i]);
    total += delta[i];
  }
  out.window_trials = total;
  // Under ~8 quanta of service the +/- one-quantum-per-tenant DWRR
  // slack swamps the signal; report the window but don't judge it.
  out.valid = total >= 8.0 * static_cast<double>(quantum_trials);
  if (total <= 0.0) {
    out.valid = false;
    return out;
  }
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double served_share = delta[i] / total;
    const double weight_share = weights[i] / weight_sum;
    out.served_share.push_back(served_share);
    out.weight_share.push_back(weight_share);
    const double rel = std::abs(served_share - weight_share) / weight_share;
    out.max_rel_error = std::max(out.max_rel_error, rel);
    out.max_abs_error =
        std::max(out.max_abs_error, std::abs(served_share - weight_share));
  }
  return out;
}

CaseResult run_case(const WeightConfig& config, bool smoke) {
  SynthSpec synth;
  synth.trials = smoke ? 4096 : 8192;
  synth.events_per_trial = 25.0;
  synth.catalogue = 500;
  synth.elts = 2;
  synth.layers = 1;
  synth.seed = 11;

  AnalysisService::Options options;
  options.policy = ExecutionPolicy::with_engine(EngineKind::kSequentialFused);
  options.session_workers = 2;
  // One dispatch slot: completion order is exactly DWRR order, so the
  // fairness window measures the scheduler and nothing else.
  options.max_inflight = 1;
  options.quantum_trials = synth.trials;
  options.global_byte_budget = 0;  // depth caps only; no WRED noise
  // Smoke admits each tenant's whole burst (no rejects — the gate
  // judges fairness over the drain, and request counts scale with
  // weight so every queue drains at the same instant no matter how
  // fast the engine is). Full mode keeps the shallow production-like
  // caps so the committed bench exercises depth-cap rejects.
  const std::uint32_t depth_cap = smoke ? 512 : 64;
  options.default_tenant.max_queue_depth = depth_cap;
  AnalysisService service(options);

  LoadConfig load;
  load.seed = 2013;
  std::vector<std::string> tenant_names;
  for (std::size_t i = 0; i < config.weights.size(); ++i) {
    LoadTenantSpec spec;
    spec.name = "t" + std::to_string(i) + "_w" +
                std::to_string(config.weights[i]);
    spec.weight = config.weights[i];
    // Offered far above the per-tenant service share so every queue
    // stays backlogged while arrivals last (the DWRR regime). Request
    // counts scale with weight so the heavy tenants' arrival phases —
    // and with them the all-backlogged fairness window — last as long
    // as the light tenants' queues do. The rates must beat the heavy
    // tenant's service share with headroom: the SoA hot path serves a
    // smoke request in well under a millisecond and a full one in
    // about one, so the old 800/400 Hz let the weight-8 tenant drain
    // between arrivals and punched holes in the backlogged window.
    spec.rate_hz = smoke ? 3200.0 : 1600.0;
    spec.requests = (smoke ? 40 : 150) * config.weights[i];
    spec.deadline_ms = config.deadline_ms;
    spec.synth = synth;
    tenant_names.push_back(spec.name);
    TenantConfig tenant;
    tenant.name = spec.name;
    tenant.weight = spec.weight;
    tenant.max_queue_depth = depth_cap;
    service.configure_tenant(tenant);
    load.tenants.push_back(std::move(spec));
  }

  // Warm the synth-workload and table caches outside the measurement:
  // the first request pays generator + table-build time that belongs
  // to neither the queueing model nor any one tenant.
  {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    ServeRequest warm;
    warm.tenant = tenant_names[0];
    warm.request_id = ~0ull;
    warm.synth = synth;
    service.submit(std::move(warm), [&](ServeReply&&) {
      std::lock_guard<std::mutex> lock(m);
      done = true;
      cv.notify_one();
    });
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return done; });
  }

  std::atomic<bool> stop_sampler{false};
  std::vector<Snapshot> snaps;
  std::thread sampler([&] {
    while (!stop_sampler.load(std::memory_order_relaxed)) {
      snaps.push_back(snapshot_of(service, tenant_names));
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  const SubmitFn submit = [&](ServeRequest&& request,
                              std::function<void(const ServeReply&)> done) {
    service.submit(std::move(request),
                   [done = std::move(done)](ServeReply&& reply) {
                     done(reply);
                   });
  };

  CaseResult result;
  result.config = config;
  result.load = run_load(load, submit);
  stop_sampler = true;
  sampler.join();
  service.drain();
  result.stats = service.stats();
  result.fairness =
      fairness_from(snaps, config.weights, options.quantum_trials);
  service.stop();
  return result;
}

void write_json(const std::string& path, const std::vector<CaseResult>& cases,
                bool smoke) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"benchmark\": \"bench_service\",\n"
      << "  \"unit\": \"milliseconds_latency\",\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
      << "  \"cases\": [\n";
  for (std::size_t c = 0; c < cases.size(); ++c) {
    const CaseResult& cr = cases[c];
    out << "    {\"name\": \"" << cr.config.name << "\", "
        << "\"deadline_ms\": " << cr.config.deadline_ms << ", "
        << "\"wall_seconds\": " << cr.load.wall_seconds << ", "
        << "\"total_ok\": " << cr.load.total_ok << ", "
        << "\"total_backpressure\": " << cr.load.total_backpressure << ", "
        << "\"total_shed_deadline\": " << cr.load.total_shed_deadline << ", "
        << "\"total_lost\": " << cr.load.total_lost << ", "
        << "\"fairness_window_trials\": " << cr.fairness.window_trials << ", "
        << "\"fairness_window_valid\": "
        << (cr.fairness.valid ? "true" : "false") << ", "
        << "\"fairness_max_rel_error\": " << cr.fairness.max_rel_error << ", "
        << "\"fairness_max_abs_error\": " << cr.fairness.max_abs_error
        << ",\n     \"tenants\": [\n";
    for (std::size_t i = 0; i < cr.load.tenants.size(); ++i) {
      const TenantLoadReport& t = cr.load.tenants[i];
      out << "      {\"tenant\": \"" << t.name << "\", \"weight\": "
          << t.weight << ", \"submitted\": " << t.submitted
          << ", \"ok\": " << t.ok << ", \"rejected\": "
          << (t.rejected_queue_full + t.rejected_bytes)
          << ", \"shed_early\": " << t.shed_early
          << ", \"shed_deadline\": " << t.shed_deadline
          << ", \"lost\": " << t.lost
          << ", \"throughput_rps\": " << t.throughput_rps
          << ", \"p50_ms\": " << t.latency.p50
          << ", \"p95_ms\": " << t.latency.p95
          << ", \"p99_ms\": " << t.latency.p99
          << ", \"mean_ms\": " << t.latency.mean
          << ", \"max_ms\": " << t.latency.max;
      if (i < cr.fairness.served_share.size()) {
        out << ", \"served_share\": " << cr.fairness.served_share[i]
            << ", \"weight_share\": " << cr.fairness.weight_share[i];
      }
      out << "}" << (i + 1 < cr.load.tenants.size() ? "," : "") << "\n";
    }
    out << "    ]}" << (c + 1 < cases.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

int run(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_service.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  std::vector<WeightConfig> configs = {
      {"equal_1_1_1", {1, 1, 1}, 0},
      {"weighted_1_2_4", {1, 2, 4}, 0},
      // The skewed config also carries a deadline in full mode so the
      // committed bench shows deadline shedding under starvation (the
      // light tenants' 64-deep queues drain at ~a tenth of capacity,
      // so their tail waits cross 500 ms while the weight-8 tenant's
      // never do).
      {"skewed_1_1_8", {1, 1, 8}, smoke ? 0u : 500u},
  };

  std::vector<CaseResult> cases;
  bool gate_failed = false;
  for (const WeightConfig& config : configs) {
    CaseResult result = run_case(config, smoke);
    std::cout << result.config.name << ": ok " << result.load.total_ok << "/"
              << result.load.total_submitted << ", backpressure "
              << result.load.total_backpressure << ", deadline-shed "
              << result.load.total_shed_deadline << ", lost "
              << result.load.total_lost << ", fairness window "
              << result.fairness.window_trials << " trials, share err abs "
              << result.fairness.max_abs_error << " / rel "
              << result.fairness.max_rel_error
              << (result.fairness.valid ? "" : " (window too short)") << "\n";
    for (const TenantLoadReport& t : result.load.tenants) {
      std::cout << "  " << t.name << ": ok " << t.ok << ", p50 "
                << t.latency.p50 << " ms, p95 " << t.latency.p95
                << " ms, p99 " << t.latency.p99 << " ms\n";
    }

    // The gate: no reply may go missing, every tenant must be served,
    // and a judgeable backlogged window must match the weights.
    if (result.load.total_lost != 0) {
      std::cerr << "GATE: lost replies in " << config.name << "\n";
      gate_failed = true;
    }
    for (const TenantLoadReport& t : result.load.tenants) {
      if (t.ok == 0) {
        std::cerr << "GATE: tenant " << t.name << " starved in "
                  << config.name << "\n";
        gate_failed = true;
      }
    }
    // Absolute share error: a relative bound would amplify snapshot
    // noise on a light tenant's small share into false failures.
    if (result.fairness.valid && result.fairness.max_abs_error > 0.08) {
      std::cerr << "GATE: fairness share error "
                << result.fairness.max_abs_error << " above 0.08 in "
                << config.name << "\n";
      gate_failed = true;
    }
    cases.push_back(std::move(result));
  }

  write_json(out_path, cases, smoke);
  std::cout << "wrote " << out_path << "\n";
  return gate_failed ? 1 : 0;
}

}  // namespace
}  // namespace ara::serve::bench

int main(int argc, char** argv) {
  return ara::serve::bench::run(argc, argv);
}
