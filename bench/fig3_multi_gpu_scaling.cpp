// Figure 3: the optimised engine on one to four Tesla M2090s.
// Paper result: best average 4.35 s on four GPUs — ~4x a single M2090
// and ~5x the optimised single C2075 — at ~100% efficiency (Fig. 3b).
#include <iostream>

#include "common.hpp"
#include "core/engine_factory.hpp"
#include "core/gpu_engines.hpp"

int main() {
  using namespace ara;
  bench::print_header("Figure 3 — multi-GPU scaling (4x Tesla M2090)",
                      "Fig. 3a (GPUs vs time), Fig. 3b (efficiency)");

  const simgpu::GpuCostModel model(simgpu::tesla_m2090());

  auto device_seconds = [&](unsigned gpus) {
    // Even trial decomposition: each device runs 1/gpus of the work.
    const OpCounts ops = bench::scale_ops(bench::paper_ops(), 1.0 / gpus);
    const simgpu::KernelCost cost = model.estimate(
        bench::optimized_launch(32, 1'000'000 / gpus),
        bench::optimized_traits(), ops);
    return cost.total_seconds;
  };

  const double t1 = device_seconds(1);
  perf::Table table({"GPUs", "model time", "speedup", "efficiency", "paper"});
  for (unsigned gpus = 1; gpus <= 4; ++gpus) {
    const double t = device_seconds(gpus);
    std::string paper = "-";
    if (gpus == 1) paper = "~17.4 s (4x of 4.35 s)";
    if (gpus == 4) paper = "4.35 s, ~100% efficiency";
    table.add_row({std::to_string(gpus), perf::format_seconds(t),
                   perf::format_ratio(t1 / t),
                   perf::format_percent(t1 / (gpus * t)), paper});
  }
  table.print(std::cout);
  std::cout << '\n';

  bench::print_measured_footer(
      ExecutionPolicy::with_engine(EngineKind::kMultiGpu));
  return 0;
}
