// Distributed-run chaos bench: a ShardCoordinator with two real
// ara_worker processes, run once clean and once per injected failure
// (crash, stall, torn frame, bit flip — core/failpoint.hpp sites
// armed in the workers via --failpoints). Emits BENCH_dist.json with
// per-scenario wall time and recovery counters; every scenario is a
// gate, not just a measurement:
//
//   identity  — the distributed YLT is bitwise identical to the
//               monolithic single-process run, failures included;
//   coverage  — every trial range accepted exactly once (zero lost,
//               zero double-merged);
//   recovery  — a chaos run finishes within a bounded multiple of the
//               clean run plus the lease-timeout budget the failure
//               is allowed to burn.
//
// --smoke shrinks the workload for ctest; failpoint scenarios are
// recorded as skipped when failpoints are compiled out (Release
// default), the clean scenario always runs and gates.
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/engine_factory.hpp"
#include "core/failpoint.hpp"
#include "core/session.hpp"
#include "dist/coordinator.hpp"
#include "dist/protocol.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace ara::dist::bench {
namespace {

struct Scenario {
  std::string name;
  const char* failpoints = nullptr;  ///< worker --failpoints spec
  std::uint64_t lease_timeout_ms = 800;
};

struct ScenarioResult {
  Scenario scenario;
  bool ran = false;         ///< false = skipped (failpoints compiled out)
  bool identity = false;    ///< bitwise equal to the monolithic run
  bool coverage = false;    ///< every range accepted exactly once
  double wall_ms = 0.0;
  DistCounters counters;
};

pid_t spawn_worker(const serve::Endpoint& endpoint, const std::string& id,
                   const char* failpoints) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    const std::string ep = endpoint.describe();
    if (failpoints != nullptr) {
      ::execl(ARA_WORKER_BIN, "ara_worker", "--connect", ep.c_str(), "--id",
              id.c_str(), "--max-attempts", "4", "--failpoints", failpoints,
              static_cast<char*>(nullptr));
    } else {
      ::execl(ARA_WORKER_BIN, "ara_worker", "--connect", ep.c_str(), "--id",
              id.c_str(), "--max-attempts", "4",
              static_cast<char*>(nullptr));
    }
    ::_exit(127);
  }
  return pid;
}

void reap(pid_t pid) {
  int status = 0;
  ::waitpid(pid, &status, 0);
}

ScenarioResult run_scenario(const Scenario& scenario,
                            const serve::SynthSpec& spec,
                            std::uint64_t lease_trials,
                            const SimulationResult& mono) {
  ScenarioResult out;
  out.scenario = scenario;
  if (scenario.failpoints != nullptr && !fail::compiled_in()) {
    return out;  // recorded as skipped
  }
  out.ran = true;

  const ExecutionPolicy policy =
      ExecutionPolicy::with_engine(EngineKind::kSequentialFused);
  DistConfig config;
  config.endpoint = serve::Endpoint::parse(
      "unix:/tmp/ara_bench_dist_" + std::to_string(::getpid()) + "_" +
      scenario.name + ".sock");
  config.job.workload = JobWorkload::kSynth;
  config.job.synth = spec;
  config.job.engine = engine_kind_name(EngineKind::kSequentialFused);
  config.job.simd = static_cast<std::uint8_t>(policy.simd);
  config.job.simd_width = policy.simd_width;
  config.job.trial_count = spec.trials;
  config.job.layer_count = spec.layers;
  config.job.heartbeat_ms = 50;
  config.lease_trials = lease_trials;
  config.lease_timeout_ms = scenario.lease_timeout_ms;
  config.expected_workers = 2;

  ShardCoordinator coordinator(config);
  const pid_t w1 =
      spawn_worker(coordinator.endpoint(), scenario.name + "_1",
                   scenario.failpoints);
  const pid_t w2 =
      spawn_worker(coordinator.endpoint(), scenario.name + "_2",
                   scenario.failpoints);

  AnalysisRequest request;
  request.metrics = MetricsSpec::layer_summaries();
  const auto started = std::chrono::steady_clock::now();
  const DistResult result = coordinator.run(request);
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - started)
                    .count();
  reap(w1);
  reap(w2);

  out.counters = result.counters;
  out.identity =
      result.analysis.simulation.ylt.annual_raw() == mono.ylt.annual_raw() &&
      result.analysis.simulation.ylt.max_occurrence_raw() ==
          mono.ylt.max_occurrence_raw() &&
      result.analysis.simulation.ops == mono.ops;
  const std::uint64_t ranges =
      (spec.trials + lease_trials - 1) / lease_trials;
  out.coverage = result.counters.blocks_accepted == ranges;
  return out;
}

void write_json(const std::string& path,
                const std::vector<ScenarioResult>& results, bool smoke) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_dist: cannot write " << path << "\n";
    return;
  }
  out << "{\n  \"bench\": \"dist_chaos\",\n  \"mode\": \""
      << (smoke ? "smoke" : "full") << "\",\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    const DistCounters& c = r.counters;
    out << "    {\n"
        << "      \"name\": \"" << r.scenario.name << "\",\n"
        << "      \"ran\": " << (r.ran ? "true" : "false") << ",\n"
        << "      \"identity\": " << (r.identity ? "true" : "false")
        << ",\n"
        << "      \"coverage\": " << (r.coverage ? "true" : "false")
        << ",\n"
        << "      \"wall_ms\": " << r.wall_ms << ",\n"
        << "      \"workers_joined\": " << c.workers_joined << ",\n"
        << "      \"workers_lost\": " << c.workers_lost << ",\n"
        << "      \"leases_granted\": " << c.leases_granted << ",\n"
        << "      \"leases_reassigned\": " << c.leases_reassigned << ",\n"
        << "      \"blocks_accepted\": " << c.blocks_accepted << ",\n"
        << "      \"duplicate_blocks\": " << c.duplicate_blocks << ",\n"
        << "      \"corrupt_blocks\": " << c.corrupt_blocks << ",\n"
        << "      \"torn_frames\": " << c.torn_frames << ",\n"
        << "      \"local_shards\": " << c.local_shards << "\n"
        << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "bench_dist: wrote " << path << "\n";
}

int run(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_dist.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  serve::SynthSpec spec;
  spec.trials = smoke ? 4000 : 20000;
  spec.events_per_trial = smoke ? 30.0 : 50.0;
  spec.catalogue = smoke ? 600 : 4000;
  spec.elts = 3;
  spec.layers = 2;
  spec.seed = 1913;
  const std::uint64_t lease_trials = spec.trials / 8;

  const serve::ServedWorkload w = serve::materialize_synth(spec);
  const auto engine = make_engine(
      ExecutionPolicy::with_engine(EngineKind::kSequentialFused));
  const SimulationResult mono = engine->run(w.portfolio, w.yet);

  const std::vector<Scenario> scenarios = {
      {"clean", nullptr, 800},
      {"crash_mid_shard", "worker.crash_mid_shard=1", 800},
      {"stall", "worker.stall=1:5:1200:1", 400},
      {"torn_frame", "stream.torn_frame=1:7:0:1", 800},
      {"bit_flip", "block.bit_flip=1:9:0:1", 800},
  };

  std::vector<ScenarioResult> results;
  bool gate_failed = false;
  double clean_wall_ms = 0.0;
  for (const Scenario& scenario : scenarios) {
    ScenarioResult r = run_scenario(scenario, spec, lease_trials, mono);
    if (!r.ran) {
      std::cout << "  " << scenario.name
                << ": skipped (failpoints compiled out)\n";
      results.push_back(std::move(r));
      continue;
    }
    if (scenario.failpoints == nullptr) clean_wall_ms = r.wall_ms;

    // Bounded recovery: a chaos run may burn lease timeouts and
    // reconnect backoff, but must not degenerate — generous bound so
    // the gate catches hangs and retry storms, not scheduler jitter.
    const double budget_ms =
        3.0 * clean_wall_ms + 6.0 * scenario.lease_timeout_ms + 3000.0;
    const bool recovery_ok = r.wall_ms <= budget_ms;

    std::cout << "  " << scenario.name << ": wall=" << r.wall_ms
              << "ms identity=" << (r.identity ? "yes" : "NO")
              << " coverage=" << (r.coverage ? "yes" : "NO")
              << " reassigned=" << r.counters.leases_reassigned
              << " recovery=" << (recovery_ok ? "ok" : "OVER BUDGET")
              << "\n";
    if (!r.identity || !r.coverage || !recovery_ok) gate_failed = true;
    results.push_back(std::move(r));
  }

  write_json(out_path, results, smoke);
  if (gate_failed) {
    std::cerr << "bench_dist: GATE FAILED\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ara::dist::bench

int main(int argc, char** argv) {
  return ara::dist::bench::run(argc, argv);
}
