// Figure 1a: execution time of the parallel aggregate-analysis engine
// on the multi-core CPU as the core count grows from 1 to 8.
// Paper result: speed-ups of 1.5x @ 2 cores, 2.2x @ 4, 2.6x @ 8 —
// memory bandwidth, not core count, is the limit.
#include <iostream>

#include "common.hpp"
#include "core/cpu_engines.hpp"
#include "perf/cpu_cost_model.hpp"
#include "perf/machine_profile.hpp"

int main() {
  using namespace ara;
  bench::print_header("Figure 1a — multi-core CPU scaling",
                      "Fig. 1a (cores vs execution time); Sec. IV-A");

  const perf::CpuCostModel model(perf::intel_i7_2600());
  const OpCounts ops = bench::paper_ops();
  const double t1 = model.total_seconds(ops, 1);

  // Paper anchor points (digitised from the reported speed-ups).
  const double paper_speedup[9] = {0, 1.0, 1.5, 0, 2.2, 0, 0, 0, 2.6};

  perf::Table table({"cores", "model time", "model speedup", "paper speedup"});
  for (unsigned cores = 1; cores <= 8; ++cores) {
    const double t = model.total_seconds(ops, cores);
    table.add_row({std::to_string(cores), perf::format_seconds(t),
                   perf::format_ratio(t1 / t),
                   paper_speedup[cores] > 0
                       ? perf::format_ratio(paper_speedup[cores])
                       : "-"});
  }
  table.print(std::cout);
  std::cout << '\n';

  ExecutionPolicy policy = ExecutionPolicy::with_engine(EngineKind::kMultiCore);
  EngineConfig cfg;
  cfg.cores = 4;
  policy.config = cfg;
  bench::print_measured_footer(policy);
  return 0;
}
