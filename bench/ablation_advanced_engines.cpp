// Design-choice ablations beyond the paper (DESIGN.md extensions):
//
//  1. In-core vs streamed YET — what the 4-GPU platform would pay if
//     the YET had to be streamed through device memory in batches
//     (the constraint the paper dodges by shipping 4-byte event ids).
//  2. Homogeneous vs heterogeneous multi-GPU — what throughput-
//     proportional load balancing buys when the four cards are not
//     identical (one C2075 among M2090s).
#include <iostream>

#include "common.hpp"
#include "core/engine_factory.hpp"
#include "core/gpu_engines.hpp"

int main() {
  using namespace ara;
  bench::print_header("Ablation — streamed YET & heterogeneous multi-GPU",
                      "library extensions (DESIGN.md §5, last rows)");

  const std::size_t scale = bench::measured_scale();
  const synth::Scenario s = synth::paper_scaled(scale);

  // --- 1. Streaming ------------------------------------------------------
  {
    EngineConfig cfg = paper_config(EngineKind::kGpuOptimized);
    GpuOptimizedEngine incore(simgpu::tesla_m2090(), cfg);

    simgpu::DeviceSpec small = simgpu::tesla_m2090();
    // Shrink memory to ~1/4 of the YET's device footprint so the
    // scaled workload needs several batches.
    small.global_mem_bytes = s.yet.occurrence_count() + 256 * 1024;
    StreamedGpuEngine streamed(small, cfg);

    const auto a = incore.run(s.portfolio, s.yet);
    const auto b = streamed.run(s.portfolio, s.yet);
    perf::Table table({"engine", "batches", "simulated kernel",
                       "simulated transfer"});
    table.add_row({"in-core (full YET resident)", "1",
                   perf::format_seconds(a.simulated_seconds),
                   perf::format_seconds(
                       a.simulated_phases[perf::Phase::kTransfer])});
    table.add_row(
        {"streamed (memory-constrained)",
         std::to_string(streamed.batch_count(s.portfolio, s.yet)),
         perf::format_seconds(b.simulated_seconds),
         perf::format_seconds(
             b.simulated_phases[perf::Phase::kTransfer])});
    table.print(std::cout);
    std::cout << "streaming preserves results exactly; the cost is "
                 "per-batch transfer, launch overhead, and small-grid "
                 "tail effects (each batch underfills the SMs)\n\n";
  }

  // --- 2. Heterogeneous load balancing ------------------------------------
  {
    EngineConfig cfg = paper_config(EngineKind::kMultiGpu);
    const std::vector<simgpu::DeviceSpec> mixed = {
        simgpu::tesla_c2075(), simgpu::tesla_m2090(), simgpu::tesla_m2090(),
        simgpu::tesla_m2090()};

    HeterogeneousMultiGpuEngine balanced(mixed, cfg);
    const auto rb = balanced.run(s.portfolio, s.yet);

    // Even split over the same mixed cards: emulate by running the
    // slowest card (C2075) on an even 1/4 share — it bounds the
    // platform time from below.
    GpuOptimizedEngine slowest(simgpu::tesla_c2075(), cfg);
    const synth::Scenario quarter = synth::paper_scaled(scale * 4);
    const auto re = slowest.run(quarter.portfolio, quarter.yet);

    perf::Table table({"strategy", "simulated time", "weights"});
    std::string w;
    for (const double x : balanced.weights()) {
      w += perf::format_percent(x) + " ";
    }
    table.add_row({"throughput-proportional",
                   perf::format_seconds(rb.simulated_seconds), w});
    table.add_row({"even split (>= slowest card's quarter)",
                   perf::format_seconds(re.simulated_seconds),
                   "25% each"});
    table.print(std::cout);
    std::cout << "balancing lets the mixed platform finish with the "
                 "fast cards instead of waiting on the C2075\n";
  }
  return 0;
}
