#include "core/failpoint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace ara::fail {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry::instance().disarm_all(); }
  void TearDown() override { Registry::instance().disarm_all(); }
};

TEST_F(FailpointTest, UnarmedSiteNeverFires) {
  auto& reg = Registry::instance();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(reg.fire("test.unarmed").has_value());
  }
  EXPECT_EQ(reg.stats("test.unarmed").fires, 0u);
}

TEST_F(FailpointTest, ProbabilityOneAlwaysFiresWithValue) {
  auto& reg = Registry::instance();
  reg.arm("test.always", 1.0, /*seed=*/3, /*value=*/42.5);
  for (int i = 0; i < 10; ++i) {
    const auto fired = reg.fire("test.always");
    ASSERT_TRUE(fired.has_value());
    EXPECT_EQ(*fired, 42.5);
  }
  EXPECT_EQ(reg.stats("test.always").hits, 10u);
  EXPECT_EQ(reg.stats("test.always").fires, 10u);
}

TEST_F(FailpointTest, ProbabilityZeroNeverFiresButCountsHits) {
  auto& reg = Registry::instance();
  reg.arm("test.never", 0.0, 3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(reg.fire("test.never").has_value());
  }
  EXPECT_EQ(reg.stats("test.never").hits, 50u);
  EXPECT_EQ(reg.stats("test.never").fires, 0u);
}

TEST_F(FailpointTest, SeededFiringIsDeterministic) {
  auto& reg = Registry::instance();
  std::vector<bool> first;
  reg.arm("test.coin", 0.5, /*seed=*/99);
  for (int i = 0; i < 64; ++i) first.push_back(reg.fire("test.coin").has_value());
  // Re-arming with the same seed replays the identical firing sequence.
  reg.arm("test.coin", 0.5, /*seed=*/99);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(reg.fire("test.coin").has_value(), first[i]) << "roll " << i;
  }
  // Some of each — p=0.5 over 64 rolls with both outcomes absent would
  // mean the RNG is broken, not unlucky.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

TEST_F(FailpointTest, MaxFiresCapsTheSite) {
  auto& reg = Registry::instance();
  reg.arm("test.capped", 1.0, 3, 0.0, /*max_fires=*/2);
  EXPECT_TRUE(reg.fire("test.capped").has_value());
  EXPECT_TRUE(reg.fire("test.capped").has_value());
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(reg.fire("test.capped").has_value());
  }
  EXPECT_EQ(reg.stats("test.capped").fires, 2u);
}

TEST_F(FailpointTest, SpecGrammarArmsMultipleSites) {
  auto& reg = Registry::instance();
  reg.arm_from_spec("a.one=1;b.two=1:7:123.5:1;c.three=0");
  ASSERT_TRUE(reg.fire("a.one").has_value());
  const auto two = reg.fire("b.two");
  ASSERT_TRUE(two.has_value());
  EXPECT_EQ(*two, 123.5);
  EXPECT_FALSE(reg.fire("b.two").has_value());  // max_fires=1
  EXPECT_FALSE(reg.fire("c.three").has_value());
}

TEST_F(FailpointTest, BadSpecsThrowLoudly) {
  auto& reg = Registry::instance();
  EXPECT_THROW(reg.arm_from_spec("no_equals_sign"), std::invalid_argument);
  EXPECT_THROW(reg.arm_from_spec("site="), std::invalid_argument);
  EXPECT_THROW(reg.arm_from_spec("site=notanumber"), std::invalid_argument);
  EXPECT_THROW(reg.arm_from_spec("site=2.0"), std::invalid_argument);
  EXPECT_THROW(reg.arm_from_spec("site=-0.5"), std::invalid_argument);
  EXPECT_THROW(reg.arm_from_spec("=0.5"), std::invalid_argument);
}

TEST_F(FailpointTest, DisarmAllSilencesArmedSites) {
  auto& reg = Registry::instance();
  reg.arm("test.loud", 1.0, 1);
  ASSERT_TRUE(reg.fire("test.loud").has_value());
  reg.disarm_all();
  EXPECT_FALSE(reg.fire("test.loud").has_value());
}

TEST_F(FailpointTest, MacroRunsActionOnlyWhenCompiledIn) {
  auto& reg = Registry::instance();
  reg.arm("test.macro", 1.0, 1, 7.0);
  int ran = 0;
  double value = 0.0;
  ARA_FAILPOINT("test.macro", {
    ++ran;
    value = *ara_fp;
  });
  if (compiled_in()) {
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(value, 7.0);
    // The macro evaluated the site.
    EXPECT_EQ(reg.stats("test.macro").fires, 1u);
  } else {
    // Sites compiled out: no action, no registry traffic.
    EXPECT_EQ(ran, 0);
    EXPECT_EQ(reg.stats("test.macro").fires, 0u);
  }
}

}  // namespace
}  // namespace ara::fail
