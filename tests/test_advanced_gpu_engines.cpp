#include <gtest/gtest.h>

#include <stdexcept>

#include "core/engine_factory.hpp"
#include "core/gpu_engines.hpp"
#include "core/reference_engine.hpp"
#include "synth/scenarios.hpp"

namespace ara {
namespace {

// A deliberately tiny device: forces the streamed engine to batch.
simgpu::DeviceSpec tiny_memory_device() {
  simgpu::DeviceSpec d = simgpu::tesla_m2090();
  d.global_mem_bytes = 8 * 1024;  // 8 KB: a few dozen trials per batch
  return d;
}

TEST(StreamedGpuEngine, BatchesWhenMemoryIsTight) {
  const synth::Scenario s = synth::tiny(256, 41);
  EngineConfig cfg = paper_config(EngineKind::kGpuOptimized);
  StreamedGpuEngine tight(tiny_memory_device(), cfg);
  StreamedGpuEngine roomy(simgpu::tesla_m2090(), cfg);
  EXPECT_GT(tight.batch_count(s.portfolio, s.yet), 1u);
  EXPECT_EQ(roomy.batch_count(s.portfolio, s.yet), 1u);
}

TEST(StreamedGpuEngine, ResultsIdenticalToReferenceAcrossBatches) {
  const synth::Scenario s = synth::tiny(256, 41);
  EngineConfig cfg = paper_config(EngineKind::kGpuOptimized);
  cfg.use_float = false;
  StreamedGpuEngine engine(tiny_memory_device(), cfg);
  ReferenceEngine ref;
  const auto expect = ref.run(s.portfolio, s.yet);
  const auto got = engine.run(s.portfolio, s.yet);
  for (std::size_t l = 0; l < expect.ylt.layer_count(); ++l) {
    for (TrialId t = 0; t < expect.ylt.trial_count(); ++t) {
      ASSERT_EQ(got.ylt.annual_loss(l, t), expect.ylt.annual_loss(l, t))
          << "layer " << l << " trial " << t;
    }
  }
}

TEST(StreamedGpuEngine, FloatVariantWithinTolerance) {
  const synth::Scenario s = synth::tiny(128, 43);
  EngineConfig cfg = paper_config(EngineKind::kGpuOptimized);
  cfg.use_float = true;
  StreamedGpuEngine engine(tiny_memory_device(), cfg);
  ReferenceEngine ref;
  const auto expect = ref.run(s.portfolio, s.yet);
  const auto got = engine.run(s.portfolio, s.yet);
  for (std::size_t l = 0; l < expect.ylt.layer_count(); ++l) {
    for (TrialId t = 0; t < expect.ylt.trial_count(); ++t) {
      const double e = expect.ylt.annual_loss(l, t);
      ASSERT_NEAR(got.ylt.annual_loss(l, t), e, 1e-3 * (1.0 + e));
    }
  }
}

TEST(StreamedGpuEngine, ThrowsWhenTablesAloneDoNotFit) {
  const synth::Scenario s = synth::tiny(8, 44);
  simgpu::DeviceSpec d = simgpu::tesla_m2090();
  d.global_mem_bytes = 16;  // absurdly small
  EngineConfig cfg = paper_config(EngineKind::kGpuOptimized);
  StreamedGpuEngine engine(d, cfg);
  EXPECT_THROW(engine.run(s.portfolio, s.yet), std::runtime_error);
  EXPECT_EQ(engine.batch_count(s.portfolio, s.yet), 0u);
}

TEST(StreamedGpuEngine, ChargesMoreTransferThanInCore) {
  // Streaming moves the same YET bytes but in batches; the YLT slices
  // are moved per batch too, so transfer time >= the in-core engine's.
  const synth::Scenario s = synth::tiny(256, 45);
  EngineConfig cfg = paper_config(EngineKind::kGpuOptimized);
  StreamedGpuEngine streamed(tiny_memory_device(), cfg);
  GpuOptimizedEngine incore(simgpu::tesla_m2090(), cfg);
  const auto a = streamed.run(s.portfolio, s.yet);
  const auto b = incore.run(s.portfolio, s.yet);
  EXPECT_GE(a.simulated_phases[perf::Phase::kTransfer],
            b.simulated_phases[perf::Phase::kTransfer] - 1e-12);
}

TEST(HeterogeneousMultiGpu, WeightsFollowThroughput) {
  EngineConfig cfg = paper_config(EngineKind::kMultiGpu);
  HeterogeneousMultiGpuEngine engine(
      {simgpu::tesla_c2075(), simgpu::tesla_m2090()}, cfg);
  ASSERT_EQ(engine.weights().size(), 2u);
  // The M2090 has more bandwidth: it must get the larger share.
  EXPECT_GT(engine.weights()[1], engine.weights()[0]);
  EXPECT_NEAR(engine.weights()[0] + engine.weights()[1], 1.0, 1e-12);
}

TEST(HeterogeneousMultiGpu, ResultsMatchReference) {
  const synth::Scenario s = synth::tiny(100, 47);
  EngineConfig cfg = paper_config(EngineKind::kMultiGpu);
  cfg.use_float = false;
  HeterogeneousMultiGpuEngine engine(
      {simgpu::tesla_c2075(), simgpu::tesla_m2090(), simgpu::tesla_m2090()},
      cfg);
  ReferenceEngine ref;
  const auto expect = ref.run(s.portfolio, s.yet);
  const auto got = engine.run(s.portfolio, s.yet);
  for (std::size_t l = 0; l < expect.ylt.layer_count(); ++l) {
    for (TrialId t = 0; t < expect.ylt.trial_count(); ++t) {
      ASSERT_EQ(got.ylt.annual_loss(l, t), expect.ylt.annual_loss(l, t));
    }
  }
}

TEST(HeterogeneousMultiGpu, BalancedFinishTimes) {
  // With throughput-proportional splitting, the simulated platform
  // time should beat an even split across unequal devices.
  const synth::Scenario s = synth::paper_scaled(100, 48);  // 10k trials
  EngineConfig cfg = paper_config(EngineKind::kMultiGpu);

  HeterogeneousMultiGpuEngine balanced(
      {simgpu::tesla_c2075(), simgpu::tesla_m2090()}, cfg);
  const double t_balanced =
      balanced.run(s.portfolio, s.yet).simulated_seconds;

  // Even split = MultiGpuEngine semantics, emulated with two equal
  // weights by using two identical platforms' worst device: the
  // C2075 processing half the trials bounds the even split below.
  EngineConfig half_cfg = cfg;
  GpuOptimizedEngine c2075(simgpu::tesla_c2075(), half_cfg);
  const synth::Scenario half = synth::paper_scaled(200, 48);  // ~half trials
  const double t_even_lower =
      c2075.run(half.portfolio, half.yet).simulated_seconds;

  EXPECT_LT(t_balanced, t_even_lower * 1.02);
}

TEST(HeterogeneousMultiGpu, SingleDeviceDegenerate) {
  const synth::Scenario s = synth::tiny(32, 49);
  EngineConfig cfg = paper_config(EngineKind::kMultiGpu);
  HeterogeneousMultiGpuEngine engine({simgpu::tesla_m2090()}, cfg);
  EXPECT_NO_THROW(engine.run(s.portfolio, s.yet));
  EXPECT_THROW(HeterogeneousMultiGpuEngine({}, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace ara
