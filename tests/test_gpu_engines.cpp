#include "core/gpu_engines.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/engine_factory.hpp"
#include "core/reference_engine.hpp"
#include "synth/scenarios.hpp"

namespace ara {
namespace {

TEST(GpuBasicEngine, SimulatedTimeScalesWithBlockSizeShape) {
  // Fig. 2's shape: < 128 threads/block noticeably worse; 256 best or
  // tied; beyond 256 no improvement.
  const synth::Scenario s = synth::tiny(64);
  auto run_sim = [&](unsigned block) {
    EngineConfig cfg;
    cfg.block_threads = block;
    GpuBasicEngine engine(simgpu::tesla_c2075(), cfg);
    return engine.run(s.portfolio, s.yet).simulated_seconds;
  };
  const double t64 = run_sim(64);
  const double t128 = run_sim(128);
  const double t256 = run_sim(256);
  const double t384 = run_sim(384);
  const double t512 = run_sim(512);
  EXPECT_GT(t64, t128 * 1.05);   // "at least 128 required"
  EXPECT_GT(t128, t256);         // improvement up to 256
  EXPECT_NEAR(t384 / t256, 1.0, 0.05);  // flat beyond
  EXPECT_NEAR(t512 / t256, 1.0, 0.05);
}

TEST(GpuOptimizedEngine, FasterThanBasicInSimulatedTime) {
  // The paper: 38.47 s -> 20.63 s, roughly 1.9x.
  const synth::Scenario s = synth::paper_scaled(20000);
  EngineConfig basic_cfg = paper_config(EngineKind::kGpuBasic);
  EngineConfig opt_cfg = paper_config(EngineKind::kGpuOptimized);
  GpuBasicEngine basic(simgpu::tesla_c2075(), basic_cfg);
  GpuOptimizedEngine opt(simgpu::tesla_c2075(), opt_cfg);
  const double tb = basic.run(s.portfolio, s.yet).simulated_seconds;
  const double to = opt.run(s.portfolio, s.yet).simulated_seconds;
  EXPECT_NEAR(tb / to, 1.9, 0.35);
}

TEST(GpuOptimizedEngine, SharedMemoryFootprint) {
  // 32-thread blocks with the default 88-event chunk: two blocks per
  // Fermi SM; 64 threads: one block; 128 threads: infeasible (Fig. 4).
  EXPECT_LE(optimized_shared_bytes(32, 88), 24u * 1024);
  EXPECT_LE(optimized_shared_bytes(64, 88), 48u * 1024);
  EXPECT_GT(optimized_shared_bytes(128, 88), 48u * 1024);
}

TEST(GpuOptimizedEngine, OversizedBlockThrowsSharedOverflow) {
  const synth::Scenario s = synth::tiny(8);
  EngineConfig cfg = paper_config(EngineKind::kGpuOptimized);
  cfg.block_threads = 128;  // beyond the paper's feasible range
  GpuOptimizedEngine engine(simgpu::tesla_c2075(), cfg);
  EXPECT_THROW(engine.run(s.portfolio, s.yet), std::runtime_error);
}

TEST(GpuOptimizedEngine, BlockOf32BeatsOtherFeasibleSizes) {
  // Fig. 4: best at 32 (the warp size); 16 and 64 are worse.
  const synth::Scenario s = synth::tiny(64);
  auto run_sim = [&](unsigned block) {
    EngineConfig cfg = paper_config(EngineKind::kGpuOptimized);
    cfg.block_threads = block;
    GpuOptimizedEngine engine(simgpu::tesla_m2090(), cfg);
    return engine.run(s.portfolio, s.yet).simulated_seconds;
  };
  const double t16 = run_sim(16);
  const double t32 = run_sim(32);
  const double t64 = run_sim(64);
  EXPECT_LT(t32, t16);
  EXPECT_LT(t32, t64);
}

TEST(GpuOptimizedEngine, FloatAndDoubleBothMatchReference) {
  const synth::Scenario s = synth::tiny(32);
  ReferenceEngine ref;
  const auto expect = ref.run(s.portfolio, s.yet);
  for (const bool use_float : {false, true}) {
    EngineConfig cfg = paper_config(EngineKind::kGpuOptimized);
    cfg.use_float = use_float;
    GpuOptimizedEngine engine(simgpu::tesla_c2075(), cfg);
    const auto got = engine.run(s.portfolio, s.yet);
    const double tol = use_float ? 1e-3 : 0.0;
    for (TrialId t = 0; t < expect.ylt.trial_count(); ++t) {
      for (std::size_t l = 0; l < expect.ylt.layer_count(); ++l) {
        ASSERT_NEAR(got.ylt.annual_loss(l, t), expect.ylt.annual_loss(l, t),
                    tol * (1.0 + expect.ylt.annual_loss(l, t)));
      }
    }
  }
}

TEST(GpuOptimizedEngine, FloatLookupFasterThanDouble) {
  // The paper's precision-reduction optimisation must show in the
  // simulated lookup rate (f32 tables have higher effective random
  // throughput).
  const synth::Scenario s = synth::tiny(32);
  EngineConfig cfg = paper_config(EngineKind::kGpuOptimized);
  cfg.use_float = true;
  GpuOptimizedEngine f32(simgpu::tesla_c2075(), cfg);
  cfg.use_float = false;
  GpuOptimizedEngine f64(simgpu::tesla_c2075(), cfg);
  EXPECT_LT(f32.run(s.portfolio, s.yet).simulated_seconds,
            f64.run(s.portfolio, s.yet).simulated_seconds);
}

TEST(GpuEngines, LookupDominatesSimulatedProfile) {
  // The paper: on the optimised GPU, ~97% of time is loss lookup.
  const synth::Scenario s = synth::paper_scaled(20000);
  EngineConfig cfg = paper_config(EngineKind::kGpuOptimized);
  GpuOptimizedEngine engine(simgpu::tesla_c2075(), cfg);
  const SimulationResult r = engine.run(s.portfolio, s.yet);
  const double lookup = r.simulated_phases[perf::Phase::kLossLookup];
  EXPECT_GT(lookup / r.simulated_seconds, 0.90);
}

TEST(GpuEngines, TransferExcludedFromHeadlineTime) {
  const synth::Scenario s = synth::tiny(16);
  EngineConfig cfg = paper_config(EngineKind::kGpuBasic);
  GpuBasicEngine engine(simgpu::tesla_c2075(), cfg);
  const SimulationResult r = engine.run(s.portfolio, s.yet);
  EXPECT_GT(r.simulated_phases[perf::Phase::kTransfer], 0.0);
  EXPECT_NEAR(r.simulated_seconds +
                  r.simulated_phases[perf::Phase::kTransfer],
              r.simulated_phases.total(), 1e-12);
}

}  // namespace
}  // namespace ara
