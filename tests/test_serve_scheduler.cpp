// DwrrScheduler policy arithmetic, driven single-threaded and
// deterministically: weighted fairness over saturated queues, hard
// admission caps, WRED shed thresholds, deadline expiry at dequeue,
// and the no-credit-hoarding rule.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <string>

#include "serve/scheduler.hpp"

namespace ara::serve {
namespace {

using Clock = std::chrono::steady_clock;

DwrrScheduler::Item item(std::uint64_t token, std::uint64_t cost,
                         std::size_t bytes = 100) {
  DwrrScheduler::Item it;
  it.token = token;
  it.cost_trials = cost;
  it.bytes = bytes;
  return it;
}

TEST(DwrrScheduler, ServedTrialsProportionalToWeightWhenSaturated) {
  DwrrScheduler dwrr(/*quantum_trials=*/256, /*global_byte_budget=*/0);
  dwrr.configure_tenant({"a", 1, 1000});
  dwrr.configure_tenant({"b", 2, 1000});
  dwrr.configure_tenant({"c", 4, 1000});

  // Saturate: 200 equal-cost requests per tenant.
  std::uint64_t token = 1;
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(dwrr.offer("a", item(token++, 256)), Admission::kAdmit);
    ASSERT_EQ(dwrr.offer("b", item(token++, 256)), Admission::kAdmit);
    ASSERT_EQ(dwrr.offer("c", item(token++, 256)), Admission::kAdmit);
  }

  // Serve 140 requests = 20 full ring cycles (1 + 2 + 4 per cycle):
  // still saturated for every tenant afterwards.
  std::map<std::string, std::uint64_t> served;
  const auto now = Clock::now();
  for (int i = 0; i < 140; ++i) {
    const auto next = dwrr.poll(now);
    ASSERT_TRUE(next.has_value());
    ASSERT_FALSE(next->expired);
    served[next->tenant] += next->item.cost_trials;
  }

  // Weighted shares are exact over whole cycles: 20/40/80 requests.
  EXPECT_EQ(served["a"], 20u * 256u);
  EXPECT_EQ(served["b"], 40u * 256u);
  EXPECT_EQ(served["c"], 80u * 256u);
  EXPECT_EQ(dwrr.counters("a").served, 20u);
  EXPECT_EQ(dwrr.counters("c").served_trials, 80u * 256u);
}

TEST(DwrrScheduler, LargeRequestsAccumulateDeficitAcrossVisits) {
  DwrrScheduler dwrr(/*quantum_trials=*/100, /*global_byte_budget=*/0);
  dwrr.configure_tenant({"big", 1, 10});
  dwrr.configure_tenant({"small", 1, 10});
  // big's head costs 3 quanta; small's cost 1 each.
  ASSERT_EQ(dwrr.offer("big", item(1, 300)), Admission::kAdmit);
  for (std::uint64_t t = 2; t <= 7; ++t) {
    ASSERT_EQ(dwrr.offer("small", item(t, 100)), Admission::kAdmit);
  }
  const auto now = Clock::now();
  std::vector<std::string> order;
  while (const auto next = dwrr.poll(now)) order.push_back(next->tenant);
  // big is served exactly once, after accumulating 3 visits of credit,
  // and small is never starved while big waits.
  ASSERT_EQ(order.size(), 7u);
  int smalls_before_big = 0;
  for (const std::string& t : order) {
    if (t == "big") break;
    ++smalls_before_big;
  }
  EXPECT_GE(smalls_before_big, 2);
  EXPECT_EQ(dwrr.counters("big").served, 1u);
  EXPECT_EQ(dwrr.counters("small").served, 6u);
}

TEST(DwrrScheduler, DepthCapRejects) {
  DwrrScheduler dwrr(256, /*global_byte_budget=*/0);
  dwrr.configure_tenant({"t", 1, /*max_queue_depth=*/3});
  EXPECT_EQ(dwrr.offer("t", item(1, 1)), Admission::kAdmit);
  EXPECT_EQ(dwrr.offer("t", item(2, 1)), Admission::kAdmit);
  EXPECT_EQ(dwrr.offer("t", item(3, 1)), Admission::kAdmit);
  EXPECT_EQ(dwrr.offer("t", item(4, 1)), Admission::kRejectQueueFull);
  EXPECT_EQ(dwrr.counters("t").rejected_queue_full, 1u);
  EXPECT_EQ(dwrr.counters("t").offered, 4u);
  EXPECT_EQ(dwrr.counters("t").admitted, 3u);
  // Serving one frees a slot.
  ASSERT_TRUE(dwrr.poll(Clock::now()).has_value());
  EXPECT_EQ(dwrr.offer("t", item(5, 1)), Admission::kAdmit);
}

TEST(DwrrScheduler, ByteBudgetRejectsBeforeWred) {
  WredConfig wred;
  wred.min_occupancy = 1.0;  // degenerate ramp: WRED never fires below
  wred.max_occupancy = 1.0;  // the hard byte cap
  wred.max_drop_probability = 0.0;
  DwrrScheduler dwrr(256, /*global_byte_budget=*/1000, wred);
  dwrr.configure_tenant({"t", 1, 100});
  EXPECT_EQ(dwrr.offer("t", item(1, 1, 600)), Admission::kAdmit);
  EXPECT_EQ(dwrr.offer("t", item(2, 1, 600)), Admission::kRejectBytes);
  EXPECT_EQ(dwrr.counters("t").rejected_bytes, 1u);
  EXPECT_EQ(dwrr.queued_bytes(), 600u);
  // Draining the queue releases the bytes.
  ASSERT_TRUE(dwrr.poll(Clock::now()).has_value());
  EXPECT_EQ(dwrr.queued_bytes(), 0u);
  EXPECT_EQ(dwrr.offer("t", item(3, 1, 600)), Admission::kAdmit);
}

TEST(DwrrScheduler, WredShedsNothingBelowMinAndEverythingAtMax) {
  WredConfig wred;
  wred.min_occupancy = 0.5;
  wred.max_occupancy = 0.9;
  wred.max_drop_probability = 1.0;
  DwrrScheduler dwrr(256, /*global_byte_budget=*/1000, wred, /*seed=*/7);
  dwrr.configure_tenant({"t", 1, 1000});

  // Occupancy at or below min (incoming item included): every offer
  // admitted, no WRED draw at all.
  std::uint64_t token = 1;
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(dwrr.offer("t", item(token++, 1, 100)), Admission::kAdmit);
  }
  EXPECT_EQ(dwrr.counters("t").shed_early, 0u);

  // Climb through the ramp band to 800 queued bytes (shed verdicts are
  // probabilistic there; admits eventually land with probability 1).
  while (dwrr.queued_bytes() < 800) {
    const Admission verdict = dwrr.offer("t", item(token++, 1, 100));
    ASSERT_TRUE(verdict == Admission::kAdmit ||
                verdict == Admission::kShedEarly);
  }
  // From 800, a 100-byte offer lands exactly at max occupancy: the
  // always-shed band, deterministically.
  EXPECT_EQ(dwrr.offer("t", item(token++, 1, 100)), Admission::kShedEarly);
  EXPECT_EQ(dwrr.offer("t", item(token++, 1, 150)), Admission::kShedEarly);
  EXPECT_GE(dwrr.counters("t").shed_early, 2u);
}

TEST(DwrrScheduler, WredDrawsAreSeedDeterministic) {
  const auto run = [](std::uint64_t seed) {
    WredConfig wred;
    wred.min_occupancy = 0.1;
    wred.max_occupancy = 1.0;  // the 50 10-byte offers stay in the ramp
    wred.max_drop_probability = 0.9;
    DwrrScheduler dwrr(256, /*global_byte_budget=*/1000, wred, seed);
    dwrr.configure_tenant({"t", 1, 10000});
    std::vector<Admission> verdicts;
    for (std::uint64_t tok = 1; tok <= 50; ++tok) {
      verdicts.push_back(dwrr.offer("t", item(tok, 1, 10)));
    }
    return verdicts;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));  // astronomically unlikely to collide
}

TEST(DwrrScheduler, ExpiredHeadIsFlaggedAndCostsNoDeficit) {
  DwrrScheduler dwrr(/*quantum_trials=*/100, /*global_byte_budget=*/0);
  dwrr.configure_tenant({"t", 1, 10});
  const auto now = Clock::now();

  DwrrScheduler::Item expired = item(1, 100);
  expired.deadline = now - std::chrono::milliseconds(1);
  ASSERT_EQ(dwrr.offer("t", expired), Admission::kAdmit);
  ASSERT_EQ(dwrr.offer("t", item(2, 100)), Admission::kAdmit);

  const auto first = dwrr.poll(now);
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->expired);
  EXPECT_EQ(first->item.token, 1u);
  EXPECT_EQ(dwrr.counters("t").shed_deadline, 1u);
  EXPECT_EQ(dwrr.counters("t").served, 0u);

  // The live request behind it is served normally — the expired one
  // consumed no deficit, so this dequeues on the same visit.
  const auto second = dwrr.poll(now);
  ASSERT_TRUE(second.has_value());
  EXPECT_FALSE(second->expired);
  EXPECT_EQ(second->item.token, 2u);
  EXPECT_EQ(dwrr.counters("t").served_trials, 100u);
}

TEST(DwrrScheduler, IdleTenantDoesNotHoardDeficit) {
  DwrrScheduler dwrr(/*quantum_trials=*/100, /*global_byte_budget=*/0);
  dwrr.configure_tenant({"t", 1, 10});
  const auto now = Clock::now();

  // Serve a cheap request: the visit credited 100, the serve debits 10,
  // and the queue empties — the 90 remainder must be forfeited.
  ASSERT_EQ(dwrr.offer("t", item(1, 10)), Admission::kAdmit);
  ASSERT_TRUE(dwrr.poll(now).has_value());
  EXPECT_TRUE(dwrr.empty());

  // A 150-cost head now needs TWO fresh visits (100, then +100); if the
  // stale 90 had been hoarded one visit would cover it.
  ASSERT_EQ(dwrr.offer("t", item(2, 150)), Admission::kAdmit);
  ASSERT_EQ(dwrr.offer("t", item(3, 10)), Admission::kAdmit);
  const auto next = dwrr.poll(now);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->item.token, 2u);
  // served_trials reflects both visits' arithmetic: 150 debited.
  EXPECT_EQ(dwrr.counters("t").served_trials, 10u + 150u);
}

TEST(DwrrScheduler, AutoRegistersTenantsWithDefaultConfig) {
  DwrrScheduler dwrr(256, 0);
  TenantConfig def;
  def.weight = 3;
  def.max_queue_depth = 2;
  dwrr.set_default_config(def);
  EXPECT_EQ(dwrr.offer("new-tenant", item(1, 1)), Admission::kAdmit);
  const TenantConfig* cfg = dwrr.tenant_config("new-tenant");
  ASSERT_NE(cfg, nullptr);
  EXPECT_EQ(cfg->weight, 3u);
  EXPECT_EQ(cfg->max_queue_depth, 2u);
  EXPECT_EQ(dwrr.tenant_names(),
            (std::vector<std::string>{"new-tenant"}));
}

TEST(DwrrScheduler, PollOnEmptyReturnsNullopt) {
  DwrrScheduler dwrr(256, 0);
  EXPECT_FALSE(dwrr.poll(Clock::now()).has_value());
  EXPECT_TRUE(dwrr.empty());
  EXPECT_EQ(dwrr.occupancy(), 0.0);
}

TEST(DwrrScheduler, InvalidWredConfigRejected) {
  WredConfig bad;
  bad.min_occupancy = 0.9;
  bad.max_occupancy = 0.5;  // min > max
  EXPECT_THROW(DwrrScheduler(256, 1000, bad), std::invalid_argument);
  WredConfig negative;
  negative.max_drop_probability = -0.5;
  EXPECT_THROW(DwrrScheduler(256, 1000, negative), std::invalid_argument);
}

}  // namespace
}  // namespace ara::serve
