#include "synth/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace ara::synth {
namespace {

template <typename Sampler>
std::pair<double, double> sample_moments(Sampler& s, int n,
                                         std::uint64_t seed = 1) {
  Xoshiro256StarStar rng(seed);
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = static_cast<double>(s.sample(rng));
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  return {mean, sum2 / n - mean * mean};
}

TEST(NormalSampler, MeanZeroVarianceOne) {
  NormalSampler s;
  auto [mean, var] = sample_moments(s, 200000);
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(PoissonSampler, SmallLambdaMoments) {
  PoissonSampler s(3.5);  // inversion path
  auto [mean, var] = sample_moments(s, 200000);
  EXPECT_NEAR(mean, 3.5, 0.03);
  EXPECT_NEAR(var, 3.5, 0.1);
}

TEST(PoissonSampler, LargeLambdaMoments) {
  PoissonSampler s(1000.0);  // PTRS path (the paper's 1000 events/trial)
  auto [mean, var] = sample_moments(s, 50000);
  EXPECT_NEAR(mean, 1000.0, 1.0);
  EXPECT_NEAR(var, 1000.0, 30.0);
}

TEST(PoissonSampler, BoundaryLambdas) {
  PoissonSampler zero(0.0);
  Xoshiro256StarStar rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(zero.sample(rng), 0u);
  }
  PoissonSampler tiny(1e-6);
  int nonzero = 0;
  for (int i = 0; i < 10000; ++i) {
    if (tiny.sample(rng) > 0) ++nonzero;
  }
  EXPECT_LT(nonzero, 5);
  EXPECT_THROW(PoissonSampler(-1.0), std::invalid_argument);
}

TEST(PoissonSampler, PtrsInversionAgreeAcrossThreshold) {
  // Means just below/above the lambda=10 method switch should be close.
  PoissonSampler below(9.99);
  PoissonSampler above(10.01);
  auto [mb, vb] = sample_moments(below, 100000, 5);
  auto [ma, va] = sample_moments(above, 100000, 6);
  EXPECT_NEAR(mb, 9.99, 0.1);
  EXPECT_NEAR(ma, 10.01, 0.1);
  (void)vb;
  (void)va;
}

TEST(NegativeBinomial, MeanAndOverdispersion) {
  NegativeBinomialSampler s(20.0, 4.0);  // var = 20 + 400/4 = 120
  auto [mean, var] = sample_moments(s, 100000);
  EXPECT_NEAR(mean, 20.0, 0.3);
  EXPECT_NEAR(var, 120.0, 8.0);
}

TEST(NegativeBinomial, LargeKDegeneratesToPoisson) {
  NegativeBinomialSampler s(15.0, 1e7);
  auto [mean, var] = sample_moments(s, 100000);
  EXPECT_NEAR(mean, 15.0, 0.2);
  EXPECT_NEAR(var, 15.0, 1.0);  // Poisson: var == mean
}

TEST(NegativeBinomial, RejectsBadParameters) {
  EXPECT_THROW(NegativeBinomialSampler(-1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(NegativeBinomialSampler(1.0, 0.0), std::invalid_argument);
}

TEST(GammaSampler, MomentsMatch) {
  GammaSampler s(3.0, 2.0);  // mean 6, var 12
  auto [mean, var] = sample_moments(s, 200000);
  EXPECT_NEAR(mean, 6.0, 0.05);
  EXPECT_NEAR(var, 12.0, 0.4);
}

TEST(GammaSampler, ShapeBelowOne) {
  GammaSampler s(0.5, 1.0);  // mean 0.5, var 0.5
  auto [mean, var] = sample_moments(s, 200000);
  EXPECT_NEAR(mean, 0.5, 0.01);
  EXPECT_NEAR(var, 0.5, 0.05);
}

TEST(GammaSampler, RejectsBadParameters) {
  EXPECT_THROW(GammaSampler(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(GammaSampler(1.0, -1.0), std::invalid_argument);
}

TEST(LognormalSampler, FromMeanCvMatchesMoments) {
  const double mean = 1e6, cv = 2.0;
  LognormalSampler s = LognormalSampler::from_mean_cv(mean, cv);
  Xoshiro256StarStar rng(9);
  double sum = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) sum += s.sample(rng);
  EXPECT_NEAR(sum / n, mean, 0.03 * mean);
}

TEST(LognormalSampler, AlwaysPositive) {
  LognormalSampler s(0.0, 3.0);
  Xoshiro256StarStar rng(10);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(s.sample(rng), 0.0);
  }
}

TEST(LognormalSampler, FromMeanCvRejectsBadInput) {
  EXPECT_THROW(LognormalSampler::from_mean_cv(0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(LognormalSampler::from_mean_cv(1.0, 0.0),
               std::invalid_argument);
}

TEST(ParetoSampler, SupportStartsAtScale) {
  ParetoSampler s(100.0, 2.5);
  Xoshiro256StarStar rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(s.sample(rng), 100.0);
  }
}

TEST(ParetoSampler, MeanMatchesClosedForm) {
  // E[X] = alpha x_m / (alpha - 1) = 2.5 * 100 / 1.5
  ParetoSampler s(100.0, 2.5);
  Xoshiro256StarStar rng(12);
  double sum = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) sum += s.sample(rng);
  EXPECT_NEAR(sum / n, 2.5 * 100.0 / 1.5, 3.0);
}

TEST(ParetoSampler, HeavierTailThanLognormal) {
  // With matched means, Pareto's extreme quantile should dominate.
  ParetoSampler pareto(100.0, 1.2);
  LognormalSampler logn = LognormalSampler::from_mean_cv(600.0, 1.0);
  Xoshiro256StarStar r1(13), r2(14);
  double pmax = 0.0, lmax = 0.0;
  for (int i = 0; i < 100000; ++i) {
    pmax = std::max(pmax, pareto.sample(r1));
    lmax = std::max(lmax, logn.sample(r2));
  }
  EXPECT_GT(pmax, lmax);
}

TEST(BetaSampler, MomentsMatch) {
  BetaSampler s(2.0, 4.0);  // mean 1/3, var = ab/((a+b)^2(a+b+1)) = 8/252
  auto [mean, var] = sample_moments(s, 200000);
  EXPECT_NEAR(mean, 1.0 / 3.0, 0.005);
  EXPECT_NEAR(var, 8.0 / 252.0, 0.003);
}

TEST(BetaSampler, SupportIsUnitInterval) {
  BetaSampler s(0.5, 0.5);
  Xoshiro256StarStar rng(15);
  for (int i = 0; i < 10000; ++i) {
    const double x = s.sample(rng);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

// Reproducibility across the whole family: same seed, same stream.
class SamplerReproducibility : public ::testing::TestWithParam<int> {};

TEST_P(SamplerReproducibility, SameSeedSameSequence) {
  const std::uint64_t seed = 1000 + GetParam();
  auto draw = [&](std::uint64_t s) {
    Xoshiro256StarStar rng(s);
    PoissonSampler poisson(12.0);
    LognormalSampler logn(1.0, 0.5);
    std::vector<double> out;
    for (int i = 0; i < 50; ++i) {
      out.push_back(static_cast<double>(poisson.sample(rng)));
      out.push_back(logn.sample(rng));
    }
    return out;
  };
  EXPECT_EQ(draw(seed), draw(seed));
  EXPECT_NE(draw(seed), draw(seed + 1));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplerReproducibility,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace ara::synth
