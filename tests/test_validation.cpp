#include "synth/validation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "synth/yet_generator.hpp"

namespace ara::synth {
namespace {

TEST(YetValidation, NativeGeneratedYetIsHealthy) {
  const Catalogue cat = Catalogue::make(30000, 3, 200.0);
  YetGeneratorConfig cfg;
  cfg.trials = 2000;
  cfg.seed = 61;
  const ara::Yet yet = generate_yet(cat, cfg);
  const YetValidation v = validate_yet(cat, yet);
  EXPECT_TRUE(v.healthy());
  ASSERT_EQ(v.regions.size(), 3u);
  EXPECT_NEAR(v.total_observed_rate, v.total_expected_rate,
              0.05 * v.total_expected_rate);
}

TEST(YetValidation, RescaledYetNeedsRateScale) {
  const Catalogue cat = Catalogue::make(30000, 3, 200.0);
  YetGeneratorConfig cfg;
  cfg.trials = 2000;
  cfg.target_events_per_trial = 400.0;  // 2x the native rate
  cfg.seed = 62;
  const ara::Yet yet = generate_yet(cat, cfg);
  // Without the scale, the rate z-scores blow up.
  EXPECT_FALSE(validate_yet(cat, yet, 1.0).healthy());
  // With it, the table validates.
  EXPECT_TRUE(validate_yet(cat, yet, 2.0).healthy());
}

TEST(YetValidation, DetectsSeasonalityMismatch) {
  // Generate from a seasonal region, validate against a catalogue
  // claiming no seasonality: the in-season fraction check must fail.
  PerilRegion seasonal{"h", 1, 1000, 100.0, 0.9, 150, 250};
  const Catalogue truth(1000, {seasonal});
  YetGeneratorConfig cfg;
  cfg.trials = 1000;
  cfg.seed = 63;
  const ara::Yet yet = generate_yet(truth, cfg);

  PerilRegion flat = seasonal;
  flat.seasonality = 0.0;
  const Catalogue claimed(1000, {flat});
  const YetValidation v = validate_yet(claimed, yet);
  EXPECT_FALSE(v.healthy());
  EXPECT_GT(v.regions[0].observed_in_season,
            v.regions[0].expected_in_season + 0.2);
}

TEST(YetValidation, DetectsClustering) {
  const Catalogue cat = Catalogue::make(10000, 1, 50.0);
  YetGeneratorConfig poisson, clustered;
  poisson.trials = clustered.trials = 2000;
  poisson.seed = clustered.seed = 64;
  clustered.clustering_k = 2.0;
  const YetValidation vp = validate_yet(cat, generate_yet(cat, poisson));
  const YetValidation vc = validate_yet(cat, generate_yet(cat, clustered));
  EXPECT_NEAR(vp.regions[0].dispersion, 1.0, 0.15);  // Poisson: var=mean
  EXPECT_GT(vc.regions[0].dispersion, 5.0);          // strongly clustered
}

TEST(YetValidation, DetectsRateMismatch) {
  const Catalogue cat = Catalogue::make(10000, 2, 100.0);
  YetGeneratorConfig cfg;
  cfg.trials = 2000;
  cfg.seed = 65;
  const ara::Yet yet = generate_yet(cat, cfg);
  // Claim half the rate: z-scores explode.
  const YetValidation v = validate_yet(cat, yet, 0.5);
  EXPECT_FALSE(v.healthy());
  EXPECT_GT(std::abs(v.regions[0].rate_z_score), 10.0);
}

TEST(YetValidation, UniformIdsPassChiSquare) {
  const Catalogue cat = Catalogue::make(20000, 2, 300.0);
  YetGeneratorConfig cfg;
  cfg.trials = 1500;
  cfg.seed = 66;
  const YetValidation v = validate_yet(cat, generate_yet(cat, cfg));
  for (const RegionValidation& r : v.regions) {
    const double dof = static_cast<double>(r.id_buckets - 1);
    EXPECT_LT(r.id_chi2_stat, dof + 5.0 * std::sqrt(2.0 * dof))
        << r.region;
  }
}

TEST(YetValidation, ValidatesInputs) {
  const Catalogue cat = Catalogue::make(100, 1, 5.0);
  YetGeneratorConfig cfg;
  cfg.trials = 10;
  const ara::Yet yet = generate_yet(cat, cfg);
  const Catalogue other = Catalogue::make(200, 1, 5.0);
  EXPECT_THROW(validate_yet(other, yet), std::invalid_argument);
  EXPECT_THROW(validate_yet(cat, yet, 0.0), std::invalid_argument);
  const ara::Yet empty(std::vector<std::vector<ara::EventOccurrence>>{},
                       100);
  EXPECT_THROW(validate_yet(cat, empty), std::invalid_argument);
}

}  // namespace
}  // namespace ara::synth
