// The central correctness property of the paper's engineering study:
// every implementation — sequential literal, fused, multi-core, basic
// GPU, optimised GPU (double and float), multi-GPU — computes the same
// Year Loss Table.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/engine_factory.hpp"
#include "core/reference_engine.hpp"
#include "synth/scenarios.hpp"

namespace ara {
namespace {

struct EquivCase {
  EngineKind kind;
  bool use_float;
};

// Policy-built engine with the test's tunables: single-GPU kinds on a
// Tesla C2075, kMultiGpu on `gpu_count` of its default M2090s.
std::unique_ptr<Engine> engine_with(EngineKind kind, const EngineConfig& cfg,
                                    std::size_t gpu_count) {
  ExecutionPolicy policy = ExecutionPolicy::with_engine(kind);
  policy.config = cfg;
  policy.gpu_device = simgpu::tesla_c2075();
  policy.gpu_count = gpu_count;
  return make_engine(policy);
}

class EngineEquivalence
    : public ::testing::TestWithParam<std::tuple<EquivCase, int>> {};

std::string case_name(
    const ::testing::TestParamInfo<EngineEquivalence::ParamType>& info) {
  const auto& [c, scenario] = info.param;
  return engine_kind_name(c.kind) + (c.use_float ? "_f32" : "_f64") +
         "_s" + std::to_string(scenario);
}

synth::Scenario scenario_for(int id) {
  switch (id) {
    case 0:
      return synth::tiny(64, 11);
    case 1:
      return synth::multi_layer_book(6, 100, 22);
    default:
      return synth::paper_scaled(20000, 33);  // 50 trials, paper shape
  }
}

TEST_P(EngineEquivalence, MatchesReferenceYlt) {
  const auto& [c, scenario_id] = GetParam();
  const synth::Scenario s = scenario_for(scenario_id);

  ReferenceEngine reference;
  const SimulationResult expect = reference.run(s.portfolio, s.yet);

  EngineConfig cfg = paper_config(c.kind);
  cfg.use_float = c.use_float;
  cfg.cores = 4;           // keep host thread counts sane in CI
  cfg.threads_per_core = 2;
  const auto engine = engine_with(c.kind, cfg, 3);
  const SimulationResult got = engine->run(s.portfolio, s.yet);

  ASSERT_EQ(got.ylt.layer_count(), expect.ylt.layer_count());
  ASSERT_EQ(got.ylt.trial_count(), expect.ylt.trial_count());

  // Float engines accumulate in single precision; allow relative error.
  const double tol = c.use_float ? 2e-4 : 0.0;
  for (std::size_t l = 0; l < expect.ylt.layer_count(); ++l) {
    for (TrialId t = 0; t < expect.ylt.trial_count(); ++t) {
      const double e = expect.ylt.annual_loss(l, t);
      const double g = got.ylt.annual_loss(l, t);
      ASSERT_NEAR(g, e, tol * (1.0 + std::abs(e)))
          << "annual loss, layer " << l << " trial " << t;
      const double eo = expect.ylt.max_occurrence_loss(l, t);
      const double go = got.ylt.max_occurrence_loss(l, t);
      ASSERT_NEAR(go, eo, tol * (1.0 + std::abs(eo)))
          << "max occurrence, layer " << l << " trial " << t;
    }
  }
  // Identical algorithmic work regardless of implementation.
  EXPECT_EQ(got.ops.elt_lookups, expect.ops.elt_lookups);
  EXPECT_EQ(got.ops.financial_ops, expect.ops.financial_ops);
}

INSTANTIATE_TEST_SUITE_P(
    AllEnginesAllScenarios, EngineEquivalence,
    ::testing::Combine(
        ::testing::Values(EquivCase{EngineKind::kSequentialFused, false},
                          EquivCase{EngineKind::kMultiCore, false},
                          EquivCase{EngineKind::kGpuBasic, false},
                          EquivCase{EngineKind::kGpuOptimized, false},
                          EquivCase{EngineKind::kGpuOptimized, true},
                          EquivCase{EngineKind::kMultiGpu, false},
                          EquivCase{EngineKind::kMultiGpu, true}),
        ::testing::Values(0, 1, 2)),
    case_name);

// Double-precision engines should agree with the reference *bitwise*:
// same operand ordering everywhere.
class BitwiseEquivalence : public ::testing::TestWithParam<EngineKind> {};

TEST_P(BitwiseEquivalence, DoubleEnginesBitwiseEqual) {
  const synth::Scenario s = synth::tiny(128, 5);
  ReferenceEngine reference;
  const SimulationResult expect = reference.run(s.portfolio, s.yet);

  EngineConfig cfg = paper_config(GetParam());
  cfg.use_float = false;
  cfg.cores = 4;
  const auto engine = engine_with(GetParam(), cfg, 2);
  const SimulationResult got = engine->run(s.portfolio, s.yet);

  for (std::size_t l = 0; l < expect.ylt.layer_count(); ++l) {
    for (TrialId t = 0; t < expect.ylt.trial_count(); ++t) {
      ASSERT_EQ(got.ylt.annual_loss(l, t), expect.ylt.annual_loss(l, t))
          << "layer " << l << " trial " << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(DoubleEngines, BitwiseEquivalence,
                         ::testing::Values(EngineKind::kSequentialFused,
                                           EngineKind::kMultiCore,
                                           EngineKind::kGpuBasic,
                                           EngineKind::kGpuOptimized,
                                           EngineKind::kMultiGpu),
                         [](const auto& info) {
                           return engine_kind_name(info.param);
                         });

// The trial-major sweep must stay bitwise identical to the per-layer
// reference on a many-layer book with shared ELTs — the shape where
// the fused formulation actually reorders the memory walk.
TEST(TrialMajorFusion, BitwiseEqualOnManyLayerBook) {
  const synth::Scenario s = synth::multi_layer_book(12, 96, 19);
  ReferenceEngine reference;
  const SimulationResult expect = reference.run(s.portfolio, s.yet);

  for (const EngineKind kind :
       {EngineKind::kSequentialFused, EngineKind::kMultiCore,
        EngineKind::kGpuBasic, EngineKind::kGpuOptimized,
        EngineKind::kMultiGpu}) {
    EngineConfig cfg = paper_config(kind);
    cfg.use_float = false;
    cfg.cores = 4;
    const auto engine = engine_with(kind, cfg, 2);
    const SimulationResult got = engine->run(s.portfolio, s.yet);
    for (std::size_t l = 0; l < expect.ylt.layer_count(); ++l) {
      for (TrialId t = 0; t < expect.ylt.trial_count(); ++t) {
        ASSERT_EQ(got.ylt.annual_loss(l, t), expect.ylt.annual_loss(l, t))
            << engine_kind_name(kind) << " layer " << l << " trial " << t;
        ASSERT_EQ(got.ylt.max_occurrence_loss(l, t),
                  expect.ylt.max_occurrence_loss(l, t))
            << engine_kind_name(kind) << " layer " << l << " trial " << t;
      }
    }
  }
}

// Op accounting of the fusion: fused engines fetch each occurrence
// once for all layers; the literal reference re-fetches per layer.
// All per-(layer, event) work is unchanged.
TEST(TrialMajorFusion, FusedEnginesChargeSingleYetPass) {
  const synth::Scenario s = synth::multi_layer_book(5, 64, 23);
  const auto occurrences =
      static_cast<std::uint64_t>(s.yet.occurrence_count());
  ASSERT_GT(s.portfolio.layer_count(), 1u);

  ReferenceEngine reference;
  const SimulationResult ref = reference.run(s.portfolio, s.yet);
  EXPECT_EQ(ref.ops.event_fetches,
            occurrences * s.portfolio.layer_count());

  for (const EngineKind kind :
       {EngineKind::kSequentialFused, EngineKind::kMultiCore,
        EngineKind::kGpuBasic, EngineKind::kGpuOptimized,
        EngineKind::kMultiGpu}) {
    EngineConfig cfg = paper_config(kind);
    cfg.cores = 2;
    const auto engine = engine_with(kind, cfg, 2);
    const SimulationResult got = engine->run(s.portfolio, s.yet);
    EXPECT_EQ(got.ops.event_fetches, occurrences) << engine_kind_name(kind);
    EXPECT_EQ(got.ops.elt_lookups, ref.ops.elt_lookups)
        << engine_kind_name(kind);
    EXPECT_EQ(got.ops.financial_ops, ref.ops.financial_ops)
        << engine_kind_name(kind);
    EXPECT_EQ(got.ops.occurrence_ops, ref.ops.occurrence_ops)
        << engine_kind_name(kind);
  }
}

TEST(EngineFactory, AllKindsConstruct) {
  for (const EngineKind kind : all_engine_kinds()) {
    const auto engine = make_engine(ExecutionPolicy::with_engine(kind));
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->name(), engine_kind_name(kind));
  }
}

}  // namespace
}  // namespace ara
