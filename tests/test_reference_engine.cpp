#include "core/reference_engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "synth/scenarios.hpp"

namespace ara {
namespace {

// A fully hand-computable workload: 1 layer, 2 ELTs, 1 trial.
struct HandCase {
  Portfolio portfolio;
  Yet yet;
};

HandCase make_hand_case(LayerTerms lt, FinancialTerms ft1,
                        FinancialTerms ft2) {
  std::vector<Elt> elts;
  elts.emplace_back(std::vector<EventLoss>{{1, 100.0}, {2, 200.0}}, ft1, 5);
  elts.emplace_back(std::vector<EventLoss>{{2, 50.0}, {3, 300.0}}, ft2, 5);
  Layer layer{"L", {0, 1}, lt};
  Portfolio p(std::move(elts), {layer});
  // Trial: events 1, 2, 3, 4 in time order (4 has no loss anywhere).
  std::vector<std::vector<EventOccurrence>> trials = {
      {{1, 10}, {2, 20}, {3, 30}, {4, 40}}};
  Yet yet(trials, 5);
  return {std::move(p), std::move(yet)};
}

TEST(ReferenceEngine, IdentityTermsSumAllLosses) {
  HandCase c = make_hand_case(LayerTerms::identity(),
                              FinancialTerms::identity(),
                              FinancialTerms::identity());
  ReferenceEngine engine;
  const SimulationResult r = engine.run(c.portfolio, c.yet);
  // Event losses: e1: 100, e2: 200+50=250, e3: 300, e4: 0. Total 650.
  EXPECT_DOUBLE_EQ(r.ylt.annual_loss(0, 0), 650.0);
  EXPECT_DOUBLE_EQ(r.ylt.max_occurrence_loss(0, 0), 300.0);
}

TEST(ReferenceEngine, FinancialTermsAppliedPerElt) {
  FinancialTerms ft1;
  ft1.retention = 50.0;  // e1: 50, e2: 150
  FinancialTerms ft2;
  ft2.share = 0.5;  // e2: 25, e3: 150
  HandCase c = make_hand_case(LayerTerms::identity(), ft1, ft2);
  ReferenceEngine engine;
  const SimulationResult r = engine.run(c.portfolio, c.yet);
  // e1: 50; e2: 150 + 25 = 175; e3: 150. Total 375.
  EXPECT_DOUBLE_EQ(r.ylt.annual_loss(0, 0), 375.0);
  EXPECT_DOUBLE_EQ(r.ylt.max_occurrence_loss(0, 0), 175.0);
}

TEST(ReferenceEngine, OccurrenceTermsClampPerEvent) {
  LayerTerms lt;
  lt.occ_retention = 100.0;
  lt.occ_limit = 120.0;
  HandCase c = make_hand_case(lt, FinancialTerms::identity(),
                              FinancialTerms::identity());
  ReferenceEngine engine;
  const SimulationResult r = engine.run(c.portfolio, c.yet);
  // e1: clamp(100-100)=0; e2: clamp(250-100)=120 (capped);
  // e3: clamp(300-100)=120 (capped); e4: 0. Total 240.
  EXPECT_DOUBLE_EQ(r.ylt.annual_loss(0, 0), 240.0);
  EXPECT_DOUBLE_EQ(r.ylt.max_occurrence_loss(0, 0), 120.0);
}

TEST(ReferenceEngine, AggregateTermsApplyToRunningSum) {
  LayerTerms lt;
  lt.agg_retention = 200.0;
  lt.agg_limit = 250.0;
  HandCase c = make_hand_case(lt, FinancialTerms::identity(),
                              FinancialTerms::identity());
  ReferenceEngine engine;
  const SimulationResult r = engine.run(c.portfolio, c.yet);
  // Occurrence losses 100, 250, 300, 0; cumulative 100, 350, 650, 650.
  // After agg terms: 0, 150, 250 (capped), 250. Year loss = 250.
  EXPECT_DOUBLE_EQ(r.ylt.annual_loss(0, 0), 250.0);
}

TEST(ReferenceEngine, CombinedTermsHandComputed) {
  FinancialTerms ft;
  ft.retention = 20.0;
  LayerTerms lt;
  lt.occ_retention = 50.0;
  lt.occ_limit = 150.0;
  lt.agg_retention = 100.0;
  lt.agg_limit = 180.0;
  HandCase c = make_hand_case(lt, ft, ft);
  ReferenceEngine engine;
  const SimulationResult r = engine.run(c.portfolio, c.yet);
  // After financial (ret 20 per ELT record):
  //   e1: 80; e2: 180 + 30 = 210; e3: 280; e4: 0.
  // After occurrence (ret 50, lim 150): 30, 150, 150, 0.
  // Cumulative: 30, 180, 330, 330.
  // After aggregate (ret 100, lim 180): 0, 80, 180, 180. Year = 180.
  EXPECT_DOUBLE_EQ(r.ylt.annual_loss(0, 0), 180.0);
  EXPECT_DOUBLE_EQ(r.ylt.max_occurrence_loss(0, 0), 150.0);
}

TEST(ReferenceEngine, EmptyTrialGivesZeroLoss) {
  std::vector<Elt> elts;
  elts.emplace_back(std::vector<EventLoss>{{1, 10.0}},
                    FinancialTerms::identity(), 5);
  Portfolio p(std::move(elts), {Layer{"L", {0}, LayerTerms::identity()}});
  Yet yet(std::vector<std::vector<EventOccurrence>>{{}, {{1, 3}}}, 5);
  ReferenceEngine engine;
  const SimulationResult r = engine.run(p, yet);
  EXPECT_DOUBLE_EQ(r.ylt.annual_loss(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(r.ylt.annual_loss(0, 1), 10.0);
}

TEST(ReferenceEngine, RepeatedEventCountsEachOccurrence) {
  std::vector<Elt> elts;
  elts.emplace_back(std::vector<EventLoss>{{2, 40.0}},
                    FinancialTerms::identity(), 5);
  Portfolio p(std::move(elts), {Layer{"L", {0}, LayerTerms::identity()}});
  Yet yet(std::vector<std::vector<EventOccurrence>>{{{2, 1}, {2, 2}, {2, 3}}},
          5);
  ReferenceEngine engine;
  const SimulationResult r = engine.run(p, yet);
  EXPECT_DOUBLE_EQ(r.ylt.annual_loss(0, 0), 120.0);
}

TEST(ReferenceEngine, MultipleLayersProduceIndependentRows) {
  std::vector<Elt> elts;
  elts.emplace_back(std::vector<EventLoss>{{1, 100.0}},
                    FinancialTerms::identity(), 5);
  LayerTerms capped;
  capped.occ_limit = 30.0;
  Portfolio p(std::move(elts),
              {Layer{"full", {0}, LayerTerms::identity()},
               Layer{"capped", {0}, capped}});
  Yet yet(std::vector<std::vector<EventOccurrence>>{{{1, 1}}}, 5);
  ReferenceEngine engine;
  const SimulationResult r = engine.run(p, yet);
  EXPECT_DOUBLE_EQ(r.ylt.annual_loss(0, 0), 100.0);
  EXPECT_DOUBLE_EQ(r.ylt.annual_loss(1, 0), 30.0);
}

TEST(ReferenceEngine, OpCountsMatchWorkload) {
  const synth::Scenario s = synth::tiny(16);
  ReferenceEngine engine;
  const SimulationResult r = engine.run(s.portfolio, s.yet);
  const auto occurrences =
      static_cast<std::uint64_t>(s.yet.occurrence_count());
  std::uint64_t expect_lookups = 0;
  for (const Layer& l : s.portfolio.layers()) {
    expect_lookups += l.elt_indices.size() * occurrences;
  }
  EXPECT_EQ(r.ops.elt_lookups, expect_lookups);
  EXPECT_EQ(r.ops.event_fetches,
            occurrences * s.portfolio.layer_count());
  EXPECT_EQ(r.ops.financial_ops, expect_lookups);
}

TEST(ReferenceEngine, SimulatedTimeUsesPaperCalibration) {
  const synth::Scenario s = synth::tiny(8);
  ReferenceEngine engine;
  const SimulationResult r = engine.run(s.portfolio, s.yet);
  EXPECT_GT(r.simulated_seconds, 0.0);
  // Lookup must dominate at 14.84 ns x 15-elts-worth of accesses, as
  // in the paper's 65% profile; with tiny's 2-4 ELT layers the lookup
  // share is smaller but still the largest single phase.
  EXPECT_GT(r.simulated_phases[perf::Phase::kLossLookup],
            r.simulated_phases[perf::Phase::kEventFetch]);
}

TEST(ReferenceEngine, ProfiledRunFillsMeasuredPhases) {
  const synth::Scenario s = synth::tiny(32);
  EngineConfig cfg;
  cfg.profile_phases = true;
  ReferenceEngine engine(cfg);
  const SimulationResult r = engine.run(s.portfolio, s.yet);
  EXPECT_GT(r.measured_phases.total(), 0.0);
  EXPECT_GT(r.measured_phases[perf::Phase::kLossLookup], 0.0);
}

TEST(ReferenceEngine, MismatchedCatalogueThrows) {
  const synth::Scenario s = synth::tiny(4);
  Yet other(std::vector<std::vector<EventOccurrence>>{{{1, 1}}}, 999);
  ReferenceEngine engine;
  EXPECT_THROW(engine.run(s.portfolio, other), std::invalid_argument);
}

}  // namespace
}  // namespace ara
