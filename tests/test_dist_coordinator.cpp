// The distributed-run contract (DESIGN.md §9): a ShardCoordinator
// fronting real ara_worker processes must produce an analysis bitwise
// identical to the monolithic single-process run — for every engine
// kind — with every trial leased exactly once. Plus the wire layer
// underneath it (payload codecs, the block CRC trailer) and the shared
// backoff curve, and the idempotent-completion algebra driven by a
// test that hand-speaks the protocol: a byte-identical re-completion
// is discarded and counted, a conflicting one poisons the run loudly.
#include "dist/coordinator.hpp"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <exception>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/engine_factory.hpp"
#include "core/session.hpp"
#include "dist/protocol.hpp"
#include "dist/worker.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace ara::dist {
namespace {

using serve::MessageType;

serve::SynthSpec tiny_spec() {
  serve::SynthSpec spec;
  spec.trials = 240;
  spec.events_per_trial = 6.0;
  spec.catalogue = 400;
  spec.elts = 3;
  spec.layers = 2;
  spec.seed = 77;
  return spec;
}

JobSpec job_for(const serve::SynthSpec& spec, EngineKind kind) {
  const ExecutionPolicy policy = ExecutionPolicy::with_engine(kind);
  JobSpec job;
  job.workload = JobWorkload::kSynth;
  job.synth = spec;
  job.engine = engine_kind_name(kind);
  job.simd = static_cast<std::uint8_t>(policy.simd);
  job.simd_width = policy.simd_width;
  job.trial_count = spec.trials;
  job.layer_count = spec.layers;
  job.heartbeat_ms = 50;
  return job;
}

serve::Endpoint unique_endpoint(const std::string& tag) {
  return serve::Endpoint::parse("unix:/tmp/ara_test_dist_" +
                                std::to_string(::getpid()) + "_" + tag +
                                ".sock");
}

SimulationResult monolithic(const serve::SynthSpec& spec, EngineKind kind) {
  const serve::ServedWorkload w = serve::materialize_synth(spec);
  const auto engine = make_engine(ExecutionPolicy::with_engine(kind));
  return engine->run(w.portfolio, w.yet);
}

pid_t spawn_worker(const serve::Endpoint& endpoint, const std::string& id) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execl(ARA_WORKER_BIN, "ara_worker", "--connect",
            endpoint.describe().c_str(), "--id", id.c_str(), "--seed",
            id.c_str() + id.size() - 1, static_cast<char*>(nullptr));
    ::_exit(127);
  }
  return pid;
}

int reap(pid_t pid) {
  int status = 0;
  ::waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
}

AnalysisRequest metrics_request() {
  AnalysisRequest request;
  request.metrics = MetricsSpec::layer_summaries();
  return request;
}

// ---- wire layer ----------------------------------------------------

TEST(DistProtocol, PayloadCodecsRoundTrip) {
  Hello hello;
  hello.worker_id = "w-роба-1";  // identities are opaque bytes
  hello.pid = 424242;
  const Hello hello2 = decode_hello(encode_hello(hello));
  EXPECT_EQ(hello2.worker_id, hello.worker_id);
  EXPECT_EQ(hello2.pid, hello.pid);

  JobSpec job = job_for(tiny_spec(), EngineKind::kSequentialFused);
  job.workload = JobWorkload::kFiles;
  job.yet_path = "/data/yet.bin";
  job.portfolio_path = "/data/portfolio.bin";
  const JobSpec job2 = decode_job(encode_job(job));
  EXPECT_EQ(job2.workload, job.workload);
  EXPECT_EQ(job2.synth, job.synth);
  EXPECT_EQ(job2.yet_path, job.yet_path);
  EXPECT_EQ(job2.portfolio_path, job.portfolio_path);
  EXPECT_EQ(job2.engine, job.engine);
  EXPECT_EQ(job2.simd, job.simd);
  EXPECT_EQ(job2.simd_width, job.simd_width);
  EXPECT_EQ(job2.trial_count, job.trial_count);
  EXPECT_EQ(job2.layer_count, job.layer_count);
  EXPECT_EQ(job2.heartbeat_ms, job.heartbeat_ms);

  LeaseGrant grant;
  grant.kind = GrantKind::kRange;
  grant.lease_id = 9;
  grant.begin = 120;
  grant.end = 180;
  const LeaseGrant grant2 = decode_grant(encode_grant(grant));
  EXPECT_EQ(grant2.kind, grant.kind);
  EXPECT_EQ(grant2.lease_id, grant.lease_id);
  EXPECT_EQ(grant2.begin, grant.begin);
  EXPECT_EQ(grant2.end, grant.end);

  Heartbeat hb;
  hb.lease_id = 7;
  EXPECT_EQ(decode_heartbeat(encode_heartbeat(hb)).lease_id, 7u);
}

TEST(DistProtocol, BlockRoundTripsBitwise) {
  Block block;
  block.lease_id = 3;
  block.trial_begin = 60;
  block.ylt = Ylt(2, 3);
  for (std::size_t a = 0; a < 2; ++a) {
    for (TrialId t = 0; t < 3; ++t) {
      block.ylt.annual_loss(a, t) = 1.25 * static_cast<double>(a * 3 + t);
      block.ylt.max_occurrence_loss(a, t) = 0.5 + static_cast<double>(t);
    }
  }
  block.ops.event_fetches = 11;
  block.ops.elt_lookups = 4;
  block.wall_seconds = 0.125;
  block.simulated_seconds = 2.5;
  block.engine_name = "sequential_fused";
  block.devices = 1;
  block.simd_isa = "scalar";

  const Block b2 = decode_block(encode_block(block));
  EXPECT_EQ(b2.lease_id, block.lease_id);
  EXPECT_EQ(b2.trial_begin, block.trial_begin);
  EXPECT_EQ(b2.ylt.annual_raw(), block.ylt.annual_raw());
  EXPECT_EQ(b2.ylt.max_occurrence_raw(), block.ylt.max_occurrence_raw());
  EXPECT_EQ(b2.ops, block.ops);
  EXPECT_EQ(b2.wall_seconds, block.wall_seconds);
  EXPECT_EQ(b2.simulated_seconds, block.simulated_seconds);
  EXPECT_EQ(b2.engine_name, block.engine_name);
  EXPECT_EQ(b2.devices, block.devices);
  EXPECT_EQ(b2.simd_isa, block.simd_isa);
}

TEST(DistProtocol, BlockChecksumRejectsCorruption) {
  Block block;
  block.lease_id = 1;
  block.trial_begin = 0;
  block.ylt = Ylt(1, 4);
  block.ylt.annual_loss(0, 2) = 3.5;
  block.engine_name = "reference";
  std::string payload = encode_block(block);

  // Any flipped bit — data or the trailer itself — refuses to decode.
  for (const std::size_t offset :
       {std::size_t{0}, payload.size() / 2, payload.size() - 1}) {
    std::string corrupt = payload;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x04);
    EXPECT_THROW(decode_block(corrupt), std::runtime_error)
        << "flip at " << offset;
  }
  // Truncation is corruption too.
  EXPECT_THROW(decode_block(std::string_view(payload).substr(
                   0, payload.size() - 3)),
               std::runtime_error);
  EXPECT_THROW(decode_block(std::string_view(payload).substr(0, 2)),
               std::runtime_error);
  // The untouched payload still decodes.
  EXPECT_EQ(decode_block(payload).ylt.annual_raw(), block.ylt.annual_raw());
}

// ---- backoff curve --------------------------------------------------

TEST(DistBackoff, CappedExponentialWithBoundedJitter) {
  const std::uint64_t base = 50, cap = 2000;
  for (unsigned attempt = 0; attempt < 12; ++attempt) {
    std::uint64_t pure = base;
    for (unsigned i = 0; i < attempt && pure < cap; ++i) pure *= 2;
    pure = std::min(pure, cap);
    const std::uint64_t delay = backoff_delay_ms(base, cap, attempt, 9);
    EXPECT_GE(delay, pure) << "attempt " << attempt;
    EXPECT_LE(delay, pure + pure / 4) << "attempt " << attempt;
    // Deterministic: the same (args, seed) always sleeps the same.
    EXPECT_EQ(delay, backoff_delay_ms(base, cap, attempt, 9));
  }
}

TEST(DistBackoff, SeedsDecorrelateWorkers) {
  // Two workers with different seeds must not march in lockstep: over
  // a handful of attempts at least one delay differs.
  bool differs = false;
  for (unsigned attempt = 0; attempt < 8 && !differs; ++attempt) {
    differs = backoff_delay_ms(50, 2000, attempt, 1) !=
              backoff_delay_ms(50, 2000, attempt, 2);
  }
  EXPECT_TRUE(differs);
  EXPECT_EQ(backoff_delay_ms(0, 0, 5, 3), 0u);  // zero base: no sleep
}

// ---- real workers, every engine kind --------------------------------

TEST(DistCoordinator, DistributedMatchesMonolithicForEveryEngineKind) {
  const serve::SynthSpec spec = tiny_spec();
  for (const EngineKind kind : all_engine_kinds()) {
    const std::string name = engine_kind_name(kind);
    DistConfig config;
    config.endpoint = unique_endpoint("ok_" + name);
    config.job = job_for(spec, kind);
    config.lease_trials = 48;  // 5 leases across 2 workers
    config.lease_timeout_ms = 4000;
    config.expected_workers = 2;
    ShardCoordinator coordinator(config);

    const pid_t w1 = spawn_worker(coordinator.endpoint(), name + "_1");
    const pid_t w2 = spawn_worker(coordinator.endpoint(), name + "_2");
    const DistResult result = coordinator.run(metrics_request());
    EXPECT_EQ(reap(w1), 0) << name;
    EXPECT_EQ(reap(w2), 0) << name;

    const SimulationResult mono = monolithic(spec, kind);
    EXPECT_EQ(result.analysis.simulation.ylt.annual_raw(),
              mono.ylt.annual_raw())
        << name;
    EXPECT_EQ(result.analysis.simulation.ylt.max_occurrence_raw(),
              mono.ylt.max_occurrence_raw())
        << name;
    // The cost-only replay reconstitutes the monolithic accounting.
    EXPECT_EQ(result.analysis.simulation.ops, mono.ops) << name;
    EXPECT_EQ(result.analysis.simulation.simulated_seconds,
              mono.simulated_seconds)
        << name;
    EXPECT_EQ(result.analysis.simulation.engine_name, mono.engine_name)
        << name;

    // Every trial covered exactly once, nothing recovered because
    // nothing failed.
    EXPECT_GE(result.counters.workers_joined, 1u) << name;
    EXPECT_EQ(result.counters.blocks_accepted +
                  result.counters.local_shards,
              5u)
        << name;
    EXPECT_EQ(result.counters.corrupt_blocks, 0u) << name;
    EXPECT_EQ(result.counters.torn_frames, 0u) << name;
    EXPECT_EQ(result.counters.duplicate_blocks, 0u) << name;
  }
}

// ---- hand-spoken protocol: idempotent completion ---------------------

/// A test-side client that speaks the lease dialect frame by frame.
struct HandClient {
  explicit HandClient(const serve::Endpoint& endpoint) : client(endpoint) {}
  serve::ServeClient client;

  void send(MessageType type, std::string_view payload) {
    serve::write_frame(client.fd(), type, payload);
  }
  std::string expect(MessageType type) {
    const auto frame = serve::read_frame(client.fd());
    if (!frame || frame->type != type) {
      throw std::runtime_error("unexpected frame");
    }
    return frame->payload;
  }
};

/// The local half a real worker would run: materialize the job, run
/// the granted range, wrap it as a Block.
struct LocalRunner {
  explicit LocalRunner(const JobSpec& job) {
    serve::ServedWorkload w = serve::materialize_synth(job.synth);
    portfolio = std::move(w.portfolio);
    yet = std::move(w.yet);
    engine = make_engine(ExecutionPolicy::with_engine(
        *engine_kind_from_name(job.engine)));
  }

  Block block_for(const LeaseGrant& grant) const {
    EngineContext ctx;
    ctx.trials = TrialRange{static_cast<std::size_t>(grant.begin),
                            static_cast<std::size_t>(grant.end)};
    SimulationResult partial = engine->run(portfolio, yet, ctx);
    Block block;
    block.lease_id = grant.lease_id;
    block.trial_begin = grant.begin;
    block.ylt = std::move(partial.ylt);
    block.ops = partial.ops;
    block.wall_seconds = partial.wall_seconds;
    block.simulated_seconds = partial.simulated_seconds;
    block.engine_name = partial.engine_name;
    block.devices = partial.devices;
    block.simd_isa = partial.simd_isa;
    return block;
  }

  Portfolio portfolio;
  Yet yet;
  std::unique_ptr<Engine> engine;
};

TEST(DistCoordinator, ByteIdenticalRecompletionIsDiscardedAndCounted) {
  const serve::SynthSpec spec = tiny_spec();
  DistConfig config;
  config.endpoint = unique_endpoint("dup");
  config.job = job_for(spec, EngineKind::kSequentialFused);
  config.lease_trials = 120;  // two leases
  config.lease_timeout_ms = 5000;
  config.expected_workers = 1;
  ShardCoordinator coordinator(config);

  DistResult result;
  std::exception_ptr error;
  std::thread runner([&] {
    try {
      result = coordinator.run(metrics_request());
    } catch (...) {
      error = std::current_exception();
    }
  });

  {
    HandClient hc(coordinator.endpoint());
    Hello hello;
    hello.worker_id = "hand";
    hello.pid = static_cast<std::uint64_t>(::getpid());
    hc.send(MessageType::kDistHello, encode_hello(hello));
    const LocalRunner local(decode_job(hc.expect(MessageType::kDistJob)));
    for (;;) {
      hc.send(MessageType::kDistLeaseRequest, "");
      const LeaseGrant grant =
          decode_grant(hc.expect(MessageType::kDistLeaseGrant));
      if (grant.kind == GrantKind::kDone) break;
      if (grant.kind == GrantKind::kWait) {
        std::this_thread::sleep_for(std::chrono::milliseconds(grant.wait_ms));
        continue;
      }
      const std::string payload = encode_block(local.block_for(grant));
      hc.send(MessageType::kDistBlock, payload);
      hc.send(MessageType::kDistBlock, payload);  // exact byte-for-byte redo
    }
  }  // disconnect so the coordinator's drain completes

  runner.join();
  ASSERT_FALSE(error);
  EXPECT_EQ(result.counters.blocks_accepted, 2u);
  EXPECT_EQ(result.counters.duplicate_blocks, 2u);
  EXPECT_EQ(result.counters.corrupt_blocks, 0u);

  const SimulationResult mono =
      monolithic(spec, EngineKind::kSequentialFused);
  EXPECT_EQ(result.analysis.simulation.ylt.annual_raw(),
            mono.ylt.annual_raw());
  EXPECT_EQ(result.analysis.simulation.ylt.max_occurrence_raw(),
            mono.ylt.max_occurrence_raw());
}

TEST(DistCoordinator, ConflictingRecompletionPoisonsTheRunLoudly) {
  const serve::SynthSpec spec = tiny_spec();
  DistConfig config;
  config.endpoint = unique_endpoint("conflict");
  config.job = job_for(spec, EngineKind::kSequentialFused);
  config.lease_trials = 120;
  config.lease_timeout_ms = 5000;
  config.expected_workers = 1;
  ShardCoordinator coordinator(config);

  std::exception_ptr error;
  std::thread runner([&] {
    try {
      (void)coordinator.run(metrics_request());
    } catch (...) {
      error = std::current_exception();
    }
  });

  try {
    HandClient hc(coordinator.endpoint());
    Hello hello;
    hello.worker_id = "liar";
    hello.pid = 1;
    hc.send(MessageType::kDistHello, encode_hello(hello));
    const LocalRunner local(decode_job(hc.expect(MessageType::kDistJob)));
    hc.send(MessageType::kDistLeaseRequest, "");
    const LeaseGrant grant =
        decode_grant(hc.expect(MessageType::kDistLeaseGrant));
    ASSERT_EQ(grant.kind, GrantKind::kRange);

    Block block = local.block_for(grant);
    hc.send(MessageType::kDistBlock, encode_block(block));
    // Same range again, different bits, valid checksum: the two
    // executions disagree and nothing downstream can arbitrate that.
    block.ylt.annual_loss(0, 0) += 1.0;
    hc.send(MessageType::kDistBlock, encode_block(block));
    // Keep the connection open until the coordinator tears it down.
    (void)serve::read_frame(hc.client.fd());
  } catch (const std::exception&) {
    // The coordinator slams the door on a poisoned run; any transport
    // error here is expected collateral.
  }

  runner.join();
  ASSERT_TRUE(error);
  try {
    std::rethrow_exception(error);
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("conflicting completions"), std::string::npos)
        << what;
    EXPECT_NE(what.find("[0, 120)"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace ara::dist
