#include "perf/phase.hpp"

#include <gtest/gtest.h>

namespace ara::perf {
namespace {

TEST(PhaseBreakdown, StartsAtZero) {
  const PhaseBreakdown ph;
  EXPECT_DOUBLE_EQ(ph.total(), 0.0);
  EXPECT_DOUBLE_EQ(ph[Phase::kLossLookup], 0.0);
  EXPECT_DOUBLE_EQ(ph.fraction(Phase::kLossLookup), 0.0);  // no div by 0
}

TEST(PhaseBreakdown, TotalSumsAllPhases) {
  PhaseBreakdown ph;
  ph[Phase::kEventFetch] = 1.0;
  ph[Phase::kLossLookup] = 2.0;
  ph[Phase::kTransfer] = 0.5;
  EXPECT_DOUBLE_EQ(ph.total(), 3.5);
}

TEST(PhaseBreakdown, FractionComputed) {
  PhaseBreakdown ph;
  ph[Phase::kLossLookup] = 3.0;
  ph[Phase::kFinancialTerms] = 1.0;
  EXPECT_DOUBLE_EQ(ph.fraction(Phase::kLossLookup), 0.75);
}

TEST(PhaseBreakdown, NumericGroupsTermPhases) {
  PhaseBreakdown ph;
  ph[Phase::kFinancialTerms] = 1.0;
  ph[Phase::kOccurrenceTerms] = 2.0;
  ph[Phase::kAggregateTerms] = 4.0;
  ph[Phase::kLossLookup] = 100.0;  // excluded
  EXPECT_DOUBLE_EQ(ph.numeric(), 7.0);
}

TEST(PhaseBreakdown, PlusEqualsAccumulates) {
  PhaseBreakdown a, b;
  a[Phase::kEventFetch] = 1.0;
  b[Phase::kEventFetch] = 2.0;
  b[Phase::kOther] = 3.0;
  a += b;
  EXPECT_DOUBLE_EQ(a[Phase::kEventFetch], 3.0);
  EXPECT_DOUBLE_EQ(a[Phase::kOther], 3.0);
}

TEST(PhaseBreakdown, ScaledMultipliesEveryPhase) {
  PhaseBreakdown ph;
  ph[Phase::kEventFetch] = 2.0;
  ph[Phase::kTransfer] = 4.0;
  const PhaseBreakdown half = ph.scaled(0.5);
  EXPECT_DOUBLE_EQ(half[Phase::kEventFetch], 1.0);
  EXPECT_DOUBLE_EQ(half[Phase::kTransfer], 2.0);
  EXPECT_DOUBLE_EQ(ph[Phase::kEventFetch], 2.0);  // original untouched
}

TEST(PhaseNames, AllDistinctAndNonEmpty) {
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const auto name = phase_name(static_cast<Phase>(i));
    EXPECT_FALSE(name.empty());
    for (std::size_t j = i + 1; j < kPhaseCount; ++j) {
      EXPECT_NE(name, phase_name(static_cast<Phase>(j)));
    }
  }
}

}  // namespace
}  // namespace ara::perf
