#include "core/metrics/risk_measures.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "synth/rng.hpp"

namespace ara::metrics {
namespace {

std::vector<double> ladder(std::size_t n) {
  // losses 1, 2, ..., n
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<double>(i + 1);
  return v;
}

TEST(EpCurve, ExceedanceProbability) {
  const EpCurve curve(ladder(100));
  EXPECT_DOUBLE_EQ(curve.exceedance_probability(1000.0), 0.0);
  EXPECT_DOUBLE_EQ(curve.exceedance_probability(100.0), 0.01);
  EXPECT_DOUBLE_EQ(curve.exceedance_probability(91.0), 0.10);
  EXPECT_DOUBLE_EQ(curve.exceedance_probability(1.0), 1.0);
  EXPECT_DOUBLE_EQ(curve.exceedance_probability(0.0), 1.0);
}

TEST(EpCurve, LossAtReturnPeriod) {
  const EpCurve curve(ladder(100));
  // 100-year RP over 100 trials: the single largest loss.
  EXPECT_DOUBLE_EQ(curve.loss_at_return_period(100.0), 100.0);
  // 10-year RP: the 10th largest = 91.
  EXPECT_DOUBLE_EQ(curve.loss_at_return_period(10.0), 91.0);
  // 1-year RP: every year exceeds -> smallest loss.
  EXPECT_DOUBLE_EQ(curve.loss_at_return_period(1.0), 1.0);
  // Beyond the sample horizon: clamps to the maximum observed.
  EXPECT_DOUBLE_EQ(curve.loss_at_return_period(100000.0), 100.0);
}

TEST(EpCurve, ValidatesInput) {
  EXPECT_THROW(EpCurve(std::vector<double>{}), std::invalid_argument);
  const EpCurve curve(ladder(10));
  EXPECT_THROW(curve.loss_at_return_period(0.5), std::invalid_argument);
}

TEST(EpCurve, MonotoneInReturnPeriod) {
  synth::Xoshiro256StarStar rng(4);
  std::vector<double> losses;
  for (int i = 0; i < 5000; ++i) {
    losses.push_back(rng.next_double() * 1e6);
  }
  const EpCurve curve(losses);
  double prev = -1.0;
  for (double rp : {1.0, 2.0, 5.0, 10.0, 50.0, 100.0, 500.0, 2500.0}) {
    const double loss = curve.loss_at_return_period(rp);
    EXPECT_GE(loss, prev);
    prev = loss;
  }
}

TEST(RiskMeasures, VarIsQuantile) {
  EXPECT_NEAR(value_at_risk(ladder(100), 0.99), 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(value_at_risk(ladder(100), 0.5), 50.5);
}

TEST(RiskMeasures, TvarAtLeastVar) {
  synth::Xoshiro256StarStar rng(8);
  std::vector<double> losses;
  for (int i = 0; i < 2000; ++i) {
    const double u = rng.next_double();
    losses.push_back(u * u * 1e6);  // skewed
  }
  for (double p : {0.5, 0.9, 0.95, 0.99}) {
    EXPECT_GE(tail_value_at_risk(losses, p), value_at_risk(losses, p));
  }
}

TEST(RiskMeasures, TvarOfUniformLadder) {
  // Tail beyond VaR_0.9 = 90.1: losses 91..100 average 95.5.
  EXPECT_NEAR(tail_value_at_risk(ladder(100), 0.9), 95.5, 0.01);
}

TEST(RiskMeasures, PmlMatchesVarConvention) {
  const auto losses = ladder(1000);
  EXPECT_DOUBLE_EQ(probable_maximum_loss(losses, 100.0),
                   value_at_risk(losses, 0.99));
  EXPECT_THROW(probable_maximum_loss(losses, 1.0), std::invalid_argument);
}

TEST(RiskMeasures, AalIsMean) {
  EXPECT_DOUBLE_EQ(average_annual_loss(ladder(100)), 50.5);
}

TEST(RiskMeasures, SummaryConsistency) {
  Ylt ylt(1, 200);
  synth::Xoshiro256StarStar rng(15);
  for (TrialId t = 0; t < 200; ++t) {
    const double annual = rng.next_double() * 1e6;
    ylt.annual_loss(0, t) = annual;
    ylt.max_occurrence_loss(0, t) = annual * 0.6;
  }
  const LayerRiskSummary s = summarize_layer(ylt, 0);
  EXPECT_GT(s.aal, 0.0);
  EXPECT_GE(s.tvar_99, s.var_99);
  EXPECT_GE(s.pml_250yr, s.pml_100yr);
  EXPECT_GE(s.max_annual, s.pml_250yr);
  EXPECT_GT(s.oep_100yr, 0.0);
  EXPECT_LE(s.oep_100yr, s.max_annual);
}

TEST(RiskMeasures, DegenerateAllZeroLosses) {
  Ylt ylt(1, 50);  // all zeros
  const LayerRiskSummary s = summarize_layer(ylt, 0);
  EXPECT_DOUBLE_EQ(s.aal, 0.0);
  EXPECT_DOUBLE_EQ(s.var_99, 0.0);
  EXPECT_DOUBLE_EQ(s.tvar_99, 0.0);
  EXPECT_DOUBLE_EQ(s.pml_100yr, 0.0);
}

}  // namespace
}  // namespace ara::metrics
