// End-to-end integration: generate a workload, run every engine,
// derive risk metrics, serialise and reload — the full pipeline a
// downstream user would run.
#include <gtest/gtest.h>

#include <sstream>

#include "core/cpu_engines.hpp"
#include "core/engine_factory.hpp"
#include "core/gpu_engines.hpp"
#include "core/metrics/stats.hpp"
#include "core/reference_engine.hpp"
#include "core/metrics/risk_measures.hpp"
#include "extensions/secondary_uncertainty.hpp"
#include "io/binary.hpp"
#include "io/csv.hpp"
#include "synth/scenarios.hpp"

namespace ara {
namespace {

TEST(Integration, FullPipelinePaperShapedWorkload) {
  // Paper-shaped workload at 1/250 scale: 4000 trials x 1000 events
  // (enough to fill four simulated GPUs without tail effects),
  // 15 ELTs, one layer.
  const synth::Scenario s = synth::paper_scaled(250, 4242);
  ASSERT_EQ(s.portfolio.layer_count(), 1u);
  ASSERT_NEAR(s.yet.mean_events_per_trial(), 1000.0, 60.0);

  // Run all engines; collect YLTs.
  std::vector<SimulationResult> results;
  for (const EngineKind kind : all_engine_kinds()) {
    const auto engine = make_engine(ExecutionPolicy::with_engine(kind));
    results.push_back(engine->run(s.portfolio, s.yet));
  }

  // All agree with the first (reference) within float tolerance.
  const Ylt& ref = results.front().ylt;
  for (std::size_t i = 1; i < results.size(); ++i) {
    for (TrialId t = 0; t < ref.trial_count(); ++t) {
      ASSERT_NEAR(results[i].ylt.annual_loss(0, t), ref.annual_loss(0, t),
                  2e-4 * (1.0 + ref.annual_loss(0, t)))
          << results[i].engine_name << " trial " << t;
    }
  }

  // The simulated-time ordering of the paper holds end-to-end:
  // sequential > multicore > basic GPU > optimised GPU > 4 GPUs.
  const double t_seq = results[0].simulated_seconds;
  const double t_mc = results[2].simulated_seconds;
  const double t_basic = results[3].simulated_seconds;
  const double t_opt = results[4].simulated_seconds;
  const double t_multi = results[5].simulated_seconds;
  EXPECT_GT(t_seq, t_mc);
  EXPECT_GT(t_mc, t_basic);
  EXPECT_GT(t_basic, t_opt);
  EXPECT_GT(t_opt, t_multi);
  // Headline speed-up ~77x (paper: 337.47 / 4.35).
  EXPECT_NEAR(t_seq / t_multi, 77.0, 12.0);

  // Risk metrics behave.
  const metrics::LayerRiskSummary summary = metrics::summarize_layer(ref, 0);
  EXPECT_GT(summary.aal, 0.0);
  EXPECT_GE(summary.tvar_99, summary.var_99);

  // Serialise outputs and reload.
  std::stringstream buf;
  io::write_ylt(buf, ref);
  const Ylt reloaded = io::read_ylt(buf);
  EXPECT_EQ(reloaded.annual_raw(), ref.annual_raw());

  std::ostringstream csv;
  io::write_ylt_csv(csv, reloaded);
  EXPECT_GT(csv.str().size(), 100u);
}

TEST(Integration, MultiLayerBookAcrossEngines) {
  const synth::Scenario s = synth::multi_layer_book(10, 150, 7);
  ReferenceEngine ref_engine;
  const Ylt ref = ref_engine.run(s.portfolio, s.yet).ylt;

  EngineConfig cfg = paper_config(EngineKind::kMultiGpu);
  MultiGpuEngine multi(simgpu::tesla_m2090(), 4, cfg);
  const Ylt got = multi.run(s.portfolio, s.yet).ylt;
  for (std::size_t l = 0; l < ref.layer_count(); ++l) {
    for (TrialId t = 0; t < ref.trial_count(); ++t) {
      ASSERT_NEAR(got.annual_loss(l, t), ref.annual_loss(l, t),
                  2e-4 * (1.0 + ref.annual_loss(l, t)));
    }
  }
}

TEST(Integration, SecondaryUncertaintyPipelineProducesWiderTail) {
  // The future-work extension: secondary uncertainty should widen the
  // loss distribution (TVaR up) while keeping AAL roughly stable, on
  // a book with loose limits.
  synth::Scenario s = synth::tiny(512, 99);
  std::vector<Elt> elts;
  for (const Elt& e : s.portfolio.elts()) {
    elts.emplace_back(e.records(), FinancialTerms::identity(),
                      e.catalogue_size());
  }
  std::vector<Layer> layers;
  for (const Layer& l : s.portfolio.layers()) {
    layers.push_back({l.name, l.elt_indices, LayerTerms::identity()});
  }
  const Portfolio open(std::move(elts), std::move(layers));

  FusedSequentialEngine det_engine;
  ext::SecondaryUncertaintyConfig su_cfg;
  su_cfg.alpha = 0.8;  // strongly dispersed damage ratios
  su_cfg.beta = 1.6;
  ext::SecondaryUncertaintyEngine su_engine(su_cfg);

  const Ylt det = det_engine.run(open, s.yet).ylt;
  const Ylt sto = su_engine.run(open, s.yet).ylt;

  const auto det_losses = det.layer_annual_vector(0);
  const auto sto_losses = sto.layer_annual_vector(0);
  const double det_aal = metrics::average_annual_loss(det_losses);
  const double sto_aal = metrics::average_annual_loss(sto_losses);
  EXPECT_NEAR(sto_aal / det_aal, 1.0, 0.15);
  EXPECT_GT(metrics::stddev(sto_losses), metrics::stddev(det_losses) * 0.9);
}

TEST(Integration, EngineRunsAreRepeatable) {
  const synth::Scenario s = synth::paper_scaled(50000, 1);
  for (const EngineKind kind :
       {EngineKind::kSequentialFused, EngineKind::kMultiGpu}) {
    const auto engine = make_engine(ExecutionPolicy::with_engine(kind));
    const auto a = engine->run(s.portfolio, s.yet);
    const auto b = engine->run(s.portfolio, s.yet);
    EXPECT_EQ(a.ylt.annual_raw(), b.ylt.annual_raw()) << a.engine_name;
  }
}

}  // namespace
}  // namespace ara
