// Concurrency contract of the batched session APIs: N caller threads
// issue overlapping batches against ONE session (shared table cache,
// shared dispatch/shard/compute pools) and every request resolves to
// exactly the result it would have produced alone — including when
// some requests fail, whose exceptions must surface only through their
// own future (no cross-request or cross-batch exception wiring, the
// failure mode of a pool-wide error barrier). Run under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/session.hpp"
#include "synth/scenarios.hpp"

namespace ara {
namespace {

AnalysisRequest request_for(const synth::Scenario& s,
                            const std::string& label) {
  AnalysisRequest request;
  request.label = label;
  request.portfolio = &s.portfolio;
  request.yet = &s.yet;
  request.metrics = MetricsSpec::layer_summaries();
  return request;
}

TEST(SessionAsync, FuturesResolveInRequestOrderWithResults) {
  const synth::Scenario s = synth::tiny(32, 3);
  AnalysisSession session(
      ExecutionPolicy::with_engine(EngineKind::kSequentialFused));

  const AnalysisResult reference = session.run(request_for(s, "ref"));

  std::vector<AnalysisRequest> requests;
  for (int i = 0; i < 6; ++i) {
    requests.push_back(request_for(s, "r" + std::to_string(i)));
  }
  std::vector<std::future<AnalysisResult>> futures =
      session.run_batch_async(requests);
  ASSERT_EQ(futures.size(), requests.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const AnalysisResult result = futures[i].get();
    EXPECT_EQ(result.label, "r" + std::to_string(i));
    EXPECT_EQ(result.simulation.ylt.annual_raw(),
              reference.simulation.ylt.annual_raw());
  }
}

TEST(SessionAsync, OverlappingBatchesFromManyThreads) {
  const synth::Scenario shared = synth::tiny(40, 5);
  const synth::Scenario other = synth::tiny(24, 6);
  AnalysisSession session(
      ExecutionPolicy::with_engine(EngineKind::kMultiCore), 4);

  const AnalysisResult ref_shared = session.run(request_for(shared, "a"));
  const AnalysisResult ref_other = session.run(request_for(other, "b"));

  constexpr int kThreads = 6;
  constexpr int kPerBatch = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> callers;
  callers.reserve(kThreads);
  for (int c = 0; c < kThreads; ++c) {
    callers.emplace_back([&, c] {
      // Alternate workloads so the shared table cache serves two
      // portfolios concurrently; half the threads shard their runs so
      // the shard pool is contended too.
      const synth::Scenario& s = c % 2 == 0 ? shared : other;
      const AnalysisResult& ref = c % 2 == 0 ? ref_shared : ref_other;
      std::vector<AnalysisRequest> requests;
      for (int i = 0; i < kPerBatch; ++i) {
        AnalysisRequest r = request_for(s, std::to_string(c));
        if (c % 3 == 0) {
          ExecutionPolicy policy =
              ExecutionPolicy::with_engine(EngineKind::kMultiCore);
          policy.shard_trials = 9;
          r.policy = policy;
        }
        requests.push_back(std::move(r));
      }
      try {
        const std::vector<AnalysisResult> results =
            session.run_batch(requests);
        for (const AnalysisResult& result : results) {
          if (result.simulation.ylt.annual_raw() !=
              ref.simulation.ylt.annual_raw()) {
            ++failures;
          }
        }
      } catch (...) {
        ++failures;
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(SessionAsync, ExceptionsStayWithTheirOwnFuture) {
  const synth::Scenario s = synth::tiny(16, 7);
  AnalysisSession session(
      ExecutionPolicy::with_engine(EngineKind::kSequentialFused));

  std::vector<AnalysisRequest> requests;
  requests.push_back(request_for(s, "good0"));
  requests.push_back(AnalysisRequest{});  // no portfolio/yet: throws
  requests.push_back(request_for(s, "good1"));

  std::vector<std::future<AnalysisResult>> futures =
      session.run_batch_async(requests);
  EXPECT_NO_THROW(futures[0].get());
  EXPECT_THROW(futures[1].get(), std::invalid_argument);
  EXPECT_NO_THROW(futures[2].get());
}

TEST(SessionAsync, FailingBatchDoesNotPoisonConcurrentBatch) {
  const synth::Scenario s = synth::tiny(24, 9);
  AnalysisSession session(
      ExecutionPolicy::with_engine(EngineKind::kSequentialFused), 2);

  std::atomic<bool> good_batch_ok{false};
  std::atomic<bool> bad_batch_threw{false};

  std::thread bad([&] {
    std::vector<AnalysisRequest> requests(4);  // all invalid
    try {
      session.run_batch(requests);
    } catch (const std::invalid_argument&) {
      bad_batch_threw = true;
    }
  });
  std::thread good([&] {
    std::vector<AnalysisRequest> requests;
    for (int i = 0; i < 4; ++i) requests.push_back(request_for(s, "ok"));
    try {
      const auto results = session.run_batch(requests);
      good_batch_ok = results.size() == 4;
    } catch (...) {
      good_batch_ok = false;
    }
  });
  bad.join();
  good.join();
  EXPECT_TRUE(bad_batch_threw.load());
  EXPECT_TRUE(good_batch_ok.load());
}

// pending_requests() is the backlog gauge admission control reads: it
// must be non-zero while a batch is queued/executing and return to
// zero once every future resolved. With one dispatch worker and a
// batch wider than the pool, the backlog is guaranteed to be visible
// right after run_batch_async returns (the pool can't have drained 8
// requests synchronously).
TEST(SessionAsync, PendingRequestsTracksAsyncBacklog) {
  const synth::Scenario s = synth::tiny(48, 13);
  AnalysisSession session(
      ExecutionPolicy::with_engine(EngineKind::kSequentialFused), 1);
  EXPECT_EQ(session.pending_requests(), 0u);

  std::vector<AnalysisRequest> requests;
  for (int i = 0; i < 8; ++i) {
    requests.push_back(request_for(s, "p" + std::to_string(i)));
  }
  std::vector<std::future<AnalysisResult>> futures =
      session.run_batch_async(requests);
  EXPECT_GT(session.pending_requests(), 0u);

  // Sample the gauge concurrently with the drain: it must only ever
  // move within [0, batch size] — never a garbage value — while the
  // dispatch pool works the batch down.
  std::atomic<bool> stop{false};
  std::atomic<int> out_of_range{0};
  std::thread sampler([&] {
    while (!stop.load()) {
      const std::size_t pending = session.pending_requests();
      if (pending > requests.size()) ++out_of_range;
      std::this_thread::yield();
    }
  });
  for (std::future<AnalysisResult>& f : futures) {
    EXPECT_NO_THROW(f.get());
  }
  stop = true;
  sampler.join();
  EXPECT_EQ(out_of_range.load(), 0);

  // All futures resolved; the dispatch worker may still be inside its
  // post-resolve bookkeeping for an instant, so allow a bounded settle.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (session.pending_requests() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(session.pending_requests(), 0u);
}

// A request whose deadline already passed is shed before dispatch: its
// future fails with DeadlineExceeded (not a generic error), no tables
// are built for it, and live requests in the same batch are untouched.
TEST(SessionAsync, ExpiredDeadlineShedsBeforeEngineWork) {
  const synth::Scenario s = synth::tiny(32, 17);
  AnalysisSession session(
      ExecutionPolicy::with_engine(EngineKind::kSequentialFused));

  AnalysisRequest expired = request_for(s, "expired");
  expired.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  std::vector<AnalysisRequest> requests;
  requests.push_back(std::move(expired));

  std::vector<std::future<AnalysisResult>> futures =
      session.run_batch_async(requests);
  EXPECT_THROW(futures[0].get(), DeadlineExceeded);
  // The shed happened before any engine work: no table cache entry was
  // built for the portfolio.
  EXPECT_EQ(session.cached_table_portfolios(), 0u);

  // Mixed batch: the expired request fails alone, the live one runs.
  AnalysisRequest doomed = request_for(s, "doomed");
  doomed.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  std::vector<AnalysisRequest> mixed;
  mixed.push_back(std::move(doomed));
  mixed.push_back(request_for(s, "live"));
  std::vector<std::future<AnalysisResult>> mixed_futures =
      session.run_batch_async(mixed);
  EXPECT_THROW(mixed_futures[0].get(), DeadlineExceeded);
  const AnalysisResult live = mixed_futures[1].get();
  EXPECT_EQ(live.label, "live");
  EXPECT_EQ(session.cached_table_portfolios(), 1u);

  // DeadlineExceeded is a distinct type, so callers can map it to an
  // explicit shed answer; it still is-a runtime_error for generic
  // handlers.
  AnalysisRequest direct = request_for(s, "direct");
  direct.deadline = std::chrono::steady_clock::now();
  EXPECT_THROW(session.run(direct), std::runtime_error);
}

// run_batch keeps its synchronous contract on top of the async core:
// results in request order, first failure (in request order) rethrown
// only after the whole batch drained.
TEST(SessionAsync, RunBatchRethrowsAfterDrain) {
  const synth::Scenario s = synth::tiny(16, 11);
  AnalysisSession session(
      ExecutionPolicy::with_engine(EngineKind::kSequentialFused));

  std::vector<AnalysisRequest> requests;
  requests.push_back(request_for(s, "ok"));
  requests.push_back(AnalysisRequest{});
  EXPECT_THROW(session.run_batch(requests), std::invalid_argument);
}

}  // namespace
}  // namespace ara
