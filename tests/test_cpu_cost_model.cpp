// Calibration tests against the paper's sequential and multi-core
// measurements (Sections IV-A, Figures 1a/1b, 5, 6).
#include "perf/cpu_cost_model.hpp"

#include <gtest/gtest.h>

#include "perf/machine_profile.hpp"

namespace ara::perf {
namespace {

ara::OpCounts paper_ops() {
  ara::OpCounts ops;
  ops.event_fetches = 1'000'000'000ULL;
  ops.elt_lookups = 15'000'000'000ULL;
  ops.financial_ops = 15'000'000'000ULL;
  ops.occurrence_ops = 1'000'000'000ULL;
  ops.aggregate_ops = 1'000'000'000ULL;
  return ops;
}

TEST(CpuCostModel, SequentialTotalMatches337s) {
  const CpuCostModel model(intel_i7_2600());
  const PhaseBreakdown ph = model.estimate(paper_ops(), 1);
  EXPECT_NEAR(ph.total(), 337.47, 3.0);
}

TEST(CpuCostModel, SequentialLookupMatches222s) {
  const CpuCostModel model(intel_i7_2600());
  const PhaseBreakdown ph = model.estimate(paper_ops(), 1);
  EXPECT_NEAR(ph[Phase::kLossLookup], 222.61, 1.0);
  // "over 65% of the time for look-up" (Sec. IV-A).
  EXPECT_GT(ph.fraction(Phase::kLossLookup), 0.65);
}

TEST(CpuCostModel, SequentialNumericMatches104s) {
  const CpuCostModel model(intel_i7_2600());
  const PhaseBreakdown ph = model.estimate(paper_ops(), 1);
  EXPECT_NEAR(ph.numeric(), 104.67, 1.5);
  // "over 31% of the time for the numerical computations".
  EXPECT_GT(ph.numeric() / ph.total(), 0.30);
}

TEST(CpuCostModel, SequentialFetchAbout10s) {
  const CpuCostModel model(intel_i7_2600());
  const PhaseBreakdown ph = model.estimate(paper_ops(), 1);
  EXPECT_NEAR(ph[Phase::kEventFetch], 10.19, 0.5);
}

TEST(CpuCostModel, Fig1aSpeedups) {
  const CpuCostModel model(intel_i7_2600());
  const double t1 = model.total_seconds(paper_ops(), 1);
  EXPECT_NEAR(t1 / model.total_seconds(paper_ops(), 2), 1.5, 0.1);
  EXPECT_NEAR(t1 / model.total_seconds(paper_ops(), 4), 2.2, 0.15);
  EXPECT_NEAR(t1 / model.total_seconds(paper_ops(), 8), 2.6, 0.15);
}

TEST(CpuCostModel, Fig1bOversubscription) {
  const CpuCostModel model(intel_i7_2600());
  const double base = model.total_seconds(paper_ops(), 8, 1);
  const double oversub = model.total_seconds(paper_ops(), 8, 256);
  // Paper Fig. 5: 123.5 s with 256 threads/core.
  EXPECT_NEAR(oversub, 123.5, 6.0);
  EXPECT_LT(oversub, base);
  // Diminishing returns: 16 -> 256 gains less than 1 -> 16.
  const double mid = model.total_seconds(paper_ops(), 8, 16);
  EXPECT_GT(base - mid, mid - oversub);
}

TEST(CpuCostModel, NumericScalesLinearlyWithCores) {
  const CpuCostModel model(intel_i7_2600());
  const PhaseBreakdown p1 = model.estimate(paper_ops(), 1);
  const PhaseBreakdown p4 = model.estimate(paper_ops(), 4);
  EXPECT_NEAR(p1.numeric() / p4.numeric(), 4.0, 1e-9);
}

TEST(CpuCostModel, MemScalingFormula) {
  const CpuCostModel model(intel_i7_2600());
  EXPECT_DOUBLE_EQ(model.mem_scaling(1), 1.0);
  EXPECT_GT(model.mem_scaling(2), 0.5);   // worse than perfect
  EXPECT_LT(model.mem_scaling(2), 1.0);   // but better than nothing
  EXPECT_GT(model.mem_scaling(8), 1.0 / 8.0);
}

TEST(CpuCostModel, OversubScalingBounded) {
  const CpuCostModel model(intel_i7_2600());
  EXPECT_DOUBLE_EQ(model.oversub_scaling(1), 1.0);
  const double o256 = model.oversub_scaling(256);
  EXPECT_LT(o256, 1.0);
  EXPECT_GT(o256, 0.9);
}

TEST(CpuCostModel, ZeroOpsZeroTime) {
  const CpuCostModel model(intel_i7_2600());
  EXPECT_DOUBLE_EQ(model.total_seconds(ara::OpCounts{}, 4), 0.0);
}

TEST(MachineProfile, I7PublishedNumbers) {
  const CpuProfile p = intel_i7_2600();
  EXPECT_DOUBLE_EQ(p.clock_ghz, 3.40);
  EXPECT_DOUBLE_EQ(p.mem_bandwidth_gbps, 21.0);
  EXPECT_EQ(p.cores, 8u);
}

}  // namespace
}  // namespace ara::perf
