#include "io/csv.hpp"

#include <gtest/gtest.h>

#include <iomanip>
#include <sstream>

#include "core/reference_engine.hpp"
#include "synth/scenarios.hpp"

namespace ara::io {
namespace {

TEST(CsvIo, YltCsvHasHeaderAndAllRows) {
  const synth::Scenario s = synth::tiny(8, 3);
  ReferenceEngine engine;
  const Ylt ylt = engine.run(s.portfolio, s.yet).ylt;
  std::ostringstream os;
  write_ylt_csv(os, ylt);
  const std::string out = os.str();
  EXPECT_EQ(out.find("trial,layer,annual_loss,max_occurrence_loss\n"), 0u);
  std::size_t lines = 0;
  for (const char c : out) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 1 + ylt.layer_count() * ylt.trial_count());
}

TEST(CsvIo, EpCurveCsv) {
  std::vector<double> losses;
  for (int i = 1; i <= 100; ++i) losses.push_back(i);
  const metrics::EpCurve curve(losses);
  std::ostringstream os;
  write_ep_curve_csv(os, curve, {10.0, 100.0});
  EXPECT_EQ(os.str(), "return_period_years,loss\n10,91\n100,100\n");
}

TEST(CsvIo, ReadEltParsesRecords) {
  std::istringstream is("event_id,loss\n5,100.5\n3,7\n");
  const Elt elt = read_elt_csv(is, FinancialTerms::identity(), 10);
  EXPECT_EQ(elt.size(), 2u);
  EXPECT_DOUBLE_EQ(elt.lookup(5), 100.5);
  EXPECT_DOUBLE_EQ(elt.lookup(3), 7.0);
}

TEST(CsvIo, ReadEltSkipsCommentsAndBlankLines) {
  std::istringstream is("# comment\n\n5,1.5\n# another\n6,2.5\n");
  const Elt elt = read_elt_csv(is, FinancialTerms::identity(), 10);
  EXPECT_EQ(elt.size(), 2u);
}

TEST(CsvIo, ReadEltWithoutHeader) {
  std::istringstream is("5,1.5\n6,2.5\n");
  const Elt elt = read_elt_csv(is, FinancialTerms::identity(), 10);
  EXPECT_EQ(elt.size(), 2u);
}

TEST(CsvIo, ReadEltRejectsMalformedLines) {
  std::istringstream no_comma("5;1.5\n");
  EXPECT_THROW(read_elt_csv(no_comma, FinancialTerms::identity(), 10),
               std::runtime_error);
  // A non-numeric first line is treated as an (optional) header, so
  // put the malformed event id on line 2.
  std::istringstream bad_event("1,2.0\nabc,1.5\n");
  EXPECT_THROW(read_elt_csv(bad_event, FinancialTerms::identity(), 10),
               std::runtime_error);
  std::istringstream bad_loss("5,xyz\n");
  EXPECT_THROW(read_elt_csv(bad_loss, FinancialTerms::identity(), 10),
               std::runtime_error);
}

TEST(CsvIo, ReadEltEnforcesCatalogueBounds) {
  std::istringstream is("50,1.0\n");
  EXPECT_THROW(read_elt_csv(is, FinancialTerms::identity(), 10),
               std::invalid_argument);  // Elt constructor validates
}

TEST(CsvIo, RoundTripThroughCsvPreservesLookups) {
  const synth::Scenario s = synth::tiny(4, 9);
  const Elt& original = s.portfolio.elts()[0];
  std::ostringstream os;
  os << "event_id,loss\n";
  for (const EventLoss& r : original.records()) {
    os << r.event << ',' << std::setprecision(17) << r.loss << '\n';
  }
  std::istringstream is(os.str());
  const Elt loaded =
      read_elt_csv(is, original.terms(), original.catalogue_size());
  ASSERT_EQ(loaded.size(), original.size());
  for (const EventLoss& r : original.records()) {
    EXPECT_DOUBLE_EQ(loaded.lookup(r.event), r.loss);
  }
}

}  // namespace
}  // namespace ara::io
