#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

namespace ara::parallel {
namespace {

TEST(ThreadPool, ExecutesAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> ran{0};
  pool.submit([&ran] { ran = 1; });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), (wave + 1) * 20);
  }
}

TEST(ThreadPool, TaskExceptionRethrownAtBarrier) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // Pool remains usable after the failure.
  std::atomic<int> ok{0};
  pool.submit([&ok] { ok = 1; });
  pool.wait_idle();
  EXPECT_EQ(ok.load(), 1);
}

TEST(ThreadPool, OnlyFirstExceptionIsKept) {
  ThreadPool pool(2);
  for (int i = 0; i < 10; ++i) {
    pool.submit([] { throw std::runtime_error("boom"); });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  pool.wait_idle();  // error cleared; no rethrow
}

TEST(ThreadPool, ManyWorkersManyTasks) {
  ThreadPool pool(16);
  std::atomic<std::int64_t> sum{0};
  for (int i = 1; i <= 1000; ++i) {
    pool.submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.wait_idle();
  EXPECT_EQ(sum.load(), 500500);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    // no wait_idle: destructor must still run or drain safely
  }
  EXPECT_EQ(count.load(), 50);
}

}  // namespace
}  // namespace ara::parallel
