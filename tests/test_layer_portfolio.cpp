#include "core/layer.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ara {
namespace {

std::vector<Elt> sample_elts() {
  std::vector<Elt> elts;
  elts.emplace_back(std::vector<EventLoss>{{1, 10.0}, {2, 20.0}},
                    FinancialTerms::identity(), 100);
  elts.emplace_back(std::vector<EventLoss>{{3, 30.0}},
                    FinancialTerms::identity(), 100);
  elts.emplace_back(std::vector<EventLoss>{{4, 40.0}, {5, 50.0}},
                    FinancialTerms::identity(), 100);
  return elts;
}

TEST(Portfolio, BasicConstruction) {
  Layer layer{"test", {0, 2}, LayerTerms::identity()};
  const Portfolio p(sample_elts(), {layer});
  EXPECT_EQ(p.elt_count(), 3u);
  EXPECT_EQ(p.layer_count(), 1u);
  EXPECT_EQ(p.catalogue_size(), 100u);
  EXPECT_DOUBLE_EQ(p.mean_elts_per_layer(), 2.0);
}

TEST(Portfolio, LayerEltsResolvesPointers) {
  Layer layer{"test", {2, 0}, LayerTerms::identity()};
  const Portfolio p(sample_elts(), {layer});
  const auto elts = p.layer_elts(p.layers()[0]);
  ASSERT_EQ(elts.size(), 2u);
  EXPECT_DOUBLE_EQ(elts[0]->lookup(4), 40.0);  // layer order preserved
  EXPECT_DOUBLE_EQ(elts[1]->lookup(1), 10.0);
}

TEST(Portfolio, LayersMayShareElts) {
  Layer a{"a", {0, 1}, LayerTerms::identity()};
  Layer b{"b", {1, 2}, LayerTerms::identity()};
  const Portfolio p(sample_elts(), {a, b});
  EXPECT_EQ(p.layer_count(), 2u);
  EXPECT_DOUBLE_EQ(p.mean_elts_per_layer(), 2.0);
}

TEST(Portfolio, EmptyLayerListIsLegal) {
  const Portfolio p(sample_elts(), {});
  EXPECT_EQ(p.layer_count(), 0u);
  EXPECT_DOUBLE_EQ(p.mean_elts_per_layer(), 0.0);
}

TEST(Portfolio, RejectsNoElts) {
  EXPECT_THROW(Portfolio({}, {}), std::invalid_argument);
}

TEST(Portfolio, RejectsLayerWithNoElts) {
  Layer bad{"bad", {}, LayerTerms::identity()};
  EXPECT_THROW(Portfolio(sample_elts(), {bad}), std::invalid_argument);
}

TEST(Portfolio, RejectsOutOfRangeEltIndex) {
  Layer bad{"bad", {3}, LayerTerms::identity()};
  EXPECT_THROW(Portfolio(sample_elts(), {bad}), std::invalid_argument);
}

TEST(Portfolio, RejectsInvalidLayerTerms) {
  LayerTerms t;
  t.agg_limit = -1.0;
  Layer bad{"bad", {0}, t};
  EXPECT_THROW(Portfolio(sample_elts(), {bad}), std::invalid_argument);
}

TEST(Portfolio, RejectsMixedCatalogues) {
  auto elts = sample_elts();
  elts.emplace_back(std::vector<EventLoss>{{1, 1.0}},
                    FinancialTerms::identity(), 200);
  Layer layer{"l", {0}, LayerTerms::identity()};
  EXPECT_THROW(Portfolio(std::move(elts), {layer}), std::invalid_argument);
}

}  // namespace
}  // namespace ara
