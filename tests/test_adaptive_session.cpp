// Adaptive execution through the AnalysisSession façade (DESIGN.md
// §10): confidence-driven early stopping must save trials without
// perturbing anything it does not own — the fixed-trial path stays
// bitwise identical, an adaptive run's kept YLT is exactly the
// monolithic prefix, and reruns reproduce the stopping point bit for
// bit. Plus the BAI race: successive elimination must pick the arm
// the full-budget runs rank best, for less total work.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/session.hpp"
#include "synth/scenarios.hpp"

namespace ara {
namespace {

ExecutionPolicy fused_policy(std::size_t shard_trials) {
  ExecutionPolicy policy =
      ExecutionPolicy::with_engine(EngineKind::kSequentialFused);
  policy.shard_trials = shard_trials;
  return policy;
}

AnalysisRequest adaptive_request(const synth::Scenario& s,
                                 const metrics::StoppingSpec& spec) {
  AnalysisRequest request;
  request.portfolio = &s.portfolio;
  request.yet = &s.yet;
  request.metrics = MetricsSpec::portfolio_rollup();
  request.ylt_retention = YltRetention::kDiscard;
  request.stopping = spec;
  return request;
}

TEST(AdaptiveSession, LooseToleranceStopsEarly) {
  const synth::Scenario s = synth::multi_layer_book(2, 4000, 31);
  metrics::StoppingSpec spec;
  spec.relative_tolerance = 0.5;  // trivially loose: first barrier wins
  spec.min_trials = 200;

  AnalysisSession session(fused_policy(200));
  const AnalysisResult result = session.run(adaptive_request(s, spec));

  EXPECT_TRUE(result.stopped_early);
  EXPECT_EQ(result.trials_executed, 200u);
  ASSERT_EQ(result.half_widths.size(), 1u);
  EXPECT_TRUE(result.half_widths[0].satisfied);
  EXPECT_EQ(result.half_widths[0].trials, 200u);
  // The metric report covers exactly the executed prefix.
  ASSERT_TRUE(result.metrics.portfolio.has_value());
  EXPECT_EQ(result.metrics.portfolio->totals.trials, 200u);
}

TEST(AdaptiveSession, UnreachableToleranceRunsToTheBudget) {
  const synth::Scenario s = synth::multi_layer_book(2, 2000, 32);
  metrics::StoppingSpec spec;
  spec.relative_tolerance = 1.0e-9;
  spec.min_trials = 200;
  spec.max_trials = 800;

  AnalysisSession session(fused_policy(200));
  const AnalysisResult result = session.run(adaptive_request(s, spec));

  EXPECT_EQ(result.trials_executed, 800u);
  EXPECT_TRUE(result.stopped_early);  // 800 of 2000
  ASSERT_EQ(result.half_widths.size(), 1u);
  EXPECT_FALSE(result.half_widths[0].satisfied);
}

TEST(AdaptiveSession, ReproducibleForSeedAndShardSize) {
  const synth::Scenario s = synth::multi_layer_book(3, 6000, 33);
  metrics::StoppingSpec spec;
  spec.relative_tolerance = 0.05;
  spec.min_trials = 300;
  spec.targets = {{metrics::StopMetric::kAal, 0.0},
                  {metrics::StopMetric::kTvar, 0.90}};

  AnalysisSession session(fused_policy(300));
  const AnalysisResult a = session.run(adaptive_request(s, spec));
  const AnalysisResult b = session.run(adaptive_request(s, spec));

  EXPECT_EQ(a.trials_executed, b.trials_executed);
  ASSERT_EQ(a.half_widths.size(), b.half_widths.size());
  for (std::size_t i = 0; i < a.half_widths.size(); ++i) {
    EXPECT_EQ(a.half_widths[i].estimate, b.half_widths[i].estimate);
    EXPECT_EQ(a.half_widths[i].std_error, b.half_widths[i].std_error);
  }
  ASSERT_TRUE(a.metrics.portfolio && b.metrics.portfolio);
  EXPECT_EQ(a.metrics.portfolio->totals.aal, b.metrics.portfolio->totals.aal);
}

TEST(AdaptiveSession, KeptYltIsTheMonolithicPrefix) {
  const synth::Scenario s = synth::multi_layer_book(2, 3000, 34);
  const auto engine = make_engine(
      ExecutionPolicy::with_engine(EngineKind::kSequentialFused));
  const SimulationResult mono = engine->run(s.portfolio, s.yet);

  metrics::StoppingSpec spec;
  spec.relative_tolerance = 0.5;
  spec.min_trials = 250;
  AnalysisSession session(fused_policy(250));
  AnalysisRequest request = adaptive_request(s, spec);
  request.ylt_retention = YltRetention::kKeep;
  request.metrics = MetricsSpec();
  const AnalysisResult result = session.run(request);

  const Ylt& ylt = result.simulation.ylt;
  ASSERT_EQ(ylt.trial_count(), result.trials_executed);
  ASSERT_LT(ylt.trial_count(), mono.ylt.trial_count());
  for (std::size_t l = 0; l < ylt.layer_count(); ++l) {
    for (TrialId t = 0; t < ylt.trial_count(); ++t) {
      ASSERT_EQ(ylt.annual_loss(l, t), mono.ylt.annual_loss(l, t))
          << "layer " << l << " trial " << t;
      ASSERT_EQ(ylt.max_occurrence_loss(l, t),
                mono.ylt.max_occurrence_loss(l, t))
          << "layer " << l << " trial " << t;
    }
  }
}

TEST(AdaptiveSession, FixedPathReportsFullTrialCount) {
  const synth::Scenario s = synth::multi_layer_book(2, 500, 35);
  AnalysisSession session;
  AnalysisRequest request;
  request.portfolio = &s.portfolio;
  request.yet = &s.yet;
  const AnalysisResult result = session.run(request);
  EXPECT_EQ(result.trials_executed, s.yet.trial_count());
  EXPECT_FALSE(result.stopped_early);
  EXPECT_TRUE(result.half_widths.empty());
}

TEST(AdaptiveSession, RejectsIncompatibleRequests) {
  const synth::Scenario s = synth::multi_layer_book(2, 500, 36);
  metrics::StoppingSpec spec;
  AnalysisSession session;

  AnalysisRequest spill = adaptive_request(s, spec);
  spill.ylt_retention = YltRetention::kSpillToFile;
  spill.ylt_path = "/tmp/ara_adaptive_reject.ylt";
  EXPECT_THROW(session.run(spill), std::invalid_argument);

  AnalysisRequest reinst = adaptive_request(s, spec);
  reinst.reinstatement_terms.assign(s.portfolio.layer_count(),
                                    ext::ReinstatementTerms{});
  EXPECT_THROW(session.run(reinst), std::invalid_argument);

  AnalysisRequest invalid = adaptive_request(s, spec);
  invalid.stopping->relative_tolerance = -1.0;
  EXPECT_THROW(session.run(invalid), std::invalid_argument);
}

// ---- race ------------------------------------------------------------

TEST(RaceSession, PicksTheArmFullRunsRankBest) {
  // Three single-layer books carved from one portfolio: distinct
  // expected losses, one shared YET (common random numbers).
  const synth::Scenario s = synth::multi_layer_book(3, 4000, 37);
  std::vector<Portfolio> books;
  for (std::size_t l = 0; l < 3; ++l) {
    books.emplace_back(s.portfolio.elts(),
                       std::vector<Layer>{s.portfolio.layers()[l]});
  }

  const auto engine = make_engine(
      ExecutionPolicy::with_engine(EngineKind::kSequentialFused));
  std::size_t expected = 0;
  double best = 0.0;
  for (std::size_t i = 0; i < books.size(); ++i) {
    const SimulationResult r = engine->run(books[i], s.yet);
    const auto losses = r.ylt.layer_annual_vector(0);
    double mean = 0.0;
    for (const double x : losses) mean += x;
    mean /= static_cast<double>(losses.size());
    if (i == 0 || mean < best) {
      best = mean;
      expected = i;
    }
  }

  std::vector<RaceEntry> entries;
  for (std::size_t i = 0; i < books.size(); ++i) {
    entries.push_back({"book_" + std::to_string(i), &books[i]});
  }
  RaceSpec spec;
  spec.min_trials = 250;
  spec.policy = fused_policy(250);

  AnalysisSession session;
  const RaceResult result = session.race(entries, s.yet, spec);

  ASSERT_EQ(result.arms.size(), 3u);
  EXPECT_EQ(result.winner, expected);
  EXPECT_FALSE(result.arms[result.winner].eliminated);
  // Pruning must beat pricing every arm at full budget.
  EXPECT_LT(result.total_trials, 3 * s.yet.trial_count());
  std::size_t summed = 0;
  for (const RaceArm& arm : result.arms) {
    summed += arm.trials_executed;
    if (arm.eliminated) {
      EXPECT_GT(arm.eliminated_at_trials, 0u);
      EXPECT_LT(arm.trials_executed, s.yet.trial_count());
    }
  }
  EXPECT_EQ(summed, result.total_trials);
}

TEST(RaceSession, DeterministicAcrossRuns) {
  const synth::Scenario s = synth::multi_layer_book(3, 3000, 38);
  std::vector<Portfolio> books;
  for (std::size_t l = 0; l < 3; ++l) {
    books.emplace_back(s.portfolio.elts(),
                       std::vector<Layer>{s.portfolio.layers()[l]});
  }
  std::vector<RaceEntry> entries;
  for (std::size_t i = 0; i < books.size(); ++i) {
    entries.push_back({"book_" + std::to_string(i), &books[i]});
  }
  RaceSpec spec;
  spec.min_trials = 300;
  spec.policy = fused_policy(300);

  AnalysisSession session;
  const RaceResult a = session.race(entries, s.yet, spec);
  const RaceResult b = session.race(entries, s.yet, spec);
  EXPECT_EQ(a.winner, b.winner);
  EXPECT_EQ(a.total_trials, b.total_trials);
  ASSERT_EQ(a.arms.size(), b.arms.size());
  for (std::size_t i = 0; i < a.arms.size(); ++i) {
    EXPECT_EQ(a.arms[i].estimate, b.arms[i].estimate);
    EXPECT_EQ(a.arms[i].half_width, b.arms[i].half_width);
    EXPECT_EQ(a.arms[i].trials_executed, b.arms[i].trials_executed);
    EXPECT_EQ(a.arms[i].eliminated, b.arms[i].eliminated);
  }
}

TEST(RaceSession, ValidatesEntries) {
  const synth::Scenario s = synth::multi_layer_book(2, 500, 39);
  AnalysisSession session;
  RaceSpec spec;
  const std::vector<RaceEntry> one = {{"solo", &s.portfolio}};
  EXPECT_THROW(session.race(one, s.yet, spec), std::invalid_argument);
}

}  // namespace
}  // namespace ara
