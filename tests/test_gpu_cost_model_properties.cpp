// Parameterized property sweeps over the GPU cost model: invariants
// that must hold for every device, precision and feasible launch
// shape, not just the paper's configurations.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "simgpu/gpu_cost_model.hpp"

namespace ara::simgpu {
namespace {

ara::OpCounts workload(double scale) {
  ara::OpCounts ops;
  ops.event_fetches = static_cast<std::uint64_t>(1e9 * scale);
  ops.elt_lookups = static_cast<std::uint64_t>(15e9 * scale);
  ops.financial_ops = ops.elt_lookups;
  ops.occurrence_ops = ops.event_fetches;
  ops.aggregate_ops = ops.event_fetches;
  return ops;
}

using Param = std::tuple<int /*device*/, int /*precision*/, unsigned /*block*/>;

DeviceSpec device_for(int id) {
  return id == 0 ? tesla_c2075() : tesla_m2090();
}

class CostModelSweep : public ::testing::TestWithParam<Param> {
 protected:
  KernelTraits traits() const {
    KernelTraits t;
    t.loss_bytes = std::get<1>(GetParam()) == 0 ? 8 : 4;
    t.mlp_per_thread = 4;
    return t;
  }
  LaunchConfig launch(std::size_t trials = 1'000'000) const {
    LaunchConfig c;
    c.block_threads = std::get<2>(GetParam());
    c.grid_blocks = static_cast<unsigned>(
        (trials + c.block_threads - 1) / c.block_threads);
    c.regs_per_thread = 20;
    return c;
  }
};

TEST_P(CostModelSweep, CostsArePositiveAndFinite) {
  const GpuCostModel model(device_for(std::get<0>(GetParam())));
  const KernelCost cost = model.estimate(launch(), traits(), workload(1.0));
  ASSERT_TRUE(cost.feasible);
  EXPECT_GT(cost.total_seconds, 0.0);
  EXPECT_TRUE(std::isfinite(cost.total_seconds));
  EXPECT_GT(cost.random_rate, 0.0);
  for (std::size_t p = 0; p < perf::kPhaseCount; ++p) {
    EXPECT_GE(cost.phases[static_cast<perf::Phase>(p)], 0.0);
  }
}

TEST_P(CostModelSweep, MonotoneInWork) {
  const GpuCostModel model(device_for(std::get<0>(GetParam())));
  const double t1 =
      model.estimate(launch(), traits(), workload(1.0)).total_seconds;
  const double t2 =
      model.estimate(launch(), traits(), workload(2.0)).total_seconds;
  EXPECT_GT(t2, t1);
  // Memory-dominated: doubling the work should roughly double time.
  EXPECT_NEAR(t2 / t1, 2.0, 0.05);
}

TEST_P(CostModelSweep, FloatNeverSlowerThanDouble) {
  const GpuCostModel model(device_for(std::get<0>(GetParam())));
  KernelTraits f32 = traits(), f64 = traits();
  f32.loss_bytes = 4;
  f64.loss_bytes = 8;
  EXPECT_LE(model.estimate(launch(), f32, workload(1.0)).total_seconds,
            model.estimate(launch(), f64, workload(1.0)).total_seconds);
}

TEST_P(CostModelSweep, MoreMlpNeverHurts) {
  const GpuCostModel model(device_for(std::get<0>(GetParam())));
  KernelTraits low = traits(), high = traits();
  low.mlp_per_thread = 1;
  high.mlp_per_thread = 16;
  EXPECT_GE(model.estimate(launch(), low, workload(1.0)).total_seconds,
            model.estimate(launch(), high, workload(1.0)).total_seconds);
}

TEST_P(CostModelSweep, UnrollingOnlyAffectsComputePhases) {
  const GpuCostModel model(device_for(std::get<0>(GetParam())));
  KernelTraits rolled = traits(), unrolled = traits();
  unrolled.unrolled = true;
  const KernelCost a = model.estimate(launch(), rolled, workload(1.0));
  const KernelCost b = model.estimate(launch(), unrolled, workload(1.0));
  EXPECT_DOUBLE_EQ(a.phases[perf::Phase::kLossLookup],
                   b.phases[perf::Phase::kLossLookup]);
  EXPECT_GT(a.phases[perf::Phase::kFinancialTerms],
            b.phases[perf::Phase::kFinancialTerms]);
}

TEST_P(CostModelSweep, TailEffectSmallGridsSlowerPerUnit) {
  const GpuCostModel model(device_for(std::get<0>(GetParam())));
  // Per-trial cost of a grid that underfills the device vs a full one.
  const double small_trials = 64.0;
  const KernelCost small = model.estimate(
      launch(static_cast<std::size_t>(small_trials)), traits(),
      workload(small_trials / 1e6));
  const KernelCost big =
      model.estimate(launch(1'000'000), traits(), workload(1.0));
  const double per_trial_small = small.total_seconds / small_trials;
  const double per_trial_big = big.total_seconds / 1e6;
  EXPECT_GT(per_trial_small, per_trial_big);
}

std::string sweep_name(const ::testing::TestParamInfo<Param>& info) {
  return std::string(std::get<0>(info.param) == 0 ? "c2075" : "m2090") +
         (std::get<1>(info.param) == 0 ? "_f64" : "_f32") + "_b" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CostModelSweep,
    ::testing::Combine(::testing::Values(0, 1), ::testing::Values(0, 1),
                       ::testing::Values(64u, 128u, 256u, 512u)),
    sweep_name);

}  // namespace
}  // namespace ara::simgpu
