// The paper's rejected "second implementation": the combined-ELT GPU
// engine must produce identical results to the independent-table
// engines while the cost model charges its extra coordination traffic.
#include <gtest/gtest.h>

#include "core/engine_factory.hpp"
#include "core/gpu_engines.hpp"
#include "core/reference_engine.hpp"
#include "synth/scenarios.hpp"

namespace ara {
namespace {

TEST(GpuCombinedTableEngine, ResultsBitwiseEqualReference) {
  const synth::Scenario s = synth::tiny(96, 81);
  EngineConfig cfg;
  cfg.block_threads = 128;
  GpuCombinedTableEngine engine(simgpu::tesla_c2075(), cfg);
  ReferenceEngine ref;
  const auto expect = ref.run(s.portfolio, s.yet);
  const auto got = engine.run(s.portfolio, s.yet);
  for (std::size_t l = 0; l < expect.ylt.layer_count(); ++l) {
    for (TrialId t = 0; t < expect.ylt.trial_count(); ++t) {
      ASSERT_EQ(got.ylt.annual_loss(l, t), expect.ylt.annual_loss(l, t))
          << "layer " << l << " trial " << t;
      ASSERT_EQ(got.ylt.max_occurrence_loss(l, t),
                expect.ylt.max_occurrence_loss(l, t));
    }
  }
}

TEST(GpuCombinedTableEngine, SlowerThanIndependentTablesBasic) {
  // The paper: "the second implementation has comparatively poorer
  // performance than the first" — the combined engine's simulated
  // time must exceed the basic independent-tables engine at the same
  // block size.
  const synth::Scenario s = synth::paper_scaled(20000, 82);
  EngineConfig cfg;
  cfg.block_threads = 256;
  GpuCombinedTableEngine combined(simgpu::tesla_c2075(), cfg);
  GpuBasicEngine basic(simgpu::tesla_c2075(),
                       paper_config(EngineKind::kGpuBasic));
  const double tc = combined.run(s.portfolio, s.yet).simulated_seconds;
  const double tb = basic.run(s.portfolio, s.yet).simulated_seconds;
  EXPECT_GT(tc, tb);
}

TEST(GpuCombinedTableEngine, ChargesCoordinationTraffic) {
  const synth::Scenario s = synth::tiny(32, 83);
  EngineConfig cfg;
  cfg.block_threads = 128;
  GpuCombinedTableEngine engine(simgpu::tesla_c2075(), cfg);
  const auto r = engine.run(s.portfolio, s.yet);
  // Two shared accesses per lookup plus the scratch traffic.
  EXPECT_GE(r.ops.shared_accesses, 2 * r.ops.elt_lookups);
}

TEST(GpuCombinedTableEngine, MultiLayerBook) {
  const synth::Scenario s = synth::multi_layer_book(5, 64, 84);
  EngineConfig cfg;
  cfg.block_threads = 64;
  GpuCombinedTableEngine engine(simgpu::tesla_m2090(), cfg);
  ReferenceEngine ref;
  const auto expect = ref.run(s.portfolio, s.yet);
  const auto got = engine.run(s.portfolio, s.yet);
  for (std::size_t l = 0; l < expect.ylt.layer_count(); ++l) {
    for (TrialId t = 0; t < expect.ylt.trial_count(); ++t) {
      ASSERT_EQ(got.ylt.annual_loss(l, t), expect.ylt.annual_loss(l, t));
    }
  }
}

}  // namespace
}  // namespace ara
