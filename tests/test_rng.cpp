#include "synth/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ara::synth {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256StarStar a(99);
  Xoshiro256StarStar b(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Xoshiro, NextDoubleInUnitInterval) {
  Xoshiro256StarStar rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro, NextDoubleMeanIsHalf) {
  Xoshiro256StarStar rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Xoshiro, NextBelowRespectsBound) {
  Xoshiro256StarStar rng(13);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 365ULL, 1000000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro, NextBelowZeroBoundReturnsZero) {
  Xoshiro256StarStar rng(17);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Xoshiro, NextBelowIsApproximatelyUniform) {
  Xoshiro256StarStar rng(19);
  const std::uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.next_below(bound)];
  }
  for (const int c : counts) {
    // Each bucket expects 10000; allow 5 sigma (~500).
    EXPECT_NEAR(c, n / 10, 500);
  }
}

TEST(Xoshiro, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256StarStar::min() == 0);
  static_assert(Xoshiro256StarStar::max() == ~0ULL);
  Xoshiro256StarStar rng(1);
  EXPECT_NE(rng(), rng());
}

TEST(Substream, DistinctIndicesGiveDistinctSeeds) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    seen.insert(substream(42, i));
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(Substream, StableAcrossCalls) {
  EXPECT_EQ(substream(42, 7), substream(42, 7));
  EXPECT_NE(substream(42, 7), substream(43, 7));
  EXPECT_NE(substream(42, 7), substream(42, 8));
}

TEST(Substream, StreamsAreStatisticallyIndependent) {
  // Correlation between adjacent sub-streams should be negligible.
  Xoshiro256StarStar a(substream(5, 0));
  Xoshiro256StarStar b(substream(5, 1));
  const int n = 50000;
  double sum_ab = 0.0, sum_a = 0.0, sum_b = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = a.next_double(), y = b.next_double();
    sum_ab += x * y;
    sum_a += x;
    sum_b += y;
  }
  const double cov = sum_ab / n - (sum_a / n) * (sum_b / n);
  EXPECT_NEAR(cov, 0.0, 0.002);  // var(U)=1/12; |corr| < ~2.4%
}

}  // namespace
}  // namespace ara::synth
