#include "perf/report.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace ara::perf {
namespace {

TEST(Table, PrintsHeaderRuleAndRows) {
  Table t({"name", "time"});
  t.add_row({"alpha", "1.0 s"});
  t.add_row({"beta", "2.5 s"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ColumnsAlignToWidestCell) {
  Table t({"x", "y"});
  t.add_row({"longvalue", "1"});
  std::ostringstream os;
  t.print(os);
  // Header row must be padded past "longvalue".
  const std::string first_line = os.str().substr(0, os.str().find('\n'));
  EXPECT_GE(first_line.size(), std::string("longvalue").size());
}

TEST(Table, RejectsWrongCellCount) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Formatting, Seconds) {
  EXPECT_EQ(format_seconds(337.47), "337.47 s");
  EXPECT_EQ(format_seconds(0.5), "500.00 ms");
  EXPECT_EQ(format_seconds(0.0000005), "0.50 us");
}

TEST(Formatting, Ratio) {
  EXPECT_EQ(format_ratio(77.0), "77.00x");
  EXPECT_EQ(format_ratio(1.5), "1.50x");
}

TEST(Formatting, Percent) {
  EXPECT_EQ(format_percent(0.9754), "97.5%");
  EXPECT_EQ(format_percent(1.0), "100.0%");
}

TEST(Formatting, Fixed) {
  EXPECT_EQ(format_fixed(4.349, 2), "4.35");
  EXPECT_EQ(format_fixed(4.0, 0), "4");
}

}  // namespace
}  // namespace ara::perf
