// AnalysisService end-to-end: the fairness smoke gate (weighted
// throughput proportional to DWRR weights under saturation, zero lost
// replies, explicit rejection statuses), deadline shedding before
// compute, drain/stop semantics, and the socket path (ServeServer +
// ServeClient + ClientTransport) over Unix and TCP endpoints. Run
// under ASan and TSan in CI.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "synth/portfolio_generator.hpp"
#include "synth/yet_generator.hpp"

namespace ara::serve {
namespace {

/// Spins until the plug request occupies the (single) dispatch slot,
/// so everything submitted afterwards queues deterministically behind
/// it. Without this the plug's large trial cost would make DWRR serve
/// the cheap requests first and the plug would not plug.
void wait_for_inflight(AnalysisService& service, std::size_t count) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (service.inflight() < count) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "dispatch slot never filled";
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

// The workload every fast request names: tiny, shared (one cache
// entry) and equal-cost so DWRR arithmetic is exact.
SynthSpec fast_spec() {
  SynthSpec s;
  s.trials = 256;
  s.events_per_trial = 5.0;
  s.catalogue = 200;
  s.elts = 2;
  s.layers = 1;
  s.seed = 11;
  return s;
}

// A deliberately slower workload used to plug the single dispatch
// slot while a test queues traffic behind it.
SynthSpec plug_spec() {
  SynthSpec s;
  s.trials = 50000;
  s.events_per_trial = 10.0;
  s.catalogue = 200;
  s.elts = 2;
  s.layers = 1;
  s.seed = 12;
  return s;
}

AnalysisService::Options serial_options() {
  AnalysisService::Options options;
  options.policy = ExecutionPolicy::with_engine(EngineKind::kSequentialFused);
  options.session_workers = 2;
  options.max_inflight = 1;  // DWRR order == completion order
  options.quantum_trials = 256;
  options.global_byte_budget = 0;  // no byte cap / WRED in these tests
  return options;
}

ServeRequest synth_request(const std::string& tenant, std::uint64_t id,
                           const SynthSpec& spec) {
  ServeRequest request;
  request.tenant = tenant;
  request.request_id = id;
  request.synth = spec;
  request.metrics = metrics::MetricsSpec::layer_summaries();
  return request;
}

/// Collects replies and wakes waiters when a target count arrives.
struct ReplyLog {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<ServeReply> replies;
  std::vector<std::string> ok_tenants;  ///< completion order, kOk only

  AnalysisService::ReplyFn sink(std::string tenant = "") {
    return [this, tenant](ServeReply&& reply) {
      std::lock_guard<std::mutex> lock(mutex);
      if (reply.status == Status::kOk) ok_tenants.push_back(tenant);
      replies.push_back(std::move(reply));
      cv.notify_all();
    };
  }

  bool wait_for_replies(std::size_t count, std::chrono::seconds timeout) {
    std::unique_lock<std::mutex> lock(mutex);
    return cv.wait_for(lock, timeout,
                       [&] { return replies.size() >= count; });
  }

  std::size_t count_status(Status status) {
    std::lock_guard<std::mutex> lock(mutex);
    std::size_t n = 0;
    for (const ServeReply& r : replies) n += r.status == status ? 1 : 0;
    return n;
  }
};

TEST(ServeService, SingleSynthRequestAnswersWithMetricsDeterministically) {
  AnalysisService service(serial_options());
  ReplyLog log;
  service.submit(synth_request("t", 1, fast_spec()), log.sink(),
                 /*wire_bytes=*/100);
  service.submit(synth_request("t", 2, fast_spec()), log.sink(),
                 /*wire_bytes=*/100);
  ASSERT_TRUE(log.wait_for_replies(2, std::chrono::seconds(30)));

  std::lock_guard<std::mutex> lock(log.mutex);
  ASSERT_EQ(log.replies.size(), 2u);
  for (const ServeReply& reply : log.replies) {
    ASSERT_EQ(reply.status, Status::kOk) << reply.message;
    EXPECT_EQ(reply.engine, "sequential_fused");
    ASSERT_EQ(reply.report.layers.size(), 1u);
    EXPECT_EQ(reply.report.layers[0].trials, 256u);
    EXPECT_GT(reply.report.layers[0].aal, 0.0);
  }
  // Same spec -> same cached workload -> identical metrics.
  EXPECT_EQ(log.replies[0].report.layers[0].aal,
            log.replies[1].report.layers[0].aal);
  // Both requests shared one synth workload and one table cache entry.
  EXPECT_EQ(service.session().cached_table_portfolios(), 1u);
}

TEST(ServeService, InvalidRequestsGetImmediateErrorReplies) {
  AnalysisService service(serial_options());
  ReplyLog log;

  ServeRequest unknown_dataset;
  unknown_dataset.tenant = "t";
  unknown_dataset.request_id = 1;
  unknown_dataset.workload = WorkloadRef::kDataset;
  unknown_dataset.dataset = "no-such-dataset";
  service.submit(std::move(unknown_dataset), log.sink(), 100);

  ServeRequest zero_trials = synth_request("t", 2, fast_spec());
  zero_trials.synth.trials = 0;
  service.submit(std::move(zero_trials), log.sink(), 100);

  ServeRequest spill_without_path = synth_request("t", 3, fast_spec());
  spill_without_path.retention = WireRetention::kSpillToFile;
  service.submit(std::move(spill_without_path), log.sink(), 100);

  ASSERT_TRUE(log.wait_for_replies(3, std::chrono::seconds(5)));
  EXPECT_EQ(log.count_status(Status::kError), 3u);
  for (const ServeReply& r : log.replies) EXPECT_FALSE(r.message.empty());
}

TEST(ServeService, RegisteredDatasetServesByName) {
  AnalysisService service(serial_options());
  // Materialise a small workload directly and register it by name.
  auto workload = std::make_shared<ServedWorkload>();
  {
    synth::Catalogue cat = synth::Catalogue::make(200, 6, 1000.0);
    synth::YetGeneratorConfig yc;
    yc.trials = 128;
    yc.target_events_per_trial = 5.0;
    yc.seed = 3;
    workload->yet = synth::generate_yet(cat, yc);
    synth::PortfolioGeneratorConfig pc;
    pc.elt_count = 2;
    pc.layer_count = 1;
    pc.min_elts_per_layer = 2;
    pc.max_elts_per_layer = 2;
    pc.elt.record_count = 20;
    pc.seed = 4;
    workload->portfolio = synth::generate_portfolio(cat, pc);
  }
  service.register_dataset("book", workload);

  ServeRequest via_dataset;
  via_dataset.tenant = "t";
  via_dataset.request_id = 9;
  via_dataset.workload = WorkloadRef::kDataset;
  via_dataset.dataset = "book";
  ReplyLog log;
  service.submit(std::move(via_dataset), log.sink(), 100);
  ASSERT_TRUE(log.wait_for_replies(1, std::chrono::seconds(30)));
  std::lock_guard<std::mutex> lock(log.mutex);
  ASSERT_EQ(log.replies[0].status, Status::kOk) << log.replies[0].message;
  EXPECT_EQ(log.replies[0].report.layers[0].trials, 128u);
}

// The smoke gate of ISSUE record: saturate three tenants with weights
// 1:2:4 behind a plugged dispatch slot, then assert the completion
// order respects DWRR shares and that every submission was answered.
TEST(ServeService, FairnessRatioUnderSaturationAndZeroLostReplies) {
  AnalysisService::Options options = serial_options();
  options.default_tenant.max_queue_depth = 128;
  AnalysisService service(options);
  service.configure_tenant({"bronze", 1, 128});
  service.configure_tenant({"silver", 2, 128});
  service.configure_tenant({"gold", 4, 128});

  ReplyLog log;
  // Plug the single dispatch slot so the tenant queues build up while
  // the scheduler is busy.
  service.submit(synth_request("plug", 1, plug_spec()), log.sink("plug"),
                 100);
  wait_for_inflight(service, 1);

  constexpr std::size_t kPerTenant = 70;
  std::uint64_t id = 2;
  for (std::size_t i = 0; i < kPerTenant; ++i) {
    service.submit(synth_request("bronze", id++, fast_spec()),
                   log.sink("bronze"), 100);
    service.submit(synth_request("silver", id++, fast_spec()),
                   log.sink("silver"), 100);
    service.submit(synth_request("gold", id++, fast_spec()),
                   log.sink("gold"), 100);
  }
  const std::size_t submitted = 1 + 3 * kPerTenant;
  ASSERT_TRUE(log.wait_for_replies(submitted, std::chrono::seconds(120)));

  std::unique_lock<std::mutex> lock(log.mutex);
  // Zero lost replies: exactly one reply per submission, all kOk.
  ASSERT_EQ(log.replies.size(), submitted);
  for (const ServeReply& r : log.replies) {
    EXPECT_EQ(r.status, Status::kOk) << r.message;
  }

  // Completion order after the plug is the DWRR dispatch order
  // (max_inflight = 1). Over the first 5 full cycles — 35 requests —
  // the weighted shares are 5/10/20 exactly; allow +-2 for the ring
  // join boundary.
  ASSERT_GE(log.ok_tenants.size(), 36u);
  std::map<std::string, int> window;
  std::size_t start = 0;
  while (start < log.ok_tenants.size() && log.ok_tenants[start] == "plug") {
    ++start;
  }
  for (std::size_t i = start; i < start + 35; ++i) {
    ++window[log.ok_tenants[i]];
  }
  lock.unlock();
  EXPECT_NEAR(window["bronze"], 5, 2);
  EXPECT_NEAR(window["silver"], 10, 2);
  EXPECT_NEAR(window["gold"], 20, 2);

  // The scheduler's own accounting agrees with the weights over the
  // full saturated run.
  for (const TenantStats& t : service.stats()) {
    if (t.name == "plug") continue;
    EXPECT_EQ(t.queueing.admitted, kPerTenant);
    EXPECT_EQ(t.dispatch.completed, kPerTenant);
  }
}

TEST(ServeService, DeadlineExpiredWhileQueuedGetsExplicitShedReply) {
  AnalysisService service(serial_options());
  ReplyLog log;
  // Plug the slot, then queue a request that can only expire behind it.
  service.submit(synth_request("plug", 1, plug_spec()), log.sink("plug"),
                 100);
  wait_for_inflight(service, 1);
  ServeRequest doomed = synth_request("t", 2, fast_spec());
  doomed.deadline_ms = 1;
  service.submit(std::move(doomed), log.sink("t"), 100);
  ServeRequest fine = synth_request("t", 3, fast_spec());
  service.submit(std::move(fine), log.sink("t"), 100);

  ASSERT_TRUE(log.wait_for_replies(3, std::chrono::seconds(60)));
  std::lock_guard<std::mutex> lock(log.mutex);
  std::size_t shed = 0;
  for (const ServeReply& r : log.replies) {
    if (r.request_id == 2) {
      EXPECT_EQ(r.status, Status::kShedDeadline);
      EXPECT_GT(r.queue_ms, 0.0);
      ++shed;
    }
    if (r.request_id == 3) EXPECT_EQ(r.status, Status::kOk) << r.message;
  }
  EXPECT_EQ(shed, 1u);
  // The shed is charged to queueing accounting, not dispatch: it never
  // occupied the dispatch slot.
  for (const TenantStats& t : service.stats()) {
    if (t.name != "t") continue;
    EXPECT_EQ(t.queueing.shed_deadline, 1u);
    EXPECT_EQ(t.dispatch.shed_deadline, 0u);
  }
}

TEST(ServeService, QueueDepthCapRejectsWithRetryAfter) {
  AnalysisService::Options options = serial_options();
  options.default_tenant.max_queue_depth = 2;
  AnalysisService service(options);
  ReplyLog log;
  service.submit(synth_request("plug", 1, plug_spec()), log.sink("plug"),
                 100);
  wait_for_inflight(service, 1);
  for (std::uint64_t id = 2; id <= 5; ++id) {
    service.submit(synth_request("t", id, fast_spec()), log.sink("t"), 100);
  }
  // Two fit the queue; two are rejected synchronously.
  EXPECT_EQ(log.count_status(Status::kRejectedQueueFull), 2u);
  {
    std::lock_guard<std::mutex> lock(log.mutex);
    for (const ServeReply& r : log.replies) {
      if (r.status != Status::kRejectedQueueFull) continue;
      EXPECT_GT(r.retry_after_ms, 0u);
      EXPECT_TRUE(is_backpressure(r.status));
    }
  }
  ASSERT_TRUE(log.wait_for_replies(5, std::chrono::seconds(60)));
  EXPECT_EQ(log.count_status(Status::kOk), 3u);  // plug + the two queued
}

TEST(ServeService, ZeroBaseRetryStillHintsARetryDelay) {
  // base_retry_after_ms = 0 must not surface as retry_after_ms = 0 on
  // a backpressure reply: loadgen (and any well-behaved client) treats
  // 0 as "no hint" and retries immediately, defeating the shed.
  AnalysisService::Options options = serial_options();
  options.base_retry_after_ms = 0;
  options.default_tenant.max_queue_depth = 1;
  AnalysisService service(options);
  ReplyLog log;
  service.submit(synth_request("plug", 1, plug_spec()), log.sink("plug"),
                 100);
  wait_for_inflight(service, 1);
  for (std::uint64_t id = 2; id <= 4; ++id) {
    service.submit(synth_request("t", id, fast_spec()), log.sink("t"), 100);
  }
  EXPECT_EQ(log.count_status(Status::kRejectedQueueFull), 2u);
  {
    std::lock_guard<std::mutex> lock(log.mutex);
    for (const ServeReply& r : log.replies) {
      if (r.status != Status::kRejectedQueueFull) continue;
      EXPECT_GT(r.retry_after_ms, 0u);
    }
  }
  ASSERT_TRUE(log.wait_for_replies(4, std::chrono::seconds(60)));
}

TEST(ServeService, StopFlushesQueueWithShutdownReplies) {
  AnalysisService service(serial_options());
  ReplyLog log;
  service.submit(synth_request("plug", 1, plug_spec()), log.sink("plug"),
                 100);
  wait_for_inflight(service, 1);
  for (std::uint64_t id = 2; id <= 9; ++id) {
    service.submit(synth_request("t", id, fast_spec()), log.sink("t"), 100);
  }
  service.stop();
  // stop() returns only after the queue flush and the in-flight plug:
  // every submission has its reply, none were lost.
  ASSERT_TRUE(log.wait_for_replies(9, std::chrono::seconds(10)));
  EXPECT_EQ(log.count_status(Status::kShutdown) +
                log.count_status(Status::kShedDeadline),
            8u);
  EXPECT_EQ(log.count_status(Status::kOk), 1u);

  // Submissions after stop are refused immediately.
  service.submit(synth_request("t", 10, fast_spec()), log.sink("t"), 100);
  ASSERT_TRUE(log.wait_for_replies(10, std::chrono::seconds(5)));
  EXPECT_EQ(log.count_status(Status::kShutdown) +
                log.count_status(Status::kShedDeadline),
            9u);
}

TEST(ServeService, DrainServesEverythingThenRefusesNewWork) {
  AnalysisService service(serial_options());
  ReplyLog log;
  for (std::uint64_t id = 1; id <= 6; ++id) {
    service.submit(synth_request("t", id, fast_spec()), log.sink("t"), 100);
  }
  service.drain();
  EXPECT_EQ(log.count_status(Status::kOk), 6u);
  service.submit(synth_request("t", 7, fast_spec()), log.sink("t"), 100);
  ASSERT_TRUE(log.wait_for_replies(7, std::chrono::seconds(5)));
  EXPECT_EQ(log.count_status(Status::kShutdown), 1u);
}

TEST(ServeService, InProcessLoadgenReportsZeroLost) {
  AnalysisService::Options options = serial_options();
  options.max_inflight = 2;
  options.default_tenant.max_queue_depth = 256;
  AnalysisService service(options);

  LoadConfig config;
  for (const auto& [name, weight] : std::vector<std::pair<std::string, int>>{
           {"a", 1}, {"b", 2}}) {
    LoadTenantSpec spec;
    spec.name = name;
    spec.weight = static_cast<std::uint32_t>(weight);
    spec.rate_hz = 500.0;
    spec.requests = 40;
    spec.synth = fast_spec();
    config.tenants.push_back(std::move(spec));
    service.configure_tenant({name, static_cast<std::uint32_t>(weight), 256});
  }
  const LoadReport report = run_load(
      config, [&](ServeRequest&& request,
                  std::function<void(const ServeReply&)> done) {
        service.submit(std::move(request),
                       [done = std::move(done)](ServeReply&& reply) {
                         done(reply);
                       },
                       100);
      });
  EXPECT_EQ(report.total_lost, 0u);
  EXPECT_EQ(report.total_submitted, 80u);
  EXPECT_EQ(report.total_ok + report.total_backpressure +
                report.total_shed_deadline,
            80u);
  ASSERT_EQ(report.tenants.size(), 2u);
  for (const TenantLoadReport& t : report.tenants) {
    EXPECT_EQ(t.lost, 0u);
    if (t.ok > 0) {
      EXPECT_GT(t.latency.p50, 0.0);
      EXPECT_GE(t.latency.p99, t.latency.p50);
    }
  }
}

TEST(ServeService, UnixSocketRoundTripThroughServer) {
  const std::string path =
      "/tmp/ara_serve_test_" + std::to_string(::getpid()) + ".sock";
  AnalysisService service(serial_options());
  ServeServer server(service, Endpoint::parse("unix:" + path));
  server.start();

  ServeClient client(server.endpoint());
  const ServeReply reply = client.call(synth_request("t", 42, fast_spec()));
  EXPECT_EQ(reply.request_id, 42u);
  ASSERT_EQ(reply.status, Status::kOk) << reply.message;
  EXPECT_EQ(reply.engine, "sequential_fused");
  ASSERT_EQ(reply.report.layers.size(), 1u);
  EXPECT_GT(reply.report.layers[0].aal, 0.0);

  server.stop();
  EXPECT_EQ(server.connections_accepted(), 1u);
}

TEST(ServeService, TcpPipelinedTransportLosesNothing) {
  AnalysisService::Options options = serial_options();
  options.max_inflight = 2;
  AnalysisService service(options);
  ServeServer server(service, Endpoint::parse("127.0.0.1:0"));
  server.start();
  ASSERT_GT(server.port(), 0);

  LoadConfig config;
  LoadTenantSpec spec;
  spec.name = "wire";
  spec.rate_hz = 0.0;  // as fast as possible
  spec.requests = 25;
  spec.synth = fast_spec();
  config.tenants.push_back(spec);

  {
    ClientTransport transport(server.endpoint());
    const LoadReport report = run_load(
        config, [&](ServeRequest&& request,
                    std::function<void(const ServeReply&)> done) {
          transport.submit(std::move(request), std::move(done));
        });
    transport.finish(std::chrono::milliseconds(10000));
    EXPECT_EQ(report.total_lost, 0u);
    EXPECT_EQ(report.total_ok, 25u);
  }
  server.stop();
}

}  // namespace
}  // namespace ara::serve
