#include "core/ylt.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ara {
namespace {

TEST(Ylt, ZeroInitialised) {
  const Ylt ylt(2, 5);
  EXPECT_EQ(ylt.layer_count(), 2u);
  EXPECT_EQ(ylt.trial_count(), 5u);
  for (std::size_t l = 0; l < 2; ++l) {
    for (TrialId t = 0; t < 5; ++t) {
      EXPECT_DOUBLE_EQ(ylt.annual_loss(l, t), 0.0);
      EXPECT_DOUBLE_EQ(ylt.max_occurrence_loss(l, t), 0.0);
    }
  }
}

TEST(Ylt, ReadWriteRoundTrip) {
  Ylt ylt(2, 3);
  ylt.annual_loss(1, 2) = 42.5;
  ylt.max_occurrence_loss(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(ylt.annual_loss(1, 2), 42.5);
  EXPECT_DOUBLE_EQ(ylt.max_occurrence_loss(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(ylt.annual_loss(0, 0), 0.0);
}

TEST(Ylt, LayerSpansAreContiguous) {
  Ylt ylt(2, 4);
  for (TrialId t = 0; t < 4; ++t) {
    ylt.annual_loss(1, t) = 10.0 + t;
  }
  const double* layer1 = ylt.layer_annual(1);
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_DOUBLE_EQ(layer1[t], 10.0 + static_cast<double>(t));
  }
  const auto vec = ylt.layer_annual_vector(1);
  ASSERT_EQ(vec.size(), 4u);
  EXPECT_DOUBLE_EQ(vec[3], 13.0);
}

TEST(Ylt, MergeTrialBlockCopiesAllLayers) {
  Ylt whole(2, 10);
  Ylt part(2, 3);
  for (TrialId t = 0; t < 3; ++t) {
    part.annual_loss(0, t) = 1.0 + t;
    part.annual_loss(1, t) = 100.0 + t;
    part.max_occurrence_loss(0, t) = 0.5 + t;
  }
  whole.merge_trial_block(part, 4);
  EXPECT_DOUBLE_EQ(whole.annual_loss(0, 4), 1.0);
  EXPECT_DOUBLE_EQ(whole.annual_loss(0, 6), 3.0);
  EXPECT_DOUBLE_EQ(whole.annual_loss(1, 5), 101.0);
  EXPECT_DOUBLE_EQ(whole.max_occurrence_loss(0, 5), 1.5);
  EXPECT_DOUBLE_EQ(whole.annual_loss(0, 3), 0.0);  // outside the block
  EXPECT_DOUBLE_EQ(whole.annual_loss(0, 7), 0.0);
}

TEST(Ylt, MergeRejectsLayerMismatch) {
  Ylt whole(2, 10);
  Ylt part(3, 2);
  EXPECT_THROW(whole.merge_trial_block(part, 0), std::invalid_argument);
}

TEST(Ylt, MergeRejectsOutOfBounds) {
  Ylt whole(1, 10);
  Ylt part(1, 4);
  EXPECT_THROW(whole.merge_trial_block(part, 8), std::invalid_argument);
  EXPECT_NO_THROW(whole.merge_trial_block(part, 6));
}

TEST(Ylt, DefaultConstructedIsEmpty) {
  const Ylt ylt;
  EXPECT_EQ(ylt.layer_count(), 0u);
  EXPECT_EQ(ylt.trial_count(), 0u);
}

}  // namespace
}  // namespace ara
