#include "synth/elt_generator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ara::synth {
namespace {

TEST(EltGenerator, ProducesRequestedRecords) {
  const Catalogue cat = Catalogue::make(10000, 3, 50.0);
  EltGeneratorConfig cfg;
  cfg.record_count = 500;
  const ara::Elt elt = generate_elt(cat, cfg);
  EXPECT_EQ(elt.size(), 500u);
  EXPECT_EQ(elt.catalogue_size(), 10000u);
}

TEST(EltGenerator, EventsAreDistinct) {
  // The Elt constructor rejects duplicates, so construction succeeding
  // is the distinctness proof; double-check the sorted order here.
  const Catalogue cat = Catalogue::make(2000, 3, 50.0);
  EltGeneratorConfig cfg;
  cfg.record_count = 1500;  // dense: 75% of the catalogue
  const ara::Elt elt = generate_elt(cat, cfg);
  for (std::size_t i = 1; i < elt.records().size(); ++i) {
    EXPECT_LT(elt.records()[i - 1].event, elt.records()[i].event);
  }
}

TEST(EltGenerator, LognormalMeanApproximatesTarget) {
  const Catalogue cat = Catalogue::make(100000, 3, 50.0);
  EltGeneratorConfig cfg;
  cfg.record_count = 20000;
  cfg.mean_loss = 1.0e6;
  cfg.cv = 1.0;
  const ara::Elt elt = generate_elt(cat, cfg);
  EXPECT_NEAR(elt.total_loss() / static_cast<double>(elt.size()), 1.0e6,
              0.05e6);
}

TEST(EltGenerator, ParetoMeanApproximatesTarget) {
  const Catalogue cat = Catalogue::make(100000, 3, 50.0);
  EltGeneratorConfig cfg;
  cfg.record_count = 20000;
  cfg.severity = SeverityModel::kPareto;
  cfg.mean_loss = 5.0e5;
  cfg.pareto_alpha = 2.5;  // finite variance for a stable mean test
  const ara::Elt elt = generate_elt(cat, cfg);
  EXPECT_NEAR(elt.total_loss() / static_cast<double>(elt.size()), 5.0e5,
              0.1e5 * 5);
}

TEST(EltGenerator, DeterministicForSeed) {
  const Catalogue cat = Catalogue::make(5000, 3, 50.0);
  EltGeneratorConfig cfg;
  cfg.record_count = 100;
  cfg.seed = 31;
  const ara::Elt a = generate_elt(cat, cfg);
  const ara::Elt b = generate_elt(cat, cfg);
  EXPECT_EQ(a.records(), b.records());
  cfg.seed = 32;
  const ara::Elt c = generate_elt(cat, cfg);
  EXPECT_NE(a.records(), c.records());
}

TEST(EltGenerator, CarriesFinancialTerms) {
  const Catalogue cat = Catalogue::make(5000, 3, 50.0);
  EltGeneratorConfig cfg;
  cfg.record_count = 10;
  cfg.terms.retention = 123.0;
  cfg.terms.share = 0.5;
  const ara::Elt elt = generate_elt(cat, cfg);
  EXPECT_DOUBLE_EQ(elt.terms().retention, 123.0);
  EXPECT_DOUBLE_EQ(elt.terms().share, 0.5);
}

TEST(EltGenerator, RegionalEltStaysInRegion) {
  const Catalogue cat = Catalogue::make(9000, 3, 50.0);
  EltGeneratorConfig cfg;
  cfg.record_count = 200;
  const ara::Elt elt = generate_regional_elt(cat, 1, cfg);
  const PerilRegion& r = cat.regions()[1];
  for (const ara::EventLoss& rec : elt.records()) {
    EXPECT_GE(rec.event, r.first_event);
    EXPECT_LE(rec.event, r.last_event);
  }
}

TEST(EltGenerator, RejectsBadArguments) {
  const Catalogue cat = Catalogue::make(100, 2, 5.0);
  EltGeneratorConfig cfg;
  cfg.record_count = 0;
  EXPECT_THROW(generate_elt(cat, cfg), std::invalid_argument);
  cfg.record_count = 101;  // more records than catalogue events
  EXPECT_THROW(generate_elt(cat, cfg), std::invalid_argument);
  cfg.record_count = 10;
  EXPECT_THROW(generate_regional_elt(cat, 5, cfg), std::invalid_argument);
}

TEST(EltGenerator, FullDensityIsPossible) {
  const Catalogue cat = Catalogue::make(64, 1, 5.0);
  EltGeneratorConfig cfg;
  cfg.record_count = 64;  // every event
  const ara::Elt elt = generate_elt(cat, cfg);
  EXPECT_EQ(elt.size(), 64u);
}

}  // namespace
}  // namespace ara::synth
