#include "synth/scenarios.hpp"

#include <gtest/gtest.h>

namespace ara::synth {
namespace {

TEST(PaperShape, MatchesPublishedWorkload) {
  const WorkloadShape s = paper_shape();
  EXPECT_EQ(s.trials, 1000000u);
  EXPECT_DOUBLE_EQ(s.events_per_trial, 1000.0);
  EXPECT_EQ(s.catalogue_size, 2000000u);
  EXPECT_EQ(s.elts_per_layer, 15u);
  EXPECT_EQ(s.elt_records, 20000u);
  EXPECT_EQ(s.layers, 1u);
  EXPECT_DOUBLE_EQ(s.total_events(), 1.0e9);
}

TEST(TinyScenario, IsSmallAndConsistent) {
  const Scenario s = tiny(32);
  EXPECT_EQ(s.yet.trial_count(), 32u);
  EXPECT_EQ(s.catalogue.size(), 100u);
  EXPECT_EQ(s.portfolio.layer_count(), 2u);
  EXPECT_EQ(s.portfolio.catalogue_size(), s.yet.catalogue_size());
}

TEST(TinyScenario, DeterministicForSeed) {
  const Scenario a = tiny(16, 5);
  const Scenario b = tiny(16, 5);
  EXPECT_EQ(a.yet.occurrences(), b.yet.occurrences());
}

TEST(PaperScaled, PreservesWorkloadShape) {
  const Scenario s = paper_scaled(1000);
  EXPECT_EQ(s.yet.trial_count(), 1000u);        // 1M / 1000
  EXPECT_EQ(s.catalogue.size(), 2000u);         // 2M / 1000
  EXPECT_EQ(s.portfolio.layer_count(), 1u);
  EXPECT_EQ(s.portfolio.layers()[0].elt_indices.size(), 15u);
  // 1000 events per trial regardless of scale.
  EXPECT_NEAR(s.yet.mean_events_per_trial(), 1000.0, 20.0);
}

TEST(PaperScaled, EltDensityScales) {
  const Scenario s = paper_scaled(1000);
  // 20000 / 1000 = 20 records per ELT.
  for (const ara::Elt& e : s.portfolio.elts()) {
    EXPECT_EQ(e.size(), 20u);
  }
}

TEST(PaperScaled, RejectsZeroScale) {
  EXPECT_THROW(paper_scaled(0), std::invalid_argument);
}

TEST(MultiLayerBook, HasManyLayers) {
  const Scenario s = multi_layer_book(8, 200);
  EXPECT_EQ(s.portfolio.layer_count(), 8u);
  EXPECT_EQ(s.yet.trial_count(), 200u);
  for (const ara::Layer& l : s.portfolio.layers()) {
    EXPECT_GE(l.elt_indices.size(), 3u);
    EXPECT_LE(l.elt_indices.size(), 30u);
  }
}

}  // namespace
}  // namespace ara::synth
