// Cross-cutting property suites over randomly generated workloads:
// contract invariants every engine must satisfy regardless of the
// sampled portfolio and YET.
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine_factory.hpp"
#include "core/reference_engine.hpp"
#include "core/metrics/risk_measures.hpp"
#include "synth/scenarios.hpp"

namespace ara {
namespace {

class YltInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(YltInvariants, LossesBoundedByContractTerms) {
  const synth::Scenario s = synth::tiny(64, GetParam());
  ReferenceEngine engine;
  const SimulationResult r = engine.run(s.portfolio, s.yet);
  for (std::size_t l = 0; l < s.portfolio.layer_count(); ++l) {
    const LayerTerms& t = s.portfolio.layers()[l].terms;
    for (TrialId b = 0; b < s.yet.trial_count(); ++b) {
      const double annual = r.ylt.annual_loss(l, b);
      const double occ = r.ylt.max_occurrence_loss(l, b);
      EXPECT_GE(annual, 0.0);
      EXPECT_LE(annual, t.agg_limit + 1e-9);
      EXPECT_GE(occ, 0.0);
      EXPECT_LE(occ, t.occ_limit + 1e-9);
      // A year's aggregate cannot exceed events x occ_limit either.
      EXPECT_LE(annual, static_cast<double>(s.yet.trial_size(b)) *
                                t.occ_limit +
                            1e-9);
    }
  }
}

TEST_P(YltInvariants, TighterRetentionNeverIncreasesLoss) {
  synth::Scenario s = synth::tiny(32, GetParam());
  auto with_occ_retention = [&](double ret) {
    std::vector<Layer> layers;
    for (const Layer& l : s.portfolio.layers()) {
      Layer copy = l;
      copy.terms.occ_retention = ret;
      layers.push_back(copy);
    }
    Portfolio p(s.portfolio.elts(), layers);
    ReferenceEngine engine;
    return engine.run(p, s.yet).ylt;
  };
  const Ylt loose = with_occ_retention(0.0);
  const Ylt tight = with_occ_retention(500.0);
  for (std::size_t l = 0; l < loose.layer_count(); ++l) {
    for (TrialId t = 0; t < loose.trial_count(); ++t) {
      EXPECT_LE(tight.annual_loss(l, t), loose.annual_loss(l, t) + 1e-9);
    }
  }
}

TEST_P(YltInvariants, WiderLimitNeverDecreasesLoss) {
  synth::Scenario s = synth::tiny(32, GetParam() + 100);
  auto with_agg_limit = [&](double lim) {
    std::vector<Layer> layers;
    for (const Layer& l : s.portfolio.layers()) {
      Layer copy = l;
      copy.terms.agg_limit = lim;
      layers.push_back(copy);
    }
    Portfolio p(s.portfolio.elts(), layers);
    ReferenceEngine engine;
    return engine.run(p, s.yet).ylt;
  };
  const Ylt narrow = with_agg_limit(1e4);
  const Ylt wide = with_agg_limit(1e8);
  for (std::size_t l = 0; l < narrow.layer_count(); ++l) {
    for (TrialId t = 0; t < narrow.trial_count(); ++t) {
      EXPECT_GE(wide.annual_loss(l, t), narrow.annual_loss(l, t) - 1e-9);
    }
  }
}

TEST_P(YltInvariants, AnnualAtMostSumOfOccurrenceLosses) {
  // With identity aggregate terms, the annual loss equals the sum of
  // occurrence losses; with any terms it is never larger.
  const synth::Scenario s = synth::tiny(32, GetParam() + 200);
  ReferenceEngine engine;
  const SimulationResult r = engine.run(s.portfolio, s.yet);
  for (std::size_t l = 0; l < s.portfolio.layer_count(); ++l) {
    for (TrialId t = 0; t < s.yet.trial_count(); ++t) {
      EXPECT_LE(r.ylt.annual_loss(l, t),
                static_cast<double>(s.yet.trial_size(t)) *
                        r.ylt.max_occurrence_loss(l, t) +
                    1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, YltInvariants,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// Scaling all losses and all monetary terms by a constant scales the
// YLT by the same constant (positive homogeneity of the XL algebra).
TEST(ScalingInvariance, HomogeneousInMoney) {
  const synth::Scenario s = synth::tiny(32, 55);
  const double k = 3.5;

  std::vector<Elt> scaled_elts;
  for (const Elt& e : s.portfolio.elts()) {
    std::vector<EventLoss> recs = e.records();
    for (EventLoss& r : recs) r.loss *= k;
    FinancialTerms ft = e.terms();
    ft.retention *= k;
    ft.limit *= k;
    scaled_elts.emplace_back(std::move(recs), ft, e.catalogue_size());
  }
  std::vector<Layer> scaled_layers;
  for (const Layer& l : s.portfolio.layers()) {
    Layer copy = l;
    copy.terms.occ_retention *= k;
    copy.terms.occ_limit *= k;
    copy.terms.agg_retention *= k;
    copy.terms.agg_limit *= k;
    scaled_layers.push_back(copy);
  }
  const Portfolio scaled(std::move(scaled_elts), std::move(scaled_layers));

  ReferenceEngine engine;
  const Ylt base = engine.run(s.portfolio, s.yet).ylt;
  const Ylt big = engine.run(scaled, s.yet).ylt;
  for (std::size_t l = 0; l < base.layer_count(); ++l) {
    for (TrialId t = 0; t < base.trial_count(); ++t) {
      EXPECT_NEAR(big.annual_loss(l, t), k * base.annual_loss(l, t),
                  1e-6 * (1.0 + k * base.annual_loss(l, t)));
    }
  }
}

// Appending trials must not change earlier trials' results (trial
// independence — the property the multi-GPU decomposition relies on).
TEST(TrialIndependence, PrefixStableUnderExtension) {
  const synth::Scenario small = synth::tiny(32, 77);
  const synth::Scenario large = synth::tiny(64, 77);  // same seed
  ReferenceEngine engine;
  const Ylt a = engine.run(small.portfolio, small.yet).ylt;
  const Ylt b = engine.run(small.portfolio, large.yet).ylt;
  for (std::size_t l = 0; l < a.layer_count(); ++l) {
    for (TrialId t = 0; t < 32; ++t) {
      EXPECT_EQ(a.annual_loss(l, t), b.annual_loss(l, t));
    }
  }
}

// Event order within a trial matters only through the aggregate terms:
// with identity aggregate terms, shuffling a trial leaves its annual
// loss unchanged.
TEST(OrderSensitivity, IdentityAggTermsOrderInvariant) {
  std::vector<Elt> elts;
  elts.emplace_back(
      std::vector<EventLoss>{{1, 100.0}, {2, 300.0}, {3, 50.0}},
      FinancialTerms::identity(), 5);
  LayerTerms lt;
  lt.occ_retention = 20.0;
  lt.occ_limit = 250.0;
  Portfolio p(std::move(elts), {Layer{"L", {0}, lt}});

  Yet forward(std::vector<std::vector<EventOccurrence>>{
                  {{1, 1}, {2, 2}, {3, 3}}},
              5);
  Yet reversed(std::vector<std::vector<EventOccurrence>>{
                   {{3, 1}, {2, 2}, {1, 3}}},
               5);
  ReferenceEngine engine;
  EXPECT_DOUBLE_EQ(engine.run(p, forward).ylt.annual_loss(0, 0),
                   engine.run(p, reversed).ylt.annual_loss(0, 0));
}

// With binding aggregate terms, order CAN matter only through ties at
// the cap — the cumulative clamp is order-dependent in general. Verify
// a concrete case where early large losses exhaust the aggregate
// limit: totals still agree because the telescoping sum only depends
// on the final cumulative value.
TEST(OrderSensitivity, AggregateCapDependsOnlyOnCumulative) {
  std::vector<Elt> elts;
  elts.emplace_back(std::vector<EventLoss>{{1, 400.0}, {2, 100.0}},
                    FinancialTerms::identity(), 5);
  LayerTerms lt;
  lt.agg_retention = 50.0;
  lt.agg_limit = 300.0;
  Portfolio p(std::move(elts), {Layer{"L", {0}, lt}});
  Yet big_first(
      std::vector<std::vector<EventOccurrence>>{{{1, 1}, {2, 2}}}, 5);
  Yet small_first(
      std::vector<std::vector<EventOccurrence>>{{{2, 1}, {1, 2}}}, 5);
  ReferenceEngine engine;
  EXPECT_DOUBLE_EQ(engine.run(p, big_first).ylt.annual_loss(0, 0),
                   engine.run(p, small_first).ylt.annual_loss(0, 0));
}

// Metrics invariants on real engine output.
TEST(MetricsOnEngineOutput, SummaryInvariantsHold) {
  const synth::Scenario s = synth::multi_layer_book(5, 300, 91);
  ReferenceEngine engine;
  const SimulationResult r = engine.run(s.portfolio, s.yet);
  for (std::size_t l = 0; l < s.portfolio.layer_count(); ++l) {
    const metrics::LayerRiskSummary sum = metrics::summarize_layer(r.ylt, l);
    EXPECT_GE(sum.tvar_99, sum.var_99 - 1e-9);
    EXPECT_GE(sum.pml_250yr, sum.pml_100yr - 1e-9);
    EXPECT_GE(sum.max_annual, sum.pml_250yr - 1e-9);
    EXPECT_GE(sum.aal, 0.0);
    EXPECT_LE(sum.oep_100yr,
              s.portfolio.layers()[l].terms.occ_limit + 1e-9);
  }
}

}  // namespace
}  // namespace ara
