// YetChunkReader / YltChunkWriter: chunked reads reassemble the exact
// YET (binary and compressed formats), the chunked YLT file is byte-
// identical to save_ylt's, resident memory stays bounded by the chunk,
// and truncated/corrupted files fail loudly on every path.
#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>
#include <string>

#include "core/reference_engine.hpp"
#include "io/binary.hpp"
#include "io/compressed_yet.hpp"
#include "io/yet_chunk.hpp"
#include "synth/scenarios.hpp"
#include "testdata.hpp"

namespace ara::io {
namespace {

using testdata::scratch_path;

std::string file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(is),
          std::istreambuf_iterator<char>()};
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void expect_chunks_reassemble(YetChunkReader& reader, const Yet& expected,
                              std::size_t chunk) {
  std::size_t occ_at = 0;
  for (std::size_t begin = 0; begin < expected.trial_count();
       begin += chunk) {
    const std::size_t end =
        std::min(begin + chunk, expected.trial_count());
    const Yet slice = reader.read_chunk(begin, end);
    ASSERT_EQ(slice.trial_count(), end - begin);
    ASSERT_EQ(slice.catalogue_size(), expected.catalogue_size());
    for (std::size_t t = begin; t < end; ++t) {
      const auto got = slice.trial(static_cast<TrialId>(t - begin));
      const auto want = expected.trial(static_cast<TrialId>(t));
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t k = 0; k < want.size(); ++k) {
        EXPECT_EQ(got[k], want[k]);
      }
      occ_at += want.size();
    }
  }
  EXPECT_EQ(occ_at, expected.occurrence_count());
}

TEST(YetChunkReader, BinaryChunksReassembleTheYet) {
  const synth::Scenario s = synth::tiny(30, 3);
  const std::string path = scratch_path("yet_chunk_binary.bin");
  save_yet(path, s.yet);

  YetChunkReader reader(path);
  EXPECT_FALSE(reader.compressed());
  EXPECT_EQ(reader.trial_count(), s.yet.trial_count());
  EXPECT_EQ(reader.catalogue_size(), s.yet.catalogue_size());
  EXPECT_EQ(reader.occurrence_count(), s.yet.occurrence_count());
  for (const std::size_t chunk : {1u, 7u, 15u, 30u, 31u}) {
    expect_chunks_reassemble(reader, s.yet, chunk);
  }
}

TEST(YetChunkReader, BinaryRandomAccessAndBoundedBuffer) {
  const synth::Scenario s = synth::tiny(40, 5);
  const std::string path = scratch_path("yet_chunk_random.bin");
  save_yet(path, s.yet);

  YetChunkReader reader(path);
  // Out-of-order reads are fine in the binary format.
  const Yet tail = reader.read_chunk(30, 40);
  const Yet head = reader.read_chunk(0, 10);
  EXPECT_EQ(head.trial(0).size(), s.yet.trial(0).size());
  EXPECT_EQ(tail.trial(0).size(), s.yet.trial(30).size());

  // The peak resident buffer tracks the largest chunk, not the file.
  const std::size_t whole = s.yet.memory_bytes();
  EXPECT_LT(reader.peak_resident_bytes(), whole);
  EXPECT_GT(reader.peak_resident_bytes(), 0u);
}

TEST(YetChunkReader, CompressedChunksReassembleTheYet) {
  const synth::Scenario s = synth::tiny(26, 7);
  const std::string path = scratch_path("yet_chunk_compressed.bin");
  save_yet_compressed(path, s.yet);

  YetChunkReader reader(path);
  EXPECT_TRUE(reader.compressed());
  EXPECT_EQ(reader.trial_count(), s.yet.trial_count());
  for (const std::size_t chunk : {1u, 9u, 26u, 27u}) {
    // Sequential forward reads; each loop iteration rewinds to 0.
    expect_chunks_reassemble(reader, s.yet, chunk);
  }
  // Rewinding explicitly after a tail read also works.
  reader.read_chunk(20, 26);
  const Yet head = reader.read_chunk(0, 4);
  EXPECT_EQ(head.trial(1).size(), s.yet.trial(1).size());
}

TEST(YetChunkReader, MaxChunkTrialsRespectsBudget) {
  const synth::Scenario s = synth::tiny(32, 9);
  const std::string path = scratch_path("yet_chunk_budget.bin");
  save_yet(path, s.yet);

  YetChunkReader reader(path);
  const std::size_t chunk = reader.max_chunk_trials(4096, 2);
  EXPECT_GE(chunk, 1u);
  EXPECT_LT(chunk, s.yet.trial_count());
  // A tiny budget still makes progress one trial at a time.
  EXPECT_EQ(reader.max_chunk_trials(1, 2), 1u);

  const std::string cpath = scratch_path("yet_chunk_budget_c.bin");
  save_yet_compressed(cpath, s.yet);
  YetChunkReader creader(cpath);
  EXPECT_THROW(creader.max_chunk_trials(4096, 2), std::logic_error);
}

TEST(YetChunkReader, RejectsMissingBadMagicAndVersion) {
  EXPECT_THROW(YetChunkReader(scratch_path("yet_chunk_missing.bin")),
               std::runtime_error);

  const std::string bad = scratch_path("yet_chunk_bad_magic.bin");
  write_bytes(bad, "DEFINITELY NOT A YET FILE");
  EXPECT_THROW(YetChunkReader{bad}, std::runtime_error);

  // A valid file with a bumped version byte is refused, not guessed.
  const synth::Scenario s = synth::tiny(8, 11);
  const std::string vpath = scratch_path("yet_chunk_bad_version.bin");
  save_yet(vpath, s.yet);
  std::string bytes = file_bytes(vpath);
  bytes[8] = 99;  // version is the u32 after the 8-byte magic
  write_bytes(vpath, bytes);
  EXPECT_THROW(YetChunkReader{vpath}, std::runtime_error);
}

TEST(YetChunkReader, TruncatedFilesFailLoudly) {
  const synth::Scenario s = synth::tiny(24, 13);

  // Binary, cut mid-occurrence-data: the header and offsets parse, so
  // construction succeeds, but reading the missing trials throws.
  const std::string bpath = scratch_path("yet_chunk_trunc.bin");
  save_yet(bpath, s.yet);
  const std::string full = file_bytes(bpath);
  write_bytes(bpath, full.substr(0, full.size() - full.size() / 4));
  YetChunkReader reader(bpath);
  EXPECT_THROW(reader.read_chunk(0, reader.trial_count()),
               std::runtime_error);

  // Binary, cut inside the offset index: construction itself throws.
  const std::string hpath = scratch_path("yet_chunk_trunc_header.bin");
  write_bytes(hpath, full.substr(0, 40));
  EXPECT_THROW(YetChunkReader{hpath}, std::runtime_error);

  // Compressed, cut mid-varint.
  const std::string cpath = scratch_path("yet_chunk_trunc_c.bin");
  save_yet_compressed(cpath, s.yet);
  const std::string cfull = file_bytes(cpath);
  write_bytes(cpath, cfull.substr(0, cfull.size() / 2));
  YetChunkReader creader(cpath);
  EXPECT_THROW(creader.read_chunk(0, creader.trial_count()),
               std::runtime_error);
}

TEST(YetChunkReader, CompressedVarintOverflowIsRejectedNotUndefined) {
  // A compressed header followed by 11 continuation bytes: decoding
  // must throw (varint overflow), never shift past 64 bits.
  std::string bytes = "ARAYETC1";
  const std::uint32_t version = 1;
  const std::uint32_t catalogue = 10;
  const std::uint64_t trials = 1;
  bytes.append(reinterpret_cast<const char*>(&version), 4);
  bytes.append(reinterpret_cast<const char*>(&catalogue), 4);
  bytes.append(reinterpret_cast<const char*>(&trials), 8);
  bytes.append(11, '\xff');
  const std::string path = scratch_path("yet_chunk_varint_overflow.bin");
  write_bytes(path, bytes);
  YetChunkReader reader(path);
  EXPECT_THROW(reader.read_chunk(0, 1), std::runtime_error);
}

TEST(YetChunkReader, CorruptRecordsAreRejectedByValidation) {
  const synth::Scenario s = synth::tiny(12, 17);
  const std::string path = scratch_path("yet_chunk_corrupt.bin");
  save_yet(path, s.yet);
  std::string bytes = file_bytes(path);
  // Stomp an event id in the occurrence region with an id far beyond
  // the 100-event catalogue (offset index: 32-byte header + (trials+1)
  // offsets of 8 bytes).
  const std::size_t data_start = 32 + (s.yet.trial_count() + 1) * 8;
  bytes[data_start] = '\xff';
  bytes[data_start + 1] = '\xff';
  write_bytes(path, bytes);
  YetChunkReader reader(path);
  EXPECT_THROW(reader.read_chunk(0, 4), std::invalid_argument);

  // Bad range arguments are caught before any IO.
  EXPECT_THROW(reader.read_chunk(8, 4), std::invalid_argument);
  EXPECT_THROW(reader.read_chunk(0, reader.trial_count() + 1),
               std::invalid_argument);
}

TEST(YltChunkWriter, ChunkedFileIsByteIdenticalToSaveYlt) {
  const synth::Scenario s = synth::tiny(22, 19);
  ReferenceEngine engine;
  const Ylt ylt = engine.run(s.portfolio, s.yet).ylt;

  const std::string whole_path = scratch_path("ylt_whole.bin");
  save_ylt(whole_path, ylt);

  // Append out of order in uneven blocks.
  const std::string chunked_path = scratch_path("ylt_chunked.bin");
  YltChunkWriter writer(chunked_path, ylt.layer_count(), ylt.trial_count());
  const auto block = [&](std::size_t begin, std::size_t end) {
    Ylt part(ylt.layer_count(), end - begin);
    for (std::size_t a = 0; a < ylt.layer_count(); ++a) {
      for (std::size_t t = begin; t < end; ++t) {
        part.annual_loss(a, static_cast<TrialId>(t - begin)) =
            ylt.annual_loss(a, static_cast<TrialId>(t));
        part.max_occurrence_loss(a, static_cast<TrialId>(t - begin)) =
            ylt.max_occurrence_loss(a, static_cast<TrialId>(t));
      }
    }
    return part;
  };
  writer.append(block(15, 22), 15);
  writer.append(block(0, 7), 0);
  writer.append(block(7, 15), 7);
  EXPECT_EQ(writer.trials_written(), 22u);
  writer.close();

  EXPECT_EQ(file_bytes(chunked_path), file_bytes(whole_path));
  const Ylt loaded = load_ylt(chunked_path);
  EXPECT_EQ(loaded.annual_raw(), ylt.annual_raw());
}

TEST(YltChunkWriter, TrailerCatchesBitFlipOnBothReadPaths) {
  const synth::Scenario s = synth::tiny(18, 4);
  ReferenceEngine engine;
  const Ylt ylt = engine.run(s.portfolio, s.yet).ylt;
  const std::string path = scratch_path("ylt_flip.bin");
  YltChunkWriter writer(path, ylt.layer_count(), ylt.trial_count());
  writer.append(ylt, 0);
  writer.close();

  // Flip one bit in the middle of the data region.
  std::string bytes = file_bytes(path);
  const std::size_t header = 8 + 4 + 8 + 8;
  const std::size_t offset = header + (bytes.size() - header) / 3;
  bytes[offset] = static_cast<char>(bytes[offset] ^ 0x04);
  const std::string corrupt_path = scratch_path("ylt_flip_corrupt.bin");
  write_bytes(corrupt_path, bytes);

  // The whole-file loader refuses it...
  EXPECT_THROW(load_ylt(corrupt_path), std::runtime_error);
  // ...and so does the streaming reader, even for a block that only
  // touches a slice of the corrupted row (rows verify on first touch).
  YltChunkReader reader(corrupt_path);
  EXPECT_THROW(
      {
        for (std::size_t begin = 0; begin < reader.trial_count(); begin += 5) {
          reader.read_block(begin,
                            std::min(begin + 5, reader.trial_count()));
        }
      },
      std::runtime_error);

  // The pristine file passes both paths.
  const Ylt whole = load_ylt(path);
  EXPECT_EQ(whole.annual_raw(), ylt.annual_raw());
  YltChunkReader ok(path);
  const Ylt block = ok.read_block(0, ok.trial_count());
  EXPECT_EQ(block.annual_raw(), ylt.annual_raw());
}

TEST(YltChunkWriter, RejectsOverlapGapsAndShapeMismatch) {
  const std::string path = scratch_path("ylt_writer_errors.bin");
  YltChunkWriter writer(path, 2, 10);
  writer.append(Ylt(2, 4), 0);
  EXPECT_THROW(writer.append(Ylt(2, 4), 2), std::invalid_argument);  // overlap
  EXPECT_THROW(writer.append(Ylt(3, 2), 4), std::invalid_argument);  // layers
  EXPECT_THROW(writer.append(Ylt(2, 8), 4), std::invalid_argument);  // bounds
  EXPECT_THROW(writer.close(), std::runtime_error);  // 6 trials missing
  writer.append(Ylt(2, 6), 4);
  writer.close();
  EXPECT_NO_THROW(writer.close());  // idempotent
}

}  // namespace
}  // namespace ara::io
