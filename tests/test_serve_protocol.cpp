// Wire protocol round-trips and corruption handling: every field of
// the request/reply payloads survives encode -> decode bit-for-bit,
// frames survive a real fd (socketpair), and torn/corrupt/oversized
// streams fail loudly instead of half-decoding.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>

#include "serve/protocol.hpp"

namespace ara::serve {
namespace {

ServeRequest full_request() {
  ServeRequest r;
  r.tenant = "gold";
  r.request_id = 0x1234567890abcdefull;
  r.deadline_ms = 2500;
  r.workload = WorkloadRef::kSynth;
  r.synth.trials = 4096;
  r.synth.events_per_trial = 37.5;
  r.synth.catalogue = 54321;
  r.synth.elts = 7;
  r.synth.layers = 3;
  r.synth.seed = 99;
  r.metrics.per_layer = true;
  r.metrics.portfolio = true;
  r.metrics.quantiles = {0.95, 0.99};
  r.metrics.return_periods = {100.0, 250.0};
  r.metrics.ep_curve_points = 64;
  r.metrics.capital_allocation = true;
  r.metrics.capital_p = 0.995;
  r.retention = WireRetention::kSpillToFile;
  r.ylt_path = "/tmp/out.ylt";
  r.shard_trials = 512;
  r.memory_budget_bytes = 1u << 20;
  return r;
}

ServeReply full_reply() {
  ServeReply r;
  r.request_id = 77;
  r.status = Status::kOk;
  r.retry_after_ms = 0;
  r.message = "";
  r.engine = "sequential_fused";
  r.shard_count = 4;
  r.wall_seconds = 0.125;
  r.simulated_seconds = 42.5;
  r.queue_ms = 3.25;

  metrics::LayerMetrics layer;
  layer.label = "layer-0";
  layer.trials = 4096;
  layer.aal = 1.5e6;
  layer.std_dev = 2.5e5;
  layer.max_annual = 9.9e6;
  layer.quantiles = {{0.99, 5.0e6, 6.0e6}};
  layer.pml = {{100.0, 4.5e6}};
  layer.oep = {{100.0, 4.0e6}};
  layer.aep_curve = {1.0, 2.0, 3.0};
  layer.oep_curve = {0.5, 1.5};
  r.report.layers.push_back(layer);

  metrics::PortfolioMetrics portfolio;
  portfolio.totals = layer;
  portfolio.totals.label = "portfolio";
  portfolio.diversification_benefit_tvar = 0.25;
  portfolio.marginal_tvar = {0.5, 0.5};
  portfolio.capital_p = 0.995;
  portfolio.capital_allocation = true;
  r.report.portfolio = portfolio;
  r.report.blocks_consumed = 8;
  r.report.max_block_trials = 512;
  r.report.reservoir_entries = 4096;
  return r;
}

TEST(ServeProtocol, RequestRoundTripPreservesEveryField) {
  const ServeRequest before = full_request();
  const ServeRequest after = decode_request(encode_request(before));

  EXPECT_EQ(after.tenant, before.tenant);
  EXPECT_EQ(after.request_id, before.request_id);
  EXPECT_EQ(after.deadline_ms, before.deadline_ms);
  EXPECT_EQ(after.workload, before.workload);
  EXPECT_EQ(after.dataset, before.dataset);
  EXPECT_EQ(after.synth, before.synth);
  EXPECT_EQ(after.metrics.per_layer, before.metrics.per_layer);
  EXPECT_EQ(after.metrics.portfolio, before.metrics.portfolio);
  EXPECT_EQ(after.metrics.quantiles, before.metrics.quantiles);
  EXPECT_EQ(after.metrics.return_periods, before.metrics.return_periods);
  EXPECT_EQ(after.metrics.ep_curve_points, before.metrics.ep_curve_points);
  EXPECT_EQ(after.metrics.capital_allocation,
            before.metrics.capital_allocation);
  EXPECT_EQ(after.metrics.capital_p, before.metrics.capital_p);
  EXPECT_EQ(after.retention, before.retention);
  EXPECT_EQ(after.ylt_path, before.ylt_path);
  EXPECT_EQ(after.shard_trials, before.shard_trials);
  EXPECT_EQ(after.memory_budget_bytes, before.memory_budget_bytes);
}

TEST(ServeProtocol, DatasetRequestRoundTrip) {
  ServeRequest before;
  before.workload = WorkloadRef::kDataset;
  before.dataset = "paper-1m";
  const ServeRequest after = decode_request(encode_request(before));
  EXPECT_EQ(after.workload, WorkloadRef::kDataset);
  EXPECT_EQ(after.dataset, "paper-1m");
}

TEST(ServeProtocol, ReplyRoundTripPreservesReport) {
  const ServeReply before = full_reply();
  const ServeReply after = decode_reply(encode_reply(before));

  EXPECT_EQ(after.request_id, before.request_id);
  EXPECT_EQ(after.status, before.status);
  EXPECT_EQ(after.engine, before.engine);
  EXPECT_EQ(after.shard_count, before.shard_count);
  EXPECT_EQ(after.wall_seconds, before.wall_seconds);
  EXPECT_EQ(after.simulated_seconds, before.simulated_seconds);
  EXPECT_EQ(after.queue_ms, before.queue_ms);
  ASSERT_EQ(after.report.layers.size(), 1u);
  const metrics::LayerMetrics& layer = after.report.layers[0];
  EXPECT_EQ(layer.label, "layer-0");
  EXPECT_EQ(layer.trials, 4096u);
  EXPECT_EQ(layer.aal, 1.5e6);
  ASSERT_EQ(layer.quantiles.size(), 1u);
  EXPECT_EQ(layer.quantiles[0].tvar, 6.0e6);
  ASSERT_EQ(layer.pml.size(), 1u);
  EXPECT_EQ(layer.pml[0].loss, 4.5e6);
  EXPECT_EQ(layer.aep_curve, before.report.layers[0].aep_curve);
  ASSERT_TRUE(after.report.portfolio.has_value());
  EXPECT_EQ(after.report.portfolio->totals.label, "portfolio");
  EXPECT_EQ(after.report.portfolio->diversification_benefit_tvar, 0.25);
  EXPECT_EQ(after.report.portfolio->marginal_tvar,
            before.report.portfolio->marginal_tvar);
  EXPECT_EQ(after.report.blocks_consumed, 8u);
  EXPECT_EQ(after.report.reservoir_entries, 4096u);
}

TEST(ServeProtocol, ErrorReplyRoundTrip) {
  ServeReply before;
  before.request_id = 5;
  before.status = Status::kRejectedQueueFull;
  before.retry_after_ms = 125;
  before.message = "tenant queue full";
  const ServeReply after = decode_reply(encode_reply(before));
  EXPECT_EQ(after.status, Status::kRejectedQueueFull);
  EXPECT_EQ(after.retry_after_ms, 125u);
  EXPECT_EQ(after.message, "tenant queue full");
  EXPECT_TRUE(is_backpressure(after.status));
}

TEST(ServeProtocol, TrailingBytesRejected) {
  std::string payload = encode_request(full_request());
  payload.push_back('\x00');
  EXPECT_THROW(decode_request(payload), std::runtime_error);
}

TEST(ServeProtocol, TruncatedPayloadRejected) {
  const std::string payload = encode_request(full_request());
  EXPECT_THROW(decode_request(payload.substr(0, payload.size() / 2)),
               std::exception);
}

TEST(ServeProtocol, FrameRoundTripOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

  const std::string payload = encode_request(full_request());
  std::thread writer([&] {
    write_frame(fds[0], MessageType::kRequest, payload);
    ::close(fds[0]);
  });
  std::optional<Frame> frame = read_frame(fds[1]);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, MessageType::kRequest);
  EXPECT_EQ(frame->payload, payload);

  // Peer closed between frames: clean EOF, not an error.
  EXPECT_FALSE(read_frame(fds[1]).has_value());
  writer.join();
  ::close(fds[1]);
}

TEST(ServeProtocol, BadMagicAndMidFrameEofThrow) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string junk = "NOTAFRAME-------";
  ASSERT_EQ(::write(fds[0], junk.data(), junk.size()),
            static_cast<ssize_t>(junk.size()));
  EXPECT_THROW(read_frame(fds[1]), std::runtime_error);
  ::close(fds[0]);
  ::close(fds[1]);

  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string frame = encode_frame(MessageType::kReply, "payload");
  // Cut the frame mid-payload: the reader must throw, not return a
  // short frame.
  ASSERT_EQ(::write(fds[0], frame.data(), frame.size() - 3),
            static_cast<ssize_t>(frame.size() - 3));
  ::close(fds[0]);
  EXPECT_THROW(read_frame(fds[1]), std::runtime_error);
  ::close(fds[1]);
}

TEST(ServeProtocol, VersionMismatchRefused) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::string frame = encode_frame(MessageType::kRequest, "x");
  frame[8] = static_cast<char>(0xEE);  // corrupt the version word
  ASSERT_EQ(::write(fds[0], frame.data(), frame.size()),
            static_cast<ssize_t>(frame.size()));
  ::close(fds[0]);
  EXPECT_THROW(read_frame(fds[1]), std::runtime_error);
  ::close(fds[1]);
}

TEST(ServeProtocol, OversizedFrameRefusedBeforeAllocation) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Hand-build a header claiming a payload far over the cap.
  std::string header(kFrameMagic, sizeof kFrameMagic);
  const std::uint32_t version = kProtocolVersion;
  header.append(reinterpret_cast<const char*>(&version), sizeof version);
  header.push_back(static_cast<char>(MessageType::kRequest));
  // varint for 1 << 40
  std::uint64_t len = 1ull << 40;
  while (len >= 0x80) {
    header.push_back(static_cast<char>((len & 0x7F) | 0x80));
    len >>= 7;
  }
  header.push_back(static_cast<char>(len));
  ASSERT_EQ(::write(fds[0], header.data(), header.size()),
            static_cast<ssize_t>(header.size()));
  EXPECT_THROW(read_frame(fds[1]), std::runtime_error);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ServeProtocol, StatusNamesCoverEveryStatus) {
  EXPECT_EQ(status_name(Status::kOk), "ok");
  EXPECT_EQ(status_name(Status::kShedDeadline), "shed_deadline");
  EXPECT_EQ(status_name(Status::kShutdown), "shutdown");
  EXPECT_FALSE(is_backpressure(Status::kOk));
  EXPECT_FALSE(is_backpressure(Status::kShedDeadline));
  EXPECT_TRUE(is_backpressure(Status::kShedEarly));
}

}  // namespace
}  // namespace ara::serve
