#include "core/metrics/portfolio_rollup.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/metrics/risk_measures.hpp"
#include "core/metrics/stats.hpp"
#include "core/reference_engine.hpp"
#include "synth/rng.hpp"
#include "synth/scenarios.hpp"

namespace ara::metrics {
namespace {

Ylt random_ylt(std::size_t layers, std::size_t trials, std::uint64_t seed) {
  Ylt ylt(layers, trials);
  synth::Xoshiro256StarStar rng(seed);
  for (std::size_t l = 0; l < layers; ++l) {
    for (TrialId t = 0; t < trials; ++t) {
      const double u = rng.next_double();
      ylt.annual_loss(l, t) = u * u * 1e6;  // skewed
    }
  }
  return ylt;
}

TEST(PortfolioRollup, TrialLossesSumLayers) {
  Ylt ylt(2, 3);
  ylt.annual_loss(0, 0) = 10.0;
  ylt.annual_loss(1, 0) = 5.0;
  ylt.annual_loss(0, 2) = 1.0;
  const auto losses = portfolio_trial_losses(ylt);
  EXPECT_EQ(losses, (std::vector<double>{15.0, 0.0, 1.0}));
}

TEST(PortfolioRollup, AalIsSumOfLayerAals) {
  const Ylt ylt = random_ylt(5, 400, 71);
  const PortfolioRollup r = rollup_portfolio(ylt);
  double sum = 0.0;
  for (std::size_t l = 0; l < 5; ++l) {
    sum += mean(ylt.layer_annual_vector(l));
  }
  EXPECT_NEAR(r.aal, sum, 1e-9 * (1.0 + sum));  // expectation is linear
}

TEST(PortfolioRollup, DiversificationBenefitNonNegative) {
  // TVaR is subadditive, so the standalone sum should not be below
  // the portfolio TVaR for independent-ish layers.
  const Ylt ylt = random_ylt(6, 1000, 72);
  const PortfolioRollup r = rollup_portfolio(ylt);
  EXPECT_GE(r.diversification_benefit_tvar99, -1e-6 * r.tvar_99);
}

TEST(PortfolioRollup, ComonotoneLayersNoDiversification) {
  // Identical layers: portfolio = 3x layer; TVaR is positively
  // homogeneous, so the benefit is ~0.
  Ylt ylt(3, 500);
  synth::Xoshiro256StarStar rng(73);
  for (TrialId t = 0; t < 500; ++t) {
    const double loss = rng.next_double() * 1e6;
    for (std::size_t l = 0; l < 3; ++l) {
      ylt.annual_loss(l, t) = loss;
    }
  }
  const PortfolioRollup r = rollup_portfolio(ylt);
  EXPECT_NEAR(r.diversification_benefit_tvar99, 0.0, 1e-6 * r.tvar_99);
}

TEST(PortfolioRollup, MarginalsBoundedByStandalone) {
  const Ylt ylt = random_ylt(4, 800, 74);
  const PortfolioRollup r = rollup_portfolio(ylt);
  ASSERT_EQ(r.marginal_tvar99.size(), 4u);
  for (std::size_t l = 0; l < 4; ++l) {
    const double standalone =
        tail_value_at_risk(ylt.layer_annual_vector(l), 0.99);
    // Marginal contribution of a layer is at most its standalone TVaR
    // (subadditivity) and can be negative only by estimation noise.
    EXPECT_LE(r.marginal_tvar99[l], standalone + 1e-6 * standalone);
  }
}

TEST(PortfolioRollup, SingleLayerDegenerates) {
  const Ylt ylt = random_ylt(1, 300, 75);
  const PortfolioRollup r = rollup_portfolio(ylt);
  EXPECT_NEAR(r.tvar_99,
              tail_value_at_risk(ylt.layer_annual_vector(0), 0.99), 1e-9);
  EXPECT_NEAR(r.diversification_benefit_tvar99, 0.0, 1e-9);
  EXPECT_NEAR(r.marginal_tvar99[0], r.tvar_99, 1e-9);
}

TEST(PortfolioRollup, RejectsEmptyYlt) {
  EXPECT_THROW(rollup_portfolio(Ylt{}), std::invalid_argument);
}

TEST(PortfolioRollup, WorksOnRealEngineOutput) {
  const synth::Scenario s = synth::multi_layer_book(8, 400, 76);
  ReferenceEngine engine;
  const Ylt ylt = engine.run(s.portfolio, s.yet).ylt;
  const PortfolioRollup r = rollup_portfolio(ylt);
  EXPECT_GT(r.aal, 0.0);
  EXPECT_GE(r.tvar_99, r.var_99);
  EXPECT_GE(r.diversification_benefit_tvar99, 0.0);
}

}  // namespace
}  // namespace ara::metrics
