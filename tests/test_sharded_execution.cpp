// The sharding-identity wall: a trial-sharded run must be
// indistinguishable from the monolithic one — bitwise-identical YLT,
// identical op counts, bitwise-identical simulated seconds — for every
// engine kind, across shard sizes bracketing the edge cases (1 trial
// per shard, a size that does not divide the trial count, half, exact,
// and larger-than-the-YET), on portfolios whose layers share ELTs and
// whose layers hold distinct ELTs, and through the reinstatement and
// secondary-uncertainty extension paths. Sharding is exactly
// concatenative in the trial dimension (DESIGN.md §5); this suite is
// the contract.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/failpoint.hpp"
#include "core/session.hpp"
#include "synth/scenarios.hpp"

namespace ara {
namespace {

constexpr std::size_t kTrials = 26;

std::vector<std::size_t> shard_sizes(std::size_t trials) {
  return {1, 7, trials / 2, trials, trials + 1};
}

// A portfolio whose two layers cover disjoint halves of the ELT pool
// (tiny()'s generated layers draw from a shared pool).
Portfolio distinct_elt_portfolio(const synth::Scenario& s) {
  std::vector<Elt> elts = s.portfolio.elts();
  Layer a;
  a.name = "distinct_a";
  a.elt_indices = {0, 1};
  a.terms = s.portfolio.layers()[0].terms;
  Layer b;
  b.name = "distinct_b";
  b.elt_indices = {2, 3};
  b.terms = s.portfolio.layers()[1].terms;
  return Portfolio(std::move(elts), {std::move(a), std::move(b)});
}

AnalysisRequest request_for(const Portfolio& portfolio, const Yet& yet) {
  AnalysisRequest request;
  request.portfolio = &portfolio;
  request.yet = &yet;
  return request;
}

ExecutionPolicy sharded_policy(EngineKind kind, std::size_t shard_trials) {
  ExecutionPolicy policy = ExecutionPolicy::with_engine(kind);
  policy.shard_trials = shard_trials;
  return policy;
}

void expect_identical(const SimulationResult& sharded,
                      const SimulationResult& mono, const char* what) {
  ASSERT_EQ(sharded.ylt.layer_count(), mono.ylt.layer_count()) << what;
  ASSERT_EQ(sharded.ylt.trial_count(), mono.ylt.trial_count()) << what;
  EXPECT_EQ(sharded.ylt.annual_raw(), mono.ylt.annual_raw()) << what;
  EXPECT_EQ(sharded.ylt.max_occurrence_raw(), mono.ylt.max_occurrence_raw())
      << what;
  EXPECT_EQ(sharded.ops, mono.ops) << what;
  // Bitwise, not approximate: the merge reconstitutes the monolithic
  // accounting as a pure function of the merged workload.
  EXPECT_EQ(sharded.simulated_seconds, mono.simulated_seconds) << what;
  EXPECT_EQ(sharded.engine_name, mono.engine_name) << what;
  EXPECT_EQ(sharded.devices, mono.devices) << what;
}

void run_identity_wall(const Portfolio& portfolio, const Yet& yet) {
  AnalysisSession session;
  for (const EngineKind kind : all_engine_kinds()) {
    AnalysisRequest mono_request = request_for(portfolio, yet);
    mono_request.policy = ExecutionPolicy::with_engine(kind);
    const AnalysisResult mono = session.run(mono_request);
    ASSERT_EQ(mono.shard_count, 1u);

    for (const std::size_t shard : shard_sizes(yet.trial_count())) {
      AnalysisRequest request = request_for(portfolio, yet);
      request.policy = sharded_policy(kind, shard);
      const AnalysisResult sharded = session.run(request);

      const std::string what = engine_kind_name(kind) + "/shard=" +
                               std::to_string(shard);
      expect_identical(sharded.simulation, mono.simulation, what.c_str());
      if (shard < yet.trial_count()) {
        EXPECT_GT(sharded.shard_count, 1u) << what;
      }
    }
  }
}

TEST(ShardedExecution, IdentityWallSharedEltPortfolio) {
  const synth::Scenario s = synth::tiny(kTrials, 7);
  run_identity_wall(s.portfolio, s.yet);
}

TEST(ShardedExecution, IdentityWallDistinctEltPortfolio) {
  const synth::Scenario s = synth::tiny(kTrials, 9);
  const Portfolio distinct = distinct_elt_portfolio(s);
  run_identity_wall(distinct, s.yet);
}

// A memory budget (rather than an explicit shard size) must take the
// same sharded path and produce the same bitwise-identical result.
TEST(ShardedExecution, MemoryBudgetShardingIsIdentical) {
  const synth::Scenario s = synth::tiny(kTrials, 11);
  AnalysisSession session;

  AnalysisRequest mono = request_for(s.portfolio, s.yet);
  mono.policy = ExecutionPolicy::with_engine(EngineKind::kMultiCore);

  AnalysisRequest budgeted = request_for(s.portfolio, s.yet);
  ExecutionPolicy policy =
      ExecutionPolicy::with_engine(EngineKind::kMultiCore);
  // Enough for a handful of trials per shard.
  policy.memory_budget_bytes = 2048;
  budgeted.policy = policy;

  const ShardPlan plan = session.shard_plan(s.portfolio, s.yet, policy);
  EXPECT_GT(plan.shard_count(), 1u);
  EXPECT_LT(plan.shard_trials, s.yet.trial_count());

  const AnalysisResult a = session.run(budgeted);
  const AnalysisResult b = session.run(mono);
  EXPECT_EQ(a.shard_count, plan.shard_count());
  expect_identical(a.simulation, b.simulation, "memory budget");
}

// Extension paths shard too: reinstatement outcomes are per-trial
// independent, and the secondary-uncertainty damage draws are keyed by
// the global trial index — shard boundaries must not move either.
TEST(ShardedExecution, ReinstatementPathIsIdentical) {
  const synth::Scenario s = synth::tiny(kTrials, 13);

  ext::ReinstatementTerms terms;
  terms.occ_retention = 500.0;
  terms.occ_limit = 20000.0;
  terms.reinstatements = 2;
  terms.premium_rate = 1.0;
  terms.upfront_premium = 1000.0;

  AnalysisRequest request = request_for(s.portfolio, s.yet);
  request.reinstatement_terms.assign(s.portfolio.layer_count(), terms);
  request.policy = ExecutionPolicy::with_engine(EngineKind::kSequentialFused);

  AnalysisSession session;
  const AnalysisResult mono = session.run(request);
  ASSERT_TRUE(mono.reinstatements.has_value());

  for (const std::size_t shard : shard_sizes(s.yet.trial_count())) {
    AnalysisRequest sharded_request = request;
    sharded_request.policy =
        sharded_policy(EngineKind::kSequentialFused, shard);
    const AnalysisResult sharded = session.run(sharded_request);

    expect_identical(sharded.simulation, mono.simulation, "reinstatement");
    ASSERT_TRUE(sharded.reinstatements.has_value());
    for (std::size_t a = 0; a < mono.reinstatements->layer_count(); ++a) {
      for (TrialId t = 0; t < mono.reinstatements->trial_count(); ++t) {
        const auto& lhs = sharded.reinstatements->at(a, t);
        const auto& rhs = mono.reinstatements->at(a, t);
        EXPECT_EQ(lhs.recovered, rhs.recovered);
        EXPECT_EQ(lhs.reinstated, rhs.reinstated);
        EXPECT_EQ(lhs.reinstatement_premium, rhs.reinstatement_premium);
      }
    }
  }
}

TEST(ShardedExecution, SecondaryUncertaintyPathIsIdentical) {
  const synth::Scenario s = synth::tiny(kTrials, 17);

  AnalysisRequest request = request_for(s.portfolio, s.yet);
  request.secondary_uncertainty = ext::SecondaryUncertaintyConfig{};

  AnalysisSession session;
  const AnalysisResult mono = session.run(request);

  for (const std::size_t shard : shard_sizes(s.yet.trial_count())) {
    AnalysisRequest sharded_request = request;
    ExecutionPolicy policy;
    policy.shard_trials = shard;
    sharded_request.policy = policy;
    const AnalysisResult sharded = session.run(sharded_request);
    expect_identical(sharded.simulation, mono.simulation,
                     "secondary uncertainty");
  }
}

// The metric passes operate on the merged YLT, so their outputs must
// be exactly the one-shot values.
TEST(ShardedExecution, DerivedMetricsMatchOneShot) {
  const synth::Scenario s = synth::tiny(kTrials, 19);

  AnalysisRequest request = request_for(s.portfolio, s.yet);
  request.metrics = MetricsSpec::all();
  request.policy = ExecutionPolicy::with_engine(EngineKind::kSequentialFused);

  AnalysisSession session;
  const AnalysisResult mono = session.run(request);

  AnalysisRequest sharded_request = request;
  sharded_request.policy = sharded_policy(EngineKind::kSequentialFused, 7);
  const AnalysisResult sharded = session.run(sharded_request);

  ASSERT_EQ(sharded.metrics.layers.size(), mono.metrics.layers.size());
  for (std::size_t a = 0; a < mono.metrics.layers.size(); ++a) {
    EXPECT_EQ(sharded.metrics.layers[a].aal, mono.metrics.layers[a].aal);
    EXPECT_EQ(sharded.metrics.layers[a].var_at(0.99),
              mono.metrics.layers[a].var_at(0.99));
    EXPECT_EQ(sharded.metrics.layers[a].tvar_at(0.99),
              mono.metrics.layers[a].tvar_at(0.99));
    EXPECT_EQ(sharded.metrics.layers[a].oep_at(100.0),
              mono.metrics.layers[a].oep_at(100.0));
  }
  ASSERT_TRUE(sharded.metrics.portfolio.has_value());
  ASSERT_TRUE(mono.metrics.portfolio.has_value());
  EXPECT_EQ(sharded.metrics.portfolio->totals.aal,
            mono.metrics.portfolio->totals.aal);
  EXPECT_EQ(sharded.metrics.portfolio->totals.tvar_at(0.99),
            mono.metrics.portfolio->totals.tvar_at(0.99));
}

// Engines also honour a trial range directly (the layer below the
// session): a partial run's rows equal the monolithic rows.
TEST(ShardedExecution, EnginePartialRunsMatchMonolithicRows) {
  const synth::Scenario s = synth::tiny(kTrials, 23);
  for (const EngineKind kind : all_engine_kinds()) {
    const auto engine = make_engine(ExecutionPolicy::with_engine(kind));
    const SimulationResult mono = engine->run(s.portfolio, s.yet);

    EngineContext ctx;
    ctx.trials = TrialRange{5, 17};
    const SimulationResult part = engine->run(s.portfolio, s.yet, ctx);
    ASSERT_EQ(part.trial_begin, 5u);
    ASSERT_EQ(part.ylt.trial_count(), 12u);
    for (std::size_t a = 0; a < mono.ylt.layer_count(); ++a) {
      for (TrialId t = 0; t < 12; ++t) {
        EXPECT_EQ(part.ylt.annual_loss(a, t), mono.ylt.annual_loss(a, t + 5))
            << engine_kind_name(kind);
        EXPECT_EQ(part.ylt.max_occurrence_loss(a, t),
                  mono.ylt.max_occurrence_loss(a, t + 5))
            << engine_kind_name(kind);
      }
    }
  }
}

// A worker that dies mid-shard must surface through the caller's
// future as an error naming the trial range it was running, not as an
// anonymous pool failure (the batch caller needs to know WHICH slice
// of the workload is missing). Forced via the shard.worker_throw
// failpoint; skipped when failpoints are compiled out (Release).
TEST(ShardedExecution, WorkerFailureNamesTheShardRange) {
  if (!fail::compiled_in()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  const synth::Scenario s = synth::tiny(kTrials, 11);
  AnalysisSession session;
  AnalysisRequest request = request_for(s.portfolio, s.yet);
  request.policy = sharded_policy(EngineKind::kSequentialFused, 7);

  fail::Registry::instance().arm("shard.worker_throw", 1.0, /*seed=*/1,
                                 /*value=*/0.0, /*max_fires=*/1);
  try {
    std::vector<AnalysisRequest> batch{request};
    auto futures = session.run_batch_async(batch);
    futures[0].get();
    FAIL() << "injected worker fault did not surface";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shard ["), std::string::npos) << what;
    EXPECT_NE(what.find(") failed: injected shard worker fault"),
              std::string::npos)
        << what;
  }
  fail::Registry::instance().disarm_all();

  // The session is not poisoned: the same request succeeds afterwards
  // and still matches the monolithic run bitwise.
  const AnalysisResult sharded = session.run(request);
  AnalysisRequest mono = request_for(s.portfolio, s.yet);
  mono.policy = ExecutionPolicy::with_engine(EngineKind::kSequentialFused);
  const AnalysisResult reference = session.run(mono);
  EXPECT_EQ(sharded.simulation.ylt.annual_raw(),
            reference.simulation.ylt.annual_raw());
}

}  // namespace
}  // namespace ara
