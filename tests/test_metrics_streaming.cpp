// The streamed-metrics identity wall (DESIGN.md §6): a metric-only
// (YltRetention::kDiscard) sharded run must answer a MetricsSpec with
// the same numbers as computing from the monolithic YLT — bitwise for
// the order-statistic family (VaR/TVaR/PML/OEP/EP-curve/max, whose
// reduction order is pinned), <= 1e-12 relative for the mean family
// (AAL/stddev, whose block-sum association differs) — for every engine
// kind and shard size, while never materializing the layers x trials
// table (asserted by block accounting). Plus the kSpillToFile round
// trip: the spilled file is byte-identical to saving the monolithic
// table, and re-reducing it block by block through YltChunkReader
// reproduces the metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "core/metrics/portfolio_rollup.hpp"
#include "core/metrics/risk_measures.hpp"
#include "core/metrics/streaming.hpp"
#include "core/session.hpp"
#include "io/binary.hpp"
#include "io/yet_chunk.hpp"
#include "synth/scenarios.hpp"

namespace ara {
namespace {

constexpr std::size_t kTrials = 26;
constexpr double kRelTol = 1e-12;

std::vector<std::size_t> shard_sizes(std::size_t trials) {
  return {1, 7, trials / 2, trials, trials + 1};
}

// The wall's spec: both scopes, several quantiles and return periods,
// an EP-curve tail, capital allocation.
MetricsSpec wall_spec() {
  MetricsSpec spec;
  spec.per_layer = true;
  spec.portfolio = true;
  spec.quantiles = {0.9, 0.99};
  spec.return_periods = {10.0, 100.0};
  spec.ep_curve_points = 5;
  spec.capital_allocation = true;
  return spec;
}

void expect_near_rel(double a, double b, const std::string& what) {
  EXPECT_NEAR(a, b, kRelTol * (1.0 + std::abs(b))) << what;
}

// Order-statistic family bitwise, mean family to tolerance.
void expect_metrics_identical(const metrics::LayerMetrics& got,
                              const metrics::LayerMetrics& want,
                              const std::string& what) {
  EXPECT_EQ(got.label, want.label) << what;
  EXPECT_EQ(got.trials, want.trials) << what;
  expect_near_rel(got.aal, want.aal, what + " aal");
  expect_near_rel(got.std_dev, want.std_dev, what + " std_dev");
  EXPECT_EQ(got.max_annual, want.max_annual) << what;
  ASSERT_EQ(got.quantiles.size(), want.quantiles.size()) << what;
  for (std::size_t i = 0; i < want.quantiles.size(); ++i) {
    EXPECT_EQ(got.quantiles[i].p, want.quantiles[i].p) << what;
    EXPECT_EQ(got.quantiles[i].var, want.quantiles[i].var)
        << what << " VaR p=" << want.quantiles[i].p;
    EXPECT_EQ(got.quantiles[i].tvar, want.quantiles[i].tvar)
        << what << " TVaR p=" << want.quantiles[i].p;
  }
  ASSERT_EQ(got.pml.size(), want.pml.size()) << what;
  for (std::size_t i = 0; i < want.pml.size(); ++i) {
    EXPECT_EQ(got.pml[i].loss, want.pml[i].loss)
        << what << " PML T=" << want.pml[i].years;
  }
  ASSERT_EQ(got.oep.size(), want.oep.size()) << what;
  for (std::size_t i = 0; i < want.oep.size(); ++i) {
    EXPECT_EQ(got.oep[i].loss, want.oep[i].loss)
        << what << " OEP T=" << want.oep[i].years;
  }
  EXPECT_EQ(got.aep_curve, want.aep_curve) << what;
  EXPECT_EQ(got.oep_curve, want.oep_curve) << what;
}

void expect_report_identical(const metrics::MetricsReport& got,
                             const metrics::MetricsReport& want,
                             const std::string& what) {
  ASSERT_EQ(got.layers.size(), want.layers.size()) << what;
  for (std::size_t l = 0; l < want.layers.size(); ++l) {
    expect_metrics_identical(got.layers[l], want.layers[l],
                             what + "/layer" + std::to_string(l));
  }
  ASSERT_EQ(got.portfolio.has_value(), want.portfolio.has_value()) << what;
  if (want.portfolio) {
    expect_metrics_identical(got.portfolio->totals, want.portfolio->totals,
                             what + "/portfolio");
    // Capital allocation is pure order-statistic arithmetic: bitwise.
    EXPECT_EQ(got.portfolio->diversification_benefit_tvar,
              want.portfolio->diversification_benefit_tvar)
        << what;
    EXPECT_EQ(got.portfolio->marginal_tvar, want.portfolio->marginal_tvar)
        << what;
  }
}

AnalysisRequest request_for(const Portfolio& portfolio, const Yet& yet) {
  AnalysisRequest request;
  request.portfolio = &portfolio;
  request.yet = &yet;
  request.metrics = wall_spec();
  return request;
}

// (a) The acceptance wall: all 6 engine kinds x shard sizes
// {1, 7, T/2, T, T+1}, kDiscard streamed vs monolithic kKeep.
TEST(StreamedMetrics, DiscardIdentityWallAllKindsAllShardSizes) {
  const synth::Scenario s = synth::tiny(kTrials, 29);
  AnalysisSession session;

  for (const EngineKind kind : all_engine_kinds()) {
    AnalysisRequest mono = request_for(s.portfolio, s.yet);
    mono.policy = ExecutionPolicy::with_engine(kind);
    const AnalysisResult reference = session.run(mono);
    ASSERT_FALSE(reference.metrics.empty());
    EXPECT_EQ(reference.metrics.blocks_consumed, 1u);
    EXPECT_EQ(reference.metrics.max_block_trials, kTrials);

    for (const std::size_t shard : shard_sizes(s.yet.trial_count())) {
      AnalysisRequest streamed = request_for(s.portfolio, s.yet);
      ExecutionPolicy policy = ExecutionPolicy::with_engine(kind);
      policy.shard_trials = shard;
      streamed.policy = policy;
      streamed.ylt_retention = YltRetention::kDiscard;
      const AnalysisResult result = session.run(streamed);

      const std::string what =
          engine_kind_name(kind) + "/shard=" + std::to_string(shard);
      expect_report_identical(result.metrics, reference.metrics, what);

      // A metric-only run hands back no table...
      EXPECT_EQ(result.simulation.ylt.trial_count(), 0u) << what;
      EXPECT_EQ(result.simulation.ylt.layer_count(), 0u) << what;
      // ...and, when sharded, never saw more than one shard at a time:
      // block accounting proves the full layers x trials table was
      // never assembled on the streamed path.
      if (shard < kTrials) {
        const std::size_t expect_shards = (kTrials + shard - 1) / shard;
        EXPECT_EQ(result.shard_count, expect_shards) << what;
        EXPECT_EQ(result.metrics.blocks_consumed, expect_shards) << what;
        EXPECT_LE(result.metrics.max_block_trials, shard) << what;
      }
      // The reservoirs hold the spec's tail, not the trial dimension.
      EXPECT_GT(result.metrics.reservoir_entries, 0u) << what;
    }
  }
}

// (b) kSpillToFile: byte-identical file, plus the round trip — reload
// through YltChunkReader block by block, re-reduce, same metrics.
TEST(StreamedMetrics, SpillToFileRoundTrip) {
  const synth::Scenario s = synth::multi_layer_book(4, 300, 41);
  AnalysisSession session;

  const std::string dir = ::testing::TempDir();
  const std::string mono_path = dir + "/ara_mono_ylt.bin";
  const std::string spill_path = dir + "/ara_spill_ylt.bin";

  AnalysisRequest mono = request_for(s.portfolio, s.yet);
  mono.policy = ExecutionPolicy::with_engine(EngineKind::kSequentialFused);
  const AnalysisResult reference = session.run(mono);
  io::save_ylt(mono_path, reference.simulation.ylt);

  AnalysisRequest spill = request_for(s.portfolio, s.yet);
  ExecutionPolicy policy =
      ExecutionPolicy::with_engine(EngineKind::kSequentialFused);
  policy.shard_trials = 37;  // does not divide 300
  spill.policy = policy;
  spill.ylt_retention = YltRetention::kSpillToFile;
  spill.ylt_path = spill_path;
  const AnalysisResult spilled = session.run(spill);

  EXPECT_EQ(spilled.ylt_path, spill_path);
  EXPECT_EQ(spilled.simulation.ylt.trial_count(), 0u);
  expect_report_identical(spilled.metrics, reference.metrics, "spill");

  // Byte-identical to saving the monolithic table.
  const auto slurp = [](const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
  };
  const std::string mono_bytes = slurp(mono_path);
  ASSERT_FALSE(mono_bytes.empty());
  EXPECT_EQ(slurp(spill_path), mono_bytes);

  // Round trip 1: whole-file reload, monolithic recompute.
  const Ylt reloaded = io::load_ylt(spill_path);
  std::vector<std::string> labels;
  for (const Layer& layer : s.portfolio.layers()) labels.push_back(layer.name);
  expect_report_identical(
      metrics::compute_metrics(reloaded, labels, wall_spec()),
      reference.metrics, "reloaded");

  // Round trip 2: block-streamed reload through YltChunkReader — the
  // out-of-core path — re-reduced with a chunk size unrelated to the
  // spill's shard size.
  io::YltChunkReader reader(spill_path);
  ASSERT_EQ(reader.layer_count(), s.portfolio.layer_count());
  ASSERT_EQ(reader.trial_count(), s.yet.trial_count());
  metrics::StreamingMetricsReducer reducer(labels, reader.trial_count(),
                                           wall_spec());
  constexpr std::size_t kChunk = 52;
  for (std::size_t begin = 0; begin < reader.trial_count(); begin += kChunk) {
    const std::size_t end = std::min(begin + kChunk, reader.trial_count());
    reducer.consume(reader.read_block(begin, end), begin);
  }
  expect_report_identical(reducer.finish(), spilled.metrics, "re-reduced");
  // Bounded memory on the read side too.
  EXPECT_LE(reader.peak_resident_bytes(),
            reader.layer_count() * kChunk * 2 * sizeof(double));
}

// (c) The monolithic reducer path reproduces the classic per-layer
// summary and portfolio rollup bitwise — one formula set, two APIs.
TEST(StreamedMetrics, MatchesLegacySummariesBitwise) {
  const synth::Scenario s = synth::multi_layer_book(4, 300, 77);
  const auto engine =
      make_engine(ExecutionPolicy::with_engine(EngineKind::kSequentialFused));
  const Ylt ylt = engine->run(s.portfolio, s.yet).ylt;

  std::vector<std::string> labels;
  for (const Layer& layer : s.portfolio.layers()) labels.push_back(layer.name);

  const metrics::MetricsReport report =
      metrics::compute_metrics(ylt, labels, MetricsSpec::all());
  ASSERT_EQ(report.layers.size(), ylt.layer_count());
  for (std::size_t l = 0; l < ylt.layer_count(); ++l) {
    const metrics::LayerRiskSummary legacy = metrics::summarize_layer(ylt, l);
    const metrics::LayerMetrics& m = report.layers[l];
    EXPECT_EQ(m.aal, legacy.aal);
    EXPECT_EQ(m.std_dev, legacy.std_dev);
    EXPECT_EQ(m.var_at(0.99), legacy.var_99);
    EXPECT_EQ(m.tvar_at(0.99), legacy.tvar_99);
    EXPECT_EQ(m.pml_at(100.0), legacy.pml_100yr);
    EXPECT_EQ(m.pml_at(250.0), legacy.pml_250yr);
    EXPECT_EQ(m.oep_at(100.0), legacy.oep_100yr);
    EXPECT_EQ(m.max_annual, legacy.max_annual);
  }

  const metrics::PortfolioRollup rollup = metrics::rollup_portfolio(ylt);
  ASSERT_TRUE(report.portfolio.has_value());
  const metrics::PortfolioMetrics& pm = *report.portfolio;
  EXPECT_EQ(pm.totals.aal, rollup.aal);
  EXPECT_EQ(pm.totals.var_at(0.99), rollup.var_99);
  EXPECT_EQ(pm.totals.tvar_at(0.99), rollup.tvar_99);
  EXPECT_EQ(pm.diversification_benefit_tvar,
            rollup.diversification_benefit_tvar99);
  ASSERT_EQ(pm.marginal_tvar.size(), rollup.marginal_tvar99.size());
  for (std::size_t l = 0; l < pm.marginal_tvar.size(); ++l) {
    EXPECT_EQ(pm.marginal_tvar[l], rollup.marginal_tvar99[l]);
  }
}

// (d) Boundary-tie torture: a tie band that straddles the reservoir
// floor (the aggregate-limit-clamp shape) must still give exact TVaR —
// the drop ledger replays the evicted ties.
TEST(StreamedMetrics, TailReservoirExactAcrossTieBands) {
  // Ascending: 16 x 100, 15 x 250, 1 x 400. At p = 0.9 the reservoir
  // keeps 5 of the 16 values >= VaR = 250.
  std::vector<double> values;
  for (int i = 0; i < 16; ++i) values.push_back(100.0);
  for (int i = 0; i < 15; ++i) values.push_back(250.0);
  values.push_back(400.0);
  const std::size_t n = values.size();

  Ylt ylt(1, n);
  for (std::size_t t = 0; t < n; ++t) {
    ylt.annual_loss(0, t) = values[t];
    ylt.max_occurrence_loss(0, t) = values[t];
  }

  MetricsSpec spec;
  spec.per_layer = true;
  spec.quantiles = {0.9};
  spec.return_periods = {8.0};

  const metrics::MetricsReport mono =
      metrics::compute_metrics(ylt, {"tied"}, spec);
  EXPECT_EQ(mono.layers[0].var_at(0.9),
            metrics::value_at_risk(values, 0.9));
  EXPECT_EQ(mono.layers[0].tvar_at(0.9),
            metrics::tail_value_at_risk(values, 0.9));

  // Streamed in two out-of-order blocks: same numbers, bit for bit.
  metrics::StreamingMetricsReducer reducer({"tied"}, n, spec);
  Ylt tail_block(1, n - 10);
  for (std::size_t t = 0; t < n - 10; ++t) {
    tail_block.annual_loss(0, t) = values[10 + t];
    tail_block.max_occurrence_loss(0, t) = values[10 + t];
  }
  Ylt head_block(1, 10);
  for (std::size_t t = 0; t < 10; ++t) {
    head_block.annual_loss(0, t) = values[t];
    head_block.max_occurrence_loss(0, t) = values[t];
  }
  reducer.consume(tail_block, 10);  // completion order != trial order
  reducer.consume(head_block, 0);
  const metrics::MetricsReport streamed = reducer.finish();
  EXPECT_EQ(streamed.layers[0].var_at(0.9), mono.layers[0].var_at(0.9));
  EXPECT_EQ(streamed.layers[0].tvar_at(0.9), mono.layers[0].tvar_at(0.9));
  EXPECT_EQ(streamed.layers[0].oep_at(8.0), mono.layers[0].oep_at(8.0));
  EXPECT_EQ(streamed.layers[0].max_annual, 400.0);

  // Degenerate all-equal sample (a layer pinned at its limit): TVaR
  // must equal the common value exactly, streamed or not.
  Ylt flat(1, 20);
  for (std::size_t t = 0; t < 20; ++t) {
    flat.annual_loss(0, t) = 7.5;
    flat.max_occurrence_loss(0, t) = 7.5;
  }
  const metrics::MetricsReport flat_report =
      metrics::compute_metrics(flat, {"flat"}, spec);
  EXPECT_EQ(flat_report.layers[0].var_at(0.9), 7.5);
  EXPECT_EQ(flat_report.layers[0].tvar_at(0.9), 7.5);
}

// (e) The EP-curve tail is exactly the top-k of the sorted sample.
TEST(StreamedMetrics, EpCurveTailMatchesSortedSample) {
  const synth::Scenario s = synth::tiny(kTrials, 31);
  AnalysisSession session;
  AnalysisRequest request = request_for(s.portfolio, s.yet);
  request.policy = ExecutionPolicy::with_engine(EngineKind::kSequentialFused);
  const AnalysisResult result = session.run(request);

  AnalysisRequest keep = request_for(s.portfolio, s.yet);
  keep.policy = ExecutionPolicy::with_engine(EngineKind::kSequentialFused);
  const Ylt& ylt = session.run(keep).simulation.ylt;
  for (std::size_t l = 0; l < ylt.layer_count(); ++l) {
    std::vector<double> annual = ylt.layer_annual_vector(l);
    std::sort(annual.begin(), annual.end(), std::greater<>());
    annual.resize(5);  // wall_spec().ep_curve_points
    EXPECT_EQ(result.metrics.layers[l].aep_curve, annual);
  }
}

// (f) Request validation: bad spec points and a pathless spill fail
// loudly before any work runs.
TEST(StreamedMetrics, SpecAndRetentionValidation) {
  const synth::Scenario s = synth::tiny(8, 3);
  AnalysisSession session;

  AnalysisRequest bad_quantile = request_for(s.portfolio, s.yet);
  bad_quantile.metrics.quantiles = {1.5};
  EXPECT_THROW(session.run(bad_quantile), std::invalid_argument);

  AnalysisRequest bad_period = request_for(s.portfolio, s.yet);
  bad_period.metrics.return_periods = {1.0};
  EXPECT_THROW(session.run(bad_period), std::invalid_argument);

  AnalysisRequest pathless = request_for(s.portfolio, s.yet);
  pathless.ylt_retention = YltRetention::kSpillToFile;
  EXPECT_THROW(session.run(pathless), std::invalid_argument);

  // Extension-only runs produce no YLT: asking to spill one is a
  // request error, not a silent no-op.
  AnalysisRequest ext_only = request_for(s.portfolio, s.yet);
  ext_only.core_simulation = false;
  ext_only.metrics = MetricsSpec::none();
  ext_only.reinstatement_terms.assign(s.portfolio.layer_count(),
                                      ext::ReinstatementTerms{});
  ext_only.ylt_retention = YltRetention::kSpillToFile;
  ext_only.ylt_path = ::testing::TempDir() + "/ara_ext_only.bin";
  EXPECT_THROW(session.run(ext_only), std::invalid_argument);
}

// (g) metrics_for: by-name lookup into the report.
TEST(StreamedMetrics, MetricsForLooksUpByLayerName) {
  const synth::Scenario s = synth::multi_layer_book(3, 60, 9);
  AnalysisSession session(
      ExecutionPolicy::with_engine(EngineKind::kSequentialFused));
  AnalysisRequest request = request_for(s.portfolio, s.yet);
  const AnalysisResult result = session.run(request);

  for (std::size_t l = 0; l < s.portfolio.layer_count(); ++l) {
    const metrics::LayerMetrics* m =
        result.metrics_for(s.portfolio.layers()[l].name);
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m, &result.metrics.layers[l]);
  }
  EXPECT_EQ(result.metrics_for("no_such_layer"), nullptr);
}

// (h) Legacy shims map onto the spec exactly.
TEST(StreamedMetrics, SelectionShimsMatchPresets) {
  const MetricsSpec from_all =
      MetricsSpec::from_selection(MetricsSelection::all());
  EXPECT_TRUE(from_all.per_layer);
  EXPECT_TRUE(from_all.portfolio);
  EXPECT_TRUE(from_all.capital_allocation);

  const MetricsSpec from_none =
      MetricsSpec::from_selection(MetricsSelection::none());
  EXPECT_FALSE(from_none.any());

  EXPECT_TRUE(MetricsSpec::layer_summaries().per_layer);
  EXPECT_FALSE(MetricsSpec::layer_summaries().portfolio);
  EXPECT_TRUE(MetricsSpec::portfolio_rollup().portfolio);
}

// (i2) Overlapping or duplicate blocks would double-count tail values
// — silently wrong metrics — so the reducer rejects them loudly, like
// ShardMerger does.
TEST(StreamedMetrics, ReducerRejectsOverlappingBlocks) {
  MetricsSpec spec;
  spec.per_layer = true;
  metrics::StreamingMetricsReducer reducer({"l"}, 14, spec);
  const Ylt block(1, 7);
  reducer.consume(block, 0);
  EXPECT_THROW(reducer.consume(block, 0), std::logic_error);  // duplicate
  EXPECT_THROW(reducer.consume(block, 5), std::logic_error);  // overlap
  reducer.consume(block, 7);
  EXPECT_EQ(reducer.finish().blocks_consumed, 2u);
}

// (i3) A failed spill must not leave a valid-looking, zero-filled YLT
// file behind (the writer pre-extends the file before shards run).
TEST(StreamedMetrics, FailedSpillLeavesNoFile) {
  const synth::Scenario s = synth::tiny(kTrials, 37);
  AnalysisSession session;
  const std::string path = ::testing::TempDir() + "/ara_failed_spill.bin";

  AnalysisRequest request = request_for(s.portfolio, s.yet);
  ExecutionPolicy policy =
      ExecutionPolicy::with_engine(EngineKind::kGpuOptimized);
  EngineConfig cfg = paper_config(EngineKind::kGpuOptimized);
  cfg.block_threads = 128;
  cfg.chunk_size = 512;  // infeasible launch shape: the engine throws
  policy.config = cfg;
  policy.shard_trials = 7;
  request.policy = policy;
  request.ylt_retention = YltRetention::kSpillToFile;
  request.ylt_path = path;

  EXPECT_THROW(session.run(request), std::exception);
  std::ifstream probe(path, std::ios::binary);
  EXPECT_FALSE(probe.good()) << "aborted spill left " << path;
}

// (i4) ...but a failure *before* any writer touches the path must not
// delete a pre-existing file this run never wrote to.
TEST(StreamedMetrics, EarlyFailureSparesPreexistingSpillFile) {
  const synth::Scenario s = synth::tiny(8, 5);
  AnalysisSession session;
  const std::string path = ::testing::TempDir() + "/ara_prior_spill.bin";
  {
    std::ofstream os(path, std::ios::binary);
    os << "prior run's output";
  }

  AnalysisRequest request = request_for(s.portfolio, s.yet);
  request.metrics.quantiles = {2.0};  // invalid: fails validation
  request.ylt_retention = YltRetention::kSpillToFile;
  request.ylt_path = path;
  EXPECT_THROW(session.run(request), std::invalid_argument);

  std::ifstream probe(path, std::ios::binary);
  std::string content;
  std::getline(probe, content);
  EXPECT_EQ(content, "prior run's output");
  std::remove(path.c_str());
}

// (i) YltChunkReader rejects files that are not YLTs.
TEST(StreamedMetrics, YltChunkReaderRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/ara_not_a_ylt.bin";
  {
    std::ofstream os(path, std::ios::binary);
    os << "definitely not a YLT header";
  }
  EXPECT_THROW(io::YltChunkReader{path}, std::runtime_error);
}

}  // namespace
}  // namespace ara
