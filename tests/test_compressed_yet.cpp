#include "io/compressed_yet.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "io/binary.hpp"
#include "synth/scenarios.hpp"
#include "testdata.hpp"

namespace ara::io {
namespace {

TEST(CompressedYet, RoundTripPreservesEverything) {
  const synth::Scenario s = synth::tiny(64, 51);
  std::stringstream buf;
  write_yet_compressed(buf, s.yet);
  const Yet loaded = read_yet_compressed(buf);
  EXPECT_EQ(loaded.catalogue_size(), s.yet.catalogue_size());
  EXPECT_EQ(loaded.trial_count(), s.yet.trial_count());
  EXPECT_EQ(loaded.occurrences(), s.yet.occurrences());
  EXPECT_EQ(loaded.offsets(), s.yet.offsets());
}

TEST(CompressedYet, RoundTripPaperShapedWorkload) {
  const synth::Scenario s = synth::paper_scaled(5000, 52);
  std::stringstream buf;
  write_yet_compressed(buf, s.yet);
  const Yet loaded = read_yet_compressed(buf);
  EXPECT_EQ(loaded.occurrences(), s.yet.occurrences());
}

TEST(CompressedYet, SmallerThanUncompressedFormat) {
  const synth::Scenario s = synth::paper_scaled(5000, 53);
  std::stringstream raw, compressed;
  write_yet(raw, s.yet);
  write_yet_compressed(compressed, s.yet);
  const auto raw_size = raw.str().size();
  const auto comp_size = compressed.str().size();
  // Varint deltas should cut well below the 8 B/occurrence raw format
  // (plus its 8 B/trial offsets).
  EXPECT_LT(comp_size * 3, raw_size * 2);  // at least 1.5x smaller
}

TEST(CompressedYet, SizePredictionExact) {
  const synth::Scenario s = synth::tiny(32, 54);
  std::stringstream buf;
  write_yet_compressed(buf, s.yet);
  EXPECT_EQ(buf.str().size(), compressed_yet_bytes(s.yet));
}

TEST(CompressedYet, EmptyYetRoundTrips) {
  const Yet empty(std::vector<std::vector<EventOccurrence>>{}, 10);
  std::stringstream buf;
  write_yet_compressed(buf, empty);
  const Yet loaded = read_yet_compressed(buf);
  EXPECT_EQ(loaded.trial_count(), 0u);
  EXPECT_EQ(loaded.catalogue_size(), 10u);
}

TEST(CompressedYet, EmptyTrialsPreserved) {
  const Yet yet(
      std::vector<std::vector<EventOccurrence>>{{}, {{3, 7}}, {}}, 10);
  std::stringstream buf;
  write_yet_compressed(buf, yet);
  const Yet loaded = read_yet_compressed(buf);
  EXPECT_EQ(loaded.trial_size(0), 0u);
  EXPECT_EQ(loaded.trial_size(1), 1u);
  EXPECT_EQ(loaded.trial_size(2), 0u);
}

TEST(CompressedYet, RejectsBadMagic) {
  std::stringstream buf;
  buf << "WRONGMAGICDATA";
  EXPECT_THROW(read_yet_compressed(buf), std::runtime_error);
}

TEST(CompressedYet, RejectsTruncation) {
  const synth::Scenario s = synth::tiny(16, 55);
  std::stringstream buf;
  write_yet_compressed(buf, s.yet);
  const std::string full = buf.str();
  // Truncate at several points through the stream; every cut must
  // throw, never crash or return a partial YET silently.
  for (const std::size_t cut :
       {std::size_t{4}, std::size_t{12}, full.size() / 4, full.size() / 2,
        full.size() - 1}) {
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_THROW(read_yet_compressed(truncated), std::runtime_error)
        << "cut at " << cut;
  }
}

TEST(CompressedYet, RejectsOutOfRangeEvent) {
  // Hand-craft a stream with event id beyond the catalogue.
  std::stringstream buf;
  const Yet yet(std::vector<std::vector<EventOccurrence>>{{{5, 1}}}, 10);
  write_yet_compressed(buf, yet);
  std::string bytes = buf.str();
  // The event varint (5) is the first byte after header + trial count
  // varint: header = 8+4+4+8 = 24, count varint = 1 byte -> index 25.
  ASSERT_EQ(bytes[25], 5);
  bytes[25] = 11;  // catalogue is 10
  std::stringstream bad(bytes);
  EXPECT_THROW(read_yet_compressed(bad), std::runtime_error);
}

TEST(CompressedYet, FileHelpersRoundTrip) {
  const synth::Scenario s = synth::tiny(8, 56);
  const std::string path = testdata::scratch_path("yet_compressed.bin");
  save_yet_compressed(path, s.yet);
  const Yet loaded = load_yet_compressed(path);
  EXPECT_EQ(loaded.occurrences(), s.yet.occurrences());
  EXPECT_THROW(
      load_yet_compressed(testdata::scratch_path("missing_compressed.bin")),
      std::runtime_error);
}

}  // namespace
}  // namespace ara::io
