// Single source of truth for test fixture paths. Every test that
// touches the filesystem routes its paths through `scratch_path`, so
// the suite behaves identically from any build or working directory —
// no test may construct a cwd-relative data path of its own.
#pragma once

#include <gtest/gtest.h>

#include <string>

namespace ara::testdata {

/// Absolute path for a fixture file inside the per-run scratch
/// directory (gtest's TempDir — never the current working directory).
/// Prefix file names with the test suite name to keep concurrently
/// running test binaries from colliding.
inline std::string scratch_path(const std::string& name) {
  std::string dir = ::testing::TempDir();
  if (dir.empty() || dir.back() != '/') dir += '/';
  return dir + name;
}

}  // namespace ara::testdata
