#include "synth/catalogue.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ara::synth {
namespace {

TEST(Catalogue, MakeTilesIdSpace) {
  const Catalogue cat = Catalogue::make(1000, 4, 100.0);
  EXPECT_EQ(cat.size(), 1000u);
  ASSERT_EQ(cat.regions().size(), 4u);
  ara::EventId expect = 1;
  for (const PerilRegion& r : cat.regions()) {
    EXPECT_EQ(r.first_event, expect);
    expect = r.last_event + 1;
  }
  EXPECT_EQ(expect, 1001u);
}

TEST(Catalogue, MakeDistributesRateProportionally) {
  const Catalogue cat = Catalogue::make(1000, 4, 100.0);
  EXPECT_NEAR(cat.total_annual_rate(), 100.0, 1e-9);
  for (const PerilRegion& r : cat.regions()) {
    EXPECT_NEAR(r.annual_rate,
                100.0 * r.event_count() / 1000.0, 1e-9);
  }
}

TEST(Catalogue, MakeHandlesUnevenSplit) {
  const Catalogue cat = Catalogue::make(10, 3, 30.0);
  ASSERT_EQ(cat.regions().size(), 3u);
  EXPECT_EQ(cat.regions()[0].event_count(), 4u);
  EXPECT_EQ(cat.regions()[1].event_count(), 3u);
  EXPECT_EQ(cat.regions()[2].event_count(), 3u);
}

TEST(Catalogue, MakeAssignsSeasonalityProfiles) {
  const Catalogue cat = Catalogue::make(300, 3, 30.0);
  EXPECT_GT(cat.regions()[0].seasonality, 0.5);   // hurricane profile
  EXPECT_DOUBLE_EQ(cat.regions()[1].seasonality, 0.0);  // earthquake
  EXPECT_GT(cat.regions()[2].seasonality, 0.0);   // flood
}

TEST(Catalogue, MakeRejectsBadArguments) {
  EXPECT_THROW(Catalogue::make(0, 1, 1.0), std::invalid_argument);
  EXPECT_THROW(Catalogue::make(10, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(Catalogue::make(3, 10, 1.0), std::invalid_argument);
}

TEST(Catalogue, ExplicitRegionsValidated) {
  PerilRegion a{"a", 1, 50, 5.0, 0.0, 1, 365};
  PerilRegion b{"b", 51, 100, 5.0, 0.0, 1, 365};
  EXPECT_NO_THROW(Catalogue(100, {a, b}));

  // Gap between regions.
  PerilRegion gap{"gap", 60, 100, 5.0, 0.0, 1, 365};
  EXPECT_THROW(Catalogue(100, {a, gap}), std::invalid_argument);

  // Not covering the full space.
  EXPECT_THROW(Catalogue(200, {a, b}), std::invalid_argument);

  // Bad seasonality.
  PerilRegion bad_season{"s", 1, 100, 5.0, 1.5, 1, 365};
  EXPECT_THROW(Catalogue(100, {bad_season}), std::invalid_argument);

  // Inverted season window.
  PerilRegion bad_window{"w", 1, 100, 5.0, 0.5, 200, 100};
  EXPECT_THROW(Catalogue(100, {bad_window}), std::invalid_argument);

  // Negative rate.
  PerilRegion bad_rate{"r", 1, 100, -1.0, 0.0, 1, 365};
  EXPECT_THROW(Catalogue(100, {bad_rate}), std::invalid_argument);
}

TEST(Catalogue, PaperScaleCatalogueConstructs) {
  // 2M events, the paper's catalogue size; regions only hold ranges so
  // this is cheap.
  const Catalogue cat = Catalogue::make(2000000, 12, 1000.0);
  EXPECT_EQ(cat.size(), 2000000u);
  EXPECT_NEAR(cat.total_annual_rate(), 1000.0, 1e-9);
}

}  // namespace
}  // namespace ara::synth
