// Property tests for the shard merge algebra (core/shard.hpp): the
// merge of partial SimulationResults is associative and independent of
// completion order (shards may finish in any interleaving), and risk
// measures computed from a merged YLT equal the one-shot values
// exactly. Plus the plan arithmetic the scheduler relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

#include "core/cpu_engines.hpp"
#include "core/metrics/portfolio_rollup.hpp"
#include "core/metrics/risk_measures.hpp"
#include "core/shard.hpp"
#include "synth/scenarios.hpp"

namespace ara {
namespace {

// Partial results of one engine over a full shard partition.
std::vector<SimulationResult> make_partials(const synth::Scenario& s,
                                            std::size_t shard_trials) {
  const FusedSequentialEngine engine;
  const ShardPlan plan{s.yet.trial_count(), shard_trials};
  std::vector<SimulationResult> partials;
  partials.reserve(plan.shard_count());
  for (std::size_t i = 0; i < plan.shard_count(); ++i) {
    EngineContext ctx;
    ctx.trials = plan.shard(i);
    partials.push_back(engine.run(s.portfolio, s.yet, ctx));
  }
  return partials;
}

SimulationResult merge_in_order(const synth::Scenario& s,
                                const std::vector<SimulationResult>& partials,
                                const std::vector<std::size_t>& order) {
  ShardMerger merger(s.portfolio.layer_count(), s.yet.trial_count());
  for (const std::size_t i : order) merger.add(partials[i]);
  return merger.finish();
}

TEST(ShardPlanArithmetic, CoversEveryTrialExactlyOnce) {
  for (const std::size_t total : {0u, 1u, 7u, 26u, 100u}) {
    for (const std::size_t shard : {1u, 3u, 7u, 26u, 101u}) {
      const ShardPlan plan{total, shard};
      std::size_t covered = 0;
      std::size_t expected_begin = 0;
      for (std::size_t i = 0; i < plan.shard_count(); ++i) {
        const TrialRange r = plan.shard(i);
        EXPECT_EQ(r.begin, expected_begin);
        EXPECT_LE(r.end, total);
        covered += r.size();
        expected_begin = r.end;
      }
      EXPECT_EQ(covered, total) << total << "/" << shard;
    }
  }
}

TEST(ShardPlanArithmetic, BudgetDerivesShardSize) {
  const double per_trial = shard_bytes_per_trial(2, 20.0);
  EXPECT_GT(per_trial, 0.0);
  const ShardPlan plan = plan_shards(1000, 0, static_cast<std::size_t>(
                                                  per_trial * 50),
                                     per_trial);
  EXPECT_EQ(plan.shard_trials, 50u);
  // Explicit shard size wins over the budget.
  EXPECT_EQ(plan_shards(1000, 8, 1 << 20, per_trial).shard_trials, 8u);
  // No budget, no explicit size: monolithic.
  EXPECT_EQ(plan_shards(1000, 0, 0, per_trial).shard_count(), 1u);
  // A budget below one trial still makes progress.
  EXPECT_EQ(plan_shards(1000, 0, 1, per_trial).shard_trials, 1u);
}

TEST(ShardMergeAlgebra, CompletionOrderIsIrrelevant) {
  const synth::Scenario s = synth::tiny(26, 31);
  const std::vector<SimulationResult> partials = make_partials(s, 5);
  ASSERT_GT(partials.size(), 3u);

  std::vector<std::size_t> order(partials.size());
  std::iota(order.begin(), order.end(), 0);
  const SimulationResult forward = merge_in_order(s, partials, order);

  std::mt19937 rng(2026);
  for (int perm = 0; perm < 8; ++perm) {
    std::shuffle(order.begin(), order.end(), rng);
    const SimulationResult shuffled = merge_in_order(s, partials, order);
    EXPECT_EQ(shuffled.ylt.annual_raw(), forward.ylt.annual_raw());
    EXPECT_EQ(shuffled.ylt.max_occurrence_raw(),
              forward.ylt.max_occurrence_raw());
    EXPECT_EQ(shuffled.ops, forward.ops);
  }
}

TEST(ShardMergeAlgebra, MergeIsAssociative) {
  // Merging (A+B)+C+... equals A+(B+C+...): fold a sub-merger's
  // shards into a full merger in grouped order vs flat order.
  const synth::Scenario s = synth::tiny(24, 37);
  const std::vector<SimulationResult> partials = make_partials(s, 6);
  ASSERT_EQ(partials.size(), 4u);

  ShardMerger flat(s.portfolio.layer_count(), s.yet.trial_count());
  for (const SimulationResult& p : partials) flat.add(p);
  const SimulationResult lhs = flat.finish();

  // Grouped: merge {0,1} into a half-size intermediate result first,
  // then treat it as one partial next to {2,3}.
  ShardMerger head(s.portfolio.layer_count(),
                   partials[0].ylt.trial_count() +
                       partials[1].ylt.trial_count());
  SimulationResult shifted0 = partials[0];
  SimulationResult shifted1 = partials[1];
  const std::size_t base = shifted0.trial_begin;
  shifted0.trial_begin -= base;
  shifted1.trial_begin -= base;
  head.add(shifted0);
  head.add(shifted1);
  SimulationResult combined = head.finish();
  combined.trial_begin = base;

  ShardMerger grouped(s.portfolio.layer_count(), s.yet.trial_count());
  grouped.add(combined);
  grouped.add(partials[2]);
  grouped.add(partials[3]);
  const SimulationResult rhs = grouped.finish();

  EXPECT_EQ(lhs.ylt.annual_raw(), rhs.ylt.annual_raw());
  EXPECT_EQ(lhs.ylt.max_occurrence_raw(), rhs.ylt.max_occurrence_raw());
  EXPECT_EQ(lhs.ops, rhs.ops);
}

TEST(ShardMergeAlgebra, RiskMeasuresFromMergedYltMatchOneShot) {
  const synth::Scenario s = synth::tiny(26, 41);
  const FusedSequentialEngine engine;
  const SimulationResult mono = engine.run(s.portfolio, s.yet);

  const std::vector<SimulationResult> partials = make_partials(s, 7);
  std::vector<std::size_t> order(partials.size());
  std::iota(order.begin(), order.end(), 0);
  std::mt19937 rng(7);
  std::shuffle(order.begin(), order.end(), rng);
  const SimulationResult merged = merge_in_order(s, partials, order);

  ASSERT_EQ(merged.ylt.annual_raw(), mono.ylt.annual_raw());
  for (std::size_t a = 0; a < s.portfolio.layer_count(); ++a) {
    const metrics::LayerRiskSummary lhs =
        metrics::summarize_layer(merged.ylt, a);
    const metrics::LayerRiskSummary rhs =
        metrics::summarize_layer(mono.ylt, a);
    EXPECT_EQ(lhs.aal, rhs.aal);
    EXPECT_EQ(lhs.std_dev, rhs.std_dev);
    EXPECT_EQ(lhs.var_99, rhs.var_99);
    EXPECT_EQ(lhs.tvar_99, rhs.tvar_99);
    EXPECT_EQ(lhs.pml_100yr, rhs.pml_100yr);
    EXPECT_EQ(lhs.oep_100yr, rhs.oep_100yr);
    EXPECT_EQ(lhs.max_annual, rhs.max_annual);
  }
  const metrics::PortfolioRollup lhs = metrics::rollup_portfolio(merged.ylt);
  const metrics::PortfolioRollup rhs = metrics::rollup_portfolio(mono.ylt);
  EXPECT_EQ(lhs.aal, rhs.aal);
  EXPECT_EQ(lhs.var_99, rhs.var_99);
  EXPECT_EQ(lhs.tvar_99, rhs.tvar_99);
}

TEST(ShardMergeAlgebra, RejectsGapsOverlapsAndDoubleCoverage) {
  const synth::Scenario s = synth::tiny(20, 43);
  const std::vector<SimulationResult> partials = make_partials(s, 10);
  ASSERT_EQ(partials.size(), 2u);

  // Gap: finishing with half the trials missing throws.
  ShardMerger gap(s.portfolio.layer_count(), s.yet.trial_count());
  gap.add(partials[0]);
  EXPECT_EQ(gap.merged_trials(), 10u);
  EXPECT_THROW(gap.finish(), std::logic_error);

  // Overlap: the same shard twice is rejected at add.
  ShardMerger overlap(s.portfolio.layer_count(), s.yet.trial_count());
  overlap.add(partials[0]);
  EXPECT_THROW(overlap.add(partials[0]), std::logic_error);

  // Out-of-bounds placement is rejected by the block copy.
  ShardMerger bounds(s.portfolio.layer_count(), 5);
  EXPECT_THROW(bounds.add(partials[1]), std::invalid_argument);
}

TEST(ShardMergeAlgebra, ErrorsNameTheOffendingTrialRanges) {
  const synth::Scenario s = synth::tiny(20, 43);
  const std::vector<SimulationResult> partials = make_partials(s, 10);
  ASSERT_EQ(partials.size(), 2u);

  // Overlap names the range that was added twice.
  ShardMerger overlap(s.portfolio.layer_count(), s.yet.trial_count());
  overlap.add(partials[0]);
  try {
    overlap.add(partials[0]);
    FAIL() << "overlapping add did not throw";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("[0, 10)"), std::string::npos) << what;
  }

  // A gap at finish names the uncovered range.
  ShardMerger gap(s.portfolio.layer_count(), s.yet.trial_count());
  gap.add(partials[0]);
  try {
    gap.finish();
    FAIL() << "finish over a gap did not throw";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("[10, 20)"), std::string::npos) << what;
  }

  // Out-of-bounds names the shard's range too.
  ShardMerger bounds(s.portfolio.layer_count(), 5);
  try {
    bounds.add(partials[1]);
    FAIL() << "out-of-bounds add did not throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("[10, 20)"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace ara
