#include "simgpu/sim_platform.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

namespace ara::simgpu {
namespace {

TEST(SimPlatform, ConstructsHomogeneousDevices) {
  SimPlatform platform(tesla_m2090(), 4);
  EXPECT_EQ(platform.device_count(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(platform.device(i).spec().name, "Tesla M2090");
  }
}

TEST(SimPlatform, ConstructsHeterogeneousDevices) {
  SimPlatform platform({tesla_c2075(), tesla_m2090()});
  EXPECT_EQ(platform.device_count(), 2u);
  EXPECT_EQ(platform.device(0).spec().name, "Tesla C2075");
  EXPECT_EQ(platform.device(1).spec().name, "Tesla M2090");
}

TEST(SimPlatform, RejectsZeroDevices) {
  EXPECT_THROW(SimPlatform(tesla_m2090(), 0), std::invalid_argument);
  EXPECT_THROW(SimPlatform(std::vector<DeviceSpec>{}), std::invalid_argument);
}

TEST(SimPlatform, ForEachDeviceVisitsAllOnce) {
  SimPlatform platform(tesla_m2090(), 4);
  std::vector<std::atomic<int>> visits(4);
  platform.for_each_device([&](std::size_t d) { ++visits[d]; });
  for (const auto& v : visits) {
    EXPECT_EQ(v.load(), 1);
  }
}

TEST(SimPlatform, ElapsedIsMaxOverDevices) {
  SimPlatform platform(tesla_m2090(), 3);
  platform.device(0).copy(1000000000);   // ~0.167 s
  platform.device(1).copy(3000000000);   // ~0.5 s  <- slowest
  platform.device(2).copy(500000000);
  EXPECT_NEAR(platform.elapsed_seconds(),
              platform.device(1).elapsed_seconds(), 1e-12);
}

TEST(SimPlatform, EfficiencyComputation) {
  SimPlatform platform(tesla_m2090(), 4);
  for (std::size_t d = 0; d < 4; ++d) {
    platform.device(d).copy(1000000000);  // identical work
  }
  const double single = 4.0 * platform.device(0).elapsed_seconds();
  EXPECT_NEAR(platform.efficiency(single), 1.0, 1e-9);
  // Imbalance drops efficiency.
  platform.device(2).copy(1000000000);
  EXPECT_LT(platform.efficiency(single), 1.0);
}

TEST(SimPlatform, MeanPhaseSeconds) {
  SimPlatform platform(tesla_m2090(), 2);
  platform.device(0).copy(2000000000);
  platform.device(1).copy(0);
  const auto mean = platform.mean_phase_seconds();
  EXPECT_NEAR(mean[perf::Phase::kTransfer],
              platform.device(0).transfer_seconds() / 2.0, 1e-12);
}

TEST(SimPlatform, ResetTimelinesClearsAll) {
  SimPlatform platform(tesla_m2090(), 2);
  platform.device(0).copy(1000);
  platform.device(1).copy(1000);
  platform.reset_timelines();
  EXPECT_DOUBLE_EQ(platform.elapsed_seconds(), 0.0);
}

TEST(SimPlatform, EfficiencyZeroWhenIdle) {
  SimPlatform platform(tesla_m2090(), 2);
  EXPECT_DOUBLE_EQ(platform.efficiency(10.0), 0.0);
}

}  // namespace
}  // namespace ara::simgpu
