// The SIMD dispatch wall (DESIGN.md §8): the scalar kernel is the
// bitwise-reference mode — under SimdPolicy::kScalar every engine must
// reproduce the legacy trial_math formulation bit for bit, in both
// precisions, monolithic and sharded. Vector kernels carry a weaker
// contract: run-to-run deterministic (fixed lane order) and within
// last-ulp-scale tolerance of scalar (ELT sums are reassociated).
// Dispatch itself must fall back to scalar when capped, honour
// kForceWidth exactly, and reject widths the build cannot provide.
// Remainder lanes (layer/ELT counts that do not divide the vector
// width) are swept exhaustively against the legacy formulation.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "core/simd/bound_portfolio.hpp"
#include "core/simd/capability.hpp"
#include "core/simd/kernels.hpp"
#include "core/trial_math.hpp"
#include "synth/portfolio_generator.hpp"
#include "synth/scenarios.hpp"
#include "synth/yet_generator.hpp"

namespace ara {
namespace {

// Expected YLT computed by the legacy (pre-SoA) formulation:
// bind_all_layers + simulate_trial_multilayer, whose per-layer operand
// sequence is the bitwise contract the scalar kernel promises to keep.
template <typename Real>
Ylt legacy_ylt(const Portfolio& portfolio, const Yet& yet) {
  const TableStore<Real> store = build_tables<Real>(portfolio);
  const std::vector<BoundLayer<Real>> layers =
      bind_all_layers(portfolio, store);
  std::vector<LayerTrialState<Real>> state(layers.size());
  Ylt ylt(portfolio.layer_count(), yet.trial_count());
  for (TrialId t = 0; t < yet.trial_count(); ++t) {
    simulate_trial_multilayer<Real>(yet.trial(t), layers, state);
    for (std::size_t a = 0; a < layers.size(); ++a) {
      ylt.annual_loss(a, t) = static_cast<double>(state[a].out.annual);
      ylt.max_occurrence_loss(a, t) =
          static_cast<double>(state[a].out.max_occurrence);
    }
  }
  return ylt;
}

void expect_bitwise(const Ylt& got, const Ylt& expect, const std::string& what) {
  ASSERT_EQ(got.layer_count(), expect.layer_count()) << what;
  ASSERT_EQ(got.trial_count(), expect.trial_count()) << what;
  for (std::size_t a = 0; a < expect.layer_count(); ++a) {
    for (TrialId t = 0; t < expect.trial_count(); ++t) {
      ASSERT_EQ(got.annual_loss(a, t), expect.annual_loss(a, t))
          << what << " annual, layer " << a << " trial " << t;
      ASSERT_EQ(got.max_occurrence_loss(a, t),
                expect.max_occurrence_loss(a, t))
          << what << " max occ, layer " << a << " trial " << t;
    }
  }
}

// Vector kernels reassociate the per-event ELT sum; everything
// downstream (clamps, prefix sums) is order-preserving, so scalar and
// vector agree to accumulated rounding — a relative band with an
// absolute floor for losses clamped to zero.
void expect_close(const Ylt& got, const Ylt& expect, double rel,
                  const std::string& what) {
  ASSERT_EQ(got.layer_count(), expect.layer_count()) << what;
  ASSERT_EQ(got.trial_count(), expect.trial_count()) << what;
  for (std::size_t a = 0; a < expect.layer_count(); ++a) {
    for (TrialId t = 0; t < expect.trial_count(); ++t) {
      const double e = expect.annual_loss(a, t);
      ASSERT_NEAR(got.annual_loss(a, t), e, rel * (1.0 + std::abs(e)))
          << what << " annual, layer " << a << " trial " << t;
      const double eo = expect.max_occurrence_loss(a, t);
      ASSERT_NEAR(got.max_occurrence_loss(a, t), eo, rel * (1.0 + std::abs(eo)))
          << what << " max occ, layer " << a << " trial " << t;
    }
  }
}

Ylt run_with(AnalysisSession& session, const Portfolio& portfolio,
             const Yet& yet, EngineKind kind, simd::SimdPolicy simd,
             bool use_float, std::size_t shard_trials) {
  ExecutionPolicy policy = ExecutionPolicy::with_engine(kind);
  policy.simd = simd;
  policy.shard_trials = shard_trials;
  EngineConfig cfg = paper_config(kind);
  cfg.use_float = use_float;
  cfg.cores = 2;
  cfg.threads_per_core = 2;
  policy.config = cfg;

  AnalysisRequest request;
  request.portfolio = &portfolio;
  request.yet = &yet;
  request.policy = policy;
  return session.run(request).simulation.ylt;
}

// --- kScalar is the legacy sequence, everywhere -------------------

// Every engine kind, both precisions where honoured, monolithic and
// sharded: under kScalar the YLT is bit-identical to the legacy
// formulation. This is the regression wall that lets the SoA rewrite
// claim "bitwise-reference mode".
TEST(ScalarBitwise, AllEnginesAllShardsMatchLegacy) {
  const synth::Scenario s = synth::tiny(26, 5);
  const Ylt expect_f64 = legacy_ylt<double>(s.portfolio, s.yet);
  const Ylt expect_f32 = legacy_ylt<float>(s.portfolio, s.yet);

  AnalysisSession session;
  const std::size_t shards[] = {0, 7, 13};  // 0 = monolithic
  for (const EngineKind kind : all_engine_kinds()) {
    for (const std::size_t shard : shards) {
      const std::string what = engine_kind_name(kind) + "/f64/shard=" +
                               std::to_string(shard);
      expect_bitwise(run_with(session, s.portfolio, s.yet, kind,
                              simd::SimdPolicy::kScalar, false, shard),
                     expect_f64, what);
    }
  }
  // Only the precision-reduced engines honour use_float.
  for (const EngineKind kind :
       {EngineKind::kGpuOptimized, EngineKind::kMultiGpu}) {
    for (const std::size_t shard : shards) {
      const std::string what = engine_kind_name(kind) + "/f32/shard=" +
                               std::to_string(shard);
      expect_bitwise(run_with(session, s.portfolio, s.yet, kind,
                              simd::SimdPolicy::kScalar, true, shard),
                     expect_f32, what);
    }
  }
}

// The default policy is scalar: a request that says nothing about SIMD
// must keep the bitwise contract.
TEST(ScalarBitwise, DefaultPolicyIsScalar) {
  EXPECT_EQ(ExecutionPolicy{}.simd, simd::SimdPolicy::kScalar);
  EXPECT_EQ(EngineConfig{}.simd, simd::SimdPolicy::kScalar);
}

// --- vector kernels: deterministic, and close to scalar -----------

// Whatever kAuto dispatches to (vector on a capable host, scalar on a
// -DARA_DISABLE_SIMD build), two runs of the same workload are bitwise
// equal, and the sharded run is bitwise equal to the monolithic one —
// lane order is fixed, so reassociation is reproducible.
TEST(SimdDeterminism, AutoRunToRunAndShardedBitwiseEqual) {
  const synth::Scenario s = synth::multi_layer_book(6, 60, 9);
  AnalysisSession session;
  for (const EngineKind kind :
       {EngineKind::kSequentialFused, EngineKind::kMultiCore,
        EngineKind::kGpuOptimized}) {
    const std::string what = engine_kind_name(kind);
    const Ylt first = run_with(session, s.portfolio, s.yet, kind,
                               simd::SimdPolicy::kAuto, false, 0);
    const Ylt second = run_with(session, s.portfolio, s.yet, kind,
                                simd::SimdPolicy::kAuto, false, 0);
    expect_bitwise(second, first, what + "/rerun");
    const Ylt sharded = run_with(session, s.portfolio, s.yet, kind,
                                 simd::SimdPolicy::kAuto, false, 17);
    expect_bitwise(sharded, first, what + "/sharded");
  }
}

TEST(SimdDeterminism, AutoWithinToleranceOfScalar) {
  const synth::Scenario s = synth::multi_layer_book(6, 60, 9);
  AnalysisSession session;
  for (const EngineKind kind :
       {EngineKind::kSequentialFused, EngineKind::kMultiCore,
        EngineKind::kGpuOptimized}) {
    const Ylt scalar = run_with(session, s.portfolio, s.yet, kind,
                                simd::SimdPolicy::kScalar, false, 0);
    const Ylt vec = run_with(session, s.portfolio, s.yet, kind,
                             simd::SimdPolicy::kAuto, false, 0);
    expect_close(vec, scalar, 1e-9, engine_kind_name(kind));
  }
}

// --- dispatch ------------------------------------------------------

TEST(SimdDispatch, ScalarPolicyAlwaysSelectsScalar) {
  const auto k = simd::select_kernel<double>(simd::SimdPolicy::kScalar);
  EXPECT_EQ(k.isa, simd::IsaLevel::kScalar);
  EXPECT_EQ(k.lanes, 1u);
}

TEST(SimdDispatch, AutoFallsBackToScalarUnderCap) {
  const auto k = simd::select_kernel_capped<double>(
      simd::SimdPolicy::kAuto, 0, simd::IsaLevel::kScalar);
  EXPECT_EQ(k.isa, simd::IsaLevel::kScalar);
  EXPECT_EQ(k.lanes, 1u);
}

TEST(SimdDispatch, ForceWidthThrowsWhenOnlyScalarAvailable) {
  EXPECT_THROW(simd::select_kernel_capped<double>(
                   simd::SimdPolicy::kForceWidth, 0, simd::IsaLevel::kScalar),
               std::runtime_error);
}

TEST(SimdDispatch, ForceWidthRejectsUnavailableWidth) {
  // No kernel in any build provides 3 lanes.
  EXPECT_THROW(
      simd::select_kernel<double>(simd::SimdPolicy::kForceWidth, 3),
      std::runtime_error);
}

TEST(SimdDispatch, AutoMatchesDetectedCapability) {
  const simd::IsaLevel host = simd::detect_best_isa();
  const auto k = simd::select_kernel<double>(simd::SimdPolicy::kAuto);
  EXPECT_EQ(k.isa, host);
  EXPECT_EQ(k.lanes, simd::isa_lanes(host, sizeof(double)));
  if (!simd::simd_compiled()) {
    EXPECT_EQ(host, simd::IsaLevel::kScalar);
  }
}

#if defined(ARA_SIMD_HAVE_AVX2)
TEST(SimdDispatch, ForceWidthSelectsAvx2Lanes) {
  if (simd::detect_best_isa() != simd::IsaLevel::kAvx2) {
    GTEST_SKIP() << "host CPU lacks AVX2 at runtime";
  }
  const auto d = simd::select_kernel<double>(simd::SimdPolicy::kForceWidth, 4);
  EXPECT_EQ(d.isa, simd::IsaLevel::kAvx2);
  EXPECT_EQ(d.lanes, 4u);
  const auto f = simd::select_kernel<float>(simd::SimdPolicy::kForceWidth, 8);
  EXPECT_EQ(f.isa, simd::IsaLevel::kAvx2);
  EXPECT_EQ(f.lanes, 8u);
  // A width from the wrong precision must fail loudly, not mis-lane.
  EXPECT_THROW(
      simd::select_kernel<double>(simd::SimdPolicy::kForceWidth, 8),
      std::runtime_error);
}
#endif

#if defined(ARA_SIMD_HAVE_NEON)
TEST(SimdDispatch, ForceWidthSelectsNeonLanes) {
  const auto d = simd::select_kernel<double>(simd::SimdPolicy::kForceWidth, 2);
  EXPECT_EQ(d.isa, simd::IsaLevel::kNeon);
  EXPECT_EQ(d.lanes, 2u);
  const auto f = simd::select_kernel<float>(simd::SimdPolicy::kForceWidth, 4);
  EXPECT_EQ(f.isa, simd::IsaLevel::kNeon);
  EXPECT_EQ(f.lanes, 4u);
}
#endif

// --- remainder lanes -----------------------------------------------

// Every (layer count, ELT count) in 1..9 x 1..9 — bracketing all the
// partial-vector remainders of both the 4/8-lane AVX2 and 2/4-lane
// NEON kernels, plus the padded-layer tail of the phase-2 loop. The
// scalar kernel must be bitwise-equal to the legacy formulation and
// the auto kernel within tolerance, driven directly (no engine on
// top), so a remainder bug cannot hide behind engine plumbing.
TEST(SimdRemainderLanes, AllSmallShapesMatchLegacy) {
  const synth::Catalogue catalogue = synth::Catalogue::make(200, 3, 30.0);
  synth::YetGeneratorConfig yc;
  yc.trials = 6;
  yc.seed = 41;
  const Yet yet = synth::generate_yet(catalogue, yc);

  const auto scalar = simd::select_kernel<double>(simd::SimdPolicy::kScalar);
  const auto vec = simd::select_kernel<double>(simd::SimdPolicy::kAuto);

  for (std::size_t layers = 1; layers <= 9; ++layers) {
    for (std::size_t elts = 1; elts <= 9; ++elts) {
      synth::PortfolioGeneratorConfig pc;
      pc.elt_count = elts;
      pc.layer_count = layers;
      pc.min_elts_per_layer = elts;
      pc.max_elts_per_layer = elts;
      pc.elt.record_count = 40;
      pc.elt.mean_loss = 1500.0;
      pc.seed = 100 + layers * 10 + elts;
      const Portfolio portfolio = synth::generate_portfolio(catalogue, pc);
      const std::string what =
          std::to_string(layers) + "L x " + std::to_string(elts) + "E";

      const Ylt expect = legacy_ylt<double>(portfolio, yet);
      const TableStore<double> store = build_tables<double>(portfolio);
      const simd::BoundPortfolio<double> bp =
          simd::bind_portfolio(portfolio, store);
      simd::PortfolioTrialState<double> state(bp);

      Ylt got_scalar(layers, yet.trial_count());
      Ylt got_vec(layers, yet.trial_count());
      for (TrialId t = 0; t < yet.trial_count(); ++t) {
        scalar.sweep(bp, yet.trial(t), state);
        for (std::size_t a = 0; a < layers; ++a) {
          got_scalar.annual_loss(a, t) = state.annual[a];
          got_scalar.max_occurrence_loss(a, t) = state.max_occurrence[a];
        }
        vec.sweep(bp, yet.trial(t), state);
        for (std::size_t a = 0; a < layers; ++a) {
          got_vec.annual_loss(a, t) = state.annual[a];
          got_vec.max_occurrence_loss(a, t) = state.max_occurrence[a];
        }
      }
      expect_bitwise(got_scalar, expect, what + "/scalar");
      expect_close(got_vec, expect, 1e-9, what + "/auto");
    }
  }
}

}  // namespace
}  // namespace ara
