#include "core/cpu_engines.hpp"

#include <gtest/gtest.h>

#include "core/reference_engine.hpp"
#include "synth/scenarios.hpp"

namespace ara {
namespace {

TEST(MultiCoreEngine, SimulatedSpeedupsMatchFig1a) {
  // The paper's Fig. 1a: 1.5x @ 2 cores, 2.2x @ 4, 2.6x @ 8 (+-10%).
  const synth::Scenario s = synth::tiny(32);
  auto run_sim = [&](unsigned cores) {
    EngineConfig cfg;
    cfg.cores = cores;
    MultiCoreEngine engine(cfg);
    return engine.run(s.portfolio, s.yet).simulated_seconds;
  };
  const double t1 = run_sim(1);
  EXPECT_NEAR(t1 / run_sim(2), 1.5, 0.15);
  EXPECT_NEAR(t1 / run_sim(4), 2.2, 0.22);
  EXPECT_NEAR(t1 / run_sim(8), 2.6, 0.26);
}

TEST(MultiCoreEngine, SpeedupMonotoneInCores) {
  const synth::Scenario s = synth::tiny(16);
  double prev = 1e300;
  for (unsigned cores : {1u, 2u, 3u, 4u, 6u, 8u}) {
    EngineConfig cfg;
    cfg.cores = cores;
    MultiCoreEngine engine(cfg);
    const double t = engine.run(s.portfolio, s.yet).simulated_seconds;
    EXPECT_LT(t, prev) << cores << " cores";
    prev = t;
  }
}

TEST(MultiCoreEngine, OversubscriptionHelpsSlightly) {
  // Fig. 1b: more threads per core shaves a few percent off.
  const synth::Scenario s = synth::tiny(16);
  auto run_sim = [&](unsigned tpc) {
    EngineConfig cfg;
    cfg.cores = 8;
    cfg.threads_per_core = tpc;
    MultiCoreEngine engine(cfg);
    return engine.run(s.portfolio, s.yet).simulated_seconds;
  };
  const double t1 = run_sim(1);
  const double t256 = run_sim(256);
  EXPECT_LT(t256, t1);
  EXPECT_GT(t256, 0.90 * t1);  // effect is modest: 135 -> 125 in the paper
}

TEST(MultiCoreEngine, CoresBeyondProfileClamped) {
  const synth::Scenario s = synth::tiny(8);
  EngineConfig cfg8, cfg64;
  cfg8.cores = 8;
  cfg64.cores = 64;  // the i7-2600 profile has 8 hardware threads
  MultiCoreEngine e8(cfg8), e64(cfg64);
  EXPECT_DOUBLE_EQ(e8.run(s.portfolio, s.yet).simulated_seconds,
                   e64.run(s.portfolio, s.yet).simulated_seconds);
}

TEST(MultiCoreEngine, FusedMatchesReferenceOnMultiLayerBook) {
  const synth::Scenario s = synth::multi_layer_book(4, 64);
  ReferenceEngine ref;
  FusedSequentialEngine fused;
  const auto a = ref.run(s.portfolio, s.yet);
  const auto b = fused.run(s.portfolio, s.yet);
  for (std::size_t l = 0; l < a.ylt.layer_count(); ++l) {
    for (TrialId t = 0; t < a.ylt.trial_count(); ++t) {
      ASSERT_EQ(b.ylt.annual_loss(l, t), a.ylt.annual_loss(l, t));
    }
  }
}

TEST(MultiCoreEngine, WallClockIsMeasured) {
  const synth::Scenario s = synth::tiny(64);
  EngineConfig cfg;
  cfg.cores = 2;
  MultiCoreEngine engine(cfg);
  const SimulationResult r = engine.run(s.portfolio, s.yet);
  EXPECT_GT(r.wall_seconds, 0.0);
  EXPECT_EQ(r.engine_name, "multicore_cpu");
}

}  // namespace
}  // namespace ara
