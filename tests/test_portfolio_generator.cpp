#include "synth/portfolio_generator.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace ara::synth {
namespace {

TEST(PortfolioGenerator, ProducesRequestedShape) {
  const Catalogue cat = Catalogue::make(20000, 3, 100.0);
  PortfolioGeneratorConfig cfg;
  cfg.elt_count = 10;
  cfg.layer_count = 5;
  cfg.min_elts_per_layer = 2;
  cfg.max_elts_per_layer = 6;
  cfg.elt.record_count = 50;
  const ara::Portfolio p = generate_portfolio(cat, cfg);
  EXPECT_EQ(p.elt_count(), 10u);
  EXPECT_EQ(p.layer_count(), 5u);
  for (const ara::Layer& l : p.layers()) {
    EXPECT_GE(l.elt_indices.size(), 2u);
    EXPECT_LE(l.elt_indices.size(), 6u);
  }
}

TEST(PortfolioGenerator, LayerEltIndicesAreDistinct) {
  const Catalogue cat = Catalogue::make(20000, 3, 100.0);
  PortfolioGeneratorConfig cfg;
  cfg.elt_count = 12;
  cfg.layer_count = 8;
  cfg.min_elts_per_layer = 3;
  cfg.max_elts_per_layer = 12;
  cfg.elt.record_count = 20;
  const ara::Portfolio p = generate_portfolio(cat, cfg);
  for (const ara::Layer& l : p.layers()) {
    const std::set<std::size_t> unique(l.elt_indices.begin(),
                                       l.elt_indices.end());
    EXPECT_EQ(unique.size(), l.elt_indices.size());
  }
}

TEST(PortfolioGenerator, EltsDifferAcrossPool) {
  const Catalogue cat = Catalogue::make(20000, 3, 100.0);
  PortfolioGeneratorConfig cfg;
  cfg.elt_count = 4;
  cfg.layer_count = 1;
  cfg.min_elts_per_layer = cfg.max_elts_per_layer = 4;
  cfg.elt.record_count = 100;
  const ara::Portfolio p = generate_portfolio(cat, cfg);
  EXPECT_NE(p.elts()[0].records(), p.elts()[1].records());
  EXPECT_NE(p.elts()[1].records(), p.elts()[2].records());
}

TEST(PortfolioGenerator, TermsScaleWithMeanLoss) {
  const Catalogue cat = Catalogue::make(20000, 3, 100.0);
  PortfolioGeneratorConfig cfg;
  cfg.elt_count = 5;
  cfg.layer_count = 1;
  cfg.min_elts_per_layer = cfg.max_elts_per_layer = 5;
  cfg.elt.record_count = 10;
  cfg.elt.mean_loss = 2.0e6;
  cfg.occ_retention_mult = 0.5;
  cfg.occ_limit_mult = 10.0;
  const ara::Portfolio p = generate_portfolio(cat, cfg);
  const ara::LayerTerms& t = p.layers()[0].terms;
  EXPECT_DOUBLE_EQ(t.occ_retention, 1.0e6);
  EXPECT_DOUBLE_EQ(t.occ_limit, 2.0e7);
  EXPECT_GT(t.agg_limit, t.occ_limit);
  EXPECT_TRUE(t.valid());
}

TEST(PortfolioGenerator, DeterministicForSeed) {
  const Catalogue cat = Catalogue::make(20000, 3, 100.0);
  PortfolioGeneratorConfig cfg;
  cfg.elt_count = 6;
  cfg.layer_count = 3;
  cfg.elt.record_count = 30;
  cfg.min_elts_per_layer = 2;
  cfg.max_elts_per_layer = 5;
  cfg.seed = 555;
  const ara::Portfolio a = generate_portfolio(cat, cfg);
  const ara::Portfolio b = generate_portfolio(cat, cfg);
  ASSERT_EQ(a.layer_count(), b.layer_count());
  for (std::size_t i = 0; i < a.layer_count(); ++i) {
    EXPECT_EQ(a.layers()[i].elt_indices, b.layers()[i].elt_indices);
  }
  for (std::size_t i = 0; i < a.elt_count(); ++i) {
    EXPECT_EQ(a.elts()[i].records(), b.elts()[i].records());
  }
}

TEST(PortfolioGenerator, RejectsBadArguments) {
  const Catalogue cat = Catalogue::make(1000, 2, 10.0);
  PortfolioGeneratorConfig cfg;
  cfg.elt_count = 0;
  EXPECT_THROW(generate_portfolio(cat, cfg), std::invalid_argument);
  cfg.elt_count = 3;
  cfg.layer_count = 0;
  EXPECT_THROW(generate_portfolio(cat, cfg), std::invalid_argument);
  cfg.layer_count = 1;
  cfg.min_elts_per_layer = 5;
  cfg.max_elts_per_layer = 3;
  EXPECT_THROW(generate_portfolio(cat, cfg), std::invalid_argument);
  cfg.min_elts_per_layer = 0;
  EXPECT_THROW(generate_portfolio(cat, cfg), std::invalid_argument);
}

TEST(PortfolioGenerator, ClampsLayerSizeToPool) {
  const Catalogue cat = Catalogue::make(1000, 2, 10.0);
  PortfolioGeneratorConfig cfg;
  cfg.elt_count = 3;
  cfg.layer_count = 2;
  cfg.min_elts_per_layer = 3;
  cfg.max_elts_per_layer = 30;  // pool only has 3
  cfg.elt.record_count = 10;
  const ara::Portfolio p = generate_portfolio(cat, cfg);
  for (const ara::Layer& l : p.layers()) {
    EXPECT_EQ(l.elt_indices.size(), 3u);
  }
}

}  // namespace
}  // namespace ara::synth
