#include "synth/yet_generator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ara::synth {
namespace {

TEST(YetGenerator, ProducesRequestedTrials) {
  const Catalogue cat = Catalogue::make(1000, 3, 50.0);
  YetGeneratorConfig cfg;
  cfg.trials = 200;
  const ara::Yet yet = generate_yet(cat, cfg);
  EXPECT_EQ(yet.trial_count(), 200u);
  EXPECT_EQ(yet.catalogue_size(), 1000u);
}

TEST(YetGenerator, MeanEventsNearAnnualRate) {
  const Catalogue cat = Catalogue::make(1000, 3, 50.0);
  YetGeneratorConfig cfg;
  cfg.trials = 2000;
  const ara::Yet yet = generate_yet(cat, cfg);
  // Poisson(50) mean over 2000 trials: sd of mean ~ sqrt(50/2000)=0.16
  EXPECT_NEAR(yet.mean_events_per_trial(), 50.0, 1.0);
}

TEST(YetGenerator, TargetEventsPerTrialRescalesRate) {
  const Catalogue cat = Catalogue::make(1000, 3, 50.0);
  YetGeneratorConfig cfg;
  cfg.trials = 1000;
  cfg.target_events_per_trial = 200.0;
  const ara::Yet yet = generate_yet(cat, cfg);
  EXPECT_NEAR(yet.mean_events_per_trial(), 200.0, 3.0);
}

TEST(YetGenerator, TrialsAreTimeOrdered) {
  const Catalogue cat = Catalogue::make(1000, 3, 100.0);
  YetGeneratorConfig cfg;
  cfg.trials = 50;
  const ara::Yet yet = generate_yet(cat, cfg);  // Yet ctor validates order
  for (ara::TrialId t = 0; t < yet.trial_count(); ++t) {
    const auto trial = yet.trial(t);
    for (std::size_t i = 1; i < trial.size(); ++i) {
      EXPECT_LE(trial[i - 1].time, trial[i].time);
    }
  }
}

TEST(YetGenerator, EventsStayInsideRegionRanges) {
  const Catalogue cat = Catalogue::make(999, 3, 60.0);
  YetGeneratorConfig cfg;
  cfg.trials = 100;
  const ara::Yet yet = generate_yet(cat, cfg);
  for (const ara::EventOccurrence& o : yet.occurrences()) {
    EXPECT_GE(o.event, 1u);
    EXPECT_LE(o.event, 999u);
    EXPECT_GE(o.time, 1u);
    EXPECT_LE(o.time, 365u);
  }
}

TEST(YetGenerator, SeasonalityConcentratesTimestamps) {
  // One fully seasonal region: all in-season draws land in the window.
  PerilRegion r{"h", 1, 100, 40.0, 1.0, 150, 250};
  const Catalogue cat(100, {r});
  YetGeneratorConfig cfg;
  cfg.trials = 200;
  const ara::Yet yet = generate_yet(cat, cfg);
  std::size_t inside = 0;
  for (const ara::EventOccurrence& o : yet.occurrences()) {
    if (o.time >= 150 && o.time <= 250) ++inside;
  }
  EXPECT_EQ(inside, yet.occurrence_count());
}

TEST(YetGenerator, DeterministicForSeed) {
  const Catalogue cat = Catalogue::make(1000, 3, 50.0);
  YetGeneratorConfig cfg;
  cfg.trials = 100;
  cfg.seed = 777;
  const ara::Yet a = generate_yet(cat, cfg);
  const ara::Yet b = generate_yet(cat, cfg);
  ASSERT_EQ(a.occurrence_count(), b.occurrence_count());
  EXPECT_EQ(a.occurrences(), b.occurrences());
}

TEST(YetGenerator, TrialsStableUnderTrialCountChange) {
  // Trial i must be identical whether 50 or 100 trials are generated
  // (per-trial sub-streams) — scaled benchmarks rely on this.
  const Catalogue cat = Catalogue::make(1000, 3, 50.0);
  YetGeneratorConfig small, large;
  small.trials = 50;
  large.trials = 100;
  const ara::Yet a = generate_yet(cat, small);
  const ara::Yet b = generate_yet(cat, large);
  for (ara::TrialId t = 0; t < 50; ++t) {
    const auto ta = a.trial(t);
    const auto tb = b.trial(t);
    ASSERT_EQ(ta.size(), tb.size()) << "trial " << t;
    for (std::size_t i = 0; i < ta.size(); ++i) {
      EXPECT_EQ(ta[i], tb[i]);
    }
  }
}

TEST(YetGenerator, ClusteringIncreasesVariance) {
  const Catalogue cat = Catalogue::make(1000, 1, 30.0);
  YetGeneratorConfig poisson, clustered;
  poisson.trials = clustered.trials = 3000;
  clustered.clustering_k = 2.0;  // var = 30 + 900/2 = 480 vs 30
  const ara::Yet yp = generate_yet(cat, poisson);
  const ara::Yet yc = generate_yet(cat, clustered);
  auto variance = [](const ara::Yet& y) {
    double sum = 0.0, sum2 = 0.0;
    for (ara::TrialId t = 0; t < y.trial_count(); ++t) {
      const double k = static_cast<double>(y.trial_size(t));
      sum += k;
      sum2 += k * k;
    }
    const double n = static_cast<double>(y.trial_count());
    return sum2 / n - (sum / n) * (sum / n);
  };
  EXPECT_GT(variance(yc), 4.0 * variance(yp));
}

TEST(YetGenerator, RejectsZeroTrials) {
  const Catalogue cat = Catalogue::make(100, 1, 5.0);
  YetGeneratorConfig cfg;
  cfg.trials = 0;
  EXPECT_THROW(generate_yet(cat, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace ara::synth
