// AnalysisSession façade: the session must be a faithful superset of
// the one-shot Engine::run path — bitwise-identical YLTs per engine
// kind, deterministic order-independent batches, and a kAuto mode that
// picks exactly what the cost models rank cheapest.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/session.hpp"
#include "synth/scenarios.hpp"

namespace ara {
namespace {

void expect_bitwise_equal_ylt(const Ylt& a, const Ylt& b) {
  ASSERT_EQ(a.layer_count(), b.layer_count());
  ASSERT_EQ(a.trial_count(), b.trial_count());
  for (std::size_t l = 0; l < a.layer_count(); ++l) {
    for (TrialId t = 0; t < a.trial_count(); ++t) {
      ASSERT_EQ(a.annual_loss(l, t), b.annual_loss(l, t))
          << "layer " << l << " trial " << t;
      ASSERT_EQ(a.max_occurrence_loss(l, t), b.max_occurrence_loss(l, t))
          << "layer " << l << " trial " << t;
    }
  }
}

class SessionVsLegacy : public ::testing::TestWithParam<EngineKind> {};

// (a) For every engine kind, the session produces the YLT the legacy
// make_engine/Engine::run path produces, bit for bit.
TEST_P(SessionVsLegacy, BitwiseIdenticalToDirectEngineRun) {
  const EngineKind kind = GetParam();
  const synth::Scenario s = synth::multi_layer_book(4, 200, 22);

  const auto legacy = make_engine(ExecutionPolicy::with_engine(kind));
  const SimulationResult direct = legacy->run(s.portfolio, s.yet);

  AnalysisSession session(ExecutionPolicy::with_engine(kind));
  AnalysisRequest request;
  request.portfolio = &s.portfolio;
  request.yet = &s.yet;
  const AnalysisResult result = session.run(request);

  ASSERT_TRUE(result.engine.has_value());
  EXPECT_EQ(*result.engine, kind);
  EXPECT_FALSE(result.auto_selected);
  EXPECT_EQ(result.simulation.engine_name, direct.engine_name);
  EXPECT_EQ(result.simulation.ops, direct.ops);
  EXPECT_DOUBLE_EQ(result.simulation.simulated_seconds,
                   direct.simulated_seconds);
  expect_bitwise_equal_ylt(result.simulation.ylt, direct.ylt);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, SessionVsLegacy, ::testing::ValuesIn(all_engine_kinds()),
    [](const ::testing::TestParamInfo<EngineKind>& info) {
      return engine_kind_name(info.param);
    });

// (b) run_batch: many portfolios against ONE shared YET; outputs are
// in request order, equal to solo runs, and independent of submission
// order.
TEST(SessionBatch, DeterministicAndOrderIndependent) {
  const synth::Scenario s = synth::multi_layer_book(6, 300, 7);

  // Carve three single-layer portfolios out of the book, all priced
  // against the same YET (held by reference — no copies).
  std::vector<Portfolio> books;
  for (std::size_t l = 0; l < 3; ++l) {
    books.emplace_back(s.portfolio.elts(),
                       std::vector<Layer>{s.portfolio.layers()[l]});
  }

  std::vector<AnalysisRequest> requests;
  for (std::size_t i = 0; i < books.size(); ++i) {
    AnalysisRequest r;
    r.label = "book_" + std::to_string(i);
    r.portfolio = &books[i];
    r.yet = &s.yet;
    r.metrics = MetricsSpec::layer_summaries();
    requests.push_back(std::move(r));
  }

  AnalysisSession session(ExecutionPolicy::with_engine(EngineKind::kMultiGpu));
  const std::vector<AnalysisResult> batch = session.run_batch(requests);
  ASSERT_EQ(batch.size(), requests.size());

  // Batch output equals solo runs (request order preserved).
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(batch[i].label, requests[i].label);
    const AnalysisResult solo = session.run(requests[i]);
    expect_bitwise_equal_ylt(batch[i].simulation.ylt, solo.simulation.ylt);
    ASSERT_EQ(batch[i].metrics.layers.size(), 1u);
    EXPECT_DOUBLE_EQ(batch[i].metrics.layers[0].aal,
                     solo.metrics.layers[0].aal);
    // The by-name lookup resolves to the same entry as the index.
    const metrics::LayerMetrics* by_name =
        batch[i].metrics_for(books[i].layers()[0].name);
    ASSERT_NE(by_name, nullptr);
    EXPECT_EQ(by_name->aal, batch[i].metrics.layers[0].aal);
  }

  // Reversed submission order: per-label results unchanged.
  std::vector<AnalysisRequest> reversed(requests.rbegin(), requests.rend());
  const std::vector<AnalysisResult> rev = session.run_batch(reversed);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const AnalysisResult& fwd = batch[i];
    const AnalysisResult& bwd = rev[requests.size() - 1 - i];
    EXPECT_EQ(fwd.label, bwd.label);
    expect_bitwise_equal_ylt(fwd.simulation.ylt, bwd.simulation.ylt);
  }

  // Repeat run: bitwise identical (determinism).
  const std::vector<AnalysisResult> again = session.run_batch(requests);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    expect_bitwise_equal_ylt(batch[i].simulation.ylt,
                             again[i].simulation.ylt);
  }
}

// (c) kAuto runs exactly the engine the cost models rank cheapest.
TEST(SessionAuto, PicksCheapestPredictedEngine) {
  const synth::Scenario s = synth::paper_scaled(20000, 33);

  AnalysisSession session(ExecutionPolicy::auto_select());
  const std::vector<EnginePrediction> predictions =
      session.predict(s.portfolio, s.yet);
  ASSERT_EQ(predictions.size(), all_engine_kinds().size());

  const EnginePrediction* best = nullptr;
  for (const EnginePrediction& p : predictions) {
    if (!p.feasible) continue;
    if (!best || p.seconds < best->seconds) best = &p;
  }
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(session.choose_engine(s.portfolio, s.yet), best->kind);

  AnalysisRequest request;
  request.portfolio = &s.portfolio;
  request.yet = &s.yet;
  const AnalysisResult result = session.run(request);
  ASSERT_TRUE(result.engine.has_value());
  EXPECT_EQ(*result.engine, best->kind);
  EXPECT_TRUE(result.auto_selected);
  EXPECT_DOUBLE_EQ(result.predicted_seconds, best->seconds);
}

// On a paper-shaped workload the predictions must reproduce the
// paper's Figure 5 ranking: multi-GPU < optimised GPU < basic GPU <
// multi-core < sequential.
TEST(SessionAuto, PredictionsReproducePaperRanking) {
  const synth::Scenario s = synth::paper_scaled(20000, 33);
  AnalysisSession session;
  const std::vector<EnginePrediction> predictions =
      session.predict(s.portfolio, s.yet);

  auto seconds = [&](EngineKind kind) {
    for (const EnginePrediction& p : predictions) {
      if (p.kind == kind) {
        EXPECT_TRUE(p.feasible) << engine_kind_name(kind);
        return p.seconds;
      }
    }
    ADD_FAILURE() << "missing prediction for " << engine_kind_name(kind);
    return 0.0;
  };

  const double t_multi = seconds(EngineKind::kMultiGpu);
  const double t_opt = seconds(EngineKind::kGpuOptimized);
  const double t_basic = seconds(EngineKind::kGpuBasic);
  const double t_mc = seconds(EngineKind::kMultiCore);
  const double t_seq = seconds(EngineKind::kSequentialReference);
  EXPECT_LT(t_multi, t_opt);
  EXPECT_LT(t_opt, t_basic);
  EXPECT_LT(t_basic, t_mc);
  EXPECT_LT(t_mc, t_seq);
}

// A prediction is the engine's simulated time computed without
// executing: running the predicted kind must report (almost) exactly
// the predicted simulated seconds.
TEST(SessionAuto, PredictionMatchesEngineSimulatedTime) {
  const synth::Scenario s = synth::multi_layer_book(3, 150, 5);
  AnalysisSession session;
  const std::vector<EnginePrediction> predictions =
      session.predict(s.portfolio, s.yet);

  for (const EnginePrediction& p : predictions) {
    if (!p.feasible) continue;
    AnalysisRequest request;
    request.portfolio = &s.portfolio;
    request.yet = &s.yet;
    request.policy = ExecutionPolicy::with_engine(p.kind);
    const AnalysisResult result = session.run(request);
    EXPECT_NEAR(result.simulation.simulated_seconds, p.seconds,
                1e-6 * p.seconds)
        << engine_kind_name(p.kind);
  }
}

// Extension hooks ride along with a normal analysis.
TEST(SessionExtensions, ReinstatementHookFillsResult) {
  const synth::Scenario s = synth::tiny(64, 11);

  ext::ReinstatementTerms terms;
  terms.occ_retention = 1000.0;
  terms.occ_limit = 50000.0;
  terms.reinstatements = 2;
  terms.premium_rate = 1.0;
  terms.upfront_premium = 1.0;

  AnalysisRequest request;
  request.portfolio = &s.portfolio;
  request.yet = &s.yet;
  request.reinstatement_terms.assign(s.portfolio.layer_count(), terms);

  AnalysisSession session(
      ExecutionPolicy::with_engine(EngineKind::kSequentialFused));
  const AnalysisResult result = session.run(request);
  ASSERT_TRUE(result.reinstatements.has_value());
  EXPECT_EQ(result.reinstatements->layer_count(), s.portfolio.layer_count());
  EXPECT_EQ(result.reinstatements->trial_count(), s.yet.trial_count());
  EXPECT_GE(result.reinstatements->expected_recovery(0), 0.0);
}

// A pure extension pass: core_simulation=false skips the engine run
// (no YLT) but still prices the treaty.
TEST(SessionExtensions, ReinstatementOnlySkipsCoreSimulation) {
  const synth::Scenario s = synth::tiny(64, 11);

  ext::ReinstatementTerms terms;
  terms.occ_limit = 50000.0;

  AnalysisRequest request;
  request.portfolio = &s.portfolio;
  request.yet = &s.yet;
  request.core_simulation = false;
  request.reinstatement_terms.assign(s.portfolio.layer_count(), terms);

  AnalysisSession session;
  const AnalysisResult result = session.run(request);
  EXPECT_FALSE(result.engine.has_value());
  EXPECT_EQ(result.simulation.ylt.layer_count(), 0u);
  ASSERT_TRUE(result.reinstatements.has_value());
  EXPECT_EQ(result.reinstatements->trial_count(), s.yet.trial_count());

  // Disabling the core run with no extension requested is an error.
  AnalysisRequest empty;
  empty.portfolio = &s.portfolio;
  empty.yet = &s.yet;
  empty.core_simulation = false;
  EXPECT_THROW(session.run(empty), std::invalid_argument);
}

TEST(SessionExtensions, SecondaryUncertaintyReplacesEngine) {
  const synth::Scenario s = synth::tiny(64, 11);

  AnalysisRequest request;
  request.portfolio = &s.portfolio;
  request.yet = &s.yet;
  request.secondary_uncertainty = ext::SecondaryUncertaintyConfig{};

  AnalysisSession session;
  const AnalysisResult result = session.run(request);
  EXPECT_FALSE(result.engine.has_value());
  EXPECT_EQ(result.simulation.engine_name, "secondary_uncertainty");
  EXPECT_EQ(result.simulation.ylt.trial_count(), s.yet.trial_count());
}

// Session-level table caching: repeated requests against one
// portfolio bind tables once, and cached-table runs stay bitwise
// identical to cold runs for every engine kind.
TEST(SessionTableCache, CachedRunsBitwiseIdenticalToColdRuns) {
  const synth::Scenario s = synth::multi_layer_book(4, 150, 31);

  for (const EngineKind kind : all_engine_kinds()) {
    AnalysisSession session(ExecutionPolicy::with_engine(kind));
    AnalysisRequest request;
    request.portfolio = &s.portfolio;
    request.yet = &s.yet;

    const AnalysisResult cold = session.run(request);  // builds the cache
    EXPECT_EQ(session.cached_table_portfolios(), 1u);
    const AnalysisResult warm = session.run(request);  // served from it
    expect_bitwise_equal_ylt(cold.simulation.ylt, warm.simulation.ylt);

    // A fresh session (cold again) agrees too.
    AnalysisSession fresh(ExecutionPolicy::with_engine(kind));
    expect_bitwise_equal_ylt(fresh.run(request).simulation.ylt,
                             cold.simulation.ylt);

    session.invalidate_tables(s.portfolio);
    EXPECT_EQ(session.cached_table_portfolios(), 0u);
    expect_bitwise_equal_ylt(session.run(request).simulation.ylt,
                             cold.simulation.ylt);
  }
}

// One shared YET, several portfolios, cached tables per portfolio —
// the batch shape the session exists for — with extension hooks riding
// along.
TEST(SessionBatch, SharedYetBatchWithExtensionsUsesTableCache) {
  const synth::Scenario s = synth::multi_layer_book(4, 120, 53);

  std::vector<Portfolio> books;
  for (std::size_t l = 0; l < 3; ++l) {
    books.emplace_back(s.portfolio.elts(),
                       std::vector<Layer>{s.portfolio.layers()[l]});
  }

  ext::ReinstatementTerms terms;
  terms.occ_retention = 500.0;
  terms.occ_limit = 40000.0;
  terms.reinstatements = 1;

  std::vector<AnalysisRequest> requests;
  for (std::size_t i = 0; i < books.size(); ++i) {
    AnalysisRequest r;
    r.label = "book_" + std::to_string(i);
    r.portfolio = &books[i];
    r.yet = &s.yet;
    // Exercises the legacy-selection shim deliberately.
    r.metrics = MetricsSpec::from_selection(MetricsSelection::all());
    r.reinstatement_terms.assign(books[i].layer_count(), terms);
    requests.push_back(std::move(r));
  }
  // A secondary-uncertainty request against the full book rides in the
  // same batch (it replaces the engine but shares the table cache).
  AnalysisRequest su;
  su.label = "secondary";
  su.portfolio = &s.portfolio;
  su.yet = &s.yet;
  su.secondary_uncertainty = ext::SecondaryUncertaintyConfig{};
  requests.push_back(std::move(su));

  AnalysisSession session(
      ExecutionPolicy::with_engine(EngineKind::kMultiCore));
  const std::vector<AnalysisResult> batch = session.run_batch(requests);
  ASSERT_EQ(batch.size(), requests.size());
  // One cache entry per distinct portfolio (3 books + the full book).
  EXPECT_EQ(session.cached_table_portfolios(), 4u);

  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(batch[i].label, requests[i].label);
    ASSERT_TRUE(batch[i].reinstatements.has_value());
    EXPECT_EQ(batch[i].reinstatements->trial_count(), s.yet.trial_count());
    ASSERT_EQ(batch[i].metrics.layers.size(), 1u);
    const AnalysisResult solo = session.run(requests[i]);
    expect_bitwise_equal_ylt(batch[i].simulation.ylt, solo.simulation.ylt);
    EXPECT_DOUBLE_EQ(batch[i].metrics.layers[0].aal,
                     solo.metrics.layers[0].aal);
  }
  EXPECT_EQ(batch[3].simulation.engine_name, "secondary_uncertainty");
  expect_bitwise_equal_ylt(batch[3].simulation.ylt,
                           session.run(requests[3]).simulation.ylt);
}

TEST(SessionPolicy, FactoryRejectsAutoWithoutWorkload) {
  EXPECT_THROW(make_engine(ExecutionPolicy::auto_select()),
               std::invalid_argument);
}

TEST(SessionPolicy, RequestValidation) {
  AnalysisSession session;
  AnalysisRequest request;  // no portfolio / yet
  EXPECT_THROW(session.run(request), std::invalid_argument);
}

}  // namespace
}  // namespace ara
