// Direct unit tests of the fused per-trial kernel math — the routine
// every parallel engine's inner loop is built from.
#include "core/trial_math.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ara {
namespace {

struct Fixture {
  Portfolio portfolio;
  TableStore<double> tables;

  explicit Fixture(LayerTerms lt, FinancialTerms ft = {})
      : portfolio(make_portfolio(lt, ft)),
        tables(build_tables<double>(portfolio)) {}

  static Portfolio make_portfolio(LayerTerms lt, FinancialTerms ft) {
    std::vector<Elt> elts;
    elts.emplace_back(
        std::vector<EventLoss>{{1, 100.0}, {2, 200.0}, {3, 300.0}}, ft, 10);
    elts.emplace_back(std::vector<EventLoss>{{2, 50.0}, {4, 400.0}}, ft, 10);
    return Portfolio(std::move(elts), {Layer{"L", {0, 1}, lt}});
  }

  TrialOutcome<double> run(const std::vector<EventOccurrence>& events) {
    const BoundLayer<double> layer = bind_layer(portfolio, tables, 0);
    return simulate_trial_fused<double>(
        std::span<const EventOccurrence>(events), layer);
  }
};

TEST(TrialMath, EmptyTrialZeroOutcome) {
  Fixture f(LayerTerms::identity());
  const auto out = f.run({});
  EXPECT_DOUBLE_EQ(out.annual, 0.0);
  EXPECT_DOUBLE_EQ(out.max_occurrence, 0.0);
}

TEST(TrialMath, SumsAcrossEltsPerEvent) {
  Fixture f(LayerTerms::identity());
  // event 2 is in both ELTs: 200 + 50.
  const auto out = f.run({{2, 1}});
  EXPECT_DOUBLE_EQ(out.annual, 250.0);
  EXPECT_DOUBLE_EQ(out.max_occurrence, 250.0);
}

TEST(TrialMath, UnknownEventContributesZero) {
  Fixture f(LayerTerms::identity());
  const auto out = f.run({{9, 1}, {10, 2}});
  EXPECT_DOUBLE_EQ(out.annual, 0.0);
}

TEST(TrialMath, MaxOccurrenceTracksLargestClampedEvent) {
  LayerTerms lt;
  lt.occ_limit = 260.0;
  Fixture f(lt);
  const auto out = f.run({{1, 1}, {4, 2}, {2, 3}});
  // events: 100, 400->260 (clamped), 250. Max clamped = 260.
  EXPECT_DOUBLE_EQ(out.max_occurrence, 260.0);
  EXPECT_DOUBLE_EQ(out.annual, 100.0 + 260.0 + 250.0);
}

TEST(TrialMath, AggregateTermsTelescopeToClampedTotal) {
  LayerTerms lt;
  lt.agg_retention = 150.0;
  lt.agg_limit = 400.0;
  Fixture f(lt);
  const auto out = f.run({{1, 1}, {2, 2}, {3, 3}, {4, 4}});
  // Occurrence losses: 100, 250, 300, 400; total 1050.
  // Annual = clamp(1050 - 150, 0, 400) = 400.
  EXPECT_DOUBLE_EQ(out.annual, 400.0);
}

TEST(TrialMath, FinancialTermsAppliedBeforeCombining) {
  FinancialTerms ft;
  ft.retention = 150.0;
  Fixture f(LayerTerms::identity(), ft);
  // event 2: ELT1 200-150=50; ELT2 50-150 -> 0. Combined 50 (not
  // (200+50)-150=100, which would be applying terms after combining).
  const auto out = f.run({{2, 1}});
  EXPECT_DOUBLE_EQ(out.annual, 50.0);
}

TEST(TrialMath, FloatInstantiationTracksDouble) {
  LayerTerms lt;
  lt.occ_retention = 10.0;
  lt.agg_limit = 500.0;
  std::vector<Elt> elts;
  FinancialTerms ft;
  ft.share = 0.7;
  elts.emplace_back(std::vector<EventLoss>{{1, 123.456}, {2, 654.321}}, ft,
                    10);
  Portfolio p(std::move(elts), {Layer{"L", {0}, lt}});
  const TableStore<double> td = build_tables<double>(p);
  const TableStore<float> tf = build_tables<float>(p);
  const std::vector<EventOccurrence> trial = {{1, 1}, {2, 2}, {1, 3}};
  const auto d = simulate_trial_fused<double>(
      std::span<const EventOccurrence>(trial), bind_layer(p, td, 0));
  const auto f = simulate_trial_fused<float>(
      std::span<const EventOccurrence>(trial), bind_layer(p, tf, 0));
  EXPECT_NEAR(static_cast<double>(f.annual), d.annual,
              1e-4 * (1.0 + d.annual));
}

TEST(TrialMath, BoundLayerResolvesLayerOrder) {
  Fixture f(LayerTerms::identity());
  const BoundLayer<double> layer = bind_layer(f.portfolio, f.tables, 0);
  EXPECT_EQ(layer.elt_count(), 2u);
  EXPECT_DOUBLE_EQ(layer.tables[0]->at(1), 100.0);
  EXPECT_DOUBLE_EQ(layer.tables[1]->at(4), 400.0);
}

TEST(TrialMath, TableStorePerLayerShapes) {
  std::vector<Elt> elts;
  elts.emplace_back(std::vector<EventLoss>{{1, 1.0}},
                    FinancialTerms::identity(), 10);
  elts.emplace_back(std::vector<EventLoss>{{2, 2.0}},
                    FinancialTerms::identity(), 10);
  Portfolio p(std::move(elts),
              {Layer{"a", {0}, LayerTerms::identity()},
               Layer{"b", {0, 1}, LayerTerms::identity()}});
  const TableStore<double> store = build_tables<double>(p);
  ASSERT_EQ(store.per_layer.size(), 2u);
  EXPECT_EQ(store.per_layer[0].size(), 1u);
  EXPECT_EQ(store.per_layer[1].size(), 2u);
}

// Layers sharing an ELT must share one dense table, not build one per
// (layer, ELT) pair — the per-run allocation churn the session cache
// exists to amortise.
TEST(TrialMath, TableStoreDeduplicatesSharedElts) {
  std::vector<Elt> elts;
  elts.emplace_back(std::vector<EventLoss>{{1, 1.0}},
                    FinancialTerms::identity(), 10);
  elts.emplace_back(std::vector<EventLoss>{{2, 2.0}},
                    FinancialTerms::identity(), 10);
  elts.emplace_back(std::vector<EventLoss>{{3, 3.0}},
                    FinancialTerms::identity(), 10);
  Portfolio p(std::move(elts),
              {Layer{"a", {0, 1}, LayerTerms::identity()},
               Layer{"b", {1, 0}, LayerTerms::identity()},
               Layer{"c", {0, 1}, LayerTerms::identity()}});
  const TableStore<double> store = build_tables<double>(p);
  // ELT 2 is unreferenced; only two tables materialise for 6 views.
  EXPECT_EQ(store.distinct_table_count(), 2u);
  EXPECT_EQ(store.per_layer[0][0], store.per_layer[1][1]);  // both ELT 0
  EXPECT_EQ(store.per_layer[0][1], store.per_layer[1][0]);  // both ELT 1
  EXPECT_EQ(store.per_layer[0][0], store.per_layer[2][0]);
  EXPECT_DOUBLE_EQ(store.per_layer[1][0]->at(2), 2.0);
}

// A moved-from-into store keeps its per_layer views valid (the session
// cache moves stores into unique_ptr-held slots).
TEST(TrialMath, TableStoreSurvivesMove) {
  Fixture f(LayerTerms::identity());
  TableStore<double> store = build_tables<double>(f.portfolio);
  const TableStore<double> moved = std::move(store);
  EXPECT_DOUBLE_EQ(moved.per_layer[0][0]->at(1), 100.0);
  EXPECT_DOUBLE_EQ(moved.per_layer[0][1]->at(4), 400.0);
}

// The tentpole property: the trial-major multilayer sweep must be
// bitwise identical, layer by layer, to running simulate_trial_fused
// per layer — including shared ELTs, clamping terms, and both
// precisions.
template <typename Real>
void expect_multilayer_matches_fused(const Portfolio& p,
                                     const std::vector<EventOccurrence>& trial) {
  const TableStore<Real> store = build_tables<Real>(p);
  const std::vector<BoundLayer<Real>> layers = bind_all_layers(p, store);
  std::vector<LayerTrialState<Real>> state(layers.size());
  simulate_trial_multilayer<Real>(std::span<const EventOccurrence>(trial),
                                  layers, state);
  for (std::size_t a = 0; a < layers.size(); ++a) {
    const TrialOutcome<Real> fused = simulate_trial_fused<Real>(
        std::span<const EventOccurrence>(trial), layers[a]);
    ASSERT_EQ(state[a].out.annual, fused.annual) << "layer " << a;
    ASSERT_EQ(state[a].out.max_occurrence, fused.max_occurrence)
        << "layer " << a;
  }
}

TEST(TrialMath, MultilayerBitwiseMatchesPerLayerFused) {
  std::vector<Elt> elts;
  FinancialTerms ft;
  ft.retention = 30.0;
  ft.share = 0.8;
  elts.emplace_back(
      std::vector<EventLoss>{{1, 100.0}, {2, 200.0}, {3, 300.0}}, ft, 10);
  elts.emplace_back(std::vector<EventLoss>{{2, 50.0}, {4, 400.0}}, ft, 10);
  elts.emplace_back(std::vector<EventLoss>{{5, 750.0}, {1, 20.0}}, ft, 10);
  LayerTerms occ_capped;
  occ_capped.occ_limit = 260.0;
  LayerTerms agg_capped;
  agg_capped.agg_retention = 100.0;
  agg_capped.agg_limit = 500.0;
  Portfolio p(std::move(elts),
              {Layer{"full", {0, 1, 2}, LayerTerms::identity()},
               Layer{"occ", {1, 0}, occ_capped},
               Layer{"agg", {2}, agg_capped}});
  const std::vector<EventOccurrence> trial = {{1, 1}, {4, 2}, {2, 3},
                                              {5, 4}, {9, 5}, {1, 6}};
  expect_multilayer_matches_fused<double>(p, trial);
  expect_multilayer_matches_fused<float>(p, trial);
}

TEST(TrialMath, MultilayerEmptyTrialAndStateReset) {
  Fixture f(LayerTerms::identity());
  const std::vector<BoundLayer<double>> layers =
      bind_all_layers(f.portfolio, f.tables);
  std::vector<LayerTrialState<double>> state(layers.size());
  // Dirty state must be reset on entry.
  state[0].cumulative = 123.0;
  state[0].out.annual = 456.0;
  simulate_trial_multilayer<double>(std::span<const EventOccurrence>{},
                                    layers, state);
  EXPECT_DOUBLE_EQ(state[0].out.annual, 0.0);
  EXPECT_DOUBLE_EQ(state[0].out.max_occurrence, 0.0);
}

}  // namespace
}  // namespace ara
