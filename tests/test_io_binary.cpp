#include "io/binary.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "core/reference_engine.hpp"
#include "synth/scenarios.hpp"
#include "testdata.hpp"

namespace ara::io {
namespace {

TEST(BinaryIo, YetRoundTrip) {
  const synth::Scenario s = synth::tiny(32, 3);
  std::stringstream buf;
  write_yet(buf, s.yet);
  const Yet loaded = read_yet(buf);
  EXPECT_EQ(loaded.catalogue_size(), s.yet.catalogue_size());
  EXPECT_EQ(loaded.trial_count(), s.yet.trial_count());
  EXPECT_EQ(loaded.occurrences(), s.yet.occurrences());
  EXPECT_EQ(loaded.offsets(), s.yet.offsets());
}

TEST(BinaryIo, EltRoundTrip) {
  Elt elt({{3, 1.5}, {7, 2.25}}, {1.1, 10.0, 1e6, 0.75}, 100);
  std::stringstream buf;
  write_elt(buf, elt);
  const Elt loaded = read_elt(buf);
  EXPECT_EQ(loaded.records(), elt.records());
  EXPECT_EQ(loaded.terms(), elt.terms());
  EXPECT_EQ(loaded.catalogue_size(), 100u);
}

TEST(BinaryIo, PortfolioRoundTrip) {
  const synth::Scenario s = synth::tiny(4, 7);
  std::stringstream buf;
  write_portfolio(buf, s.portfolio);
  const Portfolio loaded = read_portfolio(buf);
  ASSERT_EQ(loaded.elt_count(), s.portfolio.elt_count());
  ASSERT_EQ(loaded.layer_count(), s.portfolio.layer_count());
  for (std::size_t i = 0; i < loaded.elt_count(); ++i) {
    EXPECT_EQ(loaded.elts()[i].records(), s.portfolio.elts()[i].records());
  }
  for (std::size_t i = 0; i < loaded.layer_count(); ++i) {
    EXPECT_EQ(loaded.layers()[i].name, s.portfolio.layers()[i].name);
    EXPECT_EQ(loaded.layers()[i].elt_indices,
              s.portfolio.layers()[i].elt_indices);
    EXPECT_EQ(loaded.layers()[i].terms, s.portfolio.layers()[i].terms);
  }
}

TEST(BinaryIo, YltRoundTrip) {
  const synth::Scenario s = synth::tiny(16, 2);
  ReferenceEngine engine;
  const Ylt ylt = engine.run(s.portfolio, s.yet).ylt;
  std::stringstream buf;
  write_ylt(buf, ylt);
  const Ylt loaded = read_ylt(buf);
  ASSERT_EQ(loaded.layer_count(), ylt.layer_count());
  ASSERT_EQ(loaded.trial_count(), ylt.trial_count());
  EXPECT_EQ(loaded.annual_raw(), ylt.annual_raw());
  EXPECT_EQ(loaded.max_occurrence_raw(), ylt.max_occurrence_raw());
}

TEST(BinaryIo, RejectsBadMagic) {
  std::stringstream buf;
  buf << "NOTAMAGICHEADER and some garbage";
  EXPECT_THROW(read_yet(buf), std::runtime_error);
}

TEST(BinaryIo, RejectsWrongTypeMagic) {
  const synth::Scenario s = synth::tiny(4, 1);
  std::stringstream buf;
  write_yet(buf, s.yet);
  EXPECT_THROW(read_elt(buf), std::runtime_error);  // YET magic, ELT reader
}

TEST(BinaryIo, RejectsTruncatedStream) {
  const synth::Scenario s = synth::tiny(16, 4);
  std::stringstream buf;
  write_yet(buf, s.yet);
  const std::string full = buf.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(read_yet(truncated), std::runtime_error);
}

TEST(BinaryIo, RejectsEmptyStream) {
  std::stringstream buf;
  EXPECT_THROW(read_portfolio(buf), std::runtime_error);
}

TEST(BinaryIo, FileHelpersRoundTrip) {
  const synth::Scenario s = synth::tiny(8, 5);
  // All fixture paths come from the shared helper, so the suite does
  // not depend on the build/working directory (tests/testdata.hpp).
  save_yet(testdata::scratch_path("binary_io_yet.bin"), s.yet);
  save_portfolio(testdata::scratch_path("binary_io_portfolio.bin"),
                 s.portfolio);
  const Yet yet = load_yet(testdata::scratch_path("binary_io_yet.bin"));
  const Portfolio p =
      load_portfolio(testdata::scratch_path("binary_io_portfolio.bin"));
  EXPECT_EQ(yet.occurrences(), s.yet.occurrences());
  EXPECT_EQ(p.layer_count(), s.portfolio.layer_count());
  EXPECT_THROW(load_yet(testdata::scratch_path("does_not_exist.bin")),
               std::runtime_error);
}

TEST(BinaryIo, YltTrailerDetectsBitFlips) {
  const synth::Scenario s = synth::tiny(16, 2);
  ReferenceEngine engine;
  const Ylt ylt = engine.run(s.portfolio, s.yet).ylt;
  std::stringstream buf;
  write_ylt(buf, ylt);
  std::string bytes = buf.str();
  // A flip anywhere in either table must fail the load with a message
  // naming the corrupted row. Header: 8 magic + 4 version + 2 x u64.
  const std::size_t header = 8 + 4 + 8 + 8;
  const std::size_t table_bytes =
      ylt.layer_count() * ylt.trial_count() * sizeof(double);
  for (const std::size_t offset :
       {header, header + table_bytes / 2, header + 2 * table_bytes - 1}) {
    std::string corrupt = bytes;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x10);
    std::stringstream in(corrupt);
    try {
      read_ylt(in);
      FAIL() << "flip at byte " << offset << " loaded silently";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("checksum mismatch"),
                std::string::npos)
          << e.what();
    }
  }
  // A flip inside the trailer itself must also refuse the load.
  std::string corrupt = bytes;
  corrupt.back() = static_cast<char>(corrupt.back() ^ 0x01);
  std::stringstream in(corrupt);
  EXPECT_THROW(read_ylt(in), std::runtime_error);
  // The unflipped bytes still load, and bitwise match.
  std::stringstream ok(bytes);
  EXPECT_EQ(read_ylt(ok).annual_raw(), ylt.annual_raw());
}

TEST(BinaryIo, YltTruncatedTrailerFailsLoudly) {
  const synth::Scenario s = synth::tiny(8, 1);
  ReferenceEngine engine;
  const Ylt ylt = engine.run(s.portfolio, s.yet).ylt;
  std::stringstream buf;
  write_ylt(buf, ylt);
  std::string bytes = buf.str();
  bytes.resize(bytes.size() - 2);  // half a trailer CRC missing
  std::stringstream in(bytes);
  EXPECT_THROW(read_ylt(in), std::runtime_error);
}

TEST(BinaryIo, YltVersionOneFilesStillLoad) {
  // Files written before the CRC trailer (version 1: header + the two
  // tables, nothing after) must keep loading byte for byte.
  const synth::Scenario s = synth::tiny(12, 3);
  ReferenceEngine engine;
  const Ylt ylt = engine.run(s.portfolio, s.yet).ylt;
  std::stringstream v1;
  v1.write("ARAYLT01", 8);
  const std::uint32_t version = 1;
  v1.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const std::uint64_t layers = ylt.layer_count();
  const std::uint64_t trials = ylt.trial_count();
  v1.write(reinterpret_cast<const char*>(&layers), sizeof(layers));
  v1.write(reinterpret_cast<const char*>(&trials), sizeof(trials));
  v1.write(reinterpret_cast<const char*>(ylt.annual_raw().data()),
           static_cast<std::streamsize>(ylt.annual_raw().size() *
                                        sizeof(double)));
  v1.write(reinterpret_cast<const char*>(ylt.max_occurrence_raw().data()),
           static_cast<std::streamsize>(ylt.max_occurrence_raw().size() *
                                        sizeof(double)));
  const Ylt loaded = read_ylt(v1);
  EXPECT_EQ(loaded.annual_raw(), ylt.annual_raw());
  EXPECT_EQ(loaded.max_occurrence_raw(), ylt.max_occurrence_raw());
}

TEST(BinaryIo, AnalysisReproducibleFromSavedInputs) {
  // Save -> load -> run must equal run on the originals (bitwise).
  const synth::Scenario s = synth::tiny(16, 6);
  std::stringstream ybuf, pbuf;
  write_yet(ybuf, s.yet);
  write_portfolio(pbuf, s.portfolio);
  const Yet yet = read_yet(ybuf);
  const Portfolio portfolio = read_portfolio(pbuf);
  ReferenceEngine engine;
  const Ylt a = engine.run(s.portfolio, s.yet).ylt;
  const Ylt b = engine.run(portfolio, yet).ylt;
  EXPECT_EQ(a.annual_raw(), b.annual_raw());
}

}  // namespace
}  // namespace ara::io
