#include "core/yet.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace ara {
namespace {

std::vector<std::vector<EventOccurrence>> sample_trials() {
  return {
      {{3, 10}, {7, 20}, {3, 30}},
      {},
      {{1, 5}},
      {{9, 1}, {9, 1}, {2, 365}},
  };
}

TEST(Yet, BuildsFromTrialVectors) {
  const Yet yet(sample_trials(), 10);
  EXPECT_EQ(yet.trial_count(), 4u);
  EXPECT_EQ(yet.occurrence_count(), 7u);
  EXPECT_EQ(yet.catalogue_size(), 10u);
  EXPECT_DOUBLE_EQ(yet.mean_events_per_trial(), 7.0 / 4.0);
}

TEST(Yet, TrialSpansMatchInput) {
  const Yet yet(sample_trials(), 10);
  const auto t0 = yet.trial(0);
  ASSERT_EQ(t0.size(), 3u);
  EXPECT_EQ(t0[0].event, 3u);
  EXPECT_EQ(t0[1].event, 7u);
  EXPECT_EQ(t0[2].time, 30u);
  EXPECT_EQ(yet.trial(1).size(), 0u);
  EXPECT_EQ(yet.trial_size(2), 1u);
  EXPECT_EQ(yet.trial_size(3), 3u);
}

TEST(Yet, EmptyYetIsLegal) {
  const Yet yet(std::vector<std::vector<EventOccurrence>>{}, 5);
  EXPECT_EQ(yet.trial_count(), 0u);
  EXPECT_EQ(yet.occurrence_count(), 0u);
  EXPECT_DOUBLE_EQ(yet.mean_events_per_trial(), 0.0);
}

TEST(Yet, RejectsZeroCatalogue) {
  EXPECT_THROW(Yet(sample_trials(), 0), std::invalid_argument);
}

TEST(Yet, RejectsEventIdZero) {
  std::vector<std::vector<EventOccurrence>> trials = {{{0, 10}}};
  EXPECT_THROW(Yet(trials, 10), std::invalid_argument);
}

TEST(Yet, RejectsEventBeyondCatalogue) {
  std::vector<std::vector<EventOccurrence>> trials = {{{11, 10}}};
  EXPECT_THROW(Yet(trials, 10), std::invalid_argument);
}

TEST(Yet, RejectsUnorderedTimestamps) {
  std::vector<std::vector<EventOccurrence>> trials = {{{3, 20}, {4, 10}}};
  EXPECT_THROW(Yet(trials, 10), std::invalid_argument);
}

TEST(Yet, AcceptsEqualTimestamps) {
  std::vector<std::vector<EventOccurrence>> trials = {{{3, 20}, {4, 20}}};
  EXPECT_NO_THROW(Yet(trials, 10));
}

TEST(Yet, CsrConstructorRoundTrips) {
  const Yet a(sample_trials(), 10);
  const Yet b(a.occurrences(), a.offsets(), 10);
  EXPECT_EQ(b.trial_count(), a.trial_count());
  EXPECT_EQ(b.occurrence_count(), a.occurrence_count());
  for (TrialId t = 0; t < a.trial_count(); ++t) {
    ASSERT_EQ(b.trial_size(t), a.trial_size(t));
  }
}

TEST(Yet, CsrConstructorRejectsMalformedOffsets) {
  const Yet a(sample_trials(), 10);
  // offsets not ending at occurrence count
  std::vector<std::size_t> bad = a.offsets();
  bad.back() += 1;
  EXPECT_THROW(Yet(a.occurrences(), bad, 10), std::invalid_argument);
  // empty offsets
  EXPECT_THROW(Yet(a.occurrences(), {}, 10), std::invalid_argument);
  // non-monotone offsets ({0,3,3,4,7} -> {0,3,4,3,7})
  std::vector<std::size_t> nonmono = a.offsets();
  ASSERT_GT(nonmono.size(), 3u);
  std::swap(nonmono[2], nonmono[3]);
  EXPECT_THROW(Yet(a.occurrences(), nonmono, 10), std::invalid_argument);
}

TEST(Yet, MemoryBytesAccounts) {
  const Yet yet(sample_trials(), 10);
  EXPECT_EQ(yet.memory_bytes(), 7 * sizeof(EventOccurrence) +
                                    5 * sizeof(std::size_t));
}

}  // namespace
}  // namespace ara
