#include "core/metrics/convergence.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "synth/distributions.hpp"
#include "synth/rng.hpp"

namespace ara::metrics {
namespace {

std::vector<double> lognormal_sample(std::size_t n, std::uint64_t seed,
                                     double cv = 1.5) {
  synth::Xoshiro256StarStar rng(seed);
  synth::LognormalSampler s =
      synth::LognormalSampler::from_mean_cv(1.0e6, cv);
  std::vector<double> out(n);
  for (double& x : out) x = s.sample(rng);
  return out;
}

TEST(AalConvergence, StandardErrorShrinksAsRootN) {
  // Mild tail (cv 0.5) so the sd estimate itself is stable enough for
  // a quantitative 1/sqrt(n) check.
  const auto losses = lognormal_sample(40000, 1, 0.5);
  const auto curve =
      aal_convergence(losses, {100, 400, 1600, 6400, 25600});
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LT(curve[i].std_error, curve[i - 1].std_error);
  }
  // 16x the sample (1600 -> 25600) should quarter the SE.
  EXPECT_NEAR(curve[2].std_error / curve[4].std_error, 4.0, 0.8);
}

TEST(AalConvergence, EstimateApproachesTrueMean) {
  const auto losses = lognormal_sample(40000, 2);
  const auto curve = aal_convergence(losses, {40000});
  EXPECT_NEAR(curve[0].estimate, 1.0e6, 3.0 * curve[0].std_error + 2e4);
}

TEST(AalConvergence, ValidatesSizes) {
  const auto losses = lognormal_sample(100, 3);
  EXPECT_THROW(aal_convergence(losses, {}), std::invalid_argument);
  EXPECT_THROW(aal_convergence(losses, {0}), std::invalid_argument);
  EXPECT_THROW(aal_convergence(losses, {200}), std::invalid_argument);
  EXPECT_THROW(aal_convergence(losses, {50, 20}), std::invalid_argument);
}

TEST(QuantileConvergence, BootstrapSeShrinks) {
  const auto losses = lognormal_sample(20000, 4);
  const auto curve =
      quantile_convergence(losses, 0.99, {500, 2000, 8000}, 100);
  EXPECT_GT(curve[0].std_error, 0.0);
  EXPECT_LT(curve[2].std_error, curve[0].std_error);
}

TEST(QuantileConvergence, DeterministicForSeed) {
  const auto losses = lognormal_sample(2000, 5);
  const auto a = quantile_convergence(losses, 0.95, {1000}, 50, 7);
  const auto b = quantile_convergence(losses, 0.95, {1000}, 50, 7);
  EXPECT_DOUBLE_EQ(a[0].std_error, b[0].std_error);
  const auto c = quantile_convergence(losses, 0.95, {1000}, 50, 8);
  EXPECT_NE(a[0].std_error, c[0].std_error);
}

TEST(QuantileConvergence, ValidatesReps) {
  const auto losses = lognormal_sample(100, 6);
  EXPECT_THROW(quantile_convergence(losses, 0.9, {50}, 1),
               std::invalid_argument);
}

TEST(RequiredTrials, MatchesClosedForm) {
  const auto losses = lognormal_sample(50000, 7);
  // cv ~ 1.5; for 1% relative error at 95%: n ~ (1.96*1.5/0.01)^2 ~ 86k.
  const std::size_t n = required_trials_for_aal(losses, 0.01, 0.95);
  EXPECT_GT(n, 50000u);
  EXPECT_LT(n, 150000u);
  // Looser target -> far fewer trials; 4x looser -> 16x fewer.
  const std::size_t loose = required_trials_for_aal(losses, 0.04, 0.95);
  EXPECT_NEAR(static_cast<double>(n) / static_cast<double>(loose), 16.0,
              0.5);
}

TEST(RequiredTrials, MonotoneInConfidence) {
  const auto losses = lognormal_sample(10000, 8);
  EXPECT_LT(required_trials_for_aal(losses, 0.01, 0.90),
            required_trials_for_aal(losses, 0.01, 0.99));
}

TEST(RequiredTrials, Validates) {
  const auto losses = lognormal_sample(100, 9);
  EXPECT_THROW(required_trials_for_aal(losses, 0.0), std::invalid_argument);
  EXPECT_THROW(required_trials_for_aal(losses, 0.01, 1.5),
               std::invalid_argument);
  const std::vector<double> zeros(10, 0.0);
  EXPECT_THROW(required_trials_for_aal(zeros, 0.01), std::invalid_argument);
}

TEST(AalConvergence, ConstantLossHasZeroStandardError) {
  const std::vector<double> losses(500, 42.0);
  const auto curve = aal_convergence(losses, {10, 500});
  for (const ConvergencePoint& p : curve) {
    EXPECT_DOUBLE_EQ(p.estimate, 42.0);
    EXPECT_DOUBLE_EQ(p.std_error, 0.0);
  }
}

TEST(AalConvergence, SingleTrialHasZeroStandardError) {
  // n == 1 has no dispersion information; the SE must be 0, not NaN
  // from a 1/(n-1) division.
  const std::vector<double> losses = {7.0, 9.0};
  const auto curve = aal_convergence(losses, {1});
  EXPECT_DOUBLE_EQ(curve[0].estimate, 7.0);
  EXPECT_DOUBLE_EQ(curve[0].std_error, 0.0);
}

TEST(QuantileConvergence, ConstantLossHasZeroStandardError) {
  const std::vector<double> losses(400, 13.5);
  const auto curve = quantile_convergence(losses, 0.99, {400}, 64);
  EXPECT_DOUBLE_EQ(curve[0].estimate, 13.5);
  EXPECT_DOUBLE_EQ(curve[0].std_error, 0.0);
}

TEST(AalConvergence, SizesValidationMessages) {
  const auto losses = lognormal_sample(100, 11);
  const auto message_of = [&losses](const std::vector<std::size_t>& sizes) {
    try {
      aal_convergence(losses, sizes);
    } catch (const std::invalid_argument& e) {
      return std::string(e.what());
    }
    return std::string();
  };
  EXPECT_EQ(message_of({}), "convergence: no sizes given");
  EXPECT_EQ(message_of({0}),
            "convergence: sizes must be non-decreasing, positive, and "
            "within the sample");
  EXPECT_EQ(message_of({200}),
            "convergence: sizes must be non-decreasing, positive, and "
            "within the sample");
  EXPECT_EQ(message_of({50, 20}),
            "convergence: sizes must be non-decreasing, positive, and "
            "within the sample");
}

TEST(RequiredTrials, RejectsNonPositiveAndNonFiniteRelativeError) {
  const auto losses = lognormal_sample(100, 12);
  EXPECT_THROW(required_trials_for_aal(losses, -0.01),
               std::invalid_argument);
  EXPECT_THROW(
      required_trials_for_aal(losses,
                              std::numeric_limits<double>::infinity()),
      std::invalid_argument);
  EXPECT_THROW(
      required_trials_for_aal(losses,
                              std::numeric_limits<double>::quiet_NaN()),
      std::invalid_argument);
}

TEST(RequiredTrials, SaturatesInsteadOfOverflowing) {
  // A vanishing relative error demands more trials than size_t can
  // hold; the cast must saturate, not wrap to a small number.
  const auto losses = lognormal_sample(1000, 13);
  EXPECT_EQ(required_trials_for_aal(losses, 1.0e-12),
            std::numeric_limits<std::size_t>::max());
}

TEST(RequiredTrials, PaperScaleSanity) {
  // At the paper workload's loss profile (heavy-tailed annual losses),
  // ~1M trials supports sub-percent AAL precision — consistent with
  // the paper's choice of YET size.
  const auto losses = lognormal_sample(50000, 10);
  const std::size_t n = required_trials_for_aal(losses, 0.003, 0.95);
  EXPECT_LT(n, 1000000u);
}

}  // namespace
}  // namespace ara::metrics
