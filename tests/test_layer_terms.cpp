#include "core/layer_terms.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

namespace ara {
namespace {

TEST(XlClamp, BasicBehaviour) {
  EXPECT_DOUBLE_EQ(xl_clamp(50.0, 100.0, 1000.0), 0.0);
  EXPECT_DOUBLE_EQ(xl_clamp(100.0, 100.0, 1000.0), 0.0);
  EXPECT_DOUBLE_EQ(xl_clamp(600.0, 100.0, 1000.0), 500.0);
  EXPECT_DOUBLE_EQ(xl_clamp(5000.0, 100.0, 1000.0), 1000.0);
}

TEST(LayerTerms, IdentityIsNoOp) {
  const LayerTerms t = LayerTerms::identity();
  EXPECT_DOUBLE_EQ(apply_occurrence_terms(123.0, t), 123.0);
  EXPECT_DOUBLE_EQ(apply_aggregate_terms(456.0, t), 456.0);
}

TEST(LayerTerms, OccurrenceUsesOccFields) {
  LayerTerms t;
  t.occ_retention = 10.0;
  t.occ_limit = 100.0;
  t.agg_retention = 1e9;  // must not affect occurrence terms
  EXPECT_DOUBLE_EQ(apply_occurrence_terms(50.0, t), 40.0);
  EXPECT_DOUBLE_EQ(apply_occurrence_terms(500.0, t), 100.0);
}

TEST(LayerTerms, AggregateUsesAggFields) {
  LayerTerms t;
  t.agg_retention = 100.0;
  t.agg_limit = 300.0;
  t.occ_retention = 1e9;  // must not affect aggregate terms
  EXPECT_DOUBLE_EQ(apply_aggregate_terms(150.0, t), 50.0);
  EXPECT_DOUBLE_EQ(apply_aggregate_terms(1000.0, t), 300.0);
}

TEST(LayerTerms, Validity) {
  EXPECT_TRUE(LayerTerms::identity().valid());
  LayerTerms bad;
  bad.occ_retention = -5.0;
  EXPECT_FALSE(bad.valid());
}

// The year-loss identity behind Algorithm 1 lines 18-29: summing the
// differenced, clamped prefix sums equals clamping the total once.
// This is the invariant the fused engines rely on.
class AggregateTelescopeProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(AggregateTelescopeProperty, DifferencedPrefixSumsTelescope) {
  const auto [agg_ret, agg_lim] = GetParam();
  LayerTerms t;
  t.agg_retention = agg_ret;
  t.agg_limit = agg_lim;

  const std::vector<std::vector<double>> cases = {
      {},
      {0.0},
      {10.0},
      {100.0, 200.0, 50.0},
      {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0},
      {500.0, 0.0, 0.0, 700.0},
      {1e6},
  };
  for (const auto& occ_losses : cases) {
    // Literal: prefix sums, clamp each, difference, sum.
    double total = 0.0;
    std::vector<double> prefix;
    double running = 0.0;
    for (const double l : occ_losses) {
      running += l;
      prefix.push_back(apply_aggregate_terms(running, t));
    }
    for (std::size_t d = 0; d < prefix.size(); ++d) {
      total += prefix[d] - (d ? prefix[d - 1] : 0.0);
    }
    // Closed form: clamp the full-year total once.
    double sum = 0.0;
    for (const double l : occ_losses) sum += l;
    const double closed = apply_aggregate_terms(sum, t);
    EXPECT_NEAR(total, closed, 1e-9 * (1.0 + closed));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AggGrid, AggregateTelescopeProperty,
    ::testing::Combine(::testing::Values(0.0, 5.0, 150.0, 1e5),
                       ::testing::Values(1.0, 300.0, 1e7)));

// Occurrence output bounded by occ_limit regardless of input.
TEST(LayerTermsProperty, OccurrenceBounded) {
  for (double ret : {0.0, 10.0, 1e4}) {
    for (double lim : {1.0, 250.0, 1e6}) {
      LayerTerms t;
      t.occ_retention = ret;
      t.occ_limit = lim;
      for (double x = 0.0; x < 3e6; x = x * 3 + 7) {
        const double out = apply_occurrence_terms(x, t);
        EXPECT_GE(out, 0.0);
        EXPECT_LE(out, lim);
      }
    }
  }
}

}  // namespace
}  // namespace ara
