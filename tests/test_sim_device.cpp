#include "simgpu/sim_device.hpp"

#include <gtest/gtest.h>

#include <new>
#include <stdexcept>
#include <vector>

namespace ara::simgpu {
namespace {

LaunchConfig small_launch() {
  LaunchConfig c;
  c.grid_blocks = 4;
  c.block_threads = 32;
  c.regs_per_thread = 20;
  return c;
}

ara::OpCounts small_ops() {
  ara::OpCounts ops;
  ops.elt_lookups = 1000;
  ops.event_fetches = 100;
  return ops;
}

TEST(SimDevice, MemoryLedgerTracksAllocations) {
  SimDevice dev(tesla_c2075());
  EXPECT_EQ(dev.allocated_bytes(), 0u);
  dev.alloc(1000);
  dev.alloc(500);
  EXPECT_EQ(dev.allocated_bytes(), 1500u);
  dev.free(500);
  EXPECT_EQ(dev.allocated_bytes(), 1000u);
}

TEST(SimDevice, AllocBeyondGlobalMemoryThrows) {
  SimDevice dev(tesla_c2075());
  // The full-precision YET of the paper workload (1e9 events x 8 B)
  // would NOT fit in 5.375 GB — the failure that motivates shipping
  // event ids only.
  EXPECT_THROW(dev.alloc(8ULL * 1000 * 1000 * 1000), std::bad_alloc);
  // Ids only (4 GB) fit.
  EXPECT_NO_THROW(dev.alloc(4ULL * 1000 * 1000 * 1000));
}

TEST(SimDevice, FreeMoreThanAllocatedThrows) {
  SimDevice dev(tesla_c2075());
  dev.alloc(100);
  EXPECT_THROW(dev.free(200), std::logic_error);
}

TEST(SimDevice, LaunchExecutesEveryThread) {
  SimDevice dev(tesla_c2075());
  std::vector<int> hits(4 * 32, 0);
  dev.launch("k", small_launch(), KernelTraits{}, small_ops(),
             [&](const SimDevice::ThreadCtx& ctx) {
               ++hits[ctx.global_id()];
               EXPECT_EQ(ctx.global_id(),
                         static_cast<std::size_t>(ctx.block) * 32 + ctx.thread);
             });
  for (const int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST(SimDevice, LaunchAccumulatesTimeline) {
  SimDevice dev(tesla_c2075());
  EXPECT_DOUBLE_EQ(dev.elapsed_seconds(), 0.0);
  dev.launch("k1", small_launch(), KernelTraits{}, small_ops(),
             [](const SimDevice::ThreadCtx&) {});
  const double after_one = dev.elapsed_seconds();
  EXPECT_GT(after_one, 0.0);
  dev.launch("k2", small_launch(), KernelTraits{}, small_ops(),
             [](const SimDevice::ThreadCtx&) {});
  EXPECT_NEAR(dev.elapsed_seconds(), 2.0 * after_one, 1e-12);
  EXPECT_EQ(dev.launches().size(), 2u);
  EXPECT_EQ(dev.launches()[0].kernel_name, "k1");
}

TEST(SimDevice, InfeasibleLaunchThrowsWithoutExecuting) {
  SimDevice dev(tesla_c2075());
  LaunchConfig bad = small_launch();
  bad.shared_bytes_per_block = 100 * 1024;
  int executed = 0;
  EXPECT_THROW(dev.launch("bad", bad, KernelTraits{}, small_ops(),
                          [&](const SimDevice::ThreadCtx&) { ++executed; }),
               std::runtime_error);
  EXPECT_EQ(executed, 0);
  EXPECT_DOUBLE_EQ(dev.elapsed_seconds(), 0.0);
}

TEST(SimDevice, CopyChargesTransferPhase) {
  SimDevice dev(tesla_c2075());
  const double s = dev.copy(6ULL * 1000 * 1000 * 1000);
  EXPECT_NEAR(s, 1.0, 1e-9);
  EXPECT_NEAR(dev.transfer_seconds(), 1.0, 1e-9);
  EXPECT_NEAR(dev.phase_seconds()[perf::Phase::kTransfer], 1.0, 1e-9);
  EXPECT_NEAR(dev.elapsed_seconds(), 1.0, 1e-9);
}

TEST(SimDevice, ResetTimelineKeepsMemoryLedger) {
  SimDevice dev(tesla_c2075());
  dev.alloc(123);
  dev.copy(1000);
  dev.launch_cost_only("k", small_launch(), KernelTraits{}, small_ops());
  dev.reset_timeline();
  EXPECT_DOUBLE_EQ(dev.elapsed_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(dev.transfer_seconds(), 0.0);
  EXPECT_TRUE(dev.launches().empty());
  EXPECT_EQ(dev.allocated_bytes(), 123u);
}

TEST(SimDevice, CostOnlyMatchesExecutingLaunch) {
  SimDevice a(tesla_c2075());
  SimDevice b(tesla_c2075());
  const KernelCost ca =
      a.launch_cost_only("k", small_launch(), KernelTraits{}, small_ops());
  const KernelCost cb = b.launch("k", small_launch(), KernelTraits{},
                                 small_ops(), [](const auto&) {});
  EXPECT_DOUBLE_EQ(ca.total_seconds, cb.total_seconds);
  EXPECT_DOUBLE_EQ(a.elapsed_seconds(), b.elapsed_seconds());
}

}  // namespace
}  // namespace ara::simgpu
