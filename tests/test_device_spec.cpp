#include "simgpu/device_spec.hpp"

#include <gtest/gtest.h>

namespace ara::simgpu {
namespace {

TEST(DeviceSpec, C2075MatchesPublishedNumbers) {
  const DeviceSpec d = tesla_c2075();
  EXPECT_EQ(d.name, "Tesla C2075");
  EXPECT_EQ(d.sm_count * d.cores_per_sm, 448u);  // paper: 448 cores
  EXPECT_DOUBLE_EQ(d.clock_ghz, 1.15);
  EXPECT_DOUBLE_EQ(d.mem_bandwidth_gbps, 144.0);
  EXPECT_DOUBLE_EQ(d.flops_dp, 515e9);
  EXPECT_DOUBLE_EQ(d.flops_sp, 1.03e12);
  EXPECT_NEAR(static_cast<double>(d.global_mem_bytes), 5.375 * (1ULL << 30),
              1.0);
}

TEST(DeviceSpec, M2090MatchesPublishedNumbers) {
  const DeviceSpec d = tesla_m2090();
  EXPECT_EQ(d.sm_count * d.cores_per_sm, 512u);  // paper: 512 cores
  EXPECT_DOUBLE_EQ(d.mem_bandwidth_gbps, 177.0);
  EXPECT_DOUBLE_EQ(d.flops_dp, 665e9);
  EXPECT_DOUBLE_EQ(d.flops_sp, 1.33e12);
}

TEST(DeviceSpec, FermiArchitecturalLimits) {
  for (const DeviceSpec& d : {tesla_c2075(), tesla_m2090()}) {
    EXPECT_EQ(d.warp_size, 32u);
    EXPECT_EQ(d.max_threads_per_sm, 1536u);  // 48 warps
    EXPECT_EQ(d.max_blocks_per_sm, 8u);
    EXPECT_EQ(d.shared_mem_per_sm, 48u * 1024);
    EXPECT_EQ(d.max_threads_per_block, 1024u);
  }
}

TEST(DeviceSpec, MaxResidentThreads) {
  EXPECT_EQ(tesla_c2075().max_resident_threads(), 14u * 1536);
  EXPECT_EQ(tesla_m2090().max_resident_threads(), 16u * 1536);
}

TEST(DeviceSpec, M2090HasHigherRandomThroughputFamily) {
  // Same architecture: identical f64 efficiency, comparable f32.
  EXPECT_DOUBLE_EQ(tesla_c2075().random_access_efficiency_f64,
                   tesla_m2090().random_access_efficiency_f64);
  EXPECT_GT(tesla_m2090().mem_bandwidth_gbps *
                tesla_m2090().random_access_efficiency_f32,
            tesla_c2075().mem_bandwidth_gbps *
                tesla_c2075().random_access_efficiency_f32 * 0.99);
}

}  // namespace
}  // namespace ara::simgpu
