#include "parallel/partition.hpp"

#include <gtest/gtest.h>

namespace ara::parallel {
namespace {

TEST(SplitEven, ExactDivision) {
  const auto r = split_even(100, 4);
  ASSERT_EQ(r.size(), 4u);
  for (const Range& range : r) {
    EXPECT_EQ(range.size(), 25u);
  }
  EXPECT_EQ(r.front().begin, 0u);
  EXPECT_EQ(r.back().end, 100u);
}

TEST(SplitEven, RemainderGoesToFirstRanges) {
  const auto r = split_even(10, 3);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].size(), 4u);
  EXPECT_EQ(r[1].size(), 3u);
  EXPECT_EQ(r[2].size(), 3u);
}

TEST(SplitEven, ContiguousAndComplete) {
  for (std::size_t n : {0u, 1u, 7u, 100u, 1001u}) {
    for (std::size_t parts : {1u, 2u, 3u, 8u, 17u}) {
      const auto r = split_even(n, parts);
      ASSERT_EQ(r.size(), parts);
      std::size_t at = 0;
      for (const Range& range : r) {
        EXPECT_EQ(range.begin, at);
        at = range.end;
      }
      EXPECT_EQ(at, n);
    }
  }
}

TEST(SplitEven, MorePartsThanElements) {
  const auto r = split_even(3, 8);
  ASSERT_EQ(r.size(), 8u);
  std::size_t total = 0;
  for (const Range& range : r) total += range.size();
  EXPECT_EQ(total, 3u);
  EXPECT_TRUE(r.back().empty());
}

TEST(SplitEven, ZeroPartsGivesEmpty) {
  EXPECT_TRUE(split_even(10, 0).empty());
}

TEST(SplitChunks, ExactAndRemainder) {
  const auto r = split_chunks(10, 4);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].size(), 4u);
  EXPECT_EQ(r[1].size(), 4u);
  EXPECT_EQ(r[2].size(), 2u);
}

TEST(SplitChunks, ZeroChunkClampedToOne) {
  const auto r = split_chunks(3, 0);
  EXPECT_EQ(r.size(), 3u);
}

TEST(SplitChunks, EmptyInput) {
  EXPECT_TRUE(split_chunks(0, 8).empty());
}

TEST(ChunkCount, MatchesSplitChunks) {
  for (std::size_t n : {0u, 1u, 5u, 64u, 1000u}) {
    for (std::size_t c : {1u, 2u, 7u, 64u}) {
      EXPECT_EQ(chunk_count(n, c), split_chunks(n, c).size());
    }
  }
}

TEST(Range, SizeAndEmpty) {
  EXPECT_EQ((Range{2, 7}).size(), 5u);
  EXPECT_FALSE((Range{2, 7}).empty());
  EXPECT_TRUE((Range{3, 3}).empty());
}

}  // namespace
}  // namespace ara::parallel
