#include "simgpu/occupancy.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ara::simgpu {
namespace {

LaunchConfig cfg(unsigned block, std::size_t shared = 0, unsigned regs = 20) {
  LaunchConfig c;
  c.grid_blocks = 1000;
  c.block_threads = block;
  c.shared_bytes_per_block = shared;
  c.regs_per_thread = regs;
  return c;
}

TEST(Occupancy, FullOccupancyAt256Threads) {
  const Occupancy o = compute_occupancy(tesla_c2075(), cfg(256));
  EXPECT_TRUE(o.feasible);
  EXPECT_EQ(o.blocks_per_sm, 6u);  // 1536 / 256
  EXPECT_EQ(o.threads_per_sm, 1536u);
  EXPECT_EQ(o.warps_per_sm, 48u);
  EXPECT_DOUBLE_EQ(o.occupancy, 1.0);
}

TEST(Occupancy, BlockCountLimitAtSmallBlocks) {
  // 128-thread blocks: 8-block limit -> 1024 threads (2/3 occupancy).
  const Occupancy o = compute_occupancy(tesla_c2075(), cfg(128));
  EXPECT_EQ(o.blocks_per_sm, 8u);
  EXPECT_EQ(o.threads_per_sm, 1024u);
  EXPECT_NEAR(o.occupancy, 2.0 / 3.0, 1e-9);
  EXPECT_STREQ(o.limiter, "max_blocks_per_sm");
}

TEST(Occupancy, ThreadLimitAtLargeBlocks) {
  // 640-thread blocks: only 2 fit in 1536 threads.
  const Occupancy o = compute_occupancy(tesla_c2075(), cfg(640));
  EXPECT_EQ(o.blocks_per_sm, 2u);
  EXPECT_EQ(o.threads_per_sm, 1280u);
}

TEST(Occupancy, SharedMemoryLimits) {
  // 23 KB/block: two blocks fit in 48 KB.
  const Occupancy o = compute_occupancy(tesla_c2075(), cfg(32, 23 * 1024));
  EXPECT_EQ(o.blocks_per_sm, 2u);
  EXPECT_STREQ(o.limiter, "shared_memory");
  // 45 KB/block: one block.
  const Occupancy o2 = compute_occupancy(tesla_c2075(), cfg(64, 45 * 1024));
  EXPECT_EQ(o2.blocks_per_sm, 1u);
}

TEST(Occupancy, SharedMemoryOverflowInfeasible) {
  const Occupancy o = compute_occupancy(tesla_c2075(), cfg(128, 90 * 1024));
  EXPECT_FALSE(o.feasible);
  EXPECT_EQ(o.blocks_per_sm, 0u);
  EXPECT_EQ(std::string(o.limiter), "shared_memory_per_block");
}

TEST(Occupancy, RegisterLimit) {
  // 63 regs x 512 threads = 32256 regs/block: one block per SM.
  const Occupancy o = compute_occupancy(tesla_c2075(), cfg(512, 0, 63));
  EXPECT_EQ(o.blocks_per_sm, 1u);
  EXPECT_STREQ(o.limiter, "registers");
}

TEST(Occupancy, BlockTooLargeInfeasible) {
  const Occupancy o = compute_occupancy(tesla_c2075(), cfg(2048));
  EXPECT_FALSE(o.feasible);
}

TEST(Occupancy, ZeroThreadsInfeasible) {
  const Occupancy o = compute_occupancy(tesla_c2075(), cfg(0));
  EXPECT_FALSE(o.feasible);
}

TEST(Occupancy, PartialWarpsCountedAsWholeWarps) {
  const Occupancy o = compute_occupancy(tesla_c2075(), cfg(16, 11 * 1024));
  EXPECT_TRUE(o.feasible);
  EXPECT_EQ(o.blocks_per_sm, 4u);       // 48 KB / 11 KB
  EXPECT_EQ(o.warps_per_sm, 4u);        // each 16-thread block = 1 warp
  EXPECT_EQ(o.threads_per_sm, 64u);
}

TEST(Occupancy, PaperOptimizedConfigTwoBlocksPerSm) {
  // The optimised kernel at 32 threads/block, 88-event chunks:
  // 32 * 88 * 8 + 256 = 22784 B -> 2 blocks/SM.
  const Occupancy o =
      compute_occupancy(tesla_m2090(), cfg(32, 32 * 88 * 8 + 256, 63));
  EXPECT_TRUE(o.feasible);
  EXPECT_EQ(o.blocks_per_sm, 2u);
}

}  // namespace
}  // namespace ara::simgpu
