#include "core/financial_terms.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <tuple>

namespace ara {
namespace {

TEST(FinancialTerms, IdentityPassesLossThrough) {
  const FinancialTerms t = FinancialTerms::identity();
  EXPECT_DOUBLE_EQ(apply_financial_terms(0.0, t), 0.0);
  EXPECT_DOUBLE_EQ(apply_financial_terms(123.5, t), 123.5);
  EXPECT_DOUBLE_EQ(apply_financial_terms(1e12, t), 1e12);
}

TEST(FinancialTerms, RetentionDeductsFromLoss) {
  FinancialTerms t;
  t.retention = 100.0;
  EXPECT_DOUBLE_EQ(apply_financial_terms(250.0, t), 150.0);
}

TEST(FinancialTerms, LossBelowRetentionGivesZero) {
  FinancialTerms t;
  t.retention = 100.0;
  EXPECT_DOUBLE_EQ(apply_financial_terms(99.0, t), 0.0);
  EXPECT_DOUBLE_EQ(apply_financial_terms(100.0, t), 0.0);
}

TEST(FinancialTerms, LimitCapsLoss) {
  FinancialTerms t;
  t.limit = 500.0;
  EXPECT_DOUBLE_EQ(apply_financial_terms(750.0, t), 500.0);
  EXPECT_DOUBLE_EQ(apply_financial_terms(400.0, t), 400.0);
}

TEST(FinancialTerms, RetentionAppliesBeforeLimit) {
  FinancialTerms t;
  t.retention = 100.0;
  t.limit = 500.0;
  // 700 - 100 = 600, capped at 500.
  EXPECT_DOUBLE_EQ(apply_financial_terms(700.0, t), 500.0);
  // 550 - 100 = 450, under the limit.
  EXPECT_DOUBLE_EQ(apply_financial_terms(550.0, t), 450.0);
}

TEST(FinancialTerms, FxRateConvertsBeforeRetention) {
  FinancialTerms t;
  t.fx_rate = 2.0;
  t.retention = 100.0;
  // 2 * 80 = 160, minus 100 = 60.
  EXPECT_DOUBLE_EQ(apply_financial_terms(80.0, t), 60.0);
}

TEST(FinancialTerms, ShareAppliesLast) {
  FinancialTerms t;
  t.retention = 100.0;
  t.limit = 500.0;
  t.share = 0.25;
  // (700 - 100 -> capped 500) * 0.25 = 125.
  EXPECT_DOUBLE_EQ(apply_financial_terms(700.0, t), 125.0);
}

TEST(FinancialTerms, ZeroShareZeroesEverything) {
  FinancialTerms t;
  t.share = 0.0;
  EXPECT_DOUBLE_EQ(apply_financial_terms(1e9, t), 0.0);
}

TEST(FinancialTerms, FloatInstantiationMatchesDoubleWithinTolerance) {
  FinancialTerms t;
  t.fx_rate = 1.2;
  t.retention = 55.5;
  t.limit = 700.0;
  t.share = 0.8;
  for (double loss : {0.0, 10.0, 100.0, 555.5, 1234.0}) {
    const double d = apply_financial_terms(loss, t);
    const float f = apply_financial_terms(static_cast<float>(loss), t);
    EXPECT_NEAR(static_cast<double>(f), d, 1e-3 * (1.0 + d));
  }
}

TEST(FinancialTerms, ValidityChecks) {
  EXPECT_TRUE(FinancialTerms::identity().valid());
  FinancialTerms bad_share;
  bad_share.share = 1.5;
  EXPECT_FALSE(bad_share.valid());
  FinancialTerms neg_ret;
  neg_ret.retention = -1.0;
  EXPECT_FALSE(neg_ret.valid());
  FinancialTerms neg_fx;
  neg_fx.fx_rate = -0.1;
  EXPECT_FALSE(neg_fx.valid());
}

// Property sweep: output is bounded by share * limit, non-negative,
// and monotone non-decreasing in the input loss.
class FinancialTermsProperty
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(FinancialTermsProperty, BoundedAndMonotone) {
  const auto [retention, limit, share] = GetParam();
  FinancialTerms t;
  t.retention = retention;
  t.limit = limit;
  t.share = share;
  double prev = -1.0;
  for (double loss = 0.0; loss <= 2000.0; loss += 61.7) {
    const double out = apply_financial_terms(loss, t);
    EXPECT_GE(out, 0.0);
    EXPECT_LE(out, share * limit + 1e-12);
    EXPECT_GE(out, prev);  // monotone in loss
    prev = out;
  }
}

INSTANTIATE_TEST_SUITE_P(
    TermGrid, FinancialTermsProperty,
    ::testing::Combine(::testing::Values(0.0, 50.0, 400.0),
                       ::testing::Values(100.0, 750.0, 1e6),
                       ::testing::Values(0.0, 0.5, 1.0)));

// Monotonicity in the terms themselves: larger retention never
// increases the recovered loss; larger limit never decreases it.
TEST(FinancialTermsProperty, MonotoneInRetentionAndLimit) {
  for (double loss : {0.0, 120.0, 480.0, 1500.0}) {
    double prev = std::numeric_limits<double>::infinity();
    for (double ret : {0.0, 100.0, 200.0, 400.0}) {
      FinancialTerms t;
      t.retention = ret;
      const double out = apply_financial_terms(loss, t);
      EXPECT_LE(out, prev);
      prev = out;
    }
    double prev_lim = -1.0;
    for (double lim : {10.0, 100.0, 1000.0}) {
      FinancialTerms t;
      t.limit = lim;
      const double out = apply_financial_terms(loss, t);
      EXPECT_GE(out, prev_lim);
      prev_lim = out;
    }
  }
}

}  // namespace
}  // namespace ara
