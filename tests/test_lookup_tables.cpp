#include "core/lookup_table.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "synth/rng.hpp"

namespace ara {
namespace {

Elt random_elt(EventId catalogue, std::size_t records, std::uint64_t seed) {
  synth::Xoshiro256StarStar rng(seed);
  std::vector<EventLoss> recs;
  recs.reserve(records);
  // Distinct ids via stride sampling.
  const EventId stride = catalogue / static_cast<EventId>(records);
  for (std::size_t i = 0; i < records; ++i) {
    const EventId base = 1 + static_cast<EventId>(i) * stride;
    const EventId jitter =
        static_cast<EventId>(rng.next_below(std::max<EventId>(1, stride)));
    recs.push_back({base + jitter, 1.0 + rng.next_double() * 999.0});
  }
  return Elt(std::move(recs), FinancialTerms::identity(), catalogue);
}

TEST(DirectAccessTable, MatchesEltLookup) {
  const Elt elt = random_elt(1000, 50, 1);
  const DirectAccessTable<double> table(elt);
  for (EventId e = 1; e <= 1000; ++e) {
    EXPECT_DOUBLE_EQ(table.lookup(e), elt.lookup(e)) << "event " << e;
  }
}

TEST(DirectAccessTable, HasOneSlotPerCatalogueEvent) {
  const Elt elt = random_elt(1000, 50, 2);
  const DirectAccessTable<double> table(elt);
  EXPECT_EQ(table.slots(), 1001u);  // slot 0 unused (invalid event)
  EXPECT_EQ(table.memory_bytes(), 1001u * sizeof(double));
  EXPECT_DOUBLE_EQ(table.accesses_per_lookup(), 1.0);
}

TEST(DirectAccessTable, FloatVariantQuantizes) {
  const Elt elt({{3, 1.0e7}}, FinancialTerms::identity(), 10);
  const DirectAccessTable<float> table(elt);
  EXPECT_NEAR(table.lookup(3), 1.0e7, 1.0);
  EXPECT_EQ(table.memory_bytes(), 11u * sizeof(float));
}

TEST(SortedLossTable, MatchesEltLookup) {
  const Elt elt = random_elt(5000, 200, 3);
  const SortedLossTable table(elt);
  for (EventId e = 1; e <= 5000; e += 7) {
    EXPECT_DOUBLE_EQ(table.lookup(e), elt.lookup(e));
  }
  EXPECT_GT(table.accesses_per_lookup(), 1.0);  // log2(200) ~ 7.6
  EXPECT_LT(table.memory_bytes(),
            DirectAccessTable<double>(elt).memory_bytes());
}

TEST(HashLossTable, MatchesEltLookup) {
  const Elt elt = random_elt(5000, 200, 4);
  const HashLossTable table(elt);
  for (EventId e = 1; e <= 5000; e += 3) {
    EXPECT_DOUBLE_EQ(table.lookup(e), elt.lookup(e));
  }
}

TEST(HashLossTable, RobinHoodBoundsProbeLength) {
  const Elt elt = random_elt(100000, 5000, 5);
  const HashLossTable table(elt);
  // At <= 50% load factor, robin-hood linear probing keeps the mean
  // probe length around 0.5.
  EXPECT_LT(table.mean_probe_length(), 2.0);
}

TEST(CompressedLossTable, MatchesEltLookup) {
  const Elt elt = random_elt(5000, 200, 6);
  const CompressedLossTable table(elt);
  for (EventId e = 1; e <= 5000; ++e) {
    EXPECT_DOUBLE_EQ(table.lookup(e), elt.lookup(e)) << "event " << e;
  }
}

TEST(CompressedLossTable, UsesFarLessMemoryThanDirect) {
  const Elt elt = random_elt(2000000 / 10, 20000 / 10, 7);
  const CompressedLossTable compressed(elt);
  const DirectAccessTable<double> direct(elt);
  // Bitmap+rank: ~1/8 byte per catalogue slot + 8 B per record, versus
  // 8 B per slot — over an order of magnitude smaller at 1% density.
  EXPECT_LT(compressed.memory_bytes() * 10, direct.memory_bytes());
}

TEST(CombinedDirectTable, MatchesPerEltTables) {
  const Elt a = random_elt(800, 60, 8);
  const Elt b = random_elt(800, 60, 9);
  const Elt c = random_elt(800, 60, 10);
  const CombinedDirectTable<double> combined({&a, &b, &c});
  ASSERT_EQ(combined.elt_count(), 3u);
  for (EventId e = 1; e <= 800; ++e) {
    EXPECT_DOUBLE_EQ(combined.at(e, 0), a.lookup(e));
    EXPECT_DOUBLE_EQ(combined.at(e, 1), b.lookup(e));
    EXPECT_DOUBLE_EQ(combined.at(e, 2), c.lookup(e));
  }
}

TEST(CombinedDirectTable, RejectsMismatchedCatalogues) {
  const Elt a = random_elt(800, 10, 11);
  const Elt b = random_elt(900, 10, 12);
  EXPECT_THROW((CombinedDirectTable<double>({&a, &b})), std::invalid_argument);
  EXPECT_THROW((CombinedDirectTable<double>({})), std::invalid_argument);
}

// Property: every lookup structure agrees with the canonical ELT on
// present keys, absent keys, and boundary ids.
class LookupAgreementProperty : public ::testing::TestWithParam<LookupKind> {};

TEST_P(LookupAgreementProperty, AgreesWithBinarySearchOracle) {
  const Elt elt = random_elt(20000, 1500, 99);
  const std::unique_ptr<LossLookup> table = make_lookup(GetParam(), elt);
  synth::Xoshiro256StarStar rng(123);
  const double tol = GetParam() == LookupKind::kDirectAccess32 ? 1e-3 : 0.0;
  for (int i = 0; i < 5000; ++i) {
    const EventId e = 1 + static_cast<EventId>(rng.next_below(20000));
    const double expect = elt.lookup(e);
    EXPECT_NEAR(table->lookup(e), expect, tol * (1.0 + expect));
  }
  // Boundary ids.
  EXPECT_NEAR(table->lookup(1), elt.lookup(1), tol * 1e3);
  EXPECT_NEAR(table->lookup(20000), elt.lookup(20000), tol * 1e3);
  EXPECT_GT(table->memory_bytes(), 0u);
  EXPECT_GE(table->accesses_per_lookup(), 1.0);
  EXPECT_FALSE(table->name().empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllStructures, LookupAgreementProperty,
    ::testing::Values(LookupKind::kDirectAccess64, LookupKind::kDirectAccess32,
                      LookupKind::kSorted, LookupKind::kHash,
                      LookupKind::kCuckoo, LookupKind::kCompressed));

TEST(CuckooLossTable, MatchesEltLookup) {
  const Elt elt = random_elt(5000, 400, 21);
  const CuckooLossTable table(elt);
  for (EventId e = 1; e <= 5000; ++e) {
    EXPECT_DOUBLE_EQ(table.lookup(e), elt.lookup(e)) << "event " << e;
  }
}

TEST(CuckooLossTable, AtMostTwoProbesByConstruction) {
  const Elt elt = random_elt(100000, 8000, 22);
  const CuckooLossTable table(elt);
  EXPECT_DOUBLE_EQ(table.accesses_per_lookup(), 2.0);
  // Space: two half-loaded tables — well under the direct table.
  EXPECT_LT(table.memory_bytes(),
            DirectAccessTable<double>(elt).memory_bytes());
}

TEST(CuckooLossTable, HandlesAdversarialSizes) {
  // Tiny, one-record and near-power-of-two record counts.
  for (std::size_t n : {1u, 2u, 3u, 15u, 16u, 17u, 255u, 256u, 257u}) {
    const Elt elt = random_elt(4096, n, 1000 + n);
    const CuckooLossTable table(elt);
    for (const EventLoss& r : elt.records()) {
      ASSERT_DOUBLE_EQ(table.lookup(r.event), r.loss) << "n=" << n;
    }
  }
}

TEST(CuckooLossTable, EmptyEltAlwaysMisses) {
  const Elt elt({}, FinancialTerms::identity(), 100);
  const CuckooLossTable table(elt);
  for (EventId e = 1; e <= 100; ++e) {
    EXPECT_DOUBLE_EQ(table.lookup(e), 0.0);
  }
}

// The paper's trade-off: direct access is the fewest accesses per
// lookup; compact structures cost more accesses but less memory.
TEST(LookupTradeoff, DirectAccessFewestAccessesMostMemory) {
  const Elt elt = random_elt(200000, 2000, 42);
  const auto direct = make_lookup(LookupKind::kDirectAccess64, elt);
  const auto sorted = make_lookup(LookupKind::kSorted, elt);
  const auto hash = make_lookup(LookupKind::kHash, elt);
  const auto compressed = make_lookup(LookupKind::kCompressed, elt);
  EXPECT_LT(direct->accesses_per_lookup(), sorted->accesses_per_lookup());
  EXPECT_LE(direct->accesses_per_lookup(), hash->accesses_per_lookup());
  EXPECT_LT(direct->accesses_per_lookup(), compressed->accesses_per_lookup());
  EXPECT_GT(direct->memory_bytes(), sorted->memory_bytes());
  EXPECT_GT(direct->memory_bytes(), hash->memory_bytes());
  EXPECT_GT(direct->memory_bytes(), compressed->memory_bytes());
}

}  // namespace
}  // namespace ara
