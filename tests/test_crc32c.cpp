#include "core/crc32c.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

namespace ara {
namespace {

TEST(Crc32c, KnownVectors) {
  // RFC 3720 / Castagnoli check value for "123456789".
  const char digits[] = "123456789";
  EXPECT_EQ(crc32c(0, digits, 9), 0xE3069283u);
  // Empty input leaves the running CRC unchanged.
  EXPECT_EQ(crc32c(0, digits, 0), 0u);
  EXPECT_EQ(crc32c(0x12345678u, digits, 0), 0x12345678u);
  // 32 zero bytes (iSCSI test vector).
  const std::vector<unsigned char> zeros(32, 0);
  EXPECT_EQ(crc32c(0, zeros.data(), zeros.size()), 0x8A9136AAu);
  // 32 0xFF bytes (iSCSI test vector).
  const std::vector<unsigned char> ones(32, 0xFF);
  EXPECT_EQ(crc32c(0, ones.data(), ones.size()), 0x62A8AB43u);
}

TEST(Crc32c, IncrementalEqualsOneShot) {
  std::mt19937_64 rng(2013);
  std::vector<unsigned char> data(4096 + 17);
  for (auto& b : data) b = static_cast<unsigned char>(rng());
  const std::uint32_t whole = crc32c(0, data.data(), data.size());
  // Any split point folds to the same CRC when fed incrementally.
  for (const std::size_t cut : {std::size_t{0}, std::size_t{1},
                                std::size_t{7}, std::size_t{4096},
                                data.size()}) {
    const std::uint32_t head = crc32c(0, data.data(), cut);
    EXPECT_EQ(crc32c(head, data.data() + cut, data.size() - cut), whole)
        << "split at " << cut;
  }
}

TEST(Crc32c, CombineMatchesConcatenation) {
  std::mt19937_64 rng(7);
  for (int round = 0; round < 20; ++round) {
    const std::size_t na = static_cast<std::size_t>(rng() % 2000);
    const std::size_t nb = static_cast<std::size_t>(rng() % 2000);
    std::vector<unsigned char> a(na), b(nb);
    for (auto& x : a) x = static_cast<unsigned char>(rng());
    for (auto& x : b) x = static_cast<unsigned char>(rng());
    std::vector<unsigned char> ab = a;
    ab.insert(ab.end(), b.begin(), b.end());
    const std::uint32_t crc_a = crc32c(0, a.data(), na);
    const std::uint32_t crc_b = crc32c(0, b.data(), nb);
    EXPECT_EQ(crc32c_combine(crc_a, crc_b, nb),
              crc32c(0, ab.data(), ab.size()))
        << "na=" << na << " nb=" << nb;
  }
}

TEST(Crc32c, CombineIsAssociative) {
  const std::string a = "aggregate ";
  const std::string b = "risk ";
  const std::string c = "analysis";
  const std::uint32_t ca = crc32c(0, a.data(), a.size());
  const std::uint32_t cb = crc32c(0, b.data(), b.size());
  const std::uint32_t cc = crc32c(0, c.data(), c.size());
  const std::uint32_t left =
      crc32c_combine(crc32c_combine(ca, cb, b.size()), cc, c.size());
  const std::uint32_t right =
      crc32c_combine(ca, crc32c_combine(cb, cc, c.size()), b.size() + c.size());
  const std::string abc = a + b + c;
  EXPECT_EQ(left, crc32c(0, abc.data(), abc.size()));
  EXPECT_EQ(right, left);
}

TEST(Crc32c, DetectsSingleBitFlips) {
  std::vector<unsigned char> data(257, 0x5A);
  const std::uint32_t clean = crc32c(0, data.data(), data.size());
  for (const std::size_t bit : {std::size_t{0}, std::size_t{77},
                                data.size() * 8 - 1}) {
    data[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
    EXPECT_NE(crc32c(0, data.data(), data.size()), clean) << "bit " << bit;
    data[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
  }
}

}  // namespace
}  // namespace ara
