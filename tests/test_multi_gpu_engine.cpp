#include <gtest/gtest.h>

#include "core/engine_factory.hpp"
#include "core/reference_engine.hpp"
#include "core/gpu_engines.hpp"
#include "synth/scenarios.hpp"

namespace ara {
namespace {

double sim_seconds(std::size_t gpus, const synth::Scenario& s) {
  EngineConfig cfg = paper_config(EngineKind::kMultiGpu);
  MultiGpuEngine engine(simgpu::tesla_m2090(), gpus, cfg);
  return engine.run(s.portfolio, s.yet).simulated_seconds;
}

TEST(MultiGpuEngine, NearLinearScaling) {
  // Fig. 3: ~100% efficiency from 1 to 4 GPUs.
  const synth::Scenario s = synth::paper_scaled(10000);  // 100 trials
  const double t1 = sim_seconds(1, s);
  const double t2 = sim_seconds(2, s);
  const double t4 = sim_seconds(4, s);
  EXPECT_NEAR(t1 / t2, 2.0, 0.15);
  EXPECT_NEAR(t1 / t4, 4.0, 0.40);
  // Efficiency above 90%.
  EXPECT_GT(t1 / (4.0 * t4), 0.90);
}

TEST(MultiGpuEngine, FourM2090sAboutFourXFasterThanOneC2075Optimized) {
  // The paper: 4.35 s on 4 GPUs vs 20.63 s on the single optimised
  // C2075 — "around 5x"; vs a single M2090 it is ~4x.
  const synth::Scenario s = synth::paper_scaled(10000);
  EngineConfig cfg = paper_config(EngineKind::kGpuOptimized);
  GpuOptimizedEngine single(simgpu::tesla_c2075(), cfg);
  const double t_single = single.run(s.portfolio, s.yet).simulated_seconds;
  const double t_multi = sim_seconds(4, s);
  EXPECT_NEAR(t_single / t_multi, 4.7, 0.8);
}

TEST(MultiGpuEngine, ResultsIdenticalForAnyDeviceCount) {
  const synth::Scenario s = synth::tiny(100, 9);
  EngineConfig cfg = paper_config(EngineKind::kMultiGpu);
  cfg.use_float = false;
  MultiGpuEngine one(simgpu::tesla_m2090(), 1, cfg);
  MultiGpuEngine three(simgpu::tesla_m2090(), 3, cfg);
  MultiGpuEngine four(simgpu::tesla_m2090(), 4, cfg);
  const auto a = one.run(s.portfolio, s.yet);
  const auto b = three.run(s.portfolio, s.yet);
  const auto c = four.run(s.portfolio, s.yet);
  for (std::size_t l = 0; l < a.ylt.layer_count(); ++l) {
    for (TrialId t = 0; t < a.ylt.trial_count(); ++t) {
      ASSERT_EQ(b.ylt.annual_loss(l, t), a.ylt.annual_loss(l, t));
      ASSERT_EQ(c.ylt.annual_loss(l, t), a.ylt.annual_loss(l, t));
    }
  }
}

TEST(MultiGpuEngine, HandlesTrialsNotDivisibleByDevices) {
  const synth::Scenario s = synth::tiny(37, 3);  // 37 trials on 4 GPUs
  EngineConfig cfg = paper_config(EngineKind::kMultiGpu);
  cfg.use_float = false;
  MultiGpuEngine engine(simgpu::tesla_m2090(), 4, cfg);
  ReferenceEngine ref;
  const auto expect = ref.run(s.portfolio, s.yet);
  const auto got = engine.run(s.portfolio, s.yet);
  for (TrialId t = 0; t < 37; ++t) {
    for (std::size_t l = 0; l < expect.ylt.layer_count(); ++l) {
      ASSERT_EQ(got.ylt.annual_loss(l, t), expect.ylt.annual_loss(l, t));
    }
  }
}

TEST(MultiGpuEngine, MoreDevicesThanTrials) {
  const synth::Scenario s = synth::tiny(2, 4);
  EngineConfig cfg = paper_config(EngineKind::kMultiGpu);
  cfg.use_float = false;
  MultiGpuEngine engine(simgpu::tesla_m2090(), 4, cfg);
  ReferenceEngine ref;
  const auto expect = ref.run(s.portfolio, s.yet);
  const auto got = engine.run(s.portfolio, s.yet);
  for (TrialId t = 0; t < 2; ++t) {
    ASSERT_EQ(got.ylt.annual_loss(0, t), expect.ylt.annual_loss(0, t));
  }
}

TEST(MultiGpuEngine, ReportsDeviceCount) {
  EngineConfig cfg = paper_config(EngineKind::kMultiGpu);
  MultiGpuEngine engine(simgpu::tesla_m2090(), 4, cfg);
  const synth::Scenario s = synth::tiny(8);
  const SimulationResult r = engine.run(s.portfolio, s.yet);
  EXPECT_EQ(r.devices, 4u);
  EXPECT_EQ(engine.device_count(), 4u);
}

}  // namespace
}  // namespace ara
