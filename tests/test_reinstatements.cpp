#include "extensions/reinstatements.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/reference_engine.hpp"
#include "synth/rng.hpp"
#include <limits>
#include "synth/scenarios.hpp"

namespace ara::ext {
namespace {

ReinstatementTerms basic_terms() {
  ReinstatementTerms t;
  t.occ_retention = 100.0;
  t.occ_limit = 200.0;
  t.reinstatements = 1;     // capacity 400 total, 200 restorable
  t.premium_rate = 1.0;     // "one reinstatement at 100%"
  t.upfront_premium = 50.0;
  return t;
}

TEST(ReinstatementTrial, NoLossNoRecovery) {
  const auto out = evaluate_reinstatement_trial({}, basic_terms());
  EXPECT_DOUBLE_EQ(out.recovered, 0.0);
  EXPECT_DOUBLE_EQ(out.reinstatement_premium, 0.0);
}

TEST(ReinstatementTrial, SingleLossWithinLimit) {
  // loss 250: recovery clamp(250-100, 0, 200) = 150; all restorable.
  const auto out = evaluate_reinstatement_trial({250.0}, basic_terms());
  EXPECT_DOUBLE_EQ(out.recovered, 150.0);
  EXPECT_DOUBLE_EQ(out.reinstated, 150.0);
  // 150/200 * 100% * 50 = 37.5
  EXPECT_DOUBLE_EQ(out.reinstatement_premium, 37.5);
}

TEST(ReinstatementTrial, LossBelowRetentionIgnored) {
  const auto out = evaluate_reinstatement_trial({90.0, 100.0}, basic_terms());
  EXPECT_DOUBLE_EQ(out.recovered, 0.0);
}

TEST(ReinstatementTrial, CapacityExhaustion) {
  // Three full-limit losses against capacity 2 x 200.
  const auto out = evaluate_reinstatement_trial({1000.0, 1000.0, 1000.0},
                                                basic_terms());
  EXPECT_DOUBLE_EQ(out.recovered, 400.0);  // capacity cap
  // Only the first 200 of consumption is restorable (N=1).
  EXPECT_DOUBLE_EQ(out.reinstated, 200.0);
  EXPECT_DOUBLE_EQ(out.reinstatement_premium, 50.0);  // full reinstatement
}

TEST(ReinstatementTrial, PartialFinalRecovery) {
  // First loss consumes 200 (restored), second 150, third limited by
  // remaining capacity 50.
  ReinstatementTerms t = basic_terms();
  const auto out =
      evaluate_reinstatement_trial({1000.0, 250.0, 1000.0}, t);
  EXPECT_DOUBLE_EQ(out.recovered, 400.0);
  EXPECT_DOUBLE_EQ(out.reinstated, 200.0);
}

TEST(ReinstatementTrial, ZeroReinstatementsEqualsSingleLimit) {
  ReinstatementTerms t = basic_terms();
  t.reinstatements = 0;
  const auto out = evaluate_reinstatement_trial({1000.0, 1000.0}, t);
  EXPECT_DOUBLE_EQ(out.recovered, 200.0);
  EXPECT_DOUBLE_EQ(out.reinstated, 0.0);
  EXPECT_DOUBLE_EQ(out.reinstatement_premium, 0.0);
}

TEST(ReinstatementTrial, PremiumRateScales) {
  ReinstatementTerms t = basic_terms();
  t.premium_rate = 0.5;  // "at 50%"
  const auto out = evaluate_reinstatement_trial({300.0}, t);
  EXPECT_DOUBLE_EQ(out.recovered, 200.0);
  EXPECT_DOUBLE_EQ(out.reinstatement_premium, 0.5 * 50.0);
}

TEST(ReinstatementTrial, RejectsInvalidTerms) {
  ReinstatementTerms bad;
  bad.occ_limit = 0.0;
  EXPECT_THROW(evaluate_reinstatement_trial({1.0}, bad),
               std::invalid_argument);
}

// Properties over random loss sequences.
class ReinstatementProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(ReinstatementProperty, InvariantsHold) {
  ReinstatementTerms t = basic_terms();
  t.reinstatements = GetParam();
  synth::Xoshiro256StarStar rng(404 + GetParam());
  for (int rep = 0; rep < 200; ++rep) {
    std::vector<double> losses;
    const std::size_t n = rng.next_below(20);
    for (std::size_t i = 0; i < n; ++i) {
      losses.push_back(rng.next_double() * 600.0);
    }
    const auto out = evaluate_reinstatement_trial(losses, t);
    EXPECT_GE(out.recovered, 0.0);
    EXPECT_LE(out.recovered, t.annual_capacity() + 1e-9);
    EXPECT_LE(out.reinstated, out.recovered + 1e-9);
    EXPECT_LE(out.reinstated,
              t.reinstatements * t.occ_limit + 1e-9);
    EXPECT_LE(out.reinstatement_premium,
              t.reinstatements * t.premium_rate * t.upfront_premium + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, ReinstatementProperty,
                         ::testing::Values(0u, 1u, 2u, 5u));

TEST(ReinstatementEngine, ManyReinstatementsConvergeToOccOnlyLayer) {
  // With effectively unlimited reinstatements, recovery equals the
  // plain occurrence-terms engine with no aggregate terms.
  const synth::Scenario s = synth::tiny(64, 17);
  std::vector<ReinstatementTerms> terms;
  std::vector<Layer> occ_layers;
  for (const Layer& l : s.portfolio.layers()) {
    ReinstatementTerms t;
    t.occ_retention = l.terms.occ_retention;
    t.occ_limit = l.terms.occ_limit;
    t.reinstatements = 1000000;  // effectively unlimited
    t.upfront_premium = 0.0;
    terms.push_back(t);
    Layer copy = l;
    copy.terms.agg_retention = 0.0;
    copy.terms.agg_limit = std::numeric_limits<double>::infinity();
    occ_layers.push_back(copy);
  }
  const Portfolio occ_only(s.portfolio.elts(), occ_layers);

  ReinstatementEngine engine(s.portfolio, terms);
  const ReinstatementResult got = engine.run(s.yet);
  ReferenceEngine ref;
  const Ylt expect = ref.run(occ_only, s.yet).ylt;
  for (std::size_t l = 0; l < s.portfolio.layer_count(); ++l) {
    for (TrialId t = 0; t < s.yet.trial_count(); ++t) {
      ASSERT_NEAR(got.at(l, t).recovered, expect.annual_loss(l, t),
                  1e-9 * (1.0 + expect.annual_loss(l, t)));
    }
  }
}

TEST(ReinstatementEngine, ExpectedValuesAggregate) {
  const synth::Scenario s = synth::tiny(128, 23);
  std::vector<ReinstatementTerms> terms(s.portfolio.layer_count());
  for (auto& t : terms) {
    t.occ_retention = 500.0;
    t.occ_limit = 2000.0;
    t.reinstatements = 2;
    t.premium_rate = 1.0;
    t.upfront_premium = 800.0;
  }
  ReinstatementEngine engine(s.portfolio, terms);
  const ReinstatementResult result = engine.run(s.yet);
  for (std::size_t l = 0; l < result.layer_count(); ++l) {
    double sum = 0.0;
    for (TrialId t = 0; t < result.trial_count(); ++t) {
      sum += result.at(l, t).recovered;
    }
    EXPECT_NEAR(result.expected_recovery(l),
                sum / result.trial_count(), 1e-9);
    EXPECT_GE(result.expected_reinstatement_premium(l), 0.0);
  }
}

TEST(ReinstatementEngine, ValidatesConstruction) {
  const synth::Scenario s = synth::tiny(4, 2);
  EXPECT_THROW(ReinstatementEngine(s.portfolio, {}), std::invalid_argument);
  std::vector<ReinstatementTerms> bad(s.portfolio.layer_count());
  bad[0].occ_limit = 0.0;
  EXPECT_THROW(ReinstatementEngine(s.portfolio, bad), std::invalid_argument);
}

}  // namespace
}  // namespace ara::ext
