#include "core/metrics/stopping.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "synth/distributions.hpp"
#include "synth/rng.hpp"

namespace ara::metrics {
namespace {

std::vector<double> lognormal_sample(std::size_t n, std::uint64_t seed,
                                     double cv = 1.0) {
  synth::Xoshiro256StarStar rng(seed);
  synth::LognormalSampler s =
      synth::LognormalSampler::from_mean_cv(1.0e6, cv);
  std::vector<double> out(n);
  for (double& x : out) x = s.sample(rng);
  return out;
}

// ---- z_for_confidence ------------------------------------------------

TEST(ZForConfidence, MatchesKnownCriticalValues) {
  // Reference values of Phi^{-1}((1 + conf) / 2) to full precision;
  // Beasley-Springer-Moro is good to ~1e-7 on this range.
  EXPECT_NEAR(z_for_confidence(0.90), 1.6448536269514722, 1e-6);
  EXPECT_NEAR(z_for_confidence(0.95), 1.959963984540054, 1e-6);
  EXPECT_NEAR(z_for_confidence(0.99), 2.5758293035489004, 1e-6);
  EXPECT_NEAR(z_for_confidence(0.999), 3.2905267314919255, 1e-6);
}

TEST(ZForConfidence, MonotoneInConfidence) {
  double prev = 0.0;
  for (const double c : {0.6, 0.8, 0.9, 0.95, 0.99, 0.995, 0.9999}) {
    const double z = z_for_confidence(c);
    EXPECT_GT(z, prev) << "confidence " << c;
    prev = z;
  }
}

TEST(ZForConfidence, RejectsOutOfRange) {
  EXPECT_THROW(z_for_confidence(0.5), std::invalid_argument);
  EXPECT_THROW(z_for_confidence(0.0), std::invalid_argument);
  EXPECT_THROW(z_for_confidence(1.0), std::invalid_argument);
  EXPECT_THROW(z_for_confidence(-0.95), std::invalid_argument);
}

// ---- StoppingSpec validation ----------------------------------------

TEST(StoppingSpec, ValidatesFields) {
  StoppingSpec spec;
  EXPECT_NO_THROW(spec.validate());

  StoppingSpec bad = spec;
  bad.targets.clear();
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = spec;
  bad.relative_tolerance = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = spec;
  bad.confidence = 1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = spec;
  bad.wave_growth = 1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = spec;
  bad.min_trials = 100;
  bad.max_trials = 50;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = spec;
  bad.targets = {{StopMetric::kVar, 1.0}};
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = spec;
  bad.targets = {{StopMetric::kTvar, 0.99}};
  bad.bootstrap_reps = 1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  // An AAL-only spec never bootstraps, so one rep is acceptable there.
  bad.targets = {{StopMetric::kAal, 0.0}};
  EXPECT_NO_THROW(bad.validate());
}

// ---- evaluate_target -------------------------------------------------

TEST(EvaluateTarget, AalMatchesClosedForm) {
  const auto losses = lognormal_sample(5000, 1);
  double mean = 0.0;
  for (const double x : losses) mean += x;
  mean /= static_cast<double>(losses.size());
  const double z = z_for_confidence(0.95);
  const TargetStatus s =
      evaluate_target({StopMetric::kAal, 0.0}, losses, z, 0.05, 100, 7);
  // The estimate is computed on the sorted sample, so it may differ
  // from the trial-order sum by rounding only.
  EXPECT_NEAR(s.estimate, mean, 1e-6 * mean);
  EXPECT_GT(s.std_error, 0.0);
  EXPECT_DOUBLE_EQ(s.half_width, z * s.std_error);
  EXPECT_DOUBLE_EQ(s.relative_half_width, s.half_width / s.estimate);
}

TEST(EvaluateTarget, ConstantSampleIsImmediatelySatisfied) {
  const std::vector<double> losses(100, 5.0);
  for (const StopMetric m :
       {StopMetric::kAal, StopMetric::kVar, StopMetric::kTvar}) {
    const TargetStatus s =
        evaluate_target({m, 0.99}, losses, 1.96, 0.01, 50, 7);
    EXPECT_DOUBLE_EQ(s.estimate, 5.0);
    EXPECT_DOUBLE_EQ(s.std_error, 0.0);
    EXPECT_DOUBLE_EQ(s.relative_half_width, 0.0);
    EXPECT_TRUE(s.satisfied) << stop_metric_name(m);
  }
}

TEST(EvaluateTarget, SingleTrialNeverSatisfied) {
  // n == 1 shows no spread at all; a zero half-width there must not
  // count as convergence.
  const std::vector<double> one = {42.0};
  const TargetStatus s =
      evaluate_target({StopMetric::kAal, 0.0}, one, 1.96, 0.5, 50, 7);
  EXPECT_FALSE(s.satisfied);
}

TEST(EvaluateTarget, BootstrapDeterministicPerSeed) {
  const auto losses = lognormal_sample(2000, 2);
  const StoppingTarget target{StopMetric::kTvar, 0.95};
  const TargetStatus a = evaluate_target(target, losses, 1.96, 0.05, 64, 9);
  const TargetStatus b = evaluate_target(target, losses, 1.96, 0.05, 64, 9);
  EXPECT_DOUBLE_EQ(a.std_error, b.std_error);
  const TargetStatus c = evaluate_target(target, losses, 1.96, 0.05, 64, 10);
  EXPECT_NE(a.std_error, c.std_error);
}

TEST(EvaluateTarget, TvarIsAtLeastVar) {
  const auto losses = lognormal_sample(4000, 3);
  const TargetStatus var =
      evaluate_target({StopMetric::kVar, 0.99}, losses, 1.96, 0.05, 64, 4);
  const TargetStatus tvar =
      evaluate_target({StopMetric::kTvar, 0.99}, losses, 1.96, 0.05, 64, 4);
  EXPECT_GE(tvar.estimate, var.estimate);
}

TEST(EvaluateStopping, IndependentSubstreamsPerTarget) {
  StoppingSpec spec;
  spec.targets = {{StopMetric::kVar, 0.95}, {StopMetric::kVar, 0.95}};
  const auto losses = lognormal_sample(1000, 4);
  const auto statuses = evaluate_stopping(spec, losses);
  ASSERT_EQ(statuses.size(), 2u);
  // Same target, different substream: identical estimates, distinct
  // bootstrap draws.
  EXPECT_DOUBLE_EQ(statuses[0].estimate, statuses[1].estimate);
  EXPECT_NE(statuses[0].std_error, statuses[1].std_error);
}

// ---- AdaptiveController ----------------------------------------------

TEST(AdaptiveController, WaveScheduleGrowsGeometrically) {
  StoppingSpec spec;
  spec.relative_tolerance = 1.0e-9;  // unreachable: exercise the schedule
  spec.min_trials = 100;
  spec.wave_growth = 2.0;
  AdaptiveController c(spec, 10000, 100);
  EXPECT_EQ(c.frontier(), 100u);

  const auto losses = lognormal_sample(10000, 5);
  std::vector<std::size_t> frontiers;
  while (!c.stopped()) {
    const std::size_t begin = c.observed();
    c.observe(begin, std::span<const double>(losses)
                         .subspan(begin, c.frontier() - begin));
    frontiers.push_back(c.frontier());
    c.advance();
  }
  // 100 -> 200 -> 400 -> ... -> 10000, each a whole number of waves.
  for (std::size_t i = 1; i < frontiers.size(); ++i) {
    EXPECT_GT(frontiers[i], frontiers[i - 1]);
    EXPECT_EQ(frontiers[i] % 100, 0u);
    EXPECT_LE(frontiers[i], 10000u);
  }
  EXPECT_EQ(c.frontier(), 10000u);
  EXPECT_TRUE(c.stopped());
  EXPECT_FALSE(c.converged());  // budget ran out, tolerance never met
}

TEST(AdaptiveController, ConstantLossStopsAtFirstBarrier) {
  StoppingSpec spec;
  spec.min_trials = 50;
  AdaptiveController c(spec, 100000, 50);
  const std::vector<double> wave(c.frontier(), 123.0);
  c.observe(0, wave);
  c.advance();
  EXPECT_TRUE(c.stopped());
  EXPECT_TRUE(c.converged());
  EXPECT_EQ(c.frontier(), 50u);
  ASSERT_EQ(c.statuses().size(), 1u);
  EXPECT_TRUE(c.statuses()[0].satisfied);
}

TEST(AdaptiveController, OutOfOrderBlocksAssembleInTrialOrder) {
  StoppingSpec spec;
  spec.relative_tolerance = 1.0e-9;
  spec.min_trials = 4;
  AdaptiveController c(spec, 8, 4);
  const std::vector<double> tail = {3.0, 4.0};
  const std::vector<double> head = {1.0, 2.0};
  c.observe(2, tail);
  EXPECT_FALSE(c.at_barrier());
  c.observe(0, head);
  ASSERT_TRUE(c.at_barrier());
  const auto sample = c.sample();
  EXPECT_EQ(sample[0], 1.0);
  EXPECT_EQ(sample[3], 4.0);
}

TEST(AdaptiveController, RejectsBlocksPastTheFrontier) {
  StoppingSpec spec;
  spec.min_trials = 10;
  AdaptiveController c(spec, 1000, 10);
  const std::vector<double> block(11, 1.0);
  EXPECT_THROW(c.observe(0, block), std::logic_error);
  const std::vector<double> ok(5, 1.0);
  EXPECT_NO_THROW(c.observe(0, ok));
  EXPECT_THROW(c.observe(6, ok), std::logic_error);
}

TEST(AdaptiveController, AdvanceOffBarrierIsANoOp) {
  StoppingSpec spec;
  spec.min_trials = 10;
  AdaptiveController c(spec, 1000, 10);
  const std::vector<double> half(5, 1.0);
  c.observe(0, half);
  c.advance();
  EXPECT_FALSE(c.stopped());
  EXPECT_EQ(c.frontier(), 10u);
  EXPECT_TRUE(c.statuses().empty());
}

TEST(AdaptiveController, StoppingPointDeterministicForSeed) {
  const auto losses = lognormal_sample(50000, 6, 0.8);
  const auto run_once = [&losses]() {
    StoppingSpec spec;
    spec.relative_tolerance = 0.02;
    spec.min_trials = 500;
    AdaptiveController c(spec, losses.size(), 500);
    while (!c.stopped()) {
      const std::size_t begin = c.observed();
      c.observe(begin, std::span<const double>(losses)
                           .subspan(begin, c.frontier() - begin));
      c.advance();
    }
    return c.frontier();
  };
  const std::size_t first = run_once();
  EXPECT_EQ(first, run_once());
  EXPECT_LT(first, losses.size());  // 2% on cv 0.8 stops well early
}

TEST(AdaptiveController, HonorsMaxTrialsBudget) {
  StoppingSpec spec;
  spec.relative_tolerance = 1.0e-9;
  spec.min_trials = 100;
  spec.max_trials = 300;
  AdaptiveController c(spec, 100000, 100);
  const auto losses = lognormal_sample(300, 7);
  while (!c.stopped()) {
    const std::size_t begin = c.observed();
    c.observe(begin, std::span<const double>(losses)
                         .subspan(begin, c.frontier() - begin));
    c.advance();
  }
  EXPECT_EQ(c.frontier(), 300u);
  EXPECT_FALSE(c.converged());
}

TEST(AdaptiveController, RejectsEmptyWorkload) {
  StoppingSpec spec;
  EXPECT_THROW(AdaptiveController(spec, 0, 10), std::invalid_argument);
}

}  // namespace
}  // namespace ara::metrics
