#include "extensions/secondary_uncertainty.hpp"

#include <gtest/gtest.h>

#include "core/cpu_engines.hpp"
#include "synth/scenarios.hpp"

namespace ara::ext {
namespace {

TEST(SecondaryUncertainty, DeterministicForSeed) {
  const synth::Scenario s = synth::tiny(32, 12);
  SecondaryUncertaintyConfig cfg;
  cfg.seed = 5;
  SecondaryUncertaintyEngine engine(cfg);
  const auto a = engine.run(s.portfolio, s.yet);
  const auto b = engine.run(s.portfolio, s.yet);
  EXPECT_EQ(a.ylt.annual_raw(), b.ylt.annual_raw());
}

TEST(SecondaryUncertainty, DifferentSeedsDiffer) {
  const synth::Scenario s = synth::tiny(32, 12);
  SecondaryUncertaintyConfig a_cfg, b_cfg;
  a_cfg.seed = 5;
  b_cfg.seed = 6;
  SecondaryUncertaintyEngine a(a_cfg), b(b_cfg);
  EXPECT_NE(a.run(s.portfolio, s.yet).ylt.annual_raw(),
            b.run(s.portfolio, s.yet).ylt.annual_raw());
}

TEST(SecondaryUncertainty, AddsDispersionAroundDeterministicResult) {
  // With loose layer terms, the mean annual loss across many trials
  // should stay near the deterministic engine's mean while individual
  // trials differ.
  synth::Scenario s = synth::tiny(256, 21);
  // Rebuild the portfolio with wide-open terms so clamping does not
  // bias the mean comparison.
  std::vector<Elt> elts;
  for (const Elt& e : s.portfolio.elts()) {
    elts.emplace_back(e.records(), FinancialTerms::identity(),
                      e.catalogue_size());
  }
  std::vector<Layer> layers;
  for (const Layer& l : s.portfolio.layers()) {
    layers.push_back({l.name, l.elt_indices, LayerTerms::identity()});
  }
  const Portfolio open(std::move(elts), std::move(layers));

  FusedSequentialEngine deterministic;
  SecondaryUncertaintyEngine stochastic;
  const auto det = deterministic.run(open, s.yet);
  const auto sto = stochastic.run(open, s.yet);

  double det_sum = 0.0, sto_sum = 0.0;
  std::size_t differing = 0;
  for (TrialId t = 0; t < s.yet.trial_count(); ++t) {
    det_sum += det.ylt.annual_loss(0, t);
    sto_sum += sto.ylt.annual_loss(0, t);
    if (det.ylt.annual_loss(0, t) != sto.ylt.annual_loss(0, t)) {
      ++differing;
    }
  }
  ASSERT_GT(det_sum, 0.0);
  // Mean preserved within sampling error (Beta multiplier has E[m]=1).
  EXPECT_NEAR(sto_sum / det_sum, 1.0, 0.10);
  // But essentially every non-empty trial differs.
  EXPECT_GT(differing, s.yet.trial_count() / 2);
}

TEST(SecondaryUncertainty, TightBetaConvergesToDeterministic) {
  // With identity terms the annual loss is a plain weighted sum, so
  // the relative error is bounded by the multiplier's ~0.3% noise.
  // (Retention clamps would amplify small input noise around the
  // attachment point, so this convergence property is stated — as in
  // the loss-modelling literature — on ground-up losses.)
  const synth::Scenario s = synth::tiny(64, 30);
  std::vector<Elt> elts;
  for (const Elt& e : s.portfolio.elts()) {
    elts.emplace_back(e.records(), FinancialTerms::identity(),
                      e.catalogue_size());
  }
  std::vector<Layer> layers;
  for (const Layer& l : s.portfolio.layers()) {
    layers.push_back({l.name, l.elt_indices, LayerTerms::identity()});
  }
  const Portfolio open(std::move(elts), std::move(layers));

  FusedSequentialEngine deterministic;
  SecondaryUncertaintyConfig tight;
  tight.alpha = 2.0e5;  // variance ~ 1/(a+b) -> negligible
  tight.beta = 4.0e5;
  SecondaryUncertaintyEngine engine(tight);
  const auto det = deterministic.run(open, s.yet);
  const auto sto = engine.run(open, s.yet);
  for (std::size_t l = 0; l < det.ylt.layer_count(); ++l) {
    for (TrialId t = 0; t < det.ylt.trial_count(); ++t) {
      const double d = det.ylt.annual_loss(l, t);
      EXPECT_NEAR(sto.ylt.annual_loss(l, t), d, 0.01 * (1.0 + d));
    }
  }
}

TEST(SecondaryUncertainty, MaxOccurrenceRespectsOccLimit) {
  const synth::Scenario s = synth::tiny(64, 33);
  SecondaryUncertaintyEngine engine;
  const auto r = engine.run(s.portfolio, s.yet);
  for (std::size_t l = 0; l < s.portfolio.layer_count(); ++l) {
    const double lim = s.portfolio.layers()[l].terms.occ_limit;
    for (TrialId t = 0; t < s.yet.trial_count(); ++t) {
      EXPECT_LE(r.ylt.max_occurrence_loss(l, t), lim + 1e-9);
    }
  }
}

}  // namespace
}  // namespace ara::ext
