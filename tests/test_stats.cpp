#include "core/metrics/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace ara::metrics {
namespace {

const std::vector<double> kSample = {4.0, 1.0, 3.0, 2.0, 5.0};

TEST(Stats, Mean) {
  EXPECT_DOUBLE_EQ(mean(kSample), 3.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{7.5}), 7.5);
}

TEST(Stats, Stddev) {
  // Sample variance of 1..5 = 2.5.
  EXPECT_NEAR(stddev(kSample), std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{1.0}), 0.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{}), 0.0);
}

TEST(Stats, MinMax) {
  EXPECT_DOUBLE_EQ(min_value(kSample), 1.0);
  EXPECT_DOUBLE_EQ(max_value(kSample), 5.0);
  EXPECT_THROW(min_value(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(max_value(std::vector<double>{}), std::invalid_argument);
}

TEST(Stats, QuantileEndpoints) {
  EXPECT_DOUBLE_EQ(quantile(kSample, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(kSample, 1.0), 5.0);
}

TEST(Stats, QuantileInterpolates) {
  // Type-7 on 1..5: p=0.5 -> 3; p=0.25 -> 2; p=0.1 -> 1.4.
  EXPECT_DOUBLE_EQ(quantile(kSample, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(kSample, 0.25), 2.0);
  EXPECT_NEAR(quantile(kSample, 0.1), 1.4, 1e-12);
}

TEST(Stats, QuantileValidatesInput) {
  EXPECT_THROW(quantile(std::vector<double>{}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile(kSample, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(kSample, 1.1), std::invalid_argument);
}

TEST(Stats, QuantileSortedSkipsSorting) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0, 5.0};
  for (double p : {0.0, 0.3, 0.5, 0.77, 1.0}) {
    EXPECT_DOUBLE_EQ(quantile_sorted(sorted, p), quantile(kSample, p));
  }
}

TEST(Stats, QuantileMonotoneInP) {
  const std::vector<double> data = {9.0, 1.0, 7.0, 7.0, 2.0, 5.0, 0.5};
  double prev = -1e300;
  for (double p = 0.0; p <= 1.0; p += 0.05) {
    const double q = quantile(data, p);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

TEST(Stats, SortedCopyDoesNotMutate) {
  std::vector<double> data = {3.0, 1.0, 2.0};
  const auto sorted = sorted_copy(data);
  EXPECT_EQ(sorted, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(data, (std::vector<double>{3.0, 1.0, 2.0}));
}

}  // namespace
}  // namespace ara::metrics
