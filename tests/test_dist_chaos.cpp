// Chaos recovery contract (DESIGN.md §9 failure matrix): under every
// injected failure — worker crash mid-shard, stall past the lease
// timeout, torn frame, bit-flipped block, and a real SIGKILL from
// outside — the distributed run must still produce a result bitwise
// identical to the monolithic one, with zero lost or double-merged
// trial ranges, and the recovery must be *visible* in the counters
// (leases_reassigned > 0, plus the failure-specific counter). The
// injected failures ride the core/failpoint.hpp registry and skip
// when failpoints are compiled out (Release); the SIGKILL test always
// runs.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/engine_factory.hpp"
#include "core/failpoint.hpp"
#include "core/session.hpp"
#include "dist/coordinator.hpp"
#include "dist/protocol.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace ara::dist {
namespace {

serve::SynthSpec chaos_spec(std::uint64_t trials) {
  serve::SynthSpec spec;
  spec.trials = trials;
  spec.events_per_trial = 8.0;
  spec.catalogue = 600;
  spec.elts = 3;
  spec.layers = 2;
  spec.seed = 1913;
  return spec;
}

DistConfig chaos_config(const serve::SynthSpec& spec, const std::string& tag,
                        std::uint64_t lease_trials,
                        std::uint64_t lease_timeout_ms) {
  const ExecutionPolicy policy =
      ExecutionPolicy::with_engine(EngineKind::kSequentialFused);
  DistConfig config;
  config.endpoint = serve::Endpoint::parse(
      "unix:/tmp/ara_test_chaos_" + std::to_string(::getpid()) + "_" + tag +
      ".sock");
  config.job.workload = JobWorkload::kSynth;
  config.job.synth = spec;
  config.job.engine = engine_kind_name(EngineKind::kSequentialFused);
  config.job.simd = static_cast<std::uint8_t>(policy.simd);
  config.job.simd_width = policy.simd_width;
  config.job.trial_count = spec.trials;
  config.job.layer_count = spec.layers;
  config.job.heartbeat_ms = 50;
  config.lease_trials = lease_trials;
  config.lease_timeout_ms = lease_timeout_ms;
  config.expected_workers = 2;
  return config;
}

pid_t spawn_worker(const serve::Endpoint& endpoint, const std::string& id,
                   const char* failpoints) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    const std::string ep = endpoint.describe();
    // --max-attempts 4 bounds the tail of tests where a worker ends up
    // retrying against a coordinator that already finished without it.
    if (failpoints != nullptr) {
      ::execl(ARA_WORKER_BIN, "ara_worker", "--connect", ep.c_str(), "--id",
              id.c_str(), "--max-attempts", "4", "--failpoints", failpoints,
              static_cast<char*>(nullptr));
    } else {
      ::execl(ARA_WORKER_BIN, "ara_worker", "--connect", ep.c_str(), "--id",
              id.c_str(), "--max-attempts", "4",
              static_cast<char*>(nullptr));
    }
    ::_exit(127);
  }
  return pid;
}

int reap(pid_t pid) {
  int status = 0;
  ::waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
}

SimulationResult monolithic(const serve::SynthSpec& spec) {
  const serve::ServedWorkload w = serve::materialize_synth(spec);
  const auto engine = make_engine(
      ExecutionPolicy::with_engine(EngineKind::kSequentialFused));
  return engine->run(w.portfolio, w.yet);
}

void expect_bitwise(const DistResult& result, const SimulationResult& mono) {
  EXPECT_EQ(result.analysis.simulation.ylt.annual_raw(),
            mono.ylt.annual_raw());
  EXPECT_EQ(result.analysis.simulation.ylt.max_occurrence_raw(),
            mono.ylt.max_occurrence_raw());
  EXPECT_EQ(result.analysis.simulation.ops, mono.ops);
}

AnalysisRequest metrics_request() {
  AnalysisRequest request;
  request.metrics = MetricsSpec::layer_summaries();
  return request;
}

/// Spawns two workers with the given failpoint spec, runs the
/// coordinator to completion, and reaps both workers.
DistResult run_with_failpoints(const DistConfig& config,
                               const char* failpoints,
                               std::vector<int>* exit_codes = nullptr) {
  ShardCoordinator coordinator(config);
  const pid_t w1 = spawn_worker(coordinator.endpoint(), "chaos_1",
                                failpoints);
  const pid_t w2 = spawn_worker(coordinator.endpoint(), "chaos_2",
                                failpoints);
  const DistResult result = coordinator.run(metrics_request());
  const int e1 = reap(w1);
  const int e2 = reap(w2);
  if (exit_codes != nullptr) *exit_codes = {e1, e2};
  return result;
}

TEST(DistChaos, CrashMidShardFallsBackAndStaysBitwise) {
  if (!fail::compiled_in()) GTEST_SKIP() << "failpoints compiled out";
  // Both workers die silently right after computing their first shard
  // — the worst moment: the work is done, the coordinator never hears
  // about it. Every range must end up executed by the local fallback.
  const serve::SynthSpec spec = chaos_spec(600);
  const DistConfig config = chaos_config(spec, "crash", 100, 800);
  std::vector<int> exits;
  const DistResult result = run_with_failpoints(
      config, "worker.crash_mid_shard=1", &exits);

  EXPECT_EQ(exits[0], 137);
  EXPECT_EQ(exits[1], 137);
  EXPECT_EQ(result.counters.workers_lost, 2u);
  EXPECT_GE(result.counters.leases_reassigned, 2u);
  // Every range accepted exactly once — all of them via the local
  // fallback (the dead workers never delivered a byte).
  EXPECT_EQ(result.counters.blocks_accepted, 6u);  // 600 trials / 100
  EXPECT_EQ(result.counters.local_shards, 6u);
  expect_bitwise(result, monolithic(spec));
}

TEST(DistChaos, StallPastLeaseTimeoutReassignsTheLease) {
  if (!fail::compiled_in()) GTEST_SKIP() << "failpoints compiled out";
  // The stalled worker goes quiet (heartbeats included) with its shard
  // computed but unsent; the lease expires and reassigns. The stall
  // then lifts and the straggler block arrives anyway — byte-identical
  // to the reassigned execution (determinism is the arbiter), so it is
  // discarded as a duplicate rather than double-merged. A conflict
  // would poison the run and fail this test loudly.
  const serve::SynthSpec spec = chaos_spec(600);
  const DistConfig config = chaos_config(spec, "stall", 100, 400);
  const DistResult result = run_with_failpoints(
      config, "worker.stall=1:5:1200:1");

  EXPECT_GE(result.counters.leases_reassigned, 1u);
  EXPECT_EQ(result.counters.blocks_accepted, 6u);
  EXPECT_EQ(result.counters.corrupt_blocks, 0u);
  expect_bitwise(result, monolithic(spec));
}

TEST(DistChaos, TornFrameDropsTheConnectionAndRecovers) {
  if (!fail::compiled_in()) GTEST_SKIP() << "failpoints compiled out";
  // Half a block frame then a slammed connection: the coordinator's
  // framing layer must throw (never merge a prefix), count the tear,
  // requeue the lease, and let the worker reconnect and finish. The
  // workload is big enough that the run outlives the ~100ms reconnect
  // backoff, so the recovery is (usually) a rejoin, not just the
  // local fallback racing ahead.
  serve::SynthSpec spec = chaos_spec(4000);
  spec.events_per_trial = 30.0;
  const DistConfig config = chaos_config(spec, "torn", 500, 800);
  const DistResult result = run_with_failpoints(
      config, "stream.torn_frame=1:7:0:1");

  EXPECT_EQ(result.counters.torn_frames, 2u);
  EXPECT_GE(result.counters.leases_reassigned, 2u);
  EXPECT_EQ(result.counters.blocks_accepted, 8u);  // 4000 trials / 500
  expect_bitwise(result, monolithic(spec));
}

TEST(DistChaos, BitFlippedBlockIsDiscardedNeverMerged) {
  if (!fail::compiled_in()) GTEST_SKIP() << "failpoints compiled out";
  // One flipped bit inside an otherwise well-framed block: the CRC32C
  // trailer catches it at the coordinator, the block is discarded and
  // counted, the lying worker dropped, the lease reassigned. The final
  // rows must be the true ones.
  serve::SynthSpec spec = chaos_spec(4000);
  spec.events_per_trial = 30.0;
  const DistConfig config = chaos_config(spec, "flip", 500, 800);
  const DistResult result = run_with_failpoints(
      config, "block.bit_flip=1:9:0:1");

  EXPECT_EQ(result.counters.corrupt_blocks, 2u);
  EXPECT_GE(result.counters.leases_reassigned, 2u);
  EXPECT_EQ(result.counters.blocks_accepted, 8u);  // 4000 trials / 500
  expect_bitwise(result, monolithic(spec));
}

TEST(DistChaos, ExternalSigkillIsRecovered) {
  // No failpoints: a real `kill -9` from outside while the run is in
  // flight. Works in Release builds too. The kill delay is derived
  // from the measured monolithic runtime so the victim is still
  // mid-run when the signal lands, whatever the build flavour
  // (Debug, TSan, Release) does to absolute speed.
  serve::SynthSpec spec = chaos_spec(10000);
  spec.events_per_trial = 100.0;
  // Measure the two phases a worker goes through — materialize, then
  // compute — and aim the signal at the middle of the compute phase,
  // when the victim provably owns leases.
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  const serve::ServedWorkload w = serve::materialize_synth(spec);
  const auto t1 = Clock::now();
  const auto engine = make_engine(
      ExecutionPolicy::with_engine(EngineKind::kSequentialFused));
  const SimulationResult mono = engine->run(w.portfolio, w.yet);
  const auto t2 = Clock::now();
  // The coordinator materializes once before it starts accepting, and
  // the victim materializes once more before its first lease — the
  // victim's compute phase therefore starts two materializations in.
  const auto kill_delay =
      2 * std::chrono::duration_cast<std::chrono::milliseconds>(t1 - t0) +
      std::chrono::duration_cast<std::chrono::milliseconds>((t2 - t1) / 2);

  const DistConfig config = chaos_config(spec, "sigkill", 250, 800);
  ShardCoordinator coordinator(config);
  // The victim runs the fleet alone until the signal; the survivor
  // only joins afterwards, so the kill is guaranteed to land on a
  // worker that owns leases.
  const pid_t victim = spawn_worker(coordinator.endpoint(), "victim",
                                    nullptr);
  pid_t survivor = -1;
  std::thread killer([&] {
    std::this_thread::sleep_for(kill_delay);
    ::kill(victim, SIGKILL);
    survivor = spawn_worker(coordinator.endpoint(), "survivor", nullptr);
  });
  const DistResult result = coordinator.run(metrics_request());
  killer.join();
  EXPECT_EQ(reap(victim), 128 + SIGKILL);
  EXPECT_EQ(reap(survivor), 0);

  EXPECT_GE(result.counters.workers_lost, 1u);
  EXPECT_GE(result.counters.leases_reassigned, 1u);
  EXPECT_EQ(result.counters.blocks_accepted, 40u);  // 10000 trials / 250
  expect_bitwise(result, mono);
}

}  // namespace
}  // namespace ara::dist
