// Calibration tests: the cost model must land on the paper's published
// timings for the paper's workload (1.5e10 lookups, 1e9 event fetches)
// at the paper's launch configurations. Tolerances are ~10% — the model
// is analytic, not a curve fit per figure.
#include "simgpu/gpu_cost_model.hpp"

#include <gtest/gtest.h>

namespace ara::simgpu {
namespace {

// Operation counts of the paper's headline workload (one layer of 15
// ELTs, 1e6 trials x 1000 events).
ara::OpCounts paper_ops() {
  ara::OpCounts ops;
  ops.event_fetches = 1'000'000'000ULL;
  ops.elt_lookups = 15'000'000'000ULL;
  ops.financial_ops = 15'000'000'000ULL;
  ops.occurrence_ops = 1'000'000'000ULL;
  ops.aggregate_ops = 1'000'000'000ULL;
  return ops;
}

KernelTraits basic_traits() {
  KernelTraits t;
  t.loss_bytes = 8;
  t.mlp_per_thread = 1;
  t.chunked = false;
  t.scratch_in_global = true;
  return t;
}

KernelTraits optimized_traits() {
  KernelTraits t;
  t.loss_bytes = 4;
  t.mlp_per_thread = 16;
  t.chunked = true;
  t.scratch_in_global = false;
  t.scratch_in_registers = true;
  t.unrolled = true;
  return t;
}

LaunchConfig basic_launch(unsigned block) {
  LaunchConfig c;
  c.block_threads = block;
  c.grid_blocks = static_cast<unsigned>((1'000'000 + block - 1) / block);
  c.regs_per_thread = 20;
  return c;
}

LaunchConfig optimized_launch(unsigned block) {
  LaunchConfig c;
  c.block_threads = block;
  c.grid_blocks = static_cast<unsigned>((1'000'000 + block - 1) / block);
  c.shared_bytes_per_block = static_cast<std::size_t>(block) * 88 * 8 + 256;
  c.regs_per_thread = 63;
  return c;
}

TEST(GpuCostModel, BasicKernelMatchesPaper38s) {
  const GpuCostModel model(tesla_c2075());
  ara::OpCounts ops = paper_ops();
  ops.global_updates = ops.occurrence_ops * 5;
  const KernelCost cost =
      model.estimate(basic_launch(256), basic_traits(), ops);
  ASSERT_TRUE(cost.feasible);
  // Paper: 38.47-38.49 s on the C2075.
  EXPECT_NEAR(cost.total_seconds, 38.5, 3.5);
  // Paper Fig. 6: basic-GPU event fetch ~ 4 s.
  EXPECT_NEAR(cost.phases[perf::Phase::kEventFetch], 4.0, 1.0);
}

TEST(GpuCostModel, OptimizedKernelMatchesPaper20s) {
  const GpuCostModel model(tesla_c2075());
  const KernelCost cost =
      model.estimate(optimized_launch(32), optimized_traits(), paper_ops());
  ASSERT_TRUE(cost.feasible);
  // Paper: 20.63 s total; 20.1 s lookup; 0.11 s financial+layer;
  // < 0.5 s fetch.
  EXPECT_NEAR(cost.total_seconds, 20.6, 2.0);
  EXPECT_NEAR(cost.phases[perf::Phase::kLossLookup], 20.1, 2.0);
  EXPECT_LT(cost.phases[perf::Phase::kEventFetch], 0.5);
  EXPECT_NEAR(cost.phases[perf::Phase::kFinancialTerms] +
                  cost.phases[perf::Phase::kOccurrenceTerms] +
                  cost.phases[perf::Phase::kAggregateTerms],
              0.11, 0.06);
}

TEST(GpuCostModel, QuarterWorkloadOnM2090MatchesPaper4_35s) {
  // Each of the paper's four M2090s processes 1/4 of the trials.
  const GpuCostModel model(tesla_m2090());
  ara::OpCounts ops = paper_ops();
  ops.event_fetches /= 4;
  ops.elt_lookups /= 4;
  ops.financial_ops /= 4;
  ops.occurrence_ops /= 4;
  ops.aggregate_ops /= 4;
  LaunchConfig launch = optimized_launch(32);
  launch.grid_blocks /= 4;
  const KernelCost cost = model.estimate(launch, optimized_traits(), ops);
  ASSERT_TRUE(cost.feasible);
  EXPECT_NEAR(cost.total_seconds, 4.35, 0.45);
  // Paper: lookup 4.25 s, financial+layer 0.02 s, fetch < 0.1 s.
  EXPECT_NEAR(cost.phases[perf::Phase::kLossLookup], 4.25, 0.45);
  EXPECT_LT(cost.phases[perf::Phase::kEventFetch], 0.12);
}

TEST(GpuCostModel, LookupShareOnMultiGpuIs97Percent) {
  const GpuCostModel model(tesla_m2090());
  ara::OpCounts ops = paper_ops();
  LaunchConfig launch = optimized_launch(32);
  const KernelCost cost = model.estimate(launch, optimized_traits(), ops);
  // Paper: "97.54% of the total time is for look-up".
  EXPECT_GT(cost.phases[perf::Phase::kLossLookup] / cost.total_seconds, 0.93);
}

TEST(GpuCostModel, LatencyHidingCurveShape) {
  const GpuCostModel model(tesla_c2075());
  EXPECT_DOUBLE_EQ(model.latency_hiding_efficiency(0.0), 0.0);
  EXPECT_NEAR(model.latency_hiding_efficiency(48.0), 0.889, 0.01);
  EXPECT_NEAR(model.latency_hiding_efficiency(32.0), 0.842, 0.01);
  EXPECT_LT(model.latency_hiding_efficiency(16.0),
            model.latency_hiding_efficiency(48.0));
  EXPECT_GT(model.latency_hiding_efficiency(1000.0), 0.99);
}

TEST(GpuCostModel, InfeasibleLaunchReported) {
  const GpuCostModel model(tesla_c2075());
  const KernelCost cost =
      model.estimate(optimized_launch(128), optimized_traits(), paper_ops());
  EXPECT_FALSE(cost.feasible);
  EXPECT_STREQ(cost.infeasible_reason, "shared_memory_per_block");
}

TEST(GpuCostModel, TransferUsesPcieBandwidth) {
  const GpuCostModel model(tesla_c2075());
  const double s = model.transfer_seconds(6ULL * 1000 * 1000 * 1000);
  EXPECT_NEAR(s, 1.0, 1e-9);  // 6 GB at 6 GB/s
}

TEST(GpuCostModel, CostsScaleLinearlyInWork) {
  const GpuCostModel model(tesla_c2075());
  ara::OpCounts ops = paper_ops();
  const KernelCost full =
      model.estimate(basic_launch(256), basic_traits(), ops);
  ara::OpCounts half = ops;
  half.event_fetches /= 2;
  half.elt_lookups /= 2;
  half.financial_ops /= 2;
  half.occurrence_ops /= 2;
  half.aggregate_ops /= 2;
  const KernelCost half_cost =
      model.estimate(basic_launch(256), basic_traits(), half);
  EXPECT_NEAR(half_cost.phases[perf::Phase::kLossLookup] * 2.0,
              full.phases[perf::Phase::kLossLookup], 1e-9);
}

TEST(GpuCostModel, M2090FasterThanC2075) {
  const GpuCostModel c(tesla_c2075());
  const GpuCostModel m(tesla_m2090());
  const KernelCost tc =
      c.estimate(optimized_launch(32), optimized_traits(), paper_ops());
  const KernelCost tm =
      m.estimate(optimized_launch(32), optimized_traits(), paper_ops());
  EXPECT_LT(tm.total_seconds, tc.total_seconds);
}

}  // namespace
}  // namespace ara::simgpu
