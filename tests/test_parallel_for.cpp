#include "parallel/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <vector>

namespace ara::parallel {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnceStatic) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  parallel_for(pool, 1000, [&](Range r) {
    for (std::size_t i = r.begin; i < r.end; ++i) {
      touched[i].fetch_add(1);
    }
  });
  for (const auto& t : touched) {
    EXPECT_EQ(t.load(), 1);
  }
}

TEST(ParallelFor, CoversEveryIndexExactlyOnceDynamic) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(997);  // prime, odd chunking
  parallel_for(
      pool, 997,
      [&](Range r) {
        for (std::size_t i = r.begin; i < r.end; ++i) {
          touched[i].fetch_add(1);
        }
      },
      Schedule::kDynamic, 64);
  for (const auto& t : touched) {
    EXPECT_EQ(t.load(), 1);
  }
}

TEST(ParallelFor, ZeroElementsIsNoOp) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 0, [&](Range) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, FewerElementsThanWorkers) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  parallel_for(pool, 3, [&](Range r) {
    count.fetch_add(static_cast<int>(r.size()));
  });
  EXPECT_EQ(count.load(), 3);
}

TEST(ParallelFor, DynamicZeroChunkClamped) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  parallel_for(
      pool, 10,
      [&](Range r) { count.fetch_add(static_cast<int>(r.size())); },
      Schedule::kDynamic, 0);
  EXPECT_EQ(count.load(), 10);
}

// Grain heuristic: tiny inputs must not fan out into tasks whose
// dispatch overhead exceeds their work.
TEST(ParallelFor, GrainCollapsesTinyInputsToFewTasks) {
  ThreadPool pool(8);
  std::mutex m;
  std::vector<Range> ranges;
  std::vector<int> touched(40, 0);
  parallel_for(pool, 40, [&](Range r) {
    std::lock_guard<std::mutex> lock(m);
    ranges.push_back(r);
    for (std::size_t i = r.begin; i < r.end; ++i) ++touched[i];
  });
  // 40 items at the default grain of 32: one task, full coverage.
  EXPECT_EQ(ranges.size(), 1u);
  for (const int t : touched) EXPECT_EQ(t, 1);
}

TEST(ParallelFor, GrainStillUsesAllWorkersOnLargeInputs) {
  ThreadPool pool(4);
  std::mutex m;
  std::size_t tasks = 0;
  std::vector<int> touched(1000, 0);
  parallel_for(pool, 1000, [&](Range r) {
    std::lock_guard<std::mutex> lock(m);
    ++tasks;
    for (std::size_t i = r.begin; i < r.end; ++i) ++touched[i];
  });
  EXPECT_EQ(tasks, 4u);  // 1000/32 >= pool size: full fan-out
  for (const int t : touched) EXPECT_EQ(t, 1);
}

TEST(ParallelFor, ExplicitGrainOverridesDefault) {
  ThreadPool pool(8);
  std::mutex m;
  std::size_t tasks = 0;
  std::atomic<int> count{0};
  parallel_for(
      pool, 12,
      [&](Range r) {
        std::lock_guard<std::mutex> lock(m);
        ++tasks;
        count.fetch_add(static_cast<int>(r.size()));
      },
      Schedule::kStatic, 1024, /*min_grain=*/2);
  EXPECT_EQ(tasks, 6u);  // 12 items / grain 2 = 6 tasks
  EXPECT_EQ(count.load(), 12);
}

TEST(ParallelReduce, SumsCorrectly) {
  ThreadPool pool(4);
  const std::int64_t n = 100000;
  const std::int64_t sum = parallel_reduce<std::int64_t>(
      pool, n, 0,
      [](Range r, std::int64_t acc) {
        for (std::size_t i = r.begin; i < r.end; ++i) {
          acc += static_cast<std::int64_t>(i);
        }
        return acc;
      },
      [](std::int64_t a, std::int64_t b) { return a + b; });
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST(ParallelReduce, EmptyRangeGivesInit) {
  ThreadPool pool(4);
  const int out = parallel_reduce<int>(
      pool, 0, 42, [](Range, int acc) { return acc; },
      [](int a, int b) { return a + b; });
  // init is joined once per partial plus the seed: with n == 0 all
  // partials stay at init and join(42, 42 x workers). For sums this
  // means the caller should use the identity as init.
  EXPECT_GE(out, 42);
}

TEST(ParallelReduce, DeterministicCombinationOrder) {
  ThreadPool pool(4);
  auto run = [&] {
    return parallel_reduce<double>(
        pool, 1000, 0.0,
        [](Range r, double acc) {
          for (std::size_t i = r.begin; i < r.end; ++i) {
            acc += 1.0 / (1.0 + static_cast<double>(i));
          }
          return acc;
        },
        [](double a, double b) { return a + b; });
  };
  const double a = run();
  const double b = run();
  EXPECT_DOUBLE_EQ(a, b);  // bitwise equal: static partitions + ordered join
}

}  // namespace
}  // namespace ara::parallel
