#include "core/elt.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace ara {
namespace {

Elt make_simple() {
  return Elt({{5, 100.0}, {2, 50.0}, {9, 75.0}}, FinancialTerms::identity(),
             10);
}

TEST(Elt, SortsRecordsByEventId) {
  const Elt elt = make_simple();
  ASSERT_EQ(elt.size(), 3u);
  EXPECT_EQ(elt.records()[0].event, 2u);
  EXPECT_EQ(elt.records()[1].event, 5u);
  EXPECT_EQ(elt.records()[2].event, 9u);
}

TEST(Elt, LookupFindsPresentEvents) {
  const Elt elt = make_simple();
  EXPECT_DOUBLE_EQ(elt.lookup(2), 50.0);
  EXPECT_DOUBLE_EQ(elt.lookup(5), 100.0);
  EXPECT_DOUBLE_EQ(elt.lookup(9), 75.0);
}

TEST(Elt, LookupReturnsZeroForAbsentEvents) {
  const Elt elt = make_simple();
  EXPECT_DOUBLE_EQ(elt.lookup(1), 0.0);
  EXPECT_DOUBLE_EQ(elt.lookup(3), 0.0);
  EXPECT_DOUBLE_EQ(elt.lookup(10), 0.0);
}

TEST(Elt, TotalLossSumsRecords) {
  EXPECT_DOUBLE_EQ(make_simple().total_loss(), 225.0);
}

TEST(Elt, EmptyTableIsLegal) {
  const Elt elt({}, FinancialTerms::identity(), 10);
  EXPECT_TRUE(elt.empty());
  EXPECT_DOUBLE_EQ(elt.lookup(5), 0.0);
  EXPECT_DOUBLE_EQ(elt.total_loss(), 0.0);
}

TEST(Elt, RejectsZeroCatalogue) {
  EXPECT_THROW(Elt({{1, 1.0}}, FinancialTerms::identity(), 0),
               std::invalid_argument);
}

TEST(Elt, RejectsEventIdZero) {
  EXPECT_THROW(Elt({{0, 1.0}}, FinancialTerms::identity(), 10),
               std::invalid_argument);
}

TEST(Elt, RejectsEventBeyondCatalogue) {
  EXPECT_THROW(Elt({{11, 1.0}}, FinancialTerms::identity(), 10),
               std::invalid_argument);
}

TEST(Elt, RejectsDuplicateEvents) {
  EXPECT_THROW(Elt({{3, 1.0}, {3, 2.0}}, FinancialTerms::identity(), 10),
               std::invalid_argument);
}

TEST(Elt, RejectsNegativeLoss) {
  EXPECT_THROW(Elt({{3, -1.0}}, FinancialTerms::identity(), 10),
               std::invalid_argument);
}

TEST(Elt, RejectsInvalidFinancialTerms) {
  FinancialTerms bad;
  bad.share = 2.0;
  EXPECT_THROW(Elt({{3, 1.0}}, bad, 10), std::invalid_argument);
}

TEST(Elt, BoundaryEventIdsAccepted) {
  const Elt elt({{1, 5.0}, {10, 6.0}}, FinancialTerms::identity(), 10);
  EXPECT_DOUBLE_EQ(elt.lookup(1), 5.0);
  EXPECT_DOUBLE_EQ(elt.lookup(10), 6.0);
}

TEST(Elt, KeepsZeroLossRecords) {
  const Elt elt({{4, 0.0}}, FinancialTerms::identity(), 10);
  EXPECT_EQ(elt.size(), 1u);
  EXPECT_DOUBLE_EQ(elt.lookup(4), 0.0);
}

}  // namespace
}  // namespace ara
