// Secondary uncertainty — the paper's stated future work ("to
// incorporate fine grain analysis, such as secondary uncertainty in
// the computations", Section VI) — implemented as an engine extension.
//
// Primary uncertainty is *which* events occur (the YET). Secondary
// uncertainty is how much a given event loses given that it occurs:
// instead of taking the ELT's mean loss l as deterministic, each
// occurrence draws a damage multiplier m from a Beta-derived
// distribution normalised to E[m] = 1 and contributes m * l. The draw
// is a deterministic function of (seed, trial, occurrence index, ELT),
// so results are reproducible and independent of execution order —
// the same property the pre-simulated YET gives the primary
// uncertainty.
#pragma once

#include <cstdint>

#include "core/engine.hpp"

namespace ara::ext {

struct SecondaryUncertaintyConfig {
  /// Beta(a, b) damage-ratio shape; the multiplier is
  /// Beta(a, b) / (a / (a + b)). Larger a+b = tighter around the mean.
  double alpha = 2.0;
  double beta = 4.0;
  std::uint64_t seed = 97;
};

/// Sequential engine applying secondary uncertainty to every event
/// loss before the financial terms. With alpha/beta -> infinity (no
/// dispersion) it converges to FusedSequentialEngine's results; a
/// property test asserts the mean-preservation.
class SecondaryUncertaintyEngine final : public Engine {
 public:
  explicit SecondaryUncertaintyEngine(SecondaryUncertaintyConfig config = {})
      : config_(config) {}

  std::string name() const override { return "secondary_uncertainty"; }

  using Engine::run;
  SimulationResult run(const Portfolio& portfolio, const Yet& yet,
                       const EngineContext& context) const override;

 private:
  SecondaryUncertaintyConfig config_;
};

}  // namespace ara::ext
