#include "extensions/secondary_uncertainty.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/trial_math.hpp"
#include "perf/cpu_cost_model.hpp"
#include "perf/machine_profile.hpp"
#include "perf/stopwatch.hpp"
#include "synth/distributions.hpp"
#include "synth/rng.hpp"

namespace ara::ext {

SimulationResult SecondaryUncertaintyEngine::run(
    const Portfolio& portfolio, const Yet& yet,
    const EngineContext& context) const {
  if (portfolio.catalogue_size() != yet.catalogue_size()) {
    throw std::invalid_argument(
        "SecondaryUncertaintyEngine: portfolio and YET index different "
        "catalogues");
  }
  const TrialRange range = context.trials.resolve(yet.trial_count());

  SimulationResult result;
  result.engine_name = name();
  result.trial_begin = range.begin;
  result.ops = range_ops(portfolio, yet, range.begin, range.end);

  perf::Stopwatch wall;
  if (context.cost_only) {
    const perf::CpuCostModel model(perf::intel_i7_2600());
    result.simulated_phases = model.estimate(result.ops, 1);
    result.simulated_seconds = result.simulated_phases.total();
    return result;
  }
  // Layer-major on purpose: each (layer, trial) owns a deterministic
  // RNG sub-stream whose draws are consumed in per-layer order, so the
  // trial-major fusion would reorder nothing but is not needed either.
  TableStore<double> local;
  const TableStore<double>& tables =
      *select_tables(context.tables_f64, local, portfolio);
  result.ylt = Ylt(portfolio.layer_count(), range.size());

  const double mean_beta = config_.alpha / (config_.alpha + config_.beta);

  for (std::size_t a = 0; a < portfolio.layer_count(); ++a) {
    const BoundLayer<double> layer = bind_layer(portfolio, tables, a);
    for (std::size_t b = range.begin; b < range.end; ++b) {
      // One deterministic sub-stream per (layer, trial): draws are
      // keyed by the *global* trial index, so results do not depend on
      // how trials are scheduled across engines/devices/shards.
      synth::Xoshiro256StarStar rng(synth::substream(
          config_.seed, (static_cast<std::uint64_t>(a) << 40) | b));
      synth::BetaSampler damage(config_.alpha, config_.beta);

      const auto trial = yet.trial(static_cast<TrialId>(b));
      double cumulative = 0.0, prev_capped = 0.0;
      double annual = 0.0, max_occ = 0.0;
      for (const EventOccurrence& occ : trial) {
        double combined = 0.0;
        for (std::size_t j = 0; j < layer.elt_count(); ++j) {
          const double ground = layer.tables[j]->at(occ.event);
          if (ground == 0.0) continue;  // no draw for uncovered events
          const double multiplier = damage.sample(rng) / mean_beta;
          combined +=
              apply_financial_terms(ground * multiplier, layer.terms[j]);
        }
        const double occ_loss =
            apply_occurrence_terms(combined, layer.layer_terms);
        max_occ = std::max(max_occ, occ_loss);
        cumulative += occ_loss;
        const double capped =
            apply_aggregate_terms(cumulative, layer.layer_terms);
        annual += capped - prev_capped;
        prev_capped = capped;
      }
      result.ylt.annual_loss(a, static_cast<TrialId>(b - range.begin)) =
          annual;
      result.ylt.max_occurrence_loss(
          a, static_cast<TrialId>(b - range.begin)) = max_occ;
    }
  }
  result.wall_seconds = wall.seconds();

  const perf::CpuCostModel model(perf::intel_i7_2600());
  result.simulated_phases = model.estimate(result.ops, 1);
  result.simulated_seconds = result.simulated_phases.total();
  return result;
}

}  // namespace ara::ext
