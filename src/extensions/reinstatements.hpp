// Reinstatement provisions — the contract feature of the catastrophe
// XL treaties the paper's pricing literature (Anderson & Dong 1998,
// cited as [6]) is about. This extension prices layers whose aggregate
// capacity is a number of *reinstatements* of the occurrence limit
// rather than a flat aggregate limit:
//
//  * the layer pays clamp(loss - OccR, 0, OccL) per occurrence, but
//    never more than its remaining annual capacity (N+1) x OccL
//    (the original limit plus N reinstatements);
//  * every unit of limit consumed below the Nth reinstatement is
//    restored against a pro-rata reinstatement premium:
//    premium += consumed / OccL * rate * upfront_premium,
//    where only the first N x OccL of consumption is reinstatable.
//
// The engine produces both sides of the contract per (layer, trial):
// the recovered loss (a YLT) and the reinstatement premium income.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.hpp"

namespace ara::ext {

/// Terms of one layer with reinstatements.
struct ReinstatementTerms {
  double occ_retention = 0.0;
  double occ_limit = 0.0;        ///< must be > 0
  unsigned reinstatements = 1;   ///< N (0 = no reinstatement)
  double premium_rate = 1.0;     ///< rate on line of each reinstatement
                                 ///< (1.0 = "at 100%")
  double upfront_premium = 0.0;  ///< premium the reinstatement rate
                                 ///< applies to

  /// Total annual capacity: the original limit plus N reinstatements.
  double annual_capacity() const {
    return (reinstatements + 1.0) * occ_limit;
  }

  bool valid() const {
    return occ_retention >= 0.0 && occ_limit > 0.0 && premium_rate >= 0.0 &&
           upfront_premium >= 0.0;
  }
};

/// Per-trial outputs of a reinstatement analysis for one layer.
struct ReinstatementOutcome {
  double recovered = 0.0;            ///< annual recovered loss
  double reinstated = 0.0;           ///< limit amount restored
  double reinstatement_premium = 0.0;///< premium income from restorations
};

/// Result of a reinstatement analysis: layer-major blocks of per-trial
/// outcomes plus summary accessors.
class ReinstatementResult {
 public:
  ReinstatementResult(std::size_t layers, std::size_t trials)
      : layers_(layers), trials_(trials), outcomes_(layers * trials) {}

  std::size_t layer_count() const noexcept { return layers_; }
  std::size_t trial_count() const noexcept { return trials_; }

  ReinstatementOutcome& at(std::size_t layer, TrialId trial) {
    return outcomes_[layer * trials_ + trial];
  }
  const ReinstatementOutcome& at(std::size_t layer, TrialId trial) const {
    return outcomes_[layer * trials_ + trial];
  }

  /// Mean recovered loss for a layer (the pure premium of the cover).
  double expected_recovery(std::size_t layer) const;

  /// Mean reinstatement premium income for a layer.
  double expected_reinstatement_premium(std::size_t layer) const;

  /// Copies `other`'s trial rows (all layers) into this result at
  /// [trial_begin, trial_begin + other.trial_count()) — the shard
  /// merge of the reinstatement pass, mirroring Ylt::merge_trial_block.
  void merge_trial_block(const ReinstatementResult& other,
                         std::size_t trial_begin);

 private:
  std::size_t layers_ = 0;
  std::size_t trials_ = 0;
  std::vector<ReinstatementOutcome> outcomes_;
};

/// Evaluates one trial of occurrence losses (already net of the
/// layer's financial terms and combined across ELTs, in time order)
/// against reinstatement terms. Exposed for unit testing.
ReinstatementOutcome evaluate_reinstatement_trial(
    const std::vector<double>& occurrence_losses,
    const ReinstatementTerms& terms);

/// Sequential engine: runs every portfolio layer against the YET with
/// the per-layer reinstatement terms (one entry per portfolio layer;
/// the portfolio's own occurrence/aggregate terms are ignored in
/// favour of the reinstatement terms, matching how such treaties are
/// quoted).
class ReinstatementEngine {
 public:
  ReinstatementEngine(const Portfolio& portfolio,
                      std::vector<ReinstatementTerms> terms);

  /// `shared_tables` (optional) must have been built from the same
  /// portfolio; null means build locally (the one-shot API). The
  /// session passes its cached store so a batch of requests with
  /// reinstatement terms binds tables once. `trials` restricts the run
  /// to a trial shard: the result then holds only that range's rows
  /// (locally indexed), placed into a full result with
  /// ReinstatementResult::merge_trial_block. Each trial is evaluated
  /// independently, so sharded results are bitwise identical to the
  /// whole-YET run's rows.
  ReinstatementResult run(const Yet& yet,
                          const TableStore<double>* shared_tables = nullptr,
                          TrialRange trials = {}) const;

 private:
  const Portfolio& portfolio_;
  std::vector<ReinstatementTerms> terms_;
};

}  // namespace ara::ext
