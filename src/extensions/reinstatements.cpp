#include "extensions/reinstatements.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/trial_math.hpp"

namespace ara::ext {

double ReinstatementResult::expected_recovery(std::size_t layer) const {
  if (trials_ == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t t = 0; t < trials_; ++t) {
    sum += outcomes_[layer * trials_ + t].recovered;
  }
  return sum / static_cast<double>(trials_);
}

double ReinstatementResult::expected_reinstatement_premium(
    std::size_t layer) const {
  if (trials_ == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t t = 0; t < trials_; ++t) {
    sum += outcomes_[layer * trials_ + t].reinstatement_premium;
  }
  return sum / static_cast<double>(trials_);
}

void ReinstatementResult::merge_trial_block(const ReinstatementResult& other,
                                            std::size_t trial_begin) {
  if (other.layers_ != layers_) {
    throw std::invalid_argument(
        "ReinstatementResult::merge_trial_block: layer count mismatch");
  }
  if (trial_begin + other.trials_ > trials_) {
    throw std::invalid_argument(
        "ReinstatementResult::merge_trial_block: range out of bounds");
  }
  for (std::size_t l = 0; l < layers_; ++l) {
    std::copy_n(other.outcomes_.begin() + l * other.trials_, other.trials_,
                outcomes_.begin() + l * trials_ + trial_begin);
  }
}

ReinstatementOutcome evaluate_reinstatement_trial(
    const std::vector<double>& occurrence_losses,
    const ReinstatementTerms& terms) {
  if (!terms.valid()) {
    throw std::invalid_argument(
        "evaluate_reinstatement_trial: invalid terms");
  }
  ReinstatementOutcome out;
  double capacity = terms.annual_capacity();
  // Limit consumption that can still be restored (the first N x OccL).
  const double reinstatable_total =
      static_cast<double>(terms.reinstatements) * terms.occ_limit;
  double consumed = 0.0;
  for (const double loss : occurrence_losses) {
    if (capacity <= 0.0) break;  // layer exhausted for the year
    double recovery = loss - terms.occ_retention;
    if (recovery <= 0.0) continue;
    recovery = std::min({recovery, terms.occ_limit, capacity});
    capacity -= recovery;
    out.recovered += recovery;
    // Pro-rata reinstatement premium on the restorable part of the
    // consumption (consumption beyond N x OccL burns the final limit
    // and is not restored).
    const double restorable =
        std::max(0.0, std::min(consumed + recovery, reinstatable_total) -
                          std::min(consumed, reinstatable_total));
    out.reinstated += restorable;
    out.reinstatement_premium += restorable / terms.occ_limit *
                                 terms.premium_rate * terms.upfront_premium;
    consumed += recovery;
  }
  return out;
}

ReinstatementEngine::ReinstatementEngine(
    const Portfolio& portfolio, std::vector<ReinstatementTerms> terms)
    : portfolio_(portfolio), terms_(std::move(terms)) {
  if (terms_.size() != portfolio_.layer_count()) {
    throw std::invalid_argument(
        "ReinstatementEngine: one ReinstatementTerms per layer required");
  }
  for (const ReinstatementTerms& t : terms_) {
    if (!t.valid()) {
      throw std::invalid_argument(
          "ReinstatementEngine: invalid reinstatement terms");
    }
  }
}

ReinstatementResult ReinstatementEngine::run(
    const Yet& yet, const TableStore<double>* shared_tables,
    TrialRange trials) const {
  if (portfolio_.catalogue_size() != yet.catalogue_size()) {
    throw std::invalid_argument(
        "ReinstatementEngine: portfolio and YET index different catalogues");
  }
  const TrialRange range = trials.resolve(yet.trial_count());
  ReinstatementResult result(portfolio_.layer_count(), range.size());
  TableStore<double> local;
  const TableStore<double>& tables =
      *select_tables(shared_tables, local, portfolio_);

  std::vector<double> occ_losses;
  for (std::size_t a = 0; a < portfolio_.layer_count(); ++a) {
    const BoundLayer<double> layer = bind_layer(portfolio_, tables, a);
    for (std::size_t b = range.begin; b < range.end; ++b) {
      const auto trial = yet.trial(static_cast<TrialId>(b));
      occ_losses.clear();
      occ_losses.reserve(trial.size());
      for (const EventOccurrence& occ : trial) {
        double combined = 0.0;
        for (std::size_t j = 0; j < layer.elt_count(); ++j) {
          combined += apply_financial_terms(layer.tables[j]->at(occ.event),
                                            layer.terms[j]);
        }
        occ_losses.push_back(combined);
      }
      result.at(a, static_cast<TrialId>(b - range.begin)) =
          evaluate_reinstatement_trial(occ_losses, terms_[a]);
    }
  }
  return result;
}

}  // namespace ara::ext
