// Fundamental identifier and counter types shared across the library.
#pragma once

#include <cstdint>

namespace ara {

/// Identifier of a stochastic catalogue event. Valid ids are
/// 1..catalogue_size; 0 is reserved as "no event".
using EventId = std::uint32_t;

constexpr EventId kInvalidEvent = 0;

/// Index of a trial (a simulated contractual year) in the YET.
using TrialId = std::uint32_t;

/// Timestamp of an event occurrence within a trial, in day-of-year
/// ordinal units (1..365). Only the ordering matters to the algorithm;
/// the aggregate terms are sequence-dependent.
using Timestamp = std::uint32_t;

/// One occurrence record in a trial: which event, and when.
struct EventOccurrence {
  EventId event = kInvalidEvent;
  Timestamp time = 0;

  friend bool operator==(const EventOccurrence&,
                         const EventOccurrence&) = default;
};

/// Operation counters accumulated by the engines. These are the inputs
/// to the analytic cost models in src/perf and src/simgpu: they count
/// *algorithmic* work (how many random lookups, how many term
/// applications), which the models convert into simulated time on a
/// given machine profile.
struct OpCounts {
  std::uint64_t event_fetches = 0;    ///< YET reads (one per event per trial)
  std::uint64_t elt_lookups = 0;      ///< random accesses into loss tables
  std::uint64_t financial_ops = 0;    ///< financial-term applications
  std::uint64_t occurrence_ops = 0;   ///< occurrence-term applications
  std::uint64_t aggregate_ops = 0;    ///< aggregate-term/prefix-sum steps
  std::uint64_t global_updates = 0;   ///< writes to (simulated) global memory
  std::uint64_t shared_accesses = 0;  ///< accesses to (simulated) shared memory

  OpCounts& operator+=(const OpCounts& o) {
    event_fetches += o.event_fetches;
    elt_lookups += o.elt_lookups;
    financial_ops += o.financial_ops;
    occurrence_ops += o.occurrence_ops;
    aggregate_ops += o.aggregate_ops;
    global_updates += o.global_updates;
    shared_accesses += o.shared_accesses;
    return *this;
  }

  friend OpCounts operator+(OpCounts a, const OpCounts& b) {
    a += b;
    return a;
  }

  friend bool operator==(const OpCounts&, const OpCounts&) = default;
};

}  // namespace ara
