#include "core/cpu_engines.hpp"

#include <algorithm>

#include "core/trial_math.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "perf/cpu_cost_model.hpp"
#include "perf/machine_profile.hpp"
#include "perf/stopwatch.hpp"

namespace ara {

SimulationResult FusedSequentialEngine::run(const Portfolio& portfolio,
                                            const Yet& yet) const {
  SimulationResult result;
  result.engine_name = name();
  result.ops = count_algorithm_ops(portfolio, yet);
  // The fused formulation keeps its scratch in registers; only the
  // YLT write remains.
  result.ops.global_updates = result.ops.occurrence_ops ? 1 : 0;

  perf::Stopwatch wall;
  const TableStore<double> tables = build_tables<double>(portfolio);
  result.ylt = Ylt(portfolio.layer_count(), yet.trial_count());
  for (std::size_t a = 0; a < portfolio.layer_count(); ++a) {
    const BoundLayer<double> layer = bind_layer(portfolio, tables, a);
    for (TrialId b = 0; b < yet.trial_count(); ++b) {
      const TrialOutcome<double> out =
          simulate_trial_fused<double>(yet.trial(b), layer);
      result.ylt.annual_loss(a, b) = out.annual;
      result.ylt.max_occurrence_loss(a, b) = out.max_occurrence;
    }
  }
  result.wall_seconds = wall.seconds();

  const perf::CpuCostModel model(perf::intel_i7_2600());
  result.simulated_phases = model.estimate(result.ops, /*cores=*/1);
  result.simulated_seconds = result.simulated_phases.total();
  return result;
}

SimulationResult MultiCoreEngine::run(const Portfolio& portfolio,
                                      const Yet& yet) const {
  SimulationResult result;
  result.engine_name = name();
  result.ops = count_algorithm_ops(portfolio, yet);
  result.ops.global_updates =
      result.ops.occurrence_ops * kScratchTouchesPerEvent;

  const unsigned cores = std::max(1u, config_.cores);
  const unsigned oversub = std::max(1u, config_.threads_per_core);

  perf::Stopwatch wall;
  const TableStore<double> tables = build_tables<double>(portfolio);
  result.ylt = Ylt(portfolio.layer_count(), yet.trial_count());

  // One software thread per trial batch; cores x threads_per_core
  // workers, as in the paper's oversubscribed OpenMP runs. (On this
  // container the workers time-share one physical core; the simulated
  // time below models the paper's machine.)
  parallel::ThreadPool pool(static_cast<std::size_t>(cores) * oversub);
  for (std::size_t a = 0; a < portfolio.layer_count(); ++a) {
    const BoundLayer<double> layer = bind_layer(portfolio, tables, a);
    parallel::parallel_for(pool, yet.trial_count(), [&](parallel::Range r) {
      for (std::size_t b = r.begin; b < r.end; ++b) {
        const TrialOutcome<double> out = simulate_trial_fused<double>(
            yet.trial(static_cast<TrialId>(b)), layer);
        result.ylt.annual_loss(a, static_cast<TrialId>(b)) = out.annual;
        result.ylt.max_occurrence_loss(a, static_cast<TrialId>(b)) =
            out.max_occurrence;
      }
    });
  }
  result.wall_seconds = wall.seconds();

  const perf::CpuCostModel model(perf::intel_i7_2600());
  result.simulated_phases = model.estimate(result.ops, cores, oversub);
  result.simulated_seconds = result.simulated_phases.total();
  return result;
}

}  // namespace ara
