#include "core/cpu_engines.hpp"

#include <algorithm>
#include <vector>

#include "core/trial_math.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "perf/cpu_cost_model.hpp"
#include "perf/machine_profile.hpp"
#include "perf/stopwatch.hpp"

namespace ara {

namespace {

// Runs the trial-major sweep for global trials [range.begin,
// range.end), writing each layer's slice of the YLT at local row
// (trial - out_base) — out_base is the global index of the YLT's first
// row (0 for a full run, the shard begin for a partial one). Different
// ranges touch disjoint YLT elements, and within one range every
// layer's writes are contiguous — workers never share a cache line
// except at range boundaries.
void sweep_trials(const Yet& yet, std::span<const BoundLayer<double>> layers,
                  parallel::Range range, std::size_t out_base, Ylt& ylt) {
  std::vector<LayerTrialState<double>> state(layers.size());
  for (std::size_t b = range.begin; b < range.end; ++b) {
    const auto t = static_cast<TrialId>(b);
    const auto row = static_cast<TrialId>(b - out_base);
    simulate_trial_multilayer<double>(yet.trial(t), layers, state);
    for (std::size_t a = 0; a < layers.size(); ++a) {
      ylt.annual_loss(a, row) = state[a].out.annual;
      ylt.max_occurrence_loss(a, row) = state[a].out.max_occurrence;
    }
  }
}

}  // namespace

SimulationResult FusedSequentialEngine::run(const Portfolio& portfolio,
                                            const Yet& yet,
                                            const EngineContext& context) const {
  const TrialRange range = context.trials.resolve(yet.trial_count());

  SimulationResult result;
  result.engine_name = name();
  result.trial_begin = range.begin;
  result.ops = range_fused_ops(portfolio, yet, range.begin, range.end);
  // The fused formulation keeps its scratch in registers; only the
  // YLT write remains.
  result.ops.global_updates = result.ops.occurrence_ops ? 1 : 0;

  perf::Stopwatch wall;
  if (!context.cost_only) {
    TableStore<double> local;
    const TableStore<double>* tables =
        select_tables(context.tables_f64, local, portfolio);
    const std::vector<BoundLayer<double>> layers =
        bind_all_layers(portfolio, *tables);
    result.ylt = Ylt(portfolio.layer_count(), range.size());
    sweep_trials(yet, layers, {range.begin, range.end}, range.begin,
                 result.ylt);
    result.wall_seconds = wall.seconds();
  }

  const perf::CpuCostModel model(perf::intel_i7_2600());
  result.simulated_phases = model.estimate(result.ops, /*cores=*/1);
  result.simulated_seconds = result.simulated_phases.total();
  return result;
}

MultiCoreEngine::~MultiCoreEngine() = default;

parallel::ThreadPool& MultiCoreEngine::cached_pool() const {
  const unsigned cores = std::max(1u, config_.cores);
  const unsigned oversub = std::max(1u, config_.threads_per_core);
  std::lock_guard<std::mutex> lock(pool_mutex_);
  if (!pool_) {
    pool_ = std::make_unique<parallel::ThreadPool>(
        static_cast<std::size_t>(cores) * oversub);
  }
  return *pool_;
}

SimulationResult MultiCoreEngine::run(const Portfolio& portfolio,
                                      const Yet& yet,
                                      const EngineContext& context) const {
  const TrialRange range = context.trials.resolve(yet.trial_count());

  SimulationResult result;
  result.engine_name = name();
  result.trial_begin = range.begin;
  result.ops = range_fused_ops(portfolio, yet, range.begin, range.end);
  result.ops.global_updates =
      result.ops.occurrence_ops * kScratchTouchesPerEvent;

  const unsigned cores = std::max(1u, config_.cores);
  const unsigned oversub = std::max(1u, config_.threads_per_core);

  perf::Stopwatch wall;
  if (!context.cost_only) {
    TableStore<double> local;
    const TableStore<double>* tables =
        select_tables(context.tables_f64, local, portfolio);
    const std::vector<BoundLayer<double>> layers =
        bind_all_layers(portfolio, *tables);
    result.ylt = Ylt(portfolio.layer_count(), range.size());

    // One software thread per trial batch, as in the paper's
    // oversubscribed OpenMP runs; a single trial-major wave replaces
    // the old per-layer dispatch. (On this container the workers
    // time-share one physical core; the simulated time below models
    // the paper's machine.)
    parallel::ThreadPool& pool =
        context.pool != nullptr ? *context.pool : cached_pool();
    parallel::parallel_for(pool, range.size(), [&](parallel::Range r) {
      sweep_trials(yet, layers, {range.begin + r.begin, range.begin + r.end},
                   range.begin, result.ylt);
    });
    result.wall_seconds = wall.seconds();
  }

  const perf::CpuCostModel model(perf::intel_i7_2600());
  result.simulated_phases = model.estimate(result.ops, cores, oversub);
  result.simulated_seconds = result.simulated_phases.total();
  return result;
}

}  // namespace ara
