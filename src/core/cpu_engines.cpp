#include "core/cpu_engines.hpp"

#include <algorithm>
#include <vector>

#include "core/simd/bound_portfolio.hpp"
#include "core/simd/kernels.hpp"
#include "core/trial_math.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "perf/cpu_cost_model.hpp"
#include "perf/machine_profile.hpp"
#include "perf/stopwatch.hpp"

namespace ara {

namespace {

// Runs the trial-major sweep for global trials [range.begin,
// range.end), writing each layer's slice of the YLT at local row
// (trial - out_base) — out_base is the global index of the YLT's first
// row (0 for a full run, the shard begin for a partial one). Different
// ranges touch disjoint YLT elements, and within one range every
// layer's writes are contiguous — workers never share a cache line
// except at range boundaries. The per-trial work is the dispatched
// SoA kernel (core/simd/): scalar in the default bitwise-reference
// mode, vectorized under SimdPolicy::kAuto/kForceWidth.
void sweep_trials(const Yet& yet, const simd::BoundPortfolio<double>& bp,
                  const simd::SweepKernel<double>& kernel,
                  parallel::Range range, std::size_t out_base, Ylt& ylt) {
  simd::PortfolioTrialState<double> state(bp);
  for (std::size_t b = range.begin; b < range.end; ++b) {
    const auto t = static_cast<TrialId>(b);
    const auto row = static_cast<TrialId>(b - out_base);
    kernel.sweep(bp, yet.trial(t), state);
    for (std::size_t a = 0; a < bp.layers; ++a) {
      ylt.annual_loss(a, row) = state.annual[a];
      ylt.max_occurrence_loss(a, row) = state.max_occurrence[a];
    }
  }
}

}  // namespace

SimulationResult FusedSequentialEngine::run(const Portfolio& portfolio,
                                            const Yet& yet,
                                            const EngineContext& context) const {
  const TrialRange range = context.trials.resolve(yet.trial_count());

  SimulationResult result;
  result.engine_name = name();
  result.trial_begin = range.begin;
  result.ops = range_fused_ops(portfolio, yet, range.begin, range.end);
  // The fused formulation keeps its scratch in registers; only the
  // YLT write remains.
  result.ops.global_updates = result.ops.occurrence_ops ? 1 : 0;

  // Kernel selection happens even for cost-only replays: the choice is
  // a pure function of config + host, it records the active ISA, and a
  // kForceWidth the host can't satisfy should fail loudly either way.
  const simd::SweepKernel<double> kernel =
      simd::select_kernel<double>(config_.simd, config_.simd_width);
  result.simd_isa = simd::isa_name(kernel.isa);

  perf::Stopwatch wall;
  if (!context.cost_only) {
    TableStore<double> local;
    const TableStore<double>* tables =
        select_tables(context.tables_f64, local, portfolio);
    const simd::BoundPortfolio<double> bp =
        simd::bind_portfolio(portfolio, *tables);
    result.ylt = Ylt(portfolio.layer_count(), range.size());
    sweep_trials(yet, bp, kernel, {range.begin, range.end}, range.begin,
                 result.ylt);
    result.wall_seconds = wall.seconds();
  }

  const perf::CpuCostModel model(perf::intel_i7_2600());
  result.simulated_phases = model.estimate(result.ops, /*cores=*/1);
  result.simulated_seconds = result.simulated_phases.total();
  return result;
}

MultiCoreEngine::~MultiCoreEngine() = default;

parallel::ThreadPool& MultiCoreEngine::cached_pool() const {
  const unsigned cores = std::max(1u, config_.cores);
  const unsigned oversub = std::max(1u, config_.threads_per_core);
  std::lock_guard<std::mutex> lock(pool_mutex_);
  if (!pool_) {
    pool_ = std::make_unique<parallel::ThreadPool>(
        static_cast<std::size_t>(cores) * oversub);
  }
  return *pool_;
}

SimulationResult MultiCoreEngine::run(const Portfolio& portfolio,
                                      const Yet& yet,
                                      const EngineContext& context) const {
  const TrialRange range = context.trials.resolve(yet.trial_count());

  SimulationResult result;
  result.engine_name = name();
  result.trial_begin = range.begin;
  result.ops = range_fused_ops(portfolio, yet, range.begin, range.end);
  result.ops.global_updates =
      result.ops.occurrence_ops * kScratchTouchesPerEvent;

  const unsigned cores = std::max(1u, config_.cores);
  const unsigned oversub = std::max(1u, config_.threads_per_core);

  const simd::SweepKernel<double> kernel =
      simd::select_kernel<double>(config_.simd, config_.simd_width);
  result.simd_isa = simd::isa_name(kernel.isa);

  perf::Stopwatch wall;
  if (!context.cost_only) {
    TableStore<double> local;
    const TableStore<double>* tables =
        select_tables(context.tables_f64, local, portfolio);
    const simd::BoundPortfolio<double> bp =
        simd::bind_portfolio(portfolio, *tables);
    result.ylt = Ylt(portfolio.layer_count(), range.size());

    // One software thread per trial batch, as in the paper's
    // oversubscribed OpenMP runs; a single trial-major wave replaces
    // the old per-layer dispatch. (On this container the workers
    // time-share one physical core; the simulated time below models
    // the paper's machine.) Each range worker owns its trial state;
    // the shared binding is read-only.
    parallel::ThreadPool& pool =
        context.pool != nullptr ? *context.pool : cached_pool();
    parallel::parallel_for(pool, range.size(), [&](parallel::Range r) {
      sweep_trials(yet, bp, kernel,
                   {range.begin + r.begin, range.begin + r.end}, range.begin,
                   result.ylt);
    });
    result.wall_seconds = wall.seconds();
  }

  const perf::CpuCostModel model(perf::intel_i7_2600());
  result.simulated_phases = model.estimate(result.ops, cores, oversub);
  result.simulated_seconds = result.simulated_phases.total();
  return result;
}

}  // namespace ara
