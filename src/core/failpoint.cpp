#include "core/failpoint.hpp"

#include <cstdlib>
#include <mutex>
#include <random>
#include <stdexcept>
#include <unordered_map>

namespace ara::fail {

struct Registry::Impl {
  struct Site {
    double probability = 0.0;
    double value = 0.0;
    std::uint64_t max_fires = 0;  ///< 0 = unlimited
    std::mt19937_64 rng;
    SiteStats stats;
  };

  mutable std::mutex mutex;
  std::unordered_map<std::string, Site> sites;
  bool env_loaded = false;
};

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Registry::Impl& Registry::impl() const {
  static Impl instance;
  return instance;
}

void Registry::arm(const std::string& site, double probability,
                   std::uint64_t seed, double value,
                   std::uint64_t max_fires) {
  if (!(probability >= 0.0 && probability <= 1.0)) {
    throw std::invalid_argument("failpoint " + site +
                                ": probability must be in [0, 1]");
  }
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  Impl::Site& s = i.sites[site];
  s.probability = probability;
  s.value = value;
  s.max_fires = max_fires;
  s.rng.seed(seed);
  s.stats = SiteStats{};
}

void Registry::arm_from_spec(const std::string& spec) {
  // SITE=PROB[:SEED[:VALUE[:MAX_FIRES]]][;...]
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("failpoint spec: expected SITE=PROB in \"" +
                                  entry + "\"");
    }
    const std::string site = entry.substr(0, eq);
    std::string rest = entry.substr(eq + 1);

    double probability = 0.0;
    std::uint64_t seed = 1;
    double value = 0.0;
    std::uint64_t max_fires = 0;
    int field = 0;
    std::size_t rpos = 0;
    while (rpos <= rest.size() && field < 4) {
      std::size_t colon = rest.find(':', rpos);
      if (colon == std::string::npos) colon = rest.size();
      const std::string token = rest.substr(rpos, colon - rpos);
      rpos = colon + 1;
      if (token.empty()) {
        throw std::invalid_argument("failpoint spec: empty field in \"" +
                                    entry + "\"");
      }
      try {
        std::size_t used = 0;
        switch (field) {
          case 0: probability = std::stod(token, &used); break;
          case 1: seed = std::stoull(token, &used); break;
          case 2: value = std::stod(token, &used); break;
          case 3: max_fires = std::stoull(token, &used); break;
        }
        if (used != token.size()) throw std::invalid_argument(token);
      } catch (const std::exception&) {
        throw std::invalid_argument("failpoint spec: bad number \"" + token +
                                    "\" in \"" + entry + "\"");
      }
      ++field;
      if (rpos > rest.size()) break;
    }
    if (rpos <= rest.size()) {
      throw std::invalid_argument("failpoint spec: too many fields in \"" +
                                  entry + "\"");
    }
    arm(site, probability, seed, value, max_fires);
  }
}

void Registry::arm_from_env() {
  Impl& i = impl();
  {
    std::lock_guard<std::mutex> lock(i.mutex);
    if (i.env_loaded) return;
    i.env_loaded = true;
  }
  if (const char* spec = std::getenv("ARA_FAILPOINTS");
      spec != nullptr && spec[0] != '\0') {
    arm_from_spec(spec);
  }
}

void Registry::disarm_all() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  i.sites.clear();
}

std::optional<double> Registry::fire(const std::string& site) {
  arm_from_env();
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  const auto it = i.sites.find(site);
  if (it == i.sites.end()) return std::nullopt;
  Impl::Site& s = it->second;
  ++s.stats.hits;
  if (s.max_fires != 0 && s.stats.fires >= s.max_fires) return std::nullopt;
  if (s.probability <= 0.0) return std::nullopt;
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  if (s.probability < 1.0 && dist(s.rng) >= s.probability) return std::nullopt;
  ++s.stats.fires;
  return s.value;
}

SiteStats Registry::stats(const std::string& site) const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  const auto it = i.sites.find(site);
  return it == i.sites.end() ? SiteStats{} : it->second.stats;
}

}  // namespace ara::fail
