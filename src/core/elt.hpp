// Event Loss Table (ELT): the sparse `event -> loss` dictionary of the
// paper, plus its financial terms. This is the canonical, compact
// representation; the engines build one of the lookup structures in
// core/lookup_table.hpp from it (most importantly the direct access
// table the paper's design is built around).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/financial_terms.hpp"
#include "core/types.hpp"

namespace ara {

/// One record of an ELT: event loss EL_i = {E_i, l_i}.
struct EventLoss {
  EventId event = kInvalidEvent;
  double loss = 0.0;

  friend bool operator==(const EventLoss&, const EventLoss&) = default;
};

/// An Event Loss Table: sorted, duplicate-free event-loss records for
/// one exposure set, plus the financial terms `I` applied to each event
/// loss drawn from this table.
class Elt {
 public:
  Elt() = default;

  /// Builds an ELT from records. Records are sorted by event id;
  /// duplicate event ids or ids outside [1, catalogue_size] throw
  /// std::invalid_argument. Zero losses are kept (they are legal, just
  /// wasteful).
  Elt(std::vector<EventLoss> records, FinancialTerms terms,
      EventId catalogue_size);

  /// Number of non-zero records.
  std::size_t size() const noexcept { return records_.size(); }
  bool empty() const noexcept { return records_.empty(); }

  /// Size of the event catalogue this table indexes into. A direct
  /// access table built from this ELT has exactly this many slots.
  EventId catalogue_size() const noexcept { return catalogue_size_; }

  const FinancialTerms& terms() const noexcept { return terms_; }

  /// Records sorted by ascending event id.
  const std::vector<EventLoss>& records() const noexcept { return records_; }

  /// O(log n) reference lookup (binary search). Engines use the
  /// dedicated lookup structures instead; this is the correctness
  /// oracle in tests.
  double lookup(EventId event) const;

  /// Sum of all losses (before financial terms).
  double total_loss() const;

 private:
  std::vector<EventLoss> records_;
  FinancialTerms terms_;
  EventId catalogue_size_ = 0;
};

}  // namespace ara
