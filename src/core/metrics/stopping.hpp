// Confidence-driven early stopping for Monte-Carlo pricing runs
// (DESIGN.md §10).
//
// The convergence module answers "how many trials would a target error
// need?" after the fact; this module closes the loop while a run is in
// flight. A StoppingSpec names the metrics whose confidence intervals
// must tighten (AAL, VaR, TVaR at chosen quantiles), the relative
// half-width tolerance, and the trial budget; an AdaptiveController
// turns that into a wave schedule — authorize a frontier of trials,
// observe the completed per-trial portfolio losses, and at each wave
// barrier either stop (every targeted interval inside tolerance, or
// the budget exhausted) or extend the frontier geometrically.
//
// Determinism contract: the stopping decision is a pure function of
// the spec and the observed loss prefix. Evaluation happens only at
// wave barriers (the frontier fully covered), the sample is assembled
// in trial order regardless of block completion order, and the
// bootstrap standard errors are seeded per (seed, target, n) — so an
// adaptive run is reproducible for a given seed and shard size, local
// or distributed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ara::metrics {

/// Which metric a stopping target (or a race objective) watches. All
/// three are evaluated on the per-trial portfolio annual loss.
enum class StopMetric {
  kAal,   ///< mean annual loss; SE = sd / sqrt(n) (CLT)
  kVar,   ///< p-quantile (type-7); SE bootstrapped
  kTvar,  ///< mean of losses >= VaR_p; SE bootstrapped
};

const char* stop_metric_name(StopMetric metric);

/// One targeted confidence interval.
struct StoppingTarget {
  StopMetric metric = StopMetric::kAal;
  double p = 0.99;  ///< quantile level (kVar/kTvar); ignored for kAal
};

/// The adaptive-mode contract: run until every target's confidence
/// interval has relative half-width <= `relative_tolerance` at
/// `confidence`, within [min_trials, max_trials].
struct StoppingSpec {
  std::vector<StoppingTarget> targets = {{StopMetric::kAal, 0.0}};
  double relative_tolerance = 0.05;  ///< half-width / |estimate|
  double confidence = 0.95;          ///< two-sided normal coverage
  std::size_t min_trials = 1000;     ///< never decide on less
  std::size_t max_trials = 0;        ///< hard budget; 0 = whole workload
  /// Geometric wave growth: each barrier extends the frontier to
  /// ~growth x the previous one (rounded up to whole waves). Must be
  /// > 1 so the schedule always makes progress.
  double wave_growth = 1.5;
  unsigned bootstrap_reps = 200;  ///< for the kVar/kTvar standard errors
  std::uint64_t seed = 12345;     ///< bootstrap determinism

  /// Throws std::invalid_argument on an unsatisfiable spec (no
  /// targets, tolerance/confidence/growth out of range, quantile
  /// levels outside (0, 1), too few bootstrap reps for a
  /// bootstrap-needing target).
  void validate() const;
};

/// One target's interval at the latest evaluation.
struct TargetStatus {
  StoppingTarget target;
  std::size_t trials = 0;
  double estimate = 0.0;
  double std_error = 0.0;
  double half_width = 0.0;  ///< z_for_confidence(conf) * std_error
  /// half_width / |estimate|; 0 when both are zero (a constant
  /// sample), +inf when only the estimate is.
  double relative_half_width = 0.0;
  bool satisfied = false;
};

/// Inverse normal CDF at two-sided coverage `confidence` in (0.5, 1):
/// z such that P(|N(0,1)| <= z) = confidence (0.95 -> 1.959964).
/// Beasley-Springer-Moro rational approximation, |error| < 1e-7 over
/// the confidence levels pricing uses. Shared by the convergence
/// module, the stopping rule, and the race's elimination bounds.
double z_for_confidence(double confidence);

/// One target's confidence interval on the per-trial portfolio losses
/// (the first `losses.size()` trials in trial order). `z` is the
/// critical value (callers adjust it for union bounds — the race
/// does); `relative_tolerance` only feeds the `satisfied` flag. A
/// sample of fewer than two trials is never satisfied: its spread is
/// unobservable. Deterministic for (seed, losses).
TargetStatus evaluate_target(const StoppingTarget& target,
                             std::span<const double> losses, double z,
                             double relative_tolerance,
                             unsigned bootstrap_reps, std::uint64_t seed);

/// Every target of `spec` evaluated on the loss prefix; the order
/// matches spec.targets. Each target's bootstrap draws an independent
/// substream of spec.seed.
std::vector<TargetStatus> evaluate_stopping(const StoppingSpec& spec,
                                            std::span<const double> losses);

/// The wave scheduler and stopping oracle shared by the session's
/// adaptive loop and the distributed coordinator's lease granting.
///
/// Protocol: the executor runs trials up to frontier(), feeds each
/// completed block's per-trial portfolio losses to observe() (any
/// completion order; blocks must be disjoint — the callers' merge
/// layers already enforce exactly-once), and calls advance() once the
/// frontier is fully observed. advance() evaluates the stopping rule
/// and either marks the run stopped or extends the frontier to the
/// next wave. Not thread-safe: callers synchronize externally (the
/// coordinator holds its own mutex; the session drives it from the
/// orchestrating thread).
class AdaptiveController {
 public:
  /// `total_trials` bounds the budget (the workload's trial count);
  /// `wave_trials` is the granularity frontiers are rounded up to —
  /// the shard size locally, the lease size distributed.
  AdaptiveController(StoppingSpec spec, std::size_t total_trials,
                     std::size_t wave_trials);

  std::size_t frontier() const noexcept { return frontier_; }
  std::size_t observed() const noexcept { return observed_; }
  std::size_t max_trials() const noexcept { return max_; }
  std::size_t wave_trials() const noexcept { return wave_; }

  /// Every trial below the frontier has been observed — the only
  /// state advance() acts in.
  bool at_barrier() const noexcept { return observed_ == frontier_; }

  /// No further trials will be authorized. The frontier is then the
  /// run's final trial count.
  bool stopped() const noexcept { return stopped_; }
  /// Stopped with every target inside tolerance (as opposed to the
  /// budget running out first).
  bool converged() const noexcept { return converged_; }

  /// Records the per-trial portfolio losses of trials
  /// [trial_begin, trial_begin + losses.size()). Throws
  /// std::logic_error when the block reaches past the frontier — the
  /// executor ran trials it was never granted.
  void observe(std::size_t trial_begin, std::span<const double> losses);

  /// At a barrier: evaluates the stopping rule on [0, frontier()),
  /// records the per-target statuses, and either stops or extends the
  /// frontier. No-op when already stopped or off-barrier.
  void advance();

  /// Per-target statuses of the latest advance() evaluation (empty
  /// before the first barrier).
  const std::vector<TargetStatus>& statuses() const noexcept {
    return statuses_;
  }

  /// The observed loss prefix, in trial order.
  std::span<const double> sample() const noexcept {
    return {losses_.data(), observed_};
  }

 private:
  std::size_t clamp_to_wave(std::size_t trials) const;

  StoppingSpec spec_;
  std::size_t wave_ = 1;
  std::size_t max_ = 0;
  std::size_t frontier_ = 0;
  std::size_t observed_ = 0;
  bool stopped_ = false;
  bool converged_ = false;
  std::vector<double> losses_;
  std::vector<TargetStatus> statuses_;
};

}  // namespace ara::metrics
