// Basic sample statistics used by the risk measures.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ara::metrics {

/// Arithmetic mean (0 for an empty sample).
double mean(std::span<const double> xs);

/// Unbiased sample standard deviation (0 for n < 2).
double stddev(std::span<const double> xs);

double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);

/// p-quantile (0 <= p <= 1) with linear interpolation between order
/// statistics (type-7, the R/NumPy default). Throws
/// std::invalid_argument on empty input or p outside [0, 1].
double quantile(std::span<const double> xs, double p);

/// Quantile on data the caller has already sorted ascending (avoids
/// the copy/sort when many quantiles are taken from one sample).
double quantile_sorted(std::span<const double> sorted, double p);

/// Ascending sorted copy.
std::vector<double> sorted_copy(std::span<const double> xs);

}  // namespace ara::metrics
