// Streaming metric reducers: answer a MetricsSpec from YLT trial
// blocks without ever holding the layers x trials table (DESIGN.md §6).
//
// The reduction splits the spec into two families:
//
//   * Order statistics (VaR/TVaR/PML/OEP/EP-curve/max) come from a
//     TailReservoir per sample — an exact top-K multiset sized by the
//     deepest point in the spec, with a tie ledger for values evicted
//     at the final boundary. The finalized values are *bitwise* equal
//     to computing the same formulas on the full sorted sample: the
//     top-K multiset is identical, the descending summation order is
//     identical, and boundary ties are replayed from the ledger.
//
//   * Mean statistics (AAL, standard deviation) accumulate per block
//     (left-to-right within a block, exactly like the monolithic
//     two-pass code) and combine across blocks in trial order with
//     Chan's parallel-variance merge. A single block covering all
//     trials is therefore bitwise-identical to the monolithic
//     computation; a multi-block stream differs only in the block-sum
//     association, <= 1e-12 relative at realistic trial counts.
//
// Memory: O(blocks + layers x reservoir) — the reservoir depth is
// (1 - min p) x trials for quantiles and trials / min T for return
// periods, so a tail-focused spec streams a million-trial workload in
// kilobytes per layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/disjoint_ranges.hpp"
#include "core/metrics/metrics_spec.hpp"
#include "core/ylt.hpp"

namespace ara::metrics {

/// Exact top-`capacity` multiset of a streamed sample, plus a ledger of
/// how many values were dropped at the highest dropped value. That
/// ledger is what makes boundary ties exact: any dropped value equal to
/// a final threshold t must equal the ledger value (dropped values
/// never exceed the reservoir floor, and the floor never decreases), so
/// the full count and sum of {x : x >= t} is reconstructible whenever
/// t >= the ledger value — which reservoir sizing guarantees for every
/// requested point.
class TailReservoir {
 public:
  explicit TailReservoir(std::size_t capacity) : capacity_(capacity) {}

  void insert(double x);

  std::size_t size() const noexcept { return heap_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }

  /// True once any value has been dropped (sample exceeded capacity).
  bool overflowed() const noexcept { return dropped_; }
  /// Largest dropped value and how many times exactly it was dropped.
  double drop_ceiling() const noexcept { return drop_max_; }
  std::uint64_t drop_ceiling_ties() const noexcept { return drop_ties_; }

  /// The retained values, sorted descending (the tail of the sample).
  std::vector<double> sorted_descending() const;

 private:
  void drop(double v);

  std::size_t capacity_;
  std::vector<double> heap_;  ///< min-heap: heap_.front() is the floor
  bool dropped_ = false;
  double drop_max_ = 0.0;
  std::uint64_t drop_ties_ = 0;
};

/// Streaming reducer for one MetricsSpec over a fixed workload shape.
/// Feed every trial block exactly once (any order, concurrent callers
/// welcome — consume() serializes internally), then call finish() once.
/// Implements YltBlockSink so ShardMerger can stream shard results
/// straight in (core/shard.hpp).
class StreamingMetricsReducer : public YltBlockSink {
 public:
  /// `layer_labels` names the YLT's layers (one LayerMetrics::label
  /// each); `trial_count` is the full workload's trial count — blocks
  /// must tile exactly that range. The spec is validated here.
  StreamingMetricsReducer(std::vector<std::string> layer_labels,
                          std::size_t trial_count, MetricsSpec spec);

  /// Consumes one block (all layers, trials [trial_begin,
  /// trial_begin + block.trial_count())). Thread-safe: the range is
  /// reserved up front (overlapping or duplicate blocks throw — a
  /// double-counted tail is silently wrong, so it must be loud), and
  /// the reduction work itself runs under per-sample locks, so
  /// concurrent shard completions reduce different samples in
  /// parallel instead of serialising on one global mutex.
  void consume(const Ylt& block, std::size_t trial_begin) override;

  /// Finalizes the report. Throws std::logic_error unless the consumed
  /// blocks covered exactly trial_count trials, or when called twice.
  MetricsReport finish();

  /// Prefix finalization for adaptive runs: finalizes over exactly the
  /// first `covered_trials` trials, which the consumed blocks must tile
  /// gaplessly. Reservoirs sized for the full workload are exact for
  /// any prefix — every depth formula is monotone non-decreasing in the
  /// sample size — so an early-stopped run pays nothing for the unused
  /// budget. finish() is finish(trial_count).
  MetricsReport finish(std::size_t covered_trials);

 private:
  /// Mean-family accumulation of one block: left-to-right sum, then
  /// left-to-right two-pass M2 about the block mean — the exact
  /// arithmetic of the monolithic mean()/stddev() on that range.
  struct BlockStats {
    std::size_t count = 0;
    double sum = 0.0;
    double mean = 0.0;
    double m2 = 0.0;
  };

  /// One streamed sample: the tail reservoir plus the per-block mean
  /// stats keyed by trial_begin (combined in trial order at finish).
  /// Each sample carries its own lock so concurrent blocks contend
  /// per sample, not globally (the mutex lives behind a pointer to
  /// keep the accumulator movable).
  struct SampleAccumulator {
    explicit SampleAccumulator(std::size_t reservoir_capacity)
        : tail(reservoir_capacity), mutex(std::make_unique<std::mutex>()) {}
    TailReservoir tail;
    std::map<std::size_t, BlockStats> blocks;
    std::unique_ptr<std::mutex> mutex;

    void add_block(const double* values, std::size_t n,
                   std::size_t trial_begin, bool mean_stats);
  };

  /// The per-sample reduction of one reserved block (runs outside the
  /// global lock; add_block locks each sample).
  void consume_block(const Ylt& block, std::size_t trial_begin);

  /// `desc` is acc's tail already sorted descending — sorted once by
  /// finish() because several consumers share it (per-layer metrics,
  /// standalone TVaRs for the diversification benefit). `n` is the
  /// finalized sample size: the full trial count normally, the covered
  /// prefix for an adaptive run.
  LayerMetrics finalize_sample(const SampleAccumulator& acc,
                               const std::vector<double>& desc,
                               std::string label, std::size_t n) const;

  MetricsSpec spec_;
  std::vector<std::string> labels_;
  std::size_t trial_count_;

  std::mutex mutex_;
  DisjointRangeSet ranges_;
  std::size_t covered_ = 0;
  std::size_t blocks_consumed_ = 0;
  std::size_t max_block_trials_ = 0;
  bool finished_ = false;

  // Per-layer annual samples: present when the spec asks for per-layer
  // metrics, or for capital allocation (standalone layer TVaRs).
  std::vector<SampleAccumulator> layer_annual_;
  // Per-layer occurrence samples (per-layer scope only).
  std::vector<SampleAccumulator> layer_occurrence_;
  // Portfolio scope: the per-trial layer sum, and one leave-one-out
  // sample per layer for marginal TVaR.
  std::vector<SampleAccumulator> portfolio_;      ///< size 0 or 1
  std::vector<SampleAccumulator> leave_one_out_;  ///< size 0 or layers
};

/// Metrics of a fully materialized YLT: the monolithic answer the
/// streamed one is tested against. Implemented as the reducer fed one
/// block covering every trial, so both paths share one formula set and
/// the mean family is bitwise-identical to the classic two-pass code.
MetricsReport compute_metrics(const Ylt& ylt,
                              std::vector<std::string> layer_labels,
                              const MetricsSpec& spec);

}  // namespace ara::metrics
