// Portfolio-level rollup of a multi-layer YLT — the "portfolio risk
// management" half of the paper's motivation. Per-trial losses sum
// across layers (they share the same simulated years, so dependence is
// captured exactly), giving the book-level AAL/VaR/TVaR, the
// diversification benefit (sub-additivity of the tail measures), and
// each layer's marginal contribution to portfolio tail risk.
#pragma once

#include <cstddef>
#include <vector>

#include "core/ylt.hpp"

namespace ara::metrics {

/// Portfolio-level figures derived from a multi-layer YLT.
struct PortfolioRollup {
  std::vector<double> portfolio_losses;  ///< per-trial sum over layers
  double aal = 0.0;
  double var_99 = 0.0;
  double tvar_99 = 0.0;
  /// Sum of standalone layer TVaR99s minus the portfolio TVaR99: the
  /// capital saved by holding the book instead of the parts (>= 0 for
  /// a coherent tail measure on comonotone-or-less layers).
  double diversification_benefit_tvar99 = 0.0;
  /// Per-layer marginal TVaR99: portfolio TVaR99 minus the TVaR99 of
  /// the portfolio without that layer. Sums to <= layer count x
  /// portfolio TVaR; used for capital allocation.
  std::vector<double> marginal_tvar99;
};

/// Computes the rollup across all layers of `ylt`. Throws
/// std::invalid_argument on an empty table.
PortfolioRollup rollup_portfolio(const Ylt& ylt);

/// Per-trial sum across layers (exposed for tests and custom metrics).
std::vector<double> portfolio_trial_losses(const Ylt& ylt);

}  // namespace ara::metrics
