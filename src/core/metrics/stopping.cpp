#include "core/metrics/stopping.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "core/metrics/stats.hpp"
#include "synth/rng.hpp"

namespace ara::metrics {

namespace {

// Decorrelates the per-target bootstrap substreams: target k at sample
// size n draws from substream(seed + k * kTargetStride, n), so adding
// or reordering targets never perturbs another target's resamples.
constexpr std::uint64_t kTargetStride = 0x9e3779b97f4a7c15ULL;

double tvar_from_sorted(const std::vector<double>& sorted, double p) {
  // Mean of the upper tail {x : x >= VaR_p}, VaR_p the type-7
  // p-quantile — consistent with quantile()'s interpolation in that
  // the tail always contains at least one observation.
  const double var = quantile_sorted(sorted, p);
  const auto first =
      std::lower_bound(sorted.begin(), sorted.end(), var);
  const std::size_t tail = static_cast<std::size_t>(sorted.end() - first);
  if (tail == 0) return sorted.back();
  double sum = 0.0;
  for (auto it = first; it != sorted.end(); ++it) sum += *it;
  return sum / static_cast<double>(tail);
}

double point_estimate(const StoppingTarget& target,
                      const std::vector<double>& sorted) {
  switch (target.metric) {
    case StopMetric::kAal: {
      double sum = 0.0;
      for (const double x : sorted) sum += x;
      return sum / static_cast<double>(sorted.size());
    }
    case StopMetric::kVar:
      return quantile_sorted(sorted, target.p);
    case StopMetric::kTvar:
      return tvar_from_sorted(sorted, target.p);
  }
  throw std::logic_error("stopping: unknown metric");
}

void validate_target(const StoppingTarget& target) {
  if (target.metric == StopMetric::kAal) return;
  if (!(target.p > 0.0 && target.p < 1.0)) {
    throw std::invalid_argument(
        std::string("stopping: ") + stop_metric_name(target.metric) +
        " quantile level must be in (0, 1)");
  }
}

}  // namespace

const char* stop_metric_name(StopMetric metric) {
  switch (metric) {
    case StopMetric::kAal:
      return "aal";
    case StopMetric::kVar:
      return "var";
    case StopMetric::kTvar:
      return "tvar";
  }
  return "?";
}

double z_for_confidence(double confidence) {
  if (!(confidence > 0.5 && confidence < 1.0)) {
    throw std::invalid_argument(
        "convergence: confidence must be in (0.5, 1)");
  }
  const double p = 0.5 + confidence / 2.0;  // two-sided
  // Beasley-Springer-Moro. With p > 0.75 always, x = p - 0.5 is
  // strictly positive: the central branch covers confidence <= 0.84
  // and the tail branch evaluates at r = 1 - p with a positive sign —
  // no lower-tail reflection is reachable from this entry point.
  const double a[4] = {2.50662823884, -18.61500062529, 41.39119773534,
                       -25.44106049637};
  const double b[4] = {-8.47351093090, 23.08336743743, -21.06224101826,
                       3.13082909833};
  const double c[9] = {0.3374754822726147, 0.9761690190917186,
                       0.1607979714918209, 0.0276438810333863,
                       0.0038405729373609, 0.0003951896511919,
                       0.0000321767881768, 0.0000002888167364,
                       0.0000003960315187};
  const double x = p - 0.5;
  if (x <= 0.42) {
    const double r = x * x;
    return x * (((a[3] * r + a[2]) * r + a[1]) * r + a[0]) /
           ((((b[3] * r + b[2]) * r + b[1]) * r + b[0]) * r + 1.0);
  }
  double r = std::log(-std::log(1.0 - p));
  double out = c[0];
  double rk = 1.0;
  for (int k = 1; k < 9; ++k) {
    rk *= r;
    out += c[k] * rk;
  }
  return out;
}

void StoppingSpec::validate() const {
  if (targets.empty()) {
    throw std::invalid_argument("stopping: at least one target required");
  }
  bool needs_bootstrap = false;
  for (const StoppingTarget& target : targets) {
    validate_target(target);
    needs_bootstrap |= target.metric != StopMetric::kAal;
  }
  if (!(relative_tolerance > 0.0) || !std::isfinite(relative_tolerance)) {
    throw std::invalid_argument(
        "stopping: relative_tolerance must be finite and > 0");
  }
  if (!(confidence > 0.5 && confidence < 1.0)) {
    throw std::invalid_argument("stopping: confidence must be in (0.5, 1)");
  }
  if (!(wave_growth > 1.0) || !std::isfinite(wave_growth)) {
    throw std::invalid_argument(
        "stopping: wave_growth must be finite and > 1");
  }
  if (max_trials != 0 && min_trials > max_trials) {
    throw std::invalid_argument(
        "stopping: min_trials must not exceed max_trials");
  }
  if (needs_bootstrap && bootstrap_reps < 2) {
    throw std::invalid_argument(
        "stopping: at least 2 bootstrap reps required for var/tvar "
        "targets");
  }
}

TargetStatus evaluate_target(const StoppingTarget& target,
                             std::span<const double> losses, double z,
                             double relative_tolerance,
                             unsigned bootstrap_reps, std::uint64_t seed) {
  validate_target(target);
  if (losses.empty()) {
    throw std::invalid_argument("stopping: empty sample");
  }
  const std::size_t n = losses.size();
  TargetStatus status;
  status.target = target;
  status.trials = n;

  std::vector<double> sorted = sorted_copy(losses);
  status.estimate = point_estimate(target, sorted);

  if (target.metric == StopMetric::kAal) {
    status.std_error =
        n > 1 ? stddev(losses) / std::sqrt(static_cast<double>(n)) : 0.0;
  } else if (n > 1) {
    // Bootstrap SE, same estimator shape as quantile_convergence:
    // resample-with-replacement, rep-variance with the reps/(reps-1)
    // correction. Seeded by sample size so any evaluation of the same
    // prefix reproduces bitwise.
    synth::Xoshiro256StarStar rng(synth::substream(seed, n));
    double sum = 0.0, sum2 = 0.0;
    std::vector<double> resample(n);
    for (unsigned rep = 0; rep < bootstrap_reps; ++rep) {
      for (std::size_t i = 0; i < n; ++i) {
        resample[i] = losses[static_cast<std::size_t>(rng.next_below(n))];
      }
      std::sort(resample.begin(), resample.end());
      const double q = point_estimate(target, resample);
      sum += q;
      sum2 += q * q;
    }
    const double m = sum / bootstrap_reps;
    const double var =
        std::max(0.0, sum2 / bootstrap_reps - m * m) *
        (static_cast<double>(bootstrap_reps) / (bootstrap_reps - 1.0));
    status.std_error = std::sqrt(var);
  } else {
    status.std_error = 0.0;
  }

  status.half_width = z * status.std_error;
  if (status.estimate != 0.0) {
    status.relative_half_width = status.half_width / std::abs(status.estimate);
  } else {
    status.relative_half_width =
        status.half_width == 0.0 ? 0.0
                                 : std::numeric_limits<double>::infinity();
  }
  // A single trial can't bound its own spread, whatever the tolerance.
  status.satisfied =
      n >= 2 && status.relative_half_width <= relative_tolerance;
  return status;
}

std::vector<TargetStatus> evaluate_stopping(const StoppingSpec& spec,
                                            std::span<const double> losses) {
  spec.validate();
  const double z = z_for_confidence(spec.confidence);
  std::vector<TargetStatus> out;
  out.reserve(spec.targets.size());
  for (std::size_t k = 0; k < spec.targets.size(); ++k) {
    out.push_back(evaluate_target(spec.targets[k], losses, z,
                                  spec.relative_tolerance,
                                  spec.bootstrap_reps,
                                  spec.seed + k * kTargetStride));
  }
  return out;
}

AdaptiveController::AdaptiveController(StoppingSpec spec,
                                       std::size_t total_trials,
                                       std::size_t wave_trials)
    : spec_(std::move(spec)) {
  spec_.validate();
  if (total_trials == 0) {
    throw std::invalid_argument("stopping: workload has no trials");
  }
  max_ = spec_.max_trials != 0 ? std::min(spec_.max_trials, total_trials)
                               : total_trials;
  wave_ = std::clamp<std::size_t>(wave_trials, 1, max_);
  frontier_ = clamp_to_wave(std::max<std::size_t>(spec_.min_trials, 1));
  losses_.resize(frontier_);
}

std::size_t AdaptiveController::clamp_to_wave(std::size_t trials) const {
  if (trials >= max_) return max_;
  // Round up to a whole wave, saturating at the budget.
  const std::size_t waves = (trials + wave_ - 1) / wave_;
  if (waves > max_ / wave_) return max_;
  return std::min(max_, waves * wave_);
}

void AdaptiveController::observe(std::size_t trial_begin,
                                 std::span<const double> losses) {
  if (trial_begin + losses.size() > frontier_) {
    throw std::logic_error(
        "AdaptiveController: observed block [" +
        std::to_string(trial_begin) + ", " +
        std::to_string(trial_begin + losses.size()) +
        ") reaches past the granted frontier " + std::to_string(frontier_));
  }
  std::copy(losses.begin(), losses.end(), losses_.begin() + trial_begin);
  observed_ += losses.size();
}

void AdaptiveController::advance() {
  if (stopped_ || !at_barrier()) return;
  statuses_ = evaluate_stopping(spec_, sample());
  bool all = true;
  for (const TargetStatus& status : statuses_) all &= status.satisfied;
  if (all || frontier_ == max_) {
    stopped_ = true;
    converged_ = all;
    return;
  }
  // Geometric growth, forced past the current frontier, wave-aligned.
  const double grown =
      std::ceil(static_cast<double>(frontier_) * spec_.wave_growth);
  std::size_t next =
      grown >= static_cast<double>(max_)
          ? max_
          : std::max(frontier_ + 1, static_cast<std::size_t>(grown));
  next = clamp_to_wave(next);
  if (next <= frontier_) next = clamp_to_wave(frontier_ + 1);
  frontier_ = next;
  losses_.resize(frontier_);
}

}  // namespace ara::metrics
