// Monte-Carlo convergence diagnostics for YLT-derived estimates.
//
// The paper's premise is that 1M pre-simulated trials are needed for
// real-time pricing; this module quantifies that: standard errors of
// the AAL and of tail quantiles (PML) as a function of trial count,
// and the trial count required to reach a target relative error — the
// analysis an actuary runs to decide how large the YET must be.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ara::metrics {

/// One point of a convergence curve.
struct ConvergencePoint {
  std::size_t trials = 0;
  double estimate = 0.0;   ///< metric estimated from the first `trials`
  double std_error = 0.0;  ///< standard error of that estimate
};

/// AAL convergence: estimate = mean of the first n losses, standard
/// error = sd/sqrt(n) (CLT). `sizes` must be non-decreasing and within
/// the sample size.
std::vector<ConvergencePoint> aal_convergence(
    std::span<const double> losses, const std::vector<std::size_t>& sizes);

/// Quantile (VaR/PML) convergence via bootstrap: for each n, the
/// p-quantile of the first n losses, with a standard error from
/// `bootstrap_reps` resamples. Deterministic for a given seed.
std::vector<ConvergencePoint> quantile_convergence(
    std::span<const double> losses, double p,
    const std::vector<std::size_t>& sizes, unsigned bootstrap_reps = 200,
    std::uint64_t seed = 12345);

/// Trials needed so the AAL's relative standard error is below
/// `relative_error` at the given normal-approximation confidence
/// (e.g. 0.95 -> z = 1.96): n = (z * cv / rel)^2 with cv = sd/mean,
/// estimated from the provided sample. Throws if the sample mean is
/// not positive.
std::size_t required_trials_for_aal(std::span<const double> losses,
                                    double relative_error,
                                    double confidence = 0.95);

}  // namespace ara::metrics
