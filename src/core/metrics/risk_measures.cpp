#include "core/metrics/risk_measures.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "core/metrics/stats.hpp"

namespace ara::metrics {

EpCurve::EpCurve(std::span<const double> losses)
    : losses_desc_(losses.begin(), losses.end()) {
  if (losses_desc_.empty()) {
    throw std::invalid_argument("EpCurve: empty loss sample");
  }
  std::sort(losses_desc_.begin(), losses_desc_.end(), std::greater<>());
}

double EpCurve::exceedance_probability(double x) const {
  // losses_desc_ is descending: count entries >= x.
  const auto it = std::lower_bound(losses_desc_.begin(), losses_desc_.end(),
                                   x, std::greater_equal<>());
  return static_cast<double>(it - losses_desc_.begin()) /
         static_cast<double>(losses_desc_.size());
}

double EpCurve::loss_at_return_period(double years) const {
  if (!(years >= 1.0)) {
    throw std::invalid_argument("EpCurve: return period must be >= 1 year");
  }
  const double n = static_cast<double>(losses_desc_.size());
  // k-th largest (1-based) has EP k/n; we want the largest k with
  // k/n <= 1/years, i.e. k = floor(n / years), clamped to [1, n].
  const auto k = static_cast<std::size_t>(
      std::min(n, std::max(1.0, std::floor(n / years))));
  return losses_desc_[k - 1];
}

double value_at_risk(std::span<const double> losses, double p) {
  return quantile(losses, p);
}

double tail_value_at_risk(std::span<const double> losses, double p) {
  const std::vector<double> v = sorted_copy(losses);
  const double var = quantile_sorted(v, p);
  double sum = 0.0;
  std::size_t count = 0;
  for (auto it = v.rbegin(); it != v.rend() && *it >= var; ++it) {
    sum += *it;
    ++count;
  }
  return count == 0 ? var : sum / static_cast<double>(count);
}

double probable_maximum_loss(std::span<const double> losses, double years) {
  if (!(years > 1.0)) {
    throw std::invalid_argument(
        "probable_maximum_loss: return period must be > 1 year");
  }
  return quantile(losses, 1.0 - 1.0 / years);
}

double average_annual_loss(std::span<const double> losses) {
  return mean(losses);
}

LayerRiskSummary summarize_layer(const ara::Ylt& ylt, std::size_t layer) {
  const std::vector<double> annual = ylt.layer_annual_vector(layer);
  const std::vector<double> occ = ylt.layer_max_occurrence_vector(layer);
  LayerRiskSummary s;
  s.aal = average_annual_loss(annual);
  s.std_dev = stddev(annual);
  s.var_99 = value_at_risk(annual, 0.99);
  s.tvar_99 = tail_value_at_risk(annual, 0.99);
  s.pml_100yr = probable_maximum_loss(annual, 100.0);
  s.pml_250yr = probable_maximum_loss(annual, 250.0);
  s.max_annual = max_value(annual);
  const EpCurve oep(occ);
  s.oep_100yr = oep.loss_at_return_period(100.0);
  return s;
}

}  // namespace ara::metrics
