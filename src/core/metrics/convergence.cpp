#include "core/metrics/convergence.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/metrics/stats.hpp"
#include "core/metrics/stopping.hpp"
#include "synth/rng.hpp"

namespace ara::metrics {

namespace {
void validate_sizes(std::span<const double> losses,
                    const std::vector<std::size_t>& sizes) {
  if (sizes.empty()) {
    throw std::invalid_argument("convergence: no sizes given");
  }
  std::size_t prev = 0;
  for (const std::size_t n : sizes) {
    if (n == 0 || n > losses.size() || n < prev) {
      throw std::invalid_argument(
          "convergence: sizes must be non-decreasing, positive, and "
          "within the sample");
    }
    prev = n;
  }
}
}  // namespace

std::vector<ConvergencePoint> aal_convergence(
    std::span<const double> losses, const std::vector<std::size_t>& sizes) {
  validate_sizes(losses, sizes);
  std::vector<ConvergencePoint> out;
  out.reserve(sizes.size());
  for (const std::size_t n : sizes) {
    const std::span<const double> prefix = losses.subspan(0, n);
    ConvergencePoint pt;
    pt.trials = n;
    pt.estimate = mean(prefix);
    pt.std_error =
        n > 1 ? stddev(prefix) / std::sqrt(static_cast<double>(n)) : 0.0;
    out.push_back(pt);
  }
  return out;
}

std::vector<ConvergencePoint> quantile_convergence(
    std::span<const double> losses, double p,
    const std::vector<std::size_t>& sizes, unsigned bootstrap_reps,
    std::uint64_t seed) {
  validate_sizes(losses, sizes);
  if (bootstrap_reps < 2) {
    throw std::invalid_argument(
        "quantile_convergence: at least 2 bootstrap reps required");
  }
  std::vector<ConvergencePoint> out;
  out.reserve(sizes.size());
  std::vector<double> resample;
  for (const std::size_t n : sizes) {
    const std::span<const double> prefix = losses.subspan(0, n);
    ConvergencePoint pt;
    pt.trials = n;
    pt.estimate = quantile(prefix, p);

    synth::Xoshiro256StarStar rng(synth::substream(seed, n));
    double sum = 0.0, sum2 = 0.0;
    resample.resize(n);
    for (unsigned rep = 0; rep < bootstrap_reps; ++rep) {
      for (std::size_t i = 0; i < n; ++i) {
        resample[i] = prefix[static_cast<std::size_t>(rng.next_below(n))];
      }
      const double q = quantile(resample, p);
      sum += q;
      sum2 += q * q;
    }
    const double m = sum / bootstrap_reps;
    const double var =
        std::max(0.0, sum2 / bootstrap_reps - m * m) *
        (static_cast<double>(bootstrap_reps) / (bootstrap_reps - 1.0));
    pt.std_error = std::sqrt(var);
    out.push_back(pt);
  }
  return out;
}

std::size_t required_trials_for_aal(std::span<const double> losses,
                                    double relative_error,
                                    double confidence) {
  if (!(relative_error > 0.0) || !std::isfinite(relative_error)) {
    throw std::invalid_argument(
        "required_trials_for_aal: relative_error must be finite and > 0");
  }
  const double m = mean(losses);
  if (!(m > 0.0)) {
    throw std::invalid_argument(
        "required_trials_for_aal: sample mean must be positive");
  }
  const double z = z_for_confidence(confidence);
  const double cv = stddev(losses) / m;
  const double n =
      std::ceil((z * cv / relative_error) * (z * cv / relative_error));
  // Saturate: a double >= 2^64 (or one in [2^63, 2^64) on platforms
  // that route the conversion through signed) would make the cast UB.
  constexpr auto kMax = std::numeric_limits<std::size_t>::max();
  if (n >= static_cast<double>(kMax)) return kMax;
  return static_cast<std::size_t>(n);
}

}  // namespace ara::metrics
