#include "core/metrics/convergence.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/metrics/stats.hpp"
#include "synth/rng.hpp"

namespace ara::metrics {

namespace {
void validate_sizes(std::span<const double> losses,
                    const std::vector<std::size_t>& sizes) {
  if (sizes.empty()) {
    throw std::invalid_argument("convergence: no sizes given");
  }
  std::size_t prev = 0;
  for (const std::size_t n : sizes) {
    if (n == 0 || n > losses.size() || n < prev) {
      throw std::invalid_argument(
          "convergence: sizes must be non-decreasing, positive, and "
          "within the sample");
    }
    prev = n;
  }
}

// Inverse normal CDF for the central confidence levels we use
// (Beasley-Springer-Moro rational approximation; adequate far from the
// extreme tails).
double z_for_confidence(double confidence) {
  if (!(confidence > 0.5 && confidence < 1.0)) {
    throw std::invalid_argument(
        "convergence: confidence must be in (0.5, 1)");
  }
  const double p = 0.5 + confidence / 2.0;  // two-sided
  // Moro's algorithm, central region |p-0.5| <= 0.42 covers conf<=0.84;
  // use the tail branch otherwise.
  const double a[4] = {2.50662823884, -18.61500062529, 41.39119773534,
                       -25.44106049637};
  const double b[4] = {-8.47351093090, 23.08336743743, -21.06224101826,
                       3.13082909833};
  const double c[9] = {0.3374754822726147, 0.9761690190917186,
                       0.1607979714918209, 0.0276438810333863,
                       0.0038405729373609, 0.0003951896511919,
                       0.0000321767881768, 0.0000002888167364,
                       0.0000003960315187};
  const double x = p - 0.5;
  if (std::abs(x) <= 0.42) {
    const double r = x * x;
    return x * (((a[3] * r + a[2]) * r + a[1]) * r + a[0]) /
           ((((b[3] * r + b[2]) * r + b[1]) * r + b[0]) * r + 1.0);
  }
  double r = p;
  if (x > 0.0) r = 1.0 - p;
  r = std::log(-std::log(r));
  double out = c[0];
  double rk = 1.0;
  for (int k = 1; k < 9; ++k) {
    rk *= r;
    out += c[k] * rk;
  }
  return x > 0.0 ? out : -out;
}
}  // namespace

std::vector<ConvergencePoint> aal_convergence(
    std::span<const double> losses, const std::vector<std::size_t>& sizes) {
  validate_sizes(losses, sizes);
  std::vector<ConvergencePoint> out;
  out.reserve(sizes.size());
  for (const std::size_t n : sizes) {
    const std::span<const double> prefix = losses.subspan(0, n);
    ConvergencePoint pt;
    pt.trials = n;
    pt.estimate = mean(prefix);
    pt.std_error =
        n > 1 ? stddev(prefix) / std::sqrt(static_cast<double>(n)) : 0.0;
    out.push_back(pt);
  }
  return out;
}

std::vector<ConvergencePoint> quantile_convergence(
    std::span<const double> losses, double p,
    const std::vector<std::size_t>& sizes, unsigned bootstrap_reps,
    std::uint64_t seed) {
  validate_sizes(losses, sizes);
  if (bootstrap_reps < 2) {
    throw std::invalid_argument(
        "quantile_convergence: at least 2 bootstrap reps required");
  }
  std::vector<ConvergencePoint> out;
  out.reserve(sizes.size());
  std::vector<double> resample;
  for (const std::size_t n : sizes) {
    const std::span<const double> prefix = losses.subspan(0, n);
    ConvergencePoint pt;
    pt.trials = n;
    pt.estimate = quantile(prefix, p);

    synth::Xoshiro256StarStar rng(synth::substream(seed, n));
    double sum = 0.0, sum2 = 0.0;
    resample.resize(n);
    for (unsigned rep = 0; rep < bootstrap_reps; ++rep) {
      for (std::size_t i = 0; i < n; ++i) {
        resample[i] = prefix[static_cast<std::size_t>(rng.next_below(n))];
      }
      const double q = quantile(resample, p);
      sum += q;
      sum2 += q * q;
    }
    const double m = sum / bootstrap_reps;
    const double var =
        std::max(0.0, sum2 / bootstrap_reps - m * m) *
        (static_cast<double>(bootstrap_reps) / (bootstrap_reps - 1.0));
    pt.std_error = std::sqrt(var);
    out.push_back(pt);
  }
  return out;
}

std::size_t required_trials_for_aal(std::span<const double> losses,
                                    double relative_error,
                                    double confidence) {
  if (!(relative_error > 0.0)) {
    throw std::invalid_argument(
        "required_trials_for_aal: relative_error must be > 0");
  }
  const double m = mean(losses);
  if (!(m > 0.0)) {
    throw std::invalid_argument(
        "required_trials_for_aal: sample mean must be positive");
  }
  const double z = z_for_confidence(confidence);
  const double cv = stddev(losses) / m;
  const double n = (z * cv / relative_error) * (z * cv / relative_error);
  return static_cast<std::size_t>(std::ceil(n));
}

}  // namespace ara::metrics
