#include "core/metrics/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ara::metrics {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (const double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (const double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double min_value(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("min_value: empty sample");
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("max_value: empty sample");
  return *std::max_element(xs.begin(), xs.end());
}

std::vector<double> sorted_copy(std::span<const double> xs) {
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  return v;
}

double quantile_sorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) {
    throw std::invalid_argument("quantile: empty sample");
  }
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("quantile: p must be in [0, 1]");
  }
  const double h = p * (static_cast<double>(sorted.size()) - 1.0);
  const auto lo = static_cast<std::size_t>(h);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double quantile(std::span<const double> xs, double p) {
  const std::vector<double> v = sorted_copy(xs);
  return quantile_sorted(v, p);
}

}  // namespace ara::metrics
