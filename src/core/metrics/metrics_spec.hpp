// Declarative metric query plan and its result shape.
//
// The paper's whole computation exists to answer risk queries — PML,
// VaR/TVaR, AAL, AEP/OEP curves (Section I) — so the session's request
// surface describes *which* of those the caller wants, at caller-chosen
// probability levels and return periods, instead of two hard-coded
// booleans. A MetricsSpec is a pure description: the session decides
// whether to answer it from a materialized YLT or by streaming shard
// blocks through the reducers in core/metrics/streaming.hpp (the two
// paths agree bitwise on the order-statistic family and to <= 1e-12
// relative on the mean family; DESIGN.md §6).
#pragma once

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ara::metrics {

/// Legacy two-boolean metric selection (the pre-MetricsSpec request
/// surface), kept so existing call sites migrate mechanically through
/// MetricsSpec::from_selection. New code should build a MetricsSpec.
struct MetricsSelection {
  bool layer_summaries = false;   ///< AAL/VaR/TVaR/PML/OEP per layer
  bool portfolio_rollup = false;  ///< book-level tail + capital allocation

  static MetricsSelection none() { return {}; }
  static MetricsSelection all() { return {true, true}; }
};

/// Which derived risk metrics to compute, and at which points.
/// Everything defaults off; `layer_summaries()` / `all()` reproduce
/// the legacy MetricsSelection presets (p = 0.99, T = {100, 250}).
///
/// Memory note for streamed (kDiscard / kSpillToFile) runs: the
/// reducers keep one tail reservoir per requested sample, sized by the
/// deepest point in the spec — roughly (1 - min p) x trials entries
/// for quantiles and trials / min T for return periods — so a spec
/// that only asks about the tail streams in O(reservoir), not
/// O(trials). p = 0 or T close to 1 legitimately degrade to a full
/// per-layer sample (still never the layers x trials table).
struct MetricsSpec {
  bool per_layer = false;  ///< one LayerMetrics per portfolio layer
  bool portfolio = false;  ///< LayerMetrics of the per-trial layer sum

  /// VaR/TVaR probability levels, each in [0, 1] (e.g. 0.99, 0.995).
  std::vector<double> quantiles = {0.99};

  /// Return periods in years, each > 1: PML (aggregate, from annual
  /// losses) and OEP (occurrence, from per-trial maximum event losses)
  /// are reported at every listed period.
  std::vector<double> return_periods = {100.0, 250.0};

  /// When non-zero, each LayerMetrics carries the top `ep_curve_points`
  /// losses in descending order (the EP curve's tail: the k-th entry is
  /// the loss at return period trials / k years), for both the
  /// aggregate (annual) and occurrence samples.
  std::size_t ep_curve_points = 0;

  /// Portfolio scope only: also compute the TVaR diversification
  /// benefit and each layer's marginal TVaR contribution (capital
  /// allocation), at probability `capital_p`.
  bool capital_allocation = false;
  double capital_p = 0.99;

  /// True when any metric output is requested at all.
  bool any() const noexcept { return per_layer || portfolio; }

  /// Throws std::invalid_argument on out-of-range points.
  void validate() const {
    for (const double p : quantiles) {
      if (!(p >= 0.0 && p <= 1.0)) {
        throw std::invalid_argument(
            "MetricsSpec: quantile p must be in [0, 1]");
      }
    }
    for (const double t : return_periods) {
      if (!(t > 1.0)) {
        throw std::invalid_argument(
            "MetricsSpec: return period must be > 1 year");
      }
    }
    if (capital_allocation && !(capital_p >= 0.0 && capital_p <= 1.0)) {
      throw std::invalid_argument(
          "MetricsSpec: capital_p must be in [0, 1]");
    }
  }

  static MetricsSpec none() { return {}; }

  /// Both scopes at the legacy points — the MetricsSelection::all()
  /// shim (capital allocation included, as the old rollup computed it).
  static MetricsSpec all() {
    MetricsSpec s;
    s.per_layer = true;
    s.portfolio = true;
    s.capital_allocation = true;
    return s;
  }

  /// The legacy `layer_summaries` preset: per-layer AAL/VaR99/TVaR99,
  /// PML at 100/250 years, OEP at 100 years.
  static MetricsSpec layer_summaries() {
    MetricsSpec s;
    s.per_layer = true;
    return s;
  }

  /// The legacy `portfolio_rollup` preset: book-level tail figures plus
  /// diversification benefit and marginal TVaR at p = 0.99.
  static MetricsSpec portfolio_rollup() {
    MetricsSpec s;
    s.portfolio = true;
    s.capital_allocation = true;
    return s;
  }

  /// Mechanical migration shim from the legacy two-boolean selection.
  static MetricsSpec from_selection(const MetricsSelection& sel) {
    MetricsSpec s;
    s.per_layer = sel.layer_summaries;
    s.portfolio = sel.portfolio_rollup;
    s.capital_allocation = sel.portfolio_rollup;
    return s;
  }
};

/// VaR/TVaR at one requested probability level.
struct QuantileMetric {
  double p = 0.0;
  double var = 0.0;
  double tvar = 0.0;
};

/// Loss at one requested return period.
struct ReturnPeriodMetric {
  double years = 0.0;
  double loss = 0.0;
};

/// All metrics of one loss sample — a portfolio layer's annual losses
/// (plus its occurrence losses), or the per-trial portfolio sum.
struct LayerMetrics {
  std::string label;        ///< layer name, or "portfolio" for the rollup
  std::size_t trials = 0;

  double aal = 0.0;         ///< mean annual loss (the pure premium)
  double std_dev = 0.0;     ///< unbiased sample standard deviation
  double max_annual = 0.0;  ///< largest annual loss observed

  std::vector<QuantileMetric> quantiles;   ///< at MetricsSpec::quantiles
  std::vector<ReturnPeriodMetric> pml;     ///< aggregate EP (PML) points
  std::vector<ReturnPeriodMetric> oep;     ///< occurrence EP points

  /// Top losses descending (present when spec.ep_curve_points > 0).
  std::vector<double> aep_curve;
  std::vector<double> oep_curve;

  /// Point lookups; throw std::out_of_range when the point was not in
  /// the request's spec (metrics are computed, never interpolated
  /// after the fact).
  double var_at(double p) const { return quantile_at(p).var; }
  double tvar_at(double p) const { return quantile_at(p).tvar; }
  double pml_at(double years) const { return find_period(pml, years); }
  double oep_at(double years) const { return find_period(oep, years); }

  const QuantileMetric& quantile_at(double p) const {
    for (const QuantileMetric& q : quantiles) {
      if (q.p == p) return q;
    }
    throw std::out_of_range("LayerMetrics: quantile p=" + std::to_string(p) +
                            " was not requested in the MetricsSpec");
  }

 private:
  static double find_period(const std::vector<ReturnPeriodMetric>& points,
                            double years) {
    for (const ReturnPeriodMetric& r : points) {
      if (r.years == years) return r.loss;
    }
    throw std::out_of_range("LayerMetrics: return period " +
                            std::to_string(years) +
                            "yr was not requested in the MetricsSpec");
  }
};

/// Portfolio-scope result: the metrics of the per-trial layer sum plus
/// the capital-allocation figures when the spec asked for them.
struct PortfolioMetrics {
  LayerMetrics totals;  ///< label "portfolio"

  /// Sum of standalone layer TVaRs minus the portfolio TVaR, at
  /// `capital_p` (>= 0 for a coherent tail measure).
  double diversification_benefit_tvar = 0.0;
  /// Per-layer marginal TVaR at `capital_p`: portfolio TVaR minus the
  /// TVaR of the portfolio without that layer.
  std::vector<double> marginal_tvar;
  double capital_p = 0.0;
  bool capital_allocation = false;  ///< whether the two fields above are filled
};

/// Everything one MetricsSpec produced, plus the block accounting that
/// lets tests assert a streamed run never saw the full table.
struct MetricsReport {
  std::vector<LayerMetrics> layers;          ///< when spec.per_layer
  std::optional<PortfolioMetrics> portfolio; ///< when spec.portfolio

  /// How the metrics were fed: number of YLT blocks consumed and the
  /// largest single block, in trials. A monolithic computation is one
  /// block of all trials; a streamed kDiscard run consumes one block
  /// per shard, each no larger than the shard size.
  std::size_t blocks_consumed = 0;
  std::size_t max_block_trials = 0;

  /// Per-layer sample entries the reducers kept resident (reservoir
  /// high-water mark) — the "reservoir" in the O(shard + reservoir)
  /// memory bound.
  std::size_t reservoir_entries = 0;

  bool empty() const noexcept { return layers.empty() && !portfolio; }

  /// Metrics of the layer named `label`, or nullptr when per-layer
  /// metrics were not requested / no such layer exists.
  const LayerMetrics* layer(std::string_view label) const noexcept {
    for (const LayerMetrics& m : layers) {
      if (m.label == label) return &m;
    }
    return nullptr;
  }
};

}  // namespace ara::metrics
