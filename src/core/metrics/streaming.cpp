#include "core/metrics/streaming.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

namespace ara::metrics {

namespace {

// ---- Finalization formulas -------------------------------------------------
//
// Each helper replicates the arithmetic of the classic full-sample
// implementation (stats.cpp / risk_measures.cpp) expression for
// expression, evaluated on the descending tail instead of the sorted
// full sample — that is what makes the streamed values bitwise equal
// to the monolithic ones. The ascending order statistic v[j] of an
// n-sample lives at desc[n - 1 - j].

// Depth-from-top the type-7 quantile at p needs resident: quantile_sorted
// reads ascending indices floor(h) and floor(h) + 1 with h = p * (n - 1),
// and the shallower of the two is implied by the deeper.
std::size_t quantile_depth(std::size_t n, double p) {
  const double h = p * (static_cast<double>(n) - 1.0);
  const auto lo = static_cast<std::size_t>(h);
  return n - lo;
}

// The 1-based rank EpCurve::loss_at_return_period reads.
std::size_t period_rank(std::size_t n, double years) {
  const double nn = static_cast<double>(n);
  return static_cast<std::size_t>(
      std::min(nn, std::max(1.0, std::floor(nn / years))));
}

// quantile_sorted (stats.cpp), reading the two order statistics out of
// the descending tail.
double quantile_from_tail(const std::vector<double>& desc, std::size_t n,
                          double p) {
  const double h = p * (static_cast<double>(n) - 1.0);
  const auto lo = static_cast<std::size_t>(h);
  const std::size_t hi = std::min(lo + 1, n - 1);
  const double frac = h - static_cast<double>(lo);
  const std::size_t di_lo = n - 1 - lo;
  if (di_lo >= desc.size()) {
    throw std::logic_error(
        "streaming metrics: tail reservoir undersized for quantile");
  }
  const double vlo = desc[di_lo];
  const double vhi = desc[n - 1 - hi];
  return vlo + frac * (vhi - vlo);
}

// tail_value_at_risk's descending scan (risk_measures.cpp): sum values
// >= var top-down, then replay the boundary ties the reservoir dropped.
// Dropped values never exceed the reservoir floor, and var sits at a
// resident rank, so var >= drop_ceiling always; equality means the
// dropped ties belong to the tail and are re-added exactly (equal
// values at the end of the descending scan, as the monolithic loop
// would have added them).
double tail_mean_from(const std::vector<double>& desc,
                      const TailReservoir& reservoir, double var) {
  double sum = 0.0;
  std::uint64_t count = 0;
  for (const double v : desc) {
    if (v < var) break;
    sum += v;
    ++count;
  }
  if (reservoir.overflowed() && var <= reservoir.drop_ceiling()) {
    if (var < reservoir.drop_ceiling()) {
      throw std::logic_error(
          "streaming metrics: tail reservoir undersized for TVaR");
    }
    for (std::uint64_t i = 0; i < reservoir.drop_ceiling_ties(); ++i) {
      sum += var;
    }
    count += reservoir.drop_ceiling_ties();
  }
  return count == 0 ? var : sum / static_cast<double>(count);
}

// EpCurve::loss_at_return_period (risk_measures.cpp): the k-th largest.
double loss_at_return_period_from_tail(const std::vector<double>& desc,
                                       std::size_t n, double years) {
  const std::size_t k = period_rank(n, years);
  if (k - 1 >= desc.size()) {
    throw std::logic_error(
        "streaming metrics: tail reservoir undersized for return period");
  }
  return desc[k - 1];
}

}  // namespace

// ---- TailReservoir ---------------------------------------------------------

void TailReservoir::insert(double x) {
  if (heap_.size() < capacity_) {
    heap_.push_back(x);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
    return;
  }
  if (capacity_ > 0 && x > heap_.front()) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    const double evicted = heap_.back();
    heap_.back() = x;
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
    drop(evicted);
  } else {
    drop(x);
  }
}

void TailReservoir::drop(double v) {
  // The ledger tracks the highest dropped value only: drops never
  // exceed the (non-decreasing) floor, so by the end every dropped
  // value that can still tie a threshold is exactly drop_max_.
  if (!dropped_ || v > drop_max_) {
    drop_max_ = v;
    drop_ties_ = 1;
  } else if (v == drop_max_) {
    ++drop_ties_;
  }
  dropped_ = true;
}

std::vector<double> TailReservoir::sorted_descending() const {
  std::vector<double> v = heap_;
  std::sort(v.begin(), v.end(), std::greater<>());
  return v;
}

// ---- StreamingMetricsReducer -----------------------------------------------

StreamingMetricsReducer::StreamingMetricsReducer(
    std::vector<std::string> layer_labels, std::size_t trial_count,
    MetricsSpec spec)
    : spec_(std::move(spec)),
      labels_(std::move(layer_labels)),
      trial_count_(trial_count) {
  spec_.validate();
  if (trial_count_ == 0) {
    throw std::invalid_argument(
        "StreamingMetricsReducer: metrics need at least one trial");
  }

  const std::size_t n = trial_count_;
  const auto clamp = [n](std::size_t d) {
    return std::min(std::max<std::size_t>(d, 1), n);
  };

  // Annual-sample depth: every requested quantile and PML point plus
  // the EP-curve tail; `capital` adds the capital-allocation level.
  const auto annual_depth = [&](bool spec_points, bool capital) {
    std::size_t d = 1;  // max_annual
    if (spec_points) {
      for (const double p : spec_.quantiles) {
        d = std::max(d, quantile_depth(n, p));
      }
      for (const double t : spec_.return_periods) {
        d = std::max(d, quantile_depth(n, 1.0 - 1.0 / t));
      }
      d = std::max(d, std::min(n, spec_.ep_curve_points));
    }
    if (capital) d = std::max(d, quantile_depth(n, spec_.capital_p));
    return clamp(d);
  };

  // SampleAccumulator owns a mutex, so the vectors are filled by
  // emplacement rather than copy-assign.
  const auto fill = [](std::vector<SampleAccumulator>& samples,
                       std::size_t count, std::size_t capacity) {
    samples.reserve(count);
    for (std::size_t i = 0; i < count; ++i) samples.emplace_back(capacity);
  };

  const bool capital = spec_.portfolio && spec_.capital_allocation;
  if (spec_.per_layer || capital) {
    fill(layer_annual_, labels_.size(),
         annual_depth(spec_.per_layer, capital));
  }
  if (spec_.per_layer) {
    std::size_t d = 1;
    for (const double t : spec_.return_periods) {
      d = std::max(d, period_rank(n, t));
    }
    d = std::max(d, std::min(n, spec_.ep_curve_points));
    fill(layer_occurrence_, labels_.size(), clamp(d));
  }
  if (spec_.portfolio) {
    fill(portfolio_, 1, annual_depth(true, capital));
    if (capital) {
      fill(leave_one_out_, labels_.size(),
           clamp(quantile_depth(n, spec_.capital_p)));
    }
  }
}

void StreamingMetricsReducer::SampleAccumulator::add_block(
    const double* values, std::size_t n, std::size_t trial_begin,
    bool mean_stats) {
  // Block-local mean stats first, outside the sample lock: left-to-right
  // sum, then left-to-right M2 about the block mean — exactly the
  // monolithic mean()/stddev() arithmetic on this range.
  BlockStats b;
  if (mean_stats) {
    b.count = n;
    for (std::size_t i = 0; i < n; ++i) b.sum += values[i];
    b.mean = b.sum / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double d = values[i] - b.mean;
      b.m2 += d * d;
    }
  }
  std::lock_guard<std::mutex> lock(*mutex);
  for (std::size_t i = 0; i < n; ++i) tail.insert(values[i]);
  if (mean_stats) blocks.emplace(trial_begin, b);
}

void StreamingMetricsReducer::consume(const Ylt& block,
                                      std::size_t trial_begin) {
  const std::size_t bt = block.trial_count();
  if (block.layer_count() != labels_.size()) {
    throw std::invalid_argument(
        "StreamingMetricsReducer: block layer count mismatch");
  }
  if (trial_begin + bt > trial_count_) {
    throw std::invalid_argument(
        "StreamingMetricsReducer: block out of range");
  }
  {
    // Reserve the range before reducing anything: an overlapping or
    // duplicate block would double-count tail values — silently wrong
    // metrics — so it is rejected loudly instead.
    std::lock_guard<std::mutex> lock(mutex_);
    if (finished_) {
      throw std::logic_error("StreamingMetricsReducer: consume after finish");
    }
    if (!ranges_.try_reserve(trial_begin, trial_begin + bt)) {
      throw std::logic_error(
          "StreamingMetricsReducer: overlapping block");
    }
  }

  // The reduction itself runs outside the global lock — concurrent
  // blocks contend per sample (add_block locks the accumulator), so
  // shard completions reduce different samples in parallel.
  if (bt > 0) consume_block(block, trial_begin);

  // Coverage advances only after the block is fully reduced, so
  // finish() succeeding implies every sample saw every row.
  std::lock_guard<std::mutex> lock(mutex_);
  ++blocks_consumed_;
  max_block_trials_ = std::max(max_block_trials_, bt);
  covered_ += bt;
}

void StreamingMetricsReducer::consume_block(const Ylt& block,
                                            std::size_t trial_begin) {
  const std::size_t bt = block.trial_count();
  for (std::size_t l = 0; l < labels_.size(); ++l) {
    if (!layer_annual_.empty()) {
      layer_annual_[l].add_block(block.layer_annual(l), bt, trial_begin,
                                 /*mean_stats=*/spec_.per_layer);
    }
    if (!layer_occurrence_.empty()) {
      layer_occurrence_[l].add_block(block.layer_max_occurrence(l), bt,
                                     trial_begin, /*mean_stats=*/false);
    }
  }

  if (!portfolio_.empty()) {
    // Per-trial layer sum, layers outer — the association
    // portfolio_trial_losses uses, so every per-trial value is bitwise
    // the monolithic one.
    std::vector<double> sums(bt, 0.0);
    for (std::size_t l = 0; l < labels_.size(); ++l) {
      const double* row = block.layer_annual(l);
      for (std::size_t t = 0; t < bt; ++t) sums[t] += row[t];
    }
    portfolio_[0].add_block(sums.data(), bt, trial_begin,
                            /*mean_stats=*/true);
    if (!leave_one_out_.empty()) {
      std::vector<double> without(bt);
      for (std::size_t l = 0; l < labels_.size(); ++l) {
        const double* row = block.layer_annual(l);
        for (std::size_t t = 0; t < bt; ++t) without[t] = sums[t] - row[t];
        leave_one_out_[l].add_block(without.data(), bt, trial_begin,
                                    /*mean_stats=*/false);
      }
    }
  }
}

LayerMetrics StreamingMetricsReducer::finalize_sample(
    const SampleAccumulator& acc, const std::vector<double>& desc,
    std::string label, std::size_t n) const {
  LayerMetrics m;
  m.label = std::move(label);
  m.trials = n;

  // Mean family: combine the per-block stats in trial order (Chan's
  // merge). A single block is the monolithic two-pass result bitwise.
  BlockStats total;
  for (const auto& [begin, b] : acc.blocks) {
    if (total.count == 0) {
      total = b;
      continue;
    }
    const double na = static_cast<double>(total.count);
    const double nb = static_cast<double>(b.count);
    const double nc = na + nb;
    const double delta = b.mean - total.mean;
    total.m2 = total.m2 + b.m2 + delta * delta * (na * nb / nc);
    total.mean = total.mean + delta * (nb / nc);
    total.sum += b.sum;
    total.count += b.count;
  }
  if (total.count > 0) {
    m.aal = total.sum / static_cast<double>(total.count);
    if (total.count >= 2) {
      m.std_dev = std::sqrt(total.m2 / static_cast<double>(total.count - 1));
    }
  }

  if (!desc.empty()) m.max_annual = desc.front();

  m.quantiles.reserve(spec_.quantiles.size());
  for (const double p : spec_.quantiles) {
    QuantileMetric q;
    q.p = p;
    q.var = quantile_from_tail(desc, n, p);
    q.tvar = tail_mean_from(desc, acc.tail, q.var);
    m.quantiles.push_back(q);
  }
  m.pml.reserve(spec_.return_periods.size());
  for (const double t : spec_.return_periods) {
    m.pml.push_back({t, quantile_from_tail(desc, n, 1.0 - 1.0 / t)});
  }
  if (spec_.ep_curve_points > 0) {
    const std::size_t k = std::min(spec_.ep_curve_points, desc.size());
    m.aep_curve.assign(desc.begin(),
                       desc.begin() + static_cast<std::ptrdiff_t>(k));
  }
  return m;
}

MetricsReport StreamingMetricsReducer::finish() {
  return finish(trial_count_);
}

MetricsReport StreamingMetricsReducer::finish(std::size_t covered_trials) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) {
    throw std::logic_error("StreamingMetricsReducer: finish called twice");
  }
  if (covered_trials == 0 || covered_trials > trial_count_) {
    throw std::logic_error(
        "StreamingMetricsReducer: cannot finalize " +
        std::to_string(covered_trials) + " of " +
        std::to_string(trial_count_) + " trials");
  }
  if (covered_ != covered_trials) {
    throw std::logic_error(
        "StreamingMetricsReducer: blocks cover " + std::to_string(covered_) +
        " of " + std::to_string(covered_trials) + " trials");
  }
  // covered_ matching the prefix length is not enough: a block beyond
  // the prefix paired with a hole inside it would pass the count.
  bool gap = false;
  ranges_.for_each_gap(covered_trials,
                       [&](std::size_t, std::size_t) { gap = true; });
  if (gap) {
    throw std::logic_error(
        "StreamingMetricsReducer: consumed blocks do not tile the first " +
        std::to_string(covered_trials) + " trials");
  }
  finished_ = true;

  MetricsReport report;
  report.blocks_consumed = blocks_consumed_;
  report.max_block_trials = max_block_trials_;

  const std::size_t n = covered_trials;
  // Each reservoir is sorted exactly once; the descending tails are
  // shared by every consumer below.
  std::vector<std::vector<double>> annual_desc(layer_annual_.size());
  for (std::size_t l = 0; l < layer_annual_.size(); ++l) {
    annual_desc[l] = layer_annual_[l].tail.sorted_descending();
  }

  if (spec_.per_layer) {
    report.layers.reserve(labels_.size());
    for (std::size_t l = 0; l < labels_.size(); ++l) {
      LayerMetrics m =
          finalize_sample(layer_annual_[l], annual_desc[l], labels_[l], n);
      const std::vector<double> odesc =
          layer_occurrence_[l].tail.sorted_descending();
      m.oep.reserve(spec_.return_periods.size());
      for (const double t : spec_.return_periods) {
        m.oep.push_back({t, loss_at_return_period_from_tail(odesc, n, t)});
      }
      if (spec_.ep_curve_points > 0) {
        const std::size_t k = std::min(spec_.ep_curve_points, odesc.size());
        m.oep_curve.assign(odesc.begin(),
                           odesc.begin() + static_cast<std::ptrdiff_t>(k));
      }
      report.layers.push_back(std::move(m));
    }
  }

  if (spec_.portfolio) {
    PortfolioMetrics pm;
    const std::vector<double> pdesc =
        portfolio_[0].tail.sorted_descending();
    pm.totals = finalize_sample(portfolio_[0], pdesc, "portfolio", n);
    if (spec_.capital_allocation) {
      pm.capital_allocation = true;
      pm.capital_p = spec_.capital_p;
      const double pvar = quantile_from_tail(pdesc, n, spec_.capital_p);
      const double ptvar = tail_mean_from(pdesc, portfolio_[0].tail, pvar);
      double standalone = 0.0;
      for (std::size_t l = 0; l < labels_.size(); ++l) {
        const std::vector<double>& d = annual_desc[l];
        const double v = quantile_from_tail(d, n, spec_.capital_p);
        standalone += tail_mean_from(d, layer_annual_[l].tail, v);
      }
      pm.diversification_benefit_tvar = standalone - ptvar;
      pm.marginal_tvar.reserve(labels_.size());
      for (std::size_t l = 0; l < labels_.size(); ++l) {
        const std::vector<double> d =
            leave_one_out_[l].tail.sorted_descending();
        const double v = quantile_from_tail(d, n, spec_.capital_p);
        pm.marginal_tvar.push_back(
            ptvar - tail_mean_from(d, leave_one_out_[l].tail, v));
      }
    }
    report.portfolio = std::move(pm);
  }

  std::size_t entries = 0;
  for (const auto& a : layer_annual_) entries += a.tail.size();
  for (const auto& a : layer_occurrence_) entries += a.tail.size();
  for (const auto& a : portfolio_) entries += a.tail.size();
  for (const auto& a : leave_one_out_) entries += a.tail.size();
  report.reservoir_entries = entries;
  return report;
}

MetricsReport compute_metrics(const Ylt& ylt,
                              std::vector<std::string> layer_labels,
                              const MetricsSpec& spec) {
  StreamingMetricsReducer reducer(std::move(layer_labels),
                                  ylt.trial_count(), spec);
  reducer.consume(ylt, 0);
  return reducer.finish();
}

}  // namespace ara::metrics
