// Portfolio risk measures derived from a Year Loss Table — the
// quantities the paper motivates the whole computation with
// (Section I): Probable Maximum Loss (PML), Value-at-Risk,
// Tail-Value-at-Risk (TVaR), Average Annual Loss (AAL), and
// exceedance-probability (EP) curves, in both aggregate (AEP, from
// annual losses) and occurrence (OEP, from per-trial maximum event
// losses) forms.
#pragma once

#include <span>
#include <vector>

#include "core/ylt.hpp"

namespace ara::metrics {

/// Empirical exceedance-probability curve over a loss sample. With n
/// trials, the k-th largest loss has exceedance probability k/n and
/// return period n/k years.
class EpCurve {
 public:
  /// Builds from a loss sample (one value per trial year).
  explicit EpCurve(std::span<const double> losses);

  std::size_t trial_count() const noexcept { return losses_desc_.size(); }

  /// P(L >= x): fraction of trials with loss >= x.
  double exceedance_probability(double x) const;

  /// Loss at a return period of `years` (>= 1): the smallest loss whose
  /// exceedance probability is <= 1/years. Throws for years < 1.
  double loss_at_return_period(double years) const;

  /// Losses sorted descending (the curve's y-values).
  const std::vector<double>& losses_descending() const noexcept {
    return losses_desc_;
  }

 private:
  std::vector<double> losses_desc_;
};

/// Value-at-Risk at confidence `p` (e.g. 0.99): the p-quantile of the
/// loss distribution.
double value_at_risk(std::span<const double> losses, double p);

/// Tail Value-at-Risk at confidence `p`: mean loss conditional on
/// exceeding VaR_p. Always >= VaR_p.
double tail_value_at_risk(std::span<const double> losses, double p);

/// Probable Maximum Loss at a return period of `years`: the industry
/// convention PML(T) = VaR at p = 1 - 1/T.
double probable_maximum_loss(std::span<const double> losses, double years);

/// Average annual loss: the mean of the YLT (the pure premium).
double average_annual_loss(std::span<const double> losses);

/// Bundle of standard portfolio metrics for one layer of a YLT.
struct LayerRiskSummary {
  double aal = 0.0;
  double std_dev = 0.0;
  double var_99 = 0.0;
  double tvar_99 = 0.0;
  double pml_100yr = 0.0;   ///< aggregate PML, 100-year return period
  double pml_250yr = 0.0;
  double oep_100yr = 0.0;   ///< occurrence EP loss at 100 years
  double max_annual = 0.0;
};

LayerRiskSummary summarize_layer(const ara::Ylt& ylt, std::size_t layer);

}  // namespace ara::metrics
