#include "core/metrics/portfolio_rollup.hpp"

#include <stdexcept>

#include "core/metrics/risk_measures.hpp"
#include "core/metrics/stats.hpp"

namespace ara::metrics {

std::vector<double> portfolio_trial_losses(const Ylt& ylt) {
  std::vector<double> out(ylt.trial_count(), 0.0);
  for (std::size_t l = 0; l < ylt.layer_count(); ++l) {
    const double* layer = ylt.layer_annual(l);
    for (std::size_t t = 0; t < ylt.trial_count(); ++t) {
      out[t] += layer[t];
    }
  }
  return out;
}

PortfolioRollup rollup_portfolio(const Ylt& ylt) {
  if (ylt.layer_count() == 0 || ylt.trial_count() == 0) {
    throw std::invalid_argument("rollup_portfolio: empty YLT");
  }
  PortfolioRollup out;
  out.portfolio_losses = portfolio_trial_losses(ylt);
  out.aal = mean(out.portfolio_losses);
  out.var_99 = value_at_risk(out.portfolio_losses, 0.99);
  out.tvar_99 = tail_value_at_risk(out.portfolio_losses, 0.99);

  double standalone_sum = 0.0;
  for (std::size_t l = 0; l < ylt.layer_count(); ++l) {
    standalone_sum += tail_value_at_risk(ylt.layer_annual_vector(l), 0.99);
  }
  out.diversification_benefit_tvar99 = standalone_sum - out.tvar_99;

  // Marginal contributions: leave one layer out.
  out.marginal_tvar99.reserve(ylt.layer_count());
  std::vector<double> without(ylt.trial_count());
  for (std::size_t l = 0; l < ylt.layer_count(); ++l) {
    const double* layer = ylt.layer_annual(l);
    for (std::size_t t = 0; t < ylt.trial_count(); ++t) {
      without[t] = out.portfolio_losses[t] - layer[t];
    }
    out.marginal_tvar99.push_back(out.tvar_99 -
                                  tail_value_at_risk(without, 0.99));
  }
  return out;
}

}  // namespace ara::metrics
