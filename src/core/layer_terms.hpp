// Layer ("eXcess of Loss") terms: the tuple
// T = (T_OccR, T_OccL, T_AggR, T_AggL) of the paper, Section II.
#pragma once

#include <limits>

namespace ara {

/// Contractual terms of one reinsurance layer.
struct LayerTerms {
  double occ_retention = 0.0;  ///< per-occurrence deductible (T_OccR)
  double occ_limit =
      std::numeric_limits<double>::infinity();  ///< per-occurrence cover (T_OccL)
  double agg_retention = 0.0;  ///< annual aggregate deductible (T_AggR)
  double agg_limit =
      std::numeric_limits<double>::infinity();  ///< annual aggregate cover (T_AggL)

  /// Terms that pass every loss through unchanged.
  static LayerTerms identity() { return {}; }

  bool valid() const {
    return occ_retention >= 0.0 && occ_limit >= 0.0 &&
           agg_retention >= 0.0 && agg_limit >= 0.0;
  }

  friend bool operator==(const LayerTerms&, const LayerTerms&) = default;
};

/// min(max(x - retention, 0), limit) — the XL clamp used for both the
/// occurrence terms (Algorithm 1 line 16) and the aggregate terms
/// (line 22).
template <typename Real>
inline Real xl_clamp(Real x, Real retention, Real limit) {
  Real y = x - retention;
  if (y < Real(0)) y = Real(0);
  if (y > limit) y = limit;
  return y;
}

/// Occurrence-term application for one combined event loss.
template <typename Real>
inline Real apply_occurrence_terms(Real loss, const LayerTerms& t) {
  return xl_clamp(loss, static_cast<Real>(t.occ_retention),
                  static_cast<Real>(t.occ_limit));
}

/// Aggregate-term application for a cumulative (prefix-sum) loss.
template <typename Real>
inline Real apply_aggregate_terms(Real cumulative, const LayerTerms& t) {
  return xl_clamp(cumulative, static_cast<Real>(t.agg_retention),
                  static_cast<Real>(t.agg_limit));
}

}  // namespace ara
