// Loss-lookup structures.
//
// The paper's central data-structure decision (Section III) is to store
// each ELT as a *direct access table*: a dense array indexed by event
// id over the whole catalogue, trading memory (2M slots for ~20k
// non-zero losses) for exactly one memory access per lookup. It
// explicitly discusses and rejects the compact alternatives (sequential
// / binary search, hashing such as cuckoo hashing) because of their
// extra memory accesses.
//
// We implement the direct access table plus the rejected alternatives,
// so the `ablation_lookup_structures` benchmark can reproduce that
// trade-off quantitatively, and a compressed bitmap+rank table that
// implements the paper's future-work item ("compressed representations
// of data in memory").
//
// All structures are immutable after construction and safe for
// concurrent reads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/elt.hpp"
#include "core/simd/aligned.hpp"
#include "core/types.hpp"

namespace ara {

/// Polymorphic lookup interface used by benchmarks and by engines that
/// are parameterised over the lookup structure. `lookup` returns the
/// loss for `event`, or 0 if the event is not in the table.
class LossLookup {
 public:
  virtual ~LossLookup() = default;

  virtual double lookup(EventId event) const = 0;

  /// Number of memory accesses a single lookup costs on this structure
  /// (model input for the cost models; e.g. 1 for direct access,
  /// ~log2(n) for binary search).
  virtual double accesses_per_lookup() const = 0;

  /// Resident bytes of the structure (model input for memory budgets).
  virtual std::size_t memory_bytes() const = 0;

  virtual std::string name() const = 0;
};

/// Dense array over the full event catalogue; slot e holds the loss of
/// event e (0 when absent). One random memory access per lookup.
/// Storage is 64-byte aligned (simd::AlignedVector): the vector
/// kernels and the next-occurrence prefetch in core/simd/ address the
/// table as raw cache lines via data(), which must not depend on the
/// default allocator's alignment luck.
template <typename Real>
class DirectAccessTable final : public LossLookup {
 public:
  explicit DirectAccessTable(const Elt& elt)
      : losses_(static_cast<std::size_t>(elt.catalogue_size()) + 1,
                Real(0)) {
    for (const EventLoss& r : elt.records()) {
      losses_[r.event] = static_cast<Real>(r.loss);
    }
  }

  /// Unchecked fast path used by the engines' inner loops.
  Real at(EventId event) const { return losses_[event]; }

  double lookup(EventId event) const override {
    return static_cast<double>(losses_[event]);
  }
  double accesses_per_lookup() const override { return 1.0; }
  std::size_t memory_bytes() const override {
    return losses_.size() * sizeof(Real);
  }
  std::string name() const override {
    return sizeof(Real) == 4 ? "direct_access_f32" : "direct_access_f64";
  }

  std::size_t slots() const noexcept { return losses_.size(); }

  /// The dense slot array, 64-byte aligned, indexable by event id.
  /// (Replaces the old `raw()` vector accessor.)
  std::span<const Real> data() const noexcept {
    return {losses_.data(), losses_.size()};
  }

 private:
  simd::AlignedVector<Real> losses_;
};

/// Sorted compact table; binary-search lookup (O(log n) accesses).
class SortedLossTable final : public LossLookup {
 public:
  explicit SortedLossTable(const Elt& elt);

  double lookup(EventId event) const override;
  double accesses_per_lookup() const override;
  std::size_t memory_bytes() const override;
  std::string name() const override { return "sorted_binary_search"; }

 private:
  std::vector<EventId> events_;
  std::vector<double> losses_;
};

/// Open-addressing hash table with linear probing and a power-of-two
/// slot count at ~50% load factor; the "constant-time hashing" family
/// the paper discusses (we use robin-hood-style insertion to bound
/// probe lengths).
class HashLossTable final : public LossLookup {
 public:
  explicit HashLossTable(const Elt& elt);

  double lookup(EventId event) const override;
  double accesses_per_lookup() const override;
  std::size_t memory_bytes() const override;
  std::string name() const override { return "hash_linear_probe"; }

  /// Mean probe length over occupied slots (diagnostics/tests).
  double mean_probe_length() const;

 private:
  struct Slot {
    EventId event = kInvalidEvent;  // kInvalidEvent marks an empty slot
    double loss = 0.0;
  };

  std::size_t slot_for(EventId event) const;

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
};

/// Compressed direct-access table (the paper's future-work item):
/// a presence bitvector over the catalogue with 512-bit rank blocks,
/// plus a packed array of the non-zero losses. Lookup = bit test +
/// rank (popcounts within one cache line) + one packed-array access:
/// ~2-3 memory accesses, but memory drops from O(catalogue) doubles to
/// catalogue/8 bits + O(n) doubles.
class CompressedLossTable final : public LossLookup {
 public:
  explicit CompressedLossTable(const Elt& elt);

  double lookup(EventId event) const override;
  double accesses_per_lookup() const override { return 3.0; }
  std::size_t memory_bytes() const override;
  std::string name() const override { return "compressed_bitmap_rank"; }

 private:
  static constexpr std::size_t kWordsPerBlock = 8;  // 512 bits

  std::vector<std::uint64_t> bits_;
  std::vector<std::uint32_t> block_rank_;  // rank at block start
  std::vector<double> losses_;             // packed non-zero losses
};

/// Cuckoo hash table (Pagh & Rodler 2004) — the space-efficient
/// constant-time scheme the paper names and rejects for its
/// "considerable implementation and run-time performance complexity"
/// on GPUs. Two hash functions, two tables; a lookup probes exactly
/// two slots (worst case), insertion relocates displaced keys.
class CuckooLossTable final : public LossLookup {
 public:
  explicit CuckooLossTable(const Elt& elt);

  double lookup(EventId event) const override;
  /// Worst-case two probes; on average ~1.5 (half of the present keys
  /// are found in the first table).
  double accesses_per_lookup() const override { return 2.0; }
  std::size_t memory_bytes() const override;
  std::string name() const override { return "cuckoo_hash"; }

 private:
  struct Slot {
    EventId event = kInvalidEvent;
    double loss = 0.0;
  };

  std::size_t h1(EventId e) const;
  std::size_t h2(EventId e) const;
  bool try_build(const std::vector<EventLoss>& records);

  std::vector<Slot> t1_, t2_;
  std::size_t mask_ = 0;
  std::uint64_t salt_ = 0;
};

/// The paper's "second implementation": the k ELTs of one layer merged
/// into a single row-major dense matrix `combined[event][elt]`. All of
/// a given event's losses are adjacent, which is what the rejected
/// shared-memory row-loading scheme exploited.
template <typename Real>
class CombinedDirectTable {
 public:
  /// All ELTs must share the same catalogue size.
  explicit CombinedDirectTable(const std::vector<const Elt*>& elts);

  /// Loss of `event` in table `elt_index`.
  Real at(EventId event, std::size_t elt_index) const {
    return data_[static_cast<std::size_t>(event) * elt_count_ + elt_index];
  }

  std::size_t elt_count() const noexcept { return elt_count_; }
  std::size_t memory_bytes() const noexcept {
    return data_.size() * sizeof(Real);
  }

 private:
  std::vector<Real> data_;
  std::size_t elt_count_ = 0;
};

/// Factory for the polymorphic structures, used by benchmarks.
enum class LookupKind {
  kDirectAccess64,
  kDirectAccess32,
  kSorted,
  kHash,
  kCuckoo,
  kCompressed,
};

std::unique_ptr<LossLookup> make_lookup(LookupKind kind, const Elt& elt);

}  // namespace ara
