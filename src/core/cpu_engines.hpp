// CPU engines: the fused sequential variant and the multi-core engine
// (the paper's OpenMP implementation, realised with the library's
// thread pool — one software thread per trial batch, exactly the
// paper's "single thread per trial" granularity).
#pragma once

#include "core/engine.hpp"

namespace ara {

/// Streaming single-pass sequential engine; mathematically identical
/// to ReferenceEngine (property-tested) but with O(1) per-trial state.
class FusedSequentialEngine final : public Engine {
 public:
  explicit FusedSequentialEngine(EngineConfig config = {})
      : config_(config) {}

  std::string name() const override { return "sequential_fused"; }

  SimulationResult run(const Portfolio& portfolio,
                       const Yet& yet) const override;

 private:
  EngineConfig config_;
};

/// Multi-core CPU engine (Fig. 1). `config.cores` worker threads
/// process trials in static partitions; `config.threads_per_core`
/// models the oversubscription sweep of Fig. 1b (the workers are
/// multiplied accordingly, mirroring the paper's "many threads per
/// core" runs).
class MultiCoreEngine final : public Engine {
 public:
  explicit MultiCoreEngine(EngineConfig config) : config_(config) {}

  std::string name() const override { return "multicore_cpu"; }

  SimulationResult run(const Portfolio& portfolio,
                       const Yet& yet) const override;

 private:
  EngineConfig config_;
};

}  // namespace ara
