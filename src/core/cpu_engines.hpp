// CPU engines: the fused sequential variant and the multi-core engine
// (the paper's OpenMP implementation, realised with the library's
// thread pool — one software thread per trial batch, exactly the
// paper's "single thread per trial" granularity).
//
// Both run the trial-major fused sweep (`simulate_trial_multilayer`):
// the YET is streamed once for all layers instead of once per layer,
// which is where the aggregate-risk hot loop's memory-access economy
// lives once portfolios have more than one contract (DESIGN.md §4).
#pragma once

#include <memory>
#include <mutex>

#include "core/engine.hpp"
#include "parallel/thread_pool.hpp"

namespace ara {

/// Streaming single-pass sequential engine; mathematically identical
/// to ReferenceEngine (property-tested) but with O(1) per-trial state
/// per layer and a single trial-major pass over the YET.
class FusedSequentialEngine final : public Engine {
 public:
  explicit FusedSequentialEngine(EngineConfig config = {})
      : config_(config) {}

  std::string name() const override { return "sequential_fused"; }

  using Engine::run;
  SimulationResult run(const Portfolio& portfolio, const Yet& yet,
                       const EngineContext& context) const override;

 private:
  EngineConfig config_;
};

/// Multi-core CPU engine (Fig. 1). `config.cores` worker threads
/// process trials in static partitions; `config.threads_per_core`
/// models the oversubscription sweep of Fig. 1b (the workers are
/// multiplied accordingly, mirroring the paper's "many threads per
/// core" runs).
///
/// The worker pool comes from the EngineContext when the caller owns
/// one (the session's persistent pool); otherwise the engine lazily
/// builds its own and caches it across runs — thread construction is
/// paid once per engine, not once per call.
class MultiCoreEngine final : public Engine {
 public:
  explicit MultiCoreEngine(EngineConfig config) : config_(config) {}
  ~MultiCoreEngine() override;  // out of line: ThreadPool is incomplete here

  std::string name() const override { return "multicore_cpu"; }

  using Engine::run;
  SimulationResult run(const Portfolio& portfolio, const Yet& yet,
                       const EngineContext& context) const override;

 private:
  parallel::ThreadPool& cached_pool() const;

  EngineConfig config_;
  mutable std::mutex pool_mutex_;
  mutable std::unique_ptr<parallel::ThreadPool> pool_;
};

}  // namespace ara
