// AnalysisRequest: the unit of work the AnalysisSession façade
// consumes — *what* to analyse (portfolio + YET), *which* derived
// outputs to compute (risk metrics), and which engine extensions to
// run alongside (reinstatements, secondary uncertainty). *How* to
// execute is the ExecutionPolicy (engine_factory.hpp), either the
// session's default or a per-request override.
//
// Requests hold their inputs by pointer: a batch of many portfolios
// priced against one shared YET is many requests pointing at the same
// Yet, with zero copies — the batching shape the one-shot Engine::run
// could not express. The caller keeps both alive for the duration of
// the run.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/engine_factory.hpp"
#include "core/layer.hpp"
#include "core/yet.hpp"
#include "extensions/reinstatements.hpp"
#include "extensions/secondary_uncertainty.hpp"

namespace ara {

/// Which derived risk metrics the session computes from the YLT.
/// Everything defaults off: the YLT itself is always produced, and
/// metric passes cost extra sorts per layer.
struct MetricsSelection {
  bool layer_summaries = false;   ///< AAL/VaR/TVaR/PML/OEP per layer
  bool portfolio_rollup = false;  ///< book-level tail + capital allocation

  static MetricsSelection none() { return {}; }
  static MetricsSelection all() { return {true, true}; }
};

/// One analysis to run. Only `portfolio` and `yet` are required; both
/// must index the same event catalogue.
struct AnalysisRequest {
  /// Optional caller tag, copied into the result (useful for matching
  /// batch outputs to inputs).
  std::string label;

  const Portfolio* portfolio = nullptr;
  const Yet* yet = nullptr;

  MetricsSelection metrics;

  /// When false, the core engine run (and its YLT) is skipped and only
  /// the requested extensions execute — e.g. a pure reinstatement
  /// pricing pass, which derives everything it needs itself. At least
  /// one of core simulation / extensions must remain requested.
  bool core_simulation = true;

  /// Overrides the session's default policy for this request only.
  std::optional<ExecutionPolicy> policy;

  /// Reinstatement extension: when non-empty (one entry per portfolio
  /// layer), the session additionally prices the layers as XL treaties
  /// with reinstatements and fills AnalysisResult::reinstatements.
  std::vector<ext::ReinstatementTerms> reinstatement_terms;

  /// Secondary-uncertainty extension: when set, the analysis draws a
  /// damage multiplier per occurrence instead of taking ELT losses as
  /// deterministic, and the engine choice in the policy is ignored
  /// (the extension has a single sequential implementation).
  std::optional<ext::SecondaryUncertaintyConfig> secondary_uncertainty;
};

}  // namespace ara
