// AnalysisRequest: the unit of work the AnalysisSession façade
// consumes — *what* to analyse (portfolio + YET), *which* derived
// outputs to compute (risk metrics), and which engine extensions to
// run alongside (reinstatements, secondary uncertainty). *How* to
// execute is the ExecutionPolicy (engine_factory.hpp), either the
// session's default or a per-request override.
//
// Requests hold their inputs by pointer: a batch of many portfolios
// priced against one shared YET is many requests pointing at the same
// Yet, with zero copies — the batching shape the one-shot Engine::run
// could not express. The caller keeps both alive for the duration of
// the run.
#pragma once

#include <chrono>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/engine_factory.hpp"
#include "core/layer.hpp"
#include "core/metrics/metrics_spec.hpp"
#include "core/metrics/stopping.hpp"
#include "core/yet.hpp"
#include "extensions/reinstatements.hpp"
#include "extensions/secondary_uncertainty.hpp"

namespace ara {

/// Declarative metric query plan (core/metrics/metrics_spec.hpp):
/// caller-chosen quantile and return-period sets per scope. The legacy
/// two-boolean MetricsSelection survives as a shim —
/// `MetricsSpec::from_selection(...)` / `MetricsSpec::layer_summaries()`
/// / `MetricsSpec::all()` migrate old call sites mechanically.
using MetricsSpec = metrics::MetricsSpec;
using MetricsSelection = metrics::MetricsSelection;

/// What happens to the simulated YLT itself. Metrics are computed
/// either way; the policy decides whether the table outlives the run.
enum class YltRetention {
  /// Materialize the full YLT in AnalysisResult::simulation (today's
  /// behavior, and the default).
  kKeep,
  /// Metric-only run: the YLT is never materialized. A sharded run
  /// streams each shard block through the metric reducers and drops
  /// it, holding O(shard + reservoir) memory instead of
  /// O(layers x trials); a monolithic run computes metrics and frees
  /// the table before returning.
  kDiscard,
  /// Stream the YLT to `AnalysisRequest::ylt_path` through
  /// io::YltChunkWriter (byte-identical to io::save_ylt of the
  /// monolithic table) and return only the path; in-memory behavior
  /// is as kDiscard.
  kSpillToFile,
};

/// Thrown (through the request's own future, for batch submissions)
/// when a request's deadline passed before its simulation started.
/// Distinct from other failures so queue-level callers — the
/// ara_serve scheduler above all — can turn it into an explicit
/// "shed, retry later" answer instead of a generic error.
class DeadlineExceeded : public std::runtime_error {
 public:
  explicit DeadlineExceeded(const std::string& what)
      : std::runtime_error(what) {}
};

/// One analysis to run. Only `portfolio` and `yet` are required; both
/// must index the same event catalogue.
struct AnalysisRequest {
  /// Optional caller tag, copied into the result (useful for matching
  /// batch outputs to inputs).
  std::string label;

  const Portfolio* portfolio = nullptr;
  const Yet* yet = nullptr;

  /// Which derived risk metrics to compute, and at which points.
  /// Defaults to none: the metric passes cost extra per-layer work.
  MetricsSpec metrics;

  /// Whether the YLT is kept, discarded after metrics, or spilled to
  /// `ylt_path`. kSpillToFile requires a non-empty `ylt_path`.
  YltRetention ylt_retention = YltRetention::kKeep;
  std::string ylt_path;

  /// When false, the core engine run (and its YLT) is skipped and only
  /// the requested extensions execute — e.g. a pure reinstatement
  /// pricing pass, which derives everything it needs itself. At least
  /// one of core simulation / extensions must remain requested.
  bool core_simulation = true;

  /// Overrides the session's default policy for this request only.
  std::optional<ExecutionPolicy> policy;

  /// Absolute expiry instant. A request whose deadline has passed when
  /// it reaches the front of the dispatch queue is shed *before* any
  /// engine work: its future resolves to DeadlineExceeded and no
  /// tables are built or trials run for it. nullopt = no deadline.
  std::optional<std::chrono::steady_clock::time_point> deadline;

  /// Reinstatement extension: when non-empty (one entry per portfolio
  /// layer), the session additionally prices the layers as XL treaties
  /// with reinstatements and fills AnalysisResult::reinstatements.
  std::vector<ext::ReinstatementTerms> reinstatement_terms;

  /// Adaptive execution (opt-in): when set, the session runs shard
  /// waves incrementally and stops granting trial ranges once every
  /// targeted confidence interval is inside tolerance (or the budget
  /// runs out) — AnalysisResult::trials_executed / stopped_early /
  /// half_widths report the outcome. Absent (the default), execution
  /// is the classic fixed-trial run, bitwise identical to before this
  /// field existed. Adaptive runs are reproducible for a given seed
  /// and shard size, but not comparable bitwise to fixed runs unless
  /// they happen to execute the full workload. Incompatible with
  /// kSpillToFile retention and with reinstatement pricing (both
  /// assume the full fixed trial count up front).
  std::optional<metrics::StoppingSpec> stopping;

  /// Secondary-uncertainty extension: when set, the analysis draws a
  /// damage multiplier per occurrence instead of taking ELT losses as
  /// deterministic, and the engine choice in the policy is ignored
  /// (the extension has a single sequential implementation).
  std::optional<ext::SecondaryUncertaintyConfig> secondary_uncertainty;
};

}  // namespace ara
