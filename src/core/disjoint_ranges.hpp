// Ordered set of disjoint half-open [begin, end) ranges — the single
// definition of the "reserve a trial block exactly once" check shared
// by ShardMerger, YltChunkWriter and StreamingMetricsReducer, so the
// subtle neighbour-overlap logic cannot drift between copies.
#pragma once

#include <cstddef>
#include <map>

namespace ara {

/// Not thread-safe; callers hold their own lock around try_reserve.
class DisjointRangeSet {
 public:
  /// Reserves [begin, end) if it overlaps nothing reserved so far;
  /// returns false (reserving nothing) on overlap. The map is ordered
  /// by begin, so only the two neighbours can overlap — O(log n) per
  /// call, which matters at one-trial-block granularity. Zero-length
  /// ranges cover nothing, always succeed, and are not recorded (an
  /// empty block must not make a later real block at the same begin
  /// look like a duplicate).
  bool try_reserve(std::size_t begin, std::size_t end) {
    if (begin >= end) return true;
    const auto next = ranges_.lower_bound(begin);
    if (next != ranges_.end() && next->first < end) return false;
    if (next != ranges_.begin() && std::prev(next)->second > begin) {
      return false;
    }
    ranges_.emplace(begin, end);
    return true;
  }

  /// Uncovered gaps of [0, total): the complement of what has been
  /// reserved, in order. Error reporting (which trial ranges are still
  /// missing?) and lease reassignment both want the holes by name.
  template <typename Fn>
  void for_each_gap(std::size_t total, Fn&& fn) const {
    std::size_t cursor = 0;
    for (const auto& [begin, end] : ranges_) {
      if (begin > cursor) fn(cursor, begin);
      cursor = end;
    }
    if (cursor < total) fn(cursor, total);
  }

 private:
  std::map<std::size_t, std::size_t> ranges_;  ///< begin -> end
};

}  // namespace ara
