// Factory for the paper's five implementations, keyed by an enum so
// benchmarks and examples can sweep them uniformly.
//
// Engine construction is driven by an ExecutionPolicy: a named-field
// description of *how* to execute (which engine, which tunables, which
// devices, how many of them). The policy is also the unit the
// AnalysisSession façade (core/session.hpp) consumes — including its
// kAuto mode, where the cost models pick the engine.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "simgpu/device_spec.hpp"

namespace ara {

enum class EngineKind {
  kSequentialReference,  ///< (i)   sequential C++ on the CPU
  kSequentialFused,      ///< (i')  streaming variant of (i)
  kMultiCore,            ///< (ii)  multi-core CPU
  kGpuBasic,             ///< (iii) basic single-GPU
  kGpuOptimized,         ///< (iv)  optimised single-GPU
  kMultiGpu,             ///< (v)   optimised multi-GPU
};

/// All kinds, in the paper's presentation order.
std::vector<EngineKind> all_engine_kinds();

std::string engine_kind_name(EngineKind kind);

/// Inverse of engine_kind_name. Returns nullopt for unknown names.
std::optional<EngineKind> engine_kind_from_name(const std::string& name);

/// How an analysis should execute. Every knob the old positional
/// make_engine overload took silently is a named field here.
struct ExecutionPolicy {
  /// Sentinel for `engine`: let the cost models choose (resolved by
  /// AnalysisSession::choose_engine; the plain factory requires a
  /// concrete kind).
  static constexpr std::optional<EngineKind> kAuto = std::nullopt;

  /// Which implementation to run. kAuto = predict the simulated cost
  /// of every kind with the cpu/gpu cost models and take the cheapest
  /// feasible one.
  std::optional<EngineKind> engine = EngineKind::kMultiGpu;

  /// Tunables. nullopt = paper_config() of the resolved engine kind,
  /// so a default policy reproduces the paper's configuration per
  /// engine instead of freezing one EngineConfig across all kinds.
  std::optional<EngineConfig> config;

  /// Device for the single-GPU kinds (paper: Tesla C2075).
  simgpu::DeviceSpec gpu_device = simgpu::tesla_c2075();

  /// Device type and count for kMultiGpu (paper: 4x Tesla M2090).
  simgpu::DeviceSpec multi_gpu_device = simgpu::tesla_m2090();
  std::size_t gpu_count = 4;

  /// Trial-sharded streaming execution (DESIGN.md §5). `shard_trials`
  /// fixes the shard size directly; when 0, a non-zero
  /// `memory_budget_bytes` derives the largest shard whose resident
  /// YET-slice + YLT-rows footprint fits the budget. Both 0 (the
  /// default) keeps the monolithic single-shard execution. Sharding
  /// never changes results: the merged YLT, op counts and simulated
  /// seconds are bitwise identical to the monolithic run's.
  std::size_t shard_trials = 0;
  std::size_t memory_budget_bytes = 0;

  /// Hot-path SIMD mode (DESIGN.md §8). Authoritative: resolved_config
  /// copies these over whatever `config` holds, so one policy field
  /// controls every engine kind the policy may resolve to. kScalar
  /// (the default) is guaranteed bit-identical to the pre-SIMD
  /// engines; kAuto opts into the vector kernels' own determinism
  /// contract (reproducible run-to-run, last-ulp vs scalar).
  simd::SimdPolicy simd = simd::SimdPolicy::kScalar;
  unsigned simd_width = 0;  ///< kForceWidth: required lanes (0 = widest)

  /// True when this policy asks for the sharded execution path.
  bool sharded() const noexcept {
    return shard_trials > 0 || memory_budget_bytes > 0;
  }

  /// Convenience constructors.
  static ExecutionPolicy with_engine(EngineKind kind) {
    ExecutionPolicy p;
    p.engine = kind;
    return p;
  }
  static ExecutionPolicy auto_select() {
    ExecutionPolicy p;
    p.engine = kAuto;
    return p;
  }
};

/// The EngineConfig a policy resolves to for `kind`: the policy's own
/// config if set, otherwise the paper's configuration for that kind.
EngineConfig resolved_config(const ExecutionPolicy& policy, EngineKind kind);

/// Builds the engine a policy describes. The policy must name a
/// concrete engine kind; kAuto needs a workload to price and is
/// resolved by AnalysisSession. Throws std::invalid_argument on kAuto.
/// (The old positional overload — make_engine(kind, cfg, device, ...)
/// — is gone: its trailing defaults were exactly the footgun
/// ExecutionPolicy exists to kill. Build a policy instead.)
std::unique_ptr<Engine> make_engine(const ExecutionPolicy& policy);

/// The paper's configuration for each implementation (8 cores with 256
/// threads/core for the multi-core engine, 256 threads/block basic,
/// 32 threads/block optimised, 4 GPUs).
EngineConfig paper_config(EngineKind kind);

}  // namespace ara
