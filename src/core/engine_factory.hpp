// Factory for the paper's five implementations, keyed by an enum so
// benchmarks and examples can sweep them uniformly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "simgpu/device_spec.hpp"

namespace ara {

enum class EngineKind {
  kSequentialReference,  ///< (i)   sequential C++ on the CPU
  kSequentialFused,      ///< (i')  streaming variant of (i)
  kMultiCore,            ///< (ii)  multi-core CPU
  kGpuBasic,             ///< (iii) basic single-GPU
  kGpuOptimized,         ///< (iv)  optimised single-GPU
  kMultiGpu,             ///< (v)   optimised multi-GPU
};

/// All kinds, in the paper's presentation order.
std::vector<EngineKind> all_engine_kinds();

std::string engine_kind_name(EngineKind kind);

/// Builds an engine. GPU kinds run on `device` (default: the paper's
/// Tesla C2075 for single-GPU kinds); kMultiGpu uses `gpu_count`
/// devices of type `multi_gpu_device` (default: Tesla M2090, the
/// paper's 4-GPU machine).
std::unique_ptr<Engine> make_engine(
    EngineKind kind, const EngineConfig& config,
    const simgpu::DeviceSpec& device = simgpu::tesla_c2075(),
    std::size_t gpu_count = 4,
    const simgpu::DeviceSpec& multi_gpu_device = simgpu::tesla_m2090());

/// The paper's configuration for each implementation (8 cores with 256
/// threads/core for the multi-core engine, 256 threads/block basic,
/// 32 threads/block optimised, 4 GPUs).
EngineConfig paper_config(EngineKind kind);

}  // namespace ara
