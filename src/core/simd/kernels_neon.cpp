// NEON kernels (aarch64): 2 x f64 / 4 x f32 lanes.
//
// Mirror of kernels_avx2.cpp at 128-bit width — see that file and
// kernels.hpp for the phase structure and the SIMD determinism
// contract (fixed low-lane-first reduction order; -ffp-contract=off
// per-file keeps the lane math un-fused). NEON is architecturally
// baseline on aarch64, so there is no runtime probe beyond the build
// gate; everything except the dispatch entry points is in an
// anonymous namespace.
#if defined(ARA_SIMD_HAVE_NEON)

#include <arm_neon.h>

#include <cstddef>

#include "core/simd/kernel_entries.hpp"

namespace ara::simd {
namespace {

template <typename Real>
inline void prefetch_next(const BoundPortfolio<Real>& bp, EventId next_ev) {
  for (const Real* base : bp.prefetch_tables) {
    __builtin_prefetch(base + next_ev, /*rw=*/0, /*locality=*/1);
  }
}

// ---- f64: 2 lanes ----------------------------------------------------------

// `jb`/`je` delimit the padded slot run (multiples of kEltPad): every
// iteration is a full vector over the folded term arrays.
inline double combine_elts_f64(const BoundPortfolio<double>& bp, EventId ev,
                               std::uint32_t jb, std::uint32_t je) {
  const float64x2_t zero = vdupq_n_f64(0.0);
  float64x2_t acc = zero;
  for (std::uint32_t j = jb; j < je; j += 2) {
    double lane0 = bp.table_base[j][ev];
    double lane1 = bp.table_base[j + 1][ev];
    float64x2_t loss = vsetq_lane_f64(lane1, vdupq_n_f64(lane0), 1);
    float64x2_t x =
        vsubq_f64(vmulq_f64(loss, vld1q_f64(&bp.fx_share[j])),
                  vld1q_f64(&bp.retention_share[j]));
    x = vmaxq_f64(x, zero);
    x = vminq_f64(x, vld1q_f64(&bp.limit_share[j]));
    acc = vaddq_f64(acc, x);
  }
  return vgetq_lane_f64(acc, 0) + vgetq_lane_f64(acc, 1);
}

void apply_event_f64(const BoundPortfolio<double>& bp, EventId ev,
                     PortfolioTrialState<double>& st) {
  for (std::size_t a = 0; a < bp.layers; ++a) {
    st.combined[a] =
        combine_elts_f64(bp, ev, bp.elt_begin[a], bp.elt_begin[a + 1]);
  }
  const float64x2_t zero = vdupq_n_f64(0.0);
  for (std::size_t a = 0; a < bp.padded_layers; a += 2) {
    float64x2_t y = vsubq_f64(vld1q_f64(&st.combined[a]),
                              vld1q_f64(&bp.occ_retention[a]));
    y = vmaxq_f64(y, zero);
    y = vminq_f64(y, vld1q_f64(&bp.occ_limit[a]));
    vst1q_f64(&st.max_occurrence[a],
              vmaxq_f64(vld1q_f64(&st.max_occurrence[a]), y));
    const float64x2_t cum = vaddq_f64(vld1q_f64(&st.cumulative[a]), y);
    vst1q_f64(&st.cumulative[a], cum);
    float64x2_t capped = vsubq_f64(cum, vld1q_f64(&bp.agg_retention[a]));
    capped = vmaxq_f64(capped, zero);
    capped = vminq_f64(capped, vld1q_f64(&bp.agg_limit[a]));
    const float64x2_t prev = vld1q_f64(&st.prev_capped[a]);
    vst1q_f64(&st.annual[a],
              vaddq_f64(vld1q_f64(&st.annual[a]), vsubq_f64(capped, prev)));
    vst1q_f64(&st.prev_capped[a], capped);
  }
}

// ---- f32: 4 lanes ----------------------------------------------------------

inline float combine_elts_f32(const BoundPortfolio<float>& bp, EventId ev,
                              std::uint32_t jb, std::uint32_t je) {
  const float32x4_t zero = vdupq_n_f32(0.0f);
  float32x4_t acc = zero;
  for (std::uint32_t j = jb; j < je; j += 4) {
    float32x4_t loss = vdupq_n_f32(bp.table_base[j][ev]);
    loss = vsetq_lane_f32(bp.table_base[j + 1][ev], loss, 1);
    loss = vsetq_lane_f32(bp.table_base[j + 2][ev], loss, 2);
    loss = vsetq_lane_f32(bp.table_base[j + 3][ev], loss, 3);
    float32x4_t x = vsubq_f32(vmulq_f32(loss, vld1q_f32(&bp.fx_share[j])),
                              vld1q_f32(&bp.retention_share[j]));
    x = vmaxq_f32(x, zero);
    x = vminq_f32(x, vld1q_f32(&bp.limit_share[j]));
    acc = vaddq_f32(acc, x);
  }
  return ((vgetq_lane_f32(acc, 0) + vgetq_lane_f32(acc, 1)) +
          vgetq_lane_f32(acc, 2)) +
         vgetq_lane_f32(acc, 3);
}

void apply_event_f32(const BoundPortfolio<float>& bp, EventId ev,
                     PortfolioTrialState<float>& st) {
  for (std::size_t a = 0; a < bp.layers; ++a) {
    st.combined[a] =
        combine_elts_f32(bp, ev, bp.elt_begin[a], bp.elt_begin[a + 1]);
  }
  const float32x4_t zero = vdupq_n_f32(0.0f);
  for (std::size_t a = 0; a < bp.padded_layers; a += 4) {
    float32x4_t y = vsubq_f32(vld1q_f32(&st.combined[a]),
                              vld1q_f32(&bp.occ_retention[a]));
    y = vmaxq_f32(y, zero);
    y = vminq_f32(y, vld1q_f32(&bp.occ_limit[a]));
    vst1q_f32(&st.max_occurrence[a],
              vmaxq_f32(vld1q_f32(&st.max_occurrence[a]), y));
    const float32x4_t cum = vaddq_f32(vld1q_f32(&st.cumulative[a]), y);
    vst1q_f32(&st.cumulative[a], cum);
    float32x4_t capped = vsubq_f32(cum, vld1q_f32(&bp.agg_retention[a]));
    capped = vmaxq_f32(capped, zero);
    capped = vminq_f32(capped, vld1q_f32(&bp.agg_limit[a]));
    const float32x4_t prev = vld1q_f32(&st.prev_capped[a]);
    vst1q_f32(&st.annual[a],
              vaddq_f32(vld1q_f32(&st.annual[a]), vsubq_f32(capped, prev)));
    vst1q_f32(&st.prev_capped[a], capped);
  }
}

template <typename Real, typename ApplyFn, typename CombineFn>
void sweep_impl(const BoundPortfolio<Real>& bp,
                std::span<const EventOccurrence> trial,
                PortfolioTrialState<Real>& st, ApplyFn apply,
                CombineFn combine) {
  st.reset();
  const std::size_t n = trial.size();
  if (bp.layers == 1) {
    const std::uint32_t je = bp.elt_begin[1];
    const Real occ_ret = bp.occ_retention[0];
    const Real occ_lim = bp.occ_limit[0];
    const Real agg_ret = bp.agg_retention[0];
    const Real agg_lim = bp.agg_limit[0];
    Real cumulative = Real(0), prev_capped = Real(0);
    Real annual = Real(0), max_occ = Real(0);
    for (std::size_t i = 0; i < n; ++i) {
      if (i + 1 < n) prefetch_next(bp, trial[i + 1].event);
      const Real combined = combine(bp, trial[i].event, 0, je);
      Real y = combined - occ_ret;
      if (y < Real(0)) y = Real(0);
      if (y > occ_lim) y = occ_lim;
      if (y > max_occ) max_occ = y;
      cumulative += y;
      Real capped = cumulative - agg_ret;
      if (capped < Real(0)) capped = Real(0);
      if (capped > agg_lim) capped = agg_lim;
      annual += capped - prev_capped;
      prev_capped = capped;
    }
    st.cumulative[0] = cumulative;
    st.prev_capped[0] = prev_capped;
    st.annual[0] = annual;
    st.max_occurrence[0] = max_occ;
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) prefetch_next(bp, trial[i + 1].event);
    apply(bp, trial[i].event, st);
  }
}

}  // namespace

namespace detail {

void sweep_neon(const BoundPortfolio<double>& bp,
                std::span<const EventOccurrence> trial,
                PortfolioTrialState<double>& st) {
  sweep_impl(bp, trial, st, apply_event_f64, combine_elts_f64);
}
void sweep_neon(const BoundPortfolio<float>& bp,
                std::span<const EventOccurrence> trial,
                PortfolioTrialState<float>& st) {
  sweep_impl(bp, trial, st, apply_event_f32, combine_elts_f32);
}
void apply_neon(const BoundPortfolio<double>& bp, EventId ev,
                PortfolioTrialState<double>& st) {
  apply_event_f64(bp, ev, st);
}
void apply_neon(const BoundPortfolio<float>& bp, EventId ev,
                PortfolioTrialState<float>& st) {
  apply_event_f32(bp, ev, st);
}

}  // namespace detail
}  // namespace ara::simd

#endif  // ARA_SIMD_HAVE_NEON
