// Runtime-dispatched kernels over the SoA portfolio binding.
//
// A SweepKernel is a pair of function pointers selected once per run
// (never per event): `sweep` evaluates one whole trial — reset, every
// occurrence, software prefetch of the next occurrence's table lines —
// and is what the CPU engines drive; `apply` applies a single
// occurrence with no reset, which is the shape the chunk-staged GPU
// kernel needs (it owns the trial loop and the staging buffer).
//
// Determinism contracts (DESIGN.md §8):
//   * SimdPolicy::kScalar — the exact operand sequence of
//     trial_math.hpp's apply_event_to_layer; results are bit-identical
//     to the pre-SIMD engines. This is the default everywhere.
//   * vector kernels — lane order is fixed (a layer's ELT slots are
//     combined as 4/8 partial sums reduced low-lane-first), so results
//     are bit-reproducible run to run on the same build + host, but
//     the reassociated ELT sum may differ from scalar in the last ulp.
//     The across-layer occurrence/aggregate update is elementwise and
//     agrees with scalar exactly.
#pragma once

#include <span>

#include "core/simd/bound_portfolio.hpp"
#include "core/simd/capability.hpp"
#include "core/simd/policy.hpp"
#include "core/types.hpp"

namespace ara::simd {

template <typename Real>
struct SweepKernel {
  using SweepFn = void (*)(const BoundPortfolio<Real>&,
                           std::span<const EventOccurrence>,
                           PortfolioTrialState<Real>&);
  using ApplyFn = void (*)(const BoundPortfolio<Real>&, EventId,
                           PortfolioTrialState<Real>&);

  SweepFn sweep = nullptr;
  ApplyFn apply = nullptr;
  IsaLevel isa = IsaLevel::kScalar;
  unsigned lanes = 1;  ///< f64 lanes for double, f32 lanes for float
};

/// Selects the kernel `policy` asks for on this build + host. Throws
/// std::runtime_error when kForceWidth cannot be satisfied (no vector
/// kernel compiled/supported, or `width` doesn't match the available
/// lane count).
template <typename Real>
SweepKernel<Real> select_kernel(SimdPolicy policy, unsigned width = 0);

/// Test seam: same selection with the host capability clamped to
/// `cap`, so fallback behaviour is exercisable on any machine (e.g.
/// cap = kScalar simulates a host without vector units).
template <typename Real>
SweepKernel<Real> select_kernel_capped(SimdPolicy policy, unsigned width,
                                       IsaLevel cap);

}  // namespace ara::simd
