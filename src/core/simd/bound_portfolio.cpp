#include "core/simd/bound_portfolio.hpp"

#include <algorithm>

#include "core/layer.hpp"
#include "core/trial_math.hpp"

namespace ara::simd {

namespace {

std::size_t pad_layers(std::size_t layers) {
  return ((layers + kLayerPad - 1) / kLayerPad) * kLayerPad;
}

std::size_t pad_elts(std::size_t elts) {
  return ((elts + kEltPad - 1) / kEltPad) * kEltPad;
}

}  // namespace

template <typename Real>
PortfolioTrialState<Real>::PortfolioTrialState(const BoundPortfolio<Real>& bp)
    : combined(bp.padded_layers, Real(0)),
      cumulative(bp.padded_layers, Real(0)),
      prev_capped(bp.padded_layers, Real(0)),
      annual(bp.padded_layers, Real(0)),
      max_occurrence(bp.padded_layers, Real(0)) {}

template <typename Real>
void PortfolioTrialState<Real>::reset() noexcept {
  // Padding lanes are re-zeroed along with the live ones, so the
  // vector loops may store through the full padded width.
  std::fill(cumulative.begin(), cumulative.end(), Real(0));
  std::fill(prev_capped.begin(), prev_capped.end(), Real(0));
  std::fill(annual.begin(), annual.end(), Real(0));
  std::fill(max_occurrence.begin(), max_occurrence.end(), Real(0));
}

template <typename Real>
BoundPortfolio<Real> bind_portfolio(const Portfolio& portfolio,
                                    const TableStore<Real>& store) {
  BoundPortfolio<Real> bp;
  bp.layers = portfolio.layer_count();
  bp.padded_layers = pad_layers(std::max<std::size_t>(bp.layers, 1));

  std::size_t slots = 0;
  for (const Layer& layer : portfolio.layers()) {
    slots += pad_elts(layer.elt_indices.size());
  }
  bp.table_base.reserve(slots);
  bp.fx.reserve(slots);
  bp.retention.reserve(slots);
  bp.limit.reserve(slots);
  bp.share.reserve(slots);
  bp.fx_share.reserve(slots);
  bp.retention_share.reserve(slots);
  bp.limit_share.reserve(slots);
  bp.elt_begin.reserve(bp.layers + 1);
  bp.elt_end.reserve(bp.layers);

  bp.elt_begin.push_back(0);
  for (std::size_t a = 0; a < bp.layers; ++a) {
    const Layer& layer = portfolio.layers()[a];
    const std::size_t count = layer.elt_indices.size();
    for (std::size_t j = 0; j < count; ++j) {
      const FinancialTerms& t =
          portfolio.elts()[layer.elt_indices[j]].terms();
      const Real share = static_cast<Real>(t.share);
      bp.table_base.push_back(store.per_layer[a][j]->data().data());
      bp.fx.push_back(static_cast<Real>(t.fx_rate));
      bp.retention.push_back(static_cast<Real>(t.retention));
      bp.limit.push_back(static_cast<Real>(t.limit));
      bp.share.push_back(share);
      bp.fx_share.push_back(static_cast<Real>(t.fx_rate) * share);
      bp.retention_share.push_back(static_cast<Real>(t.retention) * share);
      bp.limit_share.push_back(static_cast<Real>(t.limit) * share);
    }
    bp.elt_end.push_back(static_cast<std::uint32_t>(bp.table_base.size()));
    // Zero-term padding slots: they load a real table line (the
    // layer's first — always resident anyway) but every parameter is
    // 0, so the clamp chain yields exactly +0.0 per padded lane.
    if (count > 0) {
      const Real* base = bp.table_base[bp.elt_begin[a]];
      for (std::size_t j = count; j < pad_elts(count); ++j) {
        bp.table_base.push_back(base);
        bp.fx.push_back(Real(0));
        bp.retention.push_back(Real(0));
        bp.limit.push_back(Real(0));
        bp.share.push_back(Real(0));
        bp.fx_share.push_back(Real(0));
        bp.retention_share.push_back(Real(0));
        bp.limit_share.push_back(Real(0));
      }
    }
    bp.elt_begin.push_back(static_cast<std::uint32_t>(bp.table_base.size()));
  }

  // Per-layer XL terms; padding layers get limit 0 on both clamps so
  // whatever the vector loops compute for them collapses to exactly 0.
  bp.occ_retention.assign(bp.padded_layers, Real(0));
  bp.occ_limit.assign(bp.padded_layers, Real(0));
  bp.agg_retention.assign(bp.padded_layers, Real(0));
  bp.agg_limit.assign(bp.padded_layers, Real(0));
  for (std::size_t a = 0; a < bp.layers; ++a) {
    const LayerTerms& t = portfolio.layers()[a].terms;
    bp.occ_retention[a] = static_cast<Real>(t.occ_retention);
    bp.occ_limit[a] = static_cast<Real>(t.occ_limit);
    bp.agg_retention[a] = static_cast<Real>(t.agg_retention);
    bp.agg_limit[a] = static_cast<Real>(t.agg_limit);
  }

  // Prefetch list: the distinct tables, only when the working set is
  // big enough that next-occurrence lines plausibly miss cache.
  std::size_t distinct_bytes = 0;
  for (const auto& table : store.tables) {
    distinct_bytes += table.slots() * sizeof(Real);
  }
  if (distinct_bytes >= kPrefetchMinTableBytes) {
    const std::size_t n =
        std::min(store.tables.size(), kMaxPrefetchTables);
    bp.prefetch_tables.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      bp.prefetch_tables.push_back(store.tables[i].data().data());
    }
  }
  return bp;
}

template struct PortfolioTrialState<float>;
template struct PortfolioTrialState<double>;
template BoundPortfolio<float> bind_portfolio(const Portfolio&,
                                              const TableStore<float>&);
template BoundPortfolio<double> bind_portfolio(const Portfolio&,
                                               const TableStore<double>&);

}  // namespace ara::simd
