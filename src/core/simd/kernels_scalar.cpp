// Scalar kernels over the SoA binding: the bitwise-reference mode.
//
// The operand sequence here must stay exactly the one in
// trial_math.hpp's apply_event_to_layer (lookup * fx - retention,
// clamp, * share, accumulated left to right across a layer's ELT
// slots; then the occurrence clamp, max update, prefix sum, aggregate
// clamp and diff) — the property suite asserts bit-identity against
// the legacy formulation for every engine. The only liberties taken
// are bitwise-neutral: the terms were pre-cast to Real at bind time
// (the same cast the legacy path performs per call), the single-layer
// fast path keeps the running state in locals instead of memory (same
// operations, same order — this is the few_layers_many_trials
// regression fix: the compiler could not keep state in registers
// through the generic layer-indexed loop), and software prefetch of
// the next occurrence's table lines touches no architectural state.
#include <cstddef>

#include "core/simd/kernel_entries.hpp"

namespace ara::simd {
namespace {

template <typename Real>
inline Real combine_layer_elts(const BoundPortfolio<Real>& bp, EventId ev,
                               std::uint32_t jb, std::uint32_t je) {
  Real combined = Real(0);
  for (std::uint32_t j = jb; j < je; ++j) {
    Real x = bp.table_base[j][ev] * bp.fx[j] - bp.retention[j];
    if (x < Real(0)) x = Real(0);
    if (x > bp.limit[j]) x = bp.limit[j];
    combined += x * bp.share[j];
  }
  return combined;
}

template <typename Real>
inline void apply_event_impl(const BoundPortfolio<Real>& bp, EventId ev,
                             PortfolioTrialState<Real>& st) {
  for (std::size_t a = 0; a < bp.layers; ++a) {
    // Real slots only (elt_end): the zero-term padding slots exist for
    // the vector kernels' remainder-free loops.
    const Real combined =
        combine_layer_elts(bp, ev, bp.elt_begin[a], bp.elt_end[a]);
    Real y = combined - bp.occ_retention[a];
    if (y < Real(0)) y = Real(0);
    if (y > bp.occ_limit[a]) y = bp.occ_limit[a];
    if (y > st.max_occurrence[a]) st.max_occurrence[a] = y;
    st.cumulative[a] += y;
    Real capped = st.cumulative[a] - bp.agg_retention[a];
    if (capped < Real(0)) capped = Real(0);
    if (capped > bp.agg_limit[a]) capped = bp.agg_limit[a];
    st.annual[a] += capped - st.prev_capped[a];
    st.prev_capped[a] = capped;
  }
}

template <typename Real>
inline void prefetch_next(const BoundPortfolio<Real>& bp, EventId next_ev) {
  for (const Real* base : bp.prefetch_tables) {
    __builtin_prefetch(base + next_ev, /*rw=*/0, /*locality=*/1);
  }
}

template <typename Real>
void sweep_impl(const BoundPortfolio<Real>& bp,
                std::span<const EventOccurrence> trial,
                PortfolioTrialState<Real>& st) {
  st.reset();
  const std::size_t n = trial.size();

  if (bp.layers == 1) {
    // Single-layer fast path: running state in locals.
    const std::uint32_t je = bp.elt_end[0];
    const Real occ_ret = bp.occ_retention[0];
    const Real occ_lim = bp.occ_limit[0];
    const Real agg_ret = bp.agg_retention[0];
    const Real agg_lim = bp.agg_limit[0];
    Real cumulative = Real(0), prev_capped = Real(0);
    Real annual = Real(0), max_occ = Real(0);
    for (std::size_t i = 0; i < n; ++i) {
      if (i + 1 < n) prefetch_next(bp, trial[i + 1].event);
      const Real combined = combine_layer_elts(bp, trial[i].event, 0, je);
      Real y = combined - occ_ret;
      if (y < Real(0)) y = Real(0);
      if (y > occ_lim) y = occ_lim;
      if (y > max_occ) max_occ = y;
      cumulative += y;
      Real capped = cumulative - agg_ret;
      if (capped < Real(0)) capped = Real(0);
      if (capped > agg_lim) capped = agg_lim;
      annual += capped - prev_capped;
      prev_capped = capped;
    }
    st.cumulative[0] = cumulative;
    st.prev_capped[0] = prev_capped;
    st.annual[0] = annual;
    st.max_occurrence[0] = max_occ;
    return;
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) prefetch_next(bp, trial[i + 1].event);
    apply_event_impl(bp, trial[i].event, st);
  }
}

}  // namespace

namespace detail {

void sweep_scalar(const BoundPortfolio<double>& bp,
                  std::span<const EventOccurrence> trial,
                  PortfolioTrialState<double>& st) {
  sweep_impl(bp, trial, st);
}
void sweep_scalar(const BoundPortfolio<float>& bp,
                  std::span<const EventOccurrence> trial,
                  PortfolioTrialState<float>& st) {
  sweep_impl(bp, trial, st);
}
void apply_scalar(const BoundPortfolio<double>& bp, EventId ev,
                  PortfolioTrialState<double>& st) {
  apply_event_impl(bp, ev, st);
}
void apply_scalar(const BoundPortfolio<float>& bp, EventId ev,
                  PortfolioTrialState<float>& st) {
  apply_event_impl(bp, ev, st);
}

}  // namespace detail
}  // namespace ara::simd
