// 64-byte-aligned vector storage for the SoA hot-path layouts.
//
// The vector kernels (core/simd/kernels_*.cpp) use aligned loads on
// the per-layer state arrays and the prefetcher works in cache-line
// units, so the containers that back them must not depend on the
// default allocator happening to return 16-byte-aligned blocks. One
// cache line (64 B) covers every ISA this repo dispatches (AVX2 needs
// 32, NEON 16) and keeps each array starting on its own line.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace ara::simd {

inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T, std::size_t Align = kCacheLineBytes>
struct AlignedAllocator {
  using value_type = T;

  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "alignment must be a power of two covering T");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Align));
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// std::vector whose data() is 64-byte aligned.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace ara::simd
