// SoA binding of a portfolio for the vectorizable hot path.
//
// The legacy binding (core/trial_math.hpp) is a vector of BoundLayer,
// each holding vectors of table pointers and FinancialTerms structs —
// applying one occurrence walks three levels of indirection per ELT
// and keeps the per-layer running state in an array of structs. The
// BoundPortfolio here flattens all of it:
//
//   * one contiguous array of direct-access-table base pointers over
//     every (layer, ELT) slot, in layer order (`elt_begin` delimits
//     layers),
//   * the financial-terms parameters pre-cast to the working precision
//     and split into four parallel arrays (fx / retention / limit /
//     share), so the per-ELT term application is a straight-line sweep
//     a vector unit can load with one instruction per operand,
//   * a second, vector-only set of term arrays with the share factor
//     folded in (fx*share / retention*share / limit*share):
//     (min(max(l*fx - r, 0), lim))*s == min(max(l*(fx*s) - r*s, 0),
//     lim*s) for s >= 0, so folding drops one multiply and one load
//     per slot. The fold reassociates rounding, which the vector
//     kernels' tolerance contract already admits — the scalar kernel
//     keeps the unfolded arrays and the exact legacy sequence,
//   * each layer's slot run padded to a multiple of kEltPad with
//     all-zero terms (pointing at the layer's first table), so the
//     vector combine loops are remainder-free: a zeroed slot
//     contributes exactly +0.0 through the clamp chain,
//   * the per-layer occurrence/aggregate terms as parallel arrays
//     padded to a lane multiple (padding layers carry limit 0, which
//     forces their contribution to exactly 0), so the across-layer
//     state update is a remainder-free aligned vector loop.
//
// Pre-casting the double terms to `Real` at bind time is bitwise-
// neutral: apply_financial_terms casts the same double to the same
// Real on every call, so hoisting the cast cannot change a result.
//
// PortfolioTrialState is the matching SoA of the running state
// (LayerTrialState split into parallel aligned arrays). Both are
// consumed by the dispatched kernels in core/simd/kernels.hpp.
//
// This header is deliberately lean — struct definitions only, binding
// logic out of line in bound_portfolio.cpp — because the ISA-specific
// kernel TUs include it while compiled with per-file vector flags, and
// inline code shared with default-flag TUs would be an ODR hazard.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/simd/aligned.hpp"
#include "core/types.hpp"

namespace ara {
class Portfolio;
template <typename Real>
struct TableStore;
}  // namespace ara

namespace ara::simd {

/// Layer-count padding unit: 8 covers the widest lane count dispatched
/// (AVX2 f32), so every ISA's across-layer loop is remainder-free.
inline constexpr std::size_t kLayerPad = 8;

/// ELT-slot padding unit per layer, same rationale: the vector combine
/// loops run the padded range with no scalar tail.
inline constexpr std::size_t kEltPad = 8;

/// Tables are only worth prefetching when the distinct working set
/// plausibly misses cache; below this total the prefetch list stays
/// empty and the kernels skip the instructions entirely.
inline constexpr std::size_t kPrefetchMinTableBytes = std::size_t{2} << 20;

/// At most this many distinct table lines are prefetched per upcoming
/// occurrence (beyond that the requests saturate the fill buffers).
inline constexpr std::size_t kMaxPrefetchTables = 16;

template <typename Real>
struct BoundPortfolio {
  std::size_t layers = 0;         ///< real layer count
  std::size_t padded_layers = 0;  ///< layers rounded up to kLayerPad

  // Flat (layer, ELT) slots, layer-major. Layer a's real slots are
  // [elt_begin[a], elt_end[a]); the padded run the vector kernels
  // sweep is [elt_begin[a], elt_begin[a + 1]) — a multiple of kEltPad
  // wide, zero-term slots after elt_end[a].
  std::vector<const Real*> table_base;  ///< dense table base pointers
  AlignedVector<Real> fx;               ///< financial terms, pre-cast
  AlignedVector<Real> retention;
  AlignedVector<Real> limit;
  AlignedVector<Real> share;
  // Vector-only folded terms (share multiplied through; see header
  // comment). The scalar kernel never touches these.
  AlignedVector<Real> fx_share;
  AlignedVector<Real> retention_share;
  AlignedVector<Real> limit_share;
  std::vector<std::uint32_t> elt_begin;  ///< [layers + 1], padded starts
  std::vector<std::uint32_t> elt_end;    ///< [layers], real slot ends

  // Per-layer XL terms, padded to padded_layers (padding: limit 0).
  AlignedVector<Real> occ_retention;
  AlignedVector<Real> occ_limit;
  AlignedVector<Real> agg_retention;
  AlignedVector<Real> agg_limit;

  /// Distinct table bases for next-occurrence software prefetch.
  /// Empty when the working set is cache-resident (see
  /// kPrefetchMinTableBytes) — the kernels then skip prefetching.
  std::vector<const Real*> prefetch_tables;

  std::size_t elt_slot_count() const noexcept { return table_base.size(); }
};

/// Running state of one trial over every layer: LayerTrialState as
/// parallel 64-byte-aligned arrays of length padded_layers (padding
/// lanes stay 0 by construction). `combined` is the per-event scratch
/// the two-phase vector kernels stage the per-layer combined losses
/// in.
template <typename Real>
struct PortfolioTrialState {
  AlignedVector<Real> combined;
  AlignedVector<Real> cumulative;
  AlignedVector<Real> prev_capped;
  AlignedVector<Real> annual;
  AlignedVector<Real> max_occurrence;

  PortfolioTrialState() = default;
  explicit PortfolioTrialState(const BoundPortfolio<Real>& bp);

  /// Zeroes the running state (the start-of-trial reset).
  void reset() noexcept;
};

/// Binds `portfolio` against the store's dense tables (which must have
/// been built from the same portfolio). The returned structure holds
/// raw pointers into `store`; the store must outlive it.
template <typename Real>
BoundPortfolio<Real> bind_portfolio(const Portfolio& portfolio,
                                    const TableStore<Real>& store);

}  // namespace ara::simd
