// Kernel selection: SimdPolicy x (build + host capability) -> the
// SweepKernel the engines drive. Selection happens once per engine
// run, so the per-event path carries no dispatch overhead beyond one
// indirect call per trial (sweep) or per staged event (apply).
#include <stdexcept>
#include <string>

#include "core/simd/kernel_entries.hpp"
#include "core/simd/kernels.hpp"

namespace ara::simd {

namespace {

template <typename Real>
SweepKernel<Real> scalar_kernel() {
  SweepKernel<Real> k;
  k.sweep = &detail::sweep_scalar;
  k.apply = &detail::apply_scalar;
  k.isa = IsaLevel::kScalar;
  k.lanes = 1;
  return k;
}

// The vector kernel for `isa`, which the caller has already verified
// is compiled + supported. Returns the scalar kernel for kScalar.
template <typename Real>
SweepKernel<Real> vector_kernel(IsaLevel isa) {
  SweepKernel<Real> k = scalar_kernel<Real>();
#if defined(ARA_SIMD_HAVE_AVX2)
  if (isa == IsaLevel::kAvx2) {
    k.sweep = &detail::sweep_avx2;
    k.apply = &detail::apply_avx2;
    k.isa = isa;
    k.lanes = isa_lanes(isa, sizeof(Real));
  }
#endif
#if defined(ARA_SIMD_HAVE_NEON)
  if (isa == IsaLevel::kNeon) {
    k.sweep = &detail::sweep_neon;
    k.apply = &detail::apply_neon;
    k.isa = isa;
    k.lanes = isa_lanes(isa, sizeof(Real));
  }
#endif
  return k;
}

}  // namespace

template <typename Real>
SweepKernel<Real> select_kernel_capped(SimdPolicy policy, unsigned width,
                                       IsaLevel cap) {
  const IsaLevel host = detect_best_isa();
  // The usable capability is the intersection of what the build + host
  // offer and what the caller-supplied cap admits.
  const IsaLevel avail = (cap == host) ? host : IsaLevel::kScalar;

  switch (policy) {
    case SimdPolicy::kScalar:
      return scalar_kernel<Real>();
    case SimdPolicy::kAuto:
      return avail == IsaLevel::kScalar ? scalar_kernel<Real>()
                                        : vector_kernel<Real>(avail);
    case SimdPolicy::kForceWidth: {
      if (avail == IsaLevel::kScalar) {
        throw std::runtime_error(
            "simd: kForceWidth requested but no vector kernel is "
            "available (build " +
            std::string(simd_compiled() ? "has" : "lacks") +
            " SIMD TUs; host best ISA is " + isa_name(host) + ")");
      }
      SweepKernel<Real> k = vector_kernel<Real>(avail);
      if (width != 0 && width != k.lanes) {
        throw std::runtime_error(
            "simd: kForceWidth width " + std::to_string(width) +
            " unavailable for " +
            std::string(sizeof(Real) == 4 ? "f32" : "f64") + " (" +
            isa_name(k.isa) + " provides " + std::to_string(k.lanes) +
            " lanes)");
      }
      return k;
    }
  }
  return scalar_kernel<Real>();
}

template <typename Real>
SweepKernel<Real> select_kernel(SimdPolicy policy, unsigned width) {
  return select_kernel_capped<Real>(policy, width, detect_best_isa());
}

template SweepKernel<float> select_kernel_capped(SimdPolicy, unsigned,
                                                 IsaLevel);
template SweepKernel<double> select_kernel_capped(SimdPolicy, unsigned,
                                                  IsaLevel);
template SweepKernel<float> select_kernel(SimdPolicy, unsigned);
template SweepKernel<double> select_kernel(SimdPolicy, unsigned);

}  // namespace ara::simd
