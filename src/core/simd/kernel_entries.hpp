// Internal: the per-ISA kernel entry points the dispatcher wires into
// SweepKernel. Each overload set is defined in exactly one TU
// (kernels_scalar.cpp / kernels_avx2.cpp / kernels_neon.cpp); the ISA
// TUs are compiled with per-file vector flags and keep everything but
// these uniquely-named entries in anonymous namespaces, so no inline
// symbol ever has two differently-compiled definitions.
#pragma once

#include <span>

#include "core/simd/bound_portfolio.hpp"
#include "core/types.hpp"

namespace ara::simd::detail {

// Scalar (bitwise-reference) kernels — always compiled.
void sweep_scalar(const BoundPortfolio<double>& bp,
                  std::span<const EventOccurrence> trial,
                  PortfolioTrialState<double>& st);
void sweep_scalar(const BoundPortfolio<float>& bp,
                  std::span<const EventOccurrence> trial,
                  PortfolioTrialState<float>& st);
void apply_scalar(const BoundPortfolio<double>& bp, EventId ev,
                  PortfolioTrialState<double>& st);
void apply_scalar(const BoundPortfolio<float>& bp, EventId ev,
                  PortfolioTrialState<float>& st);

#if defined(ARA_SIMD_HAVE_AVX2)
void sweep_avx2(const BoundPortfolio<double>& bp,
                std::span<const EventOccurrence> trial,
                PortfolioTrialState<double>& st);
void sweep_avx2(const BoundPortfolio<float>& bp,
                std::span<const EventOccurrence> trial,
                PortfolioTrialState<float>& st);
void apply_avx2(const BoundPortfolio<double>& bp, EventId ev,
                PortfolioTrialState<double>& st);
void apply_avx2(const BoundPortfolio<float>& bp, EventId ev,
                PortfolioTrialState<float>& st);
#endif

#if defined(ARA_SIMD_HAVE_NEON)
void sweep_neon(const BoundPortfolio<double>& bp,
                std::span<const EventOccurrence> trial,
                PortfolioTrialState<double>& st);
void sweep_neon(const BoundPortfolio<float>& bp,
                std::span<const EventOccurrence> trial,
                PortfolioTrialState<float>& st);
void apply_neon(const BoundPortfolio<double>& bp, EventId ev,
                PortfolioTrialState<double>& st);
void apply_neon(const BoundPortfolio<float>& bp, EventId ev,
                PortfolioTrialState<float>& st);
#endif

}  // namespace ara::simd::detail
