// ISA capability detection for the kernel dispatch. Which kernels
// exist is a build-time fact (per-TU ISA flags in CMakeLists.txt,
// ARA_SIMD_HAVE_* definitions); whether the host can run them is a
// runtime fact (CPUID). detect_best_isa() intersects the two.
#pragma once

#include <cstdint>

namespace ara::simd {

enum class IsaLevel : std::uint8_t {
  kScalar = 0,  ///< always available; the bitwise-reference sequence
  kAvx2 = 1,    ///< x86-64: 4 x f64 / 8 x f32 lanes
  kNeon = 2,    ///< aarch64: 2 x f64 / 4 x f32 lanes
};

/// Widest ISA both compiled into this binary and supported by the
/// host CPU. kScalar when SIMD was disabled (-DARA_DISABLE_SIMD=ON),
/// not compiled for this architecture, or not supported at runtime.
IsaLevel detect_best_isa() noexcept;

/// "scalar" / "avx2" / "neon" — recorded in SimulationResult::simd_isa
/// and the bench JSON.
const char* isa_name(IsaLevel isa) noexcept;

/// True when at least one vector-kernel TU is part of this build.
bool simd_compiled() noexcept;

/// Vector lane count of `isa` for an element of `real_bytes` (4 or 8).
/// 1 for kScalar.
unsigned isa_lanes(IsaLevel isa, unsigned real_bytes) noexcept;

}  // namespace ara::simd
