// The SIMD execution knob threaded from ExecutionPolicy down to the
// kernel dispatch (see DESIGN.md §8 for the two determinism
// contracts). Kept separate from kernels.hpp so engine.hpp and the
// CLI tools can carry the enum without pulling the kernel machinery.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace ara::simd {

/// How the fused hot path executes the per-event operand sequence.
enum class SimdPolicy : std::uint8_t {
  /// Widest kernel the build and the host support; scalar when none.
  /// Deterministic run-to-run (fixed lane order), but ELT sums are
  /// reassociated, so results may differ from kScalar in the last ulp.
  kAuto,
  /// The reference sequence: bit-identical to the pre-SIMD engines.
  /// This is the default — vectorization is always opt-in.
  kScalar,
  /// Require a vector kernel; `simd_width` (when non-zero) pins the
  /// lane count. Selection throws if the build or host cannot satisfy
  /// it — for pinning benchmark/CI runs to a known ISA.
  kForceWidth,
};

constexpr std::string_view simd_policy_name(SimdPolicy p) noexcept {
  switch (p) {
    case SimdPolicy::kAuto:
      return "auto";
    case SimdPolicy::kScalar:
      return "scalar";
    case SimdPolicy::kForceWidth:
      return "force";
  }
  return "scalar";
}

constexpr std::optional<SimdPolicy> simd_policy_from_name(
    std::string_view name) noexcept {
  if (name == "auto") return SimdPolicy::kAuto;
  if (name == "scalar") return SimdPolicy::kScalar;
  if (name == "force") return SimdPolicy::kForceWidth;
  return std::nullopt;
}

}  // namespace ara::simd
