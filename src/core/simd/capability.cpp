#include "core/simd/capability.hpp"

namespace ara::simd {

IsaLevel detect_best_isa() noexcept {
#if defined(ARA_SIMD_HAVE_AVX2)
  // Runtime check: the binary may carry the AVX2 TU (the build host's
  // compiler accepted -mavx2) yet land on an older core.
  if (__builtin_cpu_supports("avx2")) return IsaLevel::kAvx2;
#endif
#if defined(ARA_SIMD_HAVE_NEON)
  // NEON is architecturally baseline on aarch64 — no runtime probe.
  return IsaLevel::kNeon;
#endif
  return IsaLevel::kScalar;
}

const char* isa_name(IsaLevel isa) noexcept {
  switch (isa) {
    case IsaLevel::kScalar:
      return "scalar";
    case IsaLevel::kAvx2:
      return "avx2";
    case IsaLevel::kNeon:
      return "neon";
  }
  return "scalar";
}

bool simd_compiled() noexcept {
#if defined(ARA_SIMD_HAVE_AVX2) || defined(ARA_SIMD_HAVE_NEON)
  return true;
#else
  return false;
#endif
}

unsigned isa_lanes(IsaLevel isa, unsigned real_bytes) noexcept {
  switch (isa) {
    case IsaLevel::kScalar:
      return 1;
    case IsaLevel::kAvx2:
      return real_bytes == 4 ? 8u : 4u;  // 256-bit registers
    case IsaLevel::kNeon:
      return real_bytes == 4 ? 4u : 2u;  // 128-bit registers
  }
  return 1;
}

}  // namespace ara::simd
