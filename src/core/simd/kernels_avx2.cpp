// AVX2 kernels (x86-64): 4 x f64 / 8 x f32 lanes.
//
// Compiled with per-file flags (-mavx2 -ffp-contract=off — see
// CMakeLists.txt): AVX2 gives the 256-bit ALUs, and disabling FP
// contraction keeps the lane math exactly the documented mul/sub/
// clamp/add sequence (an FMA-contracted variant would produce yet a
// third result set and break the fixed-lane-order reproducibility
// contract). Everything except the dispatch entry points lives in an
// anonymous namespace so no symbol compiled with vector flags can be
// picked over a default-flag duplicate at link time.
//
// Shape of the work, per occurrence (kernels.hpp's SIMD contract):
//   phase 1 — per layer, the ELT slots are combined with aligned
//     vector loads of the folded SoA term arrays (share multiplied
//     through at bind time — one fewer load and multiply per slot)
//     and scalar loads of the table values (indices are the same
//     event on different base pointers; a gather buys nothing on
//     dense tables and is opaque to the sanitizers). The layer's slot
//     run is padded to kEltPad with zero-term slots, so the loop has
//     no scalar remainder; the 4/8 partial sums are reduced
//     low-lane-first — the fixed order that makes runs reproducible.
//   phase 2 — the across-layer occurrence/aggregate update runs as an
//     elementwise aligned vector loop over the padded layer arrays.
//     Elementwise ops match scalar bit for bit, so all cross-scalar
//     divergence is confined to phase 1's reassociated ELT sums.
#if defined(ARA_SIMD_HAVE_AVX2)

#include <immintrin.h>

#include <cstddef>

#include "core/simd/kernel_entries.hpp"

namespace ara::simd {
namespace {

inline void prefetch_next_f64(const BoundPortfolio<double>& bp,
                              EventId next_ev) {
  for (const double* base : bp.prefetch_tables) {
    _mm_prefetch(reinterpret_cast<const char*>(base + next_ev), _MM_HINT_T1);
  }
}
inline void prefetch_next_f32(const BoundPortfolio<float>& bp,
                              EventId next_ev) {
  for (const float* base : bp.prefetch_tables) {
    _mm_prefetch(reinterpret_cast<const char*>(base + next_ev), _MM_HINT_T1);
  }
}

// ---- f64: 4 lanes ----------------------------------------------------------

// `jb`/`je` delimit the padded slot run (both multiples of kEltPad),
// so every iteration is a full vector and the term loads are aligned.
inline double combine_elts_f64(const BoundPortfolio<double>& bp, EventId ev,
                               std::uint32_t jb, std::uint32_t je) {
  const __m256d zero = _mm256_setzero_pd();
  __m256d acc = zero;
  for (std::uint32_t j = jb; j < je; j += 4) {
    const __m256d loss =
        _mm256_set_pd(bp.table_base[j + 3][ev], bp.table_base[j + 2][ev],
                      bp.table_base[j + 1][ev], bp.table_base[j][ev]);
    __m256d x =
        _mm256_sub_pd(_mm256_mul_pd(loss, _mm256_load_pd(&bp.fx_share[j])),
                      _mm256_load_pd(&bp.retention_share[j]));
    x = _mm256_max_pd(x, zero);
    x = _mm256_min_pd(x, _mm256_load_pd(&bp.limit_share[j]));
    acc = _mm256_add_pd(acc, x);
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  return ((lane[0] + lane[1]) + lane[2]) + lane[3];
}

void apply_event_f64(const BoundPortfolio<double>& bp, EventId ev,
                     PortfolioTrialState<double>& st) {
  for (std::size_t a = 0; a < bp.layers; ++a) {
    st.combined[a] =
        combine_elts_f64(bp, ev, bp.elt_begin[a], bp.elt_begin[a + 1]);
  }
  const __m256d zero = _mm256_setzero_pd();
  for (std::size_t a = 0; a < bp.padded_layers; a += 4) {
    __m256d y = _mm256_sub_pd(_mm256_load_pd(&st.combined[a]),
                              _mm256_load_pd(&bp.occ_retention[a]));
    y = _mm256_max_pd(y, zero);
    y = _mm256_min_pd(y, _mm256_load_pd(&bp.occ_limit[a]));
    _mm256_store_pd(&st.max_occurrence[a],
                    _mm256_max_pd(_mm256_load_pd(&st.max_occurrence[a]), y));
    const __m256d cum = _mm256_add_pd(_mm256_load_pd(&st.cumulative[a]), y);
    _mm256_store_pd(&st.cumulative[a], cum);
    __m256d capped =
        _mm256_sub_pd(cum, _mm256_load_pd(&bp.agg_retention[a]));
    capped = _mm256_max_pd(capped, zero);
    capped = _mm256_min_pd(capped, _mm256_load_pd(&bp.agg_limit[a]));
    const __m256d prev = _mm256_load_pd(&st.prev_capped[a]);
    _mm256_store_pd(&st.annual[a],
                    _mm256_add_pd(_mm256_load_pd(&st.annual[a]),
                                  _mm256_sub_pd(capped, prev)));
    _mm256_store_pd(&st.prev_capped[a], capped);
  }
}

void sweep_f64(const BoundPortfolio<double>& bp,
               std::span<const EventOccurrence> trial,
               PortfolioTrialState<double>& st) {
  st.reset();
  const std::size_t n = trial.size();
  if (bp.layers == 1) {
    // Single-layer fast path: vector ELT combine, scalar running state
    // in locals (the across-layer phase would be 1 live lane of 4).
    const std::uint32_t je = bp.elt_begin[1];
    const double occ_ret = bp.occ_retention[0];
    const double occ_lim = bp.occ_limit[0];
    const double agg_ret = bp.agg_retention[0];
    const double agg_lim = bp.agg_limit[0];
    double cumulative = 0.0, prev_capped = 0.0, annual = 0.0, max_occ = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i + 1 < n) prefetch_next_f64(bp, trial[i + 1].event);
      const double combined = combine_elts_f64(bp, trial[i].event, 0, je);
      double y = combined - occ_ret;
      if (y < 0.0) y = 0.0;
      if (y > occ_lim) y = occ_lim;
      if (y > max_occ) max_occ = y;
      cumulative += y;
      double capped = cumulative - agg_ret;
      if (capped < 0.0) capped = 0.0;
      if (capped > agg_lim) capped = agg_lim;
      annual += capped - prev_capped;
      prev_capped = capped;
    }
    st.cumulative[0] = cumulative;
    st.prev_capped[0] = prev_capped;
    st.annual[0] = annual;
    st.max_occurrence[0] = max_occ;
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) prefetch_next_f64(bp, trial[i + 1].event);
    apply_event_f64(bp, trial[i].event, st);
  }
}

// ---- f32: 8 lanes ----------------------------------------------------------

inline float combine_elts_f32(const BoundPortfolio<float>& bp, EventId ev,
                              std::uint32_t jb, std::uint32_t je) {
  const __m256 zero = _mm256_setzero_ps();
  __m256 acc = zero;
  for (std::uint32_t j = jb; j < je; j += 8) {
    const __m256 loss = _mm256_set_ps(
        bp.table_base[j + 7][ev], bp.table_base[j + 6][ev],
        bp.table_base[j + 5][ev], bp.table_base[j + 4][ev],
        bp.table_base[j + 3][ev], bp.table_base[j + 2][ev],
        bp.table_base[j + 1][ev], bp.table_base[j][ev]);
    __m256 x =
        _mm256_sub_ps(_mm256_mul_ps(loss, _mm256_load_ps(&bp.fx_share[j])),
                      _mm256_load_ps(&bp.retention_share[j]));
    x = _mm256_max_ps(x, zero);
    x = _mm256_min_ps(x, _mm256_load_ps(&bp.limit_share[j]));
    acc = _mm256_add_ps(acc, x);
  }
  alignas(32) float lane[8];
  _mm256_store_ps(lane, acc);
  return ((((((lane[0] + lane[1]) + lane[2]) + lane[3]) + lane[4]) +
           lane[5]) +
          lane[6]) +
         lane[7];
}

void apply_event_f32(const BoundPortfolio<float>& bp, EventId ev,
                     PortfolioTrialState<float>& st) {
  for (std::size_t a = 0; a < bp.layers; ++a) {
    st.combined[a] =
        combine_elts_f32(bp, ev, bp.elt_begin[a], bp.elt_begin[a + 1]);
  }
  const __m256 zero = _mm256_setzero_ps();
  for (std::size_t a = 0; a < bp.padded_layers; a += 8) {
    __m256 y = _mm256_sub_ps(_mm256_load_ps(&st.combined[a]),
                             _mm256_load_ps(&bp.occ_retention[a]));
    y = _mm256_max_ps(y, zero);
    y = _mm256_min_ps(y, _mm256_load_ps(&bp.occ_limit[a]));
    _mm256_store_ps(&st.max_occurrence[a],
                    _mm256_max_ps(_mm256_load_ps(&st.max_occurrence[a]), y));
    const __m256 cum = _mm256_add_ps(_mm256_load_ps(&st.cumulative[a]), y);
    _mm256_store_ps(&st.cumulative[a], cum);
    __m256 capped = _mm256_sub_ps(cum, _mm256_load_ps(&bp.agg_retention[a]));
    capped = _mm256_max_ps(capped, zero);
    capped = _mm256_min_ps(capped, _mm256_load_ps(&bp.agg_limit[a]));
    const __m256 prev = _mm256_load_ps(&st.prev_capped[a]);
    _mm256_store_ps(&st.annual[a],
                    _mm256_add_ps(_mm256_load_ps(&st.annual[a]),
                                  _mm256_sub_ps(capped, prev)));
    _mm256_store_ps(&st.prev_capped[a], capped);
  }
}

void sweep_f32(const BoundPortfolio<float>& bp,
               std::span<const EventOccurrence> trial,
               PortfolioTrialState<float>& st) {
  st.reset();
  const std::size_t n = trial.size();
  if (bp.layers == 1) {
    const std::uint32_t je = bp.elt_begin[1];
    const float occ_ret = bp.occ_retention[0];
    const float occ_lim = bp.occ_limit[0];
    const float agg_ret = bp.agg_retention[0];
    const float agg_lim = bp.agg_limit[0];
    float cumulative = 0.0f, prev_capped = 0.0f, annual = 0.0f,
          max_occ = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
      if (i + 1 < n) prefetch_next_f32(bp, trial[i + 1].event);
      const float combined = combine_elts_f32(bp, trial[i].event, 0, je);
      float y = combined - occ_ret;
      if (y < 0.0f) y = 0.0f;
      if (y > occ_lim) y = occ_lim;
      if (y > max_occ) max_occ = y;
      cumulative += y;
      float capped = cumulative - agg_ret;
      if (capped < 0.0f) capped = 0.0f;
      if (capped > agg_lim) capped = agg_lim;
      annual += capped - prev_capped;
      prev_capped = capped;
    }
    st.cumulative[0] = cumulative;
    st.prev_capped[0] = prev_capped;
    st.annual[0] = annual;
    st.max_occurrence[0] = max_occ;
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) prefetch_next_f32(bp, trial[i + 1].event);
    apply_event_f32(bp, trial[i].event, st);
  }
}

}  // namespace

namespace detail {

void sweep_avx2(const BoundPortfolio<double>& bp,
                std::span<const EventOccurrence> trial,
                PortfolioTrialState<double>& st) {
  sweep_f64(bp, trial, st);
}
void sweep_avx2(const BoundPortfolio<float>& bp,
                std::span<const EventOccurrence> trial,
                PortfolioTrialState<float>& st) {
  sweep_f32(bp, trial, st);
}
void apply_avx2(const BoundPortfolio<double>& bp, EventId ev,
                PortfolioTrialState<double>& st) {
  apply_event_f64(bp, ev, st);
}
void apply_avx2(const BoundPortfolio<float>& bp, EventId ev,
                PortfolioTrialState<float>& st) {
  apply_event_f32(bp, ev, st);
}

}  // namespace detail
}  // namespace ara::simd

#endif  // ARA_SIMD_HAVE_AVX2
