// Trial sharding: the plan (how a trial range splits into shards) and
// the merge algebra (how partial SimulationResults reassemble into the
// monolithic one). See DESIGN.md §5.
//
// A YLT row is produced independently per trial, so the trial
// dimension is exactly concatenative: partial YLTs merge by block copy
// into disjoint row ranges, and per-shard operation counts are
// integers derived from the YET offset table, so contiguous shards sum
// *exactly* to the whole-YET counts. Both operations are associative
// and order-independent, which is what lets a scheduler merge shards
// in completion order and still produce a bitwise-identical result.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "core/disjoint_ranges.hpp"
#include "core/engine.hpp"

namespace ara {

/// How a trial range splits into contiguous shards: every shard has
/// `shard_trials` trials except possibly the last. `shard_trials >=
/// total_trials` (or 0) collapses to a single shard covering all
/// trials — the monolithic run is the one-shard special case.
struct ShardPlan {
  std::size_t total_trials = 0;
  std::size_t shard_trials = 0;

  std::size_t shard_count() const noexcept {
    if (total_trials == 0) return 1;
    if (shard_trials == 0 || shard_trials >= total_trials) return 1;
    return (total_trials + shard_trials - 1) / shard_trials;
  }

  /// The i-th shard's trial range (i < shard_count()).
  TrialRange shard(std::size_t i) const noexcept {
    const std::size_t size =
        shard_trials == 0 || shard_trials >= total_trials ? total_trials
                                                          : shard_trials;
    TrialRange r;
    r.begin = i * size;
    r.end = r.begin + size < total_trials ? r.begin + size : total_trials;
    return r;
  }
};

/// Incremental plan extension: the contiguous shards tiling
/// [begin, end) at `shard_trials` trials each (the last may be short;
/// `shard_trials == 0` means one shard for the whole range). Empty for
/// an empty range. Adaptive waves use this to extend an in-flight plan
/// from the previous frontier to the next without re-planning the
/// already-executed prefix.
std::vector<TrialRange> shard_ranges(std::size_t begin, std::size_t end,
                                     std::size_t shard_trials);

/// Resident bytes one trial of a workload costs while its shard is in
/// flight: the YET slice (occurrence records + one offset) plus the
/// YLT rows it produces (annual + max-occurrence doubles per layer).
/// The input of memory-budgeted shard sizing.
double shard_bytes_per_trial(std::size_t layer_count,
                             double mean_events_per_trial);

/// Builds the plan for `total_trials`: an explicit `shard_trials`
/// wins; otherwise a non-zero `memory_budget_bytes` derives the
/// largest shard whose resident bytes fit the budget (never below one
/// trial); otherwise the plan is a single monolithic shard.
ShardPlan plan_shards(std::size_t total_trials, std::size_t shard_trials,
                      std::size_t memory_budget_bytes,
                      double bytes_per_trial);

/// Streaming merge of partial SimulationResults into the monolithic
/// one. Thread-safe: shards may be added from concurrent workers in
/// any completion order — partial YLTs land in disjoint row ranges and
/// op counts are summed integers, so the merged result is independent
/// of the interleaving (property-tested).
///
/// Two orthogonal outputs per accepted shard, chosen at construction:
/// *materializing* the rows into the monolithic YLT (the default), and
/// *forwarding* the partial's YLT block to a YltBlockSink (streaming
/// metric reducers, a spill writer — core/metrics/streaming.hpp,
/// io/yet_chunk.hpp). A non-materializing merger never allocates the
/// layers x trials table: finish() still validates exact coverage and
/// returns the merged accounting, but with an empty YLT — the shape
/// metric-only (YltRetention::kDiscard / kSpillToFile) runs use. The
/// sink is invoked outside the merger's lock, once per accepted shard,
/// after the block's range has been reserved (so sinks only ever see
/// disjoint blocks); coverage advances only after both the copy and
/// the sink call complete.
///
/// The merge covers the concatenative state: YLT rows, op counts, and
/// the additive measurement bookkeeping (wall seconds, measured
/// phases). Simulated-time accounting is *not* summed here — per-shard
/// simulated times include real per-shard overhead (extra kernel
/// launches, partial-range launch shapes), so their sum is the cost of
/// the sharded execution, not of the monolithic run. Callers that need
/// the monolithic accounting replay it exactly with a cost-only engine
/// run over the full range (AnalysisSession does; DESIGN.md §5).
class ShardMerger {
 public:
  /// Shape of the full result being assembled. `sink`, when non-null,
  /// receives every accepted block (it must tolerate concurrent calls;
  /// the caller keeps it alive until finish()). `materialize` = false
  /// skips the monolithic YLT entirely.
  ShardMerger(std::size_t layer_count, std::size_t trial_count,
              YltBlockSink* sink = nullptr, bool materialize = true);

  /// Merges one partial result at its recorded trial_begin. The
  /// partial's rows must not overlap rows already merged.
  void add(const SimulationResult& partial);

  /// Trials covered so far.
  std::size_t merged_trials() const;

  /// Sum of the shards' own simulated seconds — the simulated cost of
  /// executing the shards back to back (shard-overhead reporting).
  double sharded_simulated_seconds() const;

  /// Moves the merged result out. Throws std::logic_error unless every
  /// trial row has been covered exactly once.
  SimulationResult finish();

 private:
  mutable std::mutex mutex_;
  SimulationResult merged_;
  DisjointRangeSet blocks_;
  std::size_t layer_count_ = 0;
  std::size_t trial_count_ = 0;
  std::size_t covered_ = 0;
  double sharded_simulated_ = 0.0;
  bool first_ = true;
  YltBlockSink* sink_ = nullptr;
  bool materialize_ = true;
};

}  // namespace ara
