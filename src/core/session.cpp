#include "core/session.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "core/failpoint.hpp"
#include "core/gpu_engines.hpp"
#include "core/metrics/streaming.hpp"
#include "io/yet_chunk.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/partition.hpp"
#include "perf/cpu_cost_model.hpp"
#include "perf/machine_profile.hpp"
#include "perf/stopwatch.hpp"
#include "simgpu/gpu_cost_model.hpp"

namespace ara {

namespace {

// Serialises shard blocks into the spill writer (YltChunkWriter seeks,
// so concurrent appends must not interleave).
class SpillSink : public YltBlockSink {
 public:
  explicit SpillSink(io::YltChunkWriter& writer) : writer_(writer) {}
  void consume(const Ylt& block, std::size_t trial_begin) override {
    std::lock_guard<std::mutex> lock(mutex_);
    writer_.append(block, trial_begin);
  }

 private:
  std::mutex mutex_;
  io::YltChunkWriter& writer_;
};

// Forwards each block to every attached sink (metric reducers + spill
// writer); the attached sinks serialise themselves.
class FanoutSink : public YltBlockSink {
 public:
  void attach(YltBlockSink* sink) { sinks_.push_back(sink); }
  void consume(const Ylt& block, std::size_t trial_begin) override {
    for (YltBlockSink* sink : sinks_) sink->consume(block, trial_begin);
  }

 private:
  std::vector<YltBlockSink*> sinks_;
};

std::vector<std::string> layer_labels(const Portfolio& portfolio) {
  std::vector<std::string> labels;
  labels.reserve(portfolio.layer_count());
  for (const Layer& layer : portfolio.layers()) labels.push_back(layer.name);
  return labels;
}

// An engine is reusable whenever kind + tunables + devices match; the
// key serialises exactly the fields make_engine consumes.
std::string engine_cache_key(EngineKind kind, const EngineConfig& c,
                             const ExecutionPolicy& p) {
  std::ostringstream key;
  key << engine_kind_name(kind) << '|' << c.cores << '|' << c.threads_per_core
      << '|' << c.block_threads << '|' << c.chunk_size << '|' << c.use_float
      << c.unroll << c.use_registers << c.chunking << c.profile_phases << '|'
      << static_cast<int>(c.simd) << ':' << c.simd_width << '|'
      << p.gpu_device.name << '|' << p.multi_gpu_device.name << '|'
      << p.gpu_count;
  return key.str();
}

// ---- kAuto cost prediction ------------------------------------------------
//
// Each helper mirrors the launch shapes, kernel traits and scratch
// attribution of the corresponding engine (cpu_engines.cpp /
// gpu_engines.cpp), evaluated through the same cost models the engines
// charge their simulated time with — so a prediction is the engine's
// simulated_seconds computed without executing the workload.

double predict_cpu(const Portfolio& portfolio, const Yet& yet,
                   const EngineConfig& cfg, EngineKind kind) {
  // The fused engines run the trial-major sweep (YET streamed once for
  // all layers); only the literal reference implementation re-fetches
  // the YET per layer.
  OpCounts ops = kind == EngineKind::kSequentialReference
                     ? count_algorithm_ops(portfolio, yet)
                     : count_fused_algorithm_ops(portfolio, yet);
  if (kind == EngineKind::kSequentialFused) {
    ops.global_updates = ops.occurrence_ops ? 1 : 0;
  } else {
    ops.global_updates = ops.occurrence_ops * kScratchTouchesPerEvent;
  }
  const perf::CpuCostModel model(perf::intel_i7_2600());
  if (kind == EngineKind::kMultiCore) {
    return model.total_seconds(ops, std::max(1u, cfg.cores),
                               std::max(1u, cfg.threads_per_core));
  }
  return model.total_seconds(ops, 1);
}

EnginePrediction predict_gpu_basic(const Portfolio& portfolio, const Yet& yet,
                                   const EngineConfig& cfg,
                                   const simgpu::DeviceSpec& device) {
  EnginePrediction p;
  p.kind = EngineKind::kGpuBasic;
  const std::size_t trials = yet.trial_count();
  const std::uint64_t footprint =
      tables_device_bytes(portfolio, 8) + yet_device_bytes(yet, 0, trials) +
      static_cast<std::uint64_t>(portfolio.layer_count()) * trials * 8;
  if (footprint > device.global_mem_bytes) {
    p.feasible = false;
    p.note = "inputs exceed device memory";
    return p;
  }

  simgpu::KernelTraits traits;
  traits.loss_bytes = 8;
  traits.scratch_in_global = true;

  simgpu::LaunchConfig launch;
  launch.block_threads = cfg.block_threads;
  launch.grid_blocks = static_cast<unsigned>(
      (trials + cfg.block_threads - 1) / cfg.block_threads);
  launch.regs_per_thread = 20;

  OpCounts ops = range_fused_ops(portfolio, yet, 0, trials);
  ops.global_updates = ops.occurrence_ops * kScratchTouchesPerEvent;

  const simgpu::GpuCostModel model(device);
  const simgpu::KernelCost cost = model.estimate(launch, traits, ops);
  if (!cost.feasible) {
    p.feasible = false;
    p.note = cost.infeasible_reason;
    return p;
  }
  // One fused multi-layer launch charged the full range
  // (gpu_engines.cpp).
  p.seconds = cost.phases.total();
  return p;
}

// Predicted kernel seconds of the optimised kernel over one device's
// trial slice; mirrors run_optimized_on_device.
simgpu::KernelCost optimized_range_cost(const Portfolio& portfolio,
                                        const Yet& yet,
                                        const EngineConfig& cfg,
                                        const simgpu::GpuCostModel& model,
                                        std::size_t begin, std::size_t end) {
  simgpu::KernelTraits traits;
  traits.loss_bytes = cfg.use_float ? 4 : 8;
  traits.chunked = cfg.chunking;
  traits.mlp_per_thread = cfg.chunking ? std::min(cfg.chunk_size, 16u) : 1;
  traits.scratch_in_global = !cfg.chunking && !cfg.use_registers;
  traits.scratch_in_registers = cfg.use_registers;
  traits.unrolled = cfg.unroll;

  simgpu::LaunchConfig launch;
  launch.block_threads = cfg.block_threads;
  launch.grid_blocks = static_cast<unsigned>(
      (end - begin + cfg.block_threads - 1) / cfg.block_threads);
  launch.shared_bytes_per_block =
      cfg.chunking ? optimized_shared_bytes(cfg.block_threads, cfg.chunk_size)
                   : 0;
  launch.regs_per_thread = cfg.use_registers ? 63 : 32;

  OpCounts ops = range_fused_ops(portfolio, yet, begin, end);
  const std::uint64_t scratch = ops.occurrence_ops * kScratchTouchesPerEvent;
  if (traits.scratch_in_global) {
    ops.global_updates = scratch;
  } else if (!traits.scratch_in_registers) {
    ops.shared_accesses = scratch;
  }
  return model.estimate(launch, traits, ops);
}

EnginePrediction predict_gpu_optimized(const Portfolio& portfolio,
                                       const Yet& yet, const EngineConfig& cfg,
                                       const simgpu::DeviceSpec& device) {
  EnginePrediction p;
  p.kind = EngineKind::kGpuOptimized;
  const std::size_t trials = yet.trial_count();
  const unsigned loss_bytes = cfg.use_float ? 4 : 8;
  const std::uint64_t footprint =
      tables_device_bytes(portfolio, loss_bytes) +
      yet_device_bytes(yet, 0, trials) +
      static_cast<std::uint64_t>(portfolio.layer_count()) * trials * loss_bytes;
  if (footprint > device.global_mem_bytes) {
    p.feasible = false;
    p.note = "inputs exceed device memory";
    return p;
  }
  const simgpu::GpuCostModel model(device);
  const simgpu::KernelCost cost =
      optimized_range_cost(portfolio, yet, cfg, model, 0, trials);
  if (!cost.feasible) {
    p.feasible = false;
    p.note = cost.infeasible_reason;
    return p;
  }
  p.seconds = cost.phases.total();
  return p;
}

EnginePrediction predict_multi_gpu(const Portfolio& portfolio, const Yet& yet,
                                   const EngineConfig& cfg,
                                   const simgpu::DeviceSpec& device,
                                   std::size_t gpu_count) {
  EnginePrediction p;
  p.kind = EngineKind::kMultiGpu;
  if (gpu_count == 0) {
    p.feasible = false;
    p.note = "gpu_count is zero";
    return p;
  }
  const unsigned loss_bytes = cfg.use_float ? 4 : 8;
  const simgpu::GpuCostModel model(device);
  const auto ranges = parallel::split_even(yet.trial_count(), gpu_count);
  double slowest = 0.0;
  for (const parallel::Range& r : ranges) {
    if (r.empty()) continue;
    const std::uint64_t footprint =
        tables_device_bytes(portfolio, loss_bytes) +
        yet_device_bytes(yet, r.begin, r.end) +
        static_cast<std::uint64_t>(portfolio.layer_count()) * r.size() *
            loss_bytes;
    if (footprint > device.global_mem_bytes) {
      p.feasible = false;
      p.note = "device slice exceeds device memory";
      return p;
    }
    const simgpu::KernelCost cost =
        optimized_range_cost(portfolio, yet, cfg, model, r.begin, r.end);
    if (!cost.feasible) {
      p.feasible = false;
      p.note = cost.infeasible_reason;
      return p;
    }
    slowest = std::max(slowest, cost.phases.total());
  }
  // Devices run concurrently; the platform finishes with the slowest.
  p.seconds = slowest;
  return p;
}

}  // namespace

AnalysisSession::AnalysisSession(ExecutionPolicy default_policy,
                                 std::size_t workers)
    : default_policy_(std::move(default_policy)),
      workers_(workers != 0
                   ? workers
                   : std::max(1u, std::thread::hardware_concurrency())) {}

parallel::ThreadPool& AnalysisSession::batch_pool() {
  // Built lazily: run()-only sessions (the CLI, most examples) never
  // pay for idle workers.
  std::lock_guard<std::mutex> lock(pool_mutex_);
  if (!pool_) pool_ = std::make_unique<parallel::ThreadPool>(workers_);
  return *pool_;
}

parallel::ThreadPool& AnalysisSession::compute_pool() {
  // Separate from the batch dispatch pool: a request executing on a
  // dispatch worker barriers on this pool (parallel_for), and a
  // barrier on the pool the caller occupies would deadlock. Shared by
  // concurrent requests; engine results do not depend on partitioning.
  std::lock_guard<std::mutex> lock(compute_pool_mutex_);
  if (!compute_pool_) {
    compute_pool_ = std::make_unique<parallel::ThreadPool>(workers_);
  }
  return *compute_pool_;
}

parallel::ThreadPool& AnalysisSession::shard_pool() {
  // Between the batch and compute pools in the layering: a request
  // (possibly on a batch worker) barriers on this pool for its trial
  // shards, and a shard task (on this pool) may barrier on the compute
  // pool — the multi-core engine's parallel_for. Sharing either
  // neighbour pool would let every worker block on work queued behind
  // itself.
  std::lock_guard<std::mutex> lock(shard_pool_mutex_);
  if (!shard_pool_) {
    shard_pool_ = std::make_unique<parallel::ThreadPool>(workers_);
  }
  return *shard_pool_;
}

EngineContext AnalysisSession::context_for(const Portfolio& portfolio,
                                           EngineKind kind,
                                           const EngineConfig& cfg,
                                           TablePins& pins) {
  // Which table precision the engine will bind (gpu_engines.cpp /
  // cpu_engines.cpp): only the optimised GPU kinds honour use_float.
  const bool wants_float =
      (kind == EngineKind::kGpuOptimized || kind == EngineKind::kMultiGpu) &&
      cfg.use_float;

  const std::size_t layers = portfolio.layer_count();
  const std::size_t elts = portfolio.elt_count();
  const void* elts_data = static_cast<const void*>(portfolio.elts().data());

  const auto cache_lookup = [&]() -> std::shared_ptr<void> {
    std::lock_guard<std::mutex> lock(tables_mutex_);
    const auto it = tables_.find(&portfolio);
    if (it == tables_.end()) return nullptr;
    PortfolioTables& entry = it->second;
    if (entry.layer_count != layers || entry.elt_count != elts ||
        entry.elts_data != elts_data) {
      // Address reuse: a different portfolio now lives where the
      // cached one did. Drop the stale entry and rebuild below.
      tables_.erase(it);
      return nullptr;
    }
    return wants_float ? std::shared_ptr<void>(entry.f32)
                       : std::shared_ptr<void>(entry.f64);
  };

  std::shared_ptr<void> cached = cache_lookup();
  if (!cached) {
    // Build outside the lock: concurrent requests against *different*
    // portfolios must not queue behind one expensive dense-table
    // build. A same-portfolio race builds twice; first insert wins.
    std::shared_ptr<void> built;
    if (wants_float) {
      built = std::make_shared<TableStore<float>>(
          build_tables<float>(portfolio));
    } else {
      built = std::make_shared<TableStore<double>>(
          build_tables<double>(portfolio));
    }
    std::lock_guard<std::mutex> lock(tables_mutex_);
    PortfolioTables& entry = tables_[&portfolio];
    if (entry.layer_count != layers || entry.elt_count != elts ||
        entry.elts_data != elts_data) {
      entry = PortfolioTables{};
      entry.layer_count = layers;
      entry.elt_count = elts;
      entry.elts_data = elts_data;
    }
    if (wants_float) {
      if (!entry.f32) {
        entry.f32 = std::static_pointer_cast<TableStore<float>>(built);
      }
      cached = entry.f32;
    } else {
      if (!entry.f64) {
        entry.f64 = std::static_pointer_cast<TableStore<double>>(built);
      }
      cached = entry.f64;
    }
  }

  EngineContext ctx;
  if (wants_float) {
    pins.f32 = std::static_pointer_cast<TableStore<float>>(cached);
    ctx.tables_f32 = pins.f32.get();
  } else {
    pins.f64 = std::static_pointer_cast<TableStore<double>>(cached);
    ctx.tables_f64 = pins.f64.get();
  }
  // Only the multi-core engine reads the context pool; attaching it
  // unconditionally would spawn a workers_-sized pool that sequential
  // and GPU-kind sessions never use.
  if (kind == EngineKind::kMultiCore) ctx.pool = &compute_pool();
  return ctx;
}

void AnalysisSession::invalidate_tables(const Portfolio& portfolio) {
  std::lock_guard<std::mutex> lock(tables_mutex_);
  tables_.erase(&portfolio);
}

std::size_t AnalysisSession::cached_table_portfolios() const {
  std::lock_guard<std::mutex> lock(tables_mutex_);
  return tables_.size();
}

std::size_t AnalysisSession::pending_requests() {
  // Dispatch-queue depth (batch requests queued or executing) plus
  // shard-queue depth (trial shards of in-flight sharded runs). An
  // admission controller in front of the session reads this instead of
  // guessing from its own submit counts — a request it never submitted
  // (another front-end, a direct run_batch_async caller) still shows
  // up here. Pools are built lazily; a pool that never existed has no
  // queue to count.
  std::size_t pending = 0;
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    if (pool_) pending += pool_->pending();
  }
  {
    std::lock_guard<std::mutex> lock(shard_pool_mutex_);
    if (shard_pool_) pending += shard_pool_->pending();
  }
  return pending;
}

std::vector<EnginePrediction> AnalysisSession::predict(
    const Portfolio& portfolio, const Yet& yet,
    const ExecutionPolicy& policy) const {
  std::vector<EnginePrediction> out;
  out.reserve(6);
  for (const EngineKind kind : all_engine_kinds()) {
    const EngineConfig cfg = resolved_config(policy, kind);
    switch (kind) {
      case EngineKind::kSequentialReference:
      case EngineKind::kSequentialFused:
      case EngineKind::kMultiCore: {
        EnginePrediction p;
        p.kind = kind;
        p.seconds = predict_cpu(portfolio, yet, cfg, kind);
        out.push_back(std::move(p));
        break;
      }
      case EngineKind::kGpuBasic:
        out.push_back(
            predict_gpu_basic(portfolio, yet, cfg, policy.gpu_device));
        break;
      case EngineKind::kGpuOptimized:
        out.push_back(
            predict_gpu_optimized(portfolio, yet, cfg, policy.gpu_device));
        break;
      case EngineKind::kMultiGpu:
        out.push_back(predict_multi_gpu(portfolio, yet, cfg,
                                        policy.multi_gpu_device,
                                        policy.gpu_count));
        break;
    }
  }
  return out;
}

EnginePrediction AnalysisSession::choose(const Portfolio& portfolio,
                                         const Yet& yet,
                                         const ExecutionPolicy& policy) const {
  const std::vector<EnginePrediction> predictions =
      predict(portfolio, yet, policy);
  const EnginePrediction* best = nullptr;
  for (const EnginePrediction& p : predictions) {
    if (!p.feasible) continue;
    if (!best || p.seconds < best->seconds) best = &p;
  }
  if (!best) {
    throw std::runtime_error(
        "AnalysisSession::choose: no feasible engine for workload");
  }
  return *best;
}

ShardPlan AnalysisSession::shard_plan(const Portfolio& portfolio,
                                      const Yet& yet,
                                      const ExecutionPolicy& policy) const {
  if (!policy.sharded()) {
    return ShardPlan{yet.trial_count(), yet.trial_count()};
  }
  return plan_shards(yet.trial_count(), policy.shard_trials,
                     policy.memory_budget_bytes,
                     shard_bytes_per_trial(portfolio.layer_count(),
                                           yet.mean_events_per_trial()));
}

SimulationResult AnalysisSession::run_sharded(const Engine& engine,
                                              const Portfolio& portfolio,
                                              const Yet& yet, EngineKind kind,
                                              const EngineConfig& cfg,
                                              const ShardPlan& plan,
                                              YltBlockSink* sink,
                                              bool materialize) {
  perf::Stopwatch wall;
  ShardMerger merger(portfolio.layer_count(), yet.trial_count(), sink,
                     materialize);

  // The context is shard-invariant (tables, compute pool); bind it
  // once and pin the tables for the whole wave instead of paying the
  // cache lock per shard.
  TablePins pins;
  const EngineContext base_ctx = context_for(portfolio, kind, cfg, pins);

  // One task per shard, pulled dynamically so shards pipeline across
  // the shard pool's workers; partial results stream into the merger
  // in completion order (the merge algebra is order-independent —
  // disjoint YLT blocks, integer op sums).
  parallel::parallel_for(
      shard_pool(), plan.shard_count(),
      [&](parallel::Range shards) {
        for (std::size_t i = shards.begin; i < shards.end; ++i) {
          EngineContext ctx = base_ctx;
          ctx.trials = plan.shard(i);
          try {
            ARA_FAILPOINT("shard.worker_throw", {
              (void)ara_fp;
              throw std::runtime_error("injected shard worker fault");
            });
            merger.add(engine.run(portfolio, yet, ctx));
          } catch (const DeadlineExceeded&) {
            // Typed: queue-level callers (the serve scheduler) turn it
            // into an explicit shed — wrapping would erase that.
            throw;
          } catch (const std::exception& e) {
            // Name the shard: a batch caller's future should say which
            // trial range failed, not just that "a worker" did.
            throw std::runtime_error(
                "shard [" + std::to_string(ctx.trials.begin) + ", " +
                std::to_string(ctx.trials.end) + ") failed: " + e.what());
          }
        }
      },
      parallel::Schedule::kDynamic, /*chunk=*/1);

  SimulationResult merged = merger.finish();
  const double elapsed = wall.seconds();

  // Reconstitute the monolithic accounting bitwise: op counts and the
  // simulated timeline are pure functions of the full workload, so a
  // cost-only replay over the whole range computes exactly what the
  // monolithic run would have reported (DESIGN.md §5). The per-shard
  // simulated times (which include real per-shard launch overhead)
  // stay available through ShardMerger::sharded_simulated_seconds.
  EngineContext cost_ctx;
  cost_ctx.cost_only = true;
  const SimulationResult mono = engine.run(portfolio, yet, cost_ctx);
  merged.ops = mono.ops;
  merged.simulated_phases = mono.simulated_phases;
  merged.simulated_seconds = mono.simulated_seconds;
  merged.engine_name = mono.engine_name;
  merged.devices = mono.devices;
  merged.simd_isa = mono.simd_isa;
  merged.wall_seconds = elapsed;
  return merged;
}

const Engine& AnalysisSession::engine_for(EngineKind kind,
                                          const ExecutionPolicy& policy) {
  const EngineConfig cfg = resolved_config(policy, kind);
  const std::string key = engine_cache_key(kind, cfg, policy);
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = engines_.find(key);
  if (it == engines_.end()) {
    ExecutionPolicy concrete = policy;
    concrete.engine = kind;
    concrete.config = cfg;
    it = engines_.emplace(key, make_engine(concrete)).first;
  }
  return *it->second;
}

AnalysisResult AnalysisSession::run(const AnalysisRequest& request) {
  // Deadline first, before any validation or table work: an expired
  // request must be shed with zero compute spent on it. For batch
  // submissions this runs when the dispatch pool picks the request up,
  // so a deadline that passes while the request queues surfaces as
  // DeadlineExceeded through its own future and the engines never see
  // the work.
  if (request.deadline &&
      std::chrono::steady_clock::now() >= *request.deadline) {
    throw DeadlineExceeded("AnalysisSession: deadline expired before "
                           "dispatch for request \"" +
                           request.label + "\"");
  }
  if (request.portfolio == nullptr || request.yet == nullptr) {
    throw std::invalid_argument(
        "AnalysisSession::run: request needs a portfolio and a yet");
  }
  if (!request.core_simulation && !request.secondary_uncertainty &&
      request.reinstatement_terms.empty()) {
    throw std::invalid_argument(
        "AnalysisSession::run: request disables the core simulation but "
        "asks for no extension — nothing to run");
  }
  return run_resolved(request,
                      request.policy ? *request.policy : default_policy_);
}

AnalysisResult AnalysisSession::run_resolved(const AnalysisRequest& request,
                                             const ExecutionPolicy& policy) {
  const Portfolio& portfolio = *request.portfolio;
  const Yet& yet = *request.yet;

  AnalysisResult result;
  result.label = request.label;

  // Validate the metric plan and retention before any work runs.
  request.metrics.validate();
  if (request.ylt_retention == YltRetention::kSpillToFile &&
      request.ylt_path.empty()) {
    throw std::invalid_argument(
        "AnalysisSession: YltRetention::kSpillToFile requires "
        "AnalysisRequest::ylt_path");
  }

  const ShardPlan plan = shard_plan(portfolio, yet, policy);
  const bool sharded_run = policy.sharded() && plan.shard_count() > 1;
  const bool will_simulate =
      request.core_simulation || request.secondary_uncertainty.has_value();

  if (request.stopping) {
    if (!will_simulate) {
      throw std::invalid_argument(
          "AnalysisSession: adaptive stopping needs the core simulation "
          "(or secondary uncertainty) — an extension-only request has no "
          "trial loop to stop");
    }
    return run_adaptive(request, policy, plan);
  }

  if (request.ylt_retention == YltRetention::kSpillToFile && !will_simulate) {
    // An extension-only run produces no YLT; silently writing nothing
    // would surface as a confusing open-failure at the caller's reload.
    throw std::invalid_argument(
        "AnalysisSession: YltRetention::kSpillToFile needs the core "
        "simulation (or secondary uncertainty) — an extension-only "
        "request produces no YLT to spill");
  }
  const bool metrics_feasible = will_simulate && request.metrics.any() &&
                                portfolio.layer_count() > 0 &&
                                yet.trial_count() > 0;

  // A sharded run that does not keep its YLT streams every shard block
  // straight into the metric reducers and/or the spill writer and
  // drops it — the layers x trials table is never allocated
  // (DESIGN.md §6). Monolithic runs (and kKeep) compute metrics and
  // spill from the full table after the fact; either way the numbers
  // agree (bitwise on the order-statistic family, <= 1e-12 relative on
  // the mean family).
  const bool stream_blocks =
      sharded_run && will_simulate &&
      request.ylt_retention != YltRetention::kKeep;

  // A failed spill must not leave its file behind: the chunk writer
  // pre-extends the file to full size under a valid header before any
  // shard completes, so a leftover from an aborted run would reload as
  // silently-zero losses. Armed only once a writer has truncated the
  // path (a failure before that must not delete a pre-existing file
  // this run never touched); disarmed after a successful close.
  struct SpillCleanup {
    const char* path = nullptr;
    ~SpillCleanup() {
      if (path != nullptr) std::remove(path);
    }
  } spill_cleanup;

  std::optional<metrics::StreamingMetricsReducer> reducer;
  std::unique_ptr<io::YltChunkWriter> spill_writer;
  std::optional<SpillSink> spill_sink;
  FanoutSink fanout;
  if (stream_blocks) {
    if (metrics_feasible) {
      reducer.emplace(layer_labels(portfolio), yet.trial_count(),
                      request.metrics);
      fanout.attach(&*reducer);
    }
    if (request.ylt_retention == YltRetention::kSpillToFile) {
      spill_writer = std::make_unique<io::YltChunkWriter>(
          request.ylt_path, portfolio.layer_count(), yet.trial_count());
      spill_cleanup.path = request.ylt_path.c_str();
      spill_sink.emplace(*spill_writer);
      fanout.attach(&*spill_sink);
    }
  }
  YltBlockSink* const sink = stream_blocks ? &fanout : nullptr;

  const auto execute = [&](const Engine& engine, EngineKind ctx_kind,
                           const EngineConfig& cfg) {
    // A plan that collapses to one shard IS the monolithic run; the
    // merge copy and the cost-only replay would buy nothing.
    if (sharded_run) {
      result.simulation = run_sharded(engine, portfolio, yet, ctx_kind, cfg,
                                      plan, sink, /*materialize=*/!stream_blocks);
      result.shard_count = plan.shard_count();
    } else {
      TablePins pins;
      result.simulation = engine.run(
          portfolio, yet, context_for(portfolio, ctx_kind, cfg, pins));
    }
  };

  if (request.secondary_uncertainty) {
    // The extension is itself an Engine with a single implementation;
    // it replaces the policy's engine choice. It still draws the
    // session's cached double-precision tables, and shards like the
    // core engines (its damage draws are keyed by global trial index,
    // so shard boundaries do not move them).
    const ext::SecondaryUncertaintyEngine engine(*request.secondary_uncertainty);
    execute(engine, EngineKind::kSequentialFused,
            resolved_config(policy, EngineKind::kSequentialFused));
  } else if (request.core_simulation) {
    EngineKind kind;
    if (policy.engine) {
      kind = *policy.engine;
    } else {
      const EnginePrediction best = choose(portfolio, yet, policy);
      kind = best.kind;
      result.auto_selected = true;
      result.predicted_seconds = best.seconds;
    }
    result.engine = kind;
    execute(engine_for(kind, policy), kind, resolved_config(policy, kind));
  }
  if (will_simulate) result.trials_executed = yet.trial_count();

  if (metrics_feasible) {
    result.metrics =
        stream_blocks
            ? reducer->finish()
            : metrics::compute_metrics(result.simulation.ylt,
                                       layer_labels(portfolio),
                                       request.metrics);
  }

  if (will_simulate &&
      request.ylt_retention == YltRetention::kSpillToFile) {
    if (stream_blocks) {
      spill_writer->close();
    } else {
      // Monolithic table resident: spill it as one block. Same writer,
      // same bytes as the streamed path.
      io::YltChunkWriter writer(request.ylt_path,
                                result.simulation.ylt.layer_count(),
                                result.simulation.ylt.trial_count());
      spill_cleanup.path = request.ylt_path.c_str();
      writer.append(result.simulation.ylt, 0);
      writer.close();
    }
    spill_cleanup.path = nullptr;  // complete and coverage-checked
    result.ylt_path = request.ylt_path;
  }
  if (will_simulate && request.ylt_retention != YltRetention::kKeep) {
    // Metric-only / spilled runs hand back an empty table; with the
    // streamed path above it was never allocated in the first place.
    result.simulation.ylt = Ylt();
  }

  if (!request.reinstatement_terms.empty()) {
    const ext::ReinstatementEngine engine(portfolio,
                                          request.reinstatement_terms);
    // The reinstatement pass draws the session's cached
    // double-precision tables like the core engines do, and shards the
    // same way (each trial's outcome is independent, so partial blocks
    // reassemble bitwise).
    TablePins pins;
    const TableStore<double>* tables =
        context_for(portfolio, EngineKind::kSequentialFused,
                    resolved_config(policy, EngineKind::kSequentialFused),
                    pins)
            .tables_f64;
    if (policy.sharded() && plan.shard_count() > 1) {
      ext::ReinstatementResult full(portfolio.layer_count(),
                                    yet.trial_count());
      parallel::parallel_for(
          shard_pool(), plan.shard_count(),
          [&](parallel::Range shards) {
            for (std::size_t i = shards.begin; i < shards.end; ++i) {
              const TrialRange r = plan.shard(i);
              // Disjoint trial blocks: concurrent merges write
              // non-overlapping rows.
              full.merge_trial_block(engine.run(yet, tables, r), r.begin);
            }
          },
          parallel::Schedule::kDynamic, /*chunk=*/1);
      result.reinstatements = std::move(full);
    } else {
      result.reinstatements = engine.run(yet, tables);
    }
  }
  return result;
}

AnalysisResult AnalysisSession::run_adaptive(const AnalysisRequest& request,
                                             const ExecutionPolicy& policy,
                                             const ShardPlan& plan) {
  const Portfolio& portfolio = *request.portfolio;
  const Yet& yet = *request.yet;
  const metrics::StoppingSpec& spec = *request.stopping;
  spec.validate();

  if (request.ylt_retention == YltRetention::kSpillToFile) {
    // The chunk writer pre-extends the file to the full fixed trial
    // count under a valid header; an early stop would leave the unrun
    // suffix reloading as silently-zero losses.
    throw std::invalid_argument(
        "AnalysisSession: adaptive stopping cannot spill the YLT — the "
        "spill format is sized for the fixed trial count");
  }
  if (!request.reinstatement_terms.empty()) {
    throw std::invalid_argument(
        "AnalysisSession: adaptive stopping does not compose with "
        "reinstatement pricing (the extension prices the fixed workload)");
  }
  if (portfolio.layer_count() == 0) {
    throw std::invalid_argument(
        "AnalysisSession: adaptive stopping needs at least one layer — "
        "the stopping rule watches the per-trial portfolio loss");
  }

  AnalysisResult result;
  result.label = request.label;

  const std::size_t total = yet.trial_count();
  const std::size_t budget =
      spec.max_trials != 0 ? std::min(spec.max_trials, total) : total;
  // Wave granularity: the policy's shard size when it shards, else a
  // sixteenth of the budget so the schedule has room to stop early.
  const std::size_t wave =
      plan.shard_trials != 0 && plan.shard_trials < total
          ? plan.shard_trials
          : std::max<std::size_t>(1, (budget + 15) / 16);
  metrics::AdaptiveController controller(spec, total, wave);

  const bool keep = request.ylt_retention == YltRetention::kKeep;
  const bool metrics_feasible = request.metrics.any();
  // The reducer is sized for the whole budget; its reservoirs are
  // exact for any stopped prefix (streaming.hpp), so finish(executed)
  // below finalizes whatever the oracle settled on.
  std::optional<metrics::StreamingMetricsReducer> reducer;
  if (!keep && metrics_feasible) {
    reducer.emplace(layer_labels(portfolio), budget, request.metrics);
  }

  // Engine resolution mirrors the fixed path.
  std::optional<ext::SecondaryUncertaintyEngine> su_engine;
  const Engine* engine = nullptr;
  EngineKind ctx_kind = EngineKind::kSequentialFused;
  if (request.secondary_uncertainty) {
    su_engine.emplace(*request.secondary_uncertainty);
    engine = &*su_engine;
  } else {
    if (policy.engine) {
      ctx_kind = *policy.engine;
    } else {
      const EnginePrediction best = choose(portfolio, yet, policy);
      ctx_kind = best.kind;
      result.auto_selected = true;
      result.predicted_seconds = best.seconds;
    }
    result.engine = ctx_kind;
    engine = &engine_for(ctx_kind, policy);
  }
  const EngineConfig cfg = resolved_config(policy, ctx_kind);

  perf::Stopwatch wall;
  TablePins pins;
  const EngineContext base_ctx = context_for(portfolio, ctx_kind, cfg, pins);

  const std::size_t layers = portfolio.layer_count();
  std::vector<SimulationResult> partials;  // kKeep only
  std::size_t executed = 0;
  std::size_t shards_run = 0;

  // The wave loop: simulate up to the frontier, feed the oracle, let
  // it stop or extend. Shards within a wave run concurrently on the
  // shard pool; waves are sequential by construction (each one exists
  // only because the previous one failed to satisfy the rule).
  while (!controller.stopped()) {
    const std::size_t target = controller.frontier();
    const std::vector<TrialRange> ranges =
        shard_ranges(executed, target, wave);
    std::vector<SimulationResult> wave_results(ranges.size());
    parallel::parallel_for(
        shard_pool(), ranges.size(),
        [&](parallel::Range shards) {
          for (std::size_t i = shards.begin; i < shards.end; ++i) {
            EngineContext ctx = base_ctx;
            ctx.trials = ranges[i];
            try {
              wave_results[i] = engine->run(portfolio, yet, ctx);
            } catch (const DeadlineExceeded&) {
              throw;
            } catch (const std::exception& e) {
              throw std::runtime_error(
                  "shard [" + std::to_string(ctx.trials.begin) + ", " +
                  std::to_string(ctx.trials.end) + ") failed: " + e.what());
            }
          }
        },
        parallel::Schedule::kDynamic, /*chunk=*/1);

    for (SimulationResult& partial : wave_results) {
      const std::size_t bt = partial.ylt.trial_count();
      // Per-trial portfolio loss, layers outer — the association the
      // streaming reducer uses, so the oracle sees bitwise the same
      // sample a monolithic portfolio reduction would.
      std::vector<double> sums(bt, 0.0);
      for (std::size_t l = 0; l < layers; ++l) {
        const double* row = partial.ylt.layer_annual(l);
        for (std::size_t t = 0; t < bt; ++t) sums[t] += row[t];
      }
      controller.observe(partial.trial_begin, sums);
      if (reducer) reducer->consume(partial.ylt, partial.trial_begin);
      if (keep) partials.push_back(std::move(partial));
    }
    shards_run += ranges.size();
    executed = target;
    controller.advance();
  }

  SimulationResult merged;
  if (keep) {
    ShardMerger merger(layers, executed, nullptr, /*materialize=*/true);
    for (const SimulationResult& partial : partials) merger.add(partial);
    merged = merger.finish();
  }
  const double elapsed = wall.seconds();

  // Monolithic accounting of what actually ran: cost-only replay over
  // the executed prefix (engines honor ctx.trials in cost-only mode),
  // exactly as the fixed sharded path replays the full range.
  EngineContext cost_ctx;
  cost_ctx.cost_only = true;
  cost_ctx.trials = TrialRange{0, executed};
  const SimulationResult mono = engine->run(portfolio, yet, cost_ctx);
  merged.ops = mono.ops;
  merged.simulated_phases = mono.simulated_phases;
  merged.simulated_seconds = mono.simulated_seconds;
  merged.engine_name = mono.engine_name;
  merged.devices = mono.devices;
  merged.simd_isa = mono.simd_isa;
  merged.wall_seconds = elapsed;

  result.simulation = std::move(merged);
  result.shard_count = shards_run;
  result.trials_executed = executed;
  result.stopped_early = executed < total;
  result.half_widths = controller.statuses();

  if (metrics_feasible) {
    result.metrics =
        keep ? metrics::compute_metrics(result.simulation.ylt,
                                        layer_labels(portfolio),
                                        request.metrics)
             : reducer->finish(executed);
  }
  return result;
}

RaceResult AnalysisSession::race(std::span<const RaceEntry> entries,
                                 const Yet& yet, const RaceSpec& spec) {
  if (entries.size() < 2) {
    throw std::invalid_argument(
        "AnalysisSession::race: need at least two candidates");
  }
  for (const RaceEntry& entry : entries) {
    if (entry.portfolio == nullptr || entry.portfolio->layer_count() == 0) {
      throw std::invalid_argument(
          "AnalysisSession::race: every entry needs a portfolio with at "
          "least one layer");
    }
  }
  // Reuse the StoppingSpec validation for the shared knobs (the race
  // has no tolerance — elimination is pairwise — so a placeholder 1.0
  // satisfies the range check).
  metrics::StoppingSpec shape;
  shape.targets = {spec.objective};
  shape.relative_tolerance = 1.0;
  shape.confidence = spec.confidence;
  shape.min_trials = spec.min_trials;
  shape.max_trials = spec.max_trials;
  shape.wave_growth = spec.wave_growth;
  shape.bootstrap_reps = spec.bootstrap_reps;
  shape.seed = spec.seed;
  shape.validate();

  const std::size_t total = yet.trial_count();
  if (total == 0) {
    throw std::invalid_argument("AnalysisSession::race: workload has no trials");
  }
  const std::size_t budget =
      spec.max_trials != 0 ? std::min(spec.max_trials, total) : total;
  const ExecutionPolicy& pol = spec.policy ? *spec.policy : default_policy_;
  const std::size_t wave =
      pol.shard_trials != 0 && pol.shard_trials < total
          ? pol.shard_trials
          : std::max<std::size_t>(1, (budget + 15) / 16);
  const auto clamp_to_wave = [&](std::size_t t) {
    if (t >= budget) return budget;
    const std::size_t waves = (t + wave - 1) / wave;
    if (waves > budget / wave) return budget;
    return std::min(budget, waves * wave);
  };

  // Family-wise confidence by union bound: each arm's interval runs at
  // 1 - (1 - c) / K, so the probability any of the K intervals misses
  // is at most 1 - c.
  const double per_arm_confidence =
      1.0 - (1.0 - spec.confidence) / static_cast<double>(entries.size());
  const double z = metrics::z_for_confidence(per_arm_confidence);

  struct ArmState {
    const Portfolio* portfolio = nullptr;
    const Engine* engine = nullptr;
    TablePins pins;
    EngineContext base_ctx;
    std::vector<double> losses;
    metrics::TargetStatus status;
    std::size_t executed = 0;
    bool active = true;
    std::size_t eliminated_at = 0;
  };
  std::vector<ArmState> arms(entries.size());
  for (std::size_t k = 0; k < entries.size(); ++k) {
    ArmState& arm = arms[k];
    arm.portfolio = entries[k].portfolio;
    const EngineKind kind =
        pol.engine ? *pol.engine : choose_engine(*arm.portfolio, yet, pol);
    arm.engine = &engine_for(kind, pol);
    arm.base_ctx = context_for(*arm.portfolio, kind,
                               resolved_config(pol, kind), arm.pins);
  }

  struct ArmTask {
    std::size_t arm = 0;
    TrialRange range;
  };

  std::size_t frontier =
      clamp_to_wave(std::max<std::size_t>(spec.min_trials, 1));
  bool separated = false;
  for (;;) {
    // Extend every surviving arm to the shared frontier (common random
    // numbers: all arms price the same simulated years), flattened so
    // shards of different arms interleave freely on the pool.
    std::vector<ArmTask> tasks;
    for (std::size_t k = 0; k < arms.size(); ++k) {
      if (!arms[k].active) continue;
      arms[k].losses.resize(frontier);
      for (const TrialRange& r :
           shard_ranges(arms[k].executed, frontier, wave)) {
        tasks.push_back({k, r});
      }
    }
    parallel::parallel_for(
        shard_pool(), tasks.size(),
        [&](parallel::Range slots) {
          for (std::size_t i = slots.begin; i < slots.end; ++i) {
            ArmState& arm = arms[tasks[i].arm];
            EngineContext ctx = arm.base_ctx;
            ctx.trials = tasks[i].range;
            try {
              const SimulationResult partial =
                  arm.engine->run(*arm.portfolio, yet, ctx);
              const std::size_t bt = partial.ylt.trial_count();
              // Disjoint slices per task: lock-free writes.
              double* out = arm.losses.data() + partial.trial_begin;
              for (std::size_t t = 0; t < bt; ++t) out[t] = 0.0;
              for (std::size_t l = 0; l < partial.ylt.layer_count(); ++l) {
                const double* row = partial.ylt.layer_annual(l);
                for (std::size_t t = 0; t < bt; ++t) out[t] += row[t];
              }
            } catch (const std::exception& e) {
              throw std::runtime_error(
                  "race arm " + std::to_string(tasks[i].arm) + " shard [" +
                  std::to_string(ctx.trials.begin) + ", " +
                  std::to_string(ctx.trials.end) + ") failed: " + e.what());
            }
          }
        },
        parallel::Schedule::kDynamic, /*chunk=*/1);

    std::size_t active = 0;
    for (std::size_t k = 0; k < arms.size(); ++k) {
      ArmState& arm = arms[k];
      if (!arm.active) continue;
      arm.executed = frontier;
      // Per-arm bootstrap substream: decorrelated across arms so a
      // re-ordering of the entries never changes another arm's SE.
      arm.status = metrics::evaluate_target(
          spec.objective, {arm.losses.data(), frontier}, z,
          /*relative_tolerance=*/1.0, spec.bootstrap_reps,
          spec.seed + (k + 1) * 0x9e3779b97f4a7c15ULL);
      ++active;
    }

    // Successive elimination. For minimization: the best possible arm
    // is the one with the smallest upper bound; any arm whose *lower*
    // bound clears it cannot be the winner at this confidence. The arm
    // attaining the best bound can never eliminate itself (its lower
    // bound is below its own upper bound), so one arm always survives.
    // A one-trial frontier has no spread estimate, so elimination
    // waits for n >= 2.
    if (frontier >= 2) {
      double best_bound = spec.minimize
                              ? std::numeric_limits<double>::infinity()
                              : -std::numeric_limits<double>::infinity();
      for (const ArmState& arm : arms) {
        if (!arm.active) continue;
        if (spec.minimize) {
          best_bound =
              std::min(best_bound, arm.status.estimate + arm.status.half_width);
        } else {
          best_bound =
              std::max(best_bound, arm.status.estimate - arm.status.half_width);
        }
      }
      for (ArmState& arm : arms) {
        if (!arm.active) continue;
        const bool out =
            spec.minimize
                ? arm.status.estimate - arm.status.half_width > best_bound
                : arm.status.estimate + arm.status.half_width < best_bound;
        if (out) {
          arm.active = false;
          arm.eliminated_at = frontier;
          --active;
        }
      }
    }

    if (active <= 1) {
      separated = true;
      break;
    }
    if (frontier >= budget) break;
    const double grown =
        std::ceil(static_cast<double>(frontier) * spec.wave_growth);
    std::size_t next =
        grown >= static_cast<double>(budget)
            ? budget
            : std::max(frontier + 1, static_cast<std::size_t>(grown));
    next = clamp_to_wave(next);
    if (next <= frontier) next = clamp_to_wave(frontier + 1);
    frontier = next;
  }

  RaceResult result;
  result.separated = separated;
  result.arms.reserve(arms.size());
  const ArmState* best = nullptr;
  std::size_t best_index = 0;
  for (std::size_t k = 0; k < arms.size(); ++k) {
    const ArmState& arm = arms[k];
    RaceArm out;
    out.label = entries[k].label;
    out.estimate = arm.status.estimate;
    out.half_width = arm.status.half_width;
    out.trials_executed = arm.executed;
    out.eliminated = !arm.active;
    out.eliminated_at_trials = arm.eliminated_at;
    result.arms.push_back(std::move(out));
    result.total_trials += arm.executed;
    if (!arm.active) continue;
    const bool better =
        best == nullptr ||
        (spec.minimize ? arm.status.estimate < best->status.estimate
                       : arm.status.estimate > best->status.estimate);
    if (better) {
      best = &arm;
      best_index = k;
    }
  }
  result.winner = best_index;
  return result;
}

std::vector<std::future<AnalysisResult>> AnalysisSession::run_batch_async(
    std::span<const AnalysisRequest> requests) {
  std::vector<std::future<AnalysisResult>> futures;
  futures.reserve(requests.size());
  parallel::ThreadPool& pool = batch_pool();
  for (const AnalysisRequest& request : requests) {
    // Each request owns a promise: a failure resolves only its own
    // future, so concurrent batches on one session never observe each
    // other's exceptions (wait_idle's pool-wide error capture would).
    auto task = std::make_shared<std::packaged_task<AnalysisResult()>>(
        [this, request] { return run(request); });
    futures.push_back(task->get_future());
    pool.submit([task] { (*task)(); });
  }
  return futures;
}

std::vector<AnalysisResult> AnalysisSession::run_batch(
    std::span<const AnalysisRequest> requests) {
  std::vector<std::future<AnalysisResult>> futures = run_batch_async(requests);
  std::vector<AnalysisResult> results;
  results.reserve(futures.size());
  std::exception_ptr first_error;
  for (std::future<AnalysisResult>& f : futures) {
    try {
      results.push_back(f.get());
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
      results.emplace_back();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace ara
