// Year Event Table (YET): the pre-simulated trial database.
//
// Storage is CSR-style: one flat, cache-friendly array of
// (event, timestamp) occurrences plus per-trial offsets, so trials may
// have variable length (the paper quotes 800-1500 events per trial) and
// a contiguous trial range can be handed to a device without copying.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/types.hpp"

namespace ara {

/// Immutable Year Event Table.
class Yet {
 public:
  Yet() = default;

  /// Builds a YET from per-trial occurrence vectors. Each trial's
  /// occurrences must be sorted by ascending timestamp (the aggregate
  /// terms are sequence-dependent) and every event id must be in
  /// [1, catalogue_size]; violations throw std::invalid_argument.
  Yet(const std::vector<std::vector<EventOccurrence>>& trials,
      EventId catalogue_size);

  /// Builds directly from CSR arrays (used by deserialisation).
  /// `offsets` has trial_count()+1 entries with offsets.front()==0 and
  /// offsets.back()==occurrences.size().
  Yet(std::vector<EventOccurrence> occurrences,
      std::vector<std::size_t> offsets, EventId catalogue_size);

  std::size_t trial_count() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// Total number of occurrences across all trials.
  std::size_t occurrence_count() const noexcept { return occurrences_.size(); }

  /// Mean events per trial (0 when empty).
  double mean_events_per_trial() const noexcept {
    return trial_count() == 0
               ? 0.0
               : static_cast<double>(occurrence_count()) /
                     static_cast<double>(trial_count());
  }

  EventId catalogue_size() const noexcept { return catalogue_size_; }

  /// Occurrences of one trial, time-ordered.
  std::span<const EventOccurrence> trial(TrialId t) const {
    return {occurrences_.data() + offsets_[t],
            offsets_[t + 1] - offsets_[t]};
  }

  std::size_t trial_size(TrialId t) const {
    return offsets_[t + 1] - offsets_[t];
  }

  const std::vector<EventOccurrence>& occurrences() const noexcept {
    return occurrences_;
  }
  const std::vector<std::size_t>& offsets() const noexcept {
    return offsets_;
  }

  /// Resident bytes (model input for device-memory budgeting).
  std::size_t memory_bytes() const noexcept {
    return occurrences_.size() * sizeof(EventOccurrence) +
           offsets_.size() * sizeof(std::size_t);
  }

 private:
  void validate() const;

  std::vector<EventOccurrence> occurrences_;
  std::vector<std::size_t> offsets_;  // trial_count()+1 entries
  EventId catalogue_size_ = 0;
};

}  // namespace ara
