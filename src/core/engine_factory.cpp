#include "core/engine_factory.hpp"

#include <stdexcept>

#include "core/cpu_engines.hpp"
#include "core/gpu_engines.hpp"
#include "core/reference_engine.hpp"

namespace ara {

std::vector<EngineKind> all_engine_kinds() {
  return {EngineKind::kSequentialReference, EngineKind::kSequentialFused,
          EngineKind::kMultiCore,           EngineKind::kGpuBasic,
          EngineKind::kGpuOptimized,        EngineKind::kMultiGpu};
}

std::string engine_kind_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kSequentialReference:
      return "sequential_reference";
    case EngineKind::kSequentialFused:
      return "sequential_fused";
    case EngineKind::kMultiCore:
      return "multicore_cpu";
    case EngineKind::kGpuBasic:
      return "gpu_basic";
    case EngineKind::kGpuOptimized:
      return "gpu_optimized";
    case EngineKind::kMultiGpu:
      return "multi_gpu_optimized";
  }
  throw std::invalid_argument("engine_kind_name: unknown kind");
}

std::optional<EngineKind> engine_kind_from_name(const std::string& name) {
  for (const EngineKind kind : all_engine_kinds()) {
    if (engine_kind_name(kind) == name) return kind;
  }
  return std::nullopt;
}

EngineConfig resolved_config(const ExecutionPolicy& policy, EngineKind kind) {
  EngineConfig cfg = policy.config ? *policy.config : paper_config(kind);
  // The policy's SIMD knob is authoritative over the embedded config's
  // copy (the config field exists only because engines are constructed
  // from EngineConfig alone).
  cfg.simd = policy.simd;
  cfg.simd_width = policy.simd_width;
  return cfg;
}

std::unique_ptr<Engine> make_engine(const ExecutionPolicy& policy) {
  if (!policy.engine) {
    throw std::invalid_argument(
        "make_engine: policy.engine is kAuto; auto-selection needs a "
        "workload — use AnalysisSession");
  }
  const EngineKind kind = *policy.engine;
  const EngineConfig config = resolved_config(policy, kind);
  switch (kind) {
    case EngineKind::kSequentialReference:
      return std::make_unique<ReferenceEngine>(config);
    case EngineKind::kSequentialFused:
      return std::make_unique<FusedSequentialEngine>(config);
    case EngineKind::kMultiCore:
      return std::make_unique<MultiCoreEngine>(config);
    case EngineKind::kGpuBasic:
      return std::make_unique<GpuBasicEngine>(policy.gpu_device, config);
    case EngineKind::kGpuOptimized:
      return std::make_unique<GpuOptimizedEngine>(policy.gpu_device, config);
    case EngineKind::kMultiGpu:
      return std::make_unique<MultiGpuEngine>(policy.multi_gpu_device,
                                              policy.gpu_count, config);
  }
  throw std::invalid_argument("make_engine: unknown kind");
}

EngineConfig paper_config(EngineKind kind) {
  EngineConfig cfg;
  switch (kind) {
    case EngineKind::kSequentialReference:
    case EngineKind::kSequentialFused:
      cfg.cores = 1;
      break;
    case EngineKind::kMultiCore:
      cfg.cores = 8;
      cfg.threads_per_core = 256;
      break;
    case EngineKind::kGpuBasic:
      cfg.block_threads = 256;  // Fig. 2's best point
      break;
    case EngineKind::kGpuOptimized:
    case EngineKind::kMultiGpu:
      cfg.block_threads = 32;  // Fig. 4's best point (the warp size)
      cfg.chunk_size = 88;
      cfg.use_float = true;
      cfg.unroll = true;
      cfg.use_registers = true;
      cfg.chunking = true;
      break;
  }
  return cfg;
}

}  // namespace ara
