#include "core/engine_factory.hpp"

#include <stdexcept>

#include "core/cpu_engines.hpp"
#include "core/gpu_engines.hpp"
#include "core/reference_engine.hpp"

namespace ara {

std::vector<EngineKind> all_engine_kinds() {
  return {EngineKind::kSequentialReference, EngineKind::kSequentialFused,
          EngineKind::kMultiCore,           EngineKind::kGpuBasic,
          EngineKind::kGpuOptimized,        EngineKind::kMultiGpu};
}

std::string engine_kind_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kSequentialReference:
      return "sequential_reference";
    case EngineKind::kSequentialFused:
      return "sequential_fused";
    case EngineKind::kMultiCore:
      return "multicore_cpu";
    case EngineKind::kGpuBasic:
      return "gpu_basic";
    case EngineKind::kGpuOptimized:
      return "gpu_optimized";
    case EngineKind::kMultiGpu:
      return "multi_gpu_optimized";
  }
  throw std::invalid_argument("engine_kind_name: unknown kind");
}

std::unique_ptr<Engine> make_engine(EngineKind kind,
                                    const EngineConfig& config,
                                    const simgpu::DeviceSpec& device,
                                    std::size_t gpu_count,
                                    const simgpu::DeviceSpec& multi_gpu_device) {
  switch (kind) {
    case EngineKind::kSequentialReference:
      return std::make_unique<ReferenceEngine>(config);
    case EngineKind::kSequentialFused:
      return std::make_unique<FusedSequentialEngine>(config);
    case EngineKind::kMultiCore:
      return std::make_unique<MultiCoreEngine>(config);
    case EngineKind::kGpuBasic:
      return std::make_unique<GpuBasicEngine>(device, config);
    case EngineKind::kGpuOptimized:
      return std::make_unique<GpuOptimizedEngine>(device, config);
    case EngineKind::kMultiGpu:
      return std::make_unique<MultiGpuEngine>(multi_gpu_device, gpu_count,
                                              config);
  }
  throw std::invalid_argument("make_engine: unknown kind");
}

EngineConfig paper_config(EngineKind kind) {
  EngineConfig cfg;
  switch (kind) {
    case EngineKind::kSequentialReference:
    case EngineKind::kSequentialFused:
      cfg.cores = 1;
      break;
    case EngineKind::kMultiCore:
      cfg.cores = 8;
      cfg.threads_per_core = 256;
      break;
    case EngineKind::kGpuBasic:
      cfg.block_threads = 256;  // Fig. 2's best point
      break;
    case EngineKind::kGpuOptimized:
    case EngineKind::kMultiGpu:
      cfg.block_threads = 32;  // Fig. 4's best point (the warp size)
      cfg.chunk_size = 88;
      cfg.use_float = true;
      cfg.unroll = true;
      cfg.use_registers = true;
      cfg.chunking = true;
      break;
  }
  return cfg;
}

}  // namespace ara
