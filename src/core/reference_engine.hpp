// ReferenceEngine: literal transcription of the paper's Algorithm 1
// (lines 1-32) in double precision — the sequential CPU implementation
// whose 337.47 s headline anchors every speed-up in the paper, and the
// correctness oracle for every other engine in this library.
#pragma once

#include "core/engine.hpp"

namespace ara {

class ReferenceEngine final : public Engine {
 public:
  explicit ReferenceEngine(EngineConfig config = {}) : config_(config) {}

  std::string name() const override { return "sequential_reference"; }

  using Engine::run;
  SimulationResult run(const Portfolio& portfolio, const Yet& yet,
                       const EngineContext& context) const override;

 private:
  EngineConfig config_;
};

}  // namespace ara
