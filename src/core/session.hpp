// AnalysisSession: the batched, policy-driven front door of the
// library (see DESIGN.md §3).
//
// The paper's engines expose one shape of work — a single synchronous
// Engine::run(portfolio, yet). A production service prices many
// analyses against a shared pre-simulated YET, picks an engine per
// workload, and amortises engine construction, loss-table builds and
// dispatch threads across calls. The session owns exactly that shared
// state:
//
//   * a default ExecutionPolicy (per-request overridable),
//   * a cache of constructed engines, keyed by kind + configuration,
//   * a cache of built TableStores, keyed by portfolio identity +
//     precision, so a batch of requests against one portfolio binds
//     the direct-access tables exactly once (DESIGN.md §4),
//   * a persistent compute thread pool handed to engines through
//     EngineContext (distinct from the run_batch dispatch pool — an
//     engine running *on* the dispatch pool must not barrier on it),
//   * the cost models, used by ExecutionPolicy::kAuto to predict the
//     simulated cost of every engine kind on the concrete workload
//     and run the cheapest feasible one.
//
// Engine::run stays available as the thin one-shot compatibility
// layer; the session is a superset (metrics, extensions, batching).
#pragma once

#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/analysis_request.hpp"
#include "core/engine_factory.hpp"
#include "core/metrics/metrics_spec.hpp"
#include "core/shard.hpp"
#include "core/trial_math.hpp"
#include "parallel/thread_pool.hpp"

namespace ara {

/// Everything one analysis produced: the raw simulation output (YLT +
/// op counts + measured and simulated timings) plus the requested
/// derived metrics and extension results, in one struct.
struct AnalysisResult {
  std::string label;  ///< copied from the request

  /// The engine kind that actually ran. nullopt when an extension
  /// replaced the core engine (secondary uncertainty).
  std::optional<EngineKind> engine;
  bool auto_selected = false;     ///< engine came from kAuto
  double predicted_seconds = 0.0; ///< kAuto's cost-model prediction

  /// Trial shards the simulation executed as (1 = monolithic). The
  /// merged result is bitwise identical either way (DESIGN.md §5).
  std::size_t shard_count = 1;

  /// The raw simulation output. `simulation.ylt` is empty for
  /// YltRetention::kDiscard / kSpillToFile runs — the metrics below
  /// are then the run's product (DESIGN.md §6).
  SimulationResult simulation;

  /// Everything the request's MetricsSpec asked for. Empty when the
  /// spec was none() or no simulation ran.
  metrics::MetricsReport metrics;

  /// Where the YLT was spilled (kSpillToFile only; the io::load_ylt /
  /// io::YltChunkReader format, byte-identical to saving the
  /// monolithic table).
  std::string ylt_path;

  /// Filled when the request carried reinstatement terms.
  std::optional<ext::ReinstatementResult> reinstatements;

  /// Trials actually simulated: the full workload for fixed runs (0
  /// when no core simulation ran), the stopped frontier for adaptive
  /// ones.
  std::size_t trials_executed = 0;
  /// True when an adaptive run stopped before the workload's full
  /// trial count (always false for fixed runs).
  bool stopped_early = false;
  /// The adaptive stopping rule's final per-target confidence
  /// intervals (empty for fixed runs).
  std::vector<metrics::TargetStatus> half_widths;

  /// Metrics of the layer named `label`, or nullptr when per-layer
  /// metrics were not requested / no such layer exists — so batch
  /// consumers look results up by name instead of indexing parallel
  /// vectors by hand.
  const metrics::LayerMetrics* metrics_for(std::string_view label) const {
    return metrics.layer(label);
  }
};

/// One candidate layer structure entered into a race: a label plus the
/// portfolio variant to price. All entries race against the same YET
/// (common random numbers — every arm sees the same simulated years,
/// so arm differences are structural, not sampling noise).
struct RaceEntry {
  std::string label;
  const Portfolio* portfolio = nullptr;
};

/// Best-arm-identification contract for AnalysisSession::race():
/// which metric to optimize, in which direction, and the elimination
/// confidence / budget.
struct RaceSpec {
  /// The objective metric, evaluated on each arm's per-trial portfolio
  /// loss.
  metrics::StoppingTarget objective{};
  /// true = the best arm has the *lowest* objective (e.g. cheapest
  /// expected loss); false = the highest.
  bool minimize = true;
  /// Family-wise confidence of the elimination decisions. Split over
  /// the arms by union bound: each per-arm interval runs at
  /// 1 - (1 - confidence) / K.
  double confidence = 0.95;
  std::size_t min_trials = 1000;  ///< trials before the first elimination
  std::size_t max_trials = 0;     ///< per-arm budget; 0 = whole workload
  double wave_growth = 1.5;       ///< geometric wave schedule (shared)
  unsigned bootstrap_reps = 200;  ///< for var/tvar objectives
  std::uint64_t seed = 12345;     ///< bootstrap determinism
  /// Execution override for the arms' simulations (engine, shard size,
  /// ...); the session default applies when absent.
  std::optional<ExecutionPolicy> policy;
};

/// One arm's final standing.
struct RaceArm {
  std::string label;
  double estimate = 0.0;    ///< objective estimate at its last evaluation
  double half_width = 0.0;  ///< union-bound-adjusted CI half-width
  std::size_t trials_executed = 0;
  bool eliminated = false;
  /// The frontier at which the arm was eliminated (0 for survivors).
  std::size_t eliminated_at_trials = 0;
};

/// The race's outcome. `winner` indexes the input entries (and
/// `arms`); `separated` tells whether the field was narrowed to one
/// arm by confidence bounds, or the budget ran out first (the winner
/// is then the best point estimate among the survivors).
struct RaceResult {
  std::size_t winner = 0;
  bool separated = false;
  /// Total trials simulated across every arm — the quantity BAI
  /// pruning saves versus pricing all arms at full budget.
  std::size_t total_trials = 0;
  std::vector<RaceArm> arms;
};

/// Cost-model prediction for one engine kind on one workload.
struct EnginePrediction {
  EngineKind kind = EngineKind::kSequentialReference;
  double seconds = 0.0;  ///< predicted simulated seconds (paper hardware)
  bool feasible = true;  ///< launch shape + device memory fit
  std::string note;      ///< why infeasible, when !feasible
};

class AnalysisSession {
 public:
  /// `workers` sizes the run_batch dispatch pool; 0 = one worker per
  /// hardware thread.
  explicit AnalysisSession(ExecutionPolicy default_policy = {},
                           std::size_t workers = 0);

  const ExecutionPolicy& default_policy() const noexcept {
    return default_policy_;
  }

  /// Runs one analysis. Thread-safe.
  AnalysisResult run(const AnalysisRequest& request);

  /// Synchronous wrapper over run_batch_async (which see for the
  /// ordering contract): waits for every future, returns the results,
  /// and rethrows the first request failure (in request order) after
  /// the batch drains.
  std::vector<AnalysisResult> run_batch(std::span<const AnalysisRequest> requests);

  /// Asynchronous batch: enqueues every request on the dispatch pool
  /// and returns immediately with one future per request.
  ///
  /// Ordering contract (the single definition — run_batch inherits
  /// it): futures[i] corresponds to requests[i], always. Execution
  /// *completion* order is unspecified, but every result is identical
  /// to running its request alone (engines are deterministic), so the
  /// output is independent of the dispatch interleaving and of any
  /// other batch in flight. Each future carries its own result or
  /// exception; a failing request never surfaces through another
  /// request's future. Requests are copied; the portfolios/YETs they
  /// point at must stay alive until the futures resolve.
  std::vector<std::future<AnalysisResult>> run_batch_async(
      std::span<const AnalysisRequest> requests);

  /// Prices N candidate layer structures concurrently against one YET
  /// and prunes losers by successive elimination: at every shared wave
  /// barrier, an arm whose confidence lower bound (for minimization)
  /// sits above the best arm's upper bound is eliminated and its
  /// remaining trial budget reallocated to the survivors. Stops when
  /// one arm remains or the per-arm budget is exhausted. Deterministic
  /// for a given spec and YET; all arms share the wave schedule and the
  /// simulated years (common random numbers). Requires >= 2 entries,
  /// each with a portfolio of >= 1 layer. Thread-safe.
  RaceResult race(std::span<const RaceEntry> entries, const Yet& yet,
                  const RaceSpec& spec);

  /// The shard plan `policy` yields for this workload: an explicit
  /// shard size wins, else one is derived from the memory budget, else
  /// a single monolithic shard (core/shard.hpp).
  ShardPlan shard_plan(const Portfolio& portfolio, const Yet& yet,
                       const ExecutionPolicy& policy) const;

  /// Simulated-cost predictions of every engine kind for a workload
  /// under `policy` (launch shapes and devices come from the policy).
  /// This is the ranking kAuto selects from.
  std::vector<EnginePrediction> predict(const Portfolio& portfolio,
                                        const Yet& yet,
                                        const ExecutionPolicy& policy) const;
  std::vector<EnginePrediction> predict(const Portfolio& portfolio,
                                        const Yet& yet) const {
    return predict(portfolio, yet, default_policy_);
  }

  /// The prediction kAuto resolves to: the cheapest feasible one.
  /// Throws std::runtime_error if no kind is feasible (cannot happen
  /// with the CPU kinds present).
  EnginePrediction choose(const Portfolio& portfolio, const Yet& yet,
                          const ExecutionPolicy& policy) const;

  /// Convenience: just the kind of choose().
  EngineKind choose_engine(const Portfolio& portfolio, const Yet& yet,
                           const ExecutionPolicy& policy) const {
    return choose(portfolio, yet, policy).kind;
  }
  EngineKind choose_engine(const Portfolio& portfolio, const Yet& yet) const {
    return choose_engine(portfolio, yet, default_policy_);
  }

  /// Drops the cached TableStores of `portfolio` (call when the
  /// portfolio is about to be destroyed or mutated out from under the
  /// session). Cached tables are keyed by the portfolio's address —
  /// the same identity AnalysisRequest already relies on — so the
  /// caller must keep a portfolio alive while the session may serve
  /// requests against it, or invalidate it here first. Safe to call
  /// while requests against the portfolio are in flight: each run
  /// pins its tables for the duration, so only the cache entry is
  /// dropped (the next request rebuilds). The cache has no automatic
  /// eviction — a long-lived session streaming many short-lived
  /// portfolios must invalidate each as it retires it, or the dense
  /// tables (O(catalogue) per distinct ELT) accumulate.
  void invalidate_tables(const Portfolio& portfolio);

  /// Number of portfolios with cached tables (diagnostics/tests).
  std::size_t cached_table_portfolios() const;

  /// Requests queued or executing on the dispatch pool plus trial
  /// shards queued or executing on the shard pool — the session's
  /// backlog as an admission controller should see it (ara_serve reads
  /// this instead of guessing from its own submit counts). Exact at
  /// the instant each pool is sampled; the two pools are sampled in
  /// sequence, so a request finishing between samples can be counted
  /// zero or twice transiently — callers treat it as a depth gauge,
  /// not an invariant.
  std::size_t pending_requests();

 private:
  /// Both-precision table bundle of one portfolio; entries built on
  /// first use per precision. shared_ptr so an in-flight run keeps its
  /// tables alive even if `invalidate_tables` drops the cache entry
  /// mid-run. The fingerprint is a cheap structural check against the
  /// address-reuse hazard of keying by `const Portfolio*`: a new
  /// portfolio allocated at a recycled address almost always differs
  /// in shape or ELT storage, turning a silent stale hit into a
  /// rebuild.
  struct PortfolioTables {
    std::shared_ptr<TableStore<double>> f64;
    std::shared_ptr<TableStore<float>> f32;
    std::size_t layer_count = 0;
    std::size_t elt_count = 0;
    const void* elts_data = nullptr;
  };

  /// Keeps a run's table stores alive for the duration of the
  /// simulation, independent of the cache entry's lifetime.
  struct TablePins {
    std::shared_ptr<TableStore<double>> f64;
    std::shared_ptr<TableStore<float>> f32;
  };

  const Engine& engine_for(EngineKind kind, const ExecutionPolicy& policy);
  AnalysisResult run_resolved(const AnalysisRequest& request,
                              const ExecutionPolicy& policy);

  /// Adaptive wave execution of one core-simulation request: shards
  /// granted wave by wave under request.stopping's oracle instead of
  /// the fixed up-front plan (DESIGN.md §10).
  AnalysisResult run_adaptive(const AnalysisRequest& request,
                              const ExecutionPolicy& policy,
                              const ShardPlan& plan);
  parallel::ThreadPool& batch_pool();
  parallel::ThreadPool& compute_pool();
  parallel::ThreadPool& shard_pool();

  /// Sharded streaming execution of one engine run: shards dispatched
  /// onto the shard pool, partial results merged as they complete, and
  /// the monolithic simulated accounting reconstituted bitwise with a
  /// cost-only replay (DESIGN.md §5). `sink` (optional) receives every
  /// shard block; `materialize` = false skips assembling the
  /// monolithic YLT — the metric-only / spill retention modes
  /// (DESIGN.md §6).
  SimulationResult run_sharded(const Engine& engine,
                               const Portfolio& portfolio, const Yet& yet,
                               EngineKind kind, const EngineConfig& cfg,
                               const ShardPlan& plan,
                               YltBlockSink* sink = nullptr,
                               bool materialize = true);

  /// The cached EngineContext for running `kind` (with `cfg`) against
  /// `portfolio`: the right-precision TableStore (built on first use)
  /// plus the persistent compute pool. `pins` must outlive the engine
  /// run that uses the returned context.
  EngineContext context_for(const Portfolio& portfolio, EngineKind kind,
                            const EngineConfig& cfg, TablePins& pins);

  // Three pools, strictly layered so no pool ever barriers on itself:
  // batch (request dispatch) -> shard (per-request trial shards) ->
  // compute (engine-internal parallel_for). A request running on a
  // batch worker may block on the shard pool, and a shard task may
  // block on the compute pool, but never the other way around.
  ExecutionPolicy default_policy_;
  std::size_t workers_;
  std::mutex pool_mutex_;
  std::unique_ptr<parallel::ThreadPool> pool_;  ///< built on first run_batch
  std::mutex compute_pool_mutex_;
  std::unique_ptr<parallel::ThreadPool> compute_pool_;  ///< handed to engines
  std::mutex shard_pool_mutex_;
  std::unique_ptr<parallel::ThreadPool> shard_pool_;  ///< shard scheduler
  std::mutex cache_mutex_;
  std::unordered_map<std::string, std::unique_ptr<Engine>> engines_;
  mutable std::mutex tables_mutex_;
  std::unordered_map<const Portfolio*, PortfolioTables> tables_;
};

}  // namespace ara
