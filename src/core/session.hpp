// AnalysisSession: the batched, policy-driven front door of the
// library (see DESIGN.md §3).
//
// The paper's engines expose one shape of work — a single synchronous
// Engine::run(portfolio, yet). A production service prices many
// analyses against a shared pre-simulated YET, picks an engine per
// workload, and amortises engine construction and dispatch threads
// across calls. The session owns exactly that shared state:
//
//   * a default ExecutionPolicy (per-request overridable),
//   * a cache of constructed engines, keyed by kind + configuration,
//   * a dispatch thread pool for run_batch,
//   * the cost models, used by ExecutionPolicy::kAuto to predict the
//     simulated cost of every engine kind on the concrete workload
//     and run the cheapest feasible one.
//
// Engine::run stays available as the thin one-shot compatibility
// layer; the session is a superset (metrics, extensions, batching).
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/analysis_request.hpp"
#include "core/engine_factory.hpp"
#include "core/metrics/portfolio_rollup.hpp"
#include "core/metrics/risk_measures.hpp"
#include "parallel/thread_pool.hpp"

namespace ara {

/// Everything one analysis produced: the raw simulation output (YLT +
/// op counts + measured and simulated timings) plus the requested
/// derived metrics and extension results, in one struct.
struct AnalysisResult {
  std::string label;  ///< copied from the request

  /// The engine kind that actually ran. nullopt when an extension
  /// replaced the core engine (secondary uncertainty).
  std::optional<EngineKind> engine;
  bool auto_selected = false;     ///< engine came from kAuto
  double predicted_seconds = 0.0; ///< kAuto's cost-model prediction

  SimulationResult simulation;

  /// Filled when the request's MetricsSelection asked for them.
  std::vector<metrics::LayerRiskSummary> layer_summaries;
  std::optional<metrics::PortfolioRollup> rollup;

  /// Filled when the request carried reinstatement terms.
  std::optional<ext::ReinstatementResult> reinstatements;
};

/// Cost-model prediction for one engine kind on one workload.
struct EnginePrediction {
  EngineKind kind = EngineKind::kSequentialReference;
  double seconds = 0.0;  ///< predicted simulated seconds (paper hardware)
  bool feasible = true;  ///< launch shape + device memory fit
  std::string note;      ///< why infeasible, when !feasible
};

class AnalysisSession {
 public:
  /// `workers` sizes the run_batch dispatch pool; 0 = one worker per
  /// hardware thread.
  explicit AnalysisSession(ExecutionPolicy default_policy = {},
                           std::size_t workers = 0);

  const ExecutionPolicy& default_policy() const noexcept {
    return default_policy_;
  }

  /// Runs one analysis. Thread-safe.
  AnalysisResult run(const AnalysisRequest& request);

  /// Runs many analyses concurrently on the session's pool. Results
  /// are in request order and identical to running each request alone
  /// (engines are deterministic), so the output is independent of the
  /// dispatch interleaving. The first request failure is rethrown
  /// after the batch drains.
  std::vector<AnalysisResult> run_batch(std::span<const AnalysisRequest> requests);

  /// Simulated-cost predictions of every engine kind for a workload
  /// under `policy` (launch shapes and devices come from the policy).
  /// This is the ranking kAuto selects from.
  std::vector<EnginePrediction> predict(const Portfolio& portfolio,
                                        const Yet& yet,
                                        const ExecutionPolicy& policy) const;
  std::vector<EnginePrediction> predict(const Portfolio& portfolio,
                                        const Yet& yet) const {
    return predict(portfolio, yet, default_policy_);
  }

  /// The prediction kAuto resolves to: the cheapest feasible one.
  /// Throws std::runtime_error if no kind is feasible (cannot happen
  /// with the CPU kinds present).
  EnginePrediction choose(const Portfolio& portfolio, const Yet& yet,
                          const ExecutionPolicy& policy) const;

  /// Convenience: just the kind of choose().
  EngineKind choose_engine(const Portfolio& portfolio, const Yet& yet,
                           const ExecutionPolicy& policy) const {
    return choose(portfolio, yet, policy).kind;
  }
  EngineKind choose_engine(const Portfolio& portfolio, const Yet& yet) const {
    return choose_engine(portfolio, yet, default_policy_);
  }

 private:
  const Engine& engine_for(EngineKind kind, const ExecutionPolicy& policy);
  AnalysisResult run_resolved(const AnalysisRequest& request,
                              const ExecutionPolicy& policy);
  parallel::ThreadPool& batch_pool();

  ExecutionPolicy default_policy_;
  std::size_t workers_;
  std::mutex pool_mutex_;
  std::unique_ptr<parallel::ThreadPool> pool_;  ///< built on first run_batch
  std::mutex cache_mutex_;
  std::unordered_map<std::string, std::unique_ptr<Engine>> engines_;
};

}  // namespace ara
