// GPU engines on the simulated devices (see DESIGN.md §2 for the
// hardware substitution):
//
//  * GpuBasicEngine — the paper's basic CUDA implementation: one
//    thread per trial, double precision, all data structures
//    (including the per-event scratch arrays lx / lox of Algorithm 1)
//    in global memory.
//  * GpuOptimizedEngine — the paper's optimised kernel: events
//    processed in fixed-size chunks staged through shared memory,
//    float tables, unrolled inner loops, accumulators in registers,
//    terms in constant memory. Every optimisation is independently
//    toggleable through EngineConfig for the ablation benchmark.
//  * MultiGpuEngine — the optimised kernel with the trial range
//    decomposed evenly across N devices, one host thread per device.
//
// The basic, optimised, streamed and multi-GPU kernels are trial-major
// fused (DESIGN.md §4): one launch covers every layer, with each
// thread updating all layers' accumulators from a single walk of its
// trial — so the YET slice crosses the device memory system once, not
// once per layer. Only GpuCombinedTableEngine keeps the per-layer
// launches of the paper's rejected combined-table formulation.
#pragma once

#include <cstddef>

#include "core/engine.hpp"
#include "simgpu/device_spec.hpp"

namespace ara {

class GpuBasicEngine final : public Engine {
 public:
  GpuBasicEngine(simgpu::DeviceSpec device, EngineConfig config)
      : device_(std::move(device)), config_(config) {}

  std::string name() const override { return "gpu_basic"; }

  using Engine::run;
  SimulationResult run(const Portfolio& portfolio, const Yet& yet,
                       const EngineContext& context) const override;

 private:
  simgpu::DeviceSpec device_;
  EngineConfig config_;
};

class GpuOptimizedEngine final : public Engine {
 public:
  GpuOptimizedEngine(simgpu::DeviceSpec device, EngineConfig config)
      : device_(std::move(device)), config_(config) {}

  std::string name() const override { return "gpu_optimized"; }

  using Engine::run;
  SimulationResult run(const Portfolio& portfolio, const Yet& yet,
                       const EngineContext& context) const override;

 private:
  simgpu::DeviceSpec device_;
  EngineConfig config_;
};

class MultiGpuEngine final : public Engine {
 public:
  MultiGpuEngine(simgpu::DeviceSpec device, std::size_t device_count,
                 EngineConfig config)
      : device_(std::move(device)),
        device_count_(device_count),
        config_(config) {}

  std::string name() const override { return "multi_gpu_optimized"; }

  using Engine::run;
  SimulationResult run(const Portfolio& portfolio, const Yet& yet,
                       const EngineContext& context) const override;

  std::size_t device_count() const noexcept { return device_count_; }

 private:
  simgpu::DeviceSpec device_;
  std::size_t device_count_;
  EngineConfig config_;
};

/// The paper's "second implementation" (Sec. III): the layer's ELTs
/// merged into a single row-major combined table, with threads
/// cooperatively loading whole rows through shared memory. The paper
/// measured it slower than independent tables — "for the threads to
/// collectively load from the combined ELT each thread must first
/// write which event it needs", adding shared-memory traffic and a
/// block synchronisation per row. This engine reproduces that variant
/// (functionally identical results; the cost model charges the extra
/// coordination traffic).
class GpuCombinedTableEngine final : public Engine {
 public:
  GpuCombinedTableEngine(simgpu::DeviceSpec device, EngineConfig config)
      : device_(std::move(device)), config_(config) {}

  std::string name() const override { return "gpu_combined_table"; }

  using Engine::run;
  SimulationResult run(const Portfolio& portfolio, const Yet& yet,
                       const EngineContext& context) const override;

 private:
  simgpu::DeviceSpec device_;
  EngineConfig config_;
};

/// Out-of-core variant of the optimised engine: when the YET does not
/// fit in device memory next to the loss tables (the constraint that
/// shapes the paper's data layout — a full-precision 1e9-event YET
/// would not fit the 5.375 GB cards), the trial range is streamed
/// through the device in batches sized to the remaining memory. Each
/// batch is shipped, processed and freed before the next; results are
/// identical to the in-core engine.
class StreamedGpuEngine final : public Engine {
 public:
  StreamedGpuEngine(simgpu::DeviceSpec device, EngineConfig config)
      : device_(std::move(device)), config_(config) {}

  std::string name() const override { return "gpu_streamed"; }

  using Engine::run;
  SimulationResult run(const Portfolio& portfolio, const Yet& yet,
                       const EngineContext& context) const override;

  /// Number of batches the given workload needs on this device
  /// (diagnostics/tests).
  std::size_t batch_count(const Portfolio& portfolio, const Yet& yet) const;

 private:
  simgpu::DeviceSpec device_;
  EngineConfig config_;
};

/// Multi-GPU engine over *heterogeneous* devices (e.g. a C2075 next to
/// M2090s): trials are split proportionally to each device's modelled
/// random-lookup throughput, so all devices finish together instead of
/// the platform waiting on the slowest card — the load-balancing
/// question the paper's homogeneous 4-GPU machine never had to answer.
class HeterogeneousMultiGpuEngine final : public Engine {
 public:
  HeterogeneousMultiGpuEngine(std::vector<simgpu::DeviceSpec> devices,
                              EngineConfig config);

  std::string name() const override { return "hetero_multi_gpu"; }

  using Engine::run;
  SimulationResult run(const Portfolio& portfolio, const Yet& yet,
                       const EngineContext& context) const override;

  /// Relative throughput weights used for the trial split (normalised
  /// to sum to 1; exposed for tests).
  const std::vector<double>& weights() const noexcept { return weights_; }

 private:
  std::vector<simgpu::DeviceSpec> devices_;
  std::vector<double> weights_;
  EngineConfig config_;
};

/// Shared-memory footprint of the optimised kernel for a given block
/// shape: each thread stages `chunk_size` (event id, loss) pairs, plus
/// a fixed per-block slab for the layer/financial terms. Exposed so
/// tests and benches can reason about the Figure 4 feasibility edge.
std::size_t optimized_shared_bytes(unsigned block_threads,
                                   unsigned chunk_size);

/// Device-resident bytes of a YET slice ([trial_begin, trial_end)) as
/// shipped to a device: 4-byte event ids plus 8-byte trial offsets.
/// Exposed for the session's cost predictor and capacity planning.
std::uint64_t yet_device_bytes(const Yet& yet, std::size_t trial_begin,
                               std::size_t trial_end);

/// Device-resident bytes of the portfolio's direct-access loss tables
/// at the given precision (one table per (layer, ELT)).
std::uint64_t tables_device_bytes(const Portfolio& p, unsigned loss_bytes);

}  // namespace ara
