#include "core/layer.hpp"

#include <stdexcept>

namespace ara {

Portfolio::Portfolio(std::vector<Elt> elts, std::vector<Layer> layers)
    : elts_(std::move(elts)), layers_(std::move(layers)) {
  if (elts_.empty()) {
    throw std::invalid_argument("Portfolio: at least one ELT required");
  }
  const EventId cat = elts_.front().catalogue_size();
  for (const Elt& e : elts_) {
    if (e.catalogue_size() != cat) {
      throw std::invalid_argument(
          "Portfolio: all ELTs must share one event catalogue");
    }
  }
  for (const Layer& l : layers_) {
    if (l.elt_indices.empty()) {
      throw std::invalid_argument("Portfolio: layer covers no ELTs");
    }
    for (const std::size_t idx : l.elt_indices) {
      if (idx >= elts_.size()) {
        throw std::invalid_argument("Portfolio: layer ELT index out of range");
      }
    }
    if (!l.terms.valid()) {
      throw std::invalid_argument("Portfolio: invalid layer terms");
    }
  }
}

std::vector<const Elt*> Portfolio::layer_elts(const Layer& layer) const {
  std::vector<const Elt*> out;
  out.reserve(layer.elt_indices.size());
  for (const std::size_t idx : layer.elt_indices) {
    out.push_back(&elts_[idx]);
  }
  return out;
}

double Portfolio::mean_elts_per_layer() const {
  if (layers_.empty()) return 0.0;
  std::size_t total = 0;
  for (const Layer& l : layers_) total += l.elt_indices.size();
  return static_cast<double>(total) / static_cast<double>(layers_.size());
}

}  // namespace ara
