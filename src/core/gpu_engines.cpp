#include "core/gpu_engines.hpp"

#include <algorithm>
#include <array>
#include <string>
#include <vector>

#include "core/simd/bound_portfolio.hpp"
#include "core/simd/kernels.hpp"
#include "core/trial_math.hpp"
#include "parallel/partition.hpp"
#include "perf/stopwatch.hpp"
#include "simgpu/sim_device.hpp"
#include "simgpu/sim_platform.hpp"

namespace ara {

// Device-resident footprint of the inputs. The kernel consumes event
// ids in trial order (timestamps only define the order, which the YET
// already encodes), so the YET ships as 4-byte ids — this is what lets
// the 1e9-event paper workload fit in 5.375 GB (see DESIGN.md).
std::uint64_t yet_device_bytes(const Yet& yet, std::size_t trial_begin,
                               std::size_t trial_end) {
  const std::uint64_t events =
      yet.offsets()[trial_end] - yet.offsets()[trial_begin];
  const std::uint64_t offsets = (trial_end - trial_begin + 1) * 8;
  return events * 4 + offsets;
}

std::uint64_t tables_device_bytes(const Portfolio& p, unsigned loss_bytes) {
  std::uint64_t total = 0;
  for (const Layer& layer : p.layers()) {
    total += static_cast<std::uint64_t>(layer.elt_indices.size()) *
             (static_cast<std::uint64_t>(p.catalogue_size()) + 1) * loss_bytes;
  }
  return total;
}

namespace {

// Runs the optimised kernel for global trials [begin, end) on `dev`,
// writing into `out` at local rows (trial - out_base); out_base is the
// global index of out's first row (0 for a full run). One fused
// multi-layer launch per device: the kernel stages chunk_size events
// at a time (the paper's chunking), then performs the fused term math
// for *every* layer on the staged events before loading the next chunk
// — the YET slice crosses the memory system once instead of once per
// layer. Per-layer results are identical to simulate_trial_fused (same
// operand order). With cost_only the same alloc/copy/launch sequence
// is charged to the simulated timeline without executing the kernel
// (tables may be an empty store).
template <typename Real>
void run_optimized_on_device(simgpu::SimDevice& dev, const Portfolio& p,
                             const Yet& yet, const TableStore<Real>& tables,
                             const EngineConfig& cfg, std::size_t begin,
                             std::size_t end, std::size_t out_base, Ylt& out,
                             bool cost_only = false) {
  const std::size_t trials = end - begin;
  if (trials == 0) return;

  const unsigned loss_bytes = sizeof(Real);
  dev.alloc(tables_device_bytes(p, loss_bytes));
  dev.alloc(yet_device_bytes(yet, begin, end));
  dev.alloc(static_cast<std::uint64_t>(p.layer_count()) * trials * loss_bytes);

  // Host -> device: the direct access tables and this device's YET
  // slice (the preprocessing stage of the paper).
  dev.copy(tables_device_bytes(p, loss_bytes));
  dev.copy(yet_device_bytes(yet, begin, end));

  simgpu::KernelTraits traits;
  traits.loss_bytes = loss_bytes;
  traits.chunked = cfg.chunking;
  traits.mlp_per_thread =
      cfg.chunking ? std::min(cfg.chunk_size, 16u) : 1;
  traits.scratch_in_global = !cfg.chunking && !cfg.use_registers;
  traits.scratch_in_registers = cfg.use_registers;
  traits.unrolled = cfg.unroll;

  simgpu::LaunchConfig launch;
  launch.block_threads = cfg.block_threads;
  launch.grid_blocks = static_cast<unsigned>(
      (trials + cfg.block_threads - 1) / cfg.block_threads);
  launch.shared_bytes_per_block =
      cfg.chunking ? optimized_shared_bytes(cfg.block_threads, cfg.chunk_size)
                   : 0;
  launch.regs_per_thread = cfg.use_registers ? 63 : 32;

  OpCounts ops = range_fused_ops(p, yet, begin, end);
  const std::uint64_t scratch =
      ops.occurrence_ops * kScratchTouchesPerEvent;
  if (traits.scratch_in_global) {
    ops.global_updates = scratch;
  } else if (!traits.scratch_in_registers) {
    ops.shared_accesses = scratch;
  }

  if (cost_only) {
    dev.launch_cost_only("ara_optimized_multilayer", launch, traits, ops);
  } else {
    // The per-event work is the dispatched SoA kernel's `apply` entry
    // (no reset, no trial loop — the chunk staging below owns those):
    // scalar in the bitwise-reference mode, vectorized under kAuto.
    const simd::SweepKernel<Real> kernel =
        simd::select_kernel<Real>(cfg.simd, cfg.simd_width);
    const simd::BoundPortfolio<Real> bp = simd::bind_portfolio(p, tables);
    // Running state; SimDevice executes the functor thread by thread
    // on this host thread, so one buffer serves the whole launch.
    simd::PortfolioTrialState<Real> state(bp);

    // The functional staging buffer is 512 entries; clamp the chunk so
    // a stage is always written before it is consumed.
    const unsigned chunk = std::clamp(cfg.chunk_size, 1u, 512u);
    dev.launch(
        "ara_optimized_multilayer", launch, traits, ops,
        [&](const simgpu::SimDevice::ThreadCtx& ctx) {
          if (ctx.global_id() >= trials) return;  // guard threads past range
          const TrialId t = static_cast<TrialId>(begin + ctx.global_id());
          const auto row = static_cast<TrialId>(t - out_base);
          const auto trial = yet.trial(t);

          // Chunked processing: stage `chunk` occurrences once, then
          // apply the fused financial/occurrence/aggregate math for
          // every layer. State that survives across chunks is exactly
          // what the real kernel keeps in registers, per layer.
          state.reset();
          std::array<EventId, 512> stage;  // shared-memory stand-in
          const std::size_t k = trial.size();
          for (std::size_t base = 0; base < k; base += chunk) {
            const std::size_t n = std::min<std::size_t>(chunk, k - base);
            for (std::size_t i = 0; i < n; ++i) {
              stage[i % stage.size()] = trial[base + i].event;
            }
            for (std::size_t i = 0; i < n; ++i) {
              kernel.apply(bp, stage[i % stage.size()], state);
            }
          }
          for (std::size_t a = 0; a < bp.layers; ++a) {
            out.annual_loss(a, row) = static_cast<double>(state.annual[a]);
            out.max_occurrence_loss(a, row) =
                static_cast<double>(state.max_occurrence[a]);
          }
        });
  }

  // Device -> host: the YLT slice.
  dev.copy(static_cast<std::uint64_t>(p.layer_count()) * trials * loss_bytes);
}

}  // namespace

std::size_t optimized_shared_bytes(unsigned block_threads,
                                   unsigned chunk_size) {
  // Per thread: chunk_size staged (event id, loss) pairs of 8 bytes;
  // per block: one 256-byte slab of layer + financial terms. With the
  // default chunk of 88 events this is 22.8 KB for a 32-thread block —
  // two resident blocks per Fermi SM — and overflows the 48 KB limit
  // beyond 64 threads/block, the edge the paper reports in Figure 4.
  return static_cast<std::size_t>(block_threads) * chunk_size * 8 + 256;
}

SimulationResult GpuBasicEngine::run(const Portfolio& portfolio,
                                     const Yet& yet,
                                     const EngineContext& context) const {
  const TrialRange range = context.trials.resolve(yet.trial_count());

  SimulationResult result;
  result.engine_name = name();
  result.devices = 1;
  result.trial_begin = range.begin;
  result.ops = range_fused_ops(portfolio, yet, range.begin, range.end);
  result.ops.global_updates =
      result.ops.occurrence_ops * kScratchTouchesPerEvent;

  perf::Stopwatch wall;
  simgpu::SimDevice dev(device_);

  dev.alloc(tables_device_bytes(portfolio, 8));
  dev.alloc(yet_device_bytes(yet, range.begin, range.end));
  // Per-event scratch (lx, lox) lives in global memory, one slot per
  // resident thread's current event — the basic implementation keeps
  // whole trial arrays per thread.
  dev.alloc(static_cast<std::uint64_t>(portfolio.layer_count()) *
            range.size() * 8);
  dev.copy(tables_device_bytes(portfolio, 8));
  dev.copy(yet_device_bytes(yet, range.begin, range.end));

  simgpu::KernelTraits traits;  // double, mlp 1, global scratch
  traits.loss_bytes = 8;
  traits.scratch_in_global = true;

  simgpu::LaunchConfig launch;
  launch.block_threads = config_.block_threads;
  launch.grid_blocks = static_cast<unsigned>(
      (range.size() + config_.block_threads - 1) /
      config_.block_threads);
  launch.regs_per_thread = 20;

  OpCounts launch_ops =
      range_fused_ops(portfolio, yet, range.begin, range.end);
  launch_ops.global_updates =
      launch_ops.occurrence_ops * kScratchTouchesPerEvent;

  const simd::SweepKernel<double> kernel =
      simd::select_kernel<double>(config_.simd, config_.simd_width);
  result.simd_isa = simd::isa_name(kernel.isa);

  if (context.cost_only) {
    dev.launch_cost_only("ara_basic_multilayer", launch, traits, launch_ops);
  } else {
    TableStore<double> local;
    const TableStore<double>& tables =
        *select_tables(context.tables_f64, local, portfolio);
    result.ylt = Ylt(portfolio.layer_count(), range.size());

    // One fused launch: each thread walks its trial once, updating
    // every layer's accumulators from the single YET read.
    const simd::BoundPortfolio<double> bp =
        simd::bind_portfolio(portfolio, tables);
    simd::PortfolioTrialState<double> state(bp);
    dev.launch("ara_basic_multilayer", launch, traits, launch_ops,
               [&](const simgpu::SimDevice::ThreadCtx& ctx) {
                 if (ctx.global_id() >= range.size()) return;
                 const auto t =
                     static_cast<TrialId>(range.begin + ctx.global_id());
                 const auto row = static_cast<TrialId>(ctx.global_id());
                 kernel.sweep(bp, yet.trial(t), state);
                 for (std::size_t a = 0; a < bp.layers; ++a) {
                   result.ylt.annual_loss(a, row) = state.annual[a];
                   result.ylt.max_occurrence_loss(a, row) =
                       state.max_occurrence[a];
                 }
               });
  }
  dev.copy(static_cast<std::uint64_t>(portfolio.layer_count()) *
           range.size() * 8);

  result.wall_seconds = wall.seconds();
  result.simulated_phases = dev.phase_seconds();
  result.simulated_seconds = result.simulated_phases.total() -
                             result.simulated_phases[perf::Phase::kTransfer];
  return result;
}

SimulationResult GpuOptimizedEngine::run(const Portfolio& portfolio,
                                         const Yet& yet,
                                         const EngineContext& context) const {
  const TrialRange range = context.trials.resolve(yet.trial_count());

  SimulationResult result;
  result.engine_name = name();
  result.devices = 1;
  result.trial_begin = range.begin;
  result.ops = range_fused_ops(portfolio, yet, range.begin, range.end);

  result.simd_isa = simd::isa_name(
      config_.use_float
          ? simd::select_kernel<float>(config_.simd, config_.simd_width).isa
          : simd::select_kernel<double>(config_.simd, config_.simd_width)
                .isa);

  perf::Stopwatch wall;
  simgpu::SimDevice dev(device_);
  if (!context.cost_only) {
    result.ylt = Ylt(portfolio.layer_count(), range.size());
  }
  if (config_.use_float) {
    TableStore<float> local;
    const TableStore<float>& tables =
        context.cost_only ? local
                          : *select_tables(context.tables_f32, local,
                                           portfolio);
    run_optimized_on_device<float>(dev, portfolio, yet, tables, config_,
                                   range.begin, range.end, range.begin,
                                   result.ylt, context.cost_only);
  } else {
    TableStore<double> local;
    const TableStore<double>& tables =
        context.cost_only ? local
                          : *select_tables(context.tables_f64, local,
                                           portfolio);
    run_optimized_on_device<double>(dev, portfolio, yet, tables, config_,
                                    range.begin, range.end, range.begin,
                                    result.ylt, context.cost_only);
  }
  result.wall_seconds = wall.seconds();
  result.simulated_phases = dev.phase_seconds();
  result.simulated_seconds = result.simulated_phases.total() -
                             result.simulated_phases[perf::Phase::kTransfer];
  return result;
}

SimulationResult GpuCombinedTableEngine::run(
    const Portfolio& portfolio, const Yet& yet,
    const EngineContext& context) const {
  // Deliberately layer-major: this engine reproduces the paper's
  // *rejected* combined-table formulation, whose per-layer row tables
  // and cooperative loads are the point of comparison. It does not
  // take the trial-major fusion (or the session's per-ELT table
  // cache — it builds combined per-layer tables of its own).
  const TrialRange range = context.trials.resolve(yet.trial_count());

  SimulationResult result;
  result.engine_name = name();
  result.devices = 1;
  result.trial_begin = range.begin;
  result.ops = range_ops(portfolio, yet, range.begin, range.end);
  // Coordination cost of the cooperative row loads: per (event, ELT)
  // each thread writes its requested event id to shared memory and
  // reads the delivered row back — two extra shared accesses per
  // lookup on top of the scratch traffic.
  result.ops.shared_accesses =
      result.ops.elt_lookups * 2 +
      result.ops.occurrence_ops * kScratchTouchesPerEvent;

  perf::Stopwatch wall;
  simgpu::SimDevice dev(device_);
  if (!context.cost_only) {
    result.ylt = Ylt(portfolio.layer_count(), range.size());
  }

  dev.alloc(tables_device_bytes(portfolio, 8));
  dev.alloc(yet_device_bytes(yet, range.begin, range.end));
  dev.copy(tables_device_bytes(portfolio, 8));
  dev.copy(yet_device_bytes(yet, range.begin, range.end));

  simgpu::KernelTraits traits;
  traits.loss_bytes = 8;
  traits.chunked = true;  // rows are staged through shared memory
  // The row loads serialise on the shared-memory coordination step, so
  // the per-thread memory-level parallelism collapses back to ~1, and
  // every staged row adds a request/deliver handshake plus a barrier —
  // this is why the paper found the combined layout slower despite the
  // cooperative loads. The 0.75 penalty is calibrated to make the
  // variant "comparatively poorer" as reported (Sec. III).
  traits.mlp_per_thread = 1;
  traits.cooperative_load_penalty = 0.75;
  traits.scratch_in_global = false;
  traits.scratch_in_registers = false;  // scratch lives in shared memory

  simgpu::LaunchConfig launch;
  launch.block_threads = config_.block_threads;
  launch.grid_blocks = static_cast<unsigned>(
      (range.size() + config_.block_threads - 1) /
      config_.block_threads);
  // One staged combined row per thread plus the request slots.
  launch.shared_bytes_per_block =
      static_cast<std::size_t>(config_.block_threads) *
          (portfolio.mean_elts_per_layer() > 0
               ? static_cast<std::size_t>(portfolio.mean_elts_per_layer()) * 8
               : 8) +
      static_cast<std::size_t>(config_.block_threads) * 4 + 256;
  launch.regs_per_thread = 24;

  OpCounts launch_ops = range_ops(portfolio, yet, range.begin, range.end);
  launch_ops.shared_accesses = result.ops.shared_accesses;

  // Functionally: one combined table per layer; results are identical
  // to the per-ELT tables (property-tested).
  for (std::size_t a = 0; a < portfolio.layer_count(); ++a) {
    if (context.cost_only) {
      dev.launch_cost_only("ara_combined_layer" + std::to_string(a), launch,
                           traits, launch_ops);
      continue;
    }
    const Layer& layer = portfolio.layers()[a];
    const std::vector<const Elt*> elts = portfolio.layer_elts(layer);
    const CombinedDirectTable<double> combined(elts);
    std::vector<FinancialTerms> terms;
    terms.reserve(elts.size());
    for (const Elt* e : elts) terms.push_back(e->terms());
    const LayerTerms lt = layer.terms;

    dev.launch(
        "ara_combined_layer" + std::to_string(a), launch, traits,
        launch_ops, [&](const simgpu::SimDevice::ThreadCtx& ctx) {
          if (ctx.global_id() >= range.size()) return;
          const auto t = static_cast<TrialId>(range.begin + ctx.global_id());
          const auto row = static_cast<TrialId>(ctx.global_id());
          double cumulative = 0.0, prev_capped = 0.0;
          double annual = 0.0, max_occ = 0.0;
          for (const EventOccurrence& occ : yet.trial(t)) {
            // The "row" of the combined table: all ELT losses for this
            // event are adjacent.
            double combined_loss = 0.0;
            for (std::size_t j = 0; j < elts.size(); ++j) {
              combined_loss += apply_financial_terms(
                  combined.at(occ.event, j), terms[j]);
            }
            const double occ_loss = apply_occurrence_terms(combined_loss, lt);
            max_occ = std::max(max_occ, occ_loss);
            cumulative += occ_loss;
            const double capped = apply_aggregate_terms(cumulative, lt);
            annual += capped - prev_capped;
            prev_capped = capped;
          }
          result.ylt.annual_loss(a, row) = annual;
          result.ylt.max_occurrence_loss(a, row) = max_occ;
        });
  }
  dev.copy(static_cast<std::uint64_t>(portfolio.layer_count()) *
           range.size() * 8);

  result.wall_seconds = wall.seconds();
  result.simulated_phases = dev.phase_seconds();
  result.simulated_seconds = result.simulated_phases.total() -
                             result.simulated_phases[perf::Phase::kTransfer];
  return result;
}

SimulationResult StreamedGpuEngine::run(const Portfolio& portfolio,
                                        const Yet& yet,
                                        const EngineContext& context) const {
  const TrialRange range = context.trials.resolve(yet.trial_count());

  SimulationResult result;
  result.engine_name = name();
  result.devices = 1;
  result.trial_begin = range.begin;
  result.ops = range_fused_ops(portfolio, yet, range.begin, range.end);

  perf::Stopwatch wall;
  simgpu::SimDevice dev(device_);
  if (!context.cost_only) {
    result.ylt = Ylt(portfolio.layer_count(), range.size());
  }

  const unsigned loss_bytes = config_.use_float ? 4 : 8;
  const std::uint64_t tables = tables_device_bytes(portfolio, loss_bytes);
  if (tables >= device_.global_mem_bytes) {
    throw std::runtime_error(
        "StreamedGpuEngine: loss tables alone exceed device memory");
  }
  dev.alloc(tables);
  dev.copy(tables);

  // Batch size: fill the memory left after the tables with YET slice
  // (4 B/event + offsets) + YLT slice, using the mean trial length.
  const double events_per_trial =
      std::max(1.0, yet.mean_events_per_trial());
  const double bytes_per_trial =
      events_per_trial * 4.0 + 8.0 +
      static_cast<double>(portfolio.layer_count()) * loss_bytes;
  const std::uint64_t budget = device_.global_mem_bytes - tables;
  std::size_t batch_trials = static_cast<std::size_t>(
      static_cast<double>(budget) * 0.75 / bytes_per_trial);
  batch_trials = std::max<std::size_t>(1, batch_trials);

  TableStore<float> local_f;
  TableStore<double> local_d;
  const TableStore<float>* tables_f =
      config_.use_float && !context.cost_only
          ? select_tables(context.tables_f32, local_f, portfolio)
          : nullptr;
  const TableStore<double>* tables_d =
      config_.use_float || context.cost_only
          ? nullptr
          : select_tables(context.tables_f64, local_d, portfolio);

  const simd::SweepKernel<float> kernel_f =
      simd::select_kernel<float>(config_.simd, config_.simd_width);
  const simd::SweepKernel<double> kernel_d =
      simd::select_kernel<double>(config_.simd, config_.simd_width);
  result.simd_isa =
      simd::isa_name(config_.use_float ? kernel_f.isa : kernel_d.isa);

  const simd::BoundPortfolio<float> bp_f =
      tables_f ? simd::bind_portfolio(portfolio, *tables_f)
               : simd::BoundPortfolio<float>{};
  const simd::BoundPortfolio<double> bp_d =
      tables_d ? simd::bind_portfolio(portfolio, *tables_d)
               : simd::BoundPortfolio<double>{};
  simd::PortfolioTrialState<float> state_f(bp_f);
  simd::PortfolioTrialState<double> state_d(bp_d);

  for (std::size_t begin = range.begin; begin < range.end;
       begin += batch_trials) {
    const std::size_t end = std::min(begin + batch_trials, range.end);
    const std::uint64_t yet_bytes = yet_device_bytes(yet, begin, end);
    const std::uint64_t ylt_bytes =
        static_cast<std::uint64_t>(portfolio.layer_count()) *
        (end - begin) * loss_bytes;
    dev.alloc(yet_bytes);
    dev.alloc(ylt_bytes);
    dev.copy(yet_bytes);

    // Run the fused multi-layer kernel on this batch (tables are
    // resident).
    simgpu::KernelTraits traits;
    traits.loss_bytes = loss_bytes;
    traits.chunked = config_.chunking;
    traits.mlp_per_thread =
        config_.chunking ? std::min(config_.chunk_size, 16u) : 1;
    traits.scratch_in_registers = config_.use_registers;
    traits.scratch_in_global = !config_.chunking && !config_.use_registers;
    traits.unrolled = config_.unroll;

    simgpu::LaunchConfig launch;
    launch.block_threads = config_.block_threads;
    launch.grid_blocks = static_cast<unsigned>(
        (end - begin + config_.block_threads - 1) / config_.block_threads);
    launch.shared_bytes_per_block =
        config_.chunking
            ? optimized_shared_bytes(config_.block_threads, config_.chunk_size)
            : 0;
    launch.regs_per_thread = config_.use_registers ? 63 : 32;
    const OpCounts ops = range_fused_ops(portfolio, yet, begin, end);

    if (context.cost_only) {
      dev.launch_cost_only("ara_streamed_multilayer", launch, traits, ops);
    } else if (config_.use_float) {
      dev.launch("ara_streamed_multilayer", launch, traits, ops,
                 [&](const simgpu::SimDevice::ThreadCtx& ctx) {
                   if (ctx.global_id() >= end - begin) return;
                   const auto t =
                       static_cast<TrialId>(begin + ctx.global_id());
                   const auto row = static_cast<TrialId>(t - range.begin);
                   kernel_f.sweep(bp_f, yet.trial(t), state_f);
                   for (std::size_t a = 0; a < bp_f.layers; ++a) {
                     result.ylt.annual_loss(a, row) =
                         static_cast<double>(state_f.annual[a]);
                     result.ylt.max_occurrence_loss(a, row) =
                         static_cast<double>(state_f.max_occurrence[a]);
                   }
                 });
    } else {
      dev.launch("ara_streamed_multilayer", launch, traits, ops,
                 [&](const simgpu::SimDevice::ThreadCtx& ctx) {
                   if (ctx.global_id() >= end - begin) return;
                   const auto t =
                       static_cast<TrialId>(begin + ctx.global_id());
                   const auto row = static_cast<TrialId>(t - range.begin);
                   kernel_d.sweep(bp_d, yet.trial(t), state_d);
                   for (std::size_t a = 0; a < bp_d.layers; ++a) {
                     result.ylt.annual_loss(a, row) = state_d.annual[a];
                     result.ylt.max_occurrence_loss(a, row) =
                         state_d.max_occurrence[a];
                   }
                 });
    }

    dev.copy(ylt_bytes);   // results back
    dev.free(yet_bytes);   // release the batch
    dev.free(ylt_bytes);
  }

  result.wall_seconds = wall.seconds();
  result.simulated_phases = dev.phase_seconds();
  result.simulated_seconds = result.simulated_phases.total() -
                             result.simulated_phases[perf::Phase::kTransfer];
  return result;
}

std::size_t StreamedGpuEngine::batch_count(const Portfolio& portfolio,
                                           const Yet& yet) const {
  const unsigned loss_bytes = config_.use_float ? 4 : 8;
  const std::uint64_t tables = tables_device_bytes(portfolio, loss_bytes);
  if (tables >= device_.global_mem_bytes) return 0;
  const double events_per_trial =
      std::max(1.0, yet.mean_events_per_trial());
  const double bytes_per_trial =
      events_per_trial * 4.0 + 8.0 +
      static_cast<double>(portfolio.layer_count()) * loss_bytes;
  const std::uint64_t budget = device_.global_mem_bytes - tables;
  const std::size_t batch_trials = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(budget) * 0.75 /
                                  bytes_per_trial));
  return (yet.trial_count() + batch_trials - 1) / batch_trials;
}

HeterogeneousMultiGpuEngine::HeterogeneousMultiGpuEngine(
    std::vector<simgpu::DeviceSpec> devices, EngineConfig config)
    : devices_(std::move(devices)), config_(config) {
  if (devices_.empty()) {
    throw std::invalid_argument(
        "HeterogeneousMultiGpuEngine: at least one device required");
  }
  // Weight = modelled random-lookup throughput: bandwidth x the
  // precision-matched random-access efficiency (the quantity that
  // dominates 97% of the runtime).
  double total = 0.0;
  weights_.reserve(devices_.size());
  for (const auto& d : devices_) {
    const double eff = config_.use_float ? d.random_access_efficiency_f32
                                         : d.random_access_efficiency_f64;
    const double w = d.mem_bandwidth_gbps * eff;
    weights_.push_back(w);
    total += w;
  }
  for (double& w : weights_) w /= total;
}

SimulationResult HeterogeneousMultiGpuEngine::run(
    const Portfolio& portfolio, const Yet& yet,
    const EngineContext& context) const {
  const TrialRange range = context.trials.resolve(yet.trial_count());

  SimulationResult result;
  result.engine_name = name();
  result.devices = static_cast<unsigned>(devices_.size());
  result.trial_begin = range.begin;
  result.ops = range_fused_ops(portfolio, yet, range.begin, range.end);
  result.simd_isa = simd::isa_name(
      config_.use_float
          ? simd::select_kernel<float>(config_.simd, config_.simd_width).isa
          : simd::select_kernel<double>(config_.simd, config_.simd_width)
                .isa);

  perf::Stopwatch wall;
  simgpu::SimPlatform platform(devices_);
  if (!context.cost_only) {
    result.ylt = Ylt(portfolio.layer_count(), range.size());
  }

  // Weighted contiguous split of this run's trial range.
  std::vector<parallel::Range> ranges(devices_.size());
  std::size_t at = range.begin;
  double carry = 0.0;
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    carry += weights_[d] * static_cast<double>(range.size());
    std::size_t end =
        d + 1 == devices_.size()
            ? range.end
            : std::min(range.end,
                       range.begin + static_cast<std::size_t>(carry + 0.5));
    end = std::max(end, at);
    ranges[d] = {at, end};
    at = end;
  }

  if (config_.use_float) {
    TableStore<float> local;
    const TableStore<float>& tables =
        context.cost_only
            ? local
            : *select_tables(context.tables_f32, local, portfolio);
    platform.for_each_device([&](std::size_t d) {
      run_optimized_on_device<float>(platform.device(d), portfolio, yet,
                                     tables, config_, ranges[d].begin,
                                     ranges[d].end, range.begin, result.ylt,
                                     context.cost_only);
    });
  } else {
    TableStore<double> local;
    const TableStore<double>& tables =
        context.cost_only
            ? local
            : *select_tables(context.tables_f64, local, portfolio);
    platform.for_each_device([&](std::size_t d) {
      run_optimized_on_device<double>(platform.device(d), portfolio, yet,
                                      tables, config_, ranges[d].begin,
                                      ranges[d].end, range.begin, result.ylt,
                                      context.cost_only);
    });
  }

  result.wall_seconds = wall.seconds();
  result.simulated_phases = platform.mean_phase_seconds();
  result.simulated_seconds = 0.0;
  for (std::size_t d = 0; d < platform.device_count(); ++d) {
    const auto& ph = platform.device(d).phase_seconds();
    result.simulated_seconds =
        std::max(result.simulated_seconds,
                 ph.total() - ph[perf::Phase::kTransfer]);
  }
  return result;
}

SimulationResult MultiGpuEngine::run(const Portfolio& portfolio,
                                     const Yet& yet,
                                     const EngineContext& context) const {
  const TrialRange range = context.trials.resolve(yet.trial_count());

  SimulationResult result;
  result.engine_name = name();
  result.devices = static_cast<unsigned>(device_count_);
  result.trial_begin = range.begin;
  result.ops = range_fused_ops(portfolio, yet, range.begin, range.end);
  result.simd_isa = simd::isa_name(
      config_.use_float
          ? simd::select_kernel<float>(config_.simd, config_.simd_width).isa
          : simd::select_kernel<double>(config_.simd, config_.simd_width)
                .isa);

  perf::Stopwatch wall;
  simgpu::SimPlatform platform(device_, device_count_);
  if (!context.cost_only) {
    result.ylt = Ylt(portfolio.layer_count(), range.size());
  }

  // Even split of this run's trial range across the devices.
  std::vector<parallel::Range> ranges =
      parallel::split_even(range.size(), device_count_);
  for (parallel::Range& r : ranges) {
    r.begin += range.begin;
    r.end += range.begin;
  }

  // Tables are built once on the host (or borrowed from the session's
  // cache) and shipped to every device; the YET is sliced. One host
  // thread drives one GPU (the paper's dispatch scheme), realised by
  // SimPlatform::for_each_device.
  if (config_.use_float) {
    TableStore<float> local;
    const TableStore<float>& tables =
        context.cost_only
            ? local
            : *select_tables(context.tables_f32, local, portfolio);
    platform.for_each_device([&](std::size_t d) {
      run_optimized_on_device<float>(platform.device(d), portfolio, yet,
                                     tables, config_, ranges[d].begin,
                                     ranges[d].end, range.begin, result.ylt,
                                     context.cost_only);
    });
  } else {
    TableStore<double> local;
    const TableStore<double>& tables =
        context.cost_only
            ? local
            : *select_tables(context.tables_f64, local, portfolio);
    platform.for_each_device([&](std::size_t d) {
      run_optimized_on_device<double>(platform.device(d), portfolio, yet,
                                      tables, config_, ranges[d].begin,
                                      ranges[d].end, range.begin, result.ylt,
                                      context.cost_only);
    });
  }

  result.wall_seconds = wall.seconds();
  // Devices run concurrently: the platform time is the slowest device;
  // phase attribution is the per-device mean.
  result.simulated_phases = platform.mean_phase_seconds();
  result.simulated_seconds = 0.0;
  for (std::size_t d = 0; d < platform.device_count(); ++d) {
    const auto& ph = platform.device(d).phase_seconds();
    result.simulated_seconds = std::max(
        result.simulated_seconds,
        ph.total() - ph[perf::Phase::kTransfer]);
  }
  return result;
}

}  // namespace ara
