#include "core/elt.hpp"

#include <algorithm>
#include <stdexcept>

namespace ara {

Elt::Elt(std::vector<EventLoss> records, FinancialTerms terms,
         EventId catalogue_size)
    : records_(std::move(records)),
      terms_(terms),
      catalogue_size_(catalogue_size) {
  if (catalogue_size_ == 0) {
    throw std::invalid_argument("Elt: catalogue_size must be > 0");
  }
  if (!terms_.valid()) {
    throw std::invalid_argument("Elt: invalid financial terms");
  }
  std::sort(records_.begin(), records_.end(),
            [](const EventLoss& a, const EventLoss& b) {
              return a.event < b.event;
            });
  EventId prev = kInvalidEvent;
  for (const EventLoss& r : records_) {
    if (r.event == kInvalidEvent || r.event > catalogue_size_) {
      throw std::invalid_argument("Elt: event id out of catalogue range");
    }
    if (r.event == prev) {
      throw std::invalid_argument("Elt: duplicate event id");
    }
    if (!(r.loss >= 0.0)) {
      throw std::invalid_argument("Elt: losses must be non-negative");
    }
    prev = r.event;
  }
}

double Elt::lookup(EventId event) const {
  const auto it = std::lower_bound(
      records_.begin(), records_.end(), event,
      [](const EventLoss& r, EventId e) { return r.event < e; });
  if (it != records_.end() && it->event == event) return it->loss;
  return 0.0;
}

double Elt::total_loss() const {
  double sum = 0.0;
  for (const EventLoss& r : records_) sum += r.loss;
  return sum;
}

}  // namespace ara
