// Per-ELT financial terms (the tuple `I` of the paper, Section II).
//
// The paper leaves `I = (I1, I2, ...)` abstract ("currency exchange
// rates and terms that are applied at the level of each individual
// event loss"). We model the standard event-level treaty terms used in
// the catastrophe-reinsurance literature the paper cites:
//
//   out = share * clamp(loss * fx_rate - retention, 0, limit)
//
// i.e. currency conversion, an event-level deductible (retention), an
// event-level limit (cover), and a participation share. Setting
// fx_rate=share=1, retention=0, limit=inf makes the term a no-op.
#pragma once

#include <limits>

namespace ara {

/// Event-level financial terms attached to one ELT.
struct FinancialTerms {
  double fx_rate = 1.0;     ///< currency conversion applied first
  double retention = 0.0;   ///< event-level deductible (>= 0)
  double limit = std::numeric_limits<double>::infinity();  ///< event cover
  double share = 1.0;       ///< participation fraction in [0, 1]

  /// Identity terms (no transformation of the ground-up loss).
  static FinancialTerms identity() { return {}; }

  /// True if the fields define a meaningful contract.
  bool valid() const {
    return fx_rate >= 0.0 && retention >= 0.0 && limit >= 0.0 &&
           share >= 0.0 && share <= 1.0;
  }

  friend bool operator==(const FinancialTerms&,
                         const FinancialTerms&) = default;
};

/// Applies financial terms to a ground-up event loss
/// (Algorithm 1, line 9: ApplyFinancialTerms(I)). Works in any
/// floating-point precision; the optimised GPU engine instantiates the
/// float version.
template <typename Real>
inline Real apply_financial_terms(Real loss, const FinancialTerms& t) {
  Real x = loss * static_cast<Real>(t.fx_rate) - static_cast<Real>(t.retention);
  if (x < Real(0)) x = Real(0);
  const Real lim = static_cast<Real>(t.limit);
  if (x > lim) x = lim;
  return x * static_cast<Real>(t.share);
}

}  // namespace ara
