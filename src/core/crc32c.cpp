#include "core/crc32c.hpp"

#include <array>

namespace ara {

namespace {

// Reflected Castagnoli polynomial (iSCSI / SSE4.2 crc32 instruction).
constexpr std::uint32_t kPoly = 0x82F63B78u;

// Slicing-by-4 tables, built once at first use: table[0] is the
// classic byte table, table[k] advances a byte seen k positions
// earlier. Fast enough to checksum multi-megabyte YLT rows without
// dominating a spill, with no ISA-specific code to gate.
struct Tables {
  std::uint32_t t[4][256];
  Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int b = 0; b < 8; ++b) c = (c >> 1) ^ ((c & 1u) ? kPoly : 0u);
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (int k = 1; k < 4; ++k) {
        c = t[0][c & 0xFFu] ^ (c >> 8);
        t[k][i] = c;
      }
    }
  }
};

const Tables& tables() {
  static const Tables instance;
  return instance;
}

// ---- combine: GF(2) matrix trick (zlib's crc32_combine shape) ------
//
// Appending `len2` zero bytes to a stream transforms its CRC linearly
// over GF(2); squaring the "advance one zero byte" matrix log2(len2)
// times applies the transform in O(log len2). The appended stream's
// own CRC then XORs on top.

using Mat = std::array<std::uint32_t, 32>;  // column-major over GF(2)

std::uint32_t gf2_times(const Mat& m, std::uint32_t v) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  while (v != 0) {
    if (v & 1u) sum ^= m[i];
    v >>= 1;
    ++i;
  }
  return sum;
}

Mat gf2_square(const Mat& m) {
  Mat s;
  for (std::size_t i = 0; i < 32; ++i) s[i] = gf2_times(m, m[i]);
  return s;
}

}  // namespace

std::uint32_t crc32c(std::uint32_t crc, const void* data, std::size_t len) {
  const Tables& tb = tables();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  while (len >= 4) {
    c ^= static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
    c = tb.t[3][c & 0xFFu] ^ tb.t[2][(c >> 8) & 0xFFu] ^
        tb.t[1][(c >> 16) & 0xFFu] ^ tb.t[0][c >> 24];
    p += 4;
    len -= 4;
  }
  while (len-- > 0) {
    c = tb.t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32c_combine(std::uint32_t crc1, std::uint32_t crc2,
                             std::uint64_t len2) {
  if (len2 == 0) return crc1;

  // Operator for one zero *bit*, then square twice: one zero byte.
  Mat odd;
  odd[0] = kPoly;
  std::uint32_t row = 1;
  for (std::size_t i = 1; i < 32; ++i) {
    odd[i] = row;
    row <<= 1;
  }
  Mat even = gf2_square(odd);  // two zero bits
  odd = gf2_square(even);      // four zero bits

  // Apply the "advance len2 zero bytes" operator to crc1, squaring the
  // operator per bit of len2 (ping-ponging between the two matrices).
  do {
    even = gf2_square(odd);
    if (len2 & 1u) crc1 = gf2_times(even, crc1);
    len2 >>= 1;
    if (len2 == 0) break;
    odd = gf2_square(even);
    if (len2 & 1u) crc1 = gf2_times(odd, crc1);
    len2 >>= 1;
  } while (len2 != 0);

  return crc1 ^ crc2;
}

}  // namespace ara
