// CRC32C (Castagnoli) — the checksum guarding every byte stream the
// distributed runner and the spilled-YLT trailer rely on (DESIGN.md
// §9). One implementation shared by io (file trailers) and dist (wire
// block checksums), so a block verified on the wire and a row verified
// on disk cannot disagree about what "intact" means.
//
// The combine operation is the piece that makes out-of-order shard
// streaming possible: YltChunkWriter appends disjoint trial blocks in
// completion order, keeps one CRC per (row, block) piece, and at close
// folds the pieces — sorted by trial position — into the CRC of each
// whole row with `crc32c_combine`, producing a trailer bitwise
// identical to the one `save_ylt` computes over the contiguous rows.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ara {

/// Extends `crc` (0 for a fresh stream) over `len` bytes at `data`.
/// crc32c(crc32c(0, a, na), b, nb) == crc32c(0, concat(a,b), na+nb).
std::uint32_t crc32c(std::uint32_t crc, const void* data, std::size_t len);

/// CRC of the concatenation of two streams from their individual CRCs:
/// `crc1` covers the first stream, `crc2` the second, `len2` the
/// second stream's byte length. O(log len2) via GF(2) matrix powers —
/// no data bytes are touched, which is what lets disjoint block CRCs
/// fold into whole-row CRCs after the fact.
std::uint32_t crc32c_combine(std::uint32_t crc1, std::uint32_t crc2,
                             std::uint64_t len2);

}  // namespace ara
