#include "core/engine.hpp"

#include <stdexcept>

namespace ara {

OpCounts count_algorithm_ops(const Portfolio& portfolio, const Yet& yet) {
  if (portfolio.catalogue_size() != yet.catalogue_size()) {
    throw std::invalid_argument(
        "count_algorithm_ops: portfolio and YET index different catalogues");
  }
  const auto occurrences = static_cast<std::uint64_t>(yet.occurrence_count());
  OpCounts ops;
  for (const Layer& layer : portfolio.layers()) {
    const auto elts = static_cast<std::uint64_t>(layer.elt_indices.size());
    ops.event_fetches += occurrences;
    ops.elt_lookups += elts * occurrences;
    ops.financial_ops += elts * occurrences;
    ops.occurrence_ops += occurrences;
    ops.aggregate_ops += occurrences;
  }
  return ops;
}

OpCounts count_fused_algorithm_ops(const Portfolio& portfolio,
                                   const Yet& yet) {
  OpCounts ops = count_algorithm_ops(portfolio, yet);
  // The trial-major sweep reads each occurrence exactly once for all
  // layers; every other count is per (layer, event) work that the
  // fusion does not change.
  if (portfolio.layer_count() > 0) {
    ops.event_fetches = static_cast<std::uint64_t>(yet.occurrence_count());
  }
  return ops;
}

OpCounts range_ops(const Portfolio& p, const Yet& yet,
                   std::size_t trial_begin, std::size_t trial_end) {
  if (p.catalogue_size() != yet.catalogue_size()) {
    throw std::invalid_argument(
        "range_ops: portfolio and YET index different catalogues");
  }
  if (trial_begin > trial_end || trial_end > yet.trial_count()) {
    // Guard against unresolved TrialRanges (end defaults to kAll);
    // callers resolve() against the trial count first.
    throw std::invalid_argument("range_ops: trial range out of bounds");
  }
  const std::uint64_t occurrences =
      yet.offsets().empty()
          ? 0
          : yet.offsets()[trial_end] - yet.offsets()[trial_begin];
  OpCounts ops;
  for (const Layer& layer : p.layers()) {
    const auto elts = static_cast<std::uint64_t>(layer.elt_indices.size());
    ops.event_fetches += occurrences;
    ops.elt_lookups += elts * occurrences;
    ops.financial_ops += elts * occurrences;
    ops.occurrence_ops += occurrences;
    ops.aggregate_ops += occurrences;
  }
  return ops;
}

OpCounts range_fused_ops(const Portfolio& p, const Yet& yet,
                         std::size_t trial_begin, std::size_t trial_end) {
  OpCounts ops = range_ops(p, yet, trial_begin, trial_end);
  if (p.layer_count() > 0 && !yet.offsets().empty()) {
    ops.event_fetches =
        yet.offsets()[trial_end] - yet.offsets()[trial_begin];
  }
  return ops;
}

}  // namespace ara
