#include "core/engine.hpp"

#include <stdexcept>

namespace ara {

OpCounts count_algorithm_ops(const Portfolio& portfolio, const Yet& yet) {
  if (portfolio.catalogue_size() != yet.catalogue_size()) {
    throw std::invalid_argument(
        "count_algorithm_ops: portfolio and YET index different catalogues");
  }
  const auto occurrences = static_cast<std::uint64_t>(yet.occurrence_count());
  OpCounts ops;
  for (const Layer& layer : portfolio.layers()) {
    const auto elts = static_cast<std::uint64_t>(layer.elt_indices.size());
    ops.event_fetches += occurrences;
    ops.elt_lookups += elts * occurrences;
    ops.financial_ops += elts * occurrences;
    ops.occurrence_ops += occurrences;
    ops.aggregate_ops += occurrences;
  }
  return ops;
}

OpCounts count_fused_algorithm_ops(const Portfolio& portfolio,
                                   const Yet& yet) {
  OpCounts ops = count_algorithm_ops(portfolio, yet);
  // The trial-major sweep reads each occurrence exactly once for all
  // layers; every other count is per (layer, event) work that the
  // fusion does not change.
  if (portfolio.layer_count() > 0) {
    ops.event_fetches = static_cast<std::uint64_t>(yet.occurrence_count());
  }
  return ops;
}

}  // namespace ara
