// Engine interface: the five implementations of the paper (sequential,
// multi-core CPU, basic GPU, optimised GPU, multiple GPU) plus the
// fused sequential variant all implement `Engine`.
//
// Every engine produces a real YLT (the numerical results of the
// analysis), the analytic operation counts of the run, the measured
// wall-clock time of the host execution, and the *simulated* time on
// the paper's hardware from the cost models (see DESIGN.md §2 for why
// both exist).
#pragma once

#include <memory>
#include <string>

#include "core/layer.hpp"
#include "core/types.hpp"
#include "core/yet.hpp"
#include "core/ylt.hpp"
#include "perf/phase.hpp"

namespace ara {

namespace parallel {
class ThreadPool;
}

template <typename Real>
struct TableStore;

/// Externally owned shared resources an engine run may draw on instead
/// of rebuilding them per call (see DESIGN.md §4). Everything is
/// optional: a null field means "build/own it yourself", so
/// `run(portfolio, yet)` with a default context behaves exactly like
/// the original one-shot API. The caller keeps the referenced objects
/// alive for the duration of the run; the tables must have been built
/// from the same portfolio that is being analysed.
struct EngineContext {
  const TableStore<double>* tables_f64 = nullptr;
  const TableStore<float>* tables_f32 = nullptr;

  /// Worker pool for host-parallel engines. May be shared by
  /// concurrent runs (the pool's barrier covers all submitted work);
  /// must NOT be the pool the caller itself is executing on, or the
  /// barrier deadlocks.
  parallel::ThreadPool* pool = nullptr;
};

/// Tunables shared by the engine family. Each engine reads the knobs
/// relevant to it and ignores the rest.
struct EngineConfig {
  // Multi-core CPU engine (Fig. 1).
  unsigned cores = 1;             ///< worker threads (paper: 1..8)
  unsigned threads_per_core = 1;  ///< oversubscription (paper: 1..256)

  // GPU engines (Figs. 2-4).
  unsigned block_threads = 256;   ///< CUDA threads per block
  unsigned chunk_size = 96;       ///< events staged per thread per chunk
  bool use_float = true;          ///< optimised kernel: float tables
  bool unroll = true;             ///< optimised kernel: loop unrolling
  bool use_registers = true;      ///< optimised kernel: register scratch
  bool chunking = true;           ///< optimised kernel: shared-mem chunking

  // Profiling.
  bool profile_phases = false;    ///< measure per-phase wall time (slower)
};

/// Result of one aggregate risk analysis run.
struct SimulationResult {
  std::string engine_name;
  Ylt ylt;
  OpCounts ops;

  double wall_seconds = 0.0;             ///< measured host wall clock
  perf::PhaseBreakdown measured_phases;  ///< filled when profile_phases
  perf::PhaseBreakdown simulated_phases; ///< cost model, paper hardware
  double simulated_seconds = 0.0;        ///< simulated_phases.total()

  /// Devices used (1 for single-GPU engines, 0 for CPU engines).
  unsigned devices = 0;
};

class Engine {
 public:
  virtual ~Engine() = default;

  virtual std::string name() const = 0;

  /// Runs the full aggregate risk analysis of `portfolio` against
  /// `yet`, drawing shared resources (prebuilt tables, a persistent
  /// worker pool) from `context` where provided. Both inputs must
  /// index the same event catalogue.
  virtual SimulationResult run(const Portfolio& portfolio, const Yet& yet,
                               const EngineContext& context) const = 0;

  /// One-shot convenience: no shared context, every resource built and
  /// owned by the run (the original paper-shaped API).
  SimulationResult run(const Portfolio& portfolio, const Yet& yet) const {
    return run(portfolio, yet, EngineContext{});
  }
};

/// Algorithmic operation counts of one full analysis in the paper's
/// layer-major formulation (identical for every such engine — the
/// algorithm does the same work everywhere; only the memory placement
/// differs). `global_updates` / `shared_accesses` are zero here;
/// engines fill them according to where their per-event scratch lives.
OpCounts count_algorithm_ops(const Portfolio& portfolio, const Yet& yet);

/// Operation counts of the trial-major fused sweep: the same algorithm
/// (identical lookups, financial/occurrence/aggregate applications per
/// layer) but the YET is streamed once for all layers, so
/// `event_fetches` is the occurrence count instead of occurrences x
/// layers. Equal to `count_algorithm_ops` on single-layer portfolios.
OpCounts count_fused_algorithm_ops(const Portfolio& portfolio, const Yet& yet);

/// Scratch traffic of Algorithm 1 per (layer, event) pair: write lx,
/// read-modify-write lox in the financial step, then the occurrence
/// clamp, prefix sum and aggregate clamp each touch lox once.
constexpr std::uint64_t kScratchTouchesPerEvent = 5;

}  // namespace ara
