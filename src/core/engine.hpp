// Engine interface: the five implementations of the paper (sequential,
// multi-core CPU, basic GPU, optimised GPU, multiple GPU) plus the
// fused sequential variant all implement `Engine`.
//
// Every engine produces a real YLT (the numerical results of the
// analysis), the analytic operation counts of the run, the measured
// wall-clock time of the host execution, and the *simulated* time on
// the paper's hardware from the cost models (see DESIGN.md §2 for why
// both exist).
#pragma once

#include <memory>
#include <string>

#include "core/layer.hpp"
#include "core/simd/policy.hpp"
#include "core/types.hpp"
#include "core/yet.hpp"
#include "core/ylt.hpp"
#include "perf/phase.hpp"

namespace ara {

namespace parallel {
class ThreadPool;
}

template <typename Real>
struct TableStore;

/// Contiguous half-open range of YET trials an engine run covers. The
/// default covers every trial, so existing call sites are untouched.
/// A YLT row is produced independently per trial, which makes the
/// trial dimension exactly concatenative: a run over [b, e) produces
/// rows bitwise identical to the monolithic run's rows b..e-1 (see
/// DESIGN.md §5).
struct TrialRange {
  static constexpr std::size_t kAll = static_cast<std::size_t>(-1);

  std::size_t begin = 0;
  std::size_t end = kAll;

  /// True when the range is the whole-YET default.
  bool whole() const noexcept { return begin == 0 && end == kAll; }

  std::size_t size() const noexcept { return end - begin; }

  /// Clamps the range to an actual trial count. An empty or inverted
  /// range resolves to an empty range at `begin`.
  TrialRange resolve(std::size_t trial_count) const noexcept {
    TrialRange r;
    r.begin = begin < trial_count ? begin : trial_count;
    r.end = end < trial_count ? end : trial_count;
    if (r.end < r.begin) r.end = r.begin;
    return r;
  }

  friend bool operator==(const TrialRange&, const TrialRange&) = default;
};

/// Externally owned shared resources an engine run may draw on instead
/// of rebuilding them per call (see DESIGN.md §4). Everything is
/// optional: a null field means "build/own it yourself", so
/// `run(portfolio, yet)` with a default context behaves exactly like
/// the original one-shot API. The caller keeps the referenced objects
/// alive for the duration of the run; the tables must have been built
/// from the same portfolio that is being analysed.
struct EngineContext {
  const TableStore<double>* tables_f64 = nullptr;
  const TableStore<float>* tables_f32 = nullptr;

  /// Worker pool for host-parallel engines. May be shared by
  /// concurrent runs (the pool's barrier covers all submitted work);
  /// must NOT be the pool the caller itself is executing on, or the
  /// barrier deadlocks.
  parallel::ThreadPool* pool = nullptr;

  /// Trial shard this run covers. Defaults to the whole YET; a proper
  /// sub-range makes the engine produce a *partial* SimulationResult:
  /// a YLT of size() rows (indexed locally, placement recorded in
  /// SimulationResult::trial_begin) with op counts and simulated time
  /// charged for the range only.
  TrialRange trials{};

  /// Replay the run's cost accounting without executing the numeric
  /// sweep: op counts, simulated phases and simulated seconds are
  /// computed exactly as a real run would (the simulated timeline is a
  /// pure function of the workload shape), but the YLT stays empty.
  /// The session's shard merge uses this to reconstitute the
  /// monolithic run's accounting bitwise (DESIGN.md §5).
  bool cost_only = false;
};

/// Tunables shared by the engine family. Each engine reads the knobs
/// relevant to it and ignores the rest.
struct EngineConfig {
  // Multi-core CPU engine (Fig. 1).
  unsigned cores = 1;             ///< worker threads (paper: 1..8)
  unsigned threads_per_core = 1;  ///< oversubscription (paper: 1..256)

  // GPU engines (Figs. 2-4).
  unsigned block_threads = 256;   ///< CUDA threads per block
  unsigned chunk_size = 96;       ///< events staged per thread per chunk
  bool use_float = true;          ///< optimised kernel: float tables
  bool unroll = true;             ///< optimised kernel: loop unrolling
  bool use_registers = true;      ///< optimised kernel: register scratch
  bool chunking = true;           ///< optimised kernel: shared-mem chunking

  // Hot-path vectorization (core/simd/, DESIGN.md §8). kScalar is the
  // bitwise-reference mode — results identical to the pre-SIMD
  // engines — and the default; kAuto dispatches the widest kernel the
  // build + host support. ExecutionPolicy carries the authoritative
  // copy; resolved_config() writes it through to here.
  simd::SimdPolicy simd = simd::SimdPolicy::kScalar;
  unsigned simd_width = 0;        ///< kForceWidth: required lanes (0 = widest)

  // Profiling.
  bool profile_phases = false;    ///< measure per-phase wall time (slower)
};

/// Result of one aggregate risk analysis run. May be *partial*: when
/// the run's EngineContext named a trial sub-range, `ylt` holds only
/// that range's rows (locally indexed from 0) and `trial_begin`
/// records where they sit in the full YET, so partial results merge by
/// block copy (core/shard.hpp).
struct SimulationResult {
  std::string engine_name;
  Ylt ylt;
  OpCounts ops;

  /// Global index of the first trial `ylt` covers (0 for full runs).
  std::size_t trial_begin = 0;

  double wall_seconds = 0.0;             ///< measured host wall clock
  perf::PhaseBreakdown measured_phases;  ///< filled when profile_phases
  perf::PhaseBreakdown simulated_phases; ///< cost model, paper hardware
  double simulated_seconds = 0.0;        ///< simulated_phases.total()

  /// Devices used (1 for single-GPU engines, 0 for CPU engines).
  unsigned devices = 0;

  /// ISA of the dispatched hot-path kernel ("scalar" / "avx2" /
  /// "neon"); empty for engines that don't run the fused sweep (the
  /// reference and combined-table formulations). Recorded in the
  /// bench JSON so perf numbers are attributable to a kernel.
  std::string simd_isa;
};

class Engine {
 public:
  virtual ~Engine() = default;

  virtual std::string name() const = 0;

  /// Runs the full aggregate risk analysis of `portfolio` against
  /// `yet`, drawing shared resources (prebuilt tables, a persistent
  /// worker pool) from `context` where provided. Both inputs must
  /// index the same event catalogue.
  virtual SimulationResult run(const Portfolio& portfolio, const Yet& yet,
                               const EngineContext& context) const = 0;

  /// One-shot convenience: no shared context, every resource built and
  /// owned by the run (the original paper-shaped API).
  SimulationResult run(const Portfolio& portfolio, const Yet& yet) const {
    return run(portfolio, yet, EngineContext{});
  }
};

/// Algorithmic operation counts of one full analysis in the paper's
/// layer-major formulation (identical for every such engine — the
/// algorithm does the same work everywhere; only the memory placement
/// differs). `global_updates` / `shared_accesses` are zero here;
/// engines fill them according to where their per-event scratch lives.
OpCounts count_algorithm_ops(const Portfolio& portfolio, const Yet& yet);

/// Operation counts of the trial-major fused sweep: the same algorithm
/// (identical lookups, financial/occurrence/aggregate applications per
/// layer) but the YET is streamed once for all layers, so
/// `event_fetches` is the occurrence count instead of occurrences x
/// layers. Equal to `count_algorithm_ops` on single-layer portfolios.
OpCounts count_fused_algorithm_ops(const Portfolio& portfolio, const Yet& yet);

/// Operation counts of a contiguous trial range (one shard's or one
/// device's share of the algorithm's work) in the layer-major
/// formulation. Counts are integers derived from the YET's offset
/// table, so contiguous ranges sum *exactly* to the whole-YET counts —
/// the property the shard merge relies on.
OpCounts range_ops(const Portfolio& p, const Yet& yet,
                   std::size_t trial_begin, std::size_t trial_end);

/// Trial-major variant of `range_ops`: the range's occurrences are
/// fetched once for all layers (one fused multi-layer launch instead
/// of one launch per layer); all other counts are unchanged.
OpCounts range_fused_ops(const Portfolio& p, const Yet& yet,
                         std::size_t trial_begin, std::size_t trial_end);

/// Scratch traffic of Algorithm 1 per (layer, event) pair: write lx,
/// read-modify-write lox in the financial step, then the occurrence
/// clamp, prefix sum and aggregate clamp each touch lox once.
constexpr std::uint64_t kScratchTouchesPerEvent = 5;

}  // namespace ara
