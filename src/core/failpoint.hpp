// Seeded fault-injection registry (DESIGN.md §9). A failpoint is a
// named site in the code that can be armed — at runtime, via the
// ARA_FAILPOINTS environment variable or programmatically — with a
// firing probability, a deterministic per-site RNG seed, an optional
// value (e.g. a stall duration in ms) and an optional cap on how many
// times it fires. The chaos tests and bench_dist arm sites in worker
// processes to prove the coordinator detects and recovers from every
// injected failure mode.
//
// Sites in the tree today (all in the dist worker path):
//   worker.crash_mid_shard — _exit after computing, before sending
//   worker.stall           — suspend heartbeats + sleep `value` ms
//   stream.torn_frame      — send a prefix of the frame, drop the link
//   block.bit_flip         — flip one payload bit before framing
//
// Spec grammar (env var or --failpoints CLI flag):
//   SITE=PROB[:SEED[:VALUE[:MAX_FIRES]]][;SITE=...]
// PROB in [0,1]; MAX_FIRES 0 = unlimited.
//
// Sites are compiled to nothing unless the build defines
// ARA_FAILPOINTS_ENABLED (CMake -DARA_FAILPOINTS=ON; the default for
// non-Release build types): the macro below expands to an empty
// statement, so release binaries carry no branch, no registry lookup
// and no string literals at the sites. The registry itself always
// links (it is tiny), so tests can query compiled_in() uniformly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace ara::fail {

/// True when this build compiles the injection sites in.
constexpr bool compiled_in() {
#ifdef ARA_FAILPOINTS_ENABLED
  return true;
#else
  return false;
#endif
}

struct SiteStats {
  std::uint64_t hits = 0;   ///< times the site was evaluated
  std::uint64_t fires = 0;  ///< times it actually fired
};

class Registry {
 public:
  static Registry& instance();

  /// Arms (or re-arms) one site. `max_fires` 0 = unlimited.
  void arm(const std::string& site, double probability, std::uint64_t seed,
           double value = 0.0, std::uint64_t max_fires = 0);

  /// Parses and arms a full spec string; throws std::invalid_argument
  /// on grammar errors (loud — a typo must not silently disarm chaos).
  void arm_from_spec(const std::string& spec);

  /// Arms from the ARA_FAILPOINTS environment variable, once per
  /// process (subsequent calls are no-ops). Called lazily by fire().
  void arm_from_env();

  void disarm_all();

  /// Evaluates the site: counts a hit, rolls the site's own seeded RNG
  /// against its probability, and returns the armed value when it
  /// fires (nullopt otherwise, and always when the site is unarmed).
  std::optional<double> fire(const std::string& site);

  SiteStats stats(const std::string& site) const;

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace ara::fail

// The injection macro. `action` runs with `ara_fp` (std::optional
// <double>, engaged) in scope when the site fires; compiled away
// entirely otherwise.
#ifdef ARA_FAILPOINTS_ENABLED
#define ARA_FAILPOINT(site, action)                                       \
  do {                                                                    \
    if (auto ara_fp = ::ara::fail::Registry::instance().fire(site)) {     \
      (void)ara_fp;                                                       \
      action;                                                             \
    }                                                                     \
  } while (0)
#else
#define ARA_FAILPOINT(site, action) \
  do {                              \
  } while (0)
#endif
