// Layers and portfolios. A Layer is one reinsurance contract: the set
// of ELTs it covers plus its occurrence/aggregate terms. A Portfolio
// owns the ELT pool and the layers referencing into it (layers may
// share ELTs, as in the paper where one ELT can appear under several
// contracts).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/elt.hpp"
#include "core/layer_terms.hpp"

namespace ara {

/// One reinsurance contract.
struct Layer {
  std::string name;
  std::vector<std::size_t> elt_indices;  ///< indices into Portfolio::elts()
  LayerTerms terms;
};

/// A book of contracts over a shared pool of Event Loss Tables.
class Portfolio {
 public:
  Portfolio() = default;

  /// All ELTs must index the same catalogue; every layer must reference
  /// at least one valid ELT index. Violations throw
  /// std::invalid_argument.
  Portfolio(std::vector<Elt> elts, std::vector<Layer> layers);

  const std::vector<Elt>& elts() const noexcept { return elts_; }
  const std::vector<Layer>& layers() const noexcept { return layers_; }

  std::size_t layer_count() const noexcept { return layers_.size(); }
  std::size_t elt_count() const noexcept { return elts_.size(); }

  EventId catalogue_size() const noexcept {
    return elts_.empty() ? 0 : elts_.front().catalogue_size();
  }

  /// Pointers to the ELTs covered by `layer`, in layer order.
  std::vector<const Elt*> layer_elts(const Layer& layer) const;

  /// Mean number of ELTs per layer (the paper quotes 3-30, with 15 for
  /// the headline experiment).
  double mean_elts_per_layer() const;

 private:
  std::vector<Elt> elts_;
  std::vector<Layer> layers_;
};

}  // namespace ara
