#include "core/lookup_table.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace ara {

// ---------------------------------------------------------------------------
// SortedLossTable

SortedLossTable::SortedLossTable(const Elt& elt) {
  events_.reserve(elt.size());
  losses_.reserve(elt.size());
  for (const EventLoss& r : elt.records()) {  // already sorted
    events_.push_back(r.event);
    losses_.push_back(r.loss);
  }
}

double SortedLossTable::lookup(EventId event) const {
  const auto it = std::lower_bound(events_.begin(), events_.end(), event);
  if (it != events_.end() && *it == event) {
    return losses_[static_cast<std::size_t>(it - events_.begin())];
  }
  return 0.0;
}

double SortedLossTable::accesses_per_lookup() const {
  // Binary search touches ~log2(n)+1 cache lines in the worst case.
  const double n = static_cast<double>(std::max<std::size_t>(events_.size(), 1));
  return std::log2(n) + 1.0;
}

std::size_t SortedLossTable::memory_bytes() const {
  return events_.size() * sizeof(EventId) + losses_.size() * sizeof(double);
}

// ---------------------------------------------------------------------------
// HashLossTable

namespace {
// Fibonacci hashing of the event id; good avalanche at trivial cost.
inline std::size_t hash_event(EventId e) {
  return static_cast<std::size_t>(
      (static_cast<std::uint64_t>(e) * 0x9e3779b97f4a7c15ULL) >> 32);
}
}  // namespace

HashLossTable::HashLossTable(const Elt& elt) {
  std::size_t cap = 16;
  while (cap < elt.size() * 2) cap <<= 1;  // <= 50% load factor
  slots_.assign(cap, Slot{});
  mask_ = cap - 1;
  for (const EventLoss& r : elt.records()) {
    // Robin-hood insertion: displace richer entries to bound variance
    // of probe lengths.
    Slot incoming{r.event, r.loss};
    std::size_t pos = hash_event(incoming.event) & mask_;
    std::size_t dist = 0;
    for (;;) {
      Slot& s = slots_[pos];
      if (s.event == kInvalidEvent) {
        s = incoming;
        break;
      }
      const std::size_t their_dist =
          (pos + cap - (hash_event(s.event) & mask_)) & mask_;
      if (their_dist < dist) {
        std::swap(s, incoming);
        dist = their_dist;
      }
      pos = (pos + 1) & mask_;
      ++dist;
    }
  }
}

std::size_t HashLossTable::slot_for(EventId event) const {
  return hash_event(event) & mask_;
}

double HashLossTable::lookup(EventId event) const {
  std::size_t pos = slot_for(event);
  for (;;) {
    const Slot& s = slots_[pos];
    if (s.event == event) return s.loss;
    if (s.event == kInvalidEvent) return 0.0;
    pos = (pos + 1) & mask_;
  }
}

double HashLossTable::accesses_per_lookup() const {
  return 1.0 + mean_probe_length();
}

double HashLossTable::mean_probe_length() const {
  std::size_t occupied = 0;
  std::size_t total = 0;
  const std::size_t cap = slots_.size();
  for (std::size_t pos = 0; pos < cap; ++pos) {
    const Slot& s = slots_[pos];
    if (s.event == kInvalidEvent) continue;
    ++occupied;
    total += (pos + cap - (hash_event(s.event) & mask_)) & mask_;
  }
  return occupied == 0 ? 0.0
                       : static_cast<double>(total) /
                             static_cast<double>(occupied);
}

std::size_t HashLossTable::memory_bytes() const {
  return slots_.size() * sizeof(Slot);
}

// ---------------------------------------------------------------------------
// CompressedLossTable

CompressedLossTable::CompressedLossTable(const Elt& elt) {
  const std::size_t nbits = static_cast<std::size_t>(elt.catalogue_size()) + 1;
  const std::size_t nwords = (nbits + 63) / 64;
  // Round up to whole rank blocks so lookup never bounds-checks.
  const std::size_t nblocks = (nwords + kWordsPerBlock - 1) / kWordsPerBlock;
  bits_.assign(nblocks * kWordsPerBlock, 0);
  block_rank_.assign(nblocks + 1, 0);
  losses_.reserve(elt.size());
  for (const EventLoss& r : elt.records()) {  // ascending event order
    bits_[r.event / 64] |= (1ULL << (r.event % 64));
    losses_.push_back(r.loss);
  }
  std::uint32_t rank = 0;
  for (std::size_t b = 0; b < nblocks; ++b) {
    block_rank_[b] = rank;
    for (std::size_t w = 0; w < kWordsPerBlock; ++w) {
      rank += static_cast<std::uint32_t>(
          std::popcount(bits_[b * kWordsPerBlock + w]));
    }
  }
  block_rank_[nblocks] = rank;
}

double CompressedLossTable::lookup(EventId event) const {
  const std::size_t word = event / 64;
  const std::uint64_t bit = 1ULL << (event % 64);
  if ((bits_[word] & bit) == 0) return 0.0;
  const std::size_t block = word / kWordsPerBlock;
  std::uint32_t rank = block_rank_[block];
  for (std::size_t w = block * kWordsPerBlock; w < word; ++w) {
    rank += static_cast<std::uint32_t>(std::popcount(bits_[w]));
  }
  rank += static_cast<std::uint32_t>(std::popcount(bits_[word] & (bit - 1)));
  return losses_[rank];
}

std::size_t CompressedLossTable::memory_bytes() const {
  return bits_.size() * sizeof(std::uint64_t) +
         block_rank_.size() * sizeof(std::uint32_t) +
         losses_.size() * sizeof(double);
}

// ---------------------------------------------------------------------------
// CuckooLossTable

namespace {
inline std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

std::size_t CuckooLossTable::h1(EventId e) const {
  return static_cast<std::size_t>(mix64(e ^ salt_)) & mask_;
}

std::size_t CuckooLossTable::h2(EventId e) const {
  return static_cast<std::size_t>(
             mix64(static_cast<std::uint64_t>(e) * 0x9e3779b97f4a7c15ULL ^
                   ~salt_)) &
         mask_;
}

bool CuckooLossTable::try_build(const std::vector<EventLoss>& records) {
  t1_.assign(mask_ + 1, Slot{});
  t2_.assign(mask_ + 1, Slot{});
  // Relocation bound: beyond this the table is considered cyclic and
  // we rehash with a new salt (standard cuckoo insertion).
  const std::size_t max_kicks = 16 + 4 * static_cast<std::size_t>(
      std::log2(static_cast<double>(records.size() + 2)) * 8);
  for (const EventLoss& r : records) {
    Slot item{r.event, r.loss};
    bool in_first = true;
    for (std::size_t kick = 0; kick <= max_kicks; ++kick) {
      Slot& slot = in_first ? t1_[h1(item.event)] : t2_[h2(item.event)];
      if (slot.event == kInvalidEvent) {
        slot = item;
        item.event = kInvalidEvent;
        break;
      }
      std::swap(slot, item);
      in_first = !in_first;
    }
    if (item.event != kInvalidEvent) return false;  // cycle: rehash
  }
  return true;
}

CuckooLossTable::CuckooLossTable(const Elt& elt) {
  std::size_t cap = 8;
  // Two tables at ~2x total => load factor ~0.5, where cuckoo
  // insertion succeeds with high probability.
  while (cap * 2 < elt.size() * 2 + 2) cap <<= 1;
  mask_ = cap - 1;
  salt_ = 0x5bf03635ULL;
  for (int attempt = 0; attempt < 64; ++attempt) {
    if (try_build(elt.records())) return;
    salt_ = mix64(salt_ + attempt + 1);
    if (attempt % 8 == 7) {  // persistent cycles: grow
      cap <<= 1;
      mask_ = cap - 1;
    }
  }
  throw std::runtime_error("CuckooLossTable: rehash limit exceeded");
}

double CuckooLossTable::lookup(EventId event) const {
  const Slot& a = t1_[h1(event)];
  if (a.event == event) return a.loss;
  const Slot& b = t2_[h2(event)];
  if (b.event == event) return b.loss;
  return 0.0;
}

std::size_t CuckooLossTable::memory_bytes() const {
  return (t1_.size() + t2_.size()) * sizeof(Slot);
}

// ---------------------------------------------------------------------------
// CombinedDirectTable

template <typename Real>
CombinedDirectTable<Real>::CombinedDirectTable(
    const std::vector<const Elt*>& elts)
    : elt_count_(elts.size()) {
  if (elts.empty()) {
    throw std::invalid_argument("CombinedDirectTable: no ELTs");
  }
  const EventId cat = elts.front()->catalogue_size();
  for (const Elt* e : elts) {
    if (e == nullptr || e->catalogue_size() != cat) {
      throw std::invalid_argument(
          "CombinedDirectTable: ELTs must share one catalogue");
    }
  }
  data_.assign((static_cast<std::size_t>(cat) + 1) * elt_count_, Real(0));
  for (std::size_t j = 0; j < elts.size(); ++j) {
    for (const EventLoss& r : elts[j]->records()) {
      data_[static_cast<std::size_t>(r.event) * elt_count_ + j] =
          static_cast<Real>(r.loss);
    }
  }
}

template class CombinedDirectTable<float>;
template class CombinedDirectTable<double>;

// ---------------------------------------------------------------------------
// Factory

std::unique_ptr<LossLookup> make_lookup(LookupKind kind, const Elt& elt) {
  switch (kind) {
    case LookupKind::kDirectAccess64:
      return std::make_unique<DirectAccessTable<double>>(elt);
    case LookupKind::kDirectAccess32:
      return std::make_unique<DirectAccessTable<float>>(elt);
    case LookupKind::kSorted:
      return std::make_unique<SortedLossTable>(elt);
    case LookupKind::kHash:
      return std::make_unique<HashLossTable>(elt);
    case LookupKind::kCuckoo:
      return std::make_unique<CuckooLossTable>(elt);
    case LookupKind::kCompressed:
      return std::make_unique<CompressedLossTable>(elt);
  }
  throw std::invalid_argument("make_lookup: unknown kind");
}

}  // namespace ara
