#include "core/reference_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/trial_math.hpp"
#include "perf/cpu_cost_model.hpp"
#include "perf/machine_profile.hpp"
#include "perf/stopwatch.hpp"

namespace ara {

SimulationResult ReferenceEngine::run(const Portfolio& portfolio,
                                      const Yet& yet,
                                      const EngineContext& context) const {
  if (portfolio.catalogue_size() != yet.catalogue_size()) {
    throw std::invalid_argument(
        "ReferenceEngine: portfolio and YET index different catalogues");
  }
  const TrialRange range = context.trials.resolve(yet.trial_count());

  SimulationResult result;
  result.engine_name = name();
  result.trial_begin = range.begin;
  result.ops = range_ops(portfolio, yet, range.begin, range.end);
  result.ops.global_updates = result.ops.occurrence_ops *  // per (layer,event)
                              kScratchTouchesPerEvent;

  perf::Stopwatch wall;
  if (context.cost_only) {
    const perf::CpuCostModel model(perf::intel_i7_2600());
    result.simulated_phases = model.estimate(result.ops, /*cores=*/1);
    result.simulated_seconds = result.simulated_phases.total();
    return result;
  }
  TableStore<double> local;
  const TableStore<double>& tables =
      *select_tables(context.tables_f64, local, portfolio);
  result.ylt = Ylt(portfolio.layer_count(), range.size());

  // Per-trial scratch arrays, sized to the largest trial: x (ground-up
  // losses of one ELT), lx (after financial terms) and lox (combined
  // event losses) — the d-indexed arrays of Algorithm 1.
  std::size_t max_events = 0;
  for (std::size_t t = range.begin; t < range.end; ++t) {
    max_events = std::max(max_events, yet.trial_size(static_cast<TrialId>(t)));
  }
  std::vector<double> x(max_events), lx(max_events), lox(max_events);

  const bool profiled = config_.profile_phases;
  perf::Stopwatch phase;
  auto charge = [&](perf::Phase p) {
    if (profiled) {
      result.measured_phases[p] += phase.seconds();
      phase.reset();
    }
  };

  // Line 2: for all a in L
  for (std::size_t a = 0; a < portfolio.layer_count(); ++a) {
    const BoundLayer<double> layer = bind_layer(portfolio, tables, a);
    const auto& lt = layer.layer_terms;
    // Line 3: for all b in YET (this run's trial range)
    for (std::size_t b = range.begin; b < range.end; ++b) {
      const auto trial = yet.trial(static_cast<TrialId>(b));
      const std::size_t k = trial.size();
      if (profiled) phase.reset();
      std::fill_n(lox.begin(), k, 0.0);
      charge(perf::Phase::kOther);

      // Line 4: for all c in (EL in a) — each ELT covered by the layer.
      for (std::size_t c = 0; c < layer.elt_count(); ++c) {
        // Lines 5-7: look up each event of the trial in ELT c.
        for (std::size_t d = 0; d < k; ++d) {
          x[d] = layer.tables[c]->at(trial[d].event);
        }
        charge(perf::Phase::kLossLookup);
        // Lines 8-10: apply the ELT's financial terms.
        for (std::size_t d = 0; d < k; ++d) {
          lx[d] = apply_financial_terms(x[d], layer.terms[c]);
        }
        charge(perf::Phase::kFinancialTerms);
        // Lines 11-13: accumulate across ELTs into one loss per event.
        for (std::size_t d = 0; d < k; ++d) {
          lox[d] += lx[d];
        }
        charge(perf::Phase::kFinancialTerms);
      }

      // Lines 15-17: occurrence terms.
      for (std::size_t d = 0; d < k; ++d) {
        lox[d] = apply_occurrence_terms(lox[d], lt);
      }
      charge(perf::Phase::kOccurrenceTerms);
      double max_occ = 0.0;
      for (std::size_t d = 0; d < k; ++d) {
        max_occ = std::max(max_occ, lox[d]);
      }
      charge(perf::Phase::kOther);

      // Lines 18-20: prefix sum.
      for (std::size_t d = 1; d < k; ++d) {
        lox[d] += lox[d - 1];
      }
      // Lines 21-23: aggregate terms on the cumulative losses.
      for (std::size_t d = 0; d < k; ++d) {
        lox[d] = apply_aggregate_terms(lox[d], lt);
      }
      // Lines 24-26: difference back to per-event marginal losses.
      for (std::size_t d = k; d-- > 1;) {
        lox[d] -= lox[d - 1];
      }
      // Lines 27-29: the trial (year) loss l_r.
      double lr = 0.0;
      for (std::size_t d = 0; d < k; ++d) {
        lr += lox[d];
      }
      charge(perf::Phase::kAggregateTerms);

      result.ylt.annual_loss(a, static_cast<TrialId>(b - range.begin)) = lr;
      result.ylt.max_occurrence_loss(
          a, static_cast<TrialId>(b - range.begin)) = max_occ;
    }
  }
  result.wall_seconds = wall.seconds();

  // Simulated time on the paper's i7-2600, sequential configuration.
  const perf::CpuCostModel model(perf::intel_i7_2600());
  result.simulated_phases = model.estimate(result.ops, /*cores=*/1);
  result.simulated_seconds = result.simulated_phases.total();
  return result;
}

}  // namespace ara
