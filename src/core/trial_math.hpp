// Shared per-trial simulation math.
//
// `simulate_trial_fused` is the single-pass formulation of Algorithm 1
// lines 4-29: mathematically identical to the literal four-pass
// version (the reference engine implements that one, and a property
// suite asserts equality), but streaming — it keeps only O(1) state
// per trial, which is what the optimised GPU kernel holds in
// registers.
//
// Templated on the loss precision: the optimised GPU engine
// instantiates float (the paper's "reducing the precision of
// variables" optimisation); everything else uses double.
#pragma once

#include <span>
#include <vector>

#include "core/financial_terms.hpp"
#include "core/layer.hpp"
#include "core/layer_terms.hpp"
#include "core/lookup_table.hpp"
#include "core/types.hpp"

namespace ara {

/// Per-trial outputs: the year loss (Algorithm 1's l_r) and the
/// maximum single-occurrence loss net of occurrence terms (for OEP
/// curves).
template <typename Real>
struct TrialOutcome {
  Real annual = Real(0);
  Real max_occurrence = Real(0);
};

/// One layer's tables, bound to precision `Real`: a direct access
/// table plus financial terms per covered ELT.
template <typename Real>
struct BoundLayer {
  std::vector<const DirectAccessTable<Real>*> tables;
  std::vector<FinancialTerms> terms;
  LayerTerms layer_terms;

  std::size_t elt_count() const noexcept { return tables.size(); }
};

/// Builds per-layer direct access tables in precision `Real`. The
/// returned storage owns the tables; `bind_layer` views into it.
template <typename Real>
struct TableStore {
  std::vector<std::vector<DirectAccessTable<Real>>> per_layer;
};

template <typename Real>
TableStore<Real> build_tables(const Portfolio& portfolio) {
  TableStore<Real> store;
  store.per_layer.reserve(portfolio.layer_count());
  for (const Layer& layer : portfolio.layers()) {
    std::vector<DirectAccessTable<Real>> tabs;
    tabs.reserve(layer.elt_indices.size());
    for (const std::size_t idx : layer.elt_indices) {
      tabs.emplace_back(portfolio.elts()[idx]);
    }
    store.per_layer.push_back(std::move(tabs));
  }
  return store;
}

template <typename Real>
BoundLayer<Real> bind_layer(const Portfolio& portfolio,
                            const TableStore<Real>& store,
                            std::size_t layer_index) {
  const Layer& layer = portfolio.layers()[layer_index];
  BoundLayer<Real> bound;
  bound.layer_terms = layer.terms;
  bound.tables.reserve(layer.elt_indices.size());
  bound.terms.reserve(layer.elt_indices.size());
  for (std::size_t j = 0; j < layer.elt_indices.size(); ++j) {
    bound.tables.push_back(&store.per_layer[layer_index][j]);
    bound.terms.push_back(portfolio.elts()[layer.elt_indices[j]].terms());
  }
  return bound;
}

/// Single-pass evaluation of one trial against one layer.
template <typename Real>
TrialOutcome<Real> simulate_trial_fused(
    std::span<const EventOccurrence> trial, const BoundLayer<Real>& layer) {
  TrialOutcome<Real> out;
  Real cumulative = Real(0);
  Real prev_capped = Real(0);
  const std::size_t elts = layer.elt_count();
  for (const EventOccurrence& occ : trial) {
    // Steps 1-2: lookup + financial terms, accumulated across ELTs.
    Real combined = Real(0);
    for (std::size_t j = 0; j < elts; ++j) {
      const Real ground = layer.tables[j]->at(occ.event);
      combined += apply_financial_terms(ground, layer.terms[j]);
    }
    // Step 3: occurrence terms.
    const Real occ_loss = apply_occurrence_terms(combined, layer.layer_terms);
    if (occ_loss > out.max_occurrence) out.max_occurrence = occ_loss;
    // Step 4: running aggregate terms (prefix sum + clamp + diff).
    cumulative += occ_loss;
    const Real capped = apply_aggregate_terms(cumulative, layer.layer_terms);
    out.annual += capped - prev_capped;
    prev_capped = capped;
  }
  return out;
}

}  // namespace ara
