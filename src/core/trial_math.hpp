// Shared per-trial simulation math.
//
// `simulate_trial_fused` is the single-pass formulation of Algorithm 1
// lines 4-29: mathematically identical to the literal four-pass
// version (the reference engine implements that one, and a property
// suite asserts equality), but streaming — it keeps only O(1) state
// per trial, which is what the optimised GPU kernel holds in
// registers.
//
// `simulate_trial_multilayer` is the trial-major formulation on top of
// the fused one: a single pass over the trial's occurrences updates
// the running state of *every* bound layer, so the YET (by far the
// largest input) is streamed once per trial instead of once per
// (layer, trial), and all of an event id's table lookups across layers
// happen while the occurrence is hot in cache. Each layer's operand
// sequence is exactly the one `simulate_trial_fused` executes, so the
// two formulations are bitwise identical per layer (property-tested).
//
// Templated on the loss precision: the optimised GPU engine
// instantiates float (the paper's "reducing the precision of
// variables" optimisation); everything else uses double.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/financial_terms.hpp"
#include "core/layer.hpp"
#include "core/layer_terms.hpp"
#include "core/lookup_table.hpp"
#include "core/types.hpp"

namespace ara {

/// Per-trial outputs: the year loss (Algorithm 1's l_r) and the
/// maximum single-occurrence loss net of occurrence terms (for OEP
/// curves).
template <typename Real>
struct TrialOutcome {
  Real annual = Real(0);
  Real max_occurrence = Real(0);
};

/// One layer's tables, bound to precision `Real`: a direct access
/// table plus financial terms per covered ELT.
template <typename Real>
struct BoundLayer {
  std::vector<const DirectAccessTable<Real>*> tables;
  std::vector<FinancialTerms> terms;
  LayerTerms layer_terms;

  std::size_t elt_count() const noexcept { return tables.size(); }
};

/// Direct access tables for a portfolio in precision `Real`. Layers
/// may share ELTs (the paper's portfolios do), so the store owns one
/// table per *distinct* referenced ELT and `per_layer` holds views:
/// building a book of 30 layers over a shared 40-ELT pool constructs
/// 40 dense tables, not up to 900. `tables` is sized exactly once, so
/// the `per_layer` pointers stay valid for the store's lifetime and
/// survive moves (vector storage is stable under move) — the store is
/// cheap to move into a session-level cache.
template <typename Real>
struct TableStore {
  std::vector<DirectAccessTable<Real>> tables;  ///< one per distinct ELT
  std::vector<std::vector<const DirectAccessTable<Real>*>> per_layer;

  TableStore() = default;
  // Copying would deep-copy `tables` but leave `per_layer` viewing the
  // *source* store — a dangling trap. Moves keep the views valid
  // (vector storage is stable under move), so the store is move-only.
  TableStore(const TableStore&) = delete;
  TableStore& operator=(const TableStore&) = delete;
  TableStore(TableStore&&) noexcept = default;
  TableStore& operator=(TableStore&&) noexcept = default;

  /// Number of dense tables actually materialised.
  std::size_t distinct_table_count() const noexcept { return tables.size(); }
};

template <typename Real>
TableStore<Real> build_tables(const Portfolio& portfolio) {
  constexpr std::size_t kUnreferenced = static_cast<std::size_t>(-1);
  TableStore<Real> store;

  // First pass: assign each distinct referenced ELT a slot (in first-
  // reference order), so `tables` can be reserved exactly once.
  std::vector<std::size_t> slot(portfolio.elt_count(), kUnreferenced);
  std::vector<std::size_t> slot_to_elt;
  for (const Layer& layer : portfolio.layers()) {
    for (const std::size_t idx : layer.elt_indices) {
      if (slot[idx] == kUnreferenced) {
        slot[idx] = slot_to_elt.size();
        slot_to_elt.push_back(idx);
      }
    }
  }

  store.tables.reserve(slot_to_elt.size());
  for (const std::size_t idx : slot_to_elt) {
    store.tables.emplace_back(portfolio.elts()[idx]);
  }

  store.per_layer.reserve(portfolio.layer_count());
  for (const Layer& layer : portfolio.layers()) {
    std::vector<const DirectAccessTable<Real>*> views;
    views.reserve(layer.elt_indices.size());
    for (const std::size_t idx : layer.elt_indices) {
      views.push_back(&store.tables[slot[idx]]);
    }
    store.per_layer.push_back(std::move(views));
  }
  return store;
}

template <typename Real>
BoundLayer<Real> bind_layer(const Portfolio& portfolio,
                            const TableStore<Real>& store,
                            std::size_t layer_index) {
  const Layer& layer = portfolio.layers()[layer_index];
  BoundLayer<Real> bound;
  bound.layer_terms = layer.terms;
  bound.tables.reserve(layer.elt_indices.size());
  bound.terms.reserve(layer.elt_indices.size());
  for (std::size_t j = 0; j < layer.elt_indices.size(); ++j) {
    bound.tables.push_back(store.per_layer[layer_index][j]);
    bound.terms.push_back(portfolio.elts()[layer.elt_indices[j]].terms());
  }
  return bound;
}

/// Borrow-or-build: returns `shared` when the caller was handed a
/// prebuilt store (e.g. the session's cache), otherwise builds the
/// portfolio's tables into `local` and returns that. The returned
/// pointer is valid as long as both arguments are.
template <typename Real>
const TableStore<Real>* select_tables(const TableStore<Real>* shared,
                                      TableStore<Real>& local,
                                      const Portfolio& portfolio) {
  if (shared != nullptr) return shared;
  local = build_tables<Real>(portfolio);
  return &local;
}

/// All layers of the portfolio bound at once (the input of the
/// trial-major sweep).
template <typename Real>
std::vector<BoundLayer<Real>> bind_all_layers(const Portfolio& portfolio,
                                              const TableStore<Real>& store) {
  std::vector<BoundLayer<Real>> bound;
  bound.reserve(portfolio.layer_count());
  for (std::size_t a = 0; a < portfolio.layer_count(); ++a) {
    bound.push_back(bind_layer(portfolio, store, a));
  }
  return bound;
}

/// Running state of one layer inside a fused sweep: the fused
/// formulation's O(1) registers plus the finished outcome.
template <typename Real>
struct LayerTrialState {
  Real cumulative = Real(0);
  Real prev_capped = Real(0);
  TrialOutcome<Real> out;
};

/// One occurrence applied to one layer's running state — the single
/// operand sequence every fused formulation executes: lookup +
/// financial terms accumulated across ELTs, occurrence terms, then the
/// running aggregate terms (prefix sum + clamp + diff). The per-layer
/// and trial-major CPU sweeps and the chunk-staged GPU kernels all
/// call this; the bitwise identity the engines promise depends on
/// there being exactly one copy of this sequence.
template <typename Real>
inline void apply_event_to_layer(EventId ev, const BoundLayer<Real>& layer,
                                 LayerTrialState<Real>& s) {
  Real combined = Real(0);
  const std::size_t elts = layer.elt_count();
  for (std::size_t j = 0; j < elts; ++j) {
    combined += apply_financial_terms(layer.tables[j]->at(ev), layer.terms[j]);
  }
  const Real occ_loss = apply_occurrence_terms(combined, layer.layer_terms);
  if (occ_loss > s.out.max_occurrence) s.out.max_occurrence = occ_loss;
  s.cumulative += occ_loss;
  const Real capped = apply_aggregate_terms(s.cumulative, layer.layer_terms);
  s.out.annual += capped - s.prev_capped;
  s.prev_capped = capped;
}

/// Single-pass evaluation of one trial against one layer.
template <typename Real>
TrialOutcome<Real> simulate_trial_fused(
    std::span<const EventOccurrence> trial, const BoundLayer<Real>& layer) {
  LayerTrialState<Real> s;
  for (const EventOccurrence& occ : trial) {
    apply_event_to_layer(occ.event, layer, s);
  }
  return s.out;
}

/// Trial-major evaluation of one trial against *all* bound layers in a
/// single pass over the occurrences. `state` (one entry per layer,
/// reused across trials by the caller to avoid per-trial allocation)
/// is reset on entry; on return `state[a].out` is exactly what
/// `simulate_trial_fused(trial, layers[a])` returns — the per-layer
/// operand order is identical, so the results are bitwise equal.
template <typename Real>
void simulate_trial_multilayer(std::span<const EventOccurrence> trial,
                               std::span<const BoundLayer<Real>> layers,
                               std::span<LayerTrialState<Real>> state) {
  for (auto& s : state) s = LayerTrialState<Real>{};
  for (const EventOccurrence& occ : trial) {
    // One YET read serves every layer; each event id's table lookups
    // across layers happen back to back.
    for (std::size_t a = 0; a < layers.size(); ++a) {
      apply_event_to_layer(occ.event, layers[a], state[a]);
    }
  }
}

}  // namespace ara
