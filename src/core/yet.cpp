#include "core/yet.hpp"

#include <stdexcept>

namespace ara {

Yet::Yet(const std::vector<std::vector<EventOccurrence>>& trials,
         EventId catalogue_size)
    : catalogue_size_(catalogue_size) {
  offsets_.reserve(trials.size() + 1);
  offsets_.push_back(0);
  std::size_t total = 0;
  for (const auto& t : trials) total += t.size();
  occurrences_.reserve(total);
  for (const auto& t : trials) {
    occurrences_.insert(occurrences_.end(), t.begin(), t.end());
    offsets_.push_back(occurrences_.size());
  }
  validate();
}

Yet::Yet(std::vector<EventOccurrence> occurrences,
         std::vector<std::size_t> offsets, EventId catalogue_size)
    : occurrences_(std::move(occurrences)),
      offsets_(std::move(offsets)),
      catalogue_size_(catalogue_size) {
  if (offsets_.empty() || offsets_.front() != 0 ||
      offsets_.back() != occurrences_.size()) {
    throw std::invalid_argument("Yet: malformed CSR offsets");
  }
  validate();
}

void Yet::validate() const {
  if (catalogue_size_ == 0) {
    throw std::invalid_argument("Yet: catalogue_size must be > 0");
  }
  for (std::size_t i = 0; i + 1 < offsets_.size(); ++i) {
    if (offsets_[i] > offsets_[i + 1]) {
      throw std::invalid_argument("Yet: offsets must be non-decreasing");
    }
    Timestamp prev = 0;
    for (std::size_t k = offsets_[i]; k < offsets_[i + 1]; ++k) {
      const EventOccurrence& o = occurrences_[k];
      if (o.event == kInvalidEvent || o.event > catalogue_size_) {
        throw std::invalid_argument("Yet: event id out of catalogue range");
      }
      if (o.time < prev) {
        throw std::invalid_argument(
            "Yet: occurrences must be time-ordered within a trial");
      }
      prev = o.time;
    }
  }
}

}  // namespace ara
