#include "core/ylt.hpp"

#include <algorithm>
#include <stdexcept>

namespace ara {

void Ylt::merge_trial_block(const Ylt& other, std::size_t trial_begin) {
  if (other.layer_count_ != layer_count_) {
    throw std::invalid_argument("Ylt::merge_trial_block: layer count mismatch");
  }
  if (trial_begin + other.trial_count_ > trial_count_) {
    throw std::invalid_argument("Ylt::merge_trial_block: range out of bounds");
  }
  for (std::size_t l = 0; l < layer_count_; ++l) {
    std::copy_n(other.annual_.begin() + l * other.trial_count_,
                other.trial_count_,
                annual_.begin() + l * trial_count_ + trial_begin);
    std::copy_n(other.max_occurrence_.begin() + l * other.trial_count_,
                other.trial_count_,
                max_occurrence_.begin() + l * trial_count_ + trial_begin);
  }
}

}  // namespace ara
