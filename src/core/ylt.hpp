// Year Loss Table (YLT): the simulation output — one aggregate annual
// loss per (layer, trial) — plus the per-trial maximum occurrence loss,
// which lets the metrics module compute both AEP (aggregate) and OEP
// (occurrence) exceedance curves.
#pragma once

#include <cstddef>
#include <vector>

#include "core/types.hpp"

namespace ara {

/// Output table of an aggregate risk analysis run. Row-major:
/// layer-major blocks of trial losses, so one layer's losses are a
/// contiguous span (what the metrics operate on).
class Ylt {
 public:
  Ylt() = default;
  Ylt(std::size_t layer_count, std::size_t trial_count)
      : layer_count_(layer_count),
        trial_count_(trial_count),
        annual_(layer_count * trial_count, 0.0),
        max_occurrence_(layer_count * trial_count, 0.0) {}

  std::size_t layer_count() const noexcept { return layer_count_; }
  std::size_t trial_count() const noexcept { return trial_count_; }

  double& annual_loss(std::size_t layer, TrialId trial) {
    return annual_[layer * trial_count_ + trial];
  }
  double annual_loss(std::size_t layer, TrialId trial) const {
    return annual_[layer * trial_count_ + trial];
  }

  double& max_occurrence_loss(std::size_t layer, TrialId trial) {
    return max_occurrence_[layer * trial_count_ + trial];
  }
  double max_occurrence_loss(std::size_t layer, TrialId trial) const {
    return max_occurrence_[layer * trial_count_ + trial];
  }

  /// Contiguous annual losses of one layer (all trials).
  const double* layer_annual(std::size_t layer) const {
    return annual_.data() + layer * trial_count_;
  }
  const double* layer_max_occurrence(std::size_t layer) const {
    return max_occurrence_.data() + layer * trial_count_;
  }

  std::vector<double> layer_annual_vector(std::size_t layer) const {
    return {layer_annual(layer), layer_annual(layer) + trial_count_};
  }
  std::vector<double> layer_max_occurrence_vector(std::size_t layer) const {
    return {layer_max_occurrence(layer),
            layer_max_occurrence(layer) + trial_count_};
  }

  const std::vector<double>& annual_raw() const noexcept { return annual_; }
  const std::vector<double>& max_occurrence_raw() const noexcept {
    return max_occurrence_;
  }

  /// Copies `other`'s trial range [trial_begin, trial_begin+n) for all
  /// layers into this table (multi-device result merge). `other` must
  /// have the same layer count and `n == other.trial_count()`.
  void merge_trial_block(const Ylt& other, std::size_t trial_begin);

 private:
  std::size_t layer_count_ = 0;
  std::size_t trial_count_ = 0;
  std::vector<double> annual_;
  std::vector<double> max_occurrence_;
};

/// Consumer of partial YLT trial blocks — the streaming counterpart of
/// holding the whole table. A producer (ShardMerger in non-materializing
/// mode, or an out-of-core reader) hands each disjoint block exactly
/// once, in arbitrary completion order; `block` covers global trials
/// [trial_begin, trial_begin + block.trial_count()) with all layers and
/// local trial indexing. Implementations must tolerate concurrent
/// calls (the metric reducers and the session's spill sink serialize
/// internally).
class YltBlockSink {
 public:
  virtual ~YltBlockSink() = default;
  virtual void consume(const Ylt& block, std::size_t trial_begin) = 0;
};

}  // namespace ara
