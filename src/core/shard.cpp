#include "core/shard.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace ara {

double shard_bytes_per_trial(std::size_t layer_count,
                             double mean_events_per_trial) {
  return mean_events_per_trial * sizeof(EventOccurrence) +
         sizeof(std::size_t) +
         static_cast<double>(layer_count) * 2 * sizeof(double);
}

ShardPlan plan_shards(std::size_t total_trials, std::size_t shard_trials,
                      std::size_t memory_budget_bytes,
                      double bytes_per_trial) {
  ShardPlan plan;
  plan.total_trials = total_trials;
  if (shard_trials > 0) {
    plan.shard_trials = shard_trials;
  } else if (memory_budget_bytes > 0 && bytes_per_trial > 0.0) {
    const auto fit = static_cast<std::size_t>(
        static_cast<double>(memory_budget_bytes) / bytes_per_trial);
    plan.shard_trials = std::max<std::size_t>(1, fit);
  } else {
    plan.shard_trials = total_trials;  // single monolithic shard
  }
  return plan;
}

std::vector<TrialRange> shard_ranges(std::size_t begin, std::size_t end,
                                     std::size_t shard_trials) {
  std::vector<TrialRange> ranges;
  if (end <= begin) return ranges;
  const std::size_t size = shard_trials == 0 ? end - begin : shard_trials;
  ranges.reserve((end - begin + size - 1) / size);
  for (std::size_t b = begin; b < end; b += size) {
    ranges.push_back({b, std::min(b + size, end)});
  }
  return ranges;
}

ShardMerger::ShardMerger(std::size_t layer_count, std::size_t trial_count,
                         YltBlockSink* sink, bool materialize)
    : layer_count_(layer_count),
      trial_count_(trial_count),
      sink_(sink),
      materialize_(materialize) {
  // A non-materializing merger is the whole point of the streaming
  // retention modes: the layers x trials table is never allocated.
  if (materialize_) merged_.ylt = Ylt(layer_count, trial_count);
}

namespace {

std::string range_str(std::size_t begin, std::size_t end) {
  return "[" + std::to_string(begin) + ", " + std::to_string(end) + ")";
}

}  // namespace

void ShardMerger::add(const SimulationResult& partial) {
  const std::size_t begin = partial.trial_begin;
  const std::size_t end = begin + partial.ylt.trial_count();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Validate shape, bounds and disjointness before recording, so
    // the copy below cannot throw and overlapping shards (which would
    // silently double-count ops) are rejected. Rejections name the
    // offending trial range: when the shards come from remote workers
    // the range is the only handle the operator has on which lease
    // went wrong.
    if (partial.ylt.layer_count() != layer_count_) {
      throw std::invalid_argument(
          "ShardMerger::add: layer count mismatch for shard " +
          range_str(begin, end) + ": got " +
          std::to_string(partial.ylt.layer_count()) + ", expected " +
          std::to_string(layer_count_));
    }
    if (end > trial_count_) {
      throw std::invalid_argument(
          "ShardMerger::add: shard " + range_str(begin, end) +
          " out of bounds for " + std::to_string(trial_count_) + " trials");
    }
    if (!blocks_.try_reserve(begin, end)) {
      throw std::logic_error("ShardMerger::add: shard " +
                             range_str(begin, end) +
                             " overlaps an already-merged shard");
    }
    merged_.ops += partial.ops;
    merged_.wall_seconds += partial.wall_seconds;
    merged_.measured_phases += partial.measured_phases;
    sharded_simulated_ += partial.simulated_seconds;
    if (first_) {
      merged_.engine_name = partial.engine_name;
      merged_.devices = partial.devices;
      first_ = false;
    }
  }
  // The O(layers x rows) copy and the sink call run outside the lock:
  // the range was reserved above, so concurrent adds handle disjoint
  // rows and shard completions do not serialise on each other (the
  // sink serialises itself if it must).
  if (materialize_) {
    merged_.ylt.merge_trial_block(partial.ylt, partial.trial_begin);
  }
  if (sink_ != nullptr) sink_->consume(partial.ylt, partial.trial_begin);
  // Coverage advances only after the copy/sink lands, so
  // merged_trials() reaching trial_count (and finish() succeeding)
  // implies every row is fully written and every block fully consumed
  // — a poller can never move the result out from under an in-flight
  // copy.
  std::lock_guard<std::mutex> lock(mutex_);
  covered_ += partial.ylt.trial_count();
}

std::size_t ShardMerger::merged_trials() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return covered_;
}

double ShardMerger::sharded_simulated_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sharded_simulated_;
}

SimulationResult ShardMerger::finish() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (covered_ != trial_count_) {
    // Name the holes: a distributed run that lost a lease needs to
    // know *which* trials never arrived, not just how many.
    std::string gaps;
    std::size_t listed = 0;
    blocks_.for_each_gap(trial_count_, [&](std::size_t begin,
                                           std::size_t end) {
      if (listed == 8) {
        gaps += ", ...";
      } else if (listed < 8) {
        if (!gaps.empty()) gaps += ", ";
        gaps += range_str(begin, end);
      }
      ++listed;
    });
    throw std::logic_error(
        "ShardMerger::finish: shards cover " + std::to_string(covered_) +
        " of " + std::to_string(trial_count_) + " trials; missing " + gaps);
  }
  return std::move(merged_);
}

}  // namespace ara
