// ShardCoordinator: the distributing counterpart of the session's
// run_sharded (DESIGN.md §9). It owns a listening socket, hands
// trial-range *leases* to remote ara_worker processes, folds their
// checksummed result blocks through the same ShardMerger the local
// path uses, and reconstitutes the monolithic run's accounting with a
// cost-only replay — so a distributed run is bitwise identical to the
// single-process run, including op counts and simulated seconds.
//
// Fault model (the whole point):
//   - worker crash / disconnect  -> its open leases reassign instantly
//   - worker stall               -> lease heartbeat deadline expires,
//                                   the lease reassigns; a late block
//                                   from the stalled worker is either
//                                   a byte-identical duplicate
//                                   (discarded, counted) or a
//                                   conflict (loud error)
//   - torn frame                 -> the read loop throws, the
//                                   connection drops, leases reassign
//   - corrupt block (CRC fail)   -> block discarded, worker dropped,
//                                   lease reassigned
//   - all workers lost           -> the coordinator degrades to local
//                                   execution of whatever is uncovered
//
// Completion is idempotent by construction: DisjointRangeSet admits a
// range exactly once, and a range that arrives again must match the
// accepted block's CRC byte for byte.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/session.hpp"
#include "dist/protocol.hpp"
#include "serve/server.hpp"

namespace ara::dist {

struct DistConfig {
  /// Listen address ("unix:PATH" or "HOST:PORT"; TCP port 0 = kernel
  /// picks, see ShardCoordinator::endpoint()).
  serve::Endpoint endpoint;

  JobSpec job;

  /// Trials per lease (0 = derive ~2 leases per expected worker, min 1).
  std::uint64_t lease_trials = 0;

  /// A lease with no heartbeat for this long is considered lost and
  /// its range requeued. Must comfortably exceed job.heartbeat_ms.
  std::uint64_t lease_timeout_ms = 1000;

  /// How long run() waits for a first worker before degrading to
  /// local execution (it also degrades immediately once every
  /// connected worker has been lost).
  std::uint64_t first_worker_grace_ms = 5000;

  /// Expected worker count (lease sizing hint only).
  std::size_t expected_workers = 2;
};

/// Everything that happened during one distributed run. The chaos
/// tests and bench_dist gate on these — recovery must be *visible*,
/// not inferred.
struct DistCounters {
  std::uint64_t workers_joined = 0;
  std::uint64_t workers_lost = 0;
  std::uint64_t leases_granted = 0;
  std::uint64_t leases_reassigned = 0;  ///< expiry + disconnect requeues
  std::uint64_t blocks_accepted = 0;
  std::uint64_t duplicate_blocks = 0;  ///< byte-identical re-completions
  std::uint64_t corrupt_blocks = 0;    ///< CRC mismatches discarded
  std::uint64_t torn_frames = 0;       ///< framing errors on worker conns
  std::uint64_t heartbeats = 0;
  std::uint64_t local_shards = 0;  ///< ranges executed by the fallback
};

struct DistResult {
  AnalysisResult analysis;
  DistCounters counters;
};

class ShardCoordinator {
 public:
  /// Binds and listens immediately (throws on bind failure); workers
  /// may connect as soon as the constructor returns.
  explicit ShardCoordinator(DistConfig config);
  ~ShardCoordinator();

  ShardCoordinator(const ShardCoordinator&) = delete;
  ShardCoordinator& operator=(const ShardCoordinator&) = delete;

  /// The bound endpoint (TCP port resolved) — hand this to workers.
  const serve::Endpoint& endpoint() const noexcept { return endpoint_; }

  /// Runs the distributed analysis to completion: accepts workers,
  /// leases out every trial, merges their blocks, degrades to local
  /// execution if the fleet dies, and finishes with the cost-only
  /// replay. `request` supplies the metrics plan / retention the
  /// merged result feeds (its workload fields are ignored — the job
  /// defines the workload). Blocking; call once.
  DistResult run(const AnalysisRequest& request);

 private:
  struct WorkerConn;
  struct Lease;
  struct Impl;

  serve::Endpoint endpoint_;
  std::unique_ptr<Impl> impl_;
};

/// Capped exponential backoff with deterministic jitter: attempt k
/// (0-based) sleeps base * 2^k, capped, plus up to 25% jitter drawn
/// from `seed` and k. Shared by the worker's reconnect loop and
/// ara_loadgen's resubmit scheduling so "backoff with jitter" means
/// one thing in this codebase.
std::uint64_t backoff_delay_ms(std::uint64_t base_ms, std::uint64_t cap_ms,
                               unsigned attempt, std::uint64_t seed);

}  // namespace ara::dist
