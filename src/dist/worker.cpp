#include "dist/worker.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/engine_factory.hpp"
#include "core/failpoint.hpp"
#include "dist/coordinator.hpp"
#include "dist/protocol.hpp"
#include "io/binary.hpp"
#include "serve/service.hpp"

namespace ara::dist {

namespace {

using serve::MessageType;

/// Everything one connection's lifetime needs to share with the
/// heartbeat thread: the fd, a write lock (frames from the main loop
/// and heartbeats interleave on one socket), and the lease being
/// heartbeated (0 = none). `stalled` pauses the heartbeat without
/// tearing the connection down — the worker.stall failpoint's way of
/// looking exactly like a wedged process.
struct ConnState {
  explicit ConnState(const serve::Endpoint& ep) : client(ep) {}
  serve::ServeClient client;
  std::mutex write_mutex;
  std::atomic<std::uint64_t> lease{0};
  std::atomic<bool> stalled{false};
  std::atomic<bool> closed{false};
};

void heartbeat_loop(ConnState& conn, std::uint64_t period_ms) {
  const auto period = std::chrono::milliseconds(
      std::max<std::uint64_t>(1, period_ms));
  while (!conn.closed.load()) {
    std::this_thread::sleep_for(period);
    const std::uint64_t lease = conn.lease.load();
    if (lease == 0 || conn.stalled.load() || conn.closed.load()) continue;
    Heartbeat hb;
    hb.lease_id = lease;
    try {
      std::lock_guard<std::mutex> lock(conn.write_mutex);
      serve::write_frame(conn.client.fd(), MessageType::kDistHeartbeat,
                         encode_heartbeat(hb));
    } catch (const std::exception&) {
      return;  // the main loop will notice the dead socket itself
    }
  }
}

/// The workload + engine, materialised once per process (every
/// reconnect carries the same job, so there is nothing to rebuild).
struct Materialized {
  Portfolio portfolio;
  Yet yet;
  std::unique_ptr<Engine> engine;
  JobSpec job;
};

Materialized materialize(JobSpec job) {
  Materialized m;
  if (job.workload == JobWorkload::kSynth) {
    serve::ServedWorkload workload = serve::materialize_synth(job.synth);
    m.portfolio = std::move(workload.portfolio);
    m.yet = std::move(workload.yet);
  } else {
    m.yet = io::load_yet(job.yet_path);
    m.portfolio = io::load_portfolio(job.portfolio_path);
  }
  const auto kind = engine_kind_from_name(job.engine);
  if (!kind) {
    throw std::runtime_error("ara_worker: unknown engine kind \"" +
                             job.engine + "\"");
  }
  ExecutionPolicy policy = ExecutionPolicy::with_engine(*kind);
  policy.simd = static_cast<simd::SimdPolicy>(job.simd);
  policy.simd_width = job.simd_width;
  m.engine = make_engine(policy);
  m.job = std::move(job);
  return m;
}

/// One connection's session: hello, job, lease loop. Returns true when
/// the coordinator granted kDone (the worker's job is finished), false
/// when the connection should be retried.
bool serve_connection(ConnState& conn, std::optional<Materialized>& mat,
                      const WorkerConfig& config) {
  Hello hello;
  hello.worker_id = config.worker_id;
  hello.pid = static_cast<std::uint64_t>(::getpid());
  {
    std::lock_guard<std::mutex> lock(conn.write_mutex);
    serve::write_frame(conn.client.fd(), MessageType::kDistHello,
                       encode_hello(hello));
  }
  auto frame = serve::read_frame(conn.client.fd());
  if (!frame || frame->type != MessageType::kDistJob) {
    throw std::runtime_error("ara_worker: expected job after hello");
  }
  if (!mat) mat = materialize(decode_job(frame->payload));

  std::thread heartbeats(
      [&conn, period = mat->job.heartbeat_ms] {
        heartbeat_loop(conn, period);
      });
  // The heartbeat thread owns no state; join it on every exit path.
  struct JoinGuard {
    ConnState& conn;
    std::thread& thread;
    ~JoinGuard() {
      conn.closed.store(true);
      if (thread.joinable()) thread.join();
    }
  } join_guard{conn, heartbeats};

  for (;;) {
    {
      std::lock_guard<std::mutex> lock(conn.write_mutex);
      serve::write_frame(conn.client.fd(), MessageType::kDistLeaseRequest, "");
    }
    frame = serve::read_frame(conn.client.fd());
    if (!frame) {
      throw std::runtime_error("ara_worker: coordinator closed mid-session");
    }
    if (frame->type != MessageType::kDistLeaseGrant) {
      throw std::runtime_error("ara_worker: expected lease grant");
    }
    const LeaseGrant grant = decode_grant(frame->payload);
    if (grant.kind == GrantKind::kDone) return true;
    if (grant.kind == GrantKind::kWait) {
      std::this_thread::sleep_for(std::chrono::milliseconds(grant.wait_ms));
      continue;
    }

    conn.lease.store(grant.lease_id);
    EngineContext ctx;
    ctx.trials = TrialRange{static_cast<std::size_t>(grant.begin),
                            static_cast<std::size_t>(grant.end)};
    SimulationResult partial = mat->engine->run(mat->portfolio, mat->yet, ctx);

    // worker.stall: go quiet with the shard computed but unsent —
    // heartbeats stop, the lease expires, the coordinator reassigns.
    // The stalled worker then wakes and sends anyway, exercising the
    // straggler/duplicate path end to end. value = stall millis.
    ARA_FAILPOINT("worker.stall", {
      conn.stalled.store(true);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<std::uint64_t>(*ara_fp)));
      conn.stalled.store(false);
    });

    // worker.crash_mid_shard: die without a word after the work is
    // done but before the coordinator hears about it — the worst
    // moment, the whole shard's compute is lost.
    ARA_FAILPOINT("worker.crash_mid_shard", { ::_exit(137); });

    Block block;
    block.lease_id = grant.lease_id;
    block.trial_begin = grant.begin;
    block.ylt = std::move(partial.ylt);
    block.ops = partial.ops;
    block.wall_seconds = partial.wall_seconds;
    block.simulated_seconds = partial.simulated_seconds;
    block.engine_name = partial.engine_name;
    block.devices = partial.devices;
    block.simd_isa = partial.simd_isa;
    std::string payload = encode_block(block);

    // block.bit_flip: corrupt one deterministic bit of the encoded
    // payload. The CRC trailer catches it at the coordinator, which
    // discards the block and reassigns the lease.
    ARA_FAILPOINT("block.bit_flip", {
      const std::size_t bit =
          *ara_fp > 0.0
              ? static_cast<std::size_t>(*ara_fp)
              : (payload.size() / 2) * 8 + 3;
      payload[(bit / 8) % payload.size()] ^=
          static_cast<char>(1u << (bit % 8));
    });

    // stream.torn_frame: write half a frame and slam the connection —
    // the coordinator's framing throws, the conn counts as torn, the
    // lease reassigns. Returning false retries through the normal
    // reconnect/backoff path.
    bool torn = false;
    ARA_FAILPOINT("stream.torn_frame", {
      const std::string wire =
          serve::encode_frame(MessageType::kDistBlock, payload);
      const std::size_t half = wire.size() / 2;
      std::lock_guard<std::mutex> lock(conn.write_mutex);
      std::size_t sent = 0;
      while (sent < half) {
        const ssize_t w =
            ::write(conn.client.fd(), wire.data() + sent, half - sent);
        if (w <= 0) break;
        sent += static_cast<std::size_t>(w);
      }
      ::shutdown(conn.client.fd(), SHUT_RDWR);
      torn = true;
    });
    if (torn) {
      conn.lease.store(0);
      return false;
    }

    {
      std::lock_guard<std::mutex> lock(conn.write_mutex);
      serve::write_frame(conn.client.fd(), MessageType::kDistBlock, payload);
    }
    conn.lease.store(0);
  }
}

}  // namespace

int run_worker(const WorkerConfig& config) {
  // Writes to a dead coordinator must fail with EPIPE, not a signal.
  std::signal(SIGPIPE, SIG_IGN);
  fail::Registry::instance();  // touch early so a bad spec fails fast

  std::optional<Materialized> mat;
  unsigned failures = 0;
  for (;;) {
    std::optional<ConnState> conn;
    try {
      conn.emplace(config.endpoint);
      // Reaching the coordinator resets the budget: max_attempts
      // bounds *consecutive* unreachability, not session count — a
      // chaos run tearing many connections must not bleed the worker
      // out while the coordinator is demonstrably alive.
      failures = 0;
      const bool done = serve_connection(*conn, mat, config);
      if (done) return 0;
      // Recoverable tear (failpoint or coordinator hiccup): retry,
      // counting it against the backoff budget like any other failure.
    } catch (const std::exception&) {
      // Connection refused, coordinator gone, torn write: retry below.
    }
    if (conn) conn->closed.store(true);
    ++failures;
    if (failures > config.max_attempts) return 1;
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_delay_ms(
        config.backoff_base_ms, config.backoff_cap_ms, failures - 1,
        config.seed)));
  }
}

}  // namespace ara::dist
