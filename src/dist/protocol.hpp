// Distributed-run wire messages (DESIGN.md §9): the lease dialect a
// remote worker speaks to the ShardCoordinator over the serve frame
// layer (serve/protocol.hpp — same magic, version and varint framing,
// disjoint MessageType space kDistHello..kDistBlock).
//
// The conversation:
//
//   worker:      Hello (identity)
//   coordinator: Job (the whole workload description, once)
//   worker:      LeaseRequest            ┐ repeated until the grant
//   coordinator: LeaseGrant range|wait   ┘ says done
//   worker:      Heartbeat (per live lease, every heartbeat_ms)
//   worker:      Block (the lease's YLT rows + accounting + CRC32C)
//
// The Job names the workload instead of shipping it (a SynthSpec the
// worker regenerates bitwise via serve::materialize_synth, or paths
// into a shared filesystem), so the only bulk bytes on the wire are
// result rows flowing back. Every Block carries a trailing CRC32C over
// its payload: a flipped bit in transit (or an injected one —
// core/failpoint.hpp site `block.bit_flip`) is detected at the
// coordinator, the block discarded, and the lease reassigned, never
// merged silently wrong.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/types.hpp"
#include "core/ylt.hpp"
#include "serve/protocol.hpp"

namespace ara::dist {

/// How the Job names its workload.
enum class JobWorkload : std::uint8_t {
  kSynth = 0,  ///< regenerate from the SynthSpec (bitwise deterministic)
  kFiles = 1,  ///< load yet_path / portfolio_path (shared filesystem)
};

/// The complete work description a worker receives once, right after
/// its Hello. Everything a worker needs to produce rows bitwise
/// identical to the coordinator's own monolithic run: the workload,
/// the concrete engine kind, and the SIMD mode.
struct JobSpec {
  JobWorkload workload = JobWorkload::kSynth;
  serve::SynthSpec synth;      ///< kSynth
  std::string yet_path;        ///< kFiles
  std::string portfolio_path;  ///< kFiles

  std::string engine = "sequential_fused";  ///< engine_kind_name
  std::uint8_t simd = 1;       ///< simd::SimdPolicy (kScalar = 1)
  std::uint32_t simd_width = 0;

  std::uint64_t trial_count = 0;  ///< authoritative total
  std::uint64_t layer_count = 0;

  /// Worker heartbeat period; the coordinator expires a lease after
  /// missing several of these (DistConfig::lease_timeout_ms).
  std::uint64_t heartbeat_ms = 100;
};

/// Worker -> coordinator, first frame on the connection.
struct Hello {
  std::string worker_id;  ///< human-readable identity for diagnostics
  std::uint64_t pid = 0;
};

enum class GrantKind : std::uint8_t {
  kRange = 0,  ///< run [begin, end) under lease_id
  kWait = 1,   ///< nothing free now; ask again after wait_ms
  kDone = 2,   ///< all trials covered; disconnect cleanly
};

/// Coordinator -> worker, answer to a LeaseRequest (which has an empty
/// payload — the connection is the worker's identity).
struct LeaseGrant {
  GrantKind kind = GrantKind::kDone;
  std::uint64_t lease_id = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t wait_ms = 0;  ///< kWait
};

/// Worker -> coordinator, lease liveness (payload: the lease id).
struct Heartbeat {
  std::uint64_t lease_id = 0;
};

/// Worker -> coordinator: one completed lease's partial result — the
/// shard's YLT rows plus the accounting the ShardMerger folds (ops,
/// wall clock, simulated seconds). The payload ends with a CRC32C over
/// every preceding payload byte; decode verifies it before anything is
/// trusted.
struct Block {
  std::uint64_t lease_id = 0;
  std::uint64_t trial_begin = 0;
  Ylt ylt;  ///< shard-local rows (trial 0 = global trial_begin)
  OpCounts ops;
  double wall_seconds = 0.0;
  double simulated_seconds = 0.0;
  std::string engine_name;
  std::uint32_t devices = 0;
  std::string simd_isa;
};

// ---- payload codecs (frame layer: serve::write_frame/read_frame) ----

std::string encode_hello(const Hello& hello);
Hello decode_hello(std::string_view payload);

std::string encode_job(const JobSpec& job);
JobSpec decode_job(std::string_view payload);

std::string encode_grant(const LeaseGrant& grant);
LeaseGrant decode_grant(std::string_view payload);

std::string encode_heartbeat(const Heartbeat& hb);
Heartbeat decode_heartbeat(std::string_view payload);

/// The Block codec. `decode_block` throws std::runtime_error on a
/// checksum mismatch ("dist protocol: block checksum mismatch ...") or
/// any truncation — the caller treats either as a corrupt block.
std::string encode_block(const Block& block);
Block decode_block(std::string_view payload);

}  // namespace ara::dist
