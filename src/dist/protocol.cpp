#include "dist/protocol.hpp"

#include <cstring>
#include <sstream>
#include <stdexcept>

#include "core/crc32c.hpp"
#include "io/format.hpp"

namespace ara::dist {

namespace {

namespace fmt = ara::io::format;

// Decode-side sanity caps, mirroring serve/protocol.cpp: a corrupt
// length prefix must fail the decode, not allocate gigabytes. A block
// of kMaxBlockDoubles doubles is 32 MiB — inside the frame layer's 64
// MiB payload cap with room for the accounting fields.
constexpr std::uint64_t kMaxString = 1ull << 16;
constexpr std::uint64_t kMaxBlockDoubles = 1ull << 22;

void write_string(std::ostream& os, const std::string& s) {
  fmt::write_varint(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is, const char* what) {
  const std::uint64_t n = fmt::read_varint(is);
  if (n > kMaxString) {
    throw std::runtime_error(std::string("dist protocol: oversized string (") +
                             what + ")");
  }
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  if (!is) {
    throw std::runtime_error(std::string("dist protocol: truncated ") + what);
  }
  return s;
}

// Everything decoded must consume the payload exactly — trailing bytes
// mean dialect drift, not padding.
void expect_exhausted(std::istream& is, const char* what) {
  if (is.peek() != std::char_traits<char>::eof()) {
    throw std::runtime_error(
        std::string("dist protocol: trailing bytes after ") + what);
  }
}

}  // namespace

std::string encode_hello(const Hello& hello) {
  std::ostringstream os;
  write_string(os, hello.worker_id);
  fmt::write_varint(os, hello.pid);
  return std::move(os).str();
}

Hello decode_hello(std::string_view payload) {
  std::istringstream is{std::string(payload)};
  Hello h;
  h.worker_id = read_string(is, "hello.worker_id");
  h.pid = fmt::read_varint(is);
  expect_exhausted(is, "hello");
  return h;
}

std::string encode_job(const JobSpec& job) {
  std::ostringstream os;
  fmt::write_pod<std::uint8_t>(os, static_cast<std::uint8_t>(job.workload));
  fmt::write_varint(os, job.synth.trials);
  fmt::write_pod(os, job.synth.events_per_trial);
  fmt::write_pod(os, job.synth.catalogue);
  fmt::write_varint(os, job.synth.elts);
  fmt::write_varint(os, job.synth.layers);
  fmt::write_varint(os, job.synth.seed);
  write_string(os, job.yet_path);
  write_string(os, job.portfolio_path);
  write_string(os, job.engine);
  fmt::write_pod(os, job.simd);
  fmt::write_pod(os, job.simd_width);
  fmt::write_varint(os, job.trial_count);
  fmt::write_varint(os, job.layer_count);
  fmt::write_varint(os, job.heartbeat_ms);
  return std::move(os).str();
}

JobSpec decode_job(std::string_view payload) {
  std::istringstream is{std::string(payload)};
  JobSpec j;
  const auto workload = fmt::read_pod<std::uint8_t>(is, "job.workload");
  if (workload > static_cast<std::uint8_t>(JobWorkload::kFiles)) {
    throw std::runtime_error("dist protocol: unknown job workload");
  }
  j.workload = static_cast<JobWorkload>(workload);
  j.synth.trials = fmt::read_varint(is);
  j.synth.events_per_trial =
      fmt::read_pod<double>(is, "job.synth.events_per_trial");
  j.synth.catalogue = fmt::read_pod<std::uint32_t>(is, "job.synth.catalogue");
  j.synth.elts = fmt::read_varint(is);
  j.synth.layers = fmt::read_varint(is);
  j.synth.seed = fmt::read_varint(is);
  j.yet_path = read_string(is, "job.yet_path");
  j.portfolio_path = read_string(is, "job.portfolio_path");
  j.engine = read_string(is, "job.engine");
  j.simd = fmt::read_pod<std::uint8_t>(is, "job.simd");
  j.simd_width = fmt::read_pod<std::uint32_t>(is, "job.simd_width");
  j.trial_count = fmt::read_varint(is);
  j.layer_count = fmt::read_varint(is);
  j.heartbeat_ms = fmt::read_varint(is);
  expect_exhausted(is, "job");
  return j;
}

std::string encode_grant(const LeaseGrant& grant) {
  std::ostringstream os;
  fmt::write_pod<std::uint8_t>(os, static_cast<std::uint8_t>(grant.kind));
  fmt::write_varint(os, grant.lease_id);
  fmt::write_varint(os, grant.begin);
  fmt::write_varint(os, grant.end);
  fmt::write_varint(os, grant.wait_ms);
  return std::move(os).str();
}

LeaseGrant decode_grant(std::string_view payload) {
  std::istringstream is{std::string(payload)};
  LeaseGrant g;
  const auto kind = fmt::read_pod<std::uint8_t>(is, "grant.kind");
  if (kind > static_cast<std::uint8_t>(GrantKind::kDone)) {
    throw std::runtime_error("dist protocol: unknown grant kind");
  }
  g.kind = static_cast<GrantKind>(kind);
  g.lease_id = fmt::read_varint(is);
  g.begin = fmt::read_varint(is);
  g.end = fmt::read_varint(is);
  g.wait_ms = fmt::read_varint(is);
  expect_exhausted(is, "grant");
  return g;
}

std::string encode_heartbeat(const Heartbeat& hb) {
  std::ostringstream os;
  fmt::write_varint(os, hb.lease_id);
  return std::move(os).str();
}

Heartbeat decode_heartbeat(std::string_view payload) {
  std::istringstream is{std::string(payload)};
  Heartbeat hb;
  hb.lease_id = fmt::read_varint(is);
  expect_exhausted(is, "heartbeat");
  return hb;
}

std::string encode_block(const Block& block) {
  std::ostringstream os;
  fmt::write_varint(os, block.lease_id);
  fmt::write_varint(os, block.trial_begin);
  fmt::write_varint(os, block.ylt.layer_count());
  fmt::write_varint(os, block.ylt.trial_count());
  // Rows raw: the shard's tables are contiguous layer-major spans, so
  // both tables go out as two bulk writes, no per-double framing.
  const auto row_bytes = static_cast<std::streamsize>(
      block.ylt.annual_raw().size() * sizeof(double));
  os.write(reinterpret_cast<const char*>(block.ylt.annual_raw().data()),
           row_bytes);
  os.write(reinterpret_cast<const char*>(block.ylt.max_occurrence_raw().data()),
           row_bytes);
  fmt::write_varint(os, block.ops.event_fetches);
  fmt::write_varint(os, block.ops.elt_lookups);
  fmt::write_varint(os, block.ops.financial_ops);
  fmt::write_varint(os, block.ops.occurrence_ops);
  fmt::write_varint(os, block.ops.aggregate_ops);
  fmt::write_varint(os, block.ops.global_updates);
  fmt::write_varint(os, block.ops.shared_accesses);
  fmt::write_pod(os, block.wall_seconds);
  fmt::write_pod(os, block.simulated_seconds);
  write_string(os, block.engine_name);
  fmt::write_pod(os, block.devices);
  write_string(os, block.simd_isa);
  std::string payload = std::move(os).str();
  // Trailing CRC32C over every byte above. Appended raw (fixed 4
  // bytes, little-endian pod) so the checksummed span is simply
  // payload.size() - 4 on the decode side.
  const std::uint32_t crc = crc32c(0, payload.data(), payload.size());
  payload.append(reinterpret_cast<const char*>(&crc), sizeof crc);
  return payload;
}

Block decode_block(std::string_view payload) {
  if (payload.size() < sizeof(std::uint32_t)) {
    throw std::runtime_error("dist protocol: block too short for checksum");
  }
  const std::size_t body_len = payload.size() - sizeof(std::uint32_t);
  std::uint32_t expected;
  std::memcpy(&expected, payload.data() + body_len, sizeof expected);
  const std::uint32_t actual = crc32c(0, payload.data(), body_len);
  if (actual != expected) {
    throw std::runtime_error(
        "dist protocol: block checksum mismatch (corrupt in transit)");
  }
  std::istringstream is{std::string(payload.substr(0, body_len))};
  Block b;
  b.lease_id = fmt::read_varint(is);
  b.trial_begin = fmt::read_varint(is);
  const std::uint64_t layers = fmt::read_varint(is);
  const std::uint64_t trials = fmt::read_varint(is);
  if (layers * trials > kMaxBlockDoubles) {
    throw std::runtime_error("dist protocol: oversized block");
  }
  b.ylt = Ylt(static_cast<std::size_t>(layers),
              static_cast<std::size_t>(trials));
  const auto row_bytes =
      static_cast<std::streamsize>(layers * trials * sizeof(double));
  if (layers * trials > 0) {
    is.read(reinterpret_cast<char*>(&b.ylt.annual_loss(0, 0)), row_bytes);
    is.read(reinterpret_cast<char*>(&b.ylt.max_occurrence_loss(0, 0)),
            row_bytes);
    if (!is) throw std::runtime_error("dist protocol: truncated block rows");
  }
  b.ops.event_fetches = fmt::read_varint(is);
  b.ops.elt_lookups = fmt::read_varint(is);
  b.ops.financial_ops = fmt::read_varint(is);
  b.ops.occurrence_ops = fmt::read_varint(is);
  b.ops.aggregate_ops = fmt::read_varint(is);
  b.ops.global_updates = fmt::read_varint(is);
  b.ops.shared_accesses = fmt::read_varint(is);
  b.wall_seconds = fmt::read_pod<double>(is, "block.wall_seconds");
  b.simulated_seconds = fmt::read_pod<double>(is, "block.simulated_seconds");
  b.engine_name = read_string(is, "block.engine_name");
  b.devices = fmt::read_pod<std::uint32_t>(is, "block.devices");
  b.simd_isa = read_string(is, "block.simd_isa");
  expect_exhausted(is, "block");
  return b;
}

}  // namespace ara::dist
