#include "dist/coordinator.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <deque>
#include <map>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/crc32c.hpp"
#include "core/metrics/stopping.hpp"
#include "core/metrics/streaming.hpp"
#include "core/shard.hpp"
#include "io/yet_chunk.hpp"
#include "io/binary.hpp"
#include "perf/stopwatch.hpp"
#include "serve/service.hpp"

namespace ara::dist {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

std::vector<std::string> layer_labels(const Portfolio& portfolio) {
  std::vector<std::string> labels;
  labels.reserve(portfolio.layer_count());
  for (const Layer& layer : portfolio.layers()) labels.push_back(layer.name);
  return labels;
}

/// Identity of one completed range's numeric content: CRC32C over the
/// block's two row tables. Deterministic engines make re-executions of
/// a range byte-identical, so equal ranges with unequal identities are
/// a real conflict, never jitter.
std::uint32_t block_identity(const Ylt& ylt) {
  std::uint32_t crc = crc32c(0, ylt.annual_raw().data(),
                             ylt.annual_raw().size() * sizeof(double));
  return crc32c(crc, ylt.max_occurrence_raw().data(),
                ylt.max_occurrence_raw().size() * sizeof(double));
}

/// Per-trial portfolio loss of one block, layers outer — the same
/// association the session's adaptive loop feeds its oracle, so a
/// distributed adaptive run observes bitwise the same sample.
std::vector<double> portfolio_trial_sums(const Ylt& ylt) {
  const std::size_t bt = ylt.trial_count();
  std::vector<double> sums(bt, 0.0);
  for (std::size_t l = 0; l < ylt.layer_count(); ++l) {
    const double* row = ylt.layer_annual(l);
    for (std::size_t t = 0; t < bt; ++t) sums[t] += row[t];
  }
  return sums;
}

ExecutionPolicy policy_for_job(const JobSpec& job) {
  const auto kind = engine_kind_from_name(job.engine);
  if (!kind) {
    throw std::invalid_argument("dist: unknown engine kind \"" + job.engine +
                                "\"");
  }
  ExecutionPolicy policy = ExecutionPolicy::with_engine(*kind);
  policy.simd = static_cast<simd::SimdPolicy>(job.simd);
  policy.simd_width = job.simd_width;
  return policy;
}

}  // namespace

std::uint64_t backoff_delay_ms(std::uint64_t base_ms, std::uint64_t cap_ms,
                               unsigned attempt, std::uint64_t seed) {
  // base * 2^attempt, saturating well before the shift overflows.
  std::uint64_t delay = base_ms;
  for (unsigned i = 0; i < attempt && delay < cap_ms; ++i) delay *= 2;
  delay = std::min(delay, cap_ms);
  // Deterministic jitter in [0, delay/4]: splitmix64 over (seed,
  // attempt), so two workers with different seeds never march in
  // lockstep against a recovering coordinator.
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (attempt + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  return delay + (delay > 0 ? z % (delay / 4 + 1) : 0);
}

// ---- internals ----

struct ShardCoordinator::WorkerConn {
  explicit WorkerConn(int fd) : fd(fd) {}
  ~WorkerConn() {
    if (fd >= 0) ::close(fd);
  }
  int fd;
  std::string id;  ///< from Hello, for diagnostics
};

struct ShardCoordinator::Lease {
  std::uint64_t id = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  Clock::time_point deadline{};
  std::shared_ptr<WorkerConn> owner;
};

struct ShardCoordinator::Impl {
  DistConfig config;

  int listen_fd = -1;
  int stop_pipe[2] = {-1, -1};
  std::atomic<bool> stopping{false};

  std::mutex mutex;
  std::condition_variable cv;

  // Ranges awaiting a lease. Fixed quanta: a range requeued after a
  // lost lease is re-granted whole, which is what makes duplicate
  // detection a begin-keyed equality check.
  std::deque<std::pair<std::uint64_t, std::uint64_t>> pending;
  std::map<std::uint64_t, Lease> leases;  ///< open, by lease id
  std::uint64_t next_lease_id = 1;

  /// Completed ranges: begin -> (end, content identity). The
  /// authoritative "exactly once" record; ShardMerger's own disjoint
  /// set backs it up.
  std::map<std::uint64_t, std::pair<std::uint64_t, std::uint32_t>> done;
  std::uint64_t covered = 0;

  DistCounters counters;
  std::size_t active_workers = 0;
  bool had_worker = false;
  std::string fatal;  ///< non-empty = unrecoverable (conflicting bits)

  ShardMerger* merger = nullptr;  ///< live during run() only (fixed mode)
  std::string job_payload;       ///< encoded once

  /// Adaptive mode (request.stopping): the same stopping oracle the
  /// session's wave loop consults, driving lease granting here — the
  /// pending queue only ever extends to the oracle's frontier, and
  /// completed blocks feed it under the mutex. Null for fixed runs.
  metrics::AdaptiveController* controller = nullptr;
  std::uint64_t lease_quantum = 0;  ///< lease sizing, for extensions
  /// Adaptive blocks buffer here (the merged trial count is unknown
  /// until the oracle stops); merged after the drain.
  std::vector<SimulationResult> partials;

  std::thread accept_thread;
  std::thread monitor_thread;
  struct Reader {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> exited;
  };
  std::vector<Reader> readers;
  std::vector<std::weak_ptr<WorkerConn>> conns;

  bool complete_locked() const {
    if (controller != nullptr) {
      return controller->stopped() && covered == controller->frontier();
    }
    return covered == config.job.trial_count;
  }

  void requeue_locked(const Lease& lease) {
    // Already-finished ranges (a block that landed in the same tick
    // the monitor expired its lease) must not go back on the queue.
    if (done.count(lease.begin) == 0) {
      pending.emplace_back(lease.begin, lease.end);
    }
    ++counters.leases_reassigned;
  }

  /// Accepts one completed range: exactly-once merge, byte-identical
  /// duplicate discard, loud conflict. Returns false when the run is
  /// already poisoned. Caller does NOT hold the mutex.
  void accept_block(std::uint64_t lease_id, SimulationResult partial) {
    const std::uint64_t begin = partial.trial_begin;
    const std::uint64_t end = begin + partial.ylt.trial_count();
    const std::uint32_t identity = block_identity(partial.ylt);
    // Adaptive: the oracle's sample, reduced outside the lock (it is
    // discarded unused when the block turns out to be a duplicate).
    std::vector<double> sums;
    if (controller != nullptr) sums = portfolio_trial_sums(partial.ylt);
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (!fatal.empty()) return;
      const auto it = done.find(begin);
      if (it != done.end()) {
        // A straggler re-completed a reassigned range. Same bytes:
        // idempotent, drop it. Different bytes: the two executions
        // disagree about the same trials — nothing downstream can
        // arbitrate that, stop loudly.
        if (it->second.first == end && it->second.second == identity) {
          ++counters.duplicate_blocks;
        } else {
          fatal = "dist: conflicting completions for trial range [" +
                  std::to_string(begin) + ", " + std::to_string(end) +
                  ") — duplicate block's bits differ from the accepted one";
          cv.notify_all();
        }
        return;
      }
      done.emplace(begin, std::make_pair(end, identity));
      covered += end - begin;
      ++counters.blocks_accepted;
      // The block may still be leased (normal completion) or already
      // reassigned and re-pending (straggler won the race): clear both.
      if (const auto lease = leases.find(lease_id); lease != leases.end() &&
          lease->second.begin == begin) {
        leases.erase(lease);
      } else {
        for (auto it2 = leases.begin(); it2 != leases.end(); ++it2) {
          if (it2->second.begin == begin && it2->second.end == end) {
            leases.erase(it2);
            break;
          }
        }
      }
      std::erase_if(pending, [&](const auto& r) { return r.first == begin; });

      if (controller != nullptr) {
        // Feed the oracle; at a wave barrier it either stops the run
        // (complete_locked flips once covered reaches the frontier) or
        // extends it — in lease quanta, so the grants stay uniform.
        controller->observe(begin, sums);
        if (controller->at_barrier()) {
          const std::uint64_t old_frontier = controller->frontier();
          controller->advance();
          for (std::uint64_t b = old_frontier; b < controller->frontier();
               b += lease_quantum) {
            pending.emplace_back(
                b, std::min<std::uint64_t>(b + lease_quantum,
                                           controller->frontier()));
          }
        }
        // Buffered under the lock: the merged trial count is unknown
        // until the oracle stops, so the merge happens after the run.
        partials.push_back(std::move(partial));
        cv.notify_all();
        return;
      }
    }
    // Merge outside the lock (row copy is O(layers x trials)); the
    // merger serialises internally and the `done` reservation above
    // guarantees no second merge of this range can reach here.
    merger->add(partial);
    cv.notify_all();
  }

  void on_worker_lost(const std::shared_ptr<WorkerConn>& conn, bool joined) {
    std::lock_guard<std::mutex> lock(mutex);
    if (joined) {
      --active_workers;
      // A worker departing after the run completed finished its job;
      // "lost" means it left work behind.
      if (!complete_locked()) ++counters.workers_lost;
    }
    for (auto it = leases.begin(); it != leases.end();) {
      if (it->second.owner == conn) {
        requeue_locked(it->second);
        it = leases.erase(it);
      } else {
        ++it;
      }
    }
    cv.notify_all();
  }

  LeaseGrant next_grant_locked() {
    LeaseGrant grant;
    while (!pending.empty() && done.count(pending.front().first) != 0) {
      pending.pop_front();  // completed by a straggler while queued
    }
    if (complete_locked()) {
      grant.kind = GrantKind::kDone;
      return grant;
    }
    if (pending.empty()) {
      grant.kind = GrantKind::kWait;
      grant.wait_ms = std::max<std::uint64_t>(1, config.lease_timeout_ms / 4);
      return grant;
    }
    const auto [begin, end] = pending.front();
    pending.pop_front();
    grant.kind = GrantKind::kRange;
    grant.lease_id = next_lease_id++;
    grant.begin = begin;
    grant.end = end;
    ++counters.leases_granted;
    return grant;
  }

  void reader_loop(std::shared_ptr<WorkerConn> conn) {
    bool joined = false;
    bool torn = false;
    // Distinguish "the byte stream itself broke" (torn/short frame,
    // bad magic — the stream.torn_frame failpoint's signature) from
    // payload-level failures, which carry their own counters.
    const auto next_frame = [&] {
      try {
        return serve::read_frame(conn->fd);
      } catch (const std::exception&) {
        torn = true;
        throw;
      }
    };
    try {
      // First frame: Hello. Anything else is a stranger on the port.
      auto frame = next_frame();
      if (!frame || frame->type != serve::MessageType::kDistHello) return;
      conn->id = decode_hello(frame->payload).worker_id;
      {
        std::lock_guard<std::mutex> lock(mutex);
        ++active_workers;
        ++counters.workers_joined;
        had_worker = true;
        joined = true;
      }
      cv.notify_all();
      serve::write_frame(conn->fd, serve::MessageType::kDistJob, job_payload);

      for (;;) {
        frame = next_frame();
        if (!frame) break;  // clean EOF
        switch (frame->type) {
          case serve::MessageType::kDistLeaseRequest: {
            LeaseGrant grant;
            {
              std::lock_guard<std::mutex> lock(mutex);
              grant = next_grant_locked();
              if (grant.kind == GrantKind::kRange) {
                Lease lease;
                lease.id = grant.lease_id;
                lease.begin = grant.begin;
                lease.end = grant.end;
                lease.deadline =
                    Clock::now() +
                    std::chrono::milliseconds(config.lease_timeout_ms);
                lease.owner = conn;
                leases.emplace(lease.id, lease);
              }
            }
            serve::write_frame(conn->fd, serve::MessageType::kDistLeaseGrant,
                               encode_grant(grant));
            break;
          }
          case serve::MessageType::kDistHeartbeat: {
            const Heartbeat hb = decode_heartbeat(frame->payload);
            std::lock_guard<std::mutex> lock(mutex);
            ++counters.heartbeats;
            if (const auto it = leases.find(hb.lease_id); it != leases.end()) {
              it->second.deadline =
                  Clock::now() +
                  std::chrono::milliseconds(config.lease_timeout_ms);
            }
            break;
          }
          case serve::MessageType::kDistBlock: {
            Block block;
            try {
              block = decode_block(frame->payload);
            } catch (const std::exception&) {
              // Corrupt bits made it through the frame layer. Discard
              // the block, drop the worker (its stream can no longer
              // be trusted); its leases requeue below.
              std::lock_guard<std::mutex> lock(mutex);
              ++counters.corrupt_blocks;
              throw;
            }
            SimulationResult partial;
            partial.engine_name = block.engine_name;
            partial.ylt = std::move(block.ylt);
            partial.ops = block.ops;
            partial.trial_begin =
                static_cast<std::size_t>(block.trial_begin);
            partial.wall_seconds = block.wall_seconds;
            partial.simulated_seconds = block.simulated_seconds;
            partial.devices = block.devices;
            partial.simd_isa = block.simd_isa;
            accept_block(block.lease_id, std::move(partial));
            break;
          }
          default:
            throw std::runtime_error("dist: unexpected frame type");
        }
      }
    } catch (const std::exception&) {
      // Torn frame, corrupt block, protocol violation, or write
      // failure: the connection is unusable either way. The specific
      // counter (torn_frames / corrupt_blocks) was taken where the
      // failure was classified.
      if (torn) {
        std::lock_guard<std::mutex> lock(mutex);
        ++counters.torn_frames;
      }
    }
    on_worker_lost(conn, joined);
  }

  void accept_loop() {
    for (;;) {
      pollfd fds[2] = {{listen_fd, POLLIN, 0}, {stop_pipe[0], POLLIN, 0}};
      const int ready = ::poll(fds, 2, -1);
      if (ready < 0) {
        if (errno == EINTR) continue;
        return;
      }
      if ((fds[1].revents & POLLIN) != 0 || stopping.load()) return;
      if ((fds[0].revents & POLLIN) == 0) continue;
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        return;
      }
      auto conn = std::make_shared<WorkerConn>(fd);
      auto exited = std::make_shared<std::atomic<bool>>(false);
      std::lock_guard<std::mutex> lock(mutex);
      // Join readers that already finished so a long run with worker
      // churn does not accumulate dead threads.
      for (auto it = readers.begin(); it != readers.end();) {
        if (it->exited->load()) {
          it->thread.join();
          it = readers.erase(it);
        } else {
          ++it;
        }
      }
      std::erase_if(conns, [](const auto& weak) { return weak.expired(); });
      conns.push_back(conn);
      readers.push_back(Reader{
          std::thread([this, conn = std::move(conn), exited]() mutable {
            reader_loop(std::move(conn));
            exited->store(true);
          }),
          exited});
    }
  }

  /// Expires leases whose heartbeat deadline passed and requeues their
  /// ranges — the recovery path for stalled (SIGSTOP'd, wedged)
  /// workers whose connection never drops.
  void monitor_loop() {
    const auto period =
        std::chrono::milliseconds(std::max<std::uint64_t>(
            1, config.lease_timeout_ms / 8));
    std::unique_lock<std::mutex> lock(mutex);
    while (!stopping.load()) {
      const auto now = Clock::now();
      for (auto it = leases.begin(); it != leases.end();) {
        if (it->second.deadline <= now) {
          requeue_locked(it->second);
          it = leases.erase(it);
          cv.notify_all();
        } else {
          ++it;
        }
      }
      cv.wait_for(lock, period);
    }
  }

  void shutdown_threads() {
    if (!stopping.exchange(true)) {
      const char byte = 1;
      [[maybe_unused]] const auto n = ::write(stop_pipe[1], &byte, 1);
    }
    cv.notify_all();
    if (accept_thread.joinable()) accept_thread.join();
    if (monitor_thread.joinable()) monitor_thread.join();
    {
      std::lock_guard<std::mutex> lock(mutex);
      for (const auto& weak : conns) {
        if (const auto conn = weak.lock()) ::shutdown(conn->fd, SHUT_RDWR);
      }
    }
    for (Reader& reader : readers) {
      if (reader.thread.joinable()) reader.thread.join();
    }
    readers.clear();
  }
};

// ---- ShardCoordinator ----

ShardCoordinator::ShardCoordinator(DistConfig config)
    : endpoint_(config.endpoint), impl_(std::make_unique<Impl>()) {
  impl_->config = std::move(config);
  if (impl_->config.job.trial_count == 0 ||
      impl_->config.job.layer_count == 0) {
    throw std::invalid_argument(
        "ShardCoordinator: job needs trial_count and layer_count");
  }
  if (::pipe(impl_->stop_pipe) != 0) throw_errno("pipe");
  // Bind + listen now so run() can hand the resolved endpoint to
  // workers spawned before it starts. Reuses the serve server's socket
  // recipe (poll + self-pipe; see serve/server.cpp).
  if (endpoint_.kind == serve::Endpoint::Kind::kUnix) {
    impl_->listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (impl_->listen_fd < 0) throw_errno("socket(AF_UNIX)");
    ::unlink(endpoint_.path.c_str());
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, endpoint_.path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw_errno("bind(" + endpoint_.describe() + ")");
    }
  } else {
    impl_->listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (impl_->listen_fd < 0) throw_errno("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(impl_->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(endpoint_.port);
    if (::inet_pton(AF_INET, endpoint_.host.c_str(), &addr.sin_addr) != 1) {
      throw std::invalid_argument("Endpoint: bad IPv4 host \"" +
                                  endpoint_.host + "\"");
    }
    if (::bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw_errno("bind(" + endpoint_.describe() + ")");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(impl_->listen_fd, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0) {
      endpoint_.port = ntohs(bound.sin_port);
    }
  }
  if (::listen(impl_->listen_fd, 64) != 0) {
    throw_errno("listen(" + endpoint_.describe() + ")");
  }
}

ShardCoordinator::~ShardCoordinator() {
  impl_->shutdown_threads();
  if (impl_->listen_fd >= 0) ::close(impl_->listen_fd);
  if (impl_->stop_pipe[0] >= 0) ::close(impl_->stop_pipe[0]);
  if (impl_->stop_pipe[1] >= 0) ::close(impl_->stop_pipe[1]);
  if (endpoint_.kind == serve::Endpoint::Kind::kUnix) {
    ::unlink(endpoint_.path.c_str());
  }
}

DistResult ShardCoordinator::run(const AnalysisRequest& request) {
  Impl& impl = *impl_;
  const JobSpec& job = impl.config.job;
  perf::Stopwatch wall;

  // The coordinator needs the workload itself: for the local fallback,
  // the cost-only replay, and the metric labels. Same recipe as the
  // workers — bitwise identity depends on it.
  Portfolio portfolio;
  Yet yet;
  if (job.workload == JobWorkload::kSynth) {
    serve::ServedWorkload workload = serve::materialize_synth(job.synth);
    portfolio = std::move(workload.portfolio);
    yet = std::move(workload.yet);
  } else {
    yet = io::load_yet(job.yet_path);
    portfolio = io::load_portfolio(job.portfolio_path);
  }
  if (yet.trial_count() != job.trial_count ||
      portfolio.layer_count() != job.layer_count) {
    throw std::invalid_argument(
        "ShardCoordinator: job shape does not match the workload (" +
        std::to_string(yet.trial_count()) + " trials, " +
        std::to_string(portfolio.layer_count()) + " layers on disk)");
  }

  const ExecutionPolicy policy = policy_for_job(job);
  const std::unique_ptr<Engine> engine = make_engine(policy);

  // Lease quanta: ~2 leases per expected worker so a lost worker
  // forfeits at most half its share, min 1 trial.
  std::uint64_t lease_trials = impl.config.lease_trials;
  if (lease_trials == 0) {
    const std::uint64_t target_leases =
        std::max<std::uint64_t>(1, 2 * impl.config.expected_workers);
    lease_trials = std::max<std::uint64_t>(
        1, (job.trial_count + target_leases - 1) / target_leases);
  }

  // Adaptive (request.stopping): the stopping oracle drives lease
  // granting — the pending queue is filled only to the oracle's
  // frontier and extended at wave barriers from accept_block. Wave
  // granularity is the lease quantum, so "a wave" and "the grants that
  // cover it" coincide. Fixed runs keep the classic up-front fill.
  std::optional<metrics::AdaptiveController> controller;
  if (request.stopping) {
    request.stopping->validate();
    if (request.ylt_retention == YltRetention::kSpillToFile) {
      throw std::invalid_argument(
          "ShardCoordinator: adaptive stopping cannot spill the YLT — "
          "the spill format is sized for the fixed trial count");
    }
    if (job.layer_count == 0) {
      throw std::invalid_argument(
          "ShardCoordinator: adaptive stopping needs at least one layer");
    }
    controller.emplace(*request.stopping, job.trial_count,
                       static_cast<std::size_t>(lease_trials));
  }

  std::optional<ShardMerger> merger;
  if (!controller) {
    merger.emplace(job.layer_count, job.trial_count, nullptr,
                   /*materialize=*/true);
  }
  {
    std::lock_guard<std::mutex> lock(impl.mutex);
    impl.lease_quantum = lease_trials;
    if (controller) {
      impl.controller = &*controller;
      for (std::uint64_t begin = 0; begin < controller->frontier();
           begin += lease_trials) {
        impl.pending.emplace_back(
            begin, std::min<std::uint64_t>(begin + lease_trials,
                                           controller->frontier()));
      }
    } else {
      impl.merger = &*merger;
      for (std::uint64_t begin = 0; begin < job.trial_count;
           begin += lease_trials) {
        impl.pending.emplace_back(
            begin, std::min(begin + lease_trials, job.trial_count));
      }
    }
    impl.job_payload = encode_job(job);
  }

  // Workers write blocks to peers that may be gone; EPIPE must surface
  // as an error return, not kill the process (mirrors ServeServer).
  std::signal(SIGPIPE, SIG_IGN);
  impl.accept_thread = std::thread([&impl] { impl.accept_loop(); });
  impl.monitor_thread = std::thread([&impl] { impl.monitor_loop(); });

  // Progress loop: wait for blocks, degrade to local execution when
  // the fleet is gone (or never showed up within the grace window).
  const auto started = Clock::now();
  const auto grace = std::chrono::milliseconds(
      impl.config.first_worker_grace_ms);
  for (;;) {
    std::pair<std::uint64_t, std::uint64_t> local_range{0, 0};
    {
      std::unique_lock<std::mutex> lock(impl.mutex);
      if (!impl.fatal.empty() || impl.complete_locked()) break;
      const bool fleet_gone =
          impl.active_workers == 0 &&
          (impl.had_worker || Clock::now() - started >= grace);
      if (fleet_gone && !impl.pending.empty()) {
        while (!impl.pending.empty() &&
               impl.done.count(impl.pending.front().first) != 0) {
          impl.pending.pop_front();
        }
        if (!impl.pending.empty()) {
          local_range = impl.pending.front();
          impl.pending.pop_front();
          ++impl.counters.local_shards;
        }
      }
      if (local_range.second == 0) {
        impl.cv.wait_for(lock, std::chrono::milliseconds(20));
        continue;
      }
    }
    // Local fallback shard, executed outside the lock. Same engine,
    // same trial range: bitwise the rows a worker would have sent.
    EngineContext ctx;
    ctx.trials = TrialRange{static_cast<std::size_t>(local_range.first),
                            static_cast<std::size_t>(local_range.second)};
    SimulationResult partial = engine->run(portfolio, yet, ctx);
    impl.accept_block(/*lease_id=*/0, std::move(partial));
  }

  // Drain: let connected workers ask once more and collect kDone
  // before the sockets vanish — tearing down immediately would strand
  // a worker mid-request on a dead-but-listening address, where it
  // would reconnect into the backlog and hang. Bounded: a stalled
  // straggler must not hold the result hostage. Late duplicate blocks
  // arriving in this window are still counted.
  {
    std::unique_lock<std::mutex> lock(impl.mutex);
    if (impl.fatal.empty()) {
      const auto drain_deadline =
          Clock::now() + std::chrono::milliseconds(std::max<std::uint64_t>(
                             2 * impl.config.lease_timeout_ms, 1000));
      impl.cv.wait_until(lock, drain_deadline,
                         [&impl] { return impl.active_workers == 0; });
    }
  }
  impl.shutdown_threads();
  // Refuse reconnects from here on (connection refused beats hanging
  // in a backlog nobody accepts from); the destructor tolerates the
  // early close.
  if (impl.listen_fd >= 0) {
    ::close(impl.listen_fd);
    impl.listen_fd = -1;
  }
  if (endpoint_.kind == serve::Endpoint::Kind::kUnix) {
    ::unlink(endpoint_.path.c_str());
  }
  {
    std::lock_guard<std::mutex> lock(impl.mutex);
    if (!impl.fatal.empty()) throw std::runtime_error(impl.fatal);
    impl.merger = nullptr;
    impl.controller = nullptr;
  }

  // Reader threads are joined: the buffered adaptive blocks (and the
  // oracle) are exclusively ours from here.
  std::size_t executed = job.trial_count;
  SimulationResult merged;
  if (controller) {
    executed = controller->frontier();
    ShardMerger late(job.layer_count, executed, nullptr,
                     /*materialize=*/true);
    for (const SimulationResult& partial : impl.partials) late.add(partial);
    impl.partials.clear();
    merged = late.finish();
  } else {
    merged = merger->finish();
  }

  // Reconstitute the monolithic accounting bitwise, exactly as the
  // session's sharded path does (core/session.cpp run_sharded): ops
  // and the simulated timeline are pure functions of the workload, so
  // a cost-only replay reports what the single-process run would have.
  // An adaptive run replays only the executed prefix — the monolithic
  // accounting of the run that actually happened.
  EngineContext cost_ctx;
  cost_ctx.cost_only = true;
  if (controller) cost_ctx.trials = TrialRange{0, executed};
  const SimulationResult mono = engine->run(portfolio, yet, cost_ctx);
  merged.ops = mono.ops;
  merged.simulated_phases = mono.simulated_phases;
  merged.simulated_seconds = mono.simulated_seconds;
  merged.engine_name = mono.engine_name;
  merged.devices = mono.devices;
  merged.simd_isa = mono.simd_isa;
  merged.wall_seconds = wall.seconds();

  DistResult result;
  result.analysis.label = request.label;
  result.analysis.engine = *policy.engine;
  {
    std::lock_guard<std::mutex> lock(impl.mutex);
    result.analysis.shard_count = impl.done.size();
    result.counters = impl.counters;
  }
  result.analysis.simulation = std::move(merged);
  result.analysis.trials_executed = executed;
  if (controller) {
    result.analysis.stopped_early = executed < job.trial_count;
    result.analysis.half_widths = controller->statuses();
  }

  request.metrics.validate();
  if (request.metrics.any() && job.layer_count > 0) {
    result.analysis.metrics = metrics::compute_metrics(
        result.analysis.simulation.ylt, layer_labels(portfolio),
        request.metrics);
  }
  if (request.ylt_retention == YltRetention::kSpillToFile) {
    if (request.ylt_path.empty()) {
      throw std::invalid_argument(
          "ShardCoordinator: kSpillToFile requires ylt_path");
    }
    io::YltChunkWriter writer(request.ylt_path, job.layer_count,
                              job.trial_count);
    writer.append(result.analysis.simulation.ylt, 0);
    writer.close();
    result.analysis.ylt_path = request.ylt_path;
  }
  if (request.ylt_retention != YltRetention::kKeep) {
    result.analysis.simulation.ylt = Ylt();
  }
  return result;
}

}  // namespace ara::dist
