// The ara_worker process body (DESIGN.md §9): connects to a
// ShardCoordinator, receives the JobSpec, and loops lease -> run ->
// stream the block back until the coordinator says done. Transport
// errors retry with capped exponential backoff + jitter; the
// coordinator's lease machinery makes a crashed, stalled or lying
// worker harmless, so this side can afford to be simple.
#pragma once

#include <cstdint>
#include <string>

#include "serve/server.hpp"

namespace ara::dist {

struct WorkerConfig {
  serve::Endpoint endpoint;
  std::string worker_id = "worker";

  /// Reconnect/backoff policy for transport errors (connection
  /// refused, coordinator restart, torn writes): attempt k sleeps
  /// backoff_delay_ms(base, cap, k, seed); after `max_attempts`
  /// consecutive failures the worker gives up with a non-zero exit.
  std::uint64_t backoff_base_ms = 50;
  std::uint64_t backoff_cap_ms = 2000;
  unsigned max_attempts = 8;
  std::uint64_t seed = 1;  ///< jitter seed (derived from pid by the tool)
};

/// Runs the worker loop to completion. Returns 0 on a clean kDone
/// finish, 1 when the coordinator stayed unreachable past the retry
/// budget. Failpoint sites (core/failpoint.hpp): worker.crash_mid_shard,
/// worker.stall (value = stall ms), stream.torn_frame, block.bit_flip.
int run_worker(const WorkerConfig& config);

}  // namespace ara::dist
