#include "io/yet_chunk.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "core/crc32c.hpp"
#include "core/shard.hpp"
#include "io/format.hpp"

namespace ara::io {

namespace {

// The shared format definition (io/format.hpp) supplies the magics,
// version and codecs; the reader only sniffs the leading magic to pick
// the decoder.
using format::kYetCompressedMagic;
using format::kYetMagic;
using format::read_varint;

template <typename T>
T read_pod(std::istream& is, const char* what) {
  return format::read_pod<T>(is, what);
}

}  // namespace

YetChunkReader::YetChunkReader(std::string path) : path_(std::move(path)) {
  is_.open(path_, std::ios::binary);
  if (!is_) {
    throw std::runtime_error("YetChunkReader: cannot open " + path_);
  }

  char magic[8];
  is_.read(magic, 8);
  if (!is_) throw std::runtime_error("YetChunkReader: truncated header");
  if (std::memcmp(magic, kYetMagic, 8) == 0) {
    compressed_ = false;
  } else if (std::memcmp(magic, kYetCompressedMagic, 8) == 0) {
    compressed_ = true;
  } else {
    throw std::runtime_error("YetChunkReader: not a YET file: " + path_);
  }

  const auto version = read_pod<std::uint32_t>(is_, "version");
  if (version != format::kFormatVersion) {
    throw std::runtime_error("YetChunkReader: unsupported YET version " +
                             std::to_string(version));
  }
  catalogue_ = read_pod<EventId>(is_, "catalogue size");
  trial_count_ =
      static_cast<std::size_t>(read_pod<std::uint64_t>(is_, "trial count"));

  if (compressed_) {
    data_start_ = is_.tellg();
    return;
  }

  occurrences_ = read_pod<std::uint64_t>(is_, "occurrence count");
  offsets_.resize(trial_count_ + 1);
  is_.read(reinterpret_cast<char*>(offsets_.data()),
           static_cast<std::streamsize>(offsets_.size() * 8));
  if (!is_) throw std::runtime_error("YetChunkReader: truncated offsets");
  if (offsets_.front() != 0 || offsets_.back() != occurrences_ ||
      !std::is_sorted(offsets_.begin(), offsets_.end())) {
    throw std::runtime_error("YetChunkReader: corrupt offset index");
  }
  data_start_ = is_.tellg();
}

std::size_t YetChunkReader::max_chunk_trials(std::size_t memory_budget_bytes,
                                             std::size_t layer_count) const {
  if (compressed_) {
    throw std::logic_error(
        "YetChunkReader::max_chunk_trials: compressed files do not record "
        "the occurrence count; pick the chunk size explicitly");
  }
  // The same resident-footprint model the session's memory-budget
  // sharding uses, so both paths derive the same chunk from a budget.
  const double per_trial =
      shard_bytes_per_trial(layer_count, mean_events_per_trial());
  const auto fit = static_cast<std::size_t>(
      static_cast<double>(memory_budget_bytes) / per_trial);
  return std::max<std::size_t>(1, fit);
}

Yet YetChunkReader::read_chunk(std::size_t begin, std::size_t end) {
  if (begin > end || end > trial_count_) {
    throw std::invalid_argument("YetChunkReader::read_chunk: bad range");
  }
  return compressed_ ? read_chunk_compressed(begin, end)
                     : read_chunk_binary(begin, end);
}

Yet YetChunkReader::read_chunk_binary(std::size_t begin, std::size_t end) {
  const std::uint64_t first = offsets_[begin];
  const std::uint64_t count = offsets_[end] - first;

  // One seek + one bulk read per chunk: occurrence records are 8 bytes
  // (u32 event, u32 time), matching EventOccurrence's layout, so the
  // file bytes land directly in the vector the Yet takes over.
  static_assert(sizeof(EventOccurrence) == 8);
  std::vector<EventOccurrence> occ(static_cast<std::size_t>(count));
  is_.clear();
  is_.seekg(data_start_ + static_cast<std::streamoff>(first * 8));
  is_.read(reinterpret_cast<char*>(occ.data()),
           static_cast<std::streamsize>(count * 8));
  if (!is_) {
    throw std::runtime_error("YetChunkReader: truncated occurrence data");
  }

  std::vector<std::size_t> local(end - begin + 1);
  for (std::size_t i = 0; i <= end - begin; ++i) {
    local[i] = static_cast<std::size_t>(offsets_[begin + i] - first);
  }

  peak_bytes_ = std::max(
      peak_bytes_, occ.size() * sizeof(EventOccurrence) +
                       local.size() * sizeof(std::size_t));
  // The Yet constructor re-validates event ids and timestamp order, so
  // corrupted record bytes fail here instead of polluting results.
  return Yet(std::move(occ), std::move(local), catalogue_);
}

void YetChunkReader::skip_compressed_trial() {
  const std::uint64_t count = read_varint(is_);
  for (std::uint64_t i = 0; i < count; ++i) {
    read_varint(is_);  // event id
    read_varint(is_);  // timestamp delta
  }
}

Yet YetChunkReader::read_chunk_compressed(std::size_t begin,
                                          std::size_t end) {
  // Varints are not seekable: decoding is forward-only from the last
  // cursor position, rewinding to the start of the data when a caller
  // asks for an earlier range.
  if (begin < cursor_) {
    is_.clear();
    is_.seekg(data_start_);
    cursor_ = 0;
  }
  while (cursor_ < begin) {
    skip_compressed_trial();
    ++cursor_;
  }

  std::vector<EventOccurrence> occ;
  std::vector<std::size_t> local;
  local.reserve(end - begin + 1);
  local.push_back(0);
  for (std::size_t t = begin; t < end; ++t) {
    const std::uint64_t count = read_varint(is_);
    Timestamp prev = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t event = read_varint(is_);
      const std::uint64_t delta = read_varint(is_);
      if (event == 0 || event > catalogue_) {
        throw std::runtime_error(
            "YetChunkReader: event id out of catalogue range");
      }
      EventOccurrence o;
      o.event = static_cast<EventId>(event);
      o.time = prev + static_cast<Timestamp>(delta);
      prev = o.time;
      occ.push_back(o);
    }
    local.push_back(occ.size());
    ++cursor_;
  }

  peak_bytes_ = std::max(
      peak_bytes_, occ.capacity() * sizeof(EventOccurrence) +
                       local.capacity() * sizeof(std::size_t));
  return Yet(std::move(occ), std::move(local), catalogue_);
}

// ---- YltChunkReader --------------------------------------------------------

using format::kYltHeaderBytes;

YltChunkReader::YltChunkReader(std::string path) : path_(std::move(path)) {
  is_.open(path_, std::ios::binary);
  if (!is_) {
    throw std::runtime_error("YltChunkReader: cannot open " + path_);
  }
  char magic[8];
  is_.read(magic, 8);
  if (!is_) throw std::runtime_error("YltChunkReader: truncated header");
  if (std::memcmp(magic, format::kYltMagic, 8) != 0) {
    throw std::runtime_error("YltChunkReader: not a YLT file: " + path_);
  }
  version_ = read_pod<std::uint32_t>(is_, "version");
  if (version_ != 1 && version_ != format::kYltFormatVersion) {
    throw std::runtime_error("YltChunkReader: unsupported YLT version " +
                             std::to_string(version_));
  }
  layer_count_ =
      static_cast<std::size_t>(read_pod<std::uint64_t>(is_, "layer count"));
  trial_count_ =
      static_cast<std::size_t>(read_pod<std::uint64_t>(is_, "trial count"));

  if (version_ >= 2) {
    // Load the row-CRC trailer up front (2 x layers u32 — tiny); each
    // row is verified lazily the first time a block touches it.
    const auto body = static_cast<std::streamoff>(
        static_cast<std::uint64_t>(layer_count_) * trial_count_ * 2 *
        sizeof(double));
    is_.seekg(kYltHeaderBytes + body);
    row_crcs_.resize(2 * layer_count_);
    for (std::uint32_t& crc : row_crcs_) {
      crc = read_pod<std::uint32_t>(is_, "row checksum trailer");
    }
    row_verified_.assign(2 * layer_count_, false);
  }
}

void YltChunkReader::verify_row(std::size_t row) {
  if (version_ < 2 || row_verified_[row]) return;
  // Stream the whole row through the checksum in fixed-size pieces:
  // the scratch buffer is a constant, so bounded-memory block reads
  // stay bounded even when a row is far larger than any block.
  const std::size_t layer = row < layer_count_ ? row : row - layer_count_;
  const auto start =
      kYltHeaderBytes +
      static_cast<std::streamoff>(
          (static_cast<std::uint64_t>(row) * trial_count_) * sizeof(double));
  constexpr std::size_t kScratchBytes = 64 << 10;
  std::vector<char> scratch(
      std::min<std::size_t>(kScratchBytes,
                            std::max<std::size_t>(1, trial_count_ *
                                                         sizeof(double))));
  std::uint32_t crc = 0;
  std::size_t remaining = trial_count_ * sizeof(double);
  is_.clear();
  is_.seekg(start);
  while (remaining > 0) {
    const std::size_t n = std::min(remaining, scratch.size());
    is_.read(scratch.data(), static_cast<std::streamsize>(n));
    if (!is_) {
      throw std::runtime_error("YltChunkReader: truncated loss data");
    }
    crc = crc32c(crc, scratch.data(), n);
    remaining -= n;
  }
  if (crc != row_crcs_[row]) {
    throw std::runtime_error(
        "YltChunkReader: checksum mismatch in " +
        std::string(row < layer_count_ ? "annual" : "max-occurrence") +
        " row of layer " + std::to_string(layer) + " of " + path_ +
        " (file corrupt)");
  }
  row_verified_[row] = true;
}

Ylt YltChunkReader::read_block(std::size_t begin, std::size_t end) {
  if (begin > end || end > trial_count_) {
    throw std::invalid_argument("YltChunkReader::read_block: bad range");
  }
  const std::size_t n = end - begin;
  Ylt block(layer_count_, n);
  if (n == 0 || layer_count_ == 0) return block;
  const auto table_bytes = static_cast<std::streamoff>(
      static_cast<std::uint64_t>(layer_count_) * trial_count_ *
      sizeof(double));
  // One seek + one bulk read per (layer, table) row slice — the same
  // save_ylt layout YltChunkWriter::append seeks into. On v2 files the
  // first touch of a row checks its trailer CRC end to end.
  for (std::size_t l = 0; l < layer_count_; ++l) {
    verify_row(l);
    verify_row(layer_count_ + l);
    const auto row = static_cast<std::streamoff>(
        (static_cast<std::uint64_t>(l) * trial_count_ + begin) *
        sizeof(double));
    is_.clear();
    is_.seekg(kYltHeaderBytes + row);
    is_.read(reinterpret_cast<char*>(&block.annual_loss(l, 0)),
             static_cast<std::streamsize>(n * sizeof(double)));
    is_.seekg(kYltHeaderBytes + table_bytes + row);
    is_.read(reinterpret_cast<char*>(&block.max_occurrence_loss(l, 0)),
             static_cast<std::streamsize>(n * sizeof(double)));
    if (!is_) {
      throw std::runtime_error("YltChunkReader: truncated loss data");
    }
  }
  peak_bytes_ = std::max(
      peak_bytes_, layer_count_ * n * 2 * sizeof(double));
  return block;
}

// ---- YltChunkWriter --------------------------------------------------------

YltChunkWriter::YltChunkWriter(const std::string& path,
                               std::size_t layer_count,
                               std::size_t trial_count)
    : layer_count_(layer_count), trial_count_(trial_count) {
  os_.open(path, std::ios::binary | std::ios::trunc);
  if (!os_) throw std::runtime_error("YltChunkWriter: cannot open " + path);
  os_.write(format::kYltMagic, 8);
  format::write_pod(os_, format::kYltFormatVersion);
  format::write_pod(os_, static_cast<std::uint64_t>(layer_count_));
  format::write_pod(os_, static_cast<std::uint64_t>(trial_count_));

  // Fix the file's full extent up front so block writes can seek
  // anywhere within it regardless of append order.
  const std::uint64_t body = static_cast<std::uint64_t>(layer_count_) *
                             trial_count_ * 2 * sizeof(double);
  if (body > 0) {
    os_.seekp(kYltHeaderBytes + static_cast<std::streamoff>(body) - 1);
    os_.put('\0');
  }
  if (!os_) {
    // The open above already truncated whatever lived at `path`; a
    // constructor failure must not leave that half-written husk behind
    // (it would carry a valid-looking header over garbage extent).
    os_.close();
    std::remove(path.c_str());
    throw std::runtime_error("YltChunkWriter: write failed");
  }
}

YltChunkWriter::~YltChunkWriter() {
  // Close without the coverage check (it throws); callers that care
  // about completeness call close() themselves.
  if (os_.is_open()) os_.close();
}

void YltChunkWriter::append(const Ylt& partial, std::size_t trial_begin) {
  if (closed_) throw std::logic_error("YltChunkWriter::append after close");
  if (partial.layer_count() != layer_count_) {
    throw std::invalid_argument("YltChunkWriter::append: layer mismatch");
  }
  const std::size_t n = partial.trial_count();
  if (trial_begin + n > trial_count_) {
    throw std::invalid_argument("YltChunkWriter::append: range out of bounds");
  }
  if (!blocks_.try_reserve(trial_begin, trial_begin + n)) {
    throw std::invalid_argument("YltChunkWriter::append: overlapping block");
  }

  // Seek each layer's rows into place in both tables (annual losses
  // first, then max-occurrence — the save_ylt layout).
  const auto table_bytes = static_cast<std::streamoff>(
      static_cast<std::uint64_t>(layer_count_) * trial_count_ *
      sizeof(double));
  BlockCrcs crcs;
  crcs.begin = trial_begin;
  crcs.trials = n;
  crcs.rows.reserve(2 * layer_count_);
  for (std::size_t l = 0; l < layer_count_; ++l) {
    const auto row = static_cast<std::streamoff>(
        (static_cast<std::uint64_t>(l) * trial_count_ + trial_begin) *
        sizeof(double));
    os_.seekp(kYltHeaderBytes + row);
    os_.write(reinterpret_cast<const char*>(partial.layer_annual(l)),
              static_cast<std::streamsize>(n * sizeof(double)));
    os_.seekp(kYltHeaderBytes + table_bytes + row);
    os_.write(reinterpret_cast<const char*>(partial.layer_max_occurrence(l)),
              static_cast<std::streamsize>(n * sizeof(double)));
  }
  // Row-slice CRCs for the close() trailer (annual rows first, the
  // trailer's table order — not interleaved like the writes above).
  for (std::size_t l = 0; l < layer_count_; ++l) {
    crcs.rows.push_back(crc32c(0, partial.layer_annual(l),
                               n * sizeof(double)));
  }
  for (std::size_t l = 0; l < layer_count_; ++l) {
    crcs.rows.push_back(crc32c(0, partial.layer_max_occurrence(l),
                               n * sizeof(double)));
  }
  if (!os_) throw std::runtime_error("YltChunkWriter: write failed");
  block_crcs_.push_back(std::move(crcs));
  covered_ += n;
}

void YltChunkWriter::close() {
  if (closed_) return;
  if (covered_ != trial_count_) {
    throw std::runtime_error(
        "YltChunkWriter::close: blocks cover " + std::to_string(covered_) +
        " of " + std::to_string(trial_count_) + " trials");
  }
  // Fold the per-block row CRCs — sorted into trial order, whatever
  // order the blocks arrived in — into one CRC per (table, layer) row
  // and write the v2 trailer after the tables. crc32c_combine makes
  // this exact: the folded value equals the CRC of the contiguous row,
  // so the file stays byte-identical to save_ylt of the merged table.
  std::sort(block_crcs_.begin(), block_crcs_.end(),
            [](const BlockCrcs& a, const BlockCrcs& b) {
              return a.begin < b.begin;
            });
  const auto body = static_cast<std::streamoff>(
      static_cast<std::uint64_t>(layer_count_) * trial_count_ * 2 *
      sizeof(double));
  os_.seekp(kYltHeaderBytes + body);
  for (std::size_t row = 0; row < 2 * layer_count_; ++row) {
    std::uint32_t crc = 0;
    for (const BlockCrcs& block : block_crcs_) {
      crc = crc32c_combine(crc, block.rows[row],
                           block.trials * sizeof(double));
    }
    format::write_pod(os_, crc);
  }
  os_.close();
  if (os_.fail()) throw std::runtime_error("YltChunkWriter: close failed");
  closed_ = true;
}

}  // namespace ara::io
